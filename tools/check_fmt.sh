#!/usr/bin/env bash
# Source-hygiene gate, wired into `dune runtest` (tools/dune).
#
# Always enforced: no tab characters and no trailing whitespace in any
# OCaml source under lib/, bin/, bench/ or test/.  When an ocamlformat
# binary and a .ocamlformat config are both present, the full
# `dune build @fmt` check runs too; environments without the formatter
# (the pinned CI image ships none) still get the lint, so the gate
# never silently passes for the wrong reason.  Likewise, when odoc is
# installed, `dune build @doc` runs with warnings fatal (the dune-project
# env stanza) so a broken doc comment or dangling {!reference} in a
# public .mli fails the gate instead of shipping as a rendering glitch.
set -u

fail=0
tab=$(printf '\t')

while IFS= read -r f; do
  if grep -q "$tab" "$f"; then
    echo "check_fmt: tab character in $f"
    fail=1
  fi
  if grep -qE "[ $tab]+\$" "$f"; then
    echo "check_fmt: trailing whitespace in $f"
    fail=1
  fi
done < <(find lib bin bench test \( -name '*.ml' -o -name '*.mli' \) \
           -not -path '*/_build/*')

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  if ! dune build @fmt; then
    echo "check_fmt: dune build @fmt reported diffs"
    fail=1
  fi
fi

if command -v odoc >/dev/null 2>&1; then
  if ! dune build @doc; then
    echo "check_fmt: dune build @doc reported odoc errors"
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "check_fmt: FAILED"
  exit 1
fi
echo "check_fmt: ok"

(* Differential fuzzer: hammers every scheduler with random sets and
   cross-checks all of the paper's invariants.  Complements the qcheck
   properties with longer runs and cross-implementation comparisons;
   prints the reproducing seed on failure.

   Run with:  dune exec bin/fuzz.exe -- [--count N] [--seed N]
   (positional [iterations] [seed] still accepted).  A short
   deterministic run is wired into the default test alias. *)

let failures = ref 0

let complain seed fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.printf "FAIL (seed %d): %s@." seed msg)
    fmt

let check_well_nested seed rng =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 7) in
  let density = 0.05 +. Cst_util.Prng.float rng 0.95 in
  let set = Cst_workloads.Gen_wn.uniform rng ~n ~density in
  let topo = Cst.Topology.create ~leaves:n in
  let expected = Cst_comm.Comm_set.matching set in
  let width = Cst_comm.Width.width ~leaves:n set in
  (* the CSA, functional and message-passing; scheduler failures (notably
     the typed Stalled no-progress error) are reported structurally
     instead of crashing the fuzz run *)
  match (Padr.Csa.run topo set, Padr.Engine.run topo set) with
  | Error e, _ | _, Error e ->
      (match e with
      | Padr.Csa.Stalled { round; remaining } ->
          complain seed "scheduler stalled: round %d, %d remaining" round
            remaining
      | e -> complain seed "scheduler rejected the set: %a" Padr.Csa.pp_error e)
  | Ok spec, Ok (eng, stats) ->
  let report = Padr.verify spec in
  if not report.ok then
    complain seed "csa verification: %s" (String.concat "; " report.issues);
  if Padr.Schedule.num_rounds spec <> width then
    complain seed "csa rounds %d <> width %d"
      (Padr.Schedule.num_rounds spec)
      width;
  if Padr.Schedule.all_deliveries eng <> expected then
    complain seed "engine deliveries diverge";
  if
    Padr.Schedule.num_rounds eng <> Padr.Schedule.num_rounds spec
    || eng.power.total_connects <> spec.power.total_connects
  then complain seed "engine/spec mismatch";
  if stats.max_message_words > 4 || stats.state_words_per_switch <> 5 then
    complain seed "engine exceeded constant word sizes";
  (* the sparse engine against the dense reference sweep *)
  (match Padr.Engine.run_dense topo set with
  | Error e -> complain seed "dense engine failed: %a" Padr.Csa.pp_error e
  | Ok (dense, dstats) ->
      if
        Padr.Schedule.all_deliveries dense <> Padr.Schedule.all_deliveries eng
        || dense.cycles <> eng.cycles
        || dense.power.total_writes <> eng.power.total_writes
        || dstats.control_messages <> stats.control_messages
      then complain seed "sparse/dense engines diverge");
  (* the segment-parallel engine against the sequential one, digest for
     digest *)
  let seq_log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log:seq_log topo set);
  let par_log = Cst.Exec_log.create () in
  (match Padr.Par_engine.run ~domains:2 ~log:par_log topo set with
  | Error e ->
      complain seed "segmented engine failed: %a" Padr.Csa.pp_error e
  | Ok (psched, pstats) ->
      if Cst.Exec_log.digest par_log <> Cst.Exec_log.digest seq_log then
        complain seed "segmented engine digest diverges";
      if
        psched.cycles <> eng.cycles
        || pstats.control_messages <> stats.control_messages
      then complain seed "segmented engine stats diverge");
  (* every baseline *)
  List.iter
    (fun (a : Cst_baselines.Registry.algo) ->
      let s = a.run topo set in
      if Padr.Schedule.all_deliveries s <> expected then
        complain seed "%s deliveries diverge" a.name;
      if Padr.Schedule.num_rounds s < width then
        complain seed "%s beat the width bound" a.name;
      if s.power.max_writes_per_switch < spec.power.max_writes_per_switch
      then
        complain seed "%s wrote less than the CSA (%d < %d)" a.name
          s.power.max_writes_per_switch spec.power.max_writes_per_switch)
    Cst_baselines.Registry.all;
  (* native left vs mirrored right *)
  let left_native =
    Padr.Left.run_exn topo (Cst_comm.Mirror.set set)
  in
  let reflect =
    List.map
      (fun (a, b) -> (Cst_comm.Mirror.pe ~n a, Cst_comm.Mirror.pe ~n b))
      (Padr.Schedule.all_deliveries spec)
    |> List.sort compare
  in
  if Padr.Schedule.all_deliveries left_native <> reflect then
    complain seed "native left scheduler diverges from mirroring"

let check_arbitrary seed rng =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 6) in
  let set =
    match Cst_util.Prng.int rng 3 with
    | 0 -> Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:(n / 3)
    | 1 ->
        Cst_workloads.Gen_arbitrary.butterfly ~n
          ~stage:(Cst_util.Prng.int rng (Cst_util.Bits.ilog2 n))
    | _ -> Cst_workloads.Gen_arbitrary.bit_reversal_sample rng ~n
  in
  let w = Padr.Waves.schedule_exn set in
  if Padr.Waves.deliveries w <> Cst_comm.Comm_set.matching set then
    complain seed "waves deliveries diverge";
  let right, left = Cst_comm.Decompose.split set in
  let bound =
    max
      (Cst_comm.Wn_cover.clique_lower_bound right)
      (Cst_comm.Wn_cover.clique_lower_bound (Cst_comm.Mirror.set left))
  in
  if Padr.Waves.num_waves w < bound then
    complain seed "wave cover beat its clique lower bound"

(* Codec differential: anything the binary codec round-trips must be
   indistinguishable from the original — the decoded log digest equals
   the source log's, and replaying a decoded plan is digest-identical
   to scheduling the set from scratch.  Corruption must be detected:
   flipping any arena byte or truncating the buffer yields a typed
   error, never a wrong plan or an escaping exception. *)
let check_codec seed rng =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 7) in
  let density = 0.05 +. Cst_util.Prng.float rng 0.95 in
  let set = Cst_workloads.Gen_wn.uniform rng ~n ~density in
  let topo = Cst.Topology.create ~leaves:n in
  (* raw event-log round trip *)
  let log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log topo set);
  (match Cst.Exec_log.Codec.decode (Cst.Exec_log.Codec.encode log) with
  | Error e ->
      complain seed "log codec rejected its own encoding: %a"
        Cst.Exec_log.Codec.pp_error e
  | Ok (decoded, _) ->
      if Cst.Exec_log.digest decoded <> Cst.Exec_log.digest log then
        complain seed "log codec round trip changed the digest";
      if Cst.Exec_log.length decoded <> Cst.Exec_log.length log then
        complain seed "log codec round trip changed the length");
  (* plan round trip, replayed against a fresh schedule *)
  (match Padr.Plan.compile ~producer:Padr.Plan.Engine topo set with
  | Error e -> complain seed "plan compile failed: %a" Padr.Csa.pp_error e
  | Ok plan -> (
      let b = Padr.Plan.Codec.encode plan in
      match Padr.Plan.Codec.decode b with
      | Error e ->
          complain seed "plan codec rejected its own encoding: %a"
            Padr.Plan.Codec.pp_error e
      | Ok decoded ->
          if
            decoded.rounds <> plan.rounds
            || decoded.cycles <> plan.cycles
            || decoded.producer <> plan.producer
            || decoded.leaves <> plan.leaves
          then complain seed "plan codec round trip changed header fields";
          let r = Padr.Plan.replay ~keep_configs:false decoded topo set in
          if Cst.Exec_log.digest r.log <> Cst.Exec_log.digest log then
            complain seed "decoded plan's replay diverges from a fresh run";
          (* corruption: flip one arena byte (the digest-covered tail) *)
          let events = Cst.Exec_log.length plan.log in
          if events > 0 then begin
            let c = Bytes.copy b in
            let pos =
              Bytes.length c - 1 - Cst_util.Prng.int rng (8 * events)
            in
            Bytes.set c pos
              (Char.chr (Char.code (Bytes.get c pos) lxor (1 lsl Cst_util.Prng.int rng 8)));
            match Padr.Plan.Codec.decode c with
            | Ok _ ->
                complain seed "flipped arena byte at %d went undetected" pos
            | Error _ -> ()
          end;
          (* corruption: truncation anywhere must be typed, not fatal *)
          let cut = Cst_util.Prng.int rng (Bytes.length b) in
          (match Padr.Plan.Codec.decode (Bytes.sub b 0 cut) with
          | Ok _ -> complain seed "truncation to %d bytes went undetected" cut
          | Error _ -> ())))

(* Random non-binary shapes: complete k-ary trees and capacity-weighted
   two-layer fat trees (leaves <= 81). *)
let random_shape rng =
  if Cst_util.Prng.int rng 2 = 0 then begin
    let k = 3 + Cst_util.Prng.int rng 2 in
    let d = if k = 3 then 2 + Cst_util.Prng.int rng 2 else 2 in
    let leaves = ref 1 in
    for _ = 1 to d do
      leaves := !leaves * k
    done;
    Cst.Shape.kary ~k ~leaves:!leaves
  end
  else
    let leaves = 16 lsl Cst_util.Prng.int rng 3 in
    let mid = 4 lsl Cst_util.Prng.int rng 2 in
    let c = 1 + Cst_util.Prng.int rng 3 in
    match
      Cst.Shape.fat_tree ~level_sizes:[| leaves; mid |]
        ~capacities:[| c; c |]
    with
    | Ok s -> s
    | Error _ -> assert false

(* Shape differential: the capacity scheduler on random k-ary/fat
   shapes must deliver the matching, respect the capacity-weighted
   width bound, pass the capacity-aware verifier and digest-match the
   segment-parallel engine; a capacity-1 fat-tree ladder is
   structurally the binary tree and must reproduce its digests
   exactly. *)
let check_shapes seed rng =
  let shape = random_shape rng in
  let topo = Cst.Topology.of_shape shape in
  let n = Cst.Shape.leaves shape in
  let density = 0.05 +. Cst_util.Prng.float rng 0.95 in
  let set = Cst_workloads.Gen_wn.uniform rng ~n ~density in
  let expected = Cst_comm.Comm_set.matching set in
  let width =
    Cst_comm.Width.width_on
      ~parent:(Cst.Topology.parent_table topo)
      ~first_leaf:(Cst.Topology.first_leaf topo)
      ~cap:(Cst.Topology.cap_table topo)
      set
  in
  let log = Cst.Exec_log.create () in
  (match Padr.Csa.run ~log topo set with
  | Error e ->
      complain seed "capacity scheduler rejected the set: %a"
        Padr.Csa.pp_error e
  | Ok sched ->
      if Padr.Schedule.all_deliveries sched <> expected then
        complain seed "shape scheduler deliveries diverge";
      if Padr.Schedule.num_rounds sched < width then
        complain seed "shape scheduler beat the capacity-width bound";
      let report =
        Padr.Verify.schedule ~check_rounds_optimal:false topo set sched
      in
      if not report.ok then
        complain seed "shape verification: %s"
          (String.concat "; " report.issues);
      let par_log = Cst.Exec_log.create () in
      (match Padr.Par_engine.run ~domains:2 ~log:par_log topo set with
      | Error e ->
          complain seed "segmented shape run failed: %a" Padr.Csa.pp_error e
      | Ok _ ->
          if Cst.Exec_log.digest par_log <> Cst.Exec_log.digest log then
            complain seed "segmented shape digest diverges"));
  let n2 = 1 lsl (2 + Cst_util.Prng.int rng 5) in
  let set2 = Cst_workloads.Gen_wn.uniform rng ~n:n2 ~density in
  let rec down sz = if sz < 2 then [] else sz :: down (sz / 2) in
  let level_sizes = Array.of_list (down n2) in
  let capacities = Array.make (Array.length level_sizes) 1 in
  match Cst.Shape.fat_tree ~level_sizes ~capacities with
  | Error e ->
      complain seed "binary ladder rejected: %a" Cst.Shape.pp_error e
  | Ok s ->
      if not (Cst.Shape.is_binary s) then
        complain seed "capacity-1 ladder not recognized as binary";
      let l1 = Cst.Exec_log.create () and l2 = Cst.Exec_log.create () in
      ignore (Padr.Csa.run_exn ~log:l1 (Cst.Topology.of_shape s) set2);
      ignore (Padr.Csa.run_exn ~log:l2 (Cst.Topology.create ~leaves:n2) set2);
      if Cst.Exec_log.digest l1 <> Cst.Exec_log.digest l2 then
        complain seed "capacity-1 ladder diverges from the binary tree"

let check_algos seed rng =
  let n = 1 lsl (1 + Cst_util.Prng.int rng 6) in
  let a = Array.init n (fun _ -> Cst_util.Prng.int_in rng (-1000) 1000) in
  let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
  if r.exclusive <> Cst_algos.Scan.exclusive_reference Cst_algos.Scan.sum a
  then complain seed "scan diverges";
  if n <= 64 then begin
    let sorted, _ = Cst_algos.Sort.run a in
    let expect = Array.copy a in
    Array.sort compare expect;
    if sorted <> expect then complain seed "sort diverges"
  end

let usage () : 'a =
  prerr_endline
    "usage: fuzz [--count N] [--seed N]  (or positionally: fuzz [N [seed]])";
  exit 2

let () =
  let iterations = ref 300 and base_seed = ref 0xC57 in
  let argc = Array.length Sys.argv in
  let npos = ref 0 and i = ref 1 in
  let int_arg () =
    incr i;
    if !i >= argc then usage ();
    match int_of_string_opt Sys.argv.(!i) with
    | Some v -> v
    | None -> usage ()
  in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--count" -> iterations := int_arg ()
    | "--seed" -> base_seed := int_arg ()
    | a -> (
        match (int_of_string_opt a, !npos) with
        | Some v, 0 ->
            iterations := v;
            incr npos
        | Some v, 1 ->
            base_seed := v;
            incr npos
        | _ -> usage ()));
    incr i
  done;
  let iterations = !iterations and base_seed = !base_seed in
  for i = 1 to iterations do
    let seed = base_seed + i in
    let rng = Cst_util.Prng.create seed in
    (match i mod 5 with
    | 0 -> check_well_nested seed rng
    | 1 -> check_arbitrary seed rng
    | 2 -> check_codec seed rng
    | 3 -> check_shapes seed rng
    | _ -> check_algos seed rng);
    if i mod 100 = 0 then
      Format.printf "... %d/%d iterations, %d failure(s)@." i iterations
        !failures
  done;
  if !failures = 0 then begin
    Format.printf "fuzz: %d iterations, all invariants held@." iterations;
    exit 0
  end
  else begin
    Format.printf "fuzz: %d failure(s)@." !failures;
    exit 1
  end

(* cstool — command-line front end for the CST/PADR library.

   Subcommands:
     gen    generate a workload and print/save it as a comm-set file
     info   validate a set and print its statistics
     route  schedule a set with a chosen algorithm, optionally verifying
     batch  run many generated jobs through the multicore batch service
     log    run a scheduler and dump its canonical execution log
     sweep  width sweep comparing algorithms (the E3 experiment, ad hoc)
     plan   compile, import and list persistent plan files (plan store)
     serve  long-running streaming scheduler on stdin/stdout
            (SUBMIT / TICK / DRAIN / STATS / QUIT line protocol)

   Scheduling goes through Cst_service.Service — cstool is a thin client:
   it builds jobs, lets the service dispatch on registry capabilities and
   renders the outcomes.  route/batch/serve accept a uniform
   --engine spec/mp/segmented; the older spellings (route --par,
   batch --segmented) remain as aliases. *)

open Cmdliner
module Service = Cst_service.Service

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_set path =
  match Cst_comm.Comm_set.of_string (read_file path) with
  | Ok s -> Ok s
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let gen_set ~workload ~n ~seed =
  match Cst_workloads.Suite.find workload with
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (known: %s)" workload
           (String.concat ", " Cst_workloads.Suite.names))
  | Some g -> (
      try Ok (g.make (Cst_util.Prng.create seed) ~n)
      with Invalid_argument m ->
        Error (Printf.sprintf "workload %s rejects n=%d: %s" workload n m))

let obtain_set file workload n seed =
  match (file, workload) with
  | Some path, None -> load_set path
  | None, Some w -> gen_set ~workload:w ~n ~seed
  | None, None -> Error "provide either a FILE or --workload"
  | Some _, Some _ -> Error "provide either a FILE or --workload, not both"

(* common args *)
let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Communication-set file (see cstool gen).")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Generate the workload instead of reading a file. \
                           One of: %s."
             (String.concat ", " Cst_workloads.Suite.names)))

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of PEs for generated workloads.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let exit_err msg =
  Format.eprintf "cstool: %s@." msg;
  exit 1

(* One engine spelling across route/batch/serve. *)
let engine_conv =
  Arg.enum
    [
      ("spec", Service.Spec);
      ("mp", Service.Message_passing);
      ("segmented", Service.Segmented);
    ]

let engine_arg =
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,spec) (functional scheduler, default), \
           $(b,mp) (message-passing engine), $(b,segmented) \
           (segment-parallel engine).")

(* One tree-shape spelling across route/dot/log/serve. *)
let shape_conv =
  let parse s =
    match Cst.Shape.of_string s with
    | Ok sh -> Ok sh
    | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"SHAPE" (parse, Cst.Shape.pp)

let shape_arg =
  Arg.(
    value
    & opt (some shape_conv) None
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "Tree to schedule on: $(b,bin:N) (classic complete binary \
           tree, the default), $(b,kary:K:N) (complete K-ary tree) or \
           $(b,fat:L0,L1[:c0,c1]) (level sizes leaf-to-root, root \
           implied, with per-tier uplink capacities).  Only \
           shape-generic algorithms accept non-binary shapes.")

(* gen *)
let gen_cmd =
  let run workload n seed out =
    match gen_set ~workload ~n ~seed with
    | Error e -> exit_err e
    | Ok set -> (
        let text = Cst_comm.Comm_set.to_string set in
        match out with
        | None -> print_string text
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Format.printf "wrote %d communications over %d PEs to %s@."
              (Cst_comm.Comm_set.size set)
              (Cst_comm.Comm_set.n set)
              path)
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a communication-set file")
    Term.(const run $ workload $ n_arg $ seed_arg $ out)

(* info *)
let info_cmd =
  let run file workload n seed =
    match obtain_set file workload n seed with
    | Error e -> exit_err e
    | Ok set ->
        Format.printf "PEs:            %d@." (Cst_comm.Comm_set.n set);
        Format.printf "communications: %d@." (Cst_comm.Comm_set.size set);
        Format.printf "width:          %d@." (Cst_comm.Width.width_auto set);
        let right, left = Cst_comm.Decompose.split set in
        Format.printf "orientation:    %d right, %d left@."
          (Cst_comm.Comm_set.size right)
          (Cst_comm.Comm_set.size left);
        (match Cst_comm.Well_nested.check right with
        | Ok forest ->
            Format.printf "right part:     well-nested, depth %d@."
              (Cst_comm.Nest_forest.max_depth forest)
        | Error v ->
            Format.printf "right part:     NOT well-nested (%a)@."
              Cst_comm.Well_nested.pp_violation v);
        if Cst_comm.Comm_set.n set <= 128 then
          Format.printf "@.%s" (Cst_report.Arc_diagram.render_set set);
        if Cst_comm.Comm_set.size left > 0 then
          match Cst_comm.Well_nested.check (Cst_comm.Mirror.set left) with
          | Ok forest ->
              Format.printf "left part:      well-nested, depth %d@."
                (Cst_comm.Nest_forest.max_depth forest)
          | Error v ->
              Format.printf "left part:      NOT well-nested (%a)@."
                Cst_comm.Well_nested.pp_violation v
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Validate a set and print statistics")
    Term.(const run $ file_arg $ workload_arg $ n_arg $ seed_arg)

(* route *)
let route_cmd =
  let run file workload n seed algo engine par verbose no_verify shape =
    match obtain_set file workload n seed with
    | Error e -> exit_err e
    | Ok set -> (
        let engine =
          match engine with
          | Some e -> e
          | None -> if par then Service.Segmented else Service.Spec
        in
        match Service.run_job (Service.job ~engine ?shape ~id:0 ~algo set) with
        | Error e -> exit_err (Format.asprintf "%a" Service.pp_error e)
        | Ok r ->
            (if verbose then
               match r.detail with
               | Service.Sched s -> Format.printf "%a@." Padr.Schedule.pp s
               | Service.Waves w -> Format.printf "%a@." Padr.Waves.pp w
             else
               Format.printf
                 "%s: %d communications, width %d -> %d rounds in %d \
                  wave(s), %d power units (%d writes), max %d \
                  connects/switch@."
                 r.algo
                 (Cst_comm.Comm_set.size set)
                 r.width r.rounds r.waves r.power.total_connects
                 r.power.total_writes r.power.max_connects_per_switch);
            if r.control_messages > 0 then
              Format.printf "control messages: %d@." r.control_messages;
            if r.blocks > 0 then
              Format.printf "segments: %d independent block(s)@." r.blocks;
            if not no_verify then begin
              let ok =
                match r.detail with
                | Service.Sched sched ->
                    (* Exactly-width rounds are a theorem only on the
                       binary tree; the greedy capacity allocator meets
                       the bound on benched traces but does not promise
                       it, so the optimality check stays binary-only. *)
                    let round_optimal =
                      (match Cst_baselines.Registry.find algo with
                      | Some a -> a.caps.round_optimal
                      | None -> false)
                      && Option.fold ~none:true ~some:Cst.Shape.is_binary
                           shape
                    in
                    let topo =
                      match shape with
                      | Some s -> Cst.Topology.of_shape s
                      | None -> Cst.Topology.create ~leaves:sched.leaves
                    in
                    let report =
                      Padr.Verify.schedule ~check_rounds_optimal:round_optimal
                        topo set sched
                    in
                    Format.printf "verification: %a@." Padr.Verify.pp_report
                      report;
                    report.ok
                | Service.Waves w ->
                    let ok =
                      Padr.Waves.deliveries w = Cst_comm.Comm_set.matching set
                    in
                    Format.printf
                      "verification: wave deliveries match the set: %b@." ok;
                    ok
              in
              if not ok then exit 1
            end)
  in
  let algo =
    Arg.(
      value & opt string "csa"
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:
            (Printf.sprintf "Scheduler: %s."
               (String.concat ", " Cst_baselines.Registry.names)))
  in
  let par =
    Arg.(
      value & flag
      & info [ "par" ]
          ~doc:
            "Alias for --engine segmented: independent top-level blocks \
             scheduled separately and merged (CSA only).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every round.")
  in
  let no_verify =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip verification.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Schedule a set on the CST")
    Term.(
      const run $ file_arg $ workload_arg $ n_arg $ seed_arg $ algo
      $ engine_arg $ par $ verbose $ no_verify $ shape_arg)

(* batch: many jobs through the domain pool *)
let batch_cmd =
  let run n jobs algos seed domains queue verbose cache_stats no_cache
      engine_opt segmented store_dir =
    let algos =
      match algos with
      | [] -> List.map (fun (a : Cst_baselines.Registry.algo) -> a.name)
                (Cst_baselines.Registry.capable ())
      | names ->
          List.iter
            (fun name ->
              if Cst_baselines.Registry.find name = None then
                exit_err (Printf.sprintf "unknown algorithm %S" name))
            names;
          names
    in
    let gens = Cst_workloads.Suite.all in
    let rng = Cst_util.Prng.create seed in
    let make_job i =
      let algo = List.nth algos (i mod List.length algos) in
      let set =
        (* Every fourth job is an arbitrary (possibly crossing, possibly
           mixed-orientation) set, so the batch exercises the service's
           capability dispatch, not just the well-nested fast path. *)
        if i mod 4 = 3 then
          Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:(max 1 (n / 8))
        else
          let g = List.nth gens (i mod List.length gens) in
          g.make rng ~n
      in
      let engine =
        (* --engine (or the --segmented alias) routes every
           engine-capable job through the chosen path; algorithms
           without an engine keep the spec scheduler instead of failing
           on a capability error. *)
        let requested =
          match engine_opt with
          | Some e -> e
          | None -> if segmented then Service.Segmented else Service.Spec
        in
        match requested with
        | Service.Spec -> Service.Spec
        | e -> (
            match Cst_baselines.Registry.find algo with
            | Some a when a.caps.engine_available -> e
            | _ -> Service.Spec)
      in
      Service.job ~engine ~id:i ~algo set
    in
    let js = List.init jobs make_job in
    let store = Option.map Cst_service.Plan_store.open_dir store_dir in
    let t0 = Unix.gettimeofday () in
    let t =
      Service.create ?domains ~queue_capacity:queue ~cache:(not no_cache)
        ?store ()
    in
    let outcomes =
      Fun.protect
        ~finally:(fun () -> Service.shutdown t)
        (fun () ->
          List.iter (Service.submit t) js;
          Service.drain t)
    in
    let dt = Unix.gettimeofday () -. t0 in
    let failed =
      List.filter (fun (o : Service.outcome) -> Result.is_error o.result)
        outcomes
    in
    List.iter
      (fun (o : Service.outcome) ->
        if verbose || Result.is_error o.result then
          Format.printf "%a@." Service.pp_outcome o)
      outcomes;
    Format.printf "%a@." Cst_service.Stats.pp
      [
        Cst_service.Stats.throughput ~jobs ~failed:(List.length failed)
          ~domains:(Service.domains t) ~elapsed_s:dt;
      ];
    if cache_stats then begin
      (* One consolidated stats block: the memory tier, the disk tier
         (when --store attached one; Plan_cache.pp_stats prints both),
         per-domain counters, and the segmented jobs' per-block
         accounting — blocks are cached independently, so a job can be
         partially served by the cache. *)
      (match Service.cache_stats t with
      | Some s ->
          Format.printf "%a@." Cst_service.Plan_cache.pp_stats s;
          Array.iteri
            (fun d (h, m, e) ->
              Format.printf
                "  domain %d: %d hit(s), %d miss(es), %d eviction(s)@." d h m
                e)
            s.per_domain
      | None -> Format.printf "plan cache: disabled@.");
      let seg, blocks, hits =
        List.fold_left
          (fun (seg, blocks, hits) (o : Service.outcome) ->
            match o.result with
            | Ok r when r.blocks > 0 ->
                (seg + 1, blocks + r.blocks, hits + r.block_hits)
            | _ -> (seg, blocks, hits))
          (0, 0, 0) outcomes
      in
      if seg > 0 then
        Format.printf
          "segmented jobs: %d, scheduling %d block(s), %d served from \
           cached block plans@."
          seg blocks hits
    end
  in
  let jobs =
    Arg.(value & opt int 64 & info [ "jobs" ] ~docv:"J" ~doc:"Number of jobs to generate.")
  in
  let algos =
    Arg.(
      value
      & opt (list string) []
      & info [ "algos" ] ~docv:"A,A,..."
          ~doc:"Algorithms to cycle through (default: every registry algorithm).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains (default: the runtime's recommendation).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q" ~doc:"Submission channel capacity (backpressure bound).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every outcome, not only failures.")
  in
  let cache_stats =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:"Print plan-cache hit/miss/eviction statistics after the run.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the plan cache; every job schedules from scratch.")
  in
  let segmented =
    Arg.(
      value & flag
      & info [ "segmented" ]
          ~doc:
            "Alias for --engine segmented: route engine-capable jobs \
             through the segment-parallel engine (independent blocks \
             cached and scheduled separately).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Attach a persistent plan store rooted at $(docv): cache misses \
             fault plans in from disk, evictions spill to it, and the \
             resident working set is flushed on shutdown, so a later batch \
             against the same directory warm-starts.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run generated scheduling jobs through the multicore service")
    Term.(
      const run $ n_arg $ jobs $ algos $ seed_arg $ domains $ queue $ verbose
      $ cache_stats $ no_cache $ engine_arg $ segmented $ store)

(* sweep *)
let sweep_cmd =
  let run n widths algos seed csv cache_stats =
    let algos =
      match algos with
      | [] ->
          (* Capability-selected default: every algorithm whose run
             function accepts a well-nested set — i.e. the whole
             registry, in presentation order. *)
          Cst_baselines.Registry.capable ~supports:`Well_nested ()
      | names ->
          List.map
            (fun name ->
              match Cst_baselines.Registry.find name with
              | Some a -> a
              | None -> exit_err (Printf.sprintf "unknown algorithm %S" name))
            names
    in
    let table =
      Cst_report.Table.create
        ~title:(Printf.sprintf "width sweep on %d PEs" n)
        ~columns:
          ("width"
          :: List.concat_map
               (fun (a : Cst_baselines.Registry.algo) ->
                 [ a.name ^ ":rounds"; a.name ^ ":maxwrites" ])
               algos)
    in
    (* One batch: job id = row-major (width, algo) cell index. *)
    let sets =
      List.map
        (fun w ->
          let rng = Cst_util.Prng.create (seed + w) in
          (w, Cst_workloads.Gen_wn.with_width rng ~n ~width:w))
        widths
    in
    let jobs =
      List.concat
        (List.mapi
           (fun wi (_, set) ->
             List.mapi
               (fun ai (a : Cst_baselines.Registry.algo) ->
                 Service.job
                   ~id:((wi * List.length algos) + ai)
                   ~algo:a.name set)
               algos)
           sets)
    in
    (* One pool — and so one plan cache — for the whole sweep: a
       structure that recurs (a repeated width regenerates the same set)
       replays its frozen plan instead of re-scheduling. *)
    let pool = Service.create () in
    let outcomes =
      Array.of_list
        (Fun.protect
           ~finally:(fun () -> Service.shutdown pool)
           (fun () ->
             List.iter (Service.submit pool) jobs;
             Service.drain pool))
    in
    (if cache_stats then
       match Service.cache_stats pool with
       | Some s -> Format.printf "%a@." Cst_service.Plan_cache.pp_stats s
       | None -> Format.printf "plan cache: disabled@.");
    let rows = ref [] in
    List.iteri
      (fun wi (w, _) ->
        let cells =
          List.concat_map
            (fun ai ->
              let o = outcomes.((wi * List.length algos) + ai) in
              match o.Service.result with
              | Ok r ->
                  [
                    string_of_int r.rounds;
                    string_of_int r.power.max_writes_per_switch;
                  ]
              | Error _ -> [ "-"; "-" ])
            (List.init (List.length algos) Fun.id)
        in
        let row = string_of_int w :: cells in
        Cst_report.Table.add_row table row;
        rows := row :: !rows)
      sets;
    Cst_report.Table.print table;
    match csv with
    | None -> ()
    | Some path ->
        Cst_report.Csv.write_file ~path
          ~header:
            ("width"
            :: List.concat_map
                 (fun (a : Cst_baselines.Registry.algo) ->
                   [ a.name ^ "_rounds"; a.name ^ "_maxwrites" ])
                 algos)
          (List.rev !rows);
        Format.printf "wrote %s@." path
  in
  let widths =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16; 32 ]
      & info [ "widths" ] ~docv:"W,W,..." ~doc:"Widths to sweep.")
  in
  let algos =
    Arg.(
      value
      & opt (list string) []
      & info [ "algos" ] ~docv:"A,A,..."
          ~doc:"Algorithms to compare (default: every registry algorithm).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write CSV.")
  in
  let n =
    Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc:"PE count (power of two).")
  in
  let cache_stats =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:"Print plan-cache hit/miss/eviction statistics after the sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Compare algorithms across widths")
    Term.(const run $ n $ widths $ algos $ seed_arg $ csv $ cache_stats)

(* waves: schedule arbitrary (crossing / mixed-orientation) sets *)
let waves_cmd =
  let run file workload n seed butterfly pairs =
    let input =
      match (butterfly, pairs) with
      | Some stage, None -> (
          try Ok (Cst_workloads.Gen_arbitrary.butterfly ~n ~stage)
          with Invalid_argument m -> Error m)
      | None, Some p -> (
          try
            Ok
              (Cst_workloads.Gen_arbitrary.random_pairs
                 (Cst_util.Prng.create seed)
                 ~n ~pairs:p)
          with Invalid_argument m -> Error m)
      | Some _, Some _ -> Error "choose one of --butterfly / --random-pairs"
      | None, None -> obtain_set file workload n seed
    in
    match input with
    | Error e -> exit_err e
    | Ok set -> (
        match Padr.Waves.schedule set with
        | Error e -> exit_err (Format.asprintf "%a" Padr.pp_error e)
        | Ok w ->
            Format.printf "%a@." Padr.Waves.pp w;
            let right, left = Cst_comm.Decompose.split set in
            Format.printf
              "cover: %d right layer(s), %d left layer(s); crossing clique \
               lower bound %d@."
              (List.length (Cst_comm.Wn_cover.layers right))
              (List.length
                 (Cst_comm.Wn_cover.layers (Cst_comm.Mirror.set left)))
              (max
                 (Cst_comm.Wn_cover.clique_lower_bound right)
                 (Cst_comm.Wn_cover.clique_lower_bound
                    (Cst_comm.Mirror.set left)));
            let ok =
              Padr.Waves.deliveries w = Cst_comm.Comm_set.matching set
            in
            Format.printf "deliveries match the set: %b@." ok;
            if not ok then exit 1)
  in
  let butterfly =
    Arg.(
      value
      & opt (some int) None
      & info [ "butterfly" ] ~docv:"STAGE"
          ~doc:"Use butterfly exchange stage $(docv) as the input set.")
  in
  let pairs =
    Arg.(
      value
      & opt (some int) None
      & info [ "random-pairs" ] ~docv:"M"
          ~doc:"Use $(docv) random arbitrary pairs as the input set.")
  in
  Cmd.v
    (Cmd.info "waves"
       ~doc:"Schedule an arbitrary set as a sequence of CSA waves")
    Term.(
      const run $ file_arg $ workload_arg $ n_arg $ seed_arg $ butterfly
      $ pairs)

(* dot: Graphviz export of a round's configured network *)
let dot_cmd =
  let run file workload n seed round out shape =
    let emit dot =
      match out with
      | None -> print_string dot
      | Some path ->
          Cst.Dot.write_file ~path dot;
          Format.printf "wrote %s (render with: dot -Tsvg %s)@." path path
    in
    match shape with
    | Some s when not (Cst.Shape.is_binary s) ->
        (* Non-binary rounds carry no [Switch_config] snapshots (the
           crossbar state is not representable), so render the shaped
           tree itself: real fanout per node, [:xc] capacity labels. *)
        emit (Cst.Dot.of_topology (Cst.Topology.of_shape s))
    | _ -> (
        match obtain_set file workload n seed with
        | Error e -> exit_err e
        | Ok set -> (
            match Padr.schedule ?shape set with
            | Error e -> exit_err (Format.asprintf "%a" Padr.pp_error e)
            | Ok sched ->
                if round < 1 || round > Padr.Schedule.num_rounds sched then
                  exit_err
                    (Printf.sprintf "round %d out of range (schedule has %d)"
                       round
                       (Padr.Schedule.num_rounds sched));
                let topo = Cst.Topology.create ~leaves:sched.leaves in
                let net = Cst.Net.create topo in
                Array.iter
                  (fun (node, cfg) -> Cst.Net.reconfigure net ~node cfg)
                  sched.rounds.(round - 1).configs;
                emit (Cst.Dot.of_net net)))
  in
  let round =
    Arg.(value & opt int 1 & info [ "r"; "round" ] ~docv:"ROUND" ~doc:"Round to render (1-based).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Export a scheduled round as Graphviz (with a non-binary \
          --shape: the shaped tree itself)")
    Term.(
      const run $ file_arg $ workload_arg $ n_arg $ seed_arg $ round $ out
      $ shape_arg)

(* log: dump a run's canonical execution log *)
let log_cmd =
  let run file workload n seed algo narrate summary shape =
    match obtain_set file workload n seed with
    | Error e -> exit_err e
    | Ok set -> (
        match Cst_baselines.Registry.find algo with
        | None ->
            exit_err
              (Printf.sprintf "unknown algorithm %S (known: %s)" algo
                 (String.concat ", " Cst_baselines.Registry.names))
        | Some a ->
            let topo =
              match shape with
              | Some s -> Cst.Topology.of_shape s
              | None ->
                  Cst.Topology.create
                    ~leaves:
                      (Cst_util.Bits.ceil_pow2
                         (max 2 (Cst_comm.Comm_set.n set)))
            in
            if (not (Cst.Topology.is_binary topo))
               && not a.caps.shape_generic
            then
              exit_err
                (Printf.sprintf
                   "algorithm %S does not run on non-binary topologies"
                   algo);
            let log = Cst.Exec_log.create () in
            (try ignore (a.run ~log topo set)
             with Invalid_argument m -> exit_err m);
            if not summary then
              if narrate then
                Format.printf "%a@." Cst.Trace.pp (Cst.Trace.of_log log)
              else Format.printf "%a@." Cst.Exec_log.pp log;
            let worst = ref 0 and total = ref 0 and active = ref 0 in
            for node = 0 to Cst.Topology.leaves topo - 1 do
              let a = Cst.Exec_log.driver_alternations log ~node in
              if a > 0 then begin
                total := !total + a;
                incr active
              end;
              worst := max !worst a
            done;
            Format.printf "events: %d (%d bytes)@." (Cst.Exec_log.length log)
              (Cst.Exec_log.bytes_used log);
            Format.printf
              "driver alternations per switch: max %d, mean %.2f over %d \
               active switch(es)@."
              !worst
              (if !active = 0 then 0.0
               else float_of_int !total /. float_of_int !active)
              !active;
            Format.printf "digest: %s@." (Cst.Exec_log.digest log))
  in
  let algo =
    Arg.(
      value & opt string "csa"
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:
            (Printf.sprintf "Scheduler: %s."
               (String.concat ", " Cst_baselines.Registry.names)))
  in
  let narrate =
    Arg.(
      value & flag
      & info [ "narrate" ]
          ~doc:"Print the human-readable trace narration instead of raw events.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:"Suppress the event listing; print only counts and the digest.")
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:"Run a scheduler and dump its canonical execution log")
    Term.(
      const run $ file_arg $ workload_arg $ n_arg $ seed_arg $ algo $ narrate
      $ summary $ shape_arg)

(* stats: post-hoc schedule analysis *)
let stats_cmd =
  let run file workload n seed =
    match obtain_set file workload n seed with
    | Error e -> exit_err e
    | Ok set -> (
        let slog = Cst.Exec_log.create () in
        match Padr.schedule ~log:slog set with
        | Error e -> exit_err (Format.asprintf "%a" Padr.pp_error e)
        | Ok sched ->
            let occ = Cst_report.Schedule_stats.occupancy sched in
            Format.printf
              "%d communications in %d rounds (width %d): mean %.2f per \
               round, max %d, min %d@."
              occ.comms occ.rounds sched.width occ.mean_per_round
              occ.max_per_round occ.min_per_round;
            Format.printf "max link use: %d@."
              (Cst_report.Schedule_stats.max_link_use sched);
            Cst_report.Table.print
              (Cst_report.Schedule_stats.per_round_table ~log:slog sched);
            let audit =
              Padr.Invariants.audit
                (Cst.Topology.create ~leaves:sched.leaves)
                set
            in
            Format.printf "register audit: %a@." Padr.Invariants.pp_report
              audit)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Analyse a CSA schedule (occupancy, links, audit)")
    Term.(const run $ file_arg $ workload_arg $ n_arg $ seed_arg)

(* plan: persistent compiled-plan files and the on-disk store *)
let plan_export_cmd =
  let run file workload n seed engine out =
    match obtain_set file workload n seed with
    | Error e -> exit_err e
    | Ok set -> (
        let leaves =
          Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n set))
        in
        let topo = Cst.Topology.create ~leaves in
        let producer = if engine then Padr.Plan.Engine else Padr.Plan.Spec in
        match Padr.Plan.compile ~producer topo set with
        | Error e -> exit_err (Format.asprintf "%a" Padr.pp_error e)
        | Ok plan ->
            (try Padr.Plan.Codec.write_file ~path:out plan
             with Sys_error m -> exit_err m);
            Format.printf "wrote %s (%d bytes): %a@." out
              (Padr.Plan.Codec.encoded_bytes plan)
              Padr.Plan.pp plan)
  in
  let engine =
    Arg.(
      value & flag
      & info [ "engine" ]
          ~doc:
            "Compile through the message-passing engine (its cycle and \
             control-message model) instead of the functional scheduler.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Plan file to write.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Compile a set and write the plan as a portable binary file")
    Term.(
      const run $ file_arg $ workload_arg $ n_arg $ seed_arg $ engine $ out)

let store_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Plan store directory.")

let plan_import_cmd =
  let run files store algo =
    if files = [] then exit_err "no plan files given";
    let st = Cst_service.Plan_store.open_dir store in
    List.iter
      (fun path ->
        match Padr.Plan.Codec.read_file ~path with
        | exception Sys_error m -> exit_err m
        | Error e ->
            exit_err
              (Format.asprintf "%s: %a" path Padr.Plan.Codec.pp_error e)
        | Ok plan ->
            let engine = plan.producer = Padr.Plan.Engine in
            Cst_service.Plan_store.store st ~algo ~engine plan;
            Format.printf "imported %s: %a@." path Padr.Plan.pp plan)
      files;
    Format.printf "%a@." Cst_service.Plan_store.pp_stats
      (Cst_service.Plan_store.stats st)
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Plan files.")
  in
  let algo =
    Arg.(
      value & opt string "csa"
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:
            "Registry algorithm the imported plans are keyed under — the \
             plan file stores the producer model, not the algorithm name.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Verify plan files and add them to a plan store")
    Term.(const run $ files $ store_arg $ algo)

let plan_ls_cmd =
  let run store =
    let names =
      match Sys.readdir store with
      | names -> names
      | exception Sys_error m -> exit_err m
    in
    Array.sort compare names;
    let count = ref 0 and total = ref 0 in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".plan" then begin
          let path = Filename.concat store f in
          match Padr.Plan.Codec.read_file ~path with
          | exception Sys_error m -> Format.printf "%s  UNREADABLE (%s)@." f m
          | Error e ->
              Format.printf "%s  CORRUPT (%a)@." f Padr.Plan.Codec.pp_error e
          | Ok plan ->
              let bytes = Padr.Plan.Codec.encoded_bytes plan in
              incr count;
              total := !total + bytes;
              Format.printf "%s  %d bytes  %a@." f bytes Padr.Plan.pp plan
        end)
      names;
    Format.printf "%d plan(s), %d bytes@." !count !total
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List and verify the plans in a store directory")
    Term.(const run $ store_arg)

let plan_cmd =
  Cmd.group
    (Cmd.info "plan"
       ~doc:"Compile, import and list persistent plan files")
    [ plan_export_cmd; plan_import_cmd; plan_ls_cmd ]

(* serve: the streaming scheduler as a line protocol on stdin/stdout.

   Grammar (one command per line; blank lines and #-comments ignored):
     SUBMIT [key=value ...]   admit a job into the open epoch
       keys: workload=NAME | file=PATH   (input set; workload default
             "uniform"), n=N, seed=S, algo=NAME (default "csa"),
             engine=spec|mp|segmented (default: --engine), id=K
             (default: submission counter), leaves=L,
             shape=bin:N|kary:K:N|fat:L0,L1[:c0,c1] (exclusive with
             leaves=; a shape change forces an epoch boundary)
     TICK                     re-evaluate the admission policy
     DRAIN                    commit, wait for everything, print outcomes
     STATS                    one-line JSON (stream + cache tiers)
     QUIT                     drain, shut the pool down, exit

   Replies: "SUBMITTED <id>", "OK [..]", "BYE", one outcome line per
   drained job ("<outcome> epoch=<e>"), or "ERR <reason>" — the protocol
   never kills the server on a bad line. *)
let serve_cmd =
  let run policy recon_delta engine_opt domains queue no_cache store_dir =
    let policy =
      match Cst_service.Admission.of_string policy with
      | Ok p -> p
      | Error e -> exit_err e
    in
    let store = Option.map Cst_service.Plan_store.open_dir store_dir in
    let default_engine = Option.value engine_opt ~default:Service.Spec in
    let stream =
      Cst_service.Stream.create ?domains ~queue_capacity:queue
        ~cache:(not no_cache) ?store ~policy ~recon_delta ()
    in
    let next_id = ref 0 in
    let parse_kvs tokens =
      List.fold_left
        (fun acc tok ->
          Result.bind acc (fun kvs ->
              match String.index_opt tok '=' with
              | Some i when i > 0 ->
                  Ok
                    ((String.sub tok 0 i,
                      String.sub tok (i + 1) (String.length tok - i - 1))
                    :: kvs)
              | _ -> Error (Printf.sprintf "malformed argument %S" tok)))
        (Ok []) tokens
    in
    let int_kv kvs key ~default =
      match List.assoc_opt key kvs with
      | None -> Ok default
      | Some v -> (
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "%s must be an integer, got %S" key v))
    in
    let submit_job tokens =
      let ( let* ) = Result.bind in
      let* kvs = parse_kvs tokens in
      let* n = int_kv kvs "n" ~default:64 in
      let* seed = int_kv kvs "seed" ~default:1 in
      let* id = int_kv kvs "id" ~default:!next_id in
      let* leaves = int_kv kvs "leaves" ~default:0 in
      let* shape =
        match List.assoc_opt "shape" kvs with
        | None -> Ok None
        | Some spec -> (
            match Cst.Shape.of_string spec with
            | Ok sh -> Ok (Some sh)
            | Error e -> Error e)
      in
      let* () =
        if Option.is_some shape && leaves <> 0 then
          Error "leaves= and shape= are exclusive"
        else Ok ()
      in
      let algo = Option.value (List.assoc_opt "algo" kvs) ~default:"csa" in
      let* set =
        match List.assoc_opt "file" kvs with
        | Some path -> load_set path
        | None ->
            gen_set
              ~workload:
                (Option.value (List.assoc_opt "workload" kvs)
                   ~default:"uniform")
              ~n ~seed
      in
      let* engine =
        match List.assoc_opt "engine" kvs with
        | None -> Ok default_engine
        | Some "spec" -> Ok Service.Spec
        | Some "mp" -> Ok Service.Message_passing
        | Some "segmented" -> Ok Service.Segmented
        | Some e ->
            Error (Printf.sprintf "unknown engine %S (spec|mp|segmented)" e)
      in
      let leaves = if leaves = 0 then None else Some leaves in
      Ok (Service.job ~engine ?leaves ?shape ~id ~algo set)
    in
    let drain () =
      let outs = Cst_service.Stream.drain stream in
      List.iter
        (fun ((o : Service.outcome), (tm : Cst_service.Stream.timing)) ->
          Format.printf "%s epoch=%d@." (Service.outcome_to_string o) tm.epoch)
        outs;
      Format.printf "OK %d@." (List.length outs)
    in
    let rec loop () =
      match input_line stdin with
      | exception End_of_file ->
          ignore (Cst_service.Stream.drain stream);
          Cst_service.Stream.shutdown stream
      | line -> (
          let words =
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | [] -> loop ()
          | cmd :: _ when String.length cmd > 0 && cmd.[0] = '#' -> loop ()
          | "SUBMIT" :: rest ->
              (match submit_job rest with
              | Ok job ->
                  next_id := max !next_id (job.id + 1);
                  Cst_service.Stream.submit stream job;
                  Format.printf "SUBMITTED %d@." job.id
              | Error e -> Format.printf "ERR %s@." e);
              loop ()
          | [ "TICK" ] ->
              Cst_service.Stream.tick stream;
              Format.printf "OK@.";
              loop ()
          | [ "DRAIN" ] ->
              drain ();
              loop ()
          | [ "STATS" ] ->
              print_endline
                (Cst_service.Stats.to_json
                   (Cst_service.Stream.sections stream));
              flush stdout;
              loop ()
          | [ "QUIT" ] ->
              ignore (Cst_service.Stream.drain stream);
              Cst_service.Stream.shutdown stream;
              Format.printf "BYE@."
          | cmd :: _ ->
              Format.printf "ERR unknown command %S@." cmd;
              loop ())
    in
    loop ()
  in
  let policy =
    Arg.(
      value & opt string "immediate"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Admission policy: $(b,immediate), $(b,quantum:SECONDS) \
             (commit on a fixed cadence) or $(b,delta:DELTA[:MAX_WIDTH]) \
             (δ-aware ski rental: commit once accumulated waiting reaches \
             DELTA job-seconds, or when the merged width would exceed \
             MAX_WIDTH).")
  in
  let recon_delta =
    Arg.(
      value & opt float 16.0
      & info [ "recon-delta" ] ~docv:"POWER"
          ~doc:
            "Reconfiguration power charged per committed epoch (the δ of \
             the Costly-Circuits model); reported by STATS.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains (default: the runtime's recommendation).")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"Q"
          ~doc:"Submission channel capacity (backpressure bound).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the plan cache; every job schedules from scratch.")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Attach a persistent plan store rooted at $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming scheduler on stdin/stdout (SUBMIT / TICK / \
          DRAIN / STATS / QUIT)")
    Term.(
      const run $ policy $ recon_delta $ engine_arg $ domains $ queue
      $ no_cache $ store)

let () =
  let doc = "power-aware routing on the circuit switched tree" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cstool" ~version:"1.0.0" ~doc)
          [
            gen_cmd; info_cmd; route_cmd; batch_cmd; sweep_cmd; waves_cmd;
            dot_cmd; log_cmd; stats_cmd; plan_cmd; serve_cmd;
          ]))

(* Perf-regression gate over BENCH_engine.json files.

   Usage:
     check_regression.exe --validate FILE
         Parse a benchmark JSON file and verify it is structurally sound
         (>= 1 result row, positive finite timings).  Used by the
         `bench-smoke` runtest rule on the --fast --json output.

     check_regression.exe BASELINE FRESH [--threshold PCT]
         Compare a fresh run against the committed baseline: any timed
         kernel (matched on kernel/pes/width) slower by more than PCT
         percent (default 25) fails with exit code 1, and any
         service_throughput row (matched on pes/domains) with more than
         PCT percent fewer jobs/sec does too.  A row present in the
         baseline but missing from the fresh run also fails — a silently
         dropped kernel is not a passing one.

   The parser is deliberately line-based: bench/main.ml emits exactly one
   result object per line, so no JSON dependency is needed. *)

type row = { kernel : string; pes : int; width : int; ns_per_op : float }

type service_row = {
  srv_domains : int;
  srv_pes : int;
  srv_jobs_per_sec : float;
}

type log_row = {
  lg_pes : int;
  lg_ns_per_append : float;
  lg_bytes_per_event : float;
}

let find_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  search 0

let string_field line key =
  match find_field line key with
  | None -> None
  | Some start ->
      if start >= String.length line || line.[start] <> '"' then None
      else
        let rec close i =
          if i >= String.length line then None
          else if line.[i] = '"' then Some (String.sub line (start + 1) (i - start - 1))
          else close (i + 1)
        in
        close (start + 1)

let number_field line key =
  match find_field line key with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else float_of_string_opt (String.sub line start (!stop - start))

let parse_rows file =
  let ic = open_in file in
  let rows = ref [] in
  let service = ref [] in
  let log_overhead = ref None in
  (try
     while true do
       let line = input_line ic in
       match
         (number_field line "ns_per_append", number_field line "bytes_per_event")
       with
       | Some ns, Some bpe ->
           let pes = Option.value ~default:0.0 (number_field line "pes") in
           log_overhead :=
             Some
               {
                 lg_pes = int_of_float pes;
                 lg_ns_per_append = ns;
                 lg_bytes_per_event = bpe;
               }
       | _ -> (
       match string_field line "kernel" with
       | Some kernel -> (
           match
             ( number_field line "pes",
               number_field line "width",
               number_field line "ns_per_op" )
           with
           | Some pes, Some width, Some ns ->
               rows :=
                 {
                   kernel;
                   pes = int_of_float pes;
                   width = int_of_float width;
                   ns_per_op = ns;
                 }
                 :: !rows
           | _ ->
               Printf.eprintf "check_regression: malformed row in %s: %s\n"
                 file line;
               exit 2)
       | None -> (
           (* service_throughput rows have no "kernel" field *)
           match
             ( number_field line "domains",
               number_field line "jobs_per_sec" )
           with
           | Some d, Some jps ->
               let pes =
                 Option.value ~default:0.0 (number_field line "pes")
               in
               service :=
                 {
                   srv_domains = int_of_float d;
                   srv_pes = int_of_float pes;
                   srv_jobs_per_sec = jps;
                 }
                 :: !service
           | _ -> ()))
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !rows, List.rev !service, !log_overhead)

let key r = Printf.sprintf "%s/%d/%d" r.kernel r.pes r.width
let skey s = Printf.sprintf "service/%d/%dd" s.srv_pes s.srv_domains

let validate file =
  let rows, service, log_overhead = parse_rows file in
  if rows = [] then begin
    Printf.eprintf "check_regression: %s contains no benchmark rows\n" file;
    exit 1
  end;
  List.iter
    (fun r ->
      if not (Float.is_finite r.ns_per_op) || r.ns_per_op <= 0.0 then begin
        Printf.eprintf "check_regression: %s: bad timing for %s (%f)\n" file
          (key r) r.ns_per_op;
        exit 1
      end)
    rows;
  if service = [] then begin
    Printf.eprintf
      "check_regression: %s contains no service_throughput rows\n" file;
    exit 1
  end;
  List.iter
    (fun s ->
      if not (Float.is_finite s.srv_jobs_per_sec) || s.srv_jobs_per_sec <= 0.0
      then begin
        Printf.eprintf "check_regression: %s: bad throughput for %s (%f)\n"
          file (skey s) s.srv_jobs_per_sec;
        exit 1
      end)
    service;
  (match log_overhead with
  | None ->
      Printf.eprintf "check_regression: %s is missing the log_overhead section\n"
        file;
      exit 1
  | Some lg ->
      if
        (not (Float.is_finite lg.lg_ns_per_append))
        || lg.lg_ns_per_append <= 0.0
        || lg.lg_bytes_per_event <= 0.0
      then begin
        Printf.eprintf "check_regression: %s: bad log_overhead (%f ns, %f B)\n"
          file lg.lg_ns_per_append lg.lg_bytes_per_event;
        exit 1
      end);
  Printf.printf "check_regression: %s ok (%d rows, %d service rows)\n" file
    (List.length rows) (List.length service)

let compare_files ~threshold baseline fresh =
  let base, base_srv, base_lg = parse_rows baseline
  and cur, cur_srv, cur_lg = parse_rows fresh in
  let lookup rows k = List.find_opt (fun r -> key r = k) rows in
  let failures = ref 0 in
  Printf.printf "%-28s %12s %12s %8s\n" "kernel/pes/width" "baseline ns"
    "fresh ns" "ratio";
  List.iter
    (fun b ->
      match lookup cur (key b) with
      | None ->
          incr failures;
          Printf.printf "%-28s %12.0f %12s %8s  MISSING\n" (key b)
            b.ns_per_op "-" "-"
      | Some f ->
          let ratio = f.ns_per_op /. b.ns_per_op in
          let bad = ratio > 1.0 +. (threshold /. 100.0) in
          if bad then incr failures;
          Printf.printf "%-28s %12.0f %12.0f %7.2fx%s\n" (key b) b.ns_per_op
            f.ns_per_op ratio
            (if bad then "  REGRESSION" else ""))
    base;
  (* Throughput rows gate in the opposite direction: fewer jobs/sec than
     the baseline by more than the threshold fails. *)
  List.iter
    (fun b ->
      match
        List.find_opt
          (fun s ->
            s.srv_domains = b.srv_domains && s.srv_pes = b.srv_pes)
          cur_srv
      with
      | None ->
          incr failures;
          Printf.printf "%-28s %12.0f %12s %8s  MISSING\n" (skey b)
            b.srv_jobs_per_sec "-" "-"
      | Some f ->
          let ratio = f.srv_jobs_per_sec /. b.srv_jobs_per_sec in
          let bad = ratio < 1.0 -. (threshold /. 100.0) in
          if bad then incr failures;
          Printf.printf "%-28s %12.0f %12.0f %7.2fx%s\n" (skey b)
            b.srv_jobs_per_sec f.srv_jobs_per_sec ratio
            (if bad then "  REGRESSION" else ""))
    base_srv;
  (* The log append sits on every scheduler's inner loop: gate its rate
     like any timed kernel. *)
  (match (base_lg, cur_lg) with
  | None, _ -> ()
  | Some b, None ->
      incr failures;
      Printf.printf "%-28s %12.2f %12s %8s  MISSING\n"
        (Printf.sprintf "log-append/%d" b.lg_pes)
        b.lg_ns_per_append "-" "-"
  | Some b, Some f ->
      let ratio = f.lg_ns_per_append /. b.lg_ns_per_append in
      let bad = ratio > 1.0 +. (threshold /. 100.0) in
      if bad then incr failures;
      Printf.printf "%-28s %12.2f %12.2f %7.2fx%s\n"
        (Printf.sprintf "log-append/%d" b.lg_pes)
        b.lg_ns_per_append f.lg_ns_per_append ratio
        (if bad then "  REGRESSION" else ""));
  if !failures > 0 then begin
    Printf.printf "check_regression: %d kernel(s) regressed beyond %.0f%%\n"
      !failures threshold;
    exit 1
  end;
  Printf.printf "check_regression: no kernel regressed beyond %.0f%%\n"
    threshold

let () =
  match Array.to_list Sys.argv with
  | [ _; "--validate"; file ] -> validate file
  | [ _; baseline; fresh ] -> compare_files ~threshold:25.0 baseline fresh
  | [ _; baseline; fresh; "--threshold"; pct ] ->
      compare_files ~threshold:(float_of_string pct) baseline fresh
  | _ ->
      prerr_endline
        "usage: check_regression (--validate FILE | BASELINE FRESH \
         [--threshold PCT])";
      exit 2

(* Perf-regression gate over BENCH_engine.json files.

   Usage:
     check_regression.exe --validate FILE [--out VERDICT.json]
         Parse a benchmark JSON file and verify it is structurally sound
         (>= 1 result row, positive finite timings) and that the
         headline claims hold: plan-cache replay at least 3x faster than
         compile with at least an 80% hit rate on the repetitive
         translated trace, and the segment-parallel engine correct
         (merged digest identical to the sequential engine's, per-block
         work summing to the sequential run's) with a domains:1 overhead
         of at most 10% over the sequential engine.  The overhead gate
         applies only to full-size runs ("fast": false): on the --fast
         smoke grid the blocks are so small that the constant
         per-block cost dominates.  Streaming rows are validated too:
         sane sojourn percentiles and throughput, epochs within [1,
         jobs] (exactly jobs under the immediate policy), and the
         delta-aware admission policy beating immediate on total power
         on the bursty trace at domains:1.  Used by the `bench-smoke`
         runtest rule on the --fast --json output and on the committed
         baseline.

     check_regression.exe BASELINE FRESH [--threshold PCT] [--out VERDICT.json]
         Compare a fresh run against the committed baseline: any timed
         kernel (matched on kernel/pes/width) slower by more than PCT
         percent (default 25) fails with exit code 1, and any
         service_throughput row (matched on pes/domains) with more than
         PCT percent fewer jobs/sec does too.  The log-append rate, the
         plan-cache compile/replay times, the trace hit rate and the
         segment-parallel timings are gated the same way.  A row present
         in the baseline but missing from the fresh run also fails — a
         silently dropped kernel is not a passing one.

   Every violated gate is reported on its own line naming the section
   and metric ("check_regression: FAIL <section>/<metric>: ..."), and a
   one-line summary with the violation count closes the report before
   the non-zero exit.  With --out, a machine-readable verdict — mode,
   pass/fail and the full violation list — is also written to the named
   file (written on success too, so CI can always collect it).

   The parser is deliberately line-based: bench/main.ml emits exactly one
   result object per line, so no JSON dependency is needed. *)

type row = { kernel : string; pes : int; width : int; ns_per_op : float }

type service_row = {
  srv_domains : int;
  srv_pes : int;
  srv_jobs_per_sec : float;
}

type log_row = {
  lg_pes : int;
  lg_ns_per_append : float;
  lg_bytes_per_event : float;
}

type cache_row = {
  pc_pes : int;
  pc_compile_ns : float;
  pc_replay_ns : float;
  pc_hit_rate : float;
}

type par_row = {
  pr_pes : int;
  pr_seq_ns : float;
  pr_par_d1_ns : float;
  pr_overhead : float;
  pr_digest_match : bool;
  pr_work_conserved : bool;
}

type store_row = {
  ps_pes : int;
  ps_recompile_ns : float;
  ps_warm_ns : float;
  ps_codec_ns_per_event : float;
  ps_digest_ok : bool;
}

(* One streaming-scheduler replay: (process, policy, domains, pes) is the
   row key.  "policy" is the family name (immediate | quantum | delta) —
   the only row kind in the file carrying that field, which is how the
   parser recognizes these. *)
type stream_row = {
  sr_process : string;
  sr_policy : string;
  sr_domains : int;
  sr_pes : int;
  sr_jobs : int;
  sr_p50_ms : float;
  sr_p99_ms : float;
  sr_jobs_per_sec : float;
  sr_epochs : int;
  sr_total_power : float;
}

(* One row per tree shape from the topology section (schema v2+): the
   fixed onion trace scheduled on binary, k-ary and capacity-weighted
   fat trees.  Keyed on the "shape" field — no other row carries one. *)
type topo_row = {
  tp_shape : string;
  tp_pes : int;
  tp_cap : int;
  tp_width : int;
  tp_rounds : int;
  tp_connects : int;
  tp_writes : int;
  tp_ns : float;
}

let find_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  search 0

let string_field line key =
  match find_field line key with
  | None -> None
  | Some start ->
      if start >= String.length line || line.[start] <> '"' then None
      else
        let rec close i =
          if i >= String.length line then None
          else if line.[i] = '"' then Some (String.sub line (start + 1) (i - start - 1))
          else close (i + 1)
        in
        close (start + 1)

let number_field line key =
  match find_field line key with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else float_of_string_opt (String.sub line start (!stop - start))

let bool_field line key =
  match find_field line key with
  | None -> None
  | Some start ->
      let has lit =
        start + String.length lit <= String.length line
        && String.sub line start (String.length lit) = lit
      in
      if has "true" then Some true else if has "false" then Some false else None

type parsed = {
  rows : row list;
  service : service_row list;
  streaming : stream_row list;
  log_overhead : log_row option;
  plan_cache : cache_row option;
  par_engine : par_row option;
  plan_store : store_row list;
  topology : topo_row list;
  schema : string option;
      (** the producing file's schema tag; topology rows are required
          from ["cst-padr/bench-engine/v2"] on and merely tolerated as
          absent in v1 files (the committed baselines) *)
  fast : bool;
  nproc : int option;
      (** core count of the producing host; [None] on files predating
          the metadata.  Multi-domain gates are skipped at nproc=1: a
          single-core host cannot scale, so its multi-domain rows
          measure contention, not capability. *)
}

let parse_rows file =
  let ic = open_in file in
  let rows = ref [] in
  let service = ref [] in
  let streaming = ref [] in
  let log_overhead = ref None in
  let plan_cache = ref None in
  let par_engine = ref None in
  let plan_store = ref [] in
  let topology = ref [] in
  let schema = ref None in
  let fast = ref false in
  let nproc = ref None in
  (try
     while true do
       let line = input_line ic in
       (match (string_field line "schema", bool_field line "fast") with
       | Some s, _ -> if !schema = None then schema := Some s
       | None, Some f -> fast := f
       | None, None -> ());
       (* the top-level metadata line — no benchmark row carries nproc *)
       (match (number_field line "nproc", find_field line "pes") with
       | Some n, None -> nproc := Some (int_of_float n)
       | _ -> ());
       match string_field line "shape" with
       | Some shape ->
           let num ~default key =
             Option.value ~default (number_field line key)
           in
           let int ~default key = int_of_float (num ~default key) in
           topology :=
             {
               tp_shape = shape;
               tp_pes = int ~default:0.0 "pes";
               tp_cap = int ~default:0.0 "cap";
               tp_width = int ~default:0.0 "width";
               tp_rounds = int ~default:0.0 "rounds";
               tp_connects = int ~default:(-1.0) "connects";
               tp_writes = int ~default:(-1.0) "writes";
               tp_ns =
                 Option.value ~default:(-1.0) (number_field line "ns_per_op");
             }
             :: !topology
       | None -> (
       match
         (string_field line "policy", number_field line "p99_ms")
       with
       | Some policy, Some p99_ms ->
           let num ~default key =
             Option.value ~default (number_field line key)
           in
           streaming :=
             {
               sr_process =
                 Option.value ~default:"?" (string_field line "process");
               sr_policy = policy;
               sr_domains = int_of_float (num ~default:0.0 "domains");
               sr_pes = int_of_float (num ~default:0.0 "pes");
               sr_jobs = int_of_float (num ~default:0.0 "jobs");
               sr_p50_ms = num ~default:(-1.0) "p50_ms";
               sr_p99_ms = p99_ms;
               sr_jobs_per_sec = num ~default:(-1.0) "jobs_per_sec";
               sr_epochs = int_of_float (num ~default:(-1.0) "epochs");
               sr_total_power = num ~default:(-1.0) "total_power";
             }
             :: !streaming
       | _ -> (
       match
         (number_field line "recompile_ns", number_field line "warm_ns")
       with
       | Some recompile_ns, Some warm_ns ->
           plan_store :=
             {
               ps_pes =
                 int_of_float
                   (Option.value ~default:0.0 (number_field line "pes"));
               ps_recompile_ns = recompile_ns;
               ps_warm_ns = warm_ns;
               ps_codec_ns_per_event =
                 Option.value ~default:(-1.0)
                   (number_field line "codec_ns_per_event");
               ps_digest_ok =
                 Option.value ~default:false (bool_field line "digest_ok");
             }
             :: !plan_store
       | _ -> (
       match
         (number_field line "seq_ns", number_field line "par_d1_ns")
       with
       | Some seq_ns, Some par_d1_ns ->
           par_engine :=
             Some
               {
                 pr_pes =
                   int_of_float
                     (Option.value ~default:0.0 (number_field line "pes"));
                 pr_seq_ns = seq_ns;
                 pr_par_d1_ns = par_d1_ns;
                 pr_overhead =
                   Option.value ~default:(-1.0)
                     (number_field line "overhead");
                 pr_digest_match =
                   Option.value ~default:false
                     (bool_field line "digest_match");
                 pr_work_conserved =
                   Option.value ~default:false
                     (bool_field line "work_conserved");
               }
       | _ -> (
       match
         (number_field line "compile_ns", number_field line "replay_ns")
       with
       | Some compile_ns, Some replay_ns ->
           plan_cache :=
             Some
               {
                 pc_pes =
                   int_of_float
                     (Option.value ~default:0.0 (number_field line "pes"));
                 pc_compile_ns = compile_ns;
                 pc_replay_ns = replay_ns;
                 pc_hit_rate =
                   Option.value ~default:(-1.0)
                     (number_field line "hit_rate");
               }
       | _ -> (
       match
         (number_field line "ns_per_append", number_field line "bytes_per_event")
       with
       | Some ns, Some bpe ->
           let pes = Option.value ~default:0.0 (number_field line "pes") in
           log_overhead :=
             Some
               {
                 lg_pes = int_of_float pes;
                 lg_ns_per_append = ns;
                 lg_bytes_per_event = bpe;
               }
       | _ -> (
       match string_field line "kernel" with
       | Some kernel -> (
           match
             ( number_field line "pes",
               number_field line "width",
               number_field line "ns_per_op" )
           with
           | Some pes, Some width, Some ns ->
               rows :=
                 {
                   kernel;
                   pes = int_of_float pes;
                   width = int_of_float width;
                   ns_per_op = ns;
                 }
                 :: !rows
           | _ ->
               Printf.eprintf "check_regression: malformed row in %s: %s\n"
                 file line;
               exit 2)
       | None -> (
           (* service_throughput rows have no "kernel" field *)
           match
             ( number_field line "domains",
               number_field line "jobs_per_sec" )
           with
           | Some d, Some jps ->
               let pes =
                 Option.value ~default:0.0 (number_field line "pes")
               in
               service :=
                 {
                   srv_domains = int_of_float d;
                   srv_pes = int_of_float pes;
                   srv_jobs_per_sec = jps;
                 }
                 :: !service
           | _ -> ())))))))
     done
   with End_of_file -> ());
  close_in ic;
  {
    rows = List.rev !rows;
    service = List.rev !service;
    streaming = List.rev !streaming;
    log_overhead = !log_overhead;
    plan_cache = !plan_cache;
    par_engine = !par_engine;
    plan_store = List.rev !plan_store;
    topology = List.rev !topology;
    schema = !schema;
    fast = !fast;
    nproc = !nproc;
  }

let key r = Printf.sprintf "%s/%d/%d" r.kernel r.pes r.width
let skey s = Printf.sprintf "service/%d/%dd" s.srv_pes s.srv_domains

let stkey (r : stream_row) =
  Printf.sprintf "streaming/%s/%s/%d/%dd" r.sr_process r.sr_policy r.sr_pes
    r.sr_domains

let tkey (r : topo_row) = Printf.sprintf "topology/%s" r.tp_shape

(* Violations accumulate as (section/metric, detail): every gate is
   checked, every failure reported, then one summary line and exit 1. *)
let violations : (string * string) list ref = ref []
let fail_gate where detail = violations := (where, detail) :: !violations

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The machine-readable verdict: written on success AND on failure, so a
   CI step can always collect one artifact instead of scraping stdout. *)
let write_verdict ~mode ~extra file vs =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"cst-padr/check-regression/v1\",\n";
  p "  \"mode\": \"%s\",\n" mode;
  List.iter (fun (k, v) -> p "  \"%s\": %s,\n" k v) extra;
  p "  \"pass\": %b,\n" (vs = []);
  p "  \"gates_violated\": %d,\n" (List.length vs);
  p "  \"violations\": [\n";
  List.iteri
    (fun i (where, detail) ->
      p "    {\"gate\": \"%s\", \"detail\": \"%s\"}%s\n" (json_escape where)
        (json_escape detail)
        (if i = List.length vs - 1 then "" else ","))
    vs;
  p "  ]\n}\n";
  close_out oc

let finish ?out ~mode ~extra ~ok_message () =
  let vs = List.rev !violations in
  Option.iter (fun file -> write_verdict ~mode ~extra file vs) out;
  match vs with
  | [] ->
      print_endline ok_message
  | vs ->
      List.iter
        (fun (where, detail) ->
          Printf.printf "check_regression: FAIL %s: %s\n" where detail)
        vs;
      Printf.printf "check_regression: %d gate(s) violated\n" (List.length vs);
      exit 1

let validate ?out file =
  let p = parse_rows file in
  if p.rows = [] then
    fail_gate "results" (Printf.sprintf "%s contains no benchmark rows" file);
  List.iter
    (fun r ->
      if not (Float.is_finite r.ns_per_op) || r.ns_per_op <= 0.0 then
        fail_gate
          (Printf.sprintf "results/%s/ns_per_op" (key r))
          (Printf.sprintf "bad timing %f" r.ns_per_op))
    p.rows;
  if p.service = [] then
    fail_gate "service_throughput"
      (Printf.sprintf "%s contains no service_throughput rows" file);
  List.iter
    (fun s ->
      if not (Float.is_finite s.srv_jobs_per_sec) || s.srv_jobs_per_sec <= 0.0
      then
        fail_gate
          (Printf.sprintf "service_throughput/%s/jobs_per_sec" (skey s))
          (Printf.sprintf "bad throughput %f" s.srv_jobs_per_sec))
    p.service;
  (* Streaming scheduler rows: structural sanity per row, the immediate
     policy's defining property (one epoch per job), and the headline
     claim — on the bursty trace at domains:1 the delta-aware policy
     must beat immediate on total power (same per-job power, fewer
     reconfigurations). *)
  if p.streaming = [] then
    fail_gate "streaming"
      (Printf.sprintf "%s contains no streaming rows" file);
  List.iter
    (fun (r : stream_row) ->
      if
        (not (Float.is_finite r.sr_p50_ms))
        || r.sr_p50_ms <= 0.0
        || (not (Float.is_finite r.sr_p99_ms))
        || r.sr_p99_ms < r.sr_p50_ms
      then
        fail_gate
          (Printf.sprintf "%s/sojourn" (stkey r))
          (Printf.sprintf "bad percentiles (p50 %f ms, p99 %f ms)"
             r.sr_p50_ms r.sr_p99_ms);
      if
        (not (Float.is_finite r.sr_jobs_per_sec)) || r.sr_jobs_per_sec <= 0.0
      then
        fail_gate
          (Printf.sprintf "%s/jobs_per_sec" (stkey r))
          (Printf.sprintf "bad throughput %f" r.sr_jobs_per_sec);
      if r.sr_epochs < 1 || r.sr_epochs > r.sr_jobs then
        fail_gate
          (Printf.sprintf "%s/epochs" (stkey r))
          (Printf.sprintf "epochs %d outside [1, %d jobs]" r.sr_epochs
             r.sr_jobs);
      if r.sr_policy = "immediate" && r.sr_epochs <> r.sr_jobs then
        fail_gate
          (Printf.sprintf "%s/epochs" (stkey r))
          (Printf.sprintf
             "immediate must pay one reconfiguration per job: %d epochs, \
              %d jobs"
             r.sr_epochs r.sr_jobs);
      if (not (Float.is_finite r.sr_total_power)) || r.sr_total_power <= 0.0
      then
        fail_gate
          (Printf.sprintf "%s/total_power" (stkey r))
          (Printf.sprintf "bad total power %f" r.sr_total_power))
    p.streaming;
  let stream_find process policy pes =
    List.find_opt
      (fun (r : stream_row) ->
        r.sr_process = process && r.sr_policy = policy && r.sr_domains = 1
        && r.sr_pes = pes)
      p.streaming
  in
  let stream_pes =
    List.sort_uniq compare
      (List.map (fun (r : stream_row) -> r.sr_pes) p.streaming)
  in
  let delta_gates =
    List.filter_map
      (fun pes ->
        match
          (stream_find "bursty" "delta" pes, stream_find "bursty" "immediate" pes)
        with
        | Some d, Some i ->
            if d.sr_total_power >= i.sr_total_power then
              fail_gate
                (Printf.sprintf "streaming/bursty/%d/delta_total_power" pes)
                (Printf.sprintf
                   "delta policy must beat immediate on total power on the \
                    bursty trace: %.1f vs %.1f (epochs %d vs %d)"
                   d.sr_total_power i.sr_total_power d.sr_epochs i.sr_epochs);
            Some (pes, d.sr_total_power < i.sr_total_power)
        | _ ->
            fail_gate
              (Printf.sprintf "streaming/bursty/%d" pes)
              "missing the bursty delta/immediate row pair at domains:1";
            None)
      stream_pes
  in
  (match p.log_overhead with
  | None ->
      fail_gate "log_overhead"
        (Printf.sprintf "%s is missing the log_overhead section" file)
  | Some lg ->
      if
        (not (Float.is_finite lg.lg_ns_per_append))
        || lg.lg_ns_per_append <= 0.0
        || lg.lg_bytes_per_event <= 0.0
      then
        fail_gate "log_overhead/ns_per_append"
          (Printf.sprintf "bad log_overhead (%f ns, %f B)" lg.lg_ns_per_append
             lg.lg_bytes_per_event));
  (match p.plan_cache with
  | None ->
      fail_gate "plan_cache"
        (Printf.sprintf "%s is missing the plan_cache section" file)
  | Some pc ->
      if
        (not (Float.is_finite pc.pc_compile_ns))
        || pc.pc_compile_ns <= 0.0
        || (not (Float.is_finite pc.pc_replay_ns))
        || pc.pc_replay_ns <= 0.0
      then
        fail_gate "plan_cache/compile_ns"
          (Printf.sprintf "bad timings (compile %f ns, replay %f ns)"
             pc.pc_compile_ns pc.pc_replay_ns)
      else begin
        let speedup = pc.pc_compile_ns /. pc.pc_replay_ns in
        if speedup < 3.0 then
          fail_gate "plan_cache/speedup"
            (Printf.sprintf
               "replay must be >= 3x faster than compile, measured %.2fx at \
                %d PEs"
               speedup pc.pc_pes);
        if pc.pc_hit_rate < 0.80 then
          fail_gate "plan_cache/hit_rate"
            (Printf.sprintf
               "repetitive trace must hit >= 80%%, measured %.1f%%"
               (100.0 *. pc.pc_hit_rate))
      end);
  (match p.par_engine with
  | None ->
      fail_gate "par_engine"
        (Printf.sprintf "%s is missing the par_engine section" file)
  | Some pr ->
      if
        (not (Float.is_finite pr.pr_seq_ns))
        || pr.pr_seq_ns <= 0.0
        || (not (Float.is_finite pr.pr_par_d1_ns))
        || pr.pr_par_d1_ns <= 0.0
      then
        fail_gate "par_engine/seq_ns"
          (Printf.sprintf "bad timings (seq %f ns, par d1 %f ns)" pr.pr_seq_ns
             pr.pr_par_d1_ns);
      if not pr.pr_digest_match then
        fail_gate "par_engine/digest_match"
          "merged log must be digest-identical to the sequential engine's";
      if not pr.pr_work_conserved then
        fail_gate "par_engine/work_conserved"
          "per-block event counts must sum to the sequential run's";
      (* The single-core gate: at domains:1 the decomposition + merge
         machinery may cost at most 10% over the sequential engine.
         Full-size runs only — on the --fast smoke grid the blocks are a
         few dozen PEs and the constant per-block cost dominates. *)
      if (not p.fast) && pr.pr_overhead > 1.10 then
        fail_gate "par_engine/overhead"
          (Printf.sprintf
             "domains:1 must stay within 10%% of the sequential engine, \
              measured %.1f%% at %d PEs"
             (100.0 *. (pr.pr_overhead -. 1.0))
             pr.pr_pes));
  (* Persistent plan store: the digest certificate is a correctness
     claim and holds at any size, but the >= 3x warm-start gate is a
     file-system timing and only asked of full-size runs, like the
     par_engine overhead gate. *)
  if p.plan_store = [] then
    fail_gate "plan_store"
      (Printf.sprintf "%s is missing the plan_store section" file);
  List.iter
    (fun (ps : store_row) ->
      if
        (not (Float.is_finite ps.ps_recompile_ns))
        || ps.ps_recompile_ns <= 0.0
        || (not (Float.is_finite ps.ps_warm_ns))
        || ps.ps_warm_ns <= 0.0
        || ps.ps_codec_ns_per_event <= 0.0
      then
        fail_gate
          (Printf.sprintf "plan_store/%d/timings" ps.ps_pes)
          (Printf.sprintf
             "bad timings (recompile %f ns, warm %f ns, codec %f ns/event)"
             ps.ps_recompile_ns ps.ps_warm_ns ps.ps_codec_ns_per_event)
      else begin
        if not ps.ps_digest_ok then
          fail_gate
            (Printf.sprintf "plan_store/%d/digest_ok" ps.ps_pes)
            "decoded plan's replay must be digest-identical to a fresh run";
        let speedup = ps.ps_recompile_ns /. ps.ps_warm_ns in
        if (not p.fast) && speedup < 3.0 then
          fail_gate
            (Printf.sprintf "plan_store/%d/warm_speedup" ps.ps_pes)
            (Printf.sprintf
               "warm-store cold start must be >= 3x faster than recompile, \
                measured %.2fx at %d PEs"
               speedup ps.ps_pes)
      end)
    p.plan_store;
  (* Generalized topologies (schema v2+): the same controlled trace on
     binary, k-ary and capacity-weighted fat trees.  The scheduler meets
     the capacity-weighted width bound on every shape, and a fat tree
     with uplink capacity c must cut the binary round count by exactly
     ceil(bin/c) — the paper's Theorem 5 divided by the oversubscription
     ratio.  v1 files (the committed baselines) predate the section and
     are tolerated without it, with a note so the skip is visible. *)
  let v2 =
    match p.schema with
    | Some s -> s <> "cst-padr/bench-engine/v1"
    | None -> false
  in
  if (not v2) && p.topology = [] then
    Printf.printf
      "check_regression: note: no topology section (schema v1 file)\n";
  if v2 && p.topology = [] then
    fail_gate "topology"
      (Printf.sprintf "%s is missing the topology section" file);
  let bin_row =
    List.find_opt
      (fun (r : topo_row) ->
        String.length r.tp_shape >= 4 && String.sub r.tp_shape 0 4 = "bin:")
      p.topology
  in
  if v2 && p.topology <> [] && bin_row = None then
    fail_gate "topology/bin"
      "topology section has no binary-tree reference row";
  List.iter
    (fun (r : topo_row) ->
      if (not (Float.is_finite r.tp_ns)) || r.tp_ns <= 0.0 then
        fail_gate
          (Printf.sprintf "%s/ns_per_op" (tkey r))
          (Printf.sprintf "bad timing %f" r.tp_ns);
      if r.tp_width < 1 then
        fail_gate
          (Printf.sprintf "%s/width" (tkey r))
          (Printf.sprintf "capacity-weighted width %d below 1" r.tp_width);
      if r.tp_rounds <> r.tp_width then
        fail_gate
          (Printf.sprintf "%s/rounds" (tkey r))
          (Printf.sprintf
             "scheduler must meet the width bound on the bench trace: %d \
              rounds, width %d"
             r.tp_rounds r.tp_width);
      if r.tp_connects + r.tp_writes <= 0 then
        fail_gate
          (Printf.sprintf "%s/power" (tkey r))
          (Printf.sprintf
             "a non-empty schedule must spend power: %d connects, %d writes"
             r.tp_connects r.tp_writes);
      match bin_row with
      | Some b when r.tp_cap > 1 ->
          let expect = (b.tp_rounds + r.tp_cap - 1) / r.tp_cap in
          if r.tp_rounds <> expect then
            fail_gate
              (Printf.sprintf "%s/cap_rounds" (tkey r))
              (Printf.sprintf
                 "capacity-%d uplinks must cut the binary round count to \
                  ceil(%d/%d) = %d, measured %d"
                 r.tp_cap b.tp_rounds r.tp_cap expect r.tp_rounds)
      | _ -> ())
    p.topology;
  (* Multi-domain scaling: running wider must not collapse throughput.
     Only meaningful when the producing host had the cores — at nproc=1
     every extra domain is pure contention, so the gate is skipped (with
     a note, so a silent skip cannot masquerade as a pass). *)
  (match p.nproc with
  | Some 1 ->
      Printf.printf
        "check_regression: note: skipping multi-domain gates (nproc=1)\n"
  | _ ->
      let best_multi pes =
        List.fold_left
          (fun acc s ->
            if s.srv_pes = pes && s.srv_domains > 1 then
              Float.max acc s.srv_jobs_per_sec
            else acc)
          neg_infinity p.service
      in
      List.iter
        (fun s ->
          if s.srv_domains = 1 then
            let multi = best_multi s.srv_pes in
            if Float.is_finite multi && multi < 0.9 *. s.srv_jobs_per_sec
            then
              fail_gate
                (Printf.sprintf "service_throughput/%d/scaling" s.srv_pes)
                (Printf.sprintf
                   "best multi-domain throughput %.1f jobs/s is below 90%% \
                    of the domains:1 rate %.1f"
                   multi s.srv_jobs_per_sec))
        p.service);
  (* The verdict's plan_store section: one object per row with the
     named gates, so CI can key on "plan_store" without re-deriving the
     thresholds. *)
  let plan_store_json =
    Printf.sprintf "[%s]"
      (String.concat ", "
         (List.map
            (fun (ps : store_row) ->
              let speedup = ps.ps_recompile_ns /. Float.max ps.ps_warm_ns 1e-9 in
              Printf.sprintf
                "{\"pes\": %d, \"warm_speedup\": %.2f, \
                 \"codec_ns_per_event\": %.2f, \"gates\": \
                 {\"digest_identical\": \"%s\", \"warm_speedup_3x\": \"%s\"}}"
                ps.ps_pes speedup ps.ps_codec_ns_per_event
                (if ps.ps_digest_ok then "pass" else "fail")
                (if p.fast then "skipped"
                 else if speedup >= 3.0 then "pass"
                 else "fail"))
            p.plan_store))
  in
  let streaming_json =
    Printf.sprintf "{\"rows\": %d, \"delta_vs_immediate\": [%s]}"
      (List.length p.streaming)
      (String.concat ", "
         (List.map
            (fun (pes, ok) ->
              Printf.sprintf
                "{\"pes\": %d, \"delta_beats_immediate\": \"%s\"}" pes
                (if ok then "pass" else "fail"))
            delta_gates))
  in
  let topology_json =
    let bin_rounds =
      match bin_row with Some b -> string_of_int b.tp_rounds | None -> "null"
    in
    Printf.sprintf "{\"rows\": %d, \"bin_rounds\": %s, \"shapes\": [%s]}"
      (List.length p.topology) bin_rounds
      (String.concat ", "
         (List.map
            (fun (r : topo_row) ->
              Printf.sprintf
                "{\"shape\": \"%s\", \"cap\": %d, \"rounds\": %d, \"gates\": \
                 {\"rounds_meet_width\": \"%s\", \"cap_speedup\": \"%s\"}}"
                (json_escape r.tp_shape) r.tp_cap r.tp_rounds
                (if r.tp_rounds = r.tp_width then "pass" else "fail")
                (match bin_row with
                | Some b when r.tp_cap > 1 ->
                    if r.tp_rounds = (b.tp_rounds + r.tp_cap - 1) / r.tp_cap
                    then "pass"
                    else "fail"
                | _ -> "skipped"))
            p.topology))
  in
  finish ?out ~mode:"validate"
    ~extra:
      [
        ("file", Printf.sprintf "\"%s\"" (json_escape file));
        ( "nproc",
          match p.nproc with Some n -> string_of_int n | None -> "null" );
        ("plan_store", plan_store_json);
        ("streaming", streaming_json);
        ("topology", topology_json);
      ]
    ~ok_message:
      (Printf.sprintf
         "check_regression: %s ok (%d rows, %d service rows, %d streaming \
          rows)"
         file (List.length p.rows) (List.length p.service)
         (List.length p.streaming))
    ()

let compare_files ?out ~threshold baseline fresh =
  let base = parse_rows baseline and cur = parse_rows fresh in
  let lookup rows k = List.find_opt (fun r -> key r = k) rows in
  (* [gate ~slower] prints the comparison row; out-of-threshold ratios
     are also recorded as violations under section/metric.  [slower]
     selects the failing direction: true gates times (bigger is worse),
     false gates rates (smaller is worse). *)
  let gate ~slower ~section ~metric ~label b f =
    let ratio = f /. b in
    let bad =
      if slower then ratio > 1.0 +. (threshold /. 100.0)
      else ratio < 1.0 -. (threshold /. 100.0)
    in
    if bad then
      fail_gate
        (Printf.sprintf "%s/%s" section metric)
        (Printf.sprintf "%.2f -> %.2f (%.2fx, threshold %.0f%%)" b f ratio
           threshold);
    Printf.printf "%-28s %12.2f %12.2f %7.2fx%s\n" label b f ratio
      (if bad then "  REGRESSION" else "")
  in
  let missing ~section ~label b =
    fail_gate section "present in the baseline, missing from the fresh run";
    Printf.printf "%-28s %12.2f %12s %8s  MISSING\n" label b "-" "-"
  in
  Printf.printf "%-28s %12s %12s %8s\n" "kernel/pes/width" "baseline"
    "fresh" "ratio";
  List.iter
    (fun b ->
      match lookup cur.rows (key b) with
      | None -> missing ~section:(Printf.sprintf "results/%s" (key b))
                  ~label:(key b) b.ns_per_op
      | Some f ->
          gate ~slower:true ~section:(Printf.sprintf "results/%s" (key b))
            ~metric:"ns_per_op" ~label:(key b) b.ns_per_op f.ns_per_op)
    base.rows;
  (* Throughput rows gate in the opposite direction: fewer jobs/sec than
     the baseline by more than the threshold fails.  Multi-domain rows
     are only comparable when both hosts could actually scale: with
     either side at nproc=1 they measure contention and are skipped. *)
  let single_core =
    base.nproc = Some 1 || cur.nproc = Some 1
  in
  if
    single_core
    && (List.exists (fun s -> s.srv_domains > 1) base.service
       || List.exists (fun (r : stream_row) -> r.sr_domains > 1)
            base.streaming)
  then
    Printf.printf
      "check_regression: note: skipping multi-domain gates (nproc=1)\n";
  List.iter
    (fun b ->
      if single_core && b.srv_domains > 1 then ()
      else
      match
        List.find_opt
          (fun s ->
            s.srv_domains = b.srv_domains && s.srv_pes = b.srv_pes)
          cur.service
      with
      | None ->
          missing
            ~section:(Printf.sprintf "service_throughput/%s" (skey b))
            ~label:(skey b) b.srv_jobs_per_sec
      | Some f ->
          gate ~slower:false
            ~section:(Printf.sprintf "service_throughput/%s" (skey b))
            ~metric:"jobs_per_sec" ~label:(skey b) b.srv_jobs_per_sec
            f.srv_jobs_per_sec)
    base.service;
  (* Streaming rows: p99 sojourn gates like a time (bigger is worse),
     delivered throughput like a rate.  Multi-domain rows are skipped on
     single-core hosts for the same reason as service_throughput. *)
  List.iter
    (fun (b : stream_row) ->
      if single_core && b.sr_domains > 1 then ()
      else
        match
          List.find_opt
            (fun (f : stream_row) ->
              f.sr_process = b.sr_process && f.sr_policy = b.sr_policy
              && f.sr_domains = b.sr_domains
              && f.sr_pes = b.sr_pes)
            cur.streaming
        with
        | None -> missing ~section:(stkey b) ~label:(stkey b) b.sr_p99_ms
        | Some f ->
            gate ~slower:true ~section:(stkey b) ~metric:"p99_ms"
              ~label:(stkey b) b.sr_p99_ms f.sr_p99_ms;
            gate ~slower:false ~section:(stkey b) ~metric:"jobs_per_sec"
              ~label:(stkey b ^ " jps") b.sr_jobs_per_sec f.sr_jobs_per_sec)
    base.streaming;
  (* The log append sits on every scheduler's inner loop: gate its rate
     like any timed kernel. *)
  (match (base.log_overhead, cur.log_overhead) with
  | None, _ -> ()
  | Some b, None ->
      missing ~section:"log_overhead"
        ~label:(Printf.sprintf "log-append/%d" b.lg_pes)
        b.lg_ns_per_append
  | Some b, Some f ->
      gate ~slower:true ~section:"log_overhead" ~metric:"ns_per_append"
        ~label:(Printf.sprintf "log-append/%d" b.lg_pes)
        b.lg_ns_per_append f.lg_ns_per_append);
  (* Plan cache: compile and replay cost are timed kernels; the trace
     hit rate gates like a throughput (lower is worse). *)
  (match (base.plan_cache, cur.plan_cache) with
  | None, _ -> ()
  | Some b, None ->
      missing ~section:"plan_cache"
        ~label:(Printf.sprintf "plan-cache/%d" b.pc_pes)
        b.pc_compile_ns
  | Some b, Some f ->
      let label metric = Printf.sprintf "plan-%s/%d" metric b.pc_pes in
      gate ~slower:true ~section:"plan_cache" ~metric:"compile_ns"
        ~label:(label "compile") b.pc_compile_ns f.pc_compile_ns;
      gate ~slower:true ~section:"plan_cache" ~metric:"replay_ns"
        ~label:(label "replay") b.pc_replay_ns f.pc_replay_ns;
      gate ~slower:false ~section:"plan_cache" ~metric:"hit_rate"
        ~label:(label "hit-rate") b.pc_hit_rate f.pc_hit_rate);
  (* Segment-parallel engine: both timings gate like any kernel, and a
     fresh run that loses the correctness certificates fails outright. *)
  (match (base.par_engine, cur.par_engine) with
  | None, _ -> ()
  | Some b, None ->
      missing ~section:"par_engine"
        ~label:(Printf.sprintf "par-seq/%d" b.pr_pes)
        b.pr_seq_ns
  | Some b, Some f ->
      let label metric = Printf.sprintf "par-%s/%d" metric b.pr_pes in
      gate ~slower:true ~section:"par_engine" ~metric:"seq_ns"
        ~label:(label "seq") b.pr_seq_ns f.pr_seq_ns;
      gate ~slower:true ~section:"par_engine" ~metric:"par_d1_ns"
        ~label:(label "d1") b.pr_par_d1_ns f.pr_par_d1_ns;
      if not f.pr_digest_match then
        fail_gate "par_engine/digest_match"
          "fresh run lost digest identity with the sequential engine";
      if not f.pr_work_conserved then
        fail_gate "par_engine/work_conserved"
          "fresh run no longer conserves per-block work");
  (* Persistent plan store: both cold-start timings and the codec rate
     gate like any kernel; a fresh run that loses the replay digest
     certificate fails outright. *)
  List.iter
    (fun (b : store_row) ->
      let section = Printf.sprintf "plan_store/%d" b.ps_pes in
      match
        List.find_opt (fun (f : store_row) -> f.ps_pes = b.ps_pes)
          cur.plan_store
      with
      | None ->
          missing ~section
            ~label:(Printf.sprintf "store-warm/%d" b.ps_pes)
            b.ps_warm_ns
      | Some f ->
          let label metric =
            Printf.sprintf "store-%s/%d" metric b.ps_pes
          in
          gate ~slower:true ~section ~metric:"recompile_ns"
            ~label:(label "recompile") b.ps_recompile_ns f.ps_recompile_ns;
          gate ~slower:true ~section ~metric:"warm_ns"
            ~label:(label "warm") b.ps_warm_ns f.ps_warm_ns;
          gate ~slower:true ~section ~metric:"codec_ns_per_event"
            ~label:(label "codec") b.ps_codec_ns_per_event
            f.ps_codec_ns_per_event;
          if not f.ps_digest_ok then
            fail_gate
              (Printf.sprintf "%s/digest_ok" section)
              "fresh run lost replay digest identity with a fresh run")
    base.plan_store;
  (* Topology rows: the scheduling time on each shape gates like any
     timed kernel.  v1 baselines carry no topology rows, so the loop is
     naturally empty against them. *)
  List.iter
    (fun (b : topo_row) ->
      match
        List.find_opt
          (fun (f : topo_row) -> f.tp_shape = b.tp_shape)
          cur.topology
      with
      | None -> missing ~section:(tkey b) ~label:(tkey b) b.tp_ns
      | Some f ->
          gate ~slower:true ~section:(tkey b) ~metric:"ns_per_op"
            ~label:(tkey b) b.tp_ns f.tp_ns)
    base.topology;
  finish ?out ~mode:"compare"
    ~extra:
      [
        ("baseline", Printf.sprintf "\"%s\"" (json_escape baseline));
        ("fresh", Printf.sprintf "\"%s\"" (json_escape fresh));
        ("threshold_pct", Printf.sprintf "%.1f" threshold);
      ]
    ~ok_message:
      (Printf.sprintf "check_regression: no kernel regressed beyond %.0f%%"
         threshold)
    ()

let () =
  let out = ref None in
  let threshold = ref 25.0 in
  let validate_file = ref None in
  let positional = ref [] in
  let usage () =
    prerr_endline
      "usage: check_regression (--validate FILE | BASELINE FRESH \
       [--threshold PCT]) [--out VERDICT.json]";
    exit 2
  in
  let rec go = function
    | [] -> ()
    | "--out" :: file :: rest ->
        out := Some file;
        go rest
    | "--threshold" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some t ->
            threshold := t;
            go rest
        | None -> usage ())
    | "--validate" :: file :: rest ->
        validate_file := Some file;
        go rest
    | a :: rest ->
        if String.length a > 1 && a.[0] = '-' then usage ();
        positional := a :: !positional;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match (!validate_file, List.rev !positional) with
  | Some file, [] -> validate ?out:!out file
  | None, [ baseline; fresh ] ->
      compare_files ?out:!out ~threshold:!threshold baseline fresh
  | _ -> usage ()

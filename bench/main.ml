(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The paper (IPPS 2007) is theoretical and publishes no measurement
   tables; its claims are reproduced here as experiments E1-E7 plus two
   "figures" (ASCII plots), followed by Bechamel micro-benchmarks of the
   implementation itself.

   Run with:  dune exec bench/main.exe            (full output)
              dune exec bench/main.exe -- --fast  (skip micro-benchmarks) *)

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let algos : Cst_baselines.Registry.algo list = Cst_baselines.Registry.all

let widths = [ 1; 2; 4; 8; 16; 32; 64; 128 ]
let sweep_n = 256

let set_for_width ~seed w =
  Cst_workloads.Gen_wn.with_width
    (Cst_util.Prng.create (seed + w))
    ~n:sweep_n ~width:w

(* E1 — Theorem 4: correctness at scale. *)
let e1 () =
  section "E1 - Theorem 4: end-to-end delivery correctness";
  let table =
    Cst_report.Table.create
      ~title:"random well-nested sets, full verification (10 seeds each)"
      ~columns:[ "PEs"; "sets"; "comms"; "verified"; "failed" ]
  in
  List.iter
    (fun n ->
      let comms = ref 0 and ok = ref 0 and bad = ref 0 in
      for seed = 1 to 10 do
        let rng = Cst_util.Prng.create seed in
        let density = 0.1 +. Cst_util.Prng.float rng 0.9 in
        let set = Cst_workloads.Gen_wn.uniform rng ~n ~density in
        comms := !comms + Cst_comm.Comm_set.size set;
        let sched = Padr.schedule_exn set in
        if (Padr.verify sched).ok then incr ok else incr bad
      done;
      Cst_report.Table.add_int_row table [ n; 10; !comms; !ok; !bad ])
    [ 8; 64; 512; 2048 ];
  Cst_report.Table.print table;
  Format.printf "paper claim: every communication established (zero failures)@."

(* E2 — Theorem 5: rounds = width, exactly, and only for the CSA. *)
let e2 () =
  section "E2 - Theorem 5: schedule length vs. width";
  let table =
    Cst_report.Table.create
      ~title:
        (Printf.sprintf "width-targeted sets on %d PEs: rounds per algorithm"
           sweep_n)
      ~columns:
        ("width" :: "comms"
        :: List.map (fun (a : Cst_baselines.Registry.algo) -> a.name) algos)
  in
  let topo = Cst.Topology.create ~leaves:sweep_n in
  let csa_exact = ref true in
  List.iter
    (fun w ->
      let set = set_for_width ~seed:100 w in
      let rounds =
        List.map
          (fun (a : Cst_baselines.Registry.algo) ->
            Padr.Schedule.num_rounds (a.run topo set))
          algos
      in
      (match rounds with
      | csa_rounds :: _ -> if csa_rounds <> w then csa_exact := false
      | [] -> ());
      Cst_report.Table.add_int_row table
        (w :: Cst_comm.Comm_set.size set :: rounds))
    widths;
  Cst_report.Table.print table;
  Format.printf "paper claim: CSA finishes in exactly w rounds -> %s@."
    (if !csa_exact then "reproduced" else "NOT reproduced")

(* E3 — Theorem 8: per-switch configuration cost, the headline contrast. *)
let e3 () =
  section "E3 - Theorem 8: max configuration writes per switch vs. width";
  let table =
    Cst_report.Table.create
      ~title:
        (Printf.sprintf
           "width-targeted sets on %d PEs: max writes at any single switch"
           sweep_n)
      ~columns:
        ("width"
        :: List.map (fun (a : Cst_baselines.Registry.algo) -> a.name) algos)
  in
  let topo = Cst.Topology.create ~leaves:sweep_n in
  let per_algo = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let set = set_for_width ~seed:100 w in
      let cells =
        List.map
          (fun (a : Cst_baselines.Registry.algo) ->
            let s = a.run topo set in
            let v = s.power.max_writes_per_switch in
            let pts =
              Option.value ~default:[] (Hashtbl.find_opt per_algo a.name)
            in
            Hashtbl.replace per_algo a.name
              ((float_of_int w, float_of_int v) :: pts);
            v)
          algos
      in
      Cst_report.Table.add_int_row table (w :: cells))
    widths;
  Cst_report.Table.print table;
  Format.printf "@.least-squares slope of max-writes vs width:@.";
  List.iter
    (fun (a : Cst_baselines.Registry.algo) ->
      let pts = Array.of_list (Hashtbl.find per_algo a.name) in
      let fit = Cst_util.Stats.linear_fit pts in
      Format.printf "  %-10s slope=%6.3f  (%s)@." a.name fit.slope
        (if Float.abs fit.slope < 0.05 then "O(1) - constant in w"
         else "grows with w"))
    algos;
  Format.printf
    "paper claim: CSA O(1) vs Roy et al. O(w) per switch -> compare slopes@.";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_algo []

(* F1 — the headline figure.  The contrasted pair is selected by
   capability, not by name: the power-optimal scheduler(s) against the
   ID-based representative of the per-round O(w) family. *)
let f1 per_algo =
  section "F1 - figure: per-switch configuration writes, CSA vs ID-scheduling";
  let contrast =
    List.map
      (fun (a : Cst_baselines.Registry.algo) -> a.name)
      (Cst_baselines.Registry.capable ~power_optimal:true ())
    @ [ Cst_baselines.Registry.roy_id.name ]
  in
  let series =
    List.filter_map
      (fun name ->
        Option.map
          (fun pts ->
            { Cst_report.Ascii_plot.label = name; points = List.rev pts })
          (List.assoc_opt name per_algo))
      contrast
  in
  Cst_report.Ascii_plot.print ~title:"max writes per switch vs width"
    ~x_label:"width" ~y_label:"max writes/switch" series

(* E4 — total power units.  Columns come from the registry's capability
   view, so a new scheduler shows up here without editing the harness. *)
let e4 () =
  section "E4 - total power (connection writes) and the structural floor";
  let e4_algos = Cst_baselines.Registry.capable () in
  let table =
    Cst_report.Table.create
      ~title:
        (Printf.sprintf "total writes over the whole schedule (%d PEs)"
           sweep_n)
      ~columns:
        ("width" :: "comms" :: "floor"
        :: List.map
             (fun (a : Cst_baselines.Registry.algo) -> a.name)
             e4_algos)
  in
  let topo = Cst.Topology.create ~leaves:sweep_n in
  List.iter
    (fun w ->
      let set = set_for_width ~seed:100 w in
      let floor_ = Cst_baselines.Bounds.min_total_connects topo set in
      Cst_report.Table.add_int_row table
        (w :: Cst_comm.Comm_set.size set :: floor_
        :: List.map
             (fun (a : Cst_baselines.Registry.algo) ->
               (a.run topo set).power.total_writes)
             e4_algos))
    widths;
  Cst_report.Table.print table;
  Format.printf
    "the CSA sits near the floor (each connection set once); per-round \
     schedulers pay per participation@."

(* E5 — Theorem 5 efficiency: constant words, messages, cycles. *)
let e5 () =
  section
    "E5 - Theorem 5: locality and efficiency of the message-passing engine";
  let table =
    Cst_report.Table.create
      ~title:"engine statistics at width 8 across tree sizes"
      ~columns:
        [
          "PEs"; "rounds"; "cycles"; "cycles-model"; "messages";
          "max-msg-words"; "state-words";
        ]
  in
  List.iter
    (fun n ->
      let rng = Cst_util.Prng.create 500 in
      let set = Cst_workloads.Gen_wn.with_width rng ~n ~width:8 in
      let topo = Cst.Topology.create ~leaves:n in
      let sched, stats = Padr.Engine.run_exn topo set in
      let levels = Cst.Topology.levels topo in
      let rounds = Padr.Schedule.num_rounds sched in
      let model = 1 + levels + (rounds * (levels + 2)) in
      Cst_report.Table.add_int_row table
        [
          n; rounds; stats.cycles; model; stats.control_messages;
          stats.max_message_words; stats.state_words_per_switch;
        ])
    [ 16; 64; 256; 1024; 4096 ];
  Cst_report.Table.print table;
  Format.printf
    "message and storage sizes are constants; cycles follow \
     (log n + w(log n + 2)) - Theta(w log n)@."

(* E6 — cross-workload comparison. *)
let e6 () =
  section "E6 - all schedulers across the workload suite";
  let n = 256 in
  let table =
    Cst_report.Table.create
      ~title:(Printf.sprintf "named workloads on %d PEs" n)
      ~columns:
        [
          "workload"; "comms"; "width"; "csa rnds"; "roy rnds"; "csa wr/sw";
          "roy wr/sw"; "csa total"; "roy total";
        ]
  in
  let topo = Cst.Topology.create ~leaves:n in
  List.iter
    (fun (g : Cst_workloads.Suite.gen) ->
      let set = g.make (Cst_util.Prng.create 42) ~n in
      let csa = Padr.Csa.run_exn topo set in
      let roy = Cst_baselines.Roy_id.run topo set in
      Cst_report.Table.add_row table
        [
          g.name;
          string_of_int (Cst_comm.Comm_set.size set);
          string_of_int csa.width;
          string_of_int (Padr.Schedule.num_rounds csa);
          string_of_int (Padr.Schedule.num_rounds roy);
          string_of_int csa.power.max_writes_per_switch;
          string_of_int roy.power.max_writes_per_switch;
          string_of_int csa.power.total_writes;
          string_of_int roy.power.total_writes;
        ])
    Cst_workloads.Suite.all;
  Cst_report.Table.print table

(* E7 — ablation: lazy carry-over vs eager clearing. *)
let e7 () =
  section "E7 - ablation: PADR lazy carry-over vs eager per-round clearing";
  let table =
    Cst_report.Table.create
      ~title:
        (Printf.sprintf
           "CSA decisions, two reconfiguration disciplines (%d PEs)" sweep_n)
      ~columns:
        [
          "width"; "lazy conn"; "lazy disc"; "eager conn"; "eager disc";
          "eager/lazy";
        ]
  in
  let topo = Cst.Topology.create ~leaves:sweep_n in
  List.iter
    (fun w ->
      let set = set_for_width ~seed:100 w in
      let lz = Padr.Csa.run_exn topo set in
      let eg = Padr.Csa.run_exn ~eager_clear:true topo set in
      let levents (s : Padr.Schedule.t) =
        s.power.total_connects + s.power.total_disconnects
      in
      Cst_report.Table.add_row table
        [
          string_of_int w;
          string_of_int lz.power.total_connects;
          string_of_int lz.power.total_disconnects;
          string_of_int eg.power.total_connects;
          string_of_int eg.power.total_disconnects;
          Cst_report.Table.cell_float
            (float_of_int (levents eg) /. float_of_int (max 1 (levents lz)));
        ])
    widths;
  Cst_report.Table.print table;
  Format.printf
    "the outermost-first selection does most of the work; carry-over \
     removes the residual churn@."

(* E8 — beyond the paper: arbitrary sets as well-nested waves. *)
let e8 () =
  section "E8 - extension: arbitrary (crossing) sets as CSA waves";
  let n = 256 in
  let table =
    Cst_report.Table.create
      ~title:(Printf.sprintf "wave cover of crossing patterns (%d PEs)" n)
      ~columns:
        [
          "pattern"; "comms"; "clique-bound"; "waves"; "rounds";
          "writes"; "max wr/sw";
        ]
  in
  let rng = Cst_util.Prng.create 808 in
  let patterns =
    List.map
      (fun stage ->
        ( Printf.sprintf "butterfly s=%d" stage,
          Cst_workloads.Gen_arbitrary.butterfly ~n ~stage ))
      [ 0; 2; 4; 6 ]
    @ [
        ( "random pairs 64",
          Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:64 );
        ( "bit-reversal",
          Cst_workloads.Gen_arbitrary.bit_reversal_sample rng ~n );
      ]
  in
  List.iter
    (fun (name, set) ->
      let right, left = Cst_comm.Decompose.split set in
      let bound =
        max
          (Cst_comm.Wn_cover.clique_lower_bound right)
          (Cst_comm.Wn_cover.clique_lower_bound (Cst_comm.Mirror.set left))
      in
      let w = Padr.Waves.schedule_exn set in
      assert (Padr.Waves.deliveries w = Cst_comm.Comm_set.matching set);
      Cst_report.Table.add_row table
        [
          name;
          string_of_int (Cst_comm.Comm_set.size set);
          string_of_int bound;
          string_of_int (Padr.Waves.num_waves w);
          string_of_int w.rounds;
          string_of_int w.power.total_writes;
          string_of_int w.power.max_writes_per_switch;
        ])
    patterns;
  Cst_report.Table.print table;
  Format.printf
    "the cover meets the crossing-clique lower bound on structured patterns@."

(* E9 — extension: computational algorithms under PADR (Blelloch scan). *)
let e9 () =
  section "E9 - extension: parallel prefix under PADR";
  let table =
    Cst_report.Table.create
      ~title:"Blelloch scan on the CST (sum of random arrays)"
      ~columns:
        [
          "PEs"; "supersteps"; "rounds"; "writes"; "max wr/sw"; "correct";
        ]
  in
  List.iter
    (fun n ->
      let rng = Cst_util.Prng.create (n + 5) in
      let a = Array.init n (fun _ -> Cst_util.Prng.int rng 1000) in
      let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
      let ok =
        r.inclusive
        = Cst_algos.Scan.inclusive_reference Cst_algos.Scan.sum a
      in
      Cst_report.Table.add_row table
        [
          string_of_int n;
          string_of_int r.stats.supersteps;
          string_of_int r.stats.rounds;
          string_of_int r.stats.power.total_writes;
          string_of_int r.stats.power.max_writes_per_switch;
          string_of_bool ok;
        ])
    [ 16; 64; 256; 1024 ];
  Cst_report.Table.print table;
  Format.printf
    "3 log n + 1 supersteps, one width-1 round each; per-switch writes \
     stay small because consecutive levels reuse configurations@."

(* E10 — traffic study over time (the NoC usage). *)
let e10 () =
  section "E10 - traffic trace: energy/latency over 30 phases";
  let rng = Cst_util.Prng.create 3030 in
  let trace = Cst_sim.Traffic.random_well_nested rng ~leaves:256 ~phases:30 () in
  let results = Cst_sim.Runner.compare_all trace in
  let table =
    Cst_report.Table.create
      ~title:(Format.asprintf "%a" Cst_sim.Traffic.pp trace)
      ~columns:[ "scheduler"; "rounds"; "writes"; "max wr/sw"; "vs padr" ]
  in
  let padr = List.assoc "padr" results in
  List.iter
    (fun (name, (r : Cst_sim.Runner.result)) ->
      Cst_report.Table.add_row table
        [
          name;
          string_of_int r.rounds;
          string_of_int r.power.total_writes;
          string_of_int r.power.max_writes_per_switch;
          Cst_report.Table.cell_float (Cst_sim.Runner.energy_ratio r padr);
        ])
    results;
  Cst_report.Table.print table;
  Format.printf
    "cross-phase carry-over compounds the per-schedule savings@."

(* E11 — link utilization and round occupancy of CSA schedules. *)
let e11 () =
  section "E11 - link utilization and occupancy of CSA schedules";
  let table =
    Cst_report.Table.create
      ~title:"traffic-engineering view (256 PEs)"
      ~columns:
        [
          "workload"; "width"; "rounds"; "max link use"; "mean comms/round";
          "max comms/round";
        ]
  in
  List.iter
    (fun name ->
      match Cst_workloads.Suite.find name with
      | None -> ()
      | Some g ->
          let set = g.make (Cst_util.Prng.create 42) ~n:256 in
          let sched = Padr.schedule_exn set in
          let occ = Cst_report.Schedule_stats.occupancy sched in
          Cst_report.Table.add_row table
            [
              name;
              string_of_int sched.width;
              string_of_int occ.rounds;
              string_of_int (Cst_report.Schedule_stats.max_link_use sched);
              Cst_report.Table.cell_float occ.mean_per_round;
              string_of_int occ.max_per_round;
            ])
    [ "uniform"; "dense"; "pairs"; "onion"; "comb"; "blocks" ];
  Cst_report.Table.print table;
  Format.printf
    "the busiest directed link is used in every round (max link use = \
     width): CSA schedules leave no slack on the bottleneck@."

(* F2 — scaling figure: wall-clock time of a full schedule. *)
let f2 () =
  section "F2 - figure: scheduling time vs tree size (dense traffic)";
  let time_once f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let points =
    List.map
      (fun n ->
        let rng = Cst_util.Prng.create 7 in
        let set = Cst_workloads.Gen_wn.uniform rng ~n ~density:1.0 in
        let topo = Cst.Topology.create ~leaves:n in
        let reps = if n <= 1024 then 5 else 2 in
        let dt =
          time_once (fun () ->
              for _ = 1 to reps do
                ignore (Padr.Csa.run_exn ~keep_configs:false topo set)
              done)
          /. float_of_int reps
        in
        (n, dt))
      [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]
  in
  let table =
    Cst_report.Table.create ~title:"full CSA schedule, mean wall-clock"
      ~columns:[ "PEs"; "ms" ]
  in
  List.iter
    (fun (n, dt) ->
      Cst_report.Table.add_row table
        [ string_of_int n; Cst_report.Table.cell_float (dt *. 1000.0) ])
    points;
  Cst_report.Table.print table;
  Cst_report.Ascii_plot.print ~title:"schedule time vs PEs" ~x_label:"PEs"
    ~y_label:"seconds"
    [
      {
        Cst_report.Ascii_plot.label = "csa";
        points = List.map (fun (n, dt) -> (float_of_int n, dt)) points;
      };
    ]

(* Bechamel micro-benchmarks. *)
let microbench () =
  section "micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let n = 1024 in
  let rng = Cst_util.Prng.create 7 in
  let set = Cst_workloads.Gen_wn.uniform rng ~n ~density:1.0 in
  let topo = Cst.Topology.create ~leaves:n in
  let onion = Cst_workloads.Gen_wn.onion ~n ~width:64 in
  let tests =
    Test.make_grouped ~name:"cst"
      [
        Test.make ~name:"phase1/1024"
          (Staged.stage (fun () -> ignore (Padr.Phase1.run topo set)));
        Test.make ~name:"width/1024"
          (Staged.stage (fun () ->
               ignore (Cst_comm.Width.width ~leaves:n set)));
        Test.make ~name:"csa-full/1024-dense"
          (Staged.stage (fun () ->
               ignore (Padr.Csa.run_exn ~keep_configs:false topo set)));
        Test.make ~name:"csa-full/1024-onion64"
          (Staged.stage (fun () ->
               ignore (Padr.Csa.run_exn ~keep_configs:false topo onion)));
        Test.make ~name:"roy-id/1024-onion64"
          (Staged.stage (fun () ->
               ignore (Cst_baselines.Roy_id.run topo onion)));
        Test.make ~name:"engine/1024-dense"
          (Staged.stage (fun () ->
               ignore (Padr.Engine.run_exn ~keep_configs:false topo set)));
        Test.make ~name:"wellnested-check/1024"
          (Staged.stage (fun () ->
               ignore (Cst_comm.Well_nested.is_well_nested set)));
        Test.make ~name:"gen-uniform/1024"
          (Staged.stage (fun () ->
               ignore
                 (Cst_workloads.Gen_wn.uniform
                    (Cst_util.Prng.create 3)
                    ~n ~density:1.0)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Cst_report.Table.create ~title:"per-call cost"
      ~columns:[ "benchmark"; "time/run" ]
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Cst_report.Table.add_row table [ name; pretty ])
    rows;
  Cst_report.Table.print table

(* --json FILE: machine-readable perf baseline.

   Times the sparse engine, the dense reference engine and every registry
   algorithm over a PEs-by-width grid of width-targeted well-nested sets
   and writes one JSON object with one result row per (kernel, pes, width)
   point: ns/op, schedule rounds, engine cycles, control messages and
   allocated words per op (via Gc.allocated_bytes), plus a
   "service_throughput" section timing the batch service over a domain
   grid.  The committed BENCH_engine.json is the perf trajectory baseline;
   compare a fresh run against it with bench/check_regression.ml.  With
   --fast a small smoke grid is used (wired into `dune runtest`). *)

let measure ~budget_s f =
  ignore (f ());
  (* warm-up *)
  let a0 = Gc.allocated_bytes () in
  let t0 = Sys.time () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < budget_s || !reps < 3 do
    ignore (f ());
    incr reps;
    elapsed := Sys.time () -. t0
  done;
  let a1 = Gc.allocated_bytes () in
  let r = float_of_int !reps in
  ( !elapsed *. 1e9 /. r,
    (a1 -. a0) /. float_of_int (Sys.word_size / 8) /. r,
    !reps )

type json_row = {
  kernel : string;
  pes : int;
  bwidth : int;
  ns_per_op : float;
  rounds : int;
  row_cycles : int;
  row_messages : int;
  alloc_words : float;
  reps : int;
}

(* Batch-service throughput: one fixed mixed trace of jobs (well-nested
   suite workloads interleaved with arbitrary crossing sets, all dispatched
   as csa), run through Service.run at each domain count.  Wall-clock, not
   CPU time: with several domains Sys.time sums across cores. *)

type service_row = {
  srv_domains : int;
  srv_pes : int;
  srv_jobs : int;
  srv_jobs_per_sec : float;
  srv_failed : int;
  srv_reps : int;
}

let service_throughput ~fast =
  let n = if fast then 128 else 1024 in
  let job_count = if fast then 16 else 96 in
  let domain_grid = if fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let budget_s = if fast then 0.05 else 1.0 in
  let gens = Cst_workloads.Suite.all in
  let rng = Cst_util.Prng.create 9000 in
  let jobs =
    List.init job_count (fun i ->
        let set =
          if i mod 4 = 3 then
            Cst_workloads.Gen_arbitrary.random_pairs rng ~n
              ~pairs:(max 1 (n / 8))
          else (List.nth gens (i mod List.length gens)).make rng ~n
        in
        Cst_service.Service.job ~id:i ~algo:"csa" set)
  in
  List.map
    (fun domains ->
      let failed = ref 0 in
      let run_once () =
        let outcomes = Cst_service.Service.run ~domains jobs in
        failed :=
          List.length
            (List.filter
               (fun (o : Cst_service.Service.outcome) ->
                 Result.is_error o.result)
               outcomes)
      in
      run_once ();
      (* warm-up *)
      let t0 = Unix.gettimeofday () in
      let reps = ref 0 in
      let elapsed = ref 0.0 in
      while !elapsed < budget_s || !reps < 2 do
        run_once ();
        incr reps;
        elapsed := Unix.gettimeofday () -. t0
      done;
      {
        srv_domains = domains;
        srv_pes = n;
        srv_jobs = job_count;
        srv_jobs_per_sec =
          float_of_int (job_count * !reps) /. Float.max !elapsed 1e-9;
        srv_failed = !failed;
        srv_reps = !reps;
      })
    domain_grid

(* Streaming scheduler: open-loop arrival replay.  Each row replays one
   arrival trace (Poisson or bursty ON/OFF) against one admission policy
   in wall time — the driver sleeps until the next arrival, ticking the
   stream so time-based policies can commit between submissions — and
   records sojourn percentiles, delivered throughput and the power
   split: per-job connects+writes (identical under every policy — the
   jobs are never rewritten) versus the reconfiguration charge
   recon_delta x epochs, which is what a coalescing policy saves.  The
   validate gate in check_regression.ml asserts the delta policy beats
   immediate on total power on the bursty trace at domains:1: immediate
   pays one reconfiguration per job, delta one per burst. *)

type stream_row = {
  st_process : string;
  st_policy : string;  (* policy family: immediate | quantum | delta *)
  st_policy_spec : string;  (* full Admission.to_string form *)
  st_domains : int;
  st_pes : int;
  st_jobs : int;
  st_p50_ms : float;
  st_p99_ms : float;
  st_jobs_per_sec : float;
  st_epochs : int;
  st_job_power : int;
  st_recon_power : float;
  st_total_power : float;
}

let streaming_bench ~fast =
  let pes_grid = if fast then [ 128 ] else [ 1024; 4096 ] in
  let domain_grid = if fast then [ 1 ] else [ 1; 2 ] in
  let job_count = if fast then 12 else 48 in
  (* mean inter-arrival gap in seconds; a trace spans ~ job_count x g *)
  let g = if fast then 0.012 else 0.02 in
  let gens = Cst_workloads.Suite.all in
  let make_jobs n =
    let rng = Cst_util.Prng.create 9100 in
    List.init job_count (fun i ->
        let set =
          if i mod 4 = 3 then
            Cst_workloads.Gen_arbitrary.random_pairs rng ~n
              ~pairs:(max 1 (n / 8))
          else (List.nth gens (i mod List.length gens)).make rng ~n
        in
        Cst_service.Service.job ~id:i ~algo:"csa" set)
  in
  let processes =
    [
      ( "poisson",
        fun () ->
          Cst_workloads.Arrivals.poisson
            (Cst_util.Prng.create 4711)
            ~rate:(1.0 /. g) ~jobs:job_count );
      (* within=0: burst members arrive back-to-back, the case epoch
         coalescing exists for *)
      ( "bursty",
        fun () ->
          Cst_workloads.Arrivals.bursty
            (Cst_util.Prng.create 4711)
            ~burst:6 ~gap:(6.0 *. g) ~jobs:job_count () );
    ]
  in
  let policies =
    [
      Cst_service.Admission.Immediate;
      Cst_service.Admission.Quantum (3.0 *. g);
      (* delta = 2g: a burst's accumulated wait crosses it within a few
         ms of the OFF gap opening, well before the next burst *)
      Cst_service.Admission.Delta_threshold
        { delta = 2.0 *. g; max_width = None };
    ]
  in
  let replay ~domains ~policy trace jobs =
    let stream = Cst_service.Stream.create ~domains ~policy () in
    let t0 = Unix.gettimeofday () in
    List.iteri
      (fun i job ->
        let target = t0 +. trace.Cst_workloads.Arrivals.times.(i) in
        let rec wait () =
          let now = Unix.gettimeofday () in
          if now < target then begin
            Cst_service.Stream.tick stream;
            Unix.sleepf (Float.min 0.001 (target -. now));
            wait ()
          end
        in
        wait ();
        Cst_service.Stream.submit stream job)
      jobs;
    let outs = Cst_service.Stream.drain stream in
    let dt = Unix.gettimeofday () -. t0 in
    let s = Cst_service.Stream.stats stream in
    Cst_service.Stream.shutdown stream;
    assert (List.length outs = List.length jobs);
    (s, dt)
  in
  List.concat_map
    (fun n ->
      let jobs = make_jobs n in
      List.concat_map
        (fun (pname, mk_trace) ->
          List.concat_map
            (fun domains ->
              List.map
                (fun policy ->
                  let s, dt = replay ~domains ~policy (mk_trace ()) jobs in
                  {
                    st_process = pname;
                    st_policy = Cst_service.Admission.name policy;
                    st_policy_spec = Cst_service.Admission.to_string policy;
                    st_domains = domains;
                    st_pes = n;
                    st_jobs = job_count;
                    st_p50_ms = 1000.0 *. s.sojourn_p50;
                    st_p99_ms = 1000.0 *. s.sojourn_p99;
                    st_jobs_per_sec =
                      float_of_int job_count /. Float.max dt 1e-9;
                    st_epochs = s.epochs;
                    st_job_power = s.job_connects + s.job_writes;
                    st_recon_power = s.recon_power;
                    st_total_power = Cst_service.Stream.total_power s;
                  })
                policies)
            domain_grid)
        processes)
    pes_grid

(* Execution-log overhead: the raw append rate on the hot path (the
   connect/deliver mix every producer emits), and the footprint of a
   real engine run — events recorded and bytes per event — at 2048 PEs.
   The append rate is gated by check_regression like any other kernel:
   the log sits on every scheduler's inner loop, so a slow append taxes
   every row in this file at once. *)

type log_row = {
  lg_pes : int;
  lg_events : int;
  lg_ns_per_append : float;
  lg_bytes_per_event : float;
  lg_reps : int;
}

let log_overhead ~fast =
  let n = if fast then 128 else 2048 in
  let budget_s = if fast then 0.02 else 0.25 in
  let appends = 65_536 in
  let ns, _alloc, reps =
    measure ~budget_s (fun () ->
        (* capacity 64 so the doubling growth path is part of the cost *)
        let log = Cst.Exec_log.create ~capacity:64 () in
        for i = 0 to (appends / 2) - 1 do
          Cst.Exec_log.connect log ~node:(i land 1023) ~out_port:Cst.Side.P
            ~in_port:Cst.Side.L;
          Cst.Exec_log.deliver log ~src:(i land 1023)
            ~dst:((i + 1) land 1023)
        done)
  in
  let topo = Cst.Topology.create ~leaves:n in
  let rng = Cst_util.Prng.create 4242 in
  let set = Cst_workloads.Gen_wn.with_width rng ~n ~width:(min 64 (n / 2)) in
  let log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log topo set);
  let events = Cst.Exec_log.length log in
  {
    lg_pes = n;
    lg_events = events;
    lg_ns_per_append = ns /. float_of_int appends;
    lg_bytes_per_event =
      float_of_int (Cst.Exec_log.bytes_used log)
      /. float_of_int (max 1 events);
    lg_reps = reps;
  }

(* Plan cache: the compile-once/replay-many contrast.  "Compile" is a
   full engine run frozen into a plan ({!Padr.Plan.compile}); "replay"
   rebases the frozen log onto an aligned translate and rebuilds the
   schedule from it — no scheduling, no simulation.  The trace half
   measures the cache hit rate the batch service achieves on a
   90%-repetitive stream: a few base structures recurring under aligned
   translations, with a fresh unique structure every tenth job. *)

type cache_row = {
  pc_pes : int;
  pc_compile_ns : float;
  pc_replay_ns : float;
  pc_trace_jobs : int;
  pc_hits : int;
  pc_misses : int;
  pc_reps : int;
}

let plan_cache_bench ~fast =
  let n = if fast then 128 else 1024 in
  let budget_s = if fast then 0.02 else 0.25 in
  let topo = Cst.Topology.create ~leaves:n in
  (* The pattern lives on the left half of the tree so the replay
     placement (the right half) genuinely rebases every event. *)
  let half = n / 2 in
  let rng = Cst_util.Prng.create 2718 in
  let base_set =
    Cst_comm.Comm_set.create_exn ~n
      (Array.to_list
         (Cst_comm.Comm_set.comms
            (Cst_workloads.Gen_wn.with_width rng ~n:half
               ~width:(min 64 (half / 2)))))
  in
  let compile () =
    Result.get_ok (Padr.Plan.compile ~producer:Padr.Plan.Engine topo base_set)
  in
  let compile_ns, _, reps =
    measure ~budget_s (fun () -> ignore (compile ()))
  in
  let plan = compile () in
  let shifted = Cst_workloads.Gen_wn.translate ~by:half base_set in
  let replay_ns, _, _ =
    measure ~budget_s (fun () ->
        ignore (Padr.Plan.replay ~keep_configs:false plan topo shifted))
  in
  (* The repetitive trace, through the service's own cache. *)
  let trace_jobs = if fast then 40 else 200 in
  let block = n / 8 in
  let base_count = if fast then 2 else 4 in
  let bases =
    Array.init base_count (fun i ->
        Cst_comm.Comm_set.create_exn ~n
          (Array.to_list
             (Cst_comm.Comm_set.comms
                (Cst_workloads.Gen_wn.uniform
                   (Cst_util.Prng.create (100 + i))
                   ~n:block ~density:0.7))))
  in
  let trng = Cst_util.Prng.create 3141 in
  let jobs =
    List.init trace_jobs (fun i ->
        let set =
          if i mod 10 = 9 then
            Cst_workloads.Gen_wn.uniform trng ~n ~density:0.3
          else
            Cst_workloads.Gen_wn.translate
              ~by:(block * Cst_util.Prng.int trng 8)
              bases.(Cst_util.Prng.int trng base_count)
        in
        Cst_service.Service.job ~id:i ~algo:"csa" set)
  in
  let pool = Cst_service.Service.create ~domains:1 () in
  let hits, misses =
    Fun.protect
      ~finally:(fun () -> Cst_service.Service.shutdown pool)
      (fun () ->
        List.iter (Cst_service.Service.submit pool) jobs;
        ignore (Cst_service.Service.drain pool);
        match Cst_service.Service.cache_stats pool with
        | Some s -> (s.hits, s.misses)
        | None -> (0, 0))
  in
  {
    pc_pes = n;
    pc_compile_ns = compile_ns;
    pc_replay_ns = replay_ns;
    pc_trace_jobs = trace_jobs;
    pc_hits = hits;
    pc_misses = misses;
    pc_reps = reps;
  }

(* Segment-parallel engine: a tiled workload — [copies] independent
   translates of one dense tile, so Decompose yields many top-level
   blocks.  The gated quantity is the decomposition + merge OVERHEAD at
   domains:1 (this container is single-core, so parallel speedup is not
   measurable here; see EXPERIMENTS.md "Single-core baseline"); the
   multi-domain grid is recorded for machines that can use it.  The two
   correctness certificates ride along in the baseline: the merged log
   is digest-identical to the sequential engine's, and the per-block
   config/delivery event counts sum exactly to the sequential run's
   (no work is duplicated or dropped by the split). *)

type par_row = {
  pe_pes : int;
  pe_blocks : int;
  pe_seq_ns : float;
  pe_par_d1_ns : float;
  pe_digest_match : bool;
  pe_work_conserved : bool;
  pe_grid : (int * float) list;
  pe_reps : int;
}

let par_engine_bench ~fast =
  let n = if fast then 256 else 1024 in
  let copies = 8 in
  let block = n / copies in
  let budget_s = if fast then 0.02 else 0.25 in
  let set =
    Cst_workloads.Gen_wn.tile ~copies
      (Cst_workloads.Gen_wn.uniform
         (Cst_util.Prng.create 1717)
         ~n:block ~density:1.0)
  in
  let topo = Cst.Topology.create ~leaves:n in
  let blocks = Cst_comm.Decompose.blocks set in
  let seq_log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log:seq_log topo set);
  let par_log = Cst.Exec_log.create () in
  ignore
    (Result.get_ok (Padr.Par_engine.run ~domains:1 ~log:par_log topo set));
  let digest_match =
    Cst.Exec_log.digest par_log = Cst.Exec_log.digest seq_log
  in
  let work log =
    Cst.Exec_log.fold log ~init:0 ~f:(fun acc e ->
        match e with
        | Cst.Exec_log.Connect _ | Cst.Exec_log.Disconnect _
        | Cst.Exec_log.Write_config _ | Cst.Exec_log.Deliver _ ->
            acc + 1
        | _ -> acc)
  in
  let block_work =
    List.fold_left
      (fun acc b ->
        acc + work (Result.get_ok (Padr.Par_engine.run_block topo b)))
      0 blocks
  in
  let work_conserved = block_work = work seq_log in
  let seq_ns, _, reps =
    measure ~budget_s (fun () ->
        Padr.Engine.run_exn ~keep_configs:false topo set)
  in
  let par_ns domains =
    let ns, _, _ =
      measure ~budget_s (fun () ->
          Result.get_ok
            (Padr.Par_engine.run ~domains ~keep_configs:false topo set))
    in
    ns
  in
  let grid = List.map (fun d -> (d, par_ns d)) [ 1; 2; 4; 8 ] in
  {
    pe_pes = n;
    pe_blocks = List.length blocks;
    pe_seq_ns = seq_ns;
    pe_par_d1_ns = List.assoc 1 grid;
    pe_digest_match = digest_match;
    pe_work_conserved = work_conserved;
    pe_grid = grid;
    pe_reps = reps;
  }

(* Plan store: cold-start time-to-first-scheduled-job.  "Recompile" is
   what a fresh process without a store pays — a full engine compile of
   the set.  "Warm" is the same first job served from a warm disk store:
   open the directory, fault the plan in (read + digest-verified
   decode) and replay it.  The codec round trip (encode + decode of the
   whole plan) is also timed per event, and the correctness certificate
   rides along: the decoded plan's replay digest must equal a fresh
   run's.  The speedup is gated by check_regression on full-size runs
   (the smoke grid's sets are too small for stable file-system
   timings). *)

type store_row = {
  ps_pes : int;
  ps_events : int;
  ps_recompile_ns : float;
  ps_warm_ns : float;
  ps_codec_ns_per_event : float;
  ps_digest_ok : bool;
  ps_reps : int;
}

let plan_store_bench ~fast =
  let sizes = if fast then [ 128 ] else [ 1024; 4096; 16384 ] in
  let budget_s = if fast then 0.02 else 0.25 in
  List.map
    (fun n ->
      let topo = Cst.Topology.create ~leaves:n in
      let rng = Cst_util.Prng.create 5151 in
      (* Width 256 on the full-size trees: both paths pay an O(leaves)
         schedule-rebuild term, so the set must carry enough scheduling
         work for the compile/replay gap to be the thing measured. *)
      let set =
        Cst_workloads.Gen_wn.with_width rng ~n ~width:(min 256 (n / 2))
      in
      let compile () =
        Result.get_ok (Padr.Plan.compile ~producer:Padr.Plan.Engine topo set)
      in
      let recompile_ns, _, reps =
        measure ~budget_s (fun () -> ignore (compile ()))
      in
      let plan = compile () in
      let events = Cst.Exec_log.length plan.log in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "cst-bench-store-%d-%d" (Unix.getpid ()) n)
      in
      let st = Cst_service.Plan_store.open_dir dir in
      Cst_service.Plan_store.store st ~algo:"csa" ~engine:true plan;
      let canon = (Cst.Canon.place set).canon in
      let warm_ns, _, _ =
        measure ~budget_s (fun () ->
            (* the whole cold path: index the directory, fault the plan
               in (read + verify + decode), replay to a schedule *)
            let st = Cst_service.Plan_store.open_dir dir in
            match
              Cst_service.Plan_store.find st ~algo:"csa" ~engine:true
                ~shape:(Cst.Topology.shape topo) ~base:0 ~canon
            with
            | Some p -> ignore (Padr.Plan.replay ~keep_configs:false p topo set)
            | None -> failwith "plan store bench: warm store missed")
      in
      let codec_ns, _, _ =
        measure ~budget_s (fun () ->
            match Padr.Plan.Codec.decode (Padr.Plan.Codec.encode plan) with
            | Ok _ -> ()
            | Error _ -> failwith "plan store bench: round trip failed")
      in
      let fresh_log = Cst.Exec_log.create () in
      ignore (Padr.Engine.run_exn ~log:fresh_log topo set);
      let digest_ok =
        match Padr.Plan.Codec.decode (Padr.Plan.Codec.encode plan) with
        | Error _ -> false
        | Ok decoded ->
            let r = Padr.Plan.replay ~keep_configs:false decoded topo set in
            Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log
      in
      (* leave no bench litter behind *)
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      {
        ps_pes = n;
        ps_events = events;
        ps_recompile_ns = recompile_ns;
        ps_warm_ns = warm_ns;
        ps_codec_ns_per_event = codec_ns /. float_of_int (max 1 events);
        ps_digest_ok = digest_ok;
        ps_reps = reps;
      })
    sizes

(* Generalized topologies: one nested trace (16 centre-straddling pairs
   on 256 PEs, binary width 16) scheduled on the classic binary tree, a
   4-ary tree and two capacity-weighted two-layer fat trees.  The fat
   tree with uplink capacity c must finish in ceil(16/c) rounds —
   Theorem 5 divided by the oversubscription ratio — which is the gate
   check_regression holds the rows to. *)

type topo_row = {
  tb_shape : string;
  tb_pes : int;
  tb_cap : int;  (** leaf-tier uplink capacity (1 on unit-capacity trees) *)
  tb_width : int;  (** capacity-weighted width of the trace on this shape *)
  tb_rounds : int;
  tb_connects : int;
  tb_writes : int;
  tb_ns : float;
  tb_reps : int;
}

let topology_bench ~fast =
  let budget_s = if fast then 0.02 else 0.25 in
  let n = 256 in
  let set = Cst_workloads.Gen_wn.onion ~n ~width:16 in
  let fat caps =
    match
      Cst.Shape.fat_tree ~level_sizes:[| n; 16 |]
        ~capacities:[| caps; caps |]
    with
    | Ok s -> s
    | Error _ -> assert false
  in
  let shapes =
    [
      Cst.Shape.binary ~leaves:n;
      Cst.Shape.kary ~k:4 ~leaves:n;
      fat 2;
      fat 4;
    ]
  in
  List.map
    (fun shape ->
      let topo = Cst.Topology.of_shape shape in
      let width =
        Cst_comm.Width.width_on
          ~parent:(Cst.Topology.parent_table topo)
          ~first_leaf:(Cst.Topology.first_leaf topo)
          ~cap:(Cst.Topology.cap_table topo)
          set
      in
      let sched = Padr.Csa.run_exn ~keep_configs:false topo set in
      let ns, _, reps =
        measure ~budget_s (fun () ->
            ignore (Padr.Csa.run_exn ~keep_configs:false topo set))
      in
      {
        tb_shape = Cst.Shape.to_string shape;
        tb_pes = n;
        tb_cap = Cst.Shape.cap_at shape ~depth:(Cst.Shape.levels shape);
        tb_width = width;
        tb_rounds = Padr.Schedule.num_rounds sched;
        tb_connects = sched.power.total_connects;
        tb_writes = sched.power.total_writes;
        tb_ns = ns;
        tb_reps = reps;
      })
    shapes

let bench_json ~fast file =
  (* The named sections are measured first, on the young process, in a
     fixed order with a full major collection between them: the engine
     grid's 65536-PE runs leave the major heap in a state that OCaml 5.1
     (no heap compaction) never recovers from, inflating the small
     allocation-bound measurements (plan replay, segment overhead) by
     2-3x depending on section order.  Measured up front, each section's
     numbers match a standalone run of the same code. *)
  let section () = Gc.compact () in
  let lg = log_overhead ~fast in
  section ();
  let pc = plan_cache_bench ~fast in
  section ();
  let pe = par_engine_bench ~fast in
  section ();
  let ps = plan_store_bench ~fast in
  section ();
  let srv = service_throughput ~fast in
  section ();
  let stm = streaming_bench ~fast in
  section ();
  let topo_rows = topology_bench ~fast in
  let grid_pes = if fast then [ 64; 256 ] else [ 256; 2048; 16384; 65536 ] in
  let grid_widths = if fast then [ 1; 8 ] else [ 1; 8; 64 ] in
  (* The dense engine and the per-round baselines are only timed on the
     smaller trees: their full-tree scans at 2^16 PEs are exactly the cost
     this benchmark exists to avoid paying. *)
  let dense_cap = 4096 and registry_cap = 2048 in
  let budget_s = if fast then 0.02 else 0.25 in
  let rows = ref [] in
  let add row = rows := row :: !rows in
  List.iter
    (fun n ->
      let topo = Cst.Topology.create ~leaves:n in
      List.iter
        (fun w ->
          if 2 * w <= n then begin
            let rng = Cst_util.Prng.create (1000 + n + w) in
            let set = Cst_workloads.Gen_wn.with_width rng ~n ~width:w in
            let sched, stats = Padr.Engine.run_exn ~keep_configs:false topo set in
            let engine_rounds = Padr.Schedule.num_rounds sched in
            let time kernel ?(rounds = engine_rounds) ?(cycles = stats.cycles)
                ?(msgs = 0) f =
              let ns, alloc, reps = measure ~budget_s f in
              add
                {
                  kernel;
                  pes = n;
                  bwidth = w;
                  ns_per_op = ns;
                  rounds;
                  row_cycles = cycles;
                  row_messages = msgs;
                  alloc_words = alloc;
                  reps;
                }
            in
            time "engine" ~msgs:stats.control_messages (fun () ->
                Padr.Engine.run_exn ~keep_configs:false topo set);
            if n <= dense_cap then
              time "engine-dense" ~msgs:stats.control_messages (fun () ->
                  Padr.Engine.run_dense_exn ~keep_configs:false topo set);
            if n <= registry_cap then
              List.iter
                (fun (a : Cst_baselines.Registry.algo) ->
                  let s = a.run topo set in
                  time a.name ~rounds:(Padr.Schedule.num_rounds s)
                    ~cycles:s.cycles (fun () -> a.run topo set))
                algos
          end)
        grid_widths)
    grid_pes;
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  (* Host metadata: the regression gates that compare multi-domain
     scaling are only meaningful when the producing machine had the
     cores to scale on, and cross-host comparisons of absolute ns are
     noise.  [nproc] is what the service's default domain count sees;
     [host] tags each section so a partially regenerated file is
     detectable. *)
  let nproc = Domain.recommended_domain_count () in
  let host = try Unix.gethostname () with Unix.Unix_error _ -> "unknown" in
  p "  \"schema\": \"cst-padr/bench-engine/v2\",\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"nproc\": %d,\n" nproc;
  p "  \"host\": %S,\n" host;
  p "  \"pes_grid\": [%s],\n"
    (String.concat ", " (List.map string_of_int grid_pes));
  p "  \"width_grid\": [%s],\n"
    (String.concat ", " (List.map string_of_int grid_widths));
  p "  \"dense_cap\": %d,\n" dense_cap;
  p "  \"registry_cap\": %d,\n" registry_cap;
  p "  \"service_throughput\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"domains\": %d, \"pes\": %d, \"jobs\": %d, \"jobs_per_sec\": \
         %.1f, \"failed\": %d, \"reps\": %d}%s\n"
        r.srv_domains r.srv_pes r.srv_jobs r.srv_jobs_per_sec r.srv_failed
        r.srv_reps
        (if i = List.length srv - 1 then "" else ","))
    srv;
  p "  ],\n";
  (* One object per (process, policy, domains, pes) replay, rendered
     through the shared Stats JSON renderer.  check_regression keys
     streaming rows on the "policy" field — no other row carries one. *)
  p "  \"streaming\": [\n";
  List.iteri
    (fun i (r : stream_row) ->
      let open Cst_service.Stats in
      p "    %s%s\n"
        (fields_to_json
           [
             ("process", String r.st_process);
             ("policy", String r.st_policy);
             ("policy_spec", String r.st_policy_spec);
             ("domains", Int r.st_domains);
             ("pes", Int r.st_pes);
             ("jobs", Int r.st_jobs);
             ("p50_ms", Float r.st_p50_ms);
             ("p99_ms", Float r.st_p99_ms);
             ("jobs_per_sec", Float r.st_jobs_per_sec);
             ("epochs", Int r.st_epochs);
             ("job_power", Int r.st_job_power);
             ("recon_power", Float r.st_recon_power);
             ("total_power", Float r.st_total_power);
           ])
        (if i = List.length stm - 1 then "" else ","))
    stm;
  p "  ],\n";
  p
    "  \"log_overhead\": {\"host\": %S, \"pes\": %d, \"events\": %d, \
     \"ns_per_append\": %.2f, \"bytes_per_event\": %.1f, \"reps\": %d},\n"
    host lg.lg_pes lg.lg_events lg.lg_ns_per_append lg.lg_bytes_per_event
    lg.lg_reps;
  p
    "  \"plan_cache\": {\"host\": %S, \"pes\": %d, \"compile_ns\": %.1f, \
     \"replay_ns\": %.1f, \"speedup\": %.2f, \"trace_jobs\": %d, \"hits\": \
     %d, \"misses\": %d, \"hit_rate\": %.3f, \"reps\": %d},\n"
    host pc.pc_pes pc.pc_compile_ns pc.pc_replay_ns
    (pc.pc_compile_ns /. Float.max pc.pc_replay_ns 1e-9)
    pc.pc_trace_jobs pc.pc_hits pc.pc_misses
    (float_of_int pc.pc_hits
    /. float_of_int (max 1 (pc.pc_hits + pc.pc_misses)))
    pc.pc_reps;
  p
    "  \"par_engine\": {\"host\": %S, \"pes\": %d, \"blocks\": %d, \
     \"seq_ns\": %.1f, \"par_d1_ns\": %.1f, \"overhead\": %.3f, \
     \"digest_match\": %b, \"work_conserved\": %b, \"reps\": %d, \"grid\": \
     [%s]},\n"
    host pe.pe_pes pe.pe_blocks pe.pe_seq_ns pe.pe_par_d1_ns
    (pe.pe_par_d1_ns /. Float.max pe.pe_seq_ns 1e-9)
    pe.pe_digest_match pe.pe_work_conserved pe.pe_reps
    (String.concat ", "
       (List.map
          (fun (d, ns) ->
            Printf.sprintf "{\"domains\": %d, \"ns\": %.1f}" d ns)
          pe.pe_grid));
  p "  \"plan_store\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"host\": %S, \"pes\": %d, \"events\": %d, \"recompile_ns\": \
         %.1f, \"warm_ns\": %.1f, \"speedup\": %.2f, \
         \"codec_ns_per_event\": %.2f, \"digest_ok\": %b, \"reps\": %d}%s\n"
        host r.ps_pes r.ps_events r.ps_recompile_ns r.ps_warm_ns
        (r.ps_recompile_ns /. Float.max r.ps_warm_ns 1e-9)
        r.ps_codec_ns_per_event r.ps_digest_ok r.ps_reps
        (if i = List.length ps - 1 then "" else ","))
    ps;
  p "  ],\n";
  (* check_regression keys topology rows on the "shape" field — no other
     row carries one — and holds fat rows to rounds = ceil(bin / cap). *)
  p "  \"topology\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"shape\": \"%s\", \"pes\": %d, \"cap\": %d, \"width\": %d, \
         \"rounds\": %d, \"connects\": %d, \"writes\": %d, \"ns_per_op\": \
         %.1f, \"reps\": %d}%s\n"
        r.tb_shape r.tb_pes r.tb_cap r.tb_width r.tb_rounds r.tb_connects
        r.tb_writes r.tb_ns r.tb_reps
        (if i = List.length topo_rows - 1 then "" else ","))
    topo_rows;
  p "  ],\n";
  p "  \"results\": [\n";
  let rows = List.rev !rows in
  List.iteri
    (fun i r ->
      p
        "    {\"kernel\": \"%s\", \"pes\": %d, \"width\": %d, \"ns_per_op\": \
         %.1f, \"rounds\": %d, \"cycles\": %d, \"control_messages\": %d, \
         \"alloc_words\": %.1f, \"reps\": %d}%s\n"
        r.kernel r.pes r.bwidth r.ns_per_op r.rounds r.row_cycles
        r.row_messages r.alloc_words r.reps
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc;
  Format.printf "wrote %d benchmark rows to %s@." (List.length rows) file

let run_experiments ~fast =
  Format.printf
    "Reproduction harness: El-Boghdadi, \"Power-Aware Routing for \
     Well-Nested Communications On The Circuit Switched Tree\" (IPPS 2007)@.";
  e1 ();
  e2 ();
  let per_algo = e3 () in
  f1 per_algo;
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  f2 ();
  if not fast then microbench ();
  Format.printf "@.done.@."

let () =
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let json_file =
    let rec find i =
      if i >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--json" && i + 1 < Array.length Sys.argv then
        Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  match json_file with
  | Some file -> bench_json ~fast file
  | None -> run_experiments ~fast

type op = { f : int -> int -> int; zero : int }

let sum = { f = ( + ); zero = 0 }
let max_op = { f = max; zero = min_int }
let min_op = { f = min; zero = max_int }

let exclusive_reference op a =
  let acc = ref op.zero in
  Array.map
    (fun x ->
      let out = !acc in
      acc := op.f !acc x;
      out)
    a

let inclusive_reference op a =
  let acc = ref op.zero in
  Array.map
    (fun x ->
      acc := op.f !acc x;
      !acc)
    a

let comm src dst = Cst_comm.Comm.make ~src ~dst

(* Block geometry of level d over n PEs: blocks of size 2^{d+1}; [m] is
   the last index of the left half, [e] the last index of the block. *)
let blocks ~n ~d =
  let size = 1 lsl (d + 1) in
  List.init (n / size) (fun b ->
      let lo = b * size in
      (lo + (size / 2) - 1, lo + size - 1))

(* The Blelloch sweeps over an arbitrary monoid; state is (value, stash):
   the down-sweep's left phase stashes the overwritten value for the
   right phase to fold in. *)

let value (v, _stash) = v

let up_step gf ~n ~d =
  {
    Superstep.label = Printf.sprintf "up-sweep level %d" d;
    pattern =
      (fun _ ->
        Cst_comm.Comm_set.create_exn ~n
          (List.map (fun (m, e) -> comm m e) (blocks ~n ~d)));
    absorb =
      (fun states deliveries ->
        let next = Array.copy states in
        List.iter
          (fun (src, dst) ->
            let v, stash = next.(dst) in
            next.(dst) <- (gf (value states.(src)) v, stash))
          deliveries;
        next);
  }

let clear_root ~n gzero =
  {
    Superstep.label = "clear root";
    pattern = (fun _ -> Cst_comm.Comm_set.empty ~n);
    absorb =
      (fun states _ ->
        let next = Array.copy states in
        let _, stash = next.(n - 1) in
        next.(n - 1) <- (gzero, stash);
        next);
  }

(* Down-sweep level d, phase A: block end sends its value down-left; the
   receiver stashes its old value before overwriting. *)
let down_a ~n ~d =
  {
    Superstep.label = Printf.sprintf "down-sweep level %d (left)" d;
    pattern =
      (fun _ ->
        Cst_comm.Comm_set.create_exn ~n
          (List.map (fun (m, e) -> comm e m) (blocks ~n ~d)));
    absorb =
      (fun states deliveries ->
        let next = Array.copy states in
        List.iter
          (fun (src, dst) ->
            let v, _ = next.(dst) in
            next.(dst) <- (value states.(src), v))
          deliveries;
        next);
  }

(* Phase B: the stashed old value travels right and is folded in. *)
let down_b gf ~n ~d =
  {
    Superstep.label = Printf.sprintf "down-sweep level %d (right)" d;
    pattern =
      (fun _ ->
        Cst_comm.Comm_set.create_exn ~n
          (List.map (fun (m, e) -> comm m e) (blocks ~n ~d)));
    absorb =
      (fun states deliveries ->
        let next = Array.copy states in
        List.iter
          (fun (src, dst) ->
            let _, stash = states.(src) in
            let v, s = next.(dst) in
            (* the destination holds the incoming prefix, the stashed
               left-half reduction folds in on the right *)
            next.(dst) <- (gf v stash, s))
          deliveries;
        next);
  }

let generic_program ~name gf gzero ~n =
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Scan: n must be a power of two >= 2";
  let k = Cst_util.Bits.ilog2 n in
  let up = List.init k (fun d -> up_step gf ~n ~d) in
  let down =
    List.concat
      (List.init k (fun i ->
           let d = k - 1 - i in
           [ down_a ~n ~d; down_b gf ~n ~d ]))
  in
  { Superstep.name; steps = up @ [ clear_root ~n gzero ] @ down }

let generic_exclusive ~name gf gzero input =
  let n = Array.length input in
  let prog = generic_program ~name gf gzero ~n in
  let init = Array.map (fun v -> (v, gzero)) input in
  let final, stats = Superstep.run prog ~init in
  (Array.map value final, stats)

let program op ~n = generic_program ~name:"blelloch-scan" op.f op.zero ~n

type result = {
  exclusive : int array;
  inclusive : int array;
  stats : Superstep.stats;
}

let run op a =
  let exclusive, stats =
    generic_exclusive ~name:"blelloch-scan" op.f op.zero a
  in
  let inclusive = Array.mapi (fun i ex -> op.f ex a.(i)) exclusive in
  { exclusive; inclusive; stats }

let reduce op a =
  let n = Array.length a in
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Scan.reduce: input length must be a power of two >= 2";
  let k = Cst_util.Bits.ilog2 n in
  let prog =
    {
      Superstep.name = "reduce";
      steps = List.init k (fun d -> up_step op.f ~n ~d);
    }
  in
  let init = Array.map (fun v -> (v, op.zero)) a in
  let final, stats = Superstep.run prog ~init in
  (value final.(n - 1), stats)

(* Segmented scan: the classic pair monoid over (value, segment-start).
   Combining (v1, f1) then (v2, f2): a later segment start discards the
   left prefix.  Associative, so the plain Blelloch program applies. *)

let seg_combine op (v1, f1) (v2, f2) =
  ((if f2 then v2 else op.f v1 v2), f1 || f2)

let segmented_reference op a ~flags =
  let acc = ref op.zero in
  Array.mapi
    (fun i x ->
      if flags.(i) then acc := x else acc := op.f !acc x;
      !acc)
    a

let segmented op a ~flags =
  let n = Array.length a in
  if Array.length flags <> n then
    invalid_arg "Scan.segmented: flags length mismatch";
  let input = Array.mapi (fun i v -> (v, flags.(i))) a in
  let exclusive, stats =
    generic_exclusive ~name:"segmented-scan" (seg_combine op)
      (op.zero, false) input
  in
  (* inclusive within segments: fold each element onto its exclusive
     prefix, restarting at flags *)
  let inclusive =
    Array.mapi
      (fun i (pv, _) -> if flags.(i) then a.(i) else op.f pv a.(i))
      exclusive
  in
  (inclusive, stats)

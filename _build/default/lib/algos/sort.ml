let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

(* Neighbour pairs starting at [offset] (0 = even phase, 1 = odd). *)
let pairs ~n ~offset =
  let rec go i acc =
    if i + 1 >= n then List.rev acc else go (i + 2) ((i, i + 1) :: acc)
  in
  go offset []

let forward_set ~n ~offset =
  Cst_comm.Comm_set.create_exn ~n
    (List.map (fun (a, b) -> Cst_comm.Comm.make ~src:a ~dst:b) (pairs ~n ~offset))

let backward_set ~n ~offset =
  Cst_comm.Comm_set.create_exn ~n
    (List.map (fun (a, b) -> Cst_comm.Comm.make ~src:b ~dst:a) (pairs ~n ~offset))

(* State is (value, stash): the right PE of a pair stashes the loser to
   return it in the second superstep. *)
let compare_exchange ~n ~offset =
  [
    {
      Superstep.label = Printf.sprintf "compare offset %d" offset;
      pattern = (fun _ -> forward_set ~n ~offset);
      absorb =
        (fun st deliveries ->
          let next = Array.copy st in
          List.iter
            (fun (src, dst) ->
              let vs, _ = st.(src) and vd, _ = st.(dst) in
              next.(dst) <- (max vs vd, min vs vd))
            deliveries;
          next);
    };
    {
      Superstep.label = Printf.sprintf "return offset %d" offset;
      pattern = (fun _ -> backward_set ~n ~offset);
      absorb =
        (fun st deliveries ->
          let next = Array.copy st in
          List.iter
            (fun (src, dst) ->
              let _, stash = st.(src) in
              let _, aux = next.(dst) in
              next.(dst) <- (stash, aux))
            deliveries;
          next);
    };
  ]

(* Bitonic compare-exchange at stride [j] within blocks of [k]: lower
   partner i (bit j clear) sends its value up; the upper partner keeps
   the winner for its end (direction decided by bit k of the index) and
   stashes the loser for the return trip. *)
let bitonic_steps ~n ~k ~j =
  let pairs =
    List.filter_map
      (fun i -> if i land j = 0 then Some (i, i lor j) else None)
      (List.init n Fun.id)
  in
  let forward =
    Cst_comm.Comm_set.create_exn ~n
      (List.map (fun (a, b) -> Cst_comm.Comm.make ~src:a ~dst:b) pairs)
  in
  let backward =
    Cst_comm.Comm_set.create_exn ~n
      (List.map (fun (a, b) -> Cst_comm.Comm.make ~src:b ~dst:a) pairs)
  in
  [
    {
      Superstep.label = Printf.sprintf "bitonic k=%d j=%d compare" k j;
      pattern = (fun _ -> forward);
      absorb =
        (fun st deliveries ->
          let next = Array.copy st in
          List.iter
            (fun (src, dst) ->
              let ascending = dst land k = 0 in
              let vs, _ = st.(src) and vd, _ = st.(dst) in
              if ascending then next.(dst) <- (max vs vd, min vs vd)
              else next.(dst) <- (min vs vd, max vs vd))
            deliveries;
          next);
    };
    {
      Superstep.label = Printf.sprintf "bitonic k=%d j=%d return" k j;
      pattern = (fun _ -> backward);
      absorb =
        (fun st deliveries ->
          let next = Array.copy st in
          List.iter
            (fun (src, dst) ->
              let _, stash = st.(src) in
              let _, aux = next.(dst) in
              next.(dst) <- (stash, aux))
            deliveries;
          next);
    };
  ]

let bitonic a =
  let n = Array.length a in
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Sort.bitonic: input length must be a power of two >= 2";
  let steps = ref [] in
  let k = ref 2 in
  while !k <= n do
    let j = ref (!k / 2) in
    while !j >= 1 do
      steps := bitonic_steps ~n ~k:!k ~j:!j :: !steps;
      j := !j / 2
    done;
    k := !k * 2
  done;
  let prog =
    { Superstep.name = "bitonic-sort"; steps = List.concat (List.rev !steps) }
  in
  let init = Array.map (fun v -> (v, 0)) a in
  let final, stats = Superstep.run prog ~init in
  (Array.map fst final, stats)

let run a =
  let n = Array.length a in
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Sort.run: input length must be a power of two >= 2";
  let steps =
    List.concat
      (List.init n (fun phase -> compare_exchange ~n ~offset:(phase mod 2)))
  in
  let prog = { Superstep.name = "odd-even-sort"; steps } in
  let init = Array.map (fun v -> (v, 0)) a in
  let final, stats = Superstep.run prog ~init in
  (Array.map fst final, stats)

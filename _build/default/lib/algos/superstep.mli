(** Bulk-synchronous computation over the CST under PADR.

    The paper's conclusion proposes "using the PADR technique to develop
    computational algorithms for reconfigurable models".  This module is
    that harness: a program is a sequence of {e supersteps}, each deriving
    a communication pattern from the current PE states and absorbing the
    realized deliveries into new states.  Every pattern is scheduled on
    the CST — split by orientation, covered by well-nested layers, routed
    by the CSA — over two {e persistent} networks, so the PADR carry-over
    saves configuration writes across supersteps as well as across rounds.

    Patterns are arbitrary: crossing sets simply cost several waves. *)

type 'a step = {
  label : string;
  pattern : 'a array -> Cst_comm.Comm_set.t;
      (** communications of this superstep, from the current states; the
          set's [n] must equal the program's PE count *)
  absorb : 'a array -> (int * int) list -> 'a array;
      (** new states from the old states and the realized (src, dst)
          deliveries; by convention reads only sources' states *)
}

type 'a program = { name : string; steps : 'a step list }

type stats = {
  supersteps : int;
  waves : int;  (** CSA waves over all supersteps *)
  rounds : int;  (** data-transfer rounds over all supersteps *)
  cycles : int;
  power : Padr.Schedule.power;  (** combined over both persistent networks *)
}

val run : ?leaves:int -> 'a program -> init:'a array -> 'a array * stats
(** Executes the program on [Array.length init] PEs.  Raises
    [Invalid_argument] if a pattern is invalid or mis-sized.  Each
    superstep's deliveries are checked against the pattern's matching
    before being absorbed. *)

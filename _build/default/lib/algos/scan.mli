(** Parallel prefix (Blelloch scan) on the CST.

    The work-efficient two-sweep scan maps perfectly onto well-nested
    communication: every up-sweep level sends, within each block, from the
    end of the left half to the end of the block — disjoint intervals,
    width 1, one CSA round.  The down-sweep exchanges the same two
    positions per block, realized as two width-1 supersteps (one per
    direction).  A scan over [n = 2^k] PEs therefore takes [3k + O(1)]
    supersteps, each a single round, with O(1) configuration changes per
    switch across the whole computation.

    Operations must be associative; [zero] is the identity. *)

type op = { f : int -> int -> int; zero : int }

val sum : op
val max_op : op
val min_op : op

val exclusive_reference : op -> int array -> int array
(** Sequential specification: [out.(i) = fold f zero a.(0..i-1)]. *)

val inclusive_reference : op -> int array -> int array

val program : op -> n:int -> (int * int) Superstep.program
(** The Blelloch program over [n = 2^k] PEs.  State is [(value, aux)];
    the exclusive scan ends in the [value] component. *)

type result = {
  exclusive : int array;
  inclusive : int array;
  stats : Superstep.stats;
}

val run : op -> int array -> result
(** Requires a power-of-two input length of at least 2. *)

val reduce : op -> int array -> int * Superstep.stats
(** Up-sweep only; the combined value of the whole array. *)

val segmented :
  op -> int array -> flags:bool array -> int array * Superstep.stats
(** Inclusive {e segmented} scan: prefixes restart wherever [flags] is
    true (position 0 is an implicit start).  Runs the same Blelloch
    program over the standard (value, flag) pair monoid — the
    segmentable-bus computation pattern on the CST. *)

val segmented_reference : op -> int array -> flags:bool array -> int array
(** Sequential specification of {!segmented}. *)

lib/algos/sort.mli: Superstep

lib/algos/scan.mli: Superstep

lib/algos/scan.ml: Array Cst_comm Cst_util List Printf Superstep

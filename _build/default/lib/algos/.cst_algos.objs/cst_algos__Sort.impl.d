lib/algos/sort.ml: Array Cst_comm Cst_util Fun List Printf Superstep

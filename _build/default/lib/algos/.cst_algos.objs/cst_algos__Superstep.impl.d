lib/algos/superstep.ml: Array Cst Cst_comm Cst_util List Padr Printf

lib/algos/superstep.mli: Cst_comm Padr

(** Odd-even transposition sort on the CST.

    The classic array-processor sort: alternating compare-exchange phases
    between even and odd neighbour pairs.  Each compare-exchange is two
    CST supersteps — values travel right over the width-1 pair set, losers
    travel back over its mirror — so [n] phases cost [2n] supersteps of
    one round each.  Every pattern reuses one of two configurations, so
    the whole sort keeps per-switch configuration changes constant: the
    strongest illustration of PADR on a full algorithm. *)

val run : int array -> int array * Superstep.stats
(** Sorts ascending.  Requires a power-of-two length of at least 2. *)

val bitonic : int array -> int array * Superstep.stats
(** Bitonic sort: O(log² n) compare-exchange stages, each a stride-[j]
    butterfly — a {e crossing} pattern that the superstep harness covers
    with [j] CSA waves per direction.  Contrasts with {!run}: fewer
    supersteps, more waves per superstep; a realistic stress test of the
    wave scheduler under computation.  Requires a power-of-two length. *)

val is_sorted : int array -> bool

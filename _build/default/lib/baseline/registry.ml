type algo = {
  name : string;
  description : string;
  round_optimal : bool;
  power_optimal : bool;
  run : Cst.Topology.t -> Cst_comm.Comm_set.t -> Padr.Schedule.t;
}

let csa =
  {
    name = "csa";
    description = "the paper's power-aware CSA (lazy reconfiguration)";
    round_optimal = true;
    power_optimal = true;
    run = (fun topo set -> Padr.Csa.run_exn topo set);
  }

let eager_csa =
  {
    name = "eager-csa";
    description = "CSA round decisions with eager per-round reconfiguration";
    round_optimal = true;
    power_optimal = false;
    run = Eager_csa.run;
  }

let roy_id =
  {
    name = "roy-id";
    description = "ID-based rounds (Roy-Vaidyanathan-Trahan style)";
    round_optimal = false;
    power_optimal = false;
    run = Roy_id.run;
  }

let depth =
  {
    name = "depth";
    description = "one round per nesting depth (correct, not round-optimal)";
    round_optimal = false;
    power_optimal = false;
    run = Depth_sched.run;
  }

let greedy =
  {
    name = "greedy";
    description = "greedy maximal compatible batches";
    round_optimal = false;
    power_optimal = false;
    run = Greedy.run;
  }

let naive =
  {
    name = "naive";
    description = "one communication per round";
    round_optimal = false;
    power_optimal = false;
    run = Naive.run;
  }

let all = [ csa; eager_csa; roy_id; depth; greedy; naive ]
let find name = List.find_opt (fun a -> a.name = name) all
let names = List.map (fun a -> a.name) all

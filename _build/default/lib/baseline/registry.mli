(** Name-indexed registry of every scheduler in the repository, for the
    CLI and the benchmark harness. *)

type algo = {
  name : string;
  description : string;
  round_optimal : bool;
      (** guarantees exactly-width rounds on well-nested input *)
  power_optimal : bool;  (** guarantees O(1) configuration changes *)
  run : Cst.Topology.t -> Cst_comm.Comm_set.t -> Padr.Schedule.t;
}

val csa : algo
val eager_csa : algo
val roy_id : algo
val depth : algo
val greedy : algo
val naive : algo

val all : algo list
(** In presentation order, CSA first. *)

val find : string -> algo option
val names : string list

lib/baseline/naive.ml: Array Cst_comm List Round_runner

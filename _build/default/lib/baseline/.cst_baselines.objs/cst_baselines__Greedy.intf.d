lib/baseline/greedy.mli: Cst Cst_comm Padr

lib/baseline/eager_csa.mli: Cst Cst_comm Padr

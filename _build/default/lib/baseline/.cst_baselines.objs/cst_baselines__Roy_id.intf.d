lib/baseline/roy_id.mli: Cst Cst_comm Padr

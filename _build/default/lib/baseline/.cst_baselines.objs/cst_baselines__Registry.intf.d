lib/baseline/registry.mli: Cst Cst_comm Padr

lib/baseline/depth_sched.mli: Cst Cst_comm Padr

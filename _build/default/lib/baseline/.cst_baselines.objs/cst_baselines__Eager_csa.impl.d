lib/baseline/eager_csa.ml: Padr

lib/baseline/registry.ml: Cst Cst_comm Depth_sched Eager_csa Greedy List Naive Padr Roy_id

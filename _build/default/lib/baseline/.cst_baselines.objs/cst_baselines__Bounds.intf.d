lib/baseline/bounds.mli: Cst Cst_comm

lib/baseline/round_runner.mli: Cst Cst_comm Padr

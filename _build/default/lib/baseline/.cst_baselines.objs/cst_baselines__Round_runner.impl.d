lib/baseline/round_runner.ml: Array Cst Cst_comm List Padr Printf

lib/baseline/roy_id.ml: Array Cst Cst_comm Int List Round_runner

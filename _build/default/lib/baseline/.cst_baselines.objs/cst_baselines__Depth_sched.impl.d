lib/baseline/depth_sched.ml: Array Cst_comm Format List Round_runner

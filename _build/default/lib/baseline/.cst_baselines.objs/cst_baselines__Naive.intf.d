lib/baseline/naive.mli: Cst Cst_comm Padr

lib/baseline/bounds.ml: Array Cst Cst_comm List

lib/baseline/greedy.ml: Array Cst Cst_comm List Round_runner

let run topo set = Padr.Csa.run_exn ~eager_clear:true topo set

let config_for_batch topo batch =
  let leaves = Cst.Topology.leaves topo in
  let wants = Array.make leaves Cst.Switch_config.empty in
  let connect node ~output ~input =
    try wants.(node) <- Cst.Switch_config.set wants.(node) ~output ~input
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf
           "Round_runner.config_for_batch: conflicting demands at switch %d"
           node)
  in
  List.iter
    (fun (c : Cst_comm.Comm.t) ->
      if not (Cst_comm.Comm.is_right_oriented c) then
        invalid_arg "Round_runner.config_for_batch: left-oriented member";
      let s_leaf = Cst.Topology.node_of_pe topo c.src in
      let d_leaf = Cst.Topology.node_of_pe topo c.dst in
      let lca = Cst.Topology.lca topo s_leaf d_leaf in
      (* Upward legs: every switch strictly between the source leaf and the
         LCA forwards its child input to the parent output. *)
      let rec up node =
        let p = Cst.Topology.parent topo node in
        if p <> lca then begin
          connect p ~output:Cst.Side.P ~input:(Cst.Topology.child_side topo node);
          up p
        end
        else node
      in
      let rec down node =
        let p = Cst.Topology.parent topo node in
        if p <> lca then begin
          connect p
            ~output:(Cst.Topology.child_side topo node)
            ~input:Cst.Side.P;
          down p
        end
        else node
      in
      let s_child = up s_leaf and d_child = down d_leaf in
      (* At the LCA the source-side child input turns toward the
         destination-side child output. *)
      connect lca
        ~output:(Cst.Topology.child_side topo d_child)
        ~input:(Cst.Topology.child_side topo s_child))
    batch;
  wants

let run ~name:_ topo set batches =
  let leaves = Cst.Topology.leaves topo in
  let scheduled =
    List.sort Cst_comm.Comm.compare (List.concat batches)
  in
  let members =
    List.sort Cst_comm.Comm.compare
      (Array.to_list (Cst_comm.Comm_set.comms set))
  in
  if not (List.equal Cst_comm.Comm.equal scheduled members) then
    invalid_arg "Round_runner.run: batches do not partition the set";
  let net = Cst.Net.create topo in
  let rounds =
    List.mapi
      (fun i batch ->
        let wants = config_for_batch topo batch in
        for node = 1 to leaves - 1 do
          Cst.Net.reconfigure net ~node wants.(node)
        done;
        let sources =
          List.sort compare (List.map (fun (c : Cst_comm.Comm.t) -> c.src) batch)
        in
        let dests =
          List.sort compare (List.map (fun (c : Cst_comm.Comm.t) -> c.dst) batch)
        in
        List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) sources;
        let deliveries = Cst.Data_plane.transfer net ~sources in
        assert (List.length deliveries = List.length batch);
        let configs =
          let acc = ref [] in
          for node = leaves - 1 downto 1 do
            let cfg = Cst.Net.config net node in
            if not (Cst.Switch_config.is_empty cfg) then
              acc := (node, cfg) :: !acc
          done;
          Array.of_list !acc
        in
        { Padr.Schedule.index = i + 1; sources; dests; deliveries; configs })
      batches
  in
  let levels = Cst.Topology.levels topo in
  let num_rounds = List.length batches in
  {
    Padr.Schedule.leaves;
    set;
    width = Cst_comm.Width.width ~leaves set;
    rounds = Array.of_list rounds;
    power = Padr.Schedule.power_of_meter (Cst.Net.meter net);
    cycles = levels + (num_rounds * (levels + 1));
  }

(** Lower bounds against which schedules are judged.

    {e Rounds}: no schedule finishes in fewer rounds than the set's width
    (each round moves at most one communication over a directed link).

    {e Power}: a switch must set every distinct connection demanded by at
    least one communication routed through it, so the number of distinct
    (input, output) pairs over all tree paths lower-bounds its connects.
    The CSA's per-switch connects should sit near this floor. *)

val rounds : Cst.Topology.t -> Cst_comm.Comm_set.t -> int
(** The width lower bound. *)

val min_connects_per_switch :
  Cst.Topology.t -> Cst_comm.Comm_set.t -> int array
(** Indexed by internal node id; entry 0 and leaf entries are 0. *)

val min_total_connects : Cst.Topology.t -> Cst_comm.Comm_set.t -> int

let rounds topo set =
  Cst_comm.Width.width ~leaves:(Cst.Topology.leaves topo) set

let min_connects_per_switch topo set =
  let leaves = Cst.Topology.leaves topo in
  let demands = Array.make (2 * leaves) [] in
  let note node conn =
    if not (List.mem conn demands.(node)) then
      demands.(node) <- conn :: demands.(node)
  in
  Array.iter
    (fun (c : Cst_comm.Comm.t) ->
      (* Walk the unique tree path, recording the connection each switch
         must provide for this communication. *)
      let a = ref (Cst.Topology.node_of_pe topo c.src)
      and b = ref (Cst.Topology.node_of_pe topo c.dst) in
      let lca = Cst.Topology.lca topo !a !b in
      while Cst.Topology.parent topo !a <> lca do
        let p = Cst.Topology.parent topo !a in
        note p (Cst.Topology.child_side topo !a, Cst.Side.P);
        a := p
      done;
      while Cst.Topology.parent topo !b <> lca do
        let p = Cst.Topology.parent topo !b in
        note p (Cst.Side.P, Cst.Topology.child_side topo !b);
        b := p
      done;
      note lca
        (Cst.Topology.child_side topo !a, Cst.Topology.child_side topo !b))
    (Cst_comm.Comm_set.comms set);
  Array.map List.length demands

let min_total_connects topo set =
  Array.fold_left ( + ) 0 (min_connects_per_switch topo set)

lib/sim/traffic.ml: Cst_comm Cst_util Cst_workloads Format List Printf

lib/sim/runner.ml: Cst Cst_baselines Cst_comm List Padr Traffic

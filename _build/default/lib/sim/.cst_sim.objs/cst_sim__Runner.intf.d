lib/sim/runner.mli: Cst_baselines Padr Traffic

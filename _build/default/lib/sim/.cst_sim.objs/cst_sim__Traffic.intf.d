lib/sim/traffic.mli: Cst_comm Cst_util Format

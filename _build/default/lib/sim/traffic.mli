(** Traffic traces: sequences of communication phases over one CST.

    A {e phase} models one communication step of an application (one
    well-nested set, or any valid set for the wave-based runner).  Traces
    drive {!Runner} to study energy and latency over time, the NoC-style
    usage the paper's introduction cites. *)

type phase = { label : string; set : Cst_comm.Comm_set.t }
type t = { leaves : int; phases : phase list }

val make : leaves:int -> phase list -> t
(** Validates that every phase fits [leaves] (a power of two). *)

val length : t -> int

val total_comms : t -> int

val random_well_nested :
  Cst_util.Prng.t ->
  leaves:int ->
  phases:int ->
  ?density_lo:float ->
  ?density_hi:float ->
  unit ->
  t
(** Independent uniform well-nested phases with densities drawn uniformly
    from [[density_lo, density_hi]] (defaults 0.2 and 1.0). *)

val from_suite :
  Cst_util.Prng.t -> leaves:int -> rounds:int -> t
(** Cycles [rounds] times through every named workload of
    {!Cst_workloads.Suite} — a heterogeneous stress trace. *)

val pp : Format.formatter -> t -> unit

(** Message-passing execution of the CSA.

    The functional scheduler ({!Csa}) is the specification; this engine
    executes the same algorithm as the paper's hardware would: nodes
    communicate only through explicit mailboxes, one tree level per clock
    cycle, and every switch decision is taken by {!Round.configure} from
    the switch's own registers and its single incoming message.  The
    engine therefore demonstrates the locality claim and measures the
    quantities of Theorem 5: cycles, message count and message size.

    Tests assert that the engine's schedule is identical, round for round,
    to {!Csa.run}'s. *)

type stats = {
  cycles : int;  (** total clock cycles, Phase 1 included *)
  control_messages : int;  (** messages exchanged over tree links *)
  max_message_words : int;  (** largest message, in words — a constant *)
  state_words_per_switch : int;  (** switch storage, in words — 5 *)
}

val run :
  ?keep_configs:bool ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t * stats, Csa.error) result

val run_exn :
  ?keep_configs:bool ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t * stats

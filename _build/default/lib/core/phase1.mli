(** Phase 1 of the CSA: distributing control information (paper §3).

    Each PE reports whether it is a source ([1,0]), a destination ([0,1])
    or idle ([0,0]); each switch combines the [C_U = [S, D]] words of its
    children, matches [min(S_L, D_R)] source-destination pairs locally
    (correct by the paper's Lemma 1 for well-nested right-oriented sets)
    and forwards the residue.  The pass is purely local: a switch sees only
    the two 2-word messages from its children. *)

type t = {
  states : Csa_state.t array;  (** indexed by internal node id *)
  s_up : int array;  (** [C_U] source count sent up by each node *)
  d_up : int array;  (** [C_U] destination count sent up by each node *)
}

val run : Cst.Topology.t -> Cst_comm.Comm_set.t -> t
(** Requires a right-oriented set fitting the topology.  For well-nested
    input the root residuals are all zero (asserted); callers validate
    well-nestedness beforehand ({!Csa.run} does). *)

val state : t -> int -> Csa_state.t
(** Registers of the switch at an internal node. *)

val total_matched : t -> int
(** Sum of [m] over all switches; equals the set size for well-nested
    input (every communication is matched exactly at its LCA). *)

val up_words_per_message : int
(** Size of the upward control message [C_U] — the constant 2
    (Theorem 5). *)

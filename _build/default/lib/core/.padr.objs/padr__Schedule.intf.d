lib/core/schedule.mli: Cst Cst_comm Format

lib/core/round.mli: Csa_state Cst Downmsg

lib/core/round.ml: Array Csa_state Cst Downmsg List

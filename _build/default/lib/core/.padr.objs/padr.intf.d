lib/core/padr.mli: Csa Csa_state Cst Cst_comm Downmsg Engine Format Invariants Left Phase1 Round Schedule Verify Waves

lib/core/downmsg.mli: Format

lib/core/left.mli: Csa Cst Cst_comm Schedule

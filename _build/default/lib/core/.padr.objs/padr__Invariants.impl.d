lib/core/invariants.ml: Array Csa_state Cst Cst_comm Format List Phase1 Round

lib/core/engine.mli: Csa Cst Cst_comm Schedule

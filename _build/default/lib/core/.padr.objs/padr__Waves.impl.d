lib/core/waves.ml: Csa Cst Cst_comm Cst_util Format List Schedule

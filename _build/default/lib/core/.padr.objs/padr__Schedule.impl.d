lib/core/schedule.ml: Array Cst Cst_comm Format List

lib/core/csa.ml: Array Cst Cst_comm Format List Phase1 Round Schedule

lib/core/padr.ml: Csa Csa_state Cst Cst_comm Cst_util Downmsg Engine Invariants Left List Option Phase1 Result Round Schedule Verify Waves

lib/core/left.ml: Array Csa Csa_state Cst Cst_comm Downmsg Format List Round Schedule

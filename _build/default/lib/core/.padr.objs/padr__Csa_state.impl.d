lib/core/csa_state.ml: Format

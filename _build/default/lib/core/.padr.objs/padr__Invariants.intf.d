lib/core/invariants.mli: Cst Cst_comm Format

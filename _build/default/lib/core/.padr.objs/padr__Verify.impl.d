lib/core/verify.ml: Array Cst Cst_comm Format List Schedule

lib/core/phase1.mli: Csa_state Cst Cst_comm

lib/core/csa_state.mli: Format

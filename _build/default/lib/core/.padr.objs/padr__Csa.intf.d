lib/core/csa.mli: Cst Cst_comm Format Schedule

lib/core/engine.ml: Array Csa Csa_state Cst Cst_comm Downmsg Format List Phase1 Round Schedule

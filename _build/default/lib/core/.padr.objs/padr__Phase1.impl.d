lib/core/phase1.ml: Array Csa_state Cst Cst_comm

lib/core/downmsg.ml: Format

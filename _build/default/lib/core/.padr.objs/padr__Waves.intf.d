lib/core/waves.mli: Csa Cst_comm Format Schedule

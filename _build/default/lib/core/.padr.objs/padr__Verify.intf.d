lib/core/verify.mli: Cst Cst_comm Format Schedule

(** One round of Phase 2: the power-aware switch rule (paper Figure 5).

    {!configure} is the per-switch decision procedure.  It sees only the
    switch's own registers and the parent's message — the locality claimed
    by the paper — and is shared verbatim by the functional scheduler
    ({!Csa}) and the message-passing engine ({!Engine}).

    The rule, covering all four message shapes at once:
    {ol
    {- route an incoming source request: through [l_i -> p_o] if the index
       falls among the remaining left pass-up sources, else through
       [r_i -> p_o] with the index shifted by the left count;}
    {- route an incoming destination request: through [p_i -> r_o] if the
       index (from the right) falls among the remaining right pass-down
       destinations, else through [p_i -> l_o] shifted;}
    {- if matched pairs remain and neither [l_i] nor [r_o] was taken,
       schedule the {e outermost} remaining matched pair with [l_i -> r_o]
       and request its source (left index [sl]) and destination (right
       index [dr]) from the children.}}

    Step 3's outermost-first selection is what makes each output port's
    driver sequence alternate O(1) times (Lemmas 6-7). *)

type decision = {
  config : Cst.Switch_config.t;  (** connections this round requires *)
  to_left : Downmsg.t;
  to_right : Downmsg.t;
  scheduled_matched : bool;  (** consumed one of the switch's [m] pairs *)
}

val configure : Csa_state.t -> Downmsg.t -> decision
(** Mutates the registers (they describe remaining traffic).  Raises
    [Assert_failure] if the parent requests a source or destination the
    subtree does not have — impossible when Phase 1 ran on well-nested
    input. *)

type outcome = {
  wants : Cst.Switch_config.t array;  (** per internal node *)
  sources : int list;  (** PEs that write this round, ascending *)
  dests : int list;  (** PEs that receive this round, ascending *)
  matched_count : int;  (** communications scheduled this round *)
}

val sweep : Cst.Topology.t -> Csa_state.t array -> outcome
(** Full top-down sweep from the root (which always acts on
    [Downmsg.null]).  Mutates the state array. *)

type report = {
  ok : bool;
  rounds_checked : int;
  first_divergence : (int * int) option;
}

let audit topo set =
  let leaves = Cst.Topology.leaves topo in
  let phase1 = Phase1.run topo set in
  let pending =
    ref
      (List.sort_uniq compare
         (Array.to_list (Cst_comm.Comm_set.comms set)
         |> List.map (fun (c : Cst_comm.Comm.t) -> (c.src, c.dst))))
  in
  let divergence = ref None in
  let rounds = ref 0 in
  let remaining = ref (Phase1.total_matched phase1) in
  while !remaining > 0 && !divergence = None do
    incr rounds;
    let out = Round.sweep topo phase1.states in
    if out.matched_count = 0 then
      failwith "Invariants.audit: no progress";
    remaining := !remaining - out.matched_count;
    (* The round's scheduled communications are source-dest pairs read
       off the marked leaves; remove them from the pending set.  Sources
       and destinations pair up in order because each round is itself a
       well-nested compatible batch. *)
    let scheduled =
      List.filter (fun (s, _) -> List.mem s out.sources) !pending
    in
    pending := List.filter (fun p -> not (List.mem p scheduled)) !pending;
    (* Oracle: recompute Phase 1 on what is left. *)
    let rest =
      Cst_comm.Comm_set.create_exn ~n:(Cst_comm.Comm_set.n set)
        (List.map (fun (s, d) -> Cst_comm.Comm.make ~src:s ~dst:d) !pending)
    in
    let oracle = Phase1.run topo rest in
    for node = 1 to leaves - 1 do
      if
        !divergence = None
        && not
             (Csa_state.equal (Phase1.state phase1 node)
                (Phase1.state oracle node))
      then divergence := Some (!rounds, node)
    done
  done;
  {
    ok = !divergence = None;
    rounds_checked = !rounds;
    first_divergence = !divergence;
  }

let pp_report fmt r =
  match r.first_divergence with
  | None ->
      Format.fprintf fmt
        "registers match the from-scratch oracle after each of %d rounds"
        r.rounds_checked
  | Some (round, node) ->
      Format.fprintf fmt "register divergence at round %d, switch %d" round
        node

(** Downward control messages of Phase 2 (paper Step 2.1).

    A parent tells a child which of the two directed links between them the
    current round uses.  [sreq = Some x] means "the upward link carries the
    [x]-th left-most remaining source of your subtree" (Definition 2);
    [dreq = Some x] means "the downward link feeds your [x]-th right-most
    remaining destination".  The four shapes [null,null] / [s,null] /
    [d,null] / [s,d] of the paper correspond to the four combinations.
    Every message is two optional indices — a constant number of words
    (Theorem 5). *)

type t = { sreq : int option; dreq : int option }

val null : t
(** [null, null] — the child is free to schedule its own matched pairs. *)

val s : int -> t
val d : int -> t
val sd : int -> int -> t

val shape : t -> string
(** ["[null,null]"], ["[s,null]"], ["[d,null]"] or ["[s,d]"] — the
    alternation alphabet of the power proof (Lemmas 6-7). *)

val words : t -> int
(** Always 4 (two tags, two indices) — Theorem 5's constant. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

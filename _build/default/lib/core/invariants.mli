(** White-box invariant auditing of the CSA's register evolution.

    The paper's correctness argument rests on one invariant: after any
    prefix of rounds, each switch's mutated registers [C_S] describe
    exactly the traffic that is {e still pending} — i.e. they equal the
    registers Phase 1 would compute from scratch on the set of not yet
    scheduled communications.  {!audit} replays a schedule round by round
    against this oracle; any drift between the local decrements of the
    round rule and the global meaning of the registers is caught at the
    switch where it happens. *)

type report = {
  ok : bool;
  rounds_checked : int;
  first_divergence : (int * int) option;
      (** (round, node) of the first register mismatch, if any *)
}

val audit : Cst.Topology.t -> Cst_comm.Comm_set.t -> report
(** Runs the CSA sweep on [set] while recomputing the oracle registers
    after every round.  Requires a right-oriented well-nested set. *)

val pp_report : Format.formatter -> report -> unit

type stats = {
  cycles : int;
  control_messages : int;
  max_message_words : int;
  state_words_per_switch : int;
}

(* Mailboxes indexed by node id; a None mailbox means no message this
   sweep.  The up pass carries (s, d) counter pairs, the down pass carries
   Downmsg.t values. *)

let run ?(keep_configs = true) topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Csa.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Csa.Not_well_nested v)
    | Ok _ ->
        let width = Cst_comm.Width.width ~leaves set in
        let cycles = ref 0 and messages = ref 0 in
        let max_words = ref 0 in
        let send words = incr messages; max_words := max !max_words words in

        (* Phase 1: each node posts its (s, d) word pair to its parent;
           a switch fires once both children's mailboxes are full.  One
           level per cycle. *)
        let up_box = Array.make (2 * leaves) None in
        let roles = Cst_comm.Comm_set.roles set in
        for pe = 0 to leaves - 1 do
          let node = Cst.Topology.node_of_pe topo pe in
          let msg =
            if pe < Array.length roles then
              match roles.(pe) with
              | Cst_comm.Comm_set.Source _ -> (1, 0)
              | Cst_comm.Comm_set.Dest _ -> (0, 1)
              | Cst_comm.Comm_set.Idle -> (0, 0)
            else (0, 0)
          in
          up_box.(node) <- Some msg;
          send Phase1.up_words_per_message
        done;
        incr cycles;
        let states = Array.init leaves (fun _ -> Csa_state.zero ()) in
        let levels = Cst.Topology.levels topo in
        for lvl = 1 to levels do
          (* Internal nodes at this level consume their children's boxes. *)
          for node = 1 to leaves - 1 do
            if Cst.Topology.level topo node = lvl then begin
              let y = Cst.Topology.left topo node
              and z = Cst.Topology.right topo node in
              match (up_box.(y), up_box.(z)) with
              | Some (s_l, d_l), Some (s_r, d_r) ->
                  let m = min s_l d_r in
                  states.(node) <-
                    Csa_state.make ~m ~sl:(s_l - m) ~dl:d_l ~sr:s_r
                      ~dr:(d_r - m);
                  if node <> Cst.Topology.root then begin
                    up_box.(node) <- Some (s_l - m + s_r, d_l + (d_r - m));
                    send Phase1.up_words_per_message
                  end
              | _ -> assert false
            end
          done;
          incr cycles
        done;

        let net = Cst.Net.create topo in
        let remaining =
          ref
            (Array.fold_left
               (fun acc (s : Csa_state.t) -> acc + s.m)
               0 states)
        in
        let rounds = ref [] in
        let index = ref 0 in
        let down_box = Array.make (2 * leaves) None in
        while !remaining > 0 do
          incr index;
          Array.fill down_box 0 (Array.length down_box) None;
          down_box.(Cst.Topology.root) <- Some Downmsg.null;
          let sources = ref [] and dests = ref [] in
          let matched = ref 0 in
          let wants = Array.make leaves Cst.Switch_config.empty in
          (* Down pass: one level per cycle, root first. *)
          for lvl = levels downto 0 do
            for node = 1 to (2 * leaves) - 1 do
              if Cst.Topology.level topo node = lvl then
                match down_box.(node) with
                | None -> ()
                | Some (msg : Downmsg.t) ->
                    if Cst.Topology.is_leaf topo node then begin
                      let pe = Cst.Topology.pe_of_node topo node in
                      (match msg.sreq with
                      | Some 0 -> sources := pe :: !sources
                      | None -> ()
                      | Some _ -> assert false);
                      match msg.dreq with
                      | Some 0 -> dests := pe :: !dests
                      | None -> ()
                      | Some _ -> assert false
                    end
                    else begin
                      let d = Round.configure states.(node) msg in
                      wants.(node) <- d.config;
                      if d.scheduled_matched then incr matched;
                      down_box.(Cst.Topology.left topo node) <-
                        Some d.to_left;
                      down_box.(Cst.Topology.right topo node) <-
                        Some d.to_right;
                      send (Downmsg.words d.to_left);
                      send (Downmsg.words d.to_right)
                    end
            done;
            incr cycles
          done;
          if !matched = 0 then
            failwith "Engine.run: no progress (internal invariant broken)";
          for node = 1 to leaves - 1 do
            Cst.Net.reconfigure_lazy net ~node ~want:wants.(node)
          done;
          let sources = List.rev !sources and dests = List.rev !dests in
          List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) sources;
          let deliveries = Cst.Data_plane.transfer net ~sources in
          incr cycles;
          (* the data transfer cycle *)
          remaining := !remaining - !matched;
          let configs =
            if keep_configs then begin
              let acc = ref [] in
              for node = leaves - 1 downto 1 do
                let cfg = Cst.Net.config net node in
                if not (Cst.Switch_config.is_empty cfg) then
                  acc := (node, cfg) :: !acc
              done;
              Array.of_list !acc
            end
            else [||]
          in
          rounds :=
            { Schedule.index = !index; sources; dests; deliveries; configs }
            :: !rounds
        done;
        let sched =
          {
            Schedule.leaves;
            set;
            width;
            rounds = Array.of_list (List.rev !rounds);
            power = Schedule.power_of_meter (Cst.Net.meter net);
            cycles = !cycles;
          }
        in
        Ok
          ( sched,
            {
              cycles = !cycles;
              control_messages = !messages;
              max_message_words = !max_words;
              state_words_per_switch = Csa_state.words states.(1);
            } )

let run_exn ?keep_configs topo set =
  match run ?keep_configs topo set with
  | Ok r -> r
  | Error e -> invalid_arg (Format.asprintf "%a" Csa.pp_error e)

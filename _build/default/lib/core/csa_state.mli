(** Per-switch control registers of the CSA (paper Step 1.3).

    After Phase 1 every switch [u] stores the five counters [C_S]
    classifying the communications that traverse it (paper Figure 4(a)):

    - [m]  — matched pairs: source in the left subtree, destination in the
      right subtree (type 1; all need the [l_i -> r_o] connection);
    - [sl] — unmatched left-subtree sources passing above [u] (type 4);
    - [dl] — left-subtree destinations fed from above (type 3);
    - [sr] — right-subtree sources passing above (type 2);
    - [dr] — unmatched right-subtree destinations fed from above (type 5).

    Phase 2 decrements these as communications are scheduled, so at any
    round the registers describe exactly the {e remaining} traffic — a
    constant number of words per switch (Theorem 5). *)

type t = {
  mutable m : int;
  mutable sl : int;
  mutable dl : int;
  mutable sr : int;
  mutable dr : int;
}

val zero : unit -> t
val make : m:int -> sl:int -> dl:int -> sr:int -> dr:int -> t
val copy : t -> t
val equal : t -> t -> bool

val is_drained : t -> bool
(** All counters zero: the switch has no remaining work. *)

val remaining : t -> int
(** Sum of all counters (an upper bound on remaining involvement). *)

val words : t -> int
(** Storage footprint in words — always 5 (Theorem 5's constant). *)

val pp : Format.formatter -> t -> unit

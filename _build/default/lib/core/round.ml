type decision = {
  config : Cst.Switch_config.t;
  to_left : Downmsg.t;
  to_right : Downmsg.t;
  scheduled_matched : bool;
}

let configure (st : Csa_state.t) (msg : Downmsg.t) =
  let cfg = ref Cst.Switch_config.empty in
  let connect ~output ~input =
    cfg := Cst.Switch_config.set !cfg ~output ~input
  in
  let li_used = ref false and ro_used = ref false in
  let left_s = ref None and left_d = ref None in
  let right_s = ref None and right_d = ref None in
  (match msg.Downmsg.sreq with
  | None -> ()
  | Some x ->
      if x < st.sl then begin
        (* The requested source is among the left child's pass-ups. *)
        connect ~output:Cst.Side.P ~input:Cst.Side.L;
        li_used := true;
        st.sl <- st.sl - 1;
        left_s := Some x
      end
      else begin
        assert (x - st.sl < st.sr);
        connect ~output:Cst.Side.P ~input:Cst.Side.R;
        st.sr <- st.sr - 1;
        right_s := Some (x - st.sl)
      end);
  (match msg.Downmsg.dreq with
  | None -> ()
  | Some x ->
      if x < st.dr then begin
        (* Counted from the right: among the right child's pass-downs. *)
        connect ~output:Cst.Side.R ~input:Cst.Side.P;
        ro_used := true;
        st.dr <- st.dr - 1;
        right_d := Some x
      end
      else begin
        assert (x - st.dr < st.dl);
        connect ~output:Cst.Side.L ~input:Cst.Side.P;
        st.dl <- st.dl - 1;
        left_d := Some (x - st.dr)
      end);
  let scheduled_matched =
    if st.m > 0 && (not !li_used) && not !ro_used then begin
      connect ~output:Cst.Side.R ~input:Cst.Side.L;
      st.m <- st.m - 1;
      (* Outermost remaining pair: source after the [sl] pass-ups of the
         left child, destination after the [dr] pass-downs of the right. *)
      left_s := Some st.sl;
      right_d := Some st.dr;
      true
    end
    else false
  in
  {
    config = !cfg;
    to_left = { Downmsg.sreq = !left_s; dreq = !left_d };
    to_right = { Downmsg.sreq = !right_s; dreq = !right_d };
    scheduled_matched;
  }

type outcome = {
  wants : Cst.Switch_config.t array;
  sources : int list;
  dests : int list;
  matched_count : int;
}

let sweep topo states =
  let leaves = Cst.Topology.leaves topo in
  let wants = Array.make leaves Cst.Switch_config.empty in
  let sources = ref [] and dests = ref [] in
  let matched = ref 0 in
  let rec go node (msg : Downmsg.t) =
    if Cst.Topology.is_leaf topo node then begin
      let pe = Cst.Topology.pe_of_node topo node in
      (* A request reaching a leaf must have resolved to index 0, and a PE
         is never both endpoints of the same round. *)
      (match msg.sreq with
      | Some 0 -> sources := pe :: !sources
      | None -> ()
      | Some _ -> assert false);
      (match msg.dreq with
      | Some 0 -> dests := pe :: !dests
      | None -> ()
      | Some _ -> assert false);
      assert (not (msg.sreq <> None && msg.dreq <> None))
    end
    else begin
      let d = configure states.(node) msg in
      wants.(node) <- d.config;
      if d.scheduled_matched then incr matched;
      go (Cst.Topology.left topo node) d.to_left;
      go (Cst.Topology.right topo node) d.to_right
    end
  in
  go Cst.Topology.root Downmsg.null;
  {
    wants;
    sources = List.rev !sources;
    dests = List.rev !dests;
    matched_count = !matched;
  }

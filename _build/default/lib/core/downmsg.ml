type t = { sreq : int option; dreq : int option }

let null = { sreq = None; dreq = None }
let s x = { sreq = Some x; dreq = None }
let d x = { sreq = None; dreq = Some x }
let sd x y = { sreq = Some x; dreq = Some y }

let shape t =
  match (t.sreq, t.dreq) with
  | None, None -> "[null,null]"
  | Some _, None -> "[s,null]"
  | None, Some _ -> "[d,null]"
  | Some _, Some _ -> "[s,d]"

let words _ = 4

let equal a b = a.sreq = b.sreq && a.dreq = b.dreq

let pp fmt t =
  let pp_opt fmt = function
    | None -> Format.pp_print_string fmt "null"
    | Some x -> Format.pp_print_int fmt x
  in
  Format.fprintf fmt "[s=%a, d=%a]" pp_opt t.sreq pp_opt t.dreq

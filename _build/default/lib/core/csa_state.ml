type t = {
  mutable m : int;
  mutable sl : int;
  mutable dl : int;
  mutable sr : int;
  mutable dr : int;
}

let zero () = { m = 0; sl = 0; dl = 0; sr = 0; dr = 0 }
let make ~m ~sl ~dl ~sr ~dr = { m; sl; dl; sr; dr }
let copy t = { t with m = t.m }

let equal a b =
  a.m = b.m && a.sl = b.sl && a.dl = b.dl && a.sr = b.sr && a.dr = b.dr

let is_drained t = t.m = 0 && t.sl = 0 && t.dl = 0 && t.sr = 0 && t.dr = 0
let remaining t = t.m + t.sl + t.dl + t.sr + t.dr
let words _ = 5

let pp fmt t =
  Format.fprintf fmt "[m=%d sl=%d dl=%d sr=%d dr=%d]" t.m t.sl t.dl t.sr t.dr

type t = {
  states : Csa_state.t array;
  s_up : int array;
  d_up : int array;
}

let run topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    invalid_arg "Phase1.run: set does not fit the topology";
  if not (Cst_comm.Comm_set.is_right_oriented set) then
    invalid_arg "Phase1.run: set must be right-oriented";
  let num = 2 * leaves in
  let s_up = Array.make num 0 and d_up = Array.make num 0 in
  let states = Array.init leaves (fun _ -> Csa_state.zero ()) in
  (* Step 1.1: leaf reports. *)
  let roles = Cst_comm.Comm_set.roles set in
  for pe = 0 to leaves - 1 do
    let node = Cst.Topology.node_of_pe topo pe in
    match if pe < Array.length roles then roles.(pe) else Cst_comm.Comm_set.Idle with
    | Cst_comm.Comm_set.Source _ -> s_up.(node) <- 1
    | Cst_comm.Comm_set.Dest _ -> d_up.(node) <- 1
    | Cst_comm.Comm_set.Idle -> ()
  done;
  (* Steps 1.2-1.3: combine children bottom-up. *)
  Cst.Topology.iter_internal_bottom_up topo (fun u ->
      let y = Cst.Topology.left topo u and z = Cst.Topology.right topo u in
      let s_l = s_up.(y) and d_l = d_up.(y) in
      let s_r = s_up.(z) and d_r = d_up.(z) in
      let m = min s_l d_r in
      states.(u) <-
        Csa_state.make ~m ~sl:(s_l - m) ~dl:d_l ~sr:s_r ~dr:(d_r - m);
      s_up.(u) <- s_l - m + s_r;
      d_up.(u) <- d_l + (d_r - m));
  (* A valid right-oriented set leaves no residue at the root. *)
  assert (s_up.(Cst.Topology.root) = 0 && d_up.(Cst.Topology.root) = 0);
  { states; s_up; d_up }

let state t u = t.states.(u)

let total_matched t =
  Array.fold_left (fun acc (s : Csa_state.t) -> acc + s.m) 0 t.states

let up_words_per_message = 2

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  { n = Array.length xs; mean = mean xs; stddev = stddev xs; min = mn; max = mx }

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  if Array.length xs = 0 then invalid_arg "Stats.median: empty";
  let c = sorted_copy xs in
  let n = Array.length c in
  if n mod 2 = 1 then c.(n / 2) else (c.((n / 2) - 1) +. c.(n / 2)) /. 2.0

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let c = sorted_copy xs in
  let n = Array.length c in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  c.(max 0 (min (n - 1) (rank - 1)))

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let fx = Array.map fst pts and fy = Array.map snd pts in
  let mx = mean fx and my = mean fy in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      sxy := !sxy +. ((x -. mx) *. (y -. my));
      syy := !syy +. ((y -. my) *. (y -. my)))
    pts;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate abscissae";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.n s.mean
    s.stddev s.min s.max

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ceil_pow2 n =
  if n < 1 then invalid_arg "Bits.ceil_pow2";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ilog2 n =
  if n < 1 then invalid_arg "Bits.ilog2";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let popcount n =
  if n < 0 then invalid_arg "Bits.popcount";
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

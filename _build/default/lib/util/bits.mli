(** Small integer utilities used by the tree topology and generators. *)

val is_power_of_two : int -> bool
(** True for 1, 2, 4, 8, ...; false for 0, negatives and non-powers. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n].  Requires [n >= 1]. *)

val ilog2 : int -> int
(** Floor of log base 2.  Requires [n >= 1].  [ilog2 1 = 0]. *)

val popcount : int -> int
(** Number of set bits of a non-negative int. *)

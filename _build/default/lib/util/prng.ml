type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let mask = bound - 1 in
    if bound land mask = 0 then bits30 t land mask
    else
      let rec loop () =
        let r = bits30 t in
        let v = r mod bound in
        if r - v + (bound - 1) < 0 then loop () else v
      in
      loop ()
  end
  else
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

lib/util/bits.ml:

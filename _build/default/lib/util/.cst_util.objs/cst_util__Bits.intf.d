lib/util/bits.mli:

lib/util/prng.mli:

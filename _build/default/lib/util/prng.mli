(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator.  All randomness in the repository
    (workload generation, property tests, benchmarks) flows through this
    module so that every experiment is reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed.  Equal seeds
    produce equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are independent for practical purposes. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]].  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

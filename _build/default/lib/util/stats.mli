(** Descriptive statistics and linear fits.

    Used by the benchmark harness to decide empirically whether a measured
    quantity is constant in a parameter (slope of the least-squares line
    close to zero) or grows linearly — the observable form of the paper's
    O(1)-vs-O(w) contrast. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Summary of a non-empty sample. *)

val mean : float array -> float
val stddev : float array -> float
val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) array -> fit
(** Least-squares line through [(x, y)] points.  Requires at least two
    distinct abscissae. *)

val pp_summary : Format.formatter -> summary -> unit

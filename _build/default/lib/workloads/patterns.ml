let comm src dst = Cst_comm.Comm.make ~src ~dst

let set ~n pairs = Cst_comm.Comm_set.create_exn ~n (List.map (fun (s, d) -> comm s d) pairs)

let fig2 () =
  set ~n:16
    [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13); (9, 10); (11, 12) ]

let fig3b () =
  (* Subtree T(u) covers PEs 0..7; s7,s6 pass above u while s4,s3 match
     d4,d3 at u.  c4 = (2,5) is the outermost communication matched at u;
     its source has the two pass-up sources to its left (x_s = 2) and its
     destination is the rightmost (x_d = 0), as in Definition 2. *)
  set ~n:16 [ (0, 14); (1, 13); (2, 5); (3, 4); (8, 11); (9, 10) ]

let interleaved_pairs ~n =
  if n < 4 then invalid_arg "Patterns.interleaved_pairs";
  let rec go i acc =
    if i + 1 >= n then List.rev acc else go (i + 4) ((i, i + 1) :: acc)
  in
  set ~n (go 0 [])

let comb ~n ~teeth =
  if teeth < 1 || n / teeth < 2 then invalid_arg "Patterns.comb";
  let tooth = n / teeth in
  let depth = tooth / 2 in
  set ~n
    (List.concat
       (List.init teeth (fun t ->
            let lo = t * tooth in
            List.init depth (fun i -> (lo + i, lo + (2 * depth) - 1 - i)))))

let staircase ~n =
  if n < 4 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Patterns.staircase";
  (* Communication k spans from PE 1 lsl k - ... build hops crossing ever
     higher switches: (2^k - 1, 2^k) for k = 1 .. log n - 1. *)
  let levels = Cst_util.Bits.ilog2 n in
  set ~n (List.init (levels - 1) (fun k -> ((1 lsl (k + 1)) - 1, 1 lsl (k + 1))))

let full_onion ~n =
  if n < 2 then invalid_arg "Patterns.full_onion";
  set ~n (List.init (n / 2) (fun i -> (i, n - 1 - i)))

let segment_neighbors ~n =
  if n < 2 then invalid_arg "Patterns.segment_neighbors";
  set ~n (List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1)))

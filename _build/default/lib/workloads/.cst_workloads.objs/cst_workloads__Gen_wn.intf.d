lib/workloads/gen_wn.mli: Cst_comm Cst_util

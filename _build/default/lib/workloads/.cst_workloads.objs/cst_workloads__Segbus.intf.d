lib/workloads/segbus.mli: Cst_comm Format Padr

lib/workloads/gen_arbitrary.mli: Cst_comm Cst_util

lib/workloads/patterns.mli: Cst_comm

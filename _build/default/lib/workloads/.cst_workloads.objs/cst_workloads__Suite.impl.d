lib/workloads/suite.ml: Adversarial Cst_comm Cst_util Gen_wn List Patterns

lib/workloads/suite.mli: Cst_comm Cst_util

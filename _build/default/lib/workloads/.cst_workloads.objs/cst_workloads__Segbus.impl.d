lib/workloads/segbus.ml: Array Cst_comm Format List Padr

lib/workloads/patterns.ml: Cst_comm Cst_util List

lib/workloads/adversarial.ml: Cst_comm Cst_util Gen_wn List

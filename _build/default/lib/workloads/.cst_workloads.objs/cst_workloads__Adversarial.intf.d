lib/workloads/adversarial.mli: Cst_comm

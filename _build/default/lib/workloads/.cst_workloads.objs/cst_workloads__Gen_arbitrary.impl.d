lib/workloads/gen_arbitrary.ml: Array Cst_comm Cst_util Fun List

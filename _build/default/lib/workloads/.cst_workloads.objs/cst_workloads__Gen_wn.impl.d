lib/workloads/gen_wn.ml: Array Cst_comm Cst_util List

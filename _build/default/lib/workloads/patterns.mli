(** Fixed, named communication patterns, including the paper's figures. *)

val fig2 : unit -> Cst_comm.Comm_set.t
(** The shape of the paper's Figure 2: a right-oriented well-nested set
    with an enclosing communication, nested siblings and an idle gap, over
    16 PEs. *)

val fig3b : unit -> Cst_comm.Comm_set.t
(** The configuration of Figure 3(b) used by Definitions 1-2: sources
    [s7 < s6 < s4 < s3] and destinations [d4 < d3] inside one subtree, the
    outer communications leaving it.  Realized over 16 PEs with the outer
    destinations to the right. *)

val interleaved_pairs : n:int -> Cst_comm.Comm_set.t
(** [(0,1) (2,3) ...] alternated with gaps — width 1. *)

val comb : n:int -> teeth:int -> Cst_comm.Comm_set.t
(** [teeth] disjoint same-depth nests side by side; width equals the
    depth of one tooth ([n / (2 * teeth)]). *)

val staircase : n:int -> Cst_comm.Comm_set.t
(** Nested set whose i-th layer hops one subtree boundary more than the
    previous one: exercises pass-through routing at every level. *)

val full_onion : n:int -> Cst_comm.Comm_set.t
(** Maximum-width onion: [(i, n-1-i)] for all [i < n/2]; width [n/2]. *)

val segment_neighbors : n:int -> Cst_comm.Comm_set.t
(** [(i, i+1)] for even [i] — the segmentable-bus neighbour pattern the
    paper's introduction cites as subsumed by well-nested sets. *)

(** Workloads that stress per-round schedulers' power consumption.

    These sets keep their width moderate (so round counts stay comparable)
    while forcing ID/greedy-style schedulers to demand {e different}
    connections at the same switches on consecutive rounds.  Under the CSA
    the same sets cost O(1) changes per switch — the contrast benches E6
    and E7 report. *)

val centre_onion : n:int -> width:int -> Cst_comm.Comm_set.t
(** Alias of {!Gen_wn.onion}: every layer crosses the root, so a
    per-round scheduler rewires the root's neighbourhood every round. *)

val flip_flop : n:int -> Cst_comm.Comm_set.t
(** Nested layers whose sources alternate between hugging the left edge
    and the centre, so pass-up routing alternates between the root's left
    child's [l_i] and [r_i] inputs round after round under ID scheduling.
    Requires a power of two [n >= 8]. *)

val deep_staircase : n:int -> Cst_comm.Comm_set.t
(** Width-[log2 n] set in which layer [k]'s path turns at the level-[k]
    switch: every level of the tree hosts exactly one turn, touching the
    maximum number of distinct switches. *)

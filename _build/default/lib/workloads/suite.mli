(** Name-indexed registry of workload generators, for the CLI and the
    benchmark harness.  Every generator takes the PE count and a PRNG
    (deterministic generators ignore it). *)

type gen = {
  name : string;
  description : string;
  make : Cst_util.Prng.t -> n:int -> Cst_comm.Comm_set.t;
}

val all : gen list
val find : string -> gen option
val names : string list

let random_pairs rng ~n ~pairs =
  if pairs < 0 || 2 * pairs > n then invalid_arg "Gen_arbitrary.random_pairs";
  let slots = Array.init n (fun i -> i) in
  Cst_util.Prng.shuffle rng slots;
  let comms =
    List.init pairs (fun k ->
        let a = slots.(2 * k) and b = slots.((2 * k) + 1) in
        if Cst_util.Prng.bool rng then Cst_comm.Comm.make ~src:a ~dst:b
        else Cst_comm.Comm.make ~src:b ~dst:a)
  in
  Cst_comm.Comm_set.create_exn ~n comms

let butterfly ~n ~stage =
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Gen_arbitrary.butterfly: n";
  if stage < 0 || 1 lsl stage >= n then
    invalid_arg "Gen_arbitrary.butterfly: stage";
  let bit = 1 lsl stage in
  let comms =
    List.filter_map
      (fun i ->
        if i land bit = 0 then
          Some (Cst_comm.Comm.make ~src:i ~dst:(i + bit))
        else None)
      (List.init n Fun.id)
  in
  Cst_comm.Comm_set.create_exn ~n comms

let bit_reversal_sample rng ~n =
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Gen_arbitrary.bit_reversal_sample";
  let bits = Cst_util.Bits.ilog2 n in
  let reverse i =
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    !r
  in
  let comms =
    List.filter_map
      (fun i ->
        let j = reverse i in
        (* keep each 2-cycle once, drop fixed points, sample half *)
        if i < j && Cst_util.Prng.bool rng then
          if Cst_util.Prng.bool rng then
            Some (Cst_comm.Comm.make ~src:i ~dst:j)
          else Some (Cst_comm.Comm.make ~src:j ~dst:i)
        else None)
      (List.init n Fun.id)
  in
  Cst_comm.Comm_set.create_exn ~n comms

let comm src dst = Cst_comm.Comm.make ~src ~dst

let centre_onion ~n ~width = Gen_wn.onion ~n ~width

let flip_flop ~n =
  if n < 8 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Adversarial.flip_flop";
  let c = n / 2 in
  (* Alternate sources near the left edge and just left of the centre;
     destinations mirror on the right.  Layers remain properly nested. *)
  let depth = min (c / 2) 8 in
  let rec build k lo hi acc =
    if k >= depth then List.rev acc
    else
      let src = if k mod 2 = 0 then lo else c - 1 - (k / 2) in
      let src = max lo (min src (c - 1 - (k / 2))) in
      let dst = hi in
      build (k + 1) (src + 1) (dst - 1) (comm src dst :: acc)
  in
  let pairs = build 0 0 (n - 1) [] in
  Cst_comm.Comm_set.create_exn ~n pairs

let deep_staircase ~n =
  if n < 4 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Adversarial.deep_staircase";
  let levels = Cst_util.Bits.ilog2 n in
  (* Layer k runs from PE k to PE n - 2^{k+1}: sources ascend from the
     left edge while destinations retreat by powers of two, so the chain
     is properly nested and successive layers turn at different levels. *)
  let pairs = List.init (levels - 1) (fun k -> comm k (n - (1 lsl (k + 1)))) in
  Cst_comm.Comm_set.create_exn ~n pairs

(** Generators of {e arbitrary} (crossing, mixed-orientation) sets, for
    exercising the multi-wave extension ({!Padr.Waves}).

    These sets are valid (endpoint-disjoint) but generally {e not}
    well-nested: scheduling them takes several CSA waves. *)

val random_pairs :
  Cst_util.Prng.t -> n:int -> pairs:int -> Cst_comm.Comm_set.t
(** [pairs] communications over [2*pairs] distinct random PEs, uniformly
    paired, each pair's direction random.  Requires [2*pairs <= n]. *)

val butterfly : n:int -> stage:int -> Cst_comm.Comm_set.t
(** Stage [stage] of a butterfly exchange: PE [i] with bit [stage] clear
    sends to [i + 2^stage].  A maximally crossing right-oriented set —
    every block of [2^stage] partners is a pairwise-crossing clique, so a
    cover needs exactly [2^stage] waves.  Requires
    [0 <= stage < log2 n]. *)

val bit_reversal_sample :
  Cst_util.Prng.t -> n:int -> Cst_comm.Comm_set.t
(** A random endpoint-disjoint sample of the bit-reversal permutation
    [i -> reverse(i)]: fixed points dropped, each 2-cycle used in one
    (random) direction, and a random half of the remaining PEs
    participate.  A classic FFT-style stress pattern. *)

type t = {
  topo : Topology.t;
  configs : Switch_config.t array; (* indexed by internal node id *)
  meter : Power_meter.t;
  out_regs : int array; (* PE output registers *)
  in_regs : int option array; (* PE input registers *)
}

let create topo =
  let leaves = Topology.leaves topo in
  {
    topo;
    configs = Array.make leaves Switch_config.empty;
    meter = Power_meter.create ~num_nodes:(Topology.num_nodes topo);
    out_regs = Array.make leaves 0;
    in_regs = Array.make leaves None;
  }

let topology t = t.topo
let meter t = t.meter

let check_internal t node =
  if not (Topology.is_internal t.topo node) then
    invalid_arg (Printf.sprintf "Net: node %d is not a switch" node)

let config t node =
  check_internal t node;
  t.configs.(node)

let reconfigure t ~node cfg =
  check_internal t node;
  let delta = Switch_config.diff ~old_config:t.configs.(node) ~new_config:cfg in
  Power_meter.charge t.meter ~node delta;
  (* A per-round reconfiguration installs every connection it demands:
     the switch has no way to know its register still holds the value. *)
  Power_meter.charge_writes t.meter ~node (Switch_config.connection_count cfg);
  t.configs.(node) <- cfg

let reconfigure_lazy t ~node ~want =
  check_internal t node;
  let next = Switch_config.merge_lazy ~prev:t.configs.(node) ~want in
  let delta =
    Switch_config.diff ~old_config:t.configs.(node) ~new_config:next
  in
  Power_meter.charge t.meter ~node delta;
  (* The PADR switch only touches outputs whose driver actually changes. *)
  Power_meter.charge_writes t.meter ~node delta.connects;
  t.configs.(node) <- next

let clear_all t =
  for node = 1 to Topology.leaves t.topo - 1 do
    reconfigure t ~node Switch_config.empty
  done

let check_pe t pe =
  if pe < 0 || pe >= Topology.leaves t.topo then
    invalid_arg (Printf.sprintf "Net: bad PE %d" pe)

let pe_write t ~pe v =
  check_pe t pe;
  t.out_regs.(pe) <- v

let pe_out t ~pe =
  check_pe t pe;
  t.out_regs.(pe)

let pe_read t ~pe =
  check_pe t pe;
  t.in_regs.(pe)

let pe_deliver t ~pe v =
  check_pe t pe;
  t.in_regs.(pe) <- Some v

let reset_registers t =
  Array.fill t.out_regs 0 (Array.length t.out_regs) 0;
  Array.fill t.in_regs 0 (Array.length t.in_regs) None

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@," Topology.pp t.topo;
  for node = 1 to Topology.leaves t.topo - 1 do
    if not (Switch_config.is_empty t.configs.(node)) then
      Format.fprintf fmt "switch %d: %a@," node Switch_config.pp
        t.configs.(node)
  done;
  Format.fprintf fmt "%a@]" Power_meter.pp t.meter

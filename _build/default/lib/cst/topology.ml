type t = { leaves : int; levels : int }

let create ~leaves =
  if leaves < 2 || not (Cst_util.Bits.is_power_of_two leaves) then
    invalid_arg "Topology.create: leaves must be a power of two >= 2";
  { leaves; levels = Cst_util.Bits.ilog2 leaves }

let leaves t = t.leaves
let levels t = t.levels
let num_nodes t = (2 * t.leaves) - 1
let root = 1

let check_node t v =
  if v < 1 || v > 2 * t.leaves - 1 then
    invalid_arg (Printf.sprintf "Topology: bad node %d" v)

let is_leaf t v =
  check_node t v;
  v >= t.leaves

let is_internal t v = not (is_leaf t v)

let node_of_pe t p =
  if p < 0 || p >= t.leaves then invalid_arg "Topology.node_of_pe";
  t.leaves + p

let pe_of_node t v =
  if not (is_leaf t v) then invalid_arg "Topology.pe_of_node: internal node";
  v - t.leaves

let parent t v =
  check_node t v;
  if v = root then invalid_arg "Topology.parent: root" else v / 2

let left t v =
  if is_leaf t v then invalid_arg "Topology.left: leaf" else 2 * v

let right t v =
  if is_leaf t v then invalid_arg "Topology.right: leaf" else (2 * v) + 1

let child_side t v =
  check_node t v;
  if v = root then invalid_arg "Topology.child_side: root"
  else if v land 1 = 0 then Side.L
  else Side.R

let level t v =
  check_node t v;
  t.levels - Cst_util.Bits.ilog2 v

let lca t a b =
  check_node t a;
  check_node t b;
  let a = ref a and b = ref b in
  while !a <> !b do
    if !a > !b then a := !a / 2 else b := !b / 2
  done;
  !a

let interval t v =
  check_node t v;
  (* The subtree of v spans a contiguous block of leaves whose size is
     determined by v's level. *)
  let size = 1 lsl level t v in
  let first_at_level = 1 lsl (t.levels - level t v) in
  let lo = (v - first_at_level) * size in
  (lo, lo + size)

let mid t v =
  if is_leaf t v then invalid_arg "Topology.mid: leaf";
  fst (interval t (right t v))

let mirror_node t v =
  check_node t v;
  (* Nodes at depth d occupy ids [2^d .. 2^{d+1}-1]; reflection reverses
     the order within the level. *)
  let d = Cst_util.Bits.ilog2 v in
  (3 * (1 lsl d)) - 1 - v

let path_to_root t v =
  check_node t v;
  let rec go v acc = if v = root then List.rev (v :: acc) else go (v / 2) (v :: acc) in
  go v []

let internal_nodes t = Seq.init (t.leaves - 1) (fun i -> i + 1)

let iter_internal_bottom_up t f =
  for v = t.leaves - 1 downto 1 do
    f v
  done

let pp fmt t =
  Format.fprintf fmt "CST(leaves=%d, levels=%d, switches=%d)" t.leaves
    t.levels (t.leaves - 1)

(** Link-level compatibility of communications (paper §1).

    A set of communications can be performed in one round iff no two of
    them use the same tree link in the same direction.  This module gives
    the exact directed-link footprint of a communication and the pairwise
    and set-level compatibility tests used by the greedy baseline and the
    schedule verifier. *)

type dir = Up | Down

val link_footprint : Topology.t -> Cst_comm.Comm.t -> (int * dir) list
(** Directed links used by the communication's unique tree path: [(v, Up)]
    is the link from [v] to its parent, [(v, Down)] the reverse. *)

val conflict : Topology.t -> Cst_comm.Comm.t -> Cst_comm.Comm.t -> bool
(** The two communications share a directed link. *)

val is_compatible : Topology.t -> Cst_comm.Comm.t list -> bool
(** No directed link is used twice. *)

val max_congestion : Topology.t -> Cst_comm.Comm.t list -> int
(** Maximum number of communications over one directed link; agrees with
    {!Cst_comm.Width} (cross-checked in tests). *)

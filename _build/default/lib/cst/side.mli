(** Sides of the 3-sided CST switch (paper Figure 3(a)).

    A switch has one full-duplex port per side: towards its left child
    ([L]), its right child ([R]) and its parent ([P]).  Each port carries
    one data input and one data output; an input may be connected to an
    output of a {e different} side only. *)

type t = L | R | P

val equal : t -> t -> bool
val compare : t -> t -> int

val all : t list
(** [[L; R; P]]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["L"], ["R"] or ["P"]. *)

val index : t -> int
(** [L -> 0], [R -> 1], [P -> 2]; for array-backed tables. *)

val of_index : int -> t

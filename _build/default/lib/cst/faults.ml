module Link = struct
  type t = int * Compat.dir

  let compare = compare
end

module Link_set = Set.Make (Link)

type t = Link_set.t

let none = Link_set.empty
let fail t ~node ~dir = Link_set.add (node, dir) t
let is_down t ~node ~dir = Link_set.mem (node, dir) t
let count = Link_set.cardinal

let routable topo t c =
  List.for_all
    (fun (node, dir) -> not (is_down t ~node ~dir))
    (Compat.link_footprint topo c)

let partition topo t set =
  let ok, stranded =
    List.partition (routable topo t)
      (Array.to_list (Cst_comm.Comm_set.comms set))
  in
  (Cst_comm.Comm_set.create_exn ~n:(Cst_comm.Comm_set.n set) ok, stranded)

let pp fmt t =
  if Link_set.is_empty t then Format.pp_print_string fmt "no faults"
  else begin
    Format.fprintf fmt "%d failed link(s):" (count t);
    Link_set.iter
      (fun (node, dir) ->
        Format.fprintf fmt " %d%s" node
          (match dir with Compat.Up -> "^" | Compat.Down -> "v"))
      t
  end

(** Physical data movement through a configured CST.

    The data plane follows the switch connections exactly as hardware
    would: a source PE drives the input port of its parent switch; each
    switch forwards its inputs to whatever outputs they are connected to;
    a value reaching a leaf link is latched by that PE.  Because an input
    can never reach an output of its own side, every signal first travels
    upward, turns downward at most once, and terminates within
    [2*levels - 1] switches — there are no cycles by construction. *)

type hop = { node : int; input : Side.t; output : Side.t }

val trace_from : Net.t -> src:int -> hop list * int option
(** [trace_from net ~src] follows the signal injected by PE [src] and
    returns the switch hops traversed plus the PE reached, or [None] if
    the signal dead-ends at an unconnected input or leaves toward an
    idle... leaf-less port (the root's parent side). *)

val route : Net.t -> src:int -> int option
(** Destination PE reached by [src]'s signal, if any. *)

val transfer : Net.t -> sources:int list -> (int * int) list
(** One data cycle: every source PE writes its output register; the list
    of [(src, dst)] deliveries is returned and destination input registers
    are latched.  Raises [Invalid_argument] if two sources collide on a
    destination (cannot happen under legal one-to-one configurations). *)

type dir = Up | Down

let link_footprint topo (c : Cst_comm.Comm.t) =
  let a = ref (Topology.node_of_pe topo c.src)
  and b = ref (Topology.node_of_pe topo c.dst) in
  let acc = ref [] in
  while !a <> !b do
    if !a > !b then begin
      acc := (!a, Up) :: !acc;
      a := Topology.parent topo !a
    end
    else begin
      acc := (!b, Down) :: !acc;
      b := Topology.parent topo !b
    end
  done;
  !acc

let congestion_table topo comms =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun link ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt tbl link) in
          Hashtbl.replace tbl link (cur + 1))
        (link_footprint topo c))
    comms;
  tbl

let conflict topo a b =
  let fa = link_footprint topo a in
  let fb = link_footprint topo b in
  List.exists (fun l -> List.mem l fb) fa

let max_congestion topo comms =
  Hashtbl.fold (fun _ v acc -> max v acc) (congestion_table topo comms) 0

let is_compatible topo comms = max_congestion topo comms <= 1

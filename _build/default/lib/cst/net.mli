(** A live CST instance: topology, per-switch configurations, PE data
    registers and a power meter.

    Schedulers drive a [Net] round by round: they compute a desired
    configuration per switch, install it with {!reconfigure} (which charges
    the power meter for exactly the transitions made), then move data with
    {!Data_plane}. *)

type t

val create : Topology.t -> t
val topology : t -> Topology.t
val meter : t -> Power_meter.t

val config : t -> int -> Switch_config.t
(** Current configuration of the switch at an internal node. *)

val reconfigure : t -> node:int -> Switch_config.t -> unit
(** Per-round reconfiguration: replaces the switch's configuration,
    charging physical transitions ({!Switch_config.diff}) and one
    register {e write} per demanded connection — the switch installs its
    whole round configuration because nothing tells it the old one is
    still valid. *)

val reconfigure_lazy : t -> node:int -> want:Switch_config.t -> unit
(** PADR-style update: installs
    [Switch_config.merge_lazy ~prev:(config t node) ~want].  Connections
    not contradicted by [want] persist; only actually-changed outputs are
    charged (both as transitions and as writes). *)

val clear_all : t -> unit
(** Disconnects every switch (charged). *)

val pe_write : t -> pe:int -> int -> unit
(** Loads a PE's output register. *)

val pe_out : t -> pe:int -> int
(** Current value of a PE's output register (0 until written). *)

val pe_read : t -> pe:int -> int option
(** Last value delivered to the PE's input register, if any. *)

val pe_deliver : t -> pe:int -> int -> unit
(** Used by the data plane to latch a delivered value. *)

val reset_registers : t -> unit
val pp : Format.formatter -> t -> unit

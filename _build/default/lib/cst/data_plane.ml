type hop = { node : int; input : Side.t; output : Side.t }

let trace_from net ~src =
  let topo = Net.topology net in
  let leaf = Topology.node_of_pe topo src in
  (* The signal enters the parent switch on the input of the child side. *)
  let rec step node (incoming : Side.t) hops =
    match Switch_config.output_of (Net.config net node) incoming with
    | None -> (List.rev hops, None)
    | Some output -> (
        let hops = { node; input = incoming; output } :: hops in
        match output with
        | Side.P ->
            if node = Topology.root then (List.rev hops, None)
            else
              step (Topology.parent topo node) (Topology.child_side topo node)
                hops
        | Side.L | Side.R ->
            let child =
              if Side.equal output Side.L then Topology.left topo node
              else Topology.right topo node
            in
            if Topology.is_leaf topo child then
              (List.rev hops, Some (Topology.pe_of_node topo child))
            else step child Side.P hops)
  in
  step (Topology.parent topo leaf) (Topology.child_side topo leaf) []

let route net ~src = snd (trace_from net ~src)

let transfer net ~sources =
  let seen = Hashtbl.create 16 in
  let deliveries =
    List.filter_map
      (fun src ->
        match route net ~src with
        | None -> None
        | Some dst ->
            (match Hashtbl.find_opt seen dst with
            | Some other ->
                invalid_arg
                  (Printf.sprintf
                     "Data_plane.transfer: PEs %d and %d both deliver to %d"
                     other src dst)
            | None -> Hashtbl.add seen dst src);
            Some (src, dst))
      sources
  in
  List.iter
    (fun (src, dst) -> Net.pe_deliver net ~pe:dst (Net.pe_out net ~pe:src))
    deliveries;
  deliveries

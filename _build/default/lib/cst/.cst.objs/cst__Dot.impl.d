lib/cst/dot.ml: Array Buffer Data_plane Fun List Net Printf Seq Side Switch_config Topology

lib/cst/side.ml: Format Int Printf

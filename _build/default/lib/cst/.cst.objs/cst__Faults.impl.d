lib/cst/faults.ml: Array Compat Cst_comm Format List Set

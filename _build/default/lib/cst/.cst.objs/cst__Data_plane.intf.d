lib/cst/data_plane.mli: Net Side

lib/cst/dot.mli: Net Topology

lib/cst/trace.ml: Format List Switch_config

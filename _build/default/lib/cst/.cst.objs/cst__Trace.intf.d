lib/cst/trace.mli: Format Switch_config

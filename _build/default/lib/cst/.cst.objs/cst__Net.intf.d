lib/cst/net.mli: Format Power_meter Switch_config Topology

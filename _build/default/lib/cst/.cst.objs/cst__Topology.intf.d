lib/cst/topology.mli: Format Seq Side

lib/cst/faults.mli: Compat Cst_comm Format Topology

lib/cst/switch_config.mli: Format Side

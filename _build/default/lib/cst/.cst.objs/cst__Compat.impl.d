lib/cst/compat.ml: Cst_comm Hashtbl List Option Topology

lib/cst/power_meter.mli: Format Switch_config

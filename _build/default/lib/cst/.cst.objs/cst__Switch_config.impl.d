lib/cst/switch_config.ml: Array Format List Side

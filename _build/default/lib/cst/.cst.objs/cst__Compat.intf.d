lib/cst/compat.mli: Cst_comm Topology

lib/cst/net.ml: Array Format Power_meter Printf Switch_config Topology

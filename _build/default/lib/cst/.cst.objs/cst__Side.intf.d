lib/cst/side.mli: Format

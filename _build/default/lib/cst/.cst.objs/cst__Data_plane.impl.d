lib/cst/data_plane.ml: Hashtbl List Net Printf Side Switch_config Topology

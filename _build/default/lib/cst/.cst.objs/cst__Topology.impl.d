lib/cst/topology.ml: Cst_util Format List Printf Seq Side

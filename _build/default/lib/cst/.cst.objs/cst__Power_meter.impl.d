lib/cst/power_meter.ml: Array Format Switch_config

(** Per-switch power accounting (paper §2.3).

    The paper charges one power unit every time a switch sets a connection
    between an input and an output.  Two flavours are tracked:

    {ul
    {- {e connects/disconnects} — physical driver transitions: an output
       acquires a (different) driver, or loses it.  This is the charitable
       accounting under which any scheduler gets credit for a connection
       that happens to persist between rounds.}
    {- {e writes} — configuration-register installations.  A switch that
       cannot prove its configuration carries over must install every
       connection its current round demands; this is what ID-per-round
       scheduling pays (O(w) per switch, paper §1) and what the CSA avoids
       by construction (Lemmas 6-7: contiguous request blocks make
       carry-over a local decision).}}

    Theorem 8 states that under the CSA both counts stay O(1) per switch
    regardless of the set's width. *)

type t

val create : num_nodes:int -> t
(** Meter for switches at nodes [1 .. num_nodes]. *)

val charge : t -> node:int -> Switch_config.delta -> unit
(** Record physical transitions. *)

val charge_writes : t -> node:int -> int -> unit
(** Record configuration-register installations. *)

val connects : t -> node:int -> int
val disconnects : t -> node:int -> int
val writes : t -> node:int -> int

val total_connects : t -> int
(** Total physical power units (paper model, charitable accounting). *)

val total_disconnects : t -> int
val total_writes : t -> int

val max_connects_per_switch : t -> int
(** The quantity Theorem 8 bounds by a constant. *)

val max_writes_per_switch : t -> int
(** O(1) under CSA, O(w) under per-round scheduling. *)

val max_events_per_switch : t -> int
(** Connects plus disconnects, maximised over switches. *)

val per_switch_connects : t -> int array
(** Copy indexed by node id (index 0 unused). *)

val per_switch_writes : t -> int array
val per_switch_disconnects : t -> int array
val copy : t -> t
(** Independent snapshot of all counters. *)

val diff_since : t -> baseline:t -> t
(** Fresh meter holding [t - baseline] per counter; used to report the
    power of one schedule run on a shared long-lived network. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

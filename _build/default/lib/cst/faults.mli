(** Link-fault diagnosis.

    The CST routes every communication over its unique tree path, so a
    failed directed link makes some communications unroutable rather than
    reroutable.  This module marks directed links down and partitions a
    communication set into the part a scheduler may still perform and the
    stranded remainder — the admission control a runtime needs before
    invoking the CSA on degraded hardware. *)

type t

val none : t
(** No faults. *)

val fail : t -> node:int -> dir:Compat.dir -> t
(** Marks the directed link between [node] and its parent as down
    ([Up]: towards the parent; [Down]: towards [node]). *)

val is_down : t -> node:int -> dir:Compat.dir -> bool
val count : t -> int

val routable : Topology.t -> t -> Cst_comm.Comm.t -> bool
(** The communication's path uses no failed directed link. *)

val partition :
  Topology.t -> t -> Cst_comm.Comm_set.t -> Cst_comm.Comm_set.t * Cst_comm.Comm.t list
(** [(routable subset, stranded communications)]. *)

val pp : Format.formatter -> t -> unit

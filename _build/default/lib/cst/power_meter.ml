type t = {
  connects : int array;
  disconnects : int array;
  writes : int array;
}

let create ~num_nodes =
  {
    connects = Array.make (num_nodes + 1) 0;
    disconnects = Array.make (num_nodes + 1) 0;
    writes = Array.make (num_nodes + 1) 0;
  }

let charge t ~node (d : Switch_config.delta) =
  t.connects.(node) <- t.connects.(node) + d.connects;
  t.disconnects.(node) <- t.disconnects.(node) + d.disconnects

let charge_writes t ~node count =
  t.writes.(node) <- t.writes.(node) + count

let connects t ~node = t.connects.(node)
let disconnects t ~node = t.disconnects.(node)
let writes t ~node = t.writes.(node)

let sum a = Array.fold_left ( + ) 0 a
let total_connects t = sum t.connects
let total_disconnects t = sum t.disconnects
let total_writes t = sum t.writes

let max_of a = Array.fold_left max 0 a
let max_connects_per_switch t = max_of t.connects
let max_writes_per_switch t = max_of t.writes

let max_events_per_switch t =
  let m = ref 0 in
  Array.iteri (fun i c -> m := max !m (c + t.disconnects.(i))) t.connects;
  !m

let per_switch_connects t = Array.copy t.connects
let per_switch_writes t = Array.copy t.writes
let per_switch_disconnects t = Array.copy t.disconnects

let copy t =
  {
    connects = Array.copy t.connects;
    disconnects = Array.copy t.disconnects;
    writes = Array.copy t.writes;
  }

let diff_since t ~baseline =
  let sub a b = Array.mapi (fun i v -> v - b.(i)) a in
  {
    connects = sub t.connects baseline.connects;
    disconnects = sub t.disconnects baseline.disconnects;
    writes = sub t.writes baseline.writes;
  }

let reset t =
  Array.fill t.connects 0 (Array.length t.connects) 0;
  Array.fill t.disconnects 0 (Array.length t.disconnects) 0;
  Array.fill t.writes 0 (Array.length t.writes) 0

let pp fmt t =
  Format.fprintf fmt
    "power: %d connects (%d disconnects, %d writes), max per switch %d \
     connects / %d writes"
    (total_connects t) (total_disconnects t) (total_writes t)
    (max_connects_per_switch t) (max_writes_per_switch t)

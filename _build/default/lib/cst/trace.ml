type event =
  | Phase1_done of { levels : int }
  | Round_start of int
  | Reconfigured of { round : int; node : int; config : Switch_config.t }
  | Delivered of { round : int; src : int; dst : int }
  | Finished of { rounds : int }

type t = { mutable events : event list; mutable length : int }

let create () = { events = []; length = 0 }

let emit t e =
  match t with
  | None -> ()
  | Some t ->
      t.events <- e :: t.events;
      t.length <- t.length + 1

let events t = List.rev t.events
let length t = t.length

let pp_event fmt = function
  | Phase1_done { levels } ->
      Format.fprintf fmt "phase 1 complete (%d switch levels)" levels
  | Round_start r -> Format.fprintf fmt "round %d begins" r
  | Reconfigured { round; node; config } ->
      Format.fprintf fmt "round %d: switch %d set to %a" round node
        Switch_config.pp config
  | Delivered { round; src; dst } ->
      Format.fprintf fmt "round %d: PE %d -> PE %d" round src dst
  | Finished { rounds } -> Format.fprintf fmt "finished in %d rounds" rounds

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  List.iter (fun e -> Format.fprintf fmt "%a@," pp_event e) (events t);
  Format.pp_close_box fmt ()

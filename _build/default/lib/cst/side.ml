type t = L | R | P

let equal a b = a = b

let index = function L -> 0 | R -> 1 | P -> 2

let of_index = function
  | 0 -> L
  | 1 -> R
  | 2 -> P
  | i -> invalid_arg (Printf.sprintf "Side.of_index: %d" i)

let compare a b = Int.compare (index a) (index b)

let all = [ L; R; P ]

let to_string = function L -> "L" | R -> "R" | P -> "P"
let pp fmt s = Format.pp_print_string fmt (to_string s)

(** Event traces of a schedule run, for examples and debugging.

    Collects a linear log of rounds, switch reconfigurations and data
    deliveries.  Tracing is optional: schedulers accept an optional trace
    and emit into it when present. *)

type event =
  | Phase1_done of { levels : int }
  | Round_start of int
  | Reconfigured of { round : int; node : int; config : Switch_config.t }
  | Delivered of { round : int; src : int; dst : int }
  | Finished of { rounds : int }

type t

val create : unit -> t
val emit : t option -> event -> unit
(** No-op on [None]. *)

val events : t -> event list
(** In emission order. *)

val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

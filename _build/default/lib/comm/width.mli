(** Exact width (directed-link congestion) of a communication set.

    The CST embeds the PEs as leaves of a complete binary tree.  For every
    tree node [v] other than the root there is a full-duplex link between
    [v] and its parent; a communication uses the {e up} direction of that
    link when its source lies in the subtree of [v] and its destination
    does not, and the {e down} direction symmetrically.  The {e width} of a
    set is the maximum number of communications sharing one directed link
    (paper §1); the schedule of a width-[w] set needs at least [w] rounds.

    Nodes are heap-indexed: root is 1, node [v] has children [2v] and
    [2v+1], leaf [p] is node [leaves + p].  [leaves] must be a power of
    two at least [Comm_set.n set]. *)

type crossings = {
  leaves : int;  (** number of leaf slots (power of two) *)
  up : int array;  (** [up.(v)]: communications using link v->parent upward *)
  down : int array;  (** [down.(v)]: communications using parent->v downward *)
}

val crossings : leaves:int -> Comm_set.t -> crossings
(** Per-link congestion in O(M log leaves). *)

val width : leaves:int -> Comm_set.t -> int
(** Maximum entry of {!crossings}; 0 for the empty set. *)

val width_auto : Comm_set.t -> int
(** {!width} with [leaves] = smallest adequate power of two. *)

val check_against_naive : leaves:int -> Comm_set.t -> bool
(** Recomputes congestion by interval containment per node (O(M·leaves))
    and compares with {!crossings}; used by tests. *)

type klass =
  | Matched  (** source in left child subtree, destination in right *)
  | Source_up  (** source inside, destination outside: uses the up link *)
  | Dest_down  (** destination inside, source outside: uses the down link *)
  | Internal  (** both endpoints strictly inside one child subtree *)
  | External  (** does not touch this subtree *)

val classify : lo:int -> mid:int -> hi:int -> Comm.t -> klass
(** Classification of a right-oriented communication relative to a node
    covering leaves [\[lo, hi)] split at [mid] (paper Figure 4(a)).  The
    paper's five types are [Matched], sources passing up from either child,
    and destinations coming down to either child; [Internal]/[External]
    communications do not involve the node. *)

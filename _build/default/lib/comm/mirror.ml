let pe ~n p =
  if p < 0 || p >= n then invalid_arg "Mirror.pe: out of range";
  n - 1 - p

let comm ~n (c : Comm.t) = Comm.make ~src:(pe ~n c.src) ~dst:(pe ~n c.dst)

let set s =
  let n = Comm_set.n s in
  Comm_set.create_exn ~n
    (Array.to_list (Array.map (comm ~n) (Comm_set.comms s)))

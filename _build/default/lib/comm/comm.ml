type t = { src : int; dst : int }

let make ~src ~dst =
  if src < 0 || dst < 0 then invalid_arg "Comm.make: negative endpoint";
  if src = dst then invalid_arg "Comm.make: src = dst";
  { src; dst }

let compare a b =
  match Int.compare a.src b.src with 0 -> Int.compare a.dst b.dst | c -> c

let equal a b = a.src = b.src && a.dst = b.dst
let is_right_oriented c = c.src < c.dst
let is_left_oriented c = c.src > c.dst
let lo c = min c.src c.dst
let hi c = max c.src c.dst
let span c = hi c - lo c

let nests_in inner outer = lo outer < lo inner && hi inner < hi outer

let crosses a b =
  let a1 = lo a and a2 = hi a and b1 = lo b and b2 = hi b in
  (a1 < b1 && b1 < a2 && a2 < b2) || (b1 < a1 && a1 < b2 && b2 < a2)

let disjoint a b = hi a < lo b || hi b < lo a

let pp fmt c = Format.fprintf fmt "%d->%d" c.src c.dst
let to_string c = Format.asprintf "%a" pp c

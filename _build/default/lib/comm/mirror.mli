(** Left/right mirroring of communication sets.

    The paper treats right-oriented sets; a left-oriented set is handled by
    reflecting PE positions ([p -> n-1-p]), scheduling the reflected
    (now right-oriented) set, and reflecting the resulting schedule back
    (paper §2.1: "Dealing with right oriented sets can be adjusted easily
    to left oriented sets"). *)

val pe : n:int -> int -> int
(** [pe ~n p = n - 1 - p]. *)

val comm : n:int -> Comm.t -> Comm.t
(** Reflects both endpoints; flips orientation. *)

val set : Comm_set.t -> Comm_set.t
(** Reflects every communication; an involution. *)

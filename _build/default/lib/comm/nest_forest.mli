(** Nesting structure of a well-nested right-oriented set.

    Communications of a well-nested set form a forest under direct nesting:
    the parent of a communication is the innermost communication strictly
    enclosing it.  Depths start at 1 for outermost (root) communications.
    Note that nesting depth is {e not} the same as the set's width — width
    is link congestion (see {!Width}); depth only upper-bounds it. *)

type t

val build : Comm_set.t -> t
(** Requires a valid well-nested right-oriented set (checked; raises
    [Invalid_argument] otherwise). *)

val size : t -> int
(** Number of communications. *)

val parent : t -> int -> int option
(** Index of the directly-enclosing communication, if any. *)

val children : t -> int -> int list
(** Directly nested communications, left to right. *)

val roots : t -> int list
(** Outermost communications, left to right. *)

val depth : t -> int -> int
(** Nesting depth of communication [i] (roots have depth 1). *)

val max_depth : t -> int
(** 0 for an empty set. *)

val depths : t -> int array

val iter_dfs : t -> (int -> unit) -> unit
(** Pre-order traversal, roots left to right. *)

type token = Open | Close | Blank

let tokens set =
  if not (Comm_set.is_right_oriented set) then
    invalid_arg "Paren.tokens: set is not right-oriented";
  Array.map
    (function
      | Comm_set.Source _ -> Open
      | Comm_set.Dest _ -> Close
      | Comm_set.Idle -> Blank)
    (Comm_set.roles set)

let to_string set =
  tokens set
  |> Array.map (function Open -> "(" | Close -> ")" | Blank -> ".")
  |> Array.to_list |> String.concat ""

let token_of_char = function
  | '(' -> Ok Open
  | ')' -> Ok Close
  | '.' | '_' | ' ' -> Ok Blank
  | c -> Error (Printf.sprintf "Paren.of_string: bad character %C" c)

let match_pairs toks =
  let pairs = ref [] in
  let stack = ref [] in
  let err = ref None in
  Array.iteri
    (fun i tok ->
      if !err = None then
        match tok with
        | Open -> stack := i :: !stack
        | Close -> (
            match !stack with
            | [] -> err := Some (Printf.sprintf "unmatched ')' at PE %d" i)
            | s :: rest ->
                pairs := (s, i) :: !pairs;
                stack := rest)
        | Blank -> ())
    toks;
  match (!err, !stack) with
  | Some e, _ -> Error e
  | None, s :: _ -> Error (Printf.sprintf "unmatched '(' at PE %d" s)
  | None, [] -> Ok (List.sort compare !pairs)

let is_balanced toks = Result.is_ok (match_pairs toks)

let of_string s =
  let toks = ref [] in
  let err = ref None in
  String.iter
    (fun c ->
      if !err = None then
        match token_of_char c with
        | Ok t -> toks := t :: !toks
        | Error e -> err := Some e)
    s;
  match !err with
  | Some e -> Error e
  | None -> (
      let toks = Array.of_list (List.rev !toks) in
      if Array.length toks = 0 then Error "Paren.of_string: empty string"
      else
        match match_pairs toks with
        | Error e -> Error e
        | Ok pairs -> (
            let comms =
              List.map (fun (s, d) -> Comm.make ~src:s ~dst:d) pairs
            in
            match Comm_set.create ~n:(Array.length toks) comms with
            | Ok set -> Ok set
            | Error e -> Error (Format.asprintf "%a" Comm_set.pp_error e)))

let max_depth toks =
  let depth = ref 0 and best = ref 0 in
  Array.iter
    (fun tok ->
      match tok with
      | Open ->
          incr depth;
          if !depth > !best then best := !depth
      | Close -> decr depth
      | Blank -> ())
    toks;
  !best

let split set =
  let right = Comm_set.filter set Comm.is_right_oriented in
  let left = Comm_set.filter set Comm.is_left_oriented in
  (right, left)

let is_oriented set =
  Comm_set.is_right_oriented set || Comm_set.is_left_oriented set

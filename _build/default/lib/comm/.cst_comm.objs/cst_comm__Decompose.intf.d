lib/comm/decompose.mli: Comm_set

lib/comm/width.ml: Array Comm Comm_set Cst_util

lib/comm/comm.ml: Format Int

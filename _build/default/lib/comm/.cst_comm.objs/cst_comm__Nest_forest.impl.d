lib/comm/nest_forest.ml: Array Comm_set List

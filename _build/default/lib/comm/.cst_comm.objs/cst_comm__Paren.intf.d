lib/comm/paren.mli: Comm_set

lib/comm/wn_cover.ml: Array Comm Comm_set Int List

lib/comm/well_nested.ml: Array Comm Comm_set Format List Nest_forest Result

lib/comm/comm_set.ml: Array Buffer Comm Format List Printf String

lib/comm/comm_set.mli: Comm Format

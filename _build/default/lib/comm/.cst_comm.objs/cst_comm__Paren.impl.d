lib/comm/paren.ml: Array Comm Comm_set Format List Printf Result String

lib/comm/wn_cover.mli: Comm_set

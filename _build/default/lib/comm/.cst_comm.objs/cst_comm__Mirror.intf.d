lib/comm/mirror.mli: Comm Comm_set

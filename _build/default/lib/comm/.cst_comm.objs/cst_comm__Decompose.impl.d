lib/comm/decompose.ml: Comm Comm_set

lib/comm/comm.mli: Format

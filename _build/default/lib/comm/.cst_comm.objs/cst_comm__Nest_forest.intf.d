lib/comm/nest_forest.mli: Comm_set

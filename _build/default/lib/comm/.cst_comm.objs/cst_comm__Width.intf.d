lib/comm/width.mli: Comm Comm_set

lib/comm/well_nested.mli: Comm Comm_set Format Nest_forest

lib/comm/mirror.ml: Array Comm Comm_set

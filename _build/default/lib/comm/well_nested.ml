type violation =
  | Not_right_oriented of Comm.t
  | Crossing of Comm.t * Comm.t

let pp_violation fmt = function
  | Not_right_oriented c ->
      Format.fprintf fmt "communication %a is not right-oriented" Comm.pp c
  | Crossing (a, b) ->
      Format.fprintf fmt "communications %a and %a cross" Comm.pp a Comm.pp b

let check set =
  let comms = Comm_set.comms set in
  match Array.find_opt Comm.is_left_oriented comms with
  | Some c -> Error (Not_right_oriented c)
  | None -> (
      (* Scan PEs left to right with a stack of open communications: a
         destination must close the most recently opened communication. *)
      let stack = ref [] in
      let bad = ref None in
      Array.iter
        (fun role ->
          if !bad = None then
            match role with
            | Comm_set.Source i -> stack := i :: !stack
            | Comm_set.Dest i -> (
                match !stack with
                | top :: rest when top = i -> stack := rest
                | top :: _ -> bad := Some (Crossing (comms.(top), comms.(i)))
                | [] ->
                    (* Impossible for a valid right-oriented set: the source
                       of [i] lies strictly to the left and was pushed. *)
                    assert false)
            | Comm_set.Idle -> ())
        (Comm_set.roles set);
      match !bad with
      | Some v -> Error v
      | None -> Ok (Nest_forest.build set))

let is_well_nested set = Result.is_ok (check set)

let crossing_pairs set =
  let comms = Comm_set.comms set in
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b -> if i < j && Comm.crosses a b then acc := (a, b) :: !acc)
        comms)
    comms;
  List.rev !acc

(** Parenthesis view of right-oriented communication sets.

    A right-oriented set over [n] PEs corresponds to a length-[n] token
    string: PE [p] contributes ['('] if it is a source, [')'] if it is a
    destination and ['.'] if idle.  The set is well-nested exactly when the
    parenthesis string is balanced (paper §2.1, Figure 2). *)

type token = Open | Close | Blank

val tokens : Comm_set.t -> token array
(** Token per PE.  Requires a right-oriented set. *)

val to_string : Comm_set.t -> string
(** E.g. ["((.)).()"]. *)

val of_string : string -> (Comm_set.t, string) result
(** Builds a well-nested right-oriented set from a balanced string of
    ['('], [')'] and ['.'] (['_'] and [' '] also accepted as blanks).
    Fails on unbalanced strings. *)

val is_balanced : token array -> bool
(** Stack test: every close has a pending open, nothing left pending. *)

val match_pairs : token array -> ((int * int) list, string) result
(** Matching of opens to closes by the standard stack discipline; the pair
    list is the unique well-nested matching of the token string. *)

val max_depth : token array -> int
(** Maximum nesting depth of a balanced token string. *)

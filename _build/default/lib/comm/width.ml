type crossings = {
  leaves : int;
  up : int array;
  down : int array;
}

let check_leaves ~leaves set =
  if not (Cst_util.Bits.is_power_of_two leaves) then
    invalid_arg "Width: leaves must be a power of two";
  if Comm_set.n set > leaves then
    invalid_arg "Width: set has more PEs than leaves"

let crossings ~leaves set =
  check_leaves ~leaves set;
  let up = Array.make (2 * leaves) 0 in
  let down = Array.make (2 * leaves) 0 in
  Array.iter
    (fun (c : Comm.t) ->
      let a = ref (leaves + c.src) and b = ref (leaves + c.dst) in
      (* Walk both endpoints to their LCA, charging the up links on the
         source side and the down links on the destination side. *)
      while !a <> !b do
        if !a > !b then begin
          up.(!a) <- up.(!a) + 1;
          a := !a / 2
        end
        else begin
          down.(!b) <- down.(!b) + 1;
          b := !b / 2
        end
      done)
    (Comm_set.comms set);
  { leaves; up; down }

let width ~leaves set =
  let { up; down; _ } = crossings ~leaves set in
  let m = ref 0 in
  Array.iter (fun x -> if x > !m then m := x) up;
  Array.iter (fun x -> if x > !m then m := x) down;
  !m

let width_auto set =
  width ~leaves:(Cst_util.Bits.ceil_pow2 (max 2 (Comm_set.n set))) set

let check_against_naive ~leaves set =
  let fast = crossings ~leaves set in
  let ok = ref true in
  (* Node v covers the leaf interval [lo, hi). *)
  let rec interval v =
    if v >= leaves then (v - leaves, v - leaves + 1)
    else
      let lo, _ = interval (2 * v) and _, hi = interval ((2 * v) + 1) in
      (lo, hi)
  in
  for v = 2 to (2 * leaves) - 1 do
    let lo, hi = interval v in
    let inside p = p >= lo && p < hi in
    let u = ref 0 and d = ref 0 in
    Array.iter
      (fun (c : Comm.t) ->
        if inside c.src && not (inside c.dst) then incr u;
        if inside c.dst && not (inside c.src) then incr d)
      (Comm_set.comms set);
    if !u <> fast.up.(v) || !d <> fast.down.(v) then ok := false
  done;
  !ok

type klass =
  | Matched
  | Source_up
  | Dest_down
  | Internal
  | External

let classify ~lo ~mid ~hi (c : Comm.t) =
  if not (Comm.is_right_oriented c) then
    invalid_arg "Width.classify: communication must be right-oriented";
  let inside p = p >= lo && p < hi in
  match (inside c.src, inside c.dst) with
  | false, false -> External
  | true, false -> Source_up
  | false, true -> Dest_down
  | true, true ->
      if c.src < mid && c.dst >= mid then Matched else Internal

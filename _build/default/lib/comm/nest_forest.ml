type t = {
  size : int;
  parent : int option array;
  children : int list array;
  depth : int array;
  roots : int list;
}

let build set =
  let m = Comm_set.size set in
  let parent = Array.make m None in
  let children = Array.make m [] in
  let depth = Array.make m 0 in
  let roots = ref [] in
  let stack = ref [] in
  Array.iter
    (fun role ->
      match role with
      | Comm_set.Source i -> (
          (match !stack with
          | [] ->
              roots := i :: !roots;
              depth.(i) <- 1
          | p :: _ ->
              parent.(i) <- Some p;
              children.(p) <- i :: children.(p);
              depth.(i) <- depth.(p) + 1);
          stack := i :: !stack)
      | Comm_set.Dest i -> (
          match !stack with
          | top :: rest when top = i -> stack := rest
          | _ ->
              invalid_arg
                "Nest_forest.build: set is not well-nested right-oriented")
      | Comm_set.Idle -> ())
    (Comm_set.roles set);
  if !stack <> [] then
    invalid_arg "Nest_forest.build: set is not well-nested right-oriented";
  {
    size = m;
    parent;
    children = Array.map List.rev children;
    depth;
    roots = List.rev !roots;
  }

let size t = t.size
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let roots t = t.roots
let depth t i = t.depth.(i)
let depths t = Array.copy t.depth
let max_depth t = Array.fold_left max 0 t.depth

let iter_dfs t f =
  let rec go i =
    f i;
    List.iter go t.children.(i)
  in
  List.iter go t.roots

(** Orientation decomposition.

    "Any set can be decomposed into two sets each of them is oriented"
    (paper §2.1).  A mixed-orientation set splits into its right-oriented
    members and its left-oriented members; each part is scheduled
    separately (the left part after mirroring). *)

val split : Comm_set.t -> Comm_set.t * Comm_set.t
(** [(right, left)] partition.  Both parts share the original [n]. *)

val is_oriented : Comm_set.t -> bool
(** All members share one orientation (or the set is empty). *)

(** Well-nestedness check with certificates.

    A right-oriented communication set is {e well-nested} when its sources
    and destinations form a balanced parenthesis expression (paper §2.1) —
    equivalently, when no two communications cross.  [check] produces either
    the nesting forest (a positive certificate) or a concrete violation
    witness usable in error messages and failure-injection tests. *)

type violation =
  | Not_right_oriented of Comm.t
      (** A member has [dst < src]; mirror or decompose the set first. *)
  | Crossing of Comm.t * Comm.t
      (** Two members interleave as [s1 < s2 < d1 < d2]. *)

val check : Comm_set.t -> (Nest_forest.t, violation) result

val is_well_nested : Comm_set.t -> bool

val crossing_pairs : Comm_set.t -> (Comm.t * Comm.t) list
(** All crossing pairs of a right-oriented set (O(M²); for diagnostics). *)

val pp_violation : Format.formatter -> violation -> unit

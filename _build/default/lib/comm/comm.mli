(** A single point-to-point communication between two PEs of a CST.

    PEs are numbered [0 .. n-1] left to right along the leaves of the tree.
    A communication carries one word from [src] to [dst].  The paper's
    algorithm handles {e right-oriented} communications ([src < dst]); left
    oriented ones are handled by mirroring (see {!Mirror}). *)

type t = { src : int; dst : int }

val make : src:int -> dst:int -> t
(** Requires [src <> dst] and both non-negative. *)

val compare : t -> t -> int
(** Total order: by [src], then [dst]. *)

val equal : t -> t -> bool

val is_right_oriented : t -> bool
(** [src < dst]. *)

val is_left_oriented : t -> bool
(** [src > dst]. *)

val lo : t -> int
(** Smaller endpoint. *)

val hi : t -> int
(** Larger endpoint. *)

val span : t -> int
(** [hi - lo]. *)

val nests_in : t -> t -> bool
(** [nests_in inner outer]: the closed interval of [inner] lies strictly
    inside the open interval of [outer].  Endpoint-disjointness is assumed. *)

val crosses : t -> t -> bool
(** Two communications {e cross} when their intervals overlap without
    nesting ([s1 < s2 < d1 < d2] up to symmetry).  A right-oriented set is
    well-nested iff no two of its members cross. *)

val disjoint : t -> t -> bool
(** Intervals do not intersect at all. *)

val pp : Format.formatter -> t -> unit
(** Prints ["src->dst"]. *)

val to_string : t -> string

type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let add_int_row t row = add_row t (List.map string_of_int row)
let row_count t = List.length t.rows

let cell_float x =
  if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      t.columns
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row cells =
    let padded = List.map2 pad widths cells in
    let s = String.concat "  " padded in
    (* trim trailing blanks *)
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    String.sub s 0 !len
  in
  let header = render_row t.columns in
  let rule = String.make (String.length header) '-' in
  let b = Buffer.create 256 in
  Buffer.add_string b ("== " ^ t.title ^ " ==\n");
  Buffer.add_string b (header ^ "\n");
  Buffer.add_string b (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string b (render_row r ^ "\n")) rows;
  Buffer.contents b

let print t = print_string (render t)

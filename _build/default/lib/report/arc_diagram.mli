(** ASCII arc diagrams of communication sets and schedules.

    Renders the paper's Figure 2 view: PEs on a horizontal axis, each
    communication as a span from its source to its destination.
    Right-oriented spans end in ['>'], left-oriented ones start with
    ['<']; overlapping spans are stacked on separate rows (nested spans
    naturally stack by depth).  Intended for examples, debugging and the
    CLI, for sets of up to a few hundred PEs. *)

val render_set : Cst_comm.Comm_set.t -> string
(** The whole set over an index axis. *)

val render_rounds : (int * (int * int) list) list -> n:int -> string
(** One block per round: [(round_index, deliveries)]. *)

val axis : n:int -> string
(** The two-line index axis used under the diagrams (tens and units). *)

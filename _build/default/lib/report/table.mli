(** Plain-text tables for the benchmark harness. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_int_row : t -> int list -> unit
val row_count : t -> int

val render : t -> string
(** Fixed-width ASCII rendering with a title line, a header and a rule. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : float -> string
(** Compact float formatting ("12.3", "0.004"). *)

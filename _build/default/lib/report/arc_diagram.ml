let axis ~n =
  let tens = Bytes.make n ' ' and units = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set units i (Char.chr (Char.code '0' + (i mod 10)));
    if i mod 10 = 0 then
      Bytes.set tens i (Char.chr (Char.code '0' + (i / 10 mod 10)))
  done;
  Bytes.to_string tens ^ "\n" ^ Bytes.to_string units ^ "\n"

(* Greedy row packing: widest spans first, each on the first row where
   its inclusive column range is free. *)
let pack spans =
  let spans =
    List.sort
      (fun (l1, h1, _) (l2, h2, _) ->
        match Int.compare (h2 - l2) (h1 - l1) with
        | 0 -> Int.compare l1 l2
        | c -> c)
      spans
  in
  let rows = ref [] in
  (* each row: (occupied intervals, spans) *)
  List.iter
    (fun (lo, hi, tag) ->
      let fits intervals =
        List.for_all (fun (l, h) -> hi < l || h < lo) intervals
      in
      let rec place = function
        | [] -> [ ([ (lo, hi) ], [ (lo, hi, tag) ]) ]
        | (intervals, members) :: rest ->
            if fits intervals then
              ((lo, hi) :: intervals, (lo, hi, tag) :: members) :: rest
            else (intervals, members) :: place rest
      in
      rows := place !rows)
    spans;
  List.map snd !rows

let draw_row ~n members =
  let b = Bytes.make n ' ' in
  List.iter
    (fun (lo, hi, right) ->
      for i = lo + 1 to hi - 1 do
        Bytes.set b i '-'
      done;
      if right then begin
        Bytes.set b lo '+';
        Bytes.set b hi '>'
      end
      else begin
        Bytes.set b lo '<';
        Bytes.set b hi '+'
      end)
    members;
  Bytes.to_string b

let spans_of_comms comms =
  List.map
    (fun (c : Cst_comm.Comm.t) ->
      (Cst_comm.Comm.lo c, Cst_comm.Comm.hi c, Cst_comm.Comm.is_right_oriented c))
    comms

let render_spans ~n spans =
  let rows = pack spans in
  let body = List.map (draw_row ~n) rows in
  String.concat "\n" body ^ (if body = [] then "" else "\n") ^ axis ~n

let render_set set =
  render_spans
    ~n:(Cst_comm.Comm_set.n set)
    (spans_of_comms (Array.to_list (Cst_comm.Comm_set.comms set)))

let render_rounds rounds ~n =
  let b = Buffer.create 512 in
  List.iter
    (fun (index, deliveries) ->
      Buffer.add_string b (Printf.sprintf "round %d:\n" index);
      let spans =
        List.map (fun (s, d) -> (min s d, max s d, s < d)) deliveries
      in
      Buffer.add_string b (render_spans ~n spans))
    rounds;
  Buffer.contents b

lib/report/table.mli:

lib/report/csv.mli:

lib/report/schedule_stats.ml: Array Cst Cst_comm Hashtbl Int List Option Padr Table

lib/report/schedule_stats.mli: Cst Padr Table

lib/report/arc_diagram.ml: Array Buffer Bytes Char Cst_comm Int List Printf String

lib/report/csv.ml: Fun List String

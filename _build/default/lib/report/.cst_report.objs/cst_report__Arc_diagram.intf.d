lib/report/arc_diagram.mli: Cst_comm

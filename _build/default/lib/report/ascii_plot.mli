(** Minimal ASCII line charts — the "figures" of the benchmark harness. *)

type series = { label : string; points : (float * float) list }

val render :
  title:string ->
  x_label:string ->
  y_label:string ->
  ?height:int ->
  ?width:int ->
  series list ->
  string
(** Plots every series on a shared scale, one glyph per series
    ([*], [o], [+], [x], ...), with a legend and axis ranges.  Intended
    for monotone sweeps such as "config changes vs width". *)

val print :
  title:string ->
  x_label:string ->
  y_label:string ->
  ?height:int ->
  ?width:int ->
  series list ->
  unit

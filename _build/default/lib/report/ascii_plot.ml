type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ~title ~x_label ~y_label ?(height = 16) ?(width = 60) series =
  let all = List.concat_map (fun s -> s.points) series in
  if all = [] then "(empty plot: " ^ title ^ ")\n"
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = min 0.0 (fmin ys) and y1 = fmax ys in
    let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
    let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float
                ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
            in
            let cy =
              int_of_float
                ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
            in
            let cy = height - 1 - cy in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(cy).(cx) <- glyph)
          s.points)
      series;
    let b = Buffer.create 1024 in
    Buffer.add_string b (Printf.sprintf "-- %s --\n" title);
    Buffer.add_string b
      (Printf.sprintf "%s: %.6g .. %.6g\n" y_label y0 y1);
    Array.iter
      (fun row ->
        Buffer.add_char b '|';
        Array.iter (Buffer.add_char b) row;
        Buffer.add_char b '\n')
      grid;
    Buffer.add_char b '+';
    Buffer.add_string b (String.make width '-');
    Buffer.add_char b '\n';
    Buffer.add_string b
      (Printf.sprintf "%s: %.6g .. %.6g\n" x_label x0 x1);
    List.iteri
      (fun si s ->
        Buffer.add_string b
          (Printf.sprintf "  %c = %s\n"
             glyphs.(si mod Array.length glyphs)
             s.label))
      series;
    Buffer.contents b
  end

let print ~title ~x_label ~y_label ?height ?width series =
  print_string (render ~title ~x_label ~y_label ?height ?width series)

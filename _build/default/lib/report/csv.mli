(** Minimal CSV writing for exporting experiment data. *)

val to_string : header:string list -> string list list -> string
(** Comma-separated with minimal quoting (fields containing commas,
    quotes or newlines are double-quoted). *)

val write_file : path:string -> header:string list -> string list list -> unit

(** Matrix-vector multiplication on the SRGA grid.

    [y = A x] with [A] an [rows x cols] integer matrix stored one element
    per PE.  Three parallel stages, all on the grid's CSTs:

    {ol
    {- column broadcast: [x.(c)], initially at the top PE of column [c],
       is disseminated down every column by doubling (log rows stages of
       width-1 sets, all columns in parallel);}
    {- local multiply at every PE;}
    {- row reduction: each row up-sweeps its products (log cols stages),
       leaving [y.(r)] at the last PE of row [r].}}

    All communication goes through the PADR scheduler; the returned stats
    aggregate rounds (parallel trees count once) and power (all trees). *)

type stats = {
  rounds : int;  (** critical-path rounds: max over parallel trees, summed
                     over stages *)
  power_units : int;  (** total connects over every tree *)
  max_connects_per_switch : int;
}

val run : Grid.t -> a:int array array -> x:int array -> int array * stats
(** [a] must be [rows] arrays of length [cols]; [x] length [cols]. *)

val reference : a:int array array -> x:int array -> int array
(** Sequential specification. *)

type plan = Cst_comm.Comm_set.t list

let plan ~n ~origin =
  if n < 2 || not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Broadcast.plan: n must be a power of two >= 2";
  if origin < 0 || origin >= n then invalid_arg "Broadcast.plan: origin";
  (* Recursive doubling on the PE line relative to the origin: holders
     after stage k are the PEs congruent to origin modulo n / 2^k... we
     instead build it top-down over halving intervals, which keeps each
     stage's communications in disjoint intervals (width 1). *)
  let stages = ref [] in
  let holders = ref [ origin ] in
  let step = ref n in
  while !step > 1 do
    let half = !step / 2 in
    let comms =
      List.map
        (fun h ->
          let block = h / !step * !step in
          let target =
            if h - block < half then block + half + (h - block)
            else block + (h - block - half)
          in
          Cst_comm.Comm.make ~src:h ~dst:target)
        !holders
    in
    stages := Cst_comm.Comm_set.create_exn ~n comms :: !stages;
    holders :=
      List.sort compare
        (!holders @ List.map (fun (c : Cst_comm.Comm.t) -> c.dst) comms);
    step := half
  done;
  List.rev !stages

type result = {
  stages : int;
  rounds : int;
  power_units : int;
  covered : int list;
}

let run ~n ~origin =
  let stages = plan ~n ~origin in
  let covered = ref [ origin ] in
  let rounds = ref 0 and power = ref 0 in
  List.iter
    (fun set ->
      match Padr.schedule_mixed set with
      | Error e ->
          invalid_arg (Format.asprintf "Broadcast.run: %a" Padr.pp_error e)
      | Ok mixed ->
          rounds := !rounds + mixed.rounds;
          power := !power + mixed.power_units;
          List.iter
            (fun (src, dst) ->
              if not (List.mem src !covered) then
                invalid_arg "Broadcast.run: stage sends from a non-holder";
              covered := dst :: !covered)
            (Padr.mixed_deliveries mixed))
    stages;
  {
    stages = List.length stages;
    rounds = !rounds;
    power_units = !power;
    covered = List.sort compare !covered;
  }

type t = { rows : int; cols : int }

type axis = Row | Col

let create ~rows ~cols =
  if
    rows < 2 || cols < 2
    || (not (Cst_util.Bits.is_power_of_two rows))
    || not (Cst_util.Bits.is_power_of_two cols)
  then invalid_arg "Grid.create: dimensions must be powers of two >= 2";
  { rows; cols }

let rows t = t.rows
let cols t = t.cols
let pe_count t = t.rows * t.cols
let tree_count t = t.rows + t.cols

let switch_count t =
  (t.rows * (t.cols - 1)) + (t.cols * (t.rows - 1))

let row_topology t = Cst.Topology.create ~leaves:t.cols
let col_topology t = Cst.Topology.create ~leaves:t.rows

let index t ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
    invalid_arg "Grid.index";
  (row * t.cols) + col

let coords t id =
  if id < 0 || id >= pe_count t then invalid_arg "Grid.coords";
  (id / t.cols, id mod t.cols)

let pp fmt t =
  Format.fprintf fmt "SRGA %dx%d (%d PEs, %d CSTs, %d switches)" t.rows
    t.cols (pe_count t) (tree_count t) (switch_count t)

type stats = {
  rounds : int;
  power_units : int;
  max_connects_per_switch : int;
}

let reference ~a ~x =
  Array.map
    (fun row ->
      let acc = ref 0 in
      Array.iteri (fun c v -> acc := !acc + (v * x.(c))) row;
      !acc)
    a

(* Runs the same stage set on every tree of one axis; returns deliveries
   per tree and accumulates stats.  [sets] pairs a tree index with the
   stage's communication set. *)
let parallel_stage grid ~axis ~sets stats =
  match Row_sched.schedule grid ~axis ~sets with
  | Error (i, e) ->
      invalid_arg (Format.asprintf "Matvec: tree %d: %a" i Padr.pp_error e)
  | Ok agg ->
      stats :=
        {
          rounds = !stats.rounds + agg.rounds;
          power_units = !stats.power_units + agg.power_units;
          max_connects_per_switch =
            max !stats.max_connects_per_switch agg.max_connects_per_switch;
        };
      List.map
        (fun (idx, s) -> (idx, Padr.Schedule.all_deliveries s))
        agg.schedules

let run grid ~a ~x =
  let rows = Grid.rows grid and cols = Grid.cols grid in
  if Array.length a <> rows || Array.exists (fun r -> Array.length r <> cols) a
  then invalid_arg "Matvec.run: matrix shape";
  if Array.length x <> cols then invalid_arg "Matvec.run: vector length";
  let stats =
    ref { rounds = 0; power_units = 0; max_connects_per_switch = 0 }
  in
  (* xs.(r).(c): the value of x.(c) known at PE (r, c); initially only
     row 0 holds it. *)
  let xs = Array.make_matrix rows cols 0 in
  Array.iteri (fun c v -> xs.(0).(c) <- v) x;
  (* Stage 1: doubling broadcast down every column, stage by stage so all
     columns advance in lockstep. *)
  let holders = Array.make cols [ 0 ] in
  let step = ref rows in
  while !step > 1 do
    let half = !step / 2 in
    let sets =
      List.init cols (fun c ->
          let comms =
            List.map
              (fun h ->
                let block = h / !step * !step in
                let target =
                  if h - block < half then block + half + (h - block)
                  else block + (h - block - half)
                in
                Cst_comm.Comm.make ~src:h ~dst:target)
              holders.(c)
          in
          (c, Cst_comm.Comm_set.create_exn ~n:rows comms))
    in
    (* Mixed orientations: split each set and run both parts. *)
    let right_sets =
      List.map (fun (c, s) -> (c, fst (Cst_comm.Decompose.split s))) sets
    in
    let left_sets =
      List.map
        (fun (c, s) ->
          (c, Cst_comm.Mirror.set (snd (Cst_comm.Decompose.split s))))
        sets
    in
    let apply mirrored per_tree =
      List.iter
        (fun (c, deliveries) ->
          List.iter
            (fun (src, dst) ->
              let src, dst =
                if mirrored then
                  ( Cst_comm.Mirror.pe ~n:rows src,
                    Cst_comm.Mirror.pe ~n:rows dst )
                else (src, dst)
              in
              xs.(dst).(c) <- xs.(src).(c);
              holders.(c) <- dst :: holders.(c))
            deliveries)
        per_tree
    in
    apply false (parallel_stage grid ~axis:Grid.Col ~sets:right_sets stats);
    apply true (parallel_stage grid ~axis:Grid.Col ~sets:left_sets stats);
    step := half
  done;
  (* Stage 2: local multiply. *)
  let prod = Array.init rows (fun r -> Array.init cols (fun c -> a.(r).(c) * xs.(r).(c))) in
  (* Stage 3: up-sweep reduction along every row. *)
  let levels = Cst_util.Bits.ilog2 cols in
  for d = 0 to levels - 1 do
    let size = 1 lsl (d + 1) in
    let sets =
      List.init rows (fun r ->
          let comms =
            List.init (cols / size) (fun b ->
                let lo = b * size in
                Cst_comm.Comm.make
                  ~src:(lo + (size / 2) - 1)
                  ~dst:(lo + size - 1))
          in
          (r, Cst_comm.Comm_set.create_exn ~n:cols comms))
    in
    List.iter
      (fun (r, deliveries) ->
        List.iter
          (fun (src, dst) -> prod.(r).(dst) <- prod.(r).(dst) + prod.(r).(src))
          deliveries)
      (parallel_stage grid ~axis:Grid.Row ~sets stats)
  done;
  (Array.init rows (fun r -> prod.(r).(cols - 1)), !stats)

(** Self-configuration dissemination over one CST.

    The SRGA's defining ability is {e self}-reconfiguration: configuration
    words are distributed to the PEs over the same circuit-switched trees
    the data uses.  Because a CST switch connects inputs to outputs
    one-to-one, a broadcast is realized as [ceil(log2 n)] point-to-point
    doubling stages: after stage [k], [2^k] PEs hold the word, and each
    holder forwards it across a disjoint interval in stage [k+1].  Every
    stage is a width-1 well-nested set (possibly mixed-orientation when
    the origin is not PE 0), scheduled by the PADR scheduler. *)

type plan = Cst_comm.Comm_set.t list
(** The communication set of each stage, in order. *)

val plan : n:int -> origin:int -> plan
(** Doubling dissemination from [origin] to all [n] PEs. *)

type result = {
  stages : int;
  rounds : int;  (** total CST rounds over all stages *)
  power_units : int;
  covered : int list;  (** PEs holding the word at the end, sorted *)
}

val run : n:int -> origin:int -> result
(** Plans, schedules every stage with {!Padr.schedule_mixed} and replays
    deliveries to track coverage.  Raises on internal failure only. *)

lib/srga/matvec.ml: Array Cst_comm Cst_util Format Grid List Padr Row_sched

lib/srga/broadcast.mli: Cst_comm

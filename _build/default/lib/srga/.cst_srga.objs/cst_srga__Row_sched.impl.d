lib/srga/row_sched.ml: Cst_comm Grid List Padr Printf

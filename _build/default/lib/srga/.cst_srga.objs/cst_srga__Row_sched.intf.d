lib/srga/row_sched.mli: Cst_comm Grid Padr

lib/srga/broadcast.ml: Cst_comm Cst_util Format List Padr

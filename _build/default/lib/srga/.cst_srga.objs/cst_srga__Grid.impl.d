lib/srga/grid.ml: Cst Cst_util Format

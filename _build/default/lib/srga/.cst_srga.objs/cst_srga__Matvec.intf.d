lib/srga/matvec.mli: Grid

lib/srga/grid.mli: Cst Format

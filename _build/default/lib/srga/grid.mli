(** The Self-Reconfigurable Gate Array (SRGA) substrate.

    Sidhu et al.'s SRGA (FPL 2000) is a grid of PEs in which every row and
    every column is interconnected by its own CST — the architecture whose
    interconnect the paper studies.  This module models the grid structure
    and addresses; {!Row_sched} schedules communication on it. *)

type t

type axis = Row | Col

val create : rows:int -> cols:int -> t
(** Both dimensions must be powers of two, at least 2. *)

val rows : t -> int
val cols : t -> int

val pe_count : t -> int

val tree_count : t -> int
(** One CST per row plus one per column. *)

val switch_count : t -> int
(** Total 3-sided switches over all row and column CSTs. *)

val row_topology : t -> Cst.Topology.t
(** Topology shared by every row CST ([cols] leaves). *)

val col_topology : t -> Cst.Topology.t

val index : t -> row:int -> col:int -> int
(** Linear PE id, row-major. *)

val coords : t -> int -> int * int
val pp : Format.formatter -> t -> unit

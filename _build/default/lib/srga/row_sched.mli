(** Scheduling communication over the SRGA's row and column CSTs.

    Rows (or columns) carry independent CSTs, so their schedules execute
    in parallel: the step finishes when the slowest tree finishes, while
    power adds up across trees.  Each per-tree set must be right-oriented
    well-nested (mixed sets can be pre-split with {!Cst_comm.Decompose}). *)

type aggregate = {
  rounds : int;  (** max rounds over the trees (they run in parallel) *)
  power_units : int;  (** total connects over all trees *)
  max_connects_per_switch : int;  (** max over every switch of every tree *)
  schedules : (int * Padr.Schedule.t) list;
      (** per-tree index (row or column number) and its schedule *)
}

val schedule :
  Grid.t ->
  axis:Grid.axis ->
  sets:(int * Cst_comm.Comm_set.t) list ->
  (aggregate, int * Padr.error) result
(** [sets] pairs a row (or column) index with its communication set; the
    error case reports the offending tree index. *)

val shift_phase : Grid.t -> by:int -> phase:int -> Cst_comm.Comm_set.t
(** Phase [phase] ([0 <= phase < by]) of a horizontal shift by [by]: the
    width-1 well-nested set [(2*by*b + phase, 2*by*b + phase + by)] over
    the columns.  A full strided shift is the sequence of its [by]
    phases — arbitrary patterns are decomposed into well-nested slices
    exactly as the paper's framework assumes. *)

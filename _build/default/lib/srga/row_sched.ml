type aggregate = {
  rounds : int;
  power_units : int;
  max_connects_per_switch : int;
  schedules : (int * Padr.Schedule.t) list;
}

let schedule grid ~axis ~sets =
  let topo, limit =
    match (axis : Grid.axis) with
    | Grid.Row -> (Grid.row_topology grid, Grid.rows grid)
    | Grid.Col -> (Grid.col_topology grid, Grid.cols grid)
  in
  let rec go acc = function
    | [] ->
        let schedules = List.rev acc in
        Ok
          {
            rounds =
              List.fold_left
                (fun m (_, s) -> max m (Padr.Schedule.num_rounds s))
                0 schedules;
            power_units =
              List.fold_left
                (fun sum (_, (s : Padr.Schedule.t)) ->
                  sum + s.power.total_connects)
                0 schedules;
            max_connects_per_switch =
              List.fold_left
                (fun m (_, (s : Padr.Schedule.t)) ->
                  max m s.power.max_connects_per_switch)
                0 schedules;
            schedules;
          }
    | (idx, set) :: rest -> (
        if idx < 0 || idx >= limit then
          invalid_arg (Printf.sprintf "Row_sched.schedule: tree %d" idx)
        else
          match Padr.Csa.run topo set with
          | Ok s -> go ((idx, s) :: acc) rest
          | Error e -> Error (idx, e))
  in
  go [] sets

let shift_phase grid ~by ~phase =
  let n = Grid.cols grid in
  if by < 1 || by > n / 2 then invalid_arg "Row_sched.shift_phase: by";
  if phase < 0 || phase >= by then invalid_arg "Row_sched.shift_phase: phase";
  let stride = 2 * by in
  let rec collect b acc =
    let src = (stride * b) + phase in
    if src + by >= n then List.rev acc
    else collect (b + 1) (Cst_comm.Comm.make ~src ~dst:(src + by) :: acc)
  in
  Cst_comm.Comm_set.create_exn ~n (collect 0 [])

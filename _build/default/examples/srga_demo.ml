(* SRGA grid demo: per-row scheduling and self-configuration broadcast.

   An 8x32 SRGA carries independent well-nested traffic on every row CST
   (the rows run in parallel, so the step's latency is the slowest row),
   then performs a strided shift in phases, and finally disseminates a
   configuration word from an arbitrary PE using log2(n) point-to-point
   stages — the self-reconfiguration mechanism of Sidhu et al.'s SRGA.

   Run with:  dune exec examples/srga_demo.exe *)

open Cst_srga

let () =
  let grid = Grid.create ~rows:8 ~cols:32 in
  Format.printf "%a@.@." Grid.pp grid;

  (* Independent random traffic per row. *)
  let rng = Cst_util.Prng.create 99 in
  let sets =
    List.init (Grid.rows grid) (fun r ->
        (r, Cst_workloads.Gen_wn.uniform rng ~n:(Grid.cols grid) ~density:0.6))
  in
  (match Row_sched.schedule grid ~axis:Grid.Row ~sets with
  | Error (i, e) -> Format.printf "row %d failed: %a@." i Padr.pp_error e
  | Ok agg ->
      Format.printf "--- parallel row traffic ---@.";
      List.iter
        (fun (r, (s : Padr.Schedule.t)) ->
          Format.printf "row %d: %2d comms, width %d, %d rounds, %d power units@."
            r
            (Cst_comm.Comm_set.size s.set)
            s.width
            (Padr.Schedule.num_rounds s)
            s.power.total_connects)
        agg.schedules;
      Format.printf
        "step finishes in %d rounds (slowest row); %d power units total; \
         max %d connects at any switch@.@."
        agg.rounds agg.power_units agg.max_connects_per_switch);

  (* A strided shift decomposed into well-nested phases. *)
  Format.printf "--- shift by 8, per phase ---@.";
  for phase = 0 to 7 do
    let set = Row_sched.shift_phase grid ~by:8 ~phase in
    let sched = Padr.schedule_exn set in
    Format.printf "phase %d: %d pairs in %d round(s)@." phase
      (Cst_comm.Comm_set.size set)
      (Padr.Schedule.num_rounds sched)
  done;

  (* Self-configuration: broadcast a configuration word from PE 19. *)
  Format.printf "@.--- self-configuration broadcast from PE 19 ---@.";
  let r = Broadcast.run ~n:(Grid.cols grid) ~origin:19 in
  Format.printf
    "%d doubling stages, %d CST rounds, %d power units, %d/%d PEs reached@."
    r.stages r.rounds r.power_units
    (List.length r.covered)
    (Grid.cols grid);

  (* A full application: y = A x with column broadcasts and row
     reductions, every word moved by the PADR scheduler. *)
  Format.printf "@.--- matrix-vector multiply on the grid ---@.";
  let rng = Cst_util.Prng.create 7 in
  let a =
    Array.init (Grid.rows grid) (fun _ ->
        Array.init (Grid.cols grid) (fun _ -> Cst_util.Prng.int_in rng (-5) 5))
  in
  let x = Array.init (Grid.cols grid) (fun _ -> Cst_util.Prng.int_in rng (-5) 5) in
  let y, stats = Matvec.run grid ~a ~x in
  Format.printf "y = A x computed in %d critical-path rounds, %d power units@."
    stats.rounds stats.power_units;
  Format.printf "matches the sequential reference: %b@."
    (y = Matvec.reference ~a ~x)

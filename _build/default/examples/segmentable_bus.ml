(* The segmentable bus on a CST.

   The paper's introduction motivates well-nested sets as a superset of
   the communications a segmentable bus needs.  This example drives a
   16-PE segmentable bus through three steps (reconfiguring its segment
   switches between steps), compiles every step to a CST communication
   set, schedules it with the PADR scheduler, and checks that the CST
   deliveries reproduce the direct bus semantics.

   Run with:  dune exec examples/segmentable_bus.exe *)

open Cst_workloads

let step bus ~label writes =
  Format.printf "--- %s ---@." label;
  Format.printf "segments:" ;
  List.iter (fun (lo, hi) -> Format.printf " [%d..%d]" lo hi) (Segbus.segments bus);
  Format.printf "@.";
  match (Segbus.run_bus bus writes, Segbus.run_on_cst bus writes) with
  | Error e, _ | _, Error e ->
      Format.printf "rejected: %a@.@." Segbus.pp_error e
  | Ok bus_deliveries, Ok mixed ->
      let cst_deliveries = Padr.mixed_deliveries mixed in
      List.iter
        (fun (w, r) -> Format.printf "  bus: PE %d drives its segment, PE %d latches@." w r)
        bus_deliveries;
      Format.printf "  CST schedule: %d round(s), %d power unit(s)@."
        mixed.rounds mixed.power_units;
      Format.printf "  CST reproduces the bus: %b@.@."
        (cst_deliveries = bus_deliveries)

let () =
  let bus = Segbus.create ~n:16 in

  (* Step 1: one global segment, a single long-haul write. *)
  step bus ~label:"step 1: unsegmented broadcast write"
    [ { Segbus.writer = 2; reader = 13 } ];

  (* Step 2: cut into four segments, one write per segment, both
     directions — decomposed into two oriented well-nested sets. *)
  Segbus.cut bus 3;
  Segbus.cut bus 7;
  Segbus.cut bus 11;
  step bus ~label:"step 2: four segments, mixed directions"
    [
      { Segbus.writer = 0; reader = 3 };
      { Segbus.writer = 6; reader = 4 };
      { Segbus.writer = 8; reader = 11 };
      { Segbus.writer = 15; reader = 12 };
    ];

  (* Step 3: rejoin the middle, demonstrating a contention rejection. *)
  Segbus.join bus 7;
  step bus ~label:"step 3: two writers in one segment (rejected)"
    [
      { Segbus.writer = 4; reader = 7 };
      { Segbus.writer = 8; reader = 11 };
    ];
  step bus ~label:"step 3 fixed: one writer in the merged segment"
    [ { Segbus.writer = 4; reader = 11 } ]

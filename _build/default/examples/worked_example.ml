(* The paper's Figure 3(b) and Definitions 1-2, worked in code.

   A subtree T(u) holds sources s7 < s6 < s4 < s3 and destinations
   d4 < d3; communications c3 and c4 are matched at u while the outer two
   leave the subtree.  The example prints the Phase 1 registers at u,
   identifies the outermost matched communication O_c(u) and its
   Definition 2 indices, then runs the schedule and shows that u's switch
   serves its traffic with O(1) configuration changes.

   Run with:  dune exec examples/worked_example.exe *)

let () =
  let set = Cst_workloads.Patterns.fig3b () in
  Format.printf "set: %a@." Cst_comm.Comm_set.pp set;
  Format.printf "     %s@.@." (Cst_comm.Paren.to_string set);

  let topo = Cst.Topology.create ~leaves:16 in
  let u = 2 in
  (* node covering PEs 0..7, the paper's switch u *)
  let lo, hi = Cst.Topology.interval topo u in
  Format.printf "switch u = node %d covering PEs [%d..%d)@." u lo hi;

  (* Phase 1: the registers the paper's Step 1.3 stores at u. *)
  let p1 = Padr.Phase1.run topo set in
  let st = Padr.Phase1.state p1 u in
  Format.printf "C_S(u) after Phase 1: %a@." Padr.Csa_state.pp st;
  Format.printf
    "  %d matched pairs; %d sources pass above u; %d destinations come down@.@."
    st.m (st.sl + st.sr) (st.dl + st.dr);

  (* Definition 1/2: the outermost matched communication at u is the
     matched source with all pass-up sources to its left. *)
  Format.printf
    "O_c(u) is the matched pair whose source is S_u(%d) (x_s = sl = %d)@."
    st.sl st.sl;
  Format.printf
    "and whose destination is D_u(%d) (x_d = dr = %d) - Definition 2.@.@."
    st.dr st.dr;

  (* Run the schedule and watch switch u's configuration per round. *)
  let sched = Padr.schedule_exn set in
  Format.printf "schedule (width %d):@." sched.width;
  Array.iter
    (fun (r : Padr.Schedule.round) ->
      let cfg_u =
        Array.fold_left
          (fun acc (node, cfg) -> if node = u then Some cfg else acc)
          None r.configs
      in
      Format.printf "  round %d: u=%s |"
        r.index
        (match cfg_u with
        | Some c -> Format.asprintf "%a" Cst.Switch_config.pp c
        | None -> "{}");
      List.iter (fun (s, d) -> Format.printf " %d->%d" s d) r.deliveries;
      Format.printf "@.")
    sched.rounds;

  Format.printf "@.switch u made %d configuration change(s) in %d rounds@."
    sched.power.per_switch_connects.(u)
    (Padr.Schedule.num_rounds sched);
  let report = Padr.verify sched in
  Format.printf "verification: %a@." Padr.Verify.pp_report report

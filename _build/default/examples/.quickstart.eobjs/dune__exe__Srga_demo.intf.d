examples/srga_demo.mli:

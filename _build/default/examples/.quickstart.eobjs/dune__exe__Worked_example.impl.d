examples/worked_example.ml: Array Cst Cst_comm Cst_workloads Format List Padr

examples/noc_power_study.mli:

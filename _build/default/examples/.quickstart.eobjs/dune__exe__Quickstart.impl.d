examples/quickstart.ml: Array Cst Cst_comm Cst_report Format List Padr

examples/parallel_prefix.mli:

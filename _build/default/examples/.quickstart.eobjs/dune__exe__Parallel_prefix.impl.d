examples/parallel_prefix.ml: Array Cst_algos Cst_util Cst_workloads Format Padr

examples/noc_power_study.ml: Cst_report Cst_sim Cst_util Format List

examples/segmentable_bus.ml: Cst_workloads Format List Padr Segbus

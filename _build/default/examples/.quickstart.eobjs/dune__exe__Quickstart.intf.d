examples/quickstart.mli:

examples/segmentable_bus.mli:

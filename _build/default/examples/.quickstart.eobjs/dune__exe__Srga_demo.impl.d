examples/srga_demo.ml: Array Broadcast Cst_comm Cst_srga Cst_util Cst_workloads Format Grid List Matvec Padr Row_sched

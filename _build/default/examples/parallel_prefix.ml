(* Parallel prefix sums on the CST (Blelloch scan under PADR).

   The paper's conclusion proposes using PADR to build computational
   algorithms for reconfigurable models.  The work-efficient scan is the
   canonical one: every level of its up/down sweeps is a width-1
   well-nested set, so each superstep costs exactly one CST round and the
   whole computation keeps every switch at O(1) configuration changes.

   Run with:  dune exec examples/parallel_prefix.exe *)

let () =
  let n = 64 in
  let rng = Cst_util.Prng.create 17 in
  let a = Array.init n (fun _ -> Cst_util.Prng.int rng 100) in

  Format.printf "input (first 8 of %d): " n;
  Array.iteri (fun i v -> if i < 8 then Format.printf "%d " v) a;
  Format.printf "...@.@.";

  let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
  let expect = Cst_algos.Scan.inclusive_reference Cst_algos.Scan.sum a in
  Format.printf "inclusive prefix sums (first 8): ";
  Array.iteri (fun i v -> if i < 8 then Format.printf "%d " v) r.inclusive;
  Format.printf "...@.";
  Format.printf "matches the sequential reference: %b@.@." (r.inclusive = expect);

  Format.printf "cost on the CST:@.";
  Format.printf "  supersteps: %d  (3 log n + 1)@." r.stats.supersteps;
  Format.printf "  CSA waves:  %d  (every pattern is well-nested: 1 wave each)@."
    r.stats.waves;
  Format.printf "  rounds:     %d  (every pattern has width 1: 1 round each)@."
    r.stats.rounds;
  Format.printf "  power:      %d connection writes, max %d per switch@.@."
    r.stats.power.total_writes r.stats.power.max_writes_per_switch;

  (* Segmented scan: prefixes restarting at segment boundaries — the
     segmentable-bus computation pattern, same Blelloch program over the
     (value, flag) pair monoid. *)
  let flags = Array.init n (fun i -> i mod 16 = 0) in
  let seg, _ = Cst_algos.Scan.segmented Cst_algos.Scan.sum a ~flags in
  Format.printf "segmented scan (16-PE segments) correct: %b@.@."
    (seg = Cst_algos.Scan.segmented_reference Cst_algos.Scan.sum a ~flags);

  (* Reductions reuse the up-sweep alone. *)
  let total, stats = Cst_algos.Scan.reduce Cst_algos.Scan.sum a in
  Format.printf "reduce: sum = %d in %d supersteps (%d writes)@." total
    stats.supersteps stats.power.total_writes;
  let m, _ = Cst_algos.Scan.reduce Cst_algos.Scan.max_op a in
  Format.printf "reduce: max = %d@.@." m;

  (* A crossing pattern by contrast: one butterfly stage needs 2^stage
     waves — the wave scheduler handles it transparently. *)
  let stage = 3 in
  let set = Cst_workloads.Gen_arbitrary.butterfly ~n ~stage in
  let w = Padr.Waves.schedule_exn set in
  Format.printf "butterfly stage %d (crossing set): %a@.@." stage Padr.Waves.pp w;

  (* Odd-even transposition sort: 2n supersteps that only ever alternate
     between two configurations per switch. *)
  let data = Array.init 16 (fun _ -> Cst_util.Prng.int rng 100) in
  let sorted, stats = Cst_algos.Sort.run data in
  Format.printf "odd-even sort of 16 values: sorted=%b, %d supersteps, max %d \
                 connects/switch@."
    (Cst_algos.Sort.is_sorted sorted)
    stats.supersteps stats.power.max_connects_per_switch;
  let sorted_b, stats_b = Cst_algos.Sort.bitonic data in
  Format.printf "bitonic sort of the same:   sorted=%b, %d supersteps but %d \
                 waves (crossing strides)@."
    (Cst_algos.Sort.is_sorted sorted_b)
    stats_b.supersteps stats_b.waves

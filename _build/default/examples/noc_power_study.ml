(* The CST as a network-on-chip interconnect: a traffic study.

   A 256-PE CST carries a 40-phase trace of random well-nested traffic (a
   phase models one communication step of an application).  The same trace
   runs under the PADR runner (persistent networks, carry-over across
   phases) and under every per-round baseline; we compare latency (rounds,
   clock cycles) and energy (configuration writes) over the whole run.

   Run with:  dune exec examples/noc_power_study.exe *)

let () =
  let rng = Cst_util.Prng.create 2007 in
  let trace =
    Cst_sim.Traffic.random_well_nested rng ~leaves:256 ~phases:40 ()
  in
  Format.printf "%a@.@." Cst_sim.Traffic.pp trace;

  let results = Cst_sim.Runner.compare_all trace in

  (* A few phases in detail, PADR vs the ID baseline. *)
  let padr = List.assoc "padr" results in
  let roy = List.assoc "roy-id" results in
  Format.printf "first phases (PADR vs roy-id):@.";
  List.iteri
    (fun i ((p : Cst_sim.Runner.phase_result), (r : Cst_sim.Runner.phase_result)) ->
      if i < 5 then
        Format.printf
          "  %-9s %3d comms, width %2d | padr %2d rounds / %4d writes | \
           roy %2d rounds / %4d writes@."
          p.label p.comms p.width p.rounds p.writes r.rounds r.writes)
    (List.combine padr.phases roy.phases);
  Format.printf "  ...@.@.";

  let table =
    Cst_report.Table.create ~title:"whole-trace totals"
      ~columns:[ "scheduler"; "rounds"; "cycles"; "writes"; "connects"; "max wr/sw" ]
  in
  List.iter
    (fun (name, (r : Cst_sim.Runner.result)) ->
      Cst_report.Table.add_row table
        [
          name;
          string_of_int r.rounds;
          string_of_int r.cycles;
          string_of_int r.power.total_writes;
          string_of_int r.power.total_connects;
          string_of_int r.power.max_writes_per_switch;
        ])
    results;
  Cst_report.Table.print table;

  Format.printf
    "@.energy: PADR spends %.1f%% of the ID baseline's configuration writes@."
    (100.0 *. Cst_sim.Runner.energy_ratio padr roy);
  Format.printf "latency: %d vs %d rounds over the trace@." padr.rounds
    roy.rounds

bin/fuzz.ml: Array Cst Cst_algos Cst_baselines Cst_comm Cst_util Cst_workloads Format List Padr String Sys

bin/cstool.mli:

bin/cstool.ml: Arg Array Cmd Cmdliner Cst Cst_baselines Cst_comm Cst_report Cst_util Cst_workloads Format Fun List Padr Printf String Term

bin/fuzz.mli:

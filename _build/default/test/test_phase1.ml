open Helpers

(* Hand-checked register contents for the set {0->7, 1->2, 3->4} on an
   8-leaf CST (the example traced in DESIGN.md). *)
let test_registers_hand_example () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let p1 = Padr.Phase1.run t s in
  let st = Padr.Phase1.state p1 in
  let expect node m sl dl sr dr =
    let v = st node in
    check_true
      (Printf.sprintf "node %d: got %s" node
         (Format.asprintf "%a" Padr.Csa_state.pp v))
      (Padr.Csa_state.equal v (Padr.Csa_state.make ~m ~sl ~dl ~sr ~dr))
  in
  expect 4 0 1 0 1 0;
  (* PEs 0,1 both sources *)
  expect 5 0 0 1 1 0;
  (* PE 2 dest from above, PE 3 source *)
  expect 6 0 0 1 0 0;
  (* PE 4 dest *)
  expect 7 0 0 0 0 1;
  (* PE 7 dest *)
  expect 2 1 1 0 1 0;
  (* 1->2 matched here *)
  expect 3 0 0 1 0 1;
  expect 1 2 0 0 0 0
(* 0->7 and 3->4 matched at the root *)

let test_total_matched () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  check_int "all comms matched somewhere" 3
    (Padr.Phase1.total_matched (Padr.Phase1.run t s))

let test_empty_set () =
  let t = topo 8 in
  let p1 = Padr.Phase1.run t (set ~n:8 []) in
  check_int "nothing matched" 0 (Padr.Phase1.total_matched p1);
  for node = 1 to 7 do
    check_true "drained" (Padr.Csa_state.is_drained (Padr.Phase1.state p1 node))
  done

let test_matched_at_lca () =
  (* Every communication is matched exactly at its LCA. *)
  let t = topo 16 in
  let s = set ~n:16 [ (0, 15); (1, 6); (2, 3); (8, 13) ] in
  let p1 = Padr.Phase1.run t s in
  let st = Padr.Phase1.state p1 in
  check_int "root" 1 (st 1).m;
  (* (1,6): leaves 17 and 22, lca 2 *)
  check_int "node 2" 1 (st 2).m;
  (* (2,3): leaves 18,19, lca 9 *)
  check_int "node 9" 1 (st 9).m;
  (* (8,13): leaves 24,29, lca 3 *)
  check_int "node 3" 1 (st 3).m

let test_small_set_on_large_tree () =
  let t = topo 64 in
  let s = set ~n:8 [ (0, 7) ] in
  let p1 = Padr.Phase1.run t s in
  check_int "matched once" 1 (Padr.Phase1.total_matched p1)

let test_rejects_left_oriented () =
  let t = topo 8 in
  check_raises_invalid "left-oriented" (fun () ->
      Padr.Phase1.run t (set ~n:8 [ (5, 2) ]))

let test_rejects_oversized () =
  let t = topo 8 in
  check_raises_invalid "too many PEs" (fun () ->
      Padr.Phase1.run t (set ~n:16 [ (0, 15) ]))

let test_state_words_constant () =
  check_int "5 words" 5 (Padr.Csa_state.words (Padr.Csa_state.zero ()));
  check_int "message words" 2 Padr.Phase1.up_words_per_message

let prop_matched_equals_size =
  prop "sum of matched pairs = set size" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      Padr.Phase1.total_matched (Padr.Phase1.run t s)
      = Cst_comm.Comm_set.size s)

let prop_crossing_counts =
  prop "registers consistent with link crossings" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      let p1 = Padr.Phase1.run t s in
      let cr = Cst_comm.Width.crossings ~leaves s in
      let ok = ref true in
      for node = 1 to leaves - 1 do
        let st = Padr.Phase1.state p1 node in
        let y = Cst.Topology.left t node and z = Cst.Topology.right t node in
        (* S_L = crossings up from the left child, etc. *)
        if st.m + st.sl <> cr.up.(y) then ok := false;
        if st.dl <> cr.down.(y) then ok := false;
        if st.sr <> cr.up.(z) then ok := false;
        if st.m + st.dr <> cr.down.(z) then ok := false
      done;
      !ok)

let suite =
  [
    case "registers: hand example" test_registers_hand_example;
    case "total matched" test_total_matched;
    case "empty set" test_empty_set;
    case "matched at lca" test_matched_at_lca;
    case "small set on large tree" test_small_set_on_large_tree;
    case "rejects left-oriented" test_rejects_left_oriented;
    case "rejects oversized" test_rejects_oversized;
    case "constant words" test_state_words_constant;
    prop_matched_equals_size;
    prop_crossing_counts;
  ]

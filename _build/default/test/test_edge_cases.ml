open Helpers

(* Cross-cutting edge cases that don't belong to a single module. *)

let test_minimal_tree () =
  (* the smallest CST: 2 PEs, one switch *)
  let s = schedule ~n:2 [ (0, 1) ] in
  check_int "one round" 1 (Padr.Schedule.num_rounds s);
  check_int "one connect" 1 s.power.total_connects;
  check_verified s

let test_minimal_left () =
  let sched = Padr.Left.run_exn (topo 2) (set ~n:2 [ (1, 0) ]) in
  check_true "delivered" (Padr.Schedule.all_deliveries sched = [ (1, 0) ])

let test_span_full_tree () =
  let n = 4096 in
  let s = Padr.schedule_exn (set ~n [ (0, n - 1) ]) in
  check_int "one round" 1 (Padr.Schedule.num_rounds s);
  (* the path touches 2*log(n) - 1 switches, each set once *)
  check_int "power = path length" (2 * 12 - 1) s.power.total_connects;
  check_verified s

let test_enclosing_over_aligned_pairs () =
  (* An enclosing communication over aligned neighbour pairs shares no
     directed link with any of them: everything fits in one round even
     though the nesting depth is 2. *)
  let n = 64 in
  let inner = List.init 15 (fun i -> (2 + (2 * i), 3 + (2 * i))) in
  let s = Padr.schedule_exn (set ~n ((0, 33) :: inner)) in
  check_int "single round despite nesting" 1 (Padr.Schedule.num_rounds s);
  check_verified s

let test_stale_config_cannot_hijack () =
  (* Configure a stale path, then schedule a conflicting round on the
     same net: the active path must win and deliver correctly. *)
  let t = topo 8 in
  let net = Cst.Net.create t in
  (* stale: 0 -> 7 *)
  let s1 = set ~n:8 [ (0, 7) ] in
  let _ = Padr.Csa.run_exn ~net t s1 in
  (* now 1 -> 6, whose path shares the root *)
  let s2 = set ~n:8 [ (1, 6) ] in
  let sched2 = Padr.Csa.run_exn ~net t s2 in
  check_true "delivered" (Padr.Schedule.all_deliveries sched2 = [ (1, 6) ]);
  (* physically: PE 1's signal reaches 6; PE 0's stale signal reaches no
     ACTIVE destination (it may dead-end or hit an idle leaf) *)
  check_true "no hijack"
    (Cst.Data_plane.route net ~src:1 = Some 6)

let test_engine_on_onion () =
  let s = Cst_workloads.Gen_wn.onion ~n:64 ~width:16 in
  let spec = Padr.Csa.run_exn (topo 64) s in
  let eng, _ = Padr.Engine.run_exn (topo 64) s in
  check_true "engine = spec on the adversarial onion"
    (Padr.Schedule.all_deliveries spec = Padr.Schedule.all_deliveries eng
    && spec.power.total_connects = eng.power.total_connects)

let test_wn_cover_of_onion_is_single_layer () =
  let s = Cst_workloads.Gen_wn.onion ~n:32 ~width:8 in
  check_int "nested sets need one wave" 1 (Cst_comm.Wn_cover.num_layers s)

let test_waves_width_one_crossing () =
  (* two crossing comms whose link footprints are disjoint anyway: still
     needs two waves (the cover is purely structural) but one round each *)
  let s = set ~n:16 [ (0, 8); (4, 12) ] in
  let w = Padr.Waves.schedule_exn s in
  check_int "two waves" 2 (Padr.Waves.num_waves w);
  check_true "all delivered"
    (Padr.Waves.deliveries w = [ (0, 8); (4, 12) ])

let test_mixed_same_pe_position_reuse () =
  (* a PE may be endpoint of one comm only, but mixed sets can use
     adjacent PEs in both directions *)
  let s = set ~n:8 [ (0, 3); (4, 1) ] in
  match Padr.schedule_mixed s with
  | Ok m ->
      check_true "both delivered"
        (Padr.mixed_deliveries m = [ (0, 3); (4, 1) ])
  | Error _ -> Alcotest.fail "should schedule"

let test_broadcast_two_pes () =
  let r = Cst_srga.Broadcast.run ~n:2 ~origin:1 in
  check_int "one stage" 1 r.stages;
  check_true "both covered" (r.covered = [ 0; 1 ])

let test_scan_two_pes () =
  let r = Cst_algos.Scan.run Cst_algos.Scan.sum [| 5; 7 |] in
  check_true "exclusive" (r.exclusive = [| 0; 5 |]);
  check_true "inclusive" (r.inclusive = [| 5; 12 |])

let test_verify_rejects_fake_width_claim () =
  let s = schedule ~n:8 [ (0, 7) ] in
  let fake = { s with width = 5 } in
  let r = Padr.verify fake in
  check_true "width is recomputed, not trusted" r.ok
(* note: verify recomputes width from the set, so a tampered width field
   cannot fool it *)

let test_comm_set_large_parse () =
  let n = 512 in
  let s = Cst_workloads.Gen_wn.uniform (Cst_util.Prng.create 8) ~n ~density:0.9 in
  match Cst_comm.Comm_set.of_string (Cst_comm.Comm_set.to_string s) with
  | Ok s' -> check_true "round trip at scale" (Cst_comm.Comm_set.equal s s')
  | Error e -> Alcotest.fail e

let suite =
  [
    case "minimal tree" test_minimal_tree;
    case "minimal left" test_minimal_left;
    case "span full tree" test_span_full_tree;
    case "enclosing over aligned pairs" test_enclosing_over_aligned_pairs;
    case "stale config cannot hijack" test_stale_config_cannot_hijack;
    case "engine on onion" test_engine_on_onion;
    case "wn cover of onion" test_wn_cover_of_onion_is_single_layer;
    case "waves of width-one crossing" test_waves_width_one_crossing;
    case "mixed adjacent directions" test_mixed_same_pe_position_reuse;
    case "broadcast two PEs" test_broadcast_two_pes;
    case "scan two PEs" test_scan_two_pes;
    case "verify recomputes width" test_verify_rejects_fake_width_claim;
    case "comm set parse at scale" test_comm_set_large_parse;
  ]

open Helpers

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_mean () =
  check_true "mean" (feq (Cst_util.Stats.mean [| 1.0; 2.0; 3.0 |]) 2.0)

let test_mean_empty () =
  check_raises_invalid "empty" (fun () -> Cst_util.Stats.mean [||])

let test_stddev () =
  check_true "stddev of constant" (feq (Cst_util.Stats.stddev [| 5.0; 5.0; 5.0 |]) 0.0);
  check_true "known sample"
    (feq (Cst_util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])
       (sqrt (32.0 /. 7.0)))

let test_median () =
  check_true "odd" (feq (Cst_util.Stats.median [| 3.0; 1.0; 2.0 |]) 2.0);
  check_true "even" (feq (Cst_util.Stats.median [| 4.0; 1.0; 3.0; 2.0 |]) 2.5)

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_true "p50" (feq (Cst_util.Stats.percentile xs 50.0) 50.0);
  check_true "p100" (feq (Cst_util.Stats.percentile xs 100.0) 100.0);
  check_true "p1" (feq (Cst_util.Stats.percentile xs 1.0) 1.0)

let test_summarize () =
  let s = Cst_util.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_int "n" 4 s.n;
  check_true "min" (feq s.min 1.0);
  check_true "max" (feq s.max 4.0);
  check_true "mean" (feq s.mean 2.5)

let test_linear_fit_exact () =
  let pts = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, (3.0 *. x) +. 1.0))
  in
  let f = Cst_util.Stats.linear_fit pts in
  check_true "slope" (feq f.slope 3.0);
  check_true "intercept" (feq f.intercept 1.0);
  check_true "r2" (feq f.r2 1.0)

let test_linear_fit_flat () =
  let pts = Array.init 10 (fun i -> (float_of_int i, 7.0)) in
  let f = Cst_util.Stats.linear_fit pts in
  check_true "flat slope" (feq f.slope 0.0)

let test_linear_fit_invalid () =
  check_raises_invalid "one point" (fun () ->
      Cst_util.Stats.linear_fit [| (1.0, 1.0) |]);
  check_raises_invalid "degenerate x" (fun () ->
      Cst_util.Stats.linear_fit [| (1.0, 1.0); (1.0, 2.0) |])

let suite =
  [
    case "mean" test_mean;
    case "mean empty" test_mean_empty;
    case "stddev" test_stddev;
    case "median" test_median;
    case "percentile" test_percentile;
    case "summarize" test_summarize;
    case "linear fit exact" test_linear_fit_exact;
    case "linear fit flat" test_linear_fit_flat;
    case "linear fit invalid" test_linear_fit_invalid;
  ]

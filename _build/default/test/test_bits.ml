open Helpers

let test_is_power_of_two () =
  List.iter
    (fun (v, expect) ->
      check_bool (string_of_int v) expect (Cst_util.Bits.is_power_of_two v))
    [
      (1, true); (2, true); (4, true); (1024, true);
      (0, false); (-1, false); (-4, false); (3, false); (6, false); (1023, false);
    ]

let test_ceil_pow2 () =
  List.iter
    (fun (v, expect) -> check_int (string_of_int v) expect (Cst_util.Bits.ceil_pow2 v))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (8, 8); (9, 16); (1000, 1024) ]

let test_ceil_pow2_invalid () =
  check_raises_invalid "zero" (fun () -> Cst_util.Bits.ceil_pow2 0)

let test_ilog2 () =
  List.iter
    (fun (v, expect) -> check_int (string_of_int v) expect (Cst_util.Bits.ilog2 v))
    [ (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1024, 10) ]

let test_ilog2_invalid () =
  check_raises_invalid "zero" (fun () -> Cst_util.Bits.ilog2 0)

let test_popcount () =
  List.iter
    (fun (v, expect) -> check_int (string_of_int v) expect (Cst_util.Bits.popcount v))
    [ (0, 0); (1, 1); (2, 1); (3, 2); (255, 8); (256, 1) ]

let prop_ceil_pow2 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"ceil_pow2 properties"
       QCheck.(int_range 1 100000)
       (fun n ->
         let p = Cst_util.Bits.ceil_pow2 n in
         Cst_util.Bits.is_power_of_two p && p >= n && (p = 1 || p / 2 < n)))

let prop_ilog2 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"ilog2 bounds"
       QCheck.(int_range 1 1000000)
       (fun n ->
         let k = Cst_util.Bits.ilog2 n in
         (1 lsl k) <= n && n < 1 lsl (k + 1)))

let suite =
  [
    case "is_power_of_two" test_is_power_of_two;
    case "ceil_pow2" test_ceil_pow2;
    case "ceil_pow2 invalid" test_ceil_pow2_invalid;
    case "ilog2" test_ilog2;
    case "ilog2 invalid" test_ilog2_invalid;
    case "popcount" test_popcount;
    prop_ceil_pow2;
    prop_ilog2;
  ]

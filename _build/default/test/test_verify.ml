open Helpers

let good () = schedule ~n:8 [ (0, 7); (1, 2); (3, 4) ]

let test_accepts_good () =
  let r = Padr.verify (good ()) in
  check_true "ok" r.ok;
  check_int "no issues" 0 (List.length r.issues);
  check_int "rounds" 2 r.rounds;
  check_int "width" 2 r.width;
  check_int "deliveries" 3 r.deliveries

let tamper f =
  let s = good () in
  Padr.verify { s with rounds = f s.rounds }

let test_detects_dropped_delivery () =
  let r =
    tamper (fun rounds ->
        Array.map
          (fun (r : Padr.Schedule.round) ->
            if r.index = 2 then { r with deliveries = [ List.hd r.deliveries ] }
            else r)
          rounds)
  in
  check_true "rejected" (not r.ok)

let test_detects_wrong_destination () =
  let r =
    tamper (fun rounds ->
        Array.map
          (fun (r : Padr.Schedule.round) ->
            if r.index = 1 then { r with deliveries = [ (0, 6) ] } else r)
          rounds)
  in
  check_true "rejected" (not r.ok)

let test_detects_conflicting_round () =
  (* merge all deliveries into round 1: (0,7) and (1,2) share a link. *)
  let s = good () in
  let all =
    Array.to_list s.rounds
    |> List.concat_map (fun (r : Padr.Schedule.round) -> r.deliveries)
  in
  let rounds =
    [|
      { s.rounds.(0) with deliveries = all; configs = [||] };
      { s.rounds.(1) with deliveries = []; configs = [||] };
    |]
  in
  let r = Padr.verify { s with rounds } in
  check_true "rejected" (not r.ok);
  check_true "issues reported" (r.issues <> [])

let test_detects_round_count () =
  let s = good () in
  let rounds = Array.append s.rounds s.rounds in
  let r = Padr.verify { s with rounds } in
  check_true "rejected" (not r.ok)

let test_detects_power_blowup () =
  let s = good () in
  let r =
    Padr.verify
      {
        s with
        power = { s.power with max_connects_per_switch = 1000 };
      }
  in
  check_true "rejected" (not r.ok)

let test_detects_replay_divergence () =
  (* Corrupt a stored configuration so the replay no longer delivers. *)
  let s = good () in
  let rounds =
    Array.map
      (fun (r : Padr.Schedule.round) ->
        if r.index = 1 then { r with configs = [||] } else r)
      s.rounds
  in
  (* With the snapshots dropped the replay check is skipped, so instead
     swap in an empty-but-present config for the root. *)
  let rounds2 =
    Array.map
      (fun (r : Padr.Schedule.round) ->
        if r.index = 1 then
          { r with configs = [| (1, Cst.Switch_config.empty) |] }
        else r)
      rounds
  in
  let r = Padr.verify { s with rounds = rounds2 } in
  check_true "rejected" (not r.ok)

let test_custom_power_bound () =
  let s = good () in
  let r =
    Padr.Verify.schedule ~power_bound:0 (topo 8) s.set s
  in
  check_true "tight bound rejects" (not r.ok)

let test_non_optimal_allowed_for_baselines () =
  let st = set ~n:8 [ (0, 7); (1, 6) ] in
  let sched = Cst_baselines.Naive.run (topo 8) st in
  let strict = Padr.Verify.schedule (topo 8) st sched in
  let relaxed =
    Padr.Verify.schedule ~check_rounds_optimal:false (topo 8) st sched
  in
  check_true "naive is round-optimal here" strict.ok;
  check_true "relaxed accepts too" relaxed.ok

let test_report_pp () =
  let r = Padr.verify (good ()) in
  let txt = Format.asprintf "%a" Padr.Verify.pp_report r in
  check_true "mentions OK" (String.length txt > 0 && String.sub txt 0 2 = "OK")

let suite =
  [
    case "accepts good schedule" test_accepts_good;
    case "detects dropped delivery" test_detects_dropped_delivery;
    case "detects wrong destination" test_detects_wrong_destination;
    case "detects conflicting round" test_detects_conflicting_round;
    case "detects wrong round count" test_detects_round_count;
    case "detects power blowup" test_detects_power_blowup;
    case "detects replay divergence" test_detects_replay_divergence;
    case "custom power bound" test_custom_power_bound;
    case "baselines verified without optimality" test_non_optimal_allowed_for_baselines;
    case "report pretty-printing" test_report_pp;
  ]

open Helpers
open Cst_workloads

let bus_with_cuts n cuts =
  let b = Segbus.create ~n in
  List.iter (Segbus.cut b) cuts;
  b

let test_single_segment () =
  let b = Segbus.create ~n:8 in
  check_true "one segment" (Segbus.segments b = [ (0, 7) ]);
  check_true "segment_of" (Segbus.segment_of b 5 = (0, 7))

let test_cut_and_join () =
  let b = bus_with_cuts 8 [ 3 ] in
  check_true "two segments" (Segbus.segments b = [ (0, 3); (4, 7) ]);
  check_true "is_cut" (Segbus.is_cut b 3);
  Segbus.join b 3;
  check_true "rejoined" (Segbus.segments b = [ (0, 7) ])

let test_many_cuts () =
  let b = bus_with_cuts 8 [ 0; 6 ] in
  check_true "three segments"
    (Segbus.segments b = [ (0, 0); (1, 6); (7, 7) ])

let test_bad_switch_index () =
  let b = Segbus.create ~n:8 in
  check_raises_invalid "negative" (fun () -> Segbus.cut b (-1));
  check_raises_invalid "too big" (fun () -> Segbus.cut b 7)

let test_run_bus () =
  let b = bus_with_cuts 8 [ 3 ] in
  match Segbus.run_bus b [ { writer = 1; reader = 3 }; { writer = 6; reader = 4 } ] with
  | Ok deliveries -> check_true "deliveries" (deliveries = [ (1, 3); (6, 4) ])
  | Error _ -> Alcotest.fail "valid writes"

let test_cross_segment_rejected () =
  let b = bus_with_cuts 8 [ 3 ] in
  match Segbus.run_bus b [ { writer = 1; reader = 5 } ] with
  | Error (Segbus.Cross_segment _) -> ()
  | _ -> Alcotest.fail "expected Cross_segment"

let test_contention_rejected () =
  let b = Segbus.create ~n:8 in
  match Segbus.run_bus b [ { writer = 0; reader = 1 }; { writer = 2; reader = 3 } ] with
  | Error (Segbus.Bus_contention _) -> ()
  | _ -> Alcotest.fail "expected Bus_contention"

let test_self_write_rejected () =
  let b = Segbus.create ~n:8 in
  match Segbus.run_bus b [ { writer = 2; reader = 2 } ] with
  | Error (Segbus.Self_write _) -> ()
  | _ -> Alcotest.fail "expected Self_write"

let test_to_comm_set () =
  let b = bus_with_cuts 8 [ 3 ] in
  match Segbus.to_comm_set b [ { writer = 1; reader = 3 }; { writer = 6; reader = 4 } ] with
  | Ok s ->
      check_int "two comms" 2 (Cst_comm.Comm_set.size s);
      check_int "bus n preserved" 8 (Cst_comm.Comm_set.n s)
  | Error _ -> Alcotest.fail "valid writes"

let test_cst_equivalence () =
  let b = bus_with_cuts 16 [ 3; 7; 11 ] in
  let writes =
    [
      { Segbus.writer = 1; reader = 3 };
      { Segbus.writer = 6; reader = 4 };
      { Segbus.writer = 8; reader = 11 };
      { Segbus.writer = 15; reader = 12 };
    ]
  in
  match (Segbus.run_bus b writes, Segbus.run_on_cst b writes) with
  | Ok bus_del, Ok mixed ->
      check_true "CST reproduces the bus semantics"
        (Padr.mixed_deliveries mixed = bus_del);
      check_true "at most two rounds (one per orientation)"
        (mixed.rounds <= 2)
  | _ -> Alcotest.fail "both should succeed"

let test_cst_equivalence_random () =
  let rng = Cst_util.Prng.create 123 in
  for _ = 1 to 25 do
    let n = 32 in
    let b = Segbus.create ~n in
    (* random cuts *)
    for i = 0 to n - 2 do
      if Cst_util.Prng.chance rng 0.3 then Segbus.cut b i
    done;
    (* one random write per sufficiently large segment *)
    let writes =
      List.filter_map
        (fun (lo, hi) ->
          if hi - lo < 1 then None
          else
            let w = Cst_util.Prng.int_in rng lo hi in
            let rec pick_r () =
              let r = Cst_util.Prng.int_in rng lo hi in
              if r = w then pick_r () else r
            in
            Some { Segbus.writer = w; reader = pick_r () })
        (Segbus.segments b)
    in
    match (Segbus.run_bus b writes, Segbus.run_on_cst b writes) with
    | Ok bus_del, Ok mixed ->
        check_true "equivalent" (Padr.mixed_deliveries mixed = bus_del)
    | _ -> Alcotest.fail "random segbus step failed"
  done

let test_error_pp () =
  let msg =
    Format.asprintf "%a" Segbus.pp_error (Segbus.Bus_contention 3)
  in
  check_true "mentions PE" (String.length msg > 0)

let suite =
  [
    case "single segment" test_single_segment;
    case "cut and join" test_cut_and_join;
    case "many cuts" test_many_cuts;
    case "bad switch index" test_bad_switch_index;
    case "run bus" test_run_bus;
    case "cross-segment rejected" test_cross_segment_rejected;
    case "contention rejected" test_contention_rejected;
    case "self-write rejected" test_self_write_rejected;
    case "to_comm_set" test_to_comm_set;
    case "CST equivalence" test_cst_equivalence;
    case "CST equivalence (random)" test_cst_equivalence_random;
    case "error pretty-printing" test_error_pp;
  ]

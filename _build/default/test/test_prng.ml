open Helpers

let test_determinism () =
  let a = Cst_util.Prng.create 42 and b = Cst_util.Prng.create 42 in
  for _ = 1 to 100 do
    check_true "same stream"
      (Cst_util.Prng.next_int64 a = Cst_util.Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Cst_util.Prng.create 1 and b = Cst_util.Prng.create 2 in
  check_true "different first draw"
    (Cst_util.Prng.next_int64 a <> Cst_util.Prng.next_int64 b)

let test_int_bounds () =
  let rng = Cst_util.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Cst_util.Prng.int rng 17 in
    check_true "in range" (v >= 0 && v < 17)
  done

let test_int_one () =
  let rng = Cst_util.Prng.create 7 in
  for _ = 1 to 10 do
    check_int "bound 1 gives 0" 0 (Cst_util.Prng.int rng 1)
  done

let test_int_in () =
  let rng = Cst_util.Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Cst_util.Prng.int_in rng (-5) 5 in
    check_true "in closed range" (v >= -5 && v <= 5)
  done

let test_int_invalid () =
  let rng = Cst_util.Prng.create 1 in
  check_raises_invalid "zero bound" (fun () -> Cst_util.Prng.int rng 0);
  check_raises_invalid "empty range" (fun () ->
      Cst_util.Prng.int_in rng 3 2)

let test_float_bounds () =
  let rng = Cst_util.Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Cst_util.Prng.float rng 2.5 in
    check_true "in [0, 2.5)" (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Cst_util.Prng.create 13 in
  let sum = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    sum := !sum +. Cst_util.Prng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  check_true "mean near 0.5" (mean > 0.45 && mean < 0.55)

let test_bool_balance () =
  let rng = Cst_util.Prng.create 17 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Cst_util.Prng.bool rng then incr trues
  done;
  check_true "roughly balanced" (!trues > 4500 && !trues < 5500)

let test_shuffle_permutation () =
  let rng = Cst_util.Prng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Cst_util.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_true "same elements" (sorted = Array.init 50 (fun i -> i))

let test_shuffle_moves () =
  let rng = Cst_util.Prng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Cst_util.Prng.shuffle rng a;
  check_true "not identity" (a <> Array.init 50 (fun i -> i))

let test_copy_independent () =
  let a = Cst_util.Prng.create 5 in
  let _ = Cst_util.Prng.next_int64 a in
  let b = Cst_util.Prng.copy a in
  check_true "copies agree"
    (Cst_util.Prng.next_int64 a = Cst_util.Prng.next_int64 b)

let test_split_diverges () =
  let a = Cst_util.Prng.create 5 in
  let b = Cst_util.Prng.split a in
  check_true "parent and child differ"
    (Cst_util.Prng.next_int64 a <> Cst_util.Prng.next_int64 b)

let test_pick () =
  let rng = Cst_util.Prng.create 31 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_true "picks member" (Array.mem (Cst_util.Prng.pick rng arr) arr)
  done;
  check_raises_invalid "empty pick" (fun () -> Cst_util.Prng.pick rng [||])

let test_pick_list () =
  let rng = Cst_util.Prng.create 31 in
  check_true "singleton" (Cst_util.Prng.pick_list rng [ 9 ] = 9);
  check_raises_invalid "empty list" (fun () ->
      Cst_util.Prng.pick_list rng [])

let suite =
  [
    case "determinism" test_determinism;
    case "different seeds" test_different_seeds;
    case "int bounds" test_int_bounds;
    case "int bound one" test_int_one;
    case "int_in bounds" test_int_in;
    case "invalid bounds raise" test_int_invalid;
    case "float bounds" test_float_bounds;
    case "float mean" test_float_mean;
    case "bool balance" test_bool_balance;
    case "shuffle is a permutation" test_shuffle_permutation;
    case "shuffle moves elements" test_shuffle_moves;
    case "copy independent" test_copy_independent;
    case "split diverges" test_split_diverges;
    case "pick" test_pick;
    case "pick_list" test_pick_list;
  ]

open Helpers

let test_reference_scans () =
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  check_true "exclusive sum"
    (Cst_algos.Scan.exclusive_reference Cst_algos.Scan.sum a
    = [| 0; 3; 4; 8; 9; 14; 23; 25 |]);
  check_true "inclusive sum"
    (Cst_algos.Scan.inclusive_reference Cst_algos.Scan.sum a
    = [| 3; 4; 8; 9; 14; 23; 25; 31 |])

let test_scan_matches_reference () =
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
  check_true "exclusive"
    (r.exclusive = Cst_algos.Scan.exclusive_reference Cst_algos.Scan.sum a);
  check_true "inclusive"
    (r.inclusive = Cst_algos.Scan.inclusive_reference Cst_algos.Scan.sum a)

let test_scan_max () =
  let a = [| 2; 9; 1; 7; 3; 8; 0; 5 |] in
  let r = Cst_algos.Scan.run Cst_algos.Scan.max_op a in
  check_true "max scan"
    (r.inclusive = [| 2; 9; 9; 9; 9; 9; 9; 9 |])

let test_scan_stats () =
  let n = 64 in
  let k = 6 in
  let a = Array.init n (fun i -> i) in
  let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
  (* k up-sweep steps + clear + 2k down-sweep steps *)
  check_int "supersteps" ((3 * k) + 1) r.stats.supersteps;
  (* every non-empty pattern has width 1: one wave and one round each *)
  check_int "waves" (3 * k) r.stats.waves;
  check_int "rounds" (3 * k) r.stats.rounds;
  check_true "power positive" (r.stats.power.total_connects > 0)

let test_scan_sizes () =
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> (i * 7) mod 13) in
      let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
      check_true
        (Printf.sprintf "n=%d" n)
        (r.exclusive
        = Cst_algos.Scan.exclusive_reference Cst_algos.Scan.sum a))
    [ 2; 4; 8; 16; 32; 128 ]

let test_scan_invalid () =
  check_raises_invalid "non power of two" (fun () ->
      Cst_algos.Scan.run Cst_algos.Scan.sum (Array.make 6 1));
  check_raises_invalid "too small" (fun () ->
      Cst_algos.Scan.run Cst_algos.Scan.sum [| 1 |])

let test_reduce () =
  let a = Array.init 32 (fun i -> i) in
  let total, stats = Cst_algos.Scan.reduce Cst_algos.Scan.sum a in
  check_int "sum" (31 * 32 / 2) total;
  check_int "log supersteps" 5 stats.supersteps;
  let m, _ = Cst_algos.Scan.reduce Cst_algos.Scan.min_op a in
  check_int "min" 0 m

let test_superstep_local_only () =
  let prog =
    {
      Cst_algos.Superstep.name = "local";
      steps =
        [
          {
            label = "double";
            pattern = (fun _ -> Cst_comm.Comm_set.empty ~n:4);
            absorb = (fun st _ -> Array.map (fun v -> 2 * v) st);
          };
        ];
    }
  in
  let final, stats = Cst_algos.Superstep.run prog ~init:[| 1; 2; 3; 4 |] in
  check_true "doubled" (final = [| 2; 4; 6; 8 |]);
  check_int "no waves" 0 stats.waves;
  check_int "no power" 0 stats.power.total_connects

let test_superstep_neighbor_exchange () =
  (* one superstep: even PEs send their value right; receivers add it *)
  let n = 8 in
  let prog =
    {
      Cst_algos.Superstep.name = "pairs";
      steps =
        [
          {
            label = "right-neighbour add";
            pattern = (fun _ -> Cst_workloads.Gen_wn.pairs ~n);
            absorb =
              (fun st deliveries ->
                let next = Array.copy st in
                List.iter
                  (fun (src, dst) -> next.(dst) <- next.(dst) + st.(src))
                  deliveries;
                next);
          };
        ];
    }
  in
  let final, stats =
    Cst_algos.Superstep.run prog ~init:(Array.init n (fun i -> i))
  in
  check_true "sums landed" (final = [| 0; 1; 2; 5; 4; 9; 6; 13 |]);
  check_int "one wave" 1 stats.waves;
  check_int "one round" 1 stats.rounds

let test_superstep_crossing_pattern () =
  (* a butterfly stage inside a superstep costs multiple waves *)
  let n = 16 in
  let prog =
    {
      Cst_algos.Superstep.name = "butterfly";
      steps =
        [
          {
            label = "stage 2";
            pattern =
              (fun _ -> Cst_workloads.Gen_arbitrary.butterfly ~n ~stage:2);
            absorb =
              (fun st deliveries ->
                let next = Array.copy st in
                List.iter
                  (fun (src, dst) -> next.(dst) <- st.(src))
                  deliveries;
                next);
          };
        ];
    }
  in
  let final, stats =
    Cst_algos.Superstep.run prog ~init:(Array.init n (fun i -> i))
  in
  check_int "four waves" 4 stats.waves;
  (* destinations i+4 receive the value of source i; sources keep theirs *)
  check_true "values moved"
    (final.(4) = 0 && final.(5) = 1 && final.(15) = 11 && final.(0) = 0)

let test_superstep_size_mismatch () =
  let prog =
    {
      Cst_algos.Superstep.name = "bad";
      steps =
        [
          {
            label = "wrong n";
            pattern = (fun _ -> Cst_comm.Comm_set.empty ~n:16);
            absorb = (fun st _ -> st);
          };
        ];
    }
  in
  check_raises_invalid "size mismatch" (fun () ->
      ignore (Cst_algos.Superstep.run prog ~init:[| 0; 0 |]))

let test_segmented_scan () =
  let a = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let flags = [| true; false; false; true; false; true; false; false |] in
  let got, _ = Cst_algos.Scan.segmented Cst_algos.Scan.sum a ~flags in
  check_true "restarts at flags" (got = [| 1; 3; 6; 4; 9; 6; 13; 21 |]);
  check_true "matches reference"
    (got = Cst_algos.Scan.segmented_reference Cst_algos.Scan.sum a ~flags)

let test_segmented_no_flags () =
  let a = [| 2; 2; 2; 2 |] in
  let flags = [| false; false; false; false |] in
  let got, _ = Cst_algos.Scan.segmented Cst_algos.Scan.sum a ~flags in
  check_true "plain inclusive scan" (got = [| 2; 4; 6; 8 |])

let test_segmented_all_flags () =
  let a = [| 5; 6; 7; 8 |] in
  let flags = [| true; true; true; true |] in
  let got, _ = Cst_algos.Scan.segmented Cst_algos.Scan.sum a ~flags in
  check_true "identity" (got = a)

let test_segmented_mismatch () =
  check_raises_invalid "flag length" (fun () ->
      Cst_algos.Scan.segmented Cst_algos.Scan.sum [| 1; 2 |]
        ~flags:[| true |])

let prop_segmented_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"segmented scan equals the sequential reference"
       QCheck.(pair (int_range 1 5) (int_bound 100000))
       (fun (exp, seed) ->
         let n = 1 lsl (exp + 1) in
         let rng = Cst_util.Prng.create (seed + (2 * exp)) in
         let a = Array.init n (fun _ -> Cst_util.Prng.int_in rng (-20) 20) in
         let flags = Array.init n (fun _ -> Cst_util.Prng.chance rng 0.3) in
         fst (Cst_algos.Scan.segmented Cst_algos.Scan.sum a ~flags)
         = Cst_algos.Scan.segmented_reference Cst_algos.Scan.sum a ~flags))

let prop_scan_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"scan equals the sequential reference"
       QCheck.(pair (int_range 1 5) (int_bound 100000))
       (fun (exp, seed) ->
         let n = 1 lsl (exp + 1) in
         let rng = Cst_util.Prng.create (seed + exp) in
         let a = Array.init n (fun _ -> Cst_util.Prng.int_in rng (-50) 50) in
         let r = Cst_algos.Scan.run Cst_algos.Scan.sum a in
         r.exclusive = Cst_algos.Scan.exclusive_reference Cst_algos.Scan.sum a
         && r.inclusive
            = Cst_algos.Scan.inclusive_reference Cst_algos.Scan.sum a))

let suite =
  [
    case "reference scans" test_reference_scans;
    case "scan matches reference" test_scan_matches_reference;
    case "scan max" test_scan_max;
    case "scan stats" test_scan_stats;
    case "scan sizes" test_scan_sizes;
    case "scan invalid" test_scan_invalid;
    case "reduce" test_reduce;
    case "superstep local only" test_superstep_local_only;
    case "superstep neighbour exchange" test_superstep_neighbor_exchange;
    case "superstep crossing pattern" test_superstep_crossing_pattern;
    case "superstep size mismatch" test_superstep_size_mismatch;
    case "segmented scan" test_segmented_scan;
    case "segmented no flags" test_segmented_no_flags;
    case "segmented all flags" test_segmented_all_flags;
    case "segmented mismatch" test_segmented_mismatch;
    prop_segmented_random;
    prop_scan_random;
  ]

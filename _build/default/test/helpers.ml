(* Shared constructors and qcheck generators for the test suite. *)

let comm (src, dst) = Cst_comm.Comm.make ~src ~dst

let set ~n pairs = Cst_comm.Comm_set.create_exn ~n (List.map comm pairs)

let topo leaves = Cst.Topology.create ~leaves

let schedule ?leaves ~n pairs =
  Padr.schedule_exn ?leaves (set ~n pairs)

let check_verified ?(msg = "schedule verifies") sched =
  let report = Padr.verify sched in
  Alcotest.(check bool)
    (msg ^ ": " ^ String.concat "; " report.issues)
    true report.ok

(* Deterministic well-nested set generator for qcheck: sizes 4..512 PEs,
   any density.  No shrinking (sets are cheap to inspect whole). *)
let gen_wn_params =
  QCheck.Gen.(
    triple (int_bound 1_000_000) (int_range 2 9) (float_bound_inclusive 1.0))

let set_of_params (seed, n_exp, density) =
  let rng = Cst_util.Prng.create seed in
  Cst_workloads.Gen_wn.uniform rng ~n:(1 lsl n_exp) ~density

let arbitrary_wn_set =
  QCheck.make
    ~print:(fun p -> Cst_comm.Comm_set.to_string (set_of_params p))
    gen_wn_params

let prop name ?(count = 100) prop_fun =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arbitrary_wn_set prop_fun)

let case name f = Alcotest.test_case name `Quick f

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b
let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected Invalid_argument")

open Helpers

let width ~leaves pairs = Cst_comm.Width.width ~leaves (set ~n:leaves pairs)

let test_hand_computed () =
  check_int "trace1" 2 (width ~leaves:8 [ (0, 7); (1, 2); (3, 4) ]);
  check_int "pairs" 1 (width ~leaves:8 [ (0, 1); (2, 3); (4, 5); (6, 7) ]);
  check_int "onion" 4 (width ~leaves:8 [ (0, 7); (1, 6); (2, 5); (3, 4) ]);
  check_int "empty" 0 (width ~leaves:8 [])

let test_width_is_not_depth () =
  (* (0,7) and (2,3): nesting depth 2 but no shared directed link. *)
  check_int "depth 2, width 1" 1 (width ~leaves:8 [ (0, 7); (2, 3) ])

let test_left_oriented_supported () =
  check_int "mirrored onion" 4
    (Cst_comm.Width.width ~leaves:8 (set ~n:8 [ (7, 0); (6, 1); (5, 2); (4, 3) ]))

let test_crossings_detail () =
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let c = Cst_comm.Width.crossings ~leaves:8 s in
  (* node 4 covers PEs 0-1: sources 0 and 1 go up. *)
  check_int "up at node 4" 2 c.up.(4);
  check_int "down at node 4" 0 c.down.(4);
  (* node 5 covers PEs 2-3: dest 2 comes down, source 3 goes up. *)
  check_int "up at node 5" 1 c.up.(5);
  check_int "down at node 5" 1 c.down.(5);
  (* root children: 2 covers 0-3, 3 covers 4-7. *)
  check_int "up into root" 2 c.up.(2);
  check_int "down from root" 2 c.down.(3)

let test_width_auto () =
  check_int "auto rounds up leaves" 1
    (Cst_comm.Width.width_auto (set ~n:6 [ (0, 5) ]))

let test_leaves_validation () =
  check_raises_invalid "not a power of two" (fun () ->
      Cst_comm.Width.width ~leaves:6 (set ~n:4 [ (0, 1) ]));
  check_raises_invalid "too small" (fun () ->
      Cst_comm.Width.width ~leaves:4 (set ~n:8 [ (0, 7) ]))

let test_classify () =
  let open Cst_comm.Width in
  let k c = classify ~lo:4 ~mid:8 ~hi:12 c in
  check_true "matched" (k (comm (5, 9)) = Matched);
  check_true "internal left" (k (comm (5, 6)) = Internal);
  check_true "internal right" (k (comm (9, 10)) = Internal);
  check_true "source up" (k (comm (5, 14)) = Source_up);
  check_true "dest down" (k (comm (1, 9)) = Dest_down);
  check_true "external" (k (comm (0, 2)) = External);
  check_true "spanning is external" (k (comm (0, 15)) = External)

let test_classify_rejects_left () =
  check_raises_invalid "left-oriented" (fun () ->
      Cst_comm.Width.classify ~lo:0 ~mid:2 ~hi:4 (comm (3, 1)))

let prop_fast_equals_naive =
  prop "crossings agree with naive recomputation" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      Cst_comm.Width.check_against_naive ~leaves s)

let prop_width_positive =
  prop "width is 0 iff the set is empty" (fun params ->
      let s = set_of_params params in
      Cst_comm.Width.width_auto s = 0 = (Cst_comm.Comm_set.size s = 0))

let prop_width_le_size =
  prop "width <= number of communications" (fun params ->
      let s = set_of_params params in
      Cst_comm.Width.width_auto s <= max 1 (Cst_comm.Comm_set.size s))

let suite =
  [
    case "hand-computed widths" test_hand_computed;
    case "width is not nesting depth" test_width_is_not_depth;
    case "left-oriented supported" test_left_oriented_supported;
    case "crossings detail" test_crossings_detail;
    case "width_auto" test_width_auto;
    case "leaves validation" test_leaves_validation;
    case "classify (figure 4a)" test_classify;
    case "classify rejects left-oriented" test_classify_rejects_left;
    prop_fast_equals_naive;
    prop_width_positive;
    prop_width_le_size;
  ]

open Helpers

(* The heavy end-to-end properties behind the paper's theorems, on random
   well-nested sets of 4..512 PEs. *)

let run params =
  let s = set_of_params params in
  (s, Padr.schedule_exn s)

let prop_theorem4_delivery =
  prop ~count:150 "Theorem 4: deliveries equal the matching" (fun params ->
      let s, sched = run params in
      Padr.Schedule.all_deliveries sched = Cst_comm.Comm_set.matching s)

let prop_theorem5_rounds =
  prop ~count:150 "Theorem 5: rounds = width exactly" (fun params ->
      let s, sched = run params in
      Padr.Schedule.num_rounds sched = Cst_comm.Width.width ~leaves:sched.leaves s)

let prop_rounds_compatible =
  prop ~count:150 "every round is a compatible set" (fun params ->
      let _, sched = run params in
      let t = Cst.Topology.create ~leaves:sched.leaves in
      Array.for_all
        (fun (r : Padr.Schedule.round) ->
          Cst.Compat.is_compatible t
            (List.map (fun (s, d) -> Cst_comm.Comm.make ~src:s ~dst:d) r.deliveries))
        sched.rounds)

let prop_theorem8_constant_power =
  prop ~count:150 "Theorem 8: per-switch connects bounded by a constant"
    (fun params ->
      let _, sched = run params in
      sched.power.max_connects_per_switch <= Padr.Verify.default_power_bound
      && sched.power.max_writes_per_switch <= Padr.Verify.default_power_bound)

let prop_each_comm_once =
  prop ~count:100 "each communication is scheduled exactly once"
    (fun params ->
      let s, sched = run params in
      let all =
        Array.to_list sched.rounds
        |> List.concat_map (fun (r : Padr.Schedule.round) -> r.deliveries)
      in
      List.length all = Cst_comm.Comm_set.size s
      && List.sort_uniq compare all = Cst_comm.Comm_set.matching s)

let prop_full_verifier =
  prop ~count:100 "full verifier accepts" (fun params ->
      let _, sched = run params in
      (Padr.verify sched).ok)

let prop_nonempty_rounds =
  prop ~count:100 "no empty rounds" (fun params ->
      let _, sched = run params in
      Array.for_all
        (fun (r : Padr.Schedule.round) -> r.deliveries <> [])
        sched.rounds)

let prop_engine_equivalence =
  prop ~count:75 "message-passing engine reproduces the schedule"
    (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      let spec = Padr.Csa.run_exn t s in
      let eng, stats = Padr.Engine.run_exn t s in
      Padr.Schedule.num_rounds spec = Padr.Schedule.num_rounds eng
      && Padr.Schedule.all_deliveries spec = Padr.Schedule.all_deliveries eng
      && spec.power.total_connects = eng.power.total_connects
      && spec.power.max_connects_per_switch = eng.power.max_connects_per_switch
      && stats.max_message_words <= 4
      && stats.state_words_per_switch = 5)

let prop_eager_ablation =
  prop ~count:75 "eager clearing keeps rounds, costs at least as much"
    (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      let lz = Padr.Csa.run_exn t s in
      let eg = Padr.Csa.run_exn ~eager_clear:true t s in
      Padr.Schedule.num_rounds lz = Padr.Schedule.num_rounds eg
      && Padr.Schedule.all_deliveries lz = Padr.Schedule.all_deliveries eg
      && eg.power.total_connects + eg.power.total_disconnects
         >= lz.power.total_connects + lz.power.total_disconnects)

(* Mixed-orientation scheduling: flip a pseudo-random subset of a
   well-nested set; both parts stay well-nested. *)
let prop_mixed_round_trip =
  prop ~count:75 "mixed sets decompose, schedule and recombine"
    (fun params ->
      let s = set_of_params params in
      let n = Cst_comm.Comm_set.n s in
      let rng = Cst_util.Prng.create 911 in
      let flipped =
        Cst_comm.Comm_set.create_exn ~n
          (Array.to_list (Cst_comm.Comm_set.comms s)
          |> List.map (fun (c : Cst_comm.Comm.t) ->
                 if Cst_util.Prng.bool rng then
                   Cst_comm.Comm.make ~src:c.dst ~dst:c.src
                 else c))
      in
      match Padr.schedule_mixed flipped with
      | Error _ -> false
      | Ok m ->
          Padr.mixed_deliveries m
          = List.sort compare
              (Array.to_list (Cst_comm.Comm_set.comms flipped)
              |> List.map (fun (c : Cst_comm.Comm.t) -> (c.src, c.dst))))

let prop_cycles =
  prop ~count:75 "cycle count follows levels + rounds*(levels+1)"
    (fun params ->
      let _, sched = run params in
      let levels = Cst_util.Bits.ilog2 sched.leaves in
      sched.cycles = levels + (Padr.Schedule.num_rounds sched * (levels + 1)))

let suite =
  [
    prop_theorem4_delivery;
    prop_theorem5_rounds;
    prop_rounds_compatible;
    prop_theorem8_constant_power;
    prop_each_comm_once;
    prop_full_verifier;
    prop_nonempty_rounds;
    prop_engine_equivalence;
    prop_eager_ablation;
    prop_mixed_round_trip;
    prop_cycles;
  ]

open Helpers

let sample = set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13) ]

let test_matches_spec () =
  let t = topo 16 in
  let spec = Padr.Csa.run_exn t sample in
  let eng, _ = Padr.Engine.run_exn t sample in
  check_int "rounds" (Padr.Schedule.num_rounds spec) (Padr.Schedule.num_rounds eng);
  check_true "deliveries"
    (Padr.Schedule.all_deliveries spec = Padr.Schedule.all_deliveries eng);
  Array.iteri
    (fun i (r : Padr.Schedule.round) ->
      check_true "per-round deliveries"
        (List.sort compare r.deliveries
        = List.sort compare eng.rounds.(i).deliveries))
    spec.rounds

let test_stats_constants () =
  let t = topo 16 in
  let _, stats = Padr.Engine.run_exn t sample in
  check_int "state words" 5 stats.state_words_per_switch;
  check_true "message words constant" (stats.max_message_words <= 4);
  check_true "positive cycles" (stats.cycles > 0)

let test_message_count () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7) ] in
  let _, stats = Padr.Engine.run_exn t s in
  (* Phase 1: 8 leaf messages + 6 internal (root doesn't send).
     One round: 7 switches send 2 messages each. *)
  check_int "messages" (8 + 6 + 14) stats.control_messages

let test_cycle_count () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7) ] in
  let sched, stats = Padr.Engine.run_exn t s in
  (* Phase 1: 1 leaf cycle + 3 levels.  Round: 4 level sweeps + 1 data. *)
  check_int "cycles" (1 + 3 + 5) stats.cycles;
  check_int "schedule agrees" stats.cycles sched.cycles

let test_empty () =
  let t = topo 8 in
  let sched, _ = Padr.Engine.run_exn t (set ~n:8 []) in
  check_int "no rounds" 0 (Padr.Schedule.num_rounds sched)

let test_errors () =
  let t = topo 8 in
  (match Padr.Engine.run t (set ~n:16 [ (0, 12) ]) with
  | Error (Padr.Csa.Too_large _) -> ()
  | _ -> Alcotest.fail "expected Too_large");
  match Padr.Engine.run t (set ~n:8 [ (0, 2); (1, 3) ]) with
  | Error (Padr.Csa.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "expected Not_well_nested"

let test_power_equal_to_spec () =
  let t = topo 16 in
  let spec = Padr.Csa.run_exn t sample in
  let eng, _ = Padr.Engine.run_exn t sample in
  check_int "connects" spec.power.total_connects eng.power.total_connects;
  check_int "writes" spec.power.total_writes eng.power.total_writes;
  check_int "disconnects" spec.power.total_disconnects
    eng.power.total_disconnects

let suite =
  [
    case "matches functional spec" test_matches_spec;
    case "stats constants" test_stats_constants;
    case "message count" test_message_count;
    case "cycle count" test_cycle_count;
    case "empty set" test_empty;
    case "errors" test_errors;
    case "power equals spec" test_power_equal_to_spec;
  ]

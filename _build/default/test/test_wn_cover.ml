open Helpers

let test_well_nested_is_one_layer () =
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  check_int "one layer" 1 (Cst_comm.Wn_cover.num_layers s);
  check_int "clique bound" 1 (Cst_comm.Wn_cover.clique_lower_bound s)

let test_empty () =
  let s = set ~n:8 [] in
  check_true "no layers" (Cst_comm.Wn_cover.layers s = []);
  check_int "bound" 0 (Cst_comm.Wn_cover.clique_lower_bound s)

let test_crossing_pair () =
  let s = set ~n:8 [ (0, 2); (1, 3) ] in
  check_int "two layers" 2 (Cst_comm.Wn_cover.num_layers s);
  check_int "clique bound" 2 (Cst_comm.Wn_cover.clique_lower_bound s);
  List.iter
    (fun layer ->
      check_true "layer well-nested"
        (Cst_comm.Well_nested.is_well_nested layer))
    (Cst_comm.Wn_cover.layers s)

let test_butterfly_layers () =
  List.iter
    (fun stage ->
      let s = Cst_workloads.Gen_arbitrary.butterfly ~n:32 ~stage in
      let expected = 1 lsl stage in
      check_int
        (Printf.sprintf "stage %d clique" stage)
        expected
        (Cst_comm.Wn_cover.clique_lower_bound s);
      check_int
        (Printf.sprintf "stage %d layers" stage)
        expected
        (Cst_comm.Wn_cover.num_layers s))
    [ 0; 1; 2; 3; 4 ]

let test_layers_partition () =
  let s = Cst_workloads.Gen_arbitrary.butterfly ~n:32 ~stage:3 in
  let layers = Cst_comm.Wn_cover.layers s in
  let union =
    List.concat_map
      (fun l -> Array.to_list (Cst_comm.Comm_set.comms l))
      layers
    |> List.sort Cst_comm.Comm.compare
  in
  check_true "partition"
    (union = Array.to_list (Cst_comm.Comm_set.comms s))

let test_rejects_left_oriented () =
  check_raises_invalid "left member" (fun () ->
      Cst_comm.Wn_cover.layers (set ~n:8 [ (3, 1) ]))

let prop_layers_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"cover layers are well-nested partitions"
       QCheck.(pair (int_bound 100000) (int_range 2 6))
       (fun (seed, exp) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create seed in
         let s =
           Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:(n / 4)
         in
         let right, _ = Cst_comm.Decompose.split s in
         let layers = Cst_comm.Wn_cover.layers right in
         List.for_all Cst_comm.Well_nested.is_well_nested layers
         && List.fold_left
              (fun acc l -> acc + Cst_comm.Comm_set.size l)
              0 layers
            = Cst_comm.Comm_set.size right
         && List.length layers
            >= Cst_comm.Wn_cover.clique_lower_bound right))

let prop_bound_le_layers =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"clique bound never exceeds layers"
       QCheck.(pair (int_bound 100000) (int_range 2 6))
       (fun (seed, exp) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create seed in
         let s =
           Cst_workloads.Gen_arbitrary.bit_reversal_sample rng ~n
         in
         let right, _ = Cst_comm.Decompose.split s in
         Cst_comm.Wn_cover.clique_lower_bound right
         <= max 1 (Cst_comm.Wn_cover.num_layers right)
         || Cst_comm.Comm_set.size right = 0))

let suite =
  [
    case "well-nested is one layer" test_well_nested_is_one_layer;
    case "empty" test_empty;
    case "crossing pair" test_crossing_pair;
    case "butterfly layers" test_butterfly_layers;
    case "layers partition" test_layers_partition;
    case "rejects left-oriented" test_rejects_left_oriented;
    prop_layers_sound;
    prop_bound_le_layers;
  ]

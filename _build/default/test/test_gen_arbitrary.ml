open Helpers

let test_random_pairs_valid () =
  let rng = Cst_util.Prng.create 4 in
  for _ = 1 to 30 do
    let s = Cst_workloads.Gen_arbitrary.random_pairs rng ~n:64 ~pairs:20 in
    check_int "size" 20 (Cst_comm.Comm_set.size s)
  done

let test_random_pairs_bounds () =
  let rng = Cst_util.Prng.create 4 in
  check_raises_invalid "too many pairs" (fun () ->
      Cst_workloads.Gen_arbitrary.random_pairs rng ~n:8 ~pairs:5);
  let empty = Cst_workloads.Gen_arbitrary.random_pairs rng ~n:8 ~pairs:0 in
  check_int "zero pairs" 0 (Cst_comm.Comm_set.size empty)

let test_random_pairs_deterministic () =
  let a = Cst_workloads.Gen_arbitrary.random_pairs (Cst_util.Prng.create 5) ~n:32 ~pairs:10 in
  let b = Cst_workloads.Gen_arbitrary.random_pairs (Cst_util.Prng.create 5) ~n:32 ~pairs:10 in
  check_true "same seed same set" (Cst_comm.Comm_set.equal a b)

let test_butterfly () =
  let s = Cst_workloads.Gen_arbitrary.butterfly ~n:16 ~stage:0 in
  check_true "stage 0 is neighbour pairs"
    (Cst_comm.Comm_set.matching s
    = List.init 8 (fun i -> (2 * i, (2 * i) + 1)));
  let s2 = Cst_workloads.Gen_arbitrary.butterfly ~n:16 ~stage:3 in
  check_true "stage 3 spans halves"
    (Cst_comm.Comm_set.matching s2
    = List.init 8 (fun i -> (i, i + 8)));
  check_raises_invalid "stage too high" (fun () ->
      Cst_workloads.Gen_arbitrary.butterfly ~n:16 ~stage:4)

let test_butterfly_right_oriented () =
  for stage = 0 to 4 do
    check_true "right oriented"
      (Cst_comm.Comm_set.is_right_oriented
         (Cst_workloads.Gen_arbitrary.butterfly ~n:32 ~stage))
  done

let test_bit_reversal () =
  let rng = Cst_util.Prng.create 6 in
  let s = Cst_workloads.Gen_arbitrary.bit_reversal_sample rng ~n:64 in
  Array.iter
    (fun (c : Cst_comm.Comm.t) ->
      (* endpoints must be bit-reversals of each other *)
      let bits = 6 in
      let reverse i =
        let r = ref 0 in
        for b = 0 to bits - 1 do
          if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
        done;
        !r
      in
      check_int "reversal pair" c.dst (reverse c.src))
    (Cst_comm.Comm_set.comms s)

let suite =
  [
    case "random pairs valid" test_random_pairs_valid;
    case "random pairs bounds" test_random_pairs_bounds;
    case "random pairs deterministic" test_random_pairs_deterministic;
    case "butterfly" test_butterfly;
    case "butterfly right oriented" test_butterfly_right_oriented;
    case "bit reversal" test_bit_reversal;
  ]

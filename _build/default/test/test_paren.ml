open Helpers

let test_tokens () =
  let s = set ~n:6 [ (1, 4) ] in
  check_true "token string" (Cst_comm.Paren.to_string s = ".(..).")

let test_tokens_left_oriented_rejected () =
  let s = set ~n:4 [ (3, 0) ] in
  check_raises_invalid "left-oriented" (fun () -> Cst_comm.Paren.tokens s)

let test_of_string () =
  match Cst_comm.Paren.of_string "((.))" with
  | Ok s ->
      check_int "two comms" 2 (Cst_comm.Comm_set.size s);
      check_true "matching" (Cst_comm.Comm_set.matching s = [ (0, 4); (1, 3) ])
  | Error e -> Alcotest.fail e

let test_of_string_blanks () =
  match Cst_comm.Paren.of_string "(_) ." with
  | Ok s ->
      check_int "n counts blanks" 5 (Cst_comm.Comm_set.n s);
      check_int "one comm" 1 (Cst_comm.Comm_set.size s)
  | Error e -> Alcotest.fail e

let test_of_string_unbalanced () =
  check_true "missing close" (Result.is_error (Cst_comm.Paren.of_string "(("));
  check_true "extra close" (Result.is_error (Cst_comm.Paren.of_string "())"));
  check_true "close first" (Result.is_error (Cst_comm.Paren.of_string ")("));
  check_true "bad char" (Result.is_error (Cst_comm.Paren.of_string "(a)"));
  check_true "empty" (Result.is_error (Cst_comm.Paren.of_string ""))

let test_round_trip () =
  let s = set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13) ] in
  match Cst_comm.Paren.of_string (Cst_comm.Paren.to_string s) with
  | Ok s' -> check_true "round trip" (Cst_comm.Comm_set.equal s s')
  | Error e -> Alcotest.fail e

let test_is_balanced () =
  let toks s = match Cst_comm.Paren.of_string s with
    | Ok set -> Cst_comm.Paren.tokens set
    | Error e -> Alcotest.fail e
  in
  check_true "balanced" (Cst_comm.Paren.is_balanced (toks "(())"));
  check_true "empty balanced" (Cst_comm.Paren.is_balanced [| Cst_comm.Paren.Blank |]);
  check_true "unbalanced"
    (not (Cst_comm.Paren.is_balanced [| Cst_comm.Paren.Open |]))

let test_max_depth () =
  let depth s =
    match Cst_comm.Paren.of_string s with
    | Ok set -> Cst_comm.Paren.max_depth (Cst_comm.Paren.tokens set)
    | Error e -> Alcotest.fail e
  in
  check_int "flat" 1 (depth "()()");
  check_int "nested" 3 (depth "((()))");
  check_int "mixed" 2 (depth "(()).(())")

let prop_round_trip =
  prop "paren round-trips through string" (fun params ->
      let s = set_of_params params in
      match Cst_comm.Paren.of_string (Cst_comm.Paren.to_string s) with
      | Ok s' -> Cst_comm.Comm_set.equal s s'
      | Error _ -> false)

let prop_match_pairs_agree =
  prop "match_pairs equals the set's matching" (fun params ->
      let s = set_of_params params in
      match Cst_comm.Paren.match_pairs (Cst_comm.Paren.tokens s) with
      | Ok pairs -> pairs = Cst_comm.Comm_set.matching s
      | Error _ -> false)

let suite =
  [
    case "tokens" test_tokens;
    case "tokens reject left-oriented" test_tokens_left_oriented_rejected;
    case "of_string" test_of_string;
    case "of_string blanks" test_of_string_blanks;
    case "of_string unbalanced" test_of_string_unbalanced;
    case "round trip" test_round_trip;
    case "is_balanced" test_is_balanced;
    case "max_depth" test_max_depth;
    prop_round_trip;
    prop_match_pairs_agree;
  ]

open Helpers
open Cst

let set_ = Switch_config.set

let test_empty () =
  check_true "no connections" (Switch_config.is_empty Switch_config.empty);
  check_int "count" 0 (Switch_config.connection_count Switch_config.empty);
  List.iter
    (fun o -> check_true "no driver" (Switch_config.driver Switch_config.empty o = None))
    Side.all

let test_set_and_query () =
  let c = set_ Switch_config.empty ~output:Side.R ~input:Side.L in
  check_true "driver" (Switch_config.driver c Side.R = Some Side.L);
  check_true "output_of" (Switch_config.output_of c Side.L = Some Side.R);
  check_true "others empty" (Switch_config.driver c Side.P = None);
  check_int "count" 1 (Switch_config.connection_count c)

let test_same_side_rejected () =
  List.iter
    (fun s ->
      check_raises_invalid "same side" (fun () ->
          set_ Switch_config.empty ~output:s ~input:s))
    Side.all

let test_double_drive_rejected () =
  let c = set_ Switch_config.empty ~output:Side.R ~input:Side.L in
  check_raises_invalid "output already driven" (fun () ->
      set_ c ~output:Side.R ~input:Side.P);
  check_raises_invalid "input already used" (fun () ->
      set_ c ~output:Side.P ~input:Side.L)

let test_three_connections () =
  (* l_i -> r_o, r_i -> p_o, p_i -> l_o : a fully loaded switch. *)
  let c =
    set_
      (set_
         (set_ Switch_config.empty ~output:Side.R ~input:Side.L)
         ~output:Side.P ~input:Side.R)
      ~output:Side.L ~input:Side.P
  in
  check_int "count" 3 (Switch_config.connection_count c)

let test_equal () =
  let a = set_ Switch_config.empty ~output:Side.R ~input:Side.L in
  let b = set_ Switch_config.empty ~output:Side.R ~input:Side.L in
  check_true "equal" (Switch_config.equal a b);
  check_true "not equal to empty" (not (Switch_config.equal a Switch_config.empty))

let test_diff_counts () =
  let open Switch_config in
  let a = set_ empty ~output:Side.R ~input:Side.L in
  let b = set_ empty ~output:Side.R ~input:Side.P in
  let d = diff ~old_config:a ~new_config:b in
  check_int "driver change is one connect" 1 d.connects;
  check_int "no disconnect on change" 0 d.disconnects;
  let d2 = diff ~old_config:a ~new_config:empty in
  check_int "teardown connects" 0 d2.connects;
  check_int "teardown disconnects" 1 d2.disconnects;
  let d3 = diff ~old_config:empty ~new_config:a in
  check_int "setup connects" 1 d3.connects;
  let d4 = diff ~old_config:a ~new_config:a in
  check_int "no-op connects" 0 d4.connects;
  check_int "no-op disconnects" 0 d4.disconnects

let test_merge_lazy_keeps () =
  let open Switch_config in
  let prev = set_ empty ~output:Side.R ~input:Side.L in
  let merged = merge_lazy ~prev ~want:empty in
  check_true "persists" (equal merged prev)

let test_merge_lazy_overrides_output () =
  let open Switch_config in
  let prev = set_ empty ~output:Side.R ~input:Side.L in
  let want = set_ empty ~output:Side.R ~input:Side.P in
  let merged = merge_lazy ~prev ~want in
  check_true "want wins output" (driver merged Side.R = Some Side.P)

let test_merge_lazy_steals_input () =
  let open Switch_config in
  (* prev: l_i -> r_o; want: l_i -> p_o.  Keeping the old connection would
     fan the input out to two outputs. *)
  let prev = set_ empty ~output:Side.R ~input:Side.L in
  let want = set_ empty ~output:Side.P ~input:Side.L in
  let merged = merge_lazy ~prev ~want in
  check_true "input stolen" (driver merged Side.R = None);
  check_true "want present" (driver merged Side.P = Some Side.L)

let test_merge_lazy_disjoint_union () =
  let open Switch_config in
  let prev = set_ empty ~output:Side.R ~input:Side.L in
  let want = set_ empty ~output:Side.L ~input:Side.P in
  let merged = merge_lazy ~prev ~want in
  check_int "both kept" 2 (connection_count merged)

let test_pp () =
  let c = set_ Switch_config.empty ~output:Side.R ~input:Side.L in
  check_true "pp nonempty"
    (Format.asprintf "%a" Switch_config.pp c = "{L->R}");
  check_true "pp empty"
    (Format.asprintf "%a" Switch_config.pp Switch_config.empty = "{}")

let test_side_index_round_trip () =
  List.iter
    (fun s -> check_true "round trip" (Side.of_index (Side.index s) = s))
    Side.all;
  check_raises_invalid "bad index" (fun () -> Side.of_index 3)

let suite =
  [
    case "empty" test_empty;
    case "set and query" test_set_and_query;
    case "same-side rejected" test_same_side_rejected;
    case "double drive rejected" test_double_drive_rejected;
    case "three connections" test_three_connections;
    case "equal" test_equal;
    case "diff counts" test_diff_counts;
    case "merge_lazy keeps" test_merge_lazy_keeps;
    case "merge_lazy overrides output" test_merge_lazy_overrides_output;
    case "merge_lazy steals input" test_merge_lazy_steals_input;
    case "merge_lazy disjoint union" test_merge_lazy_disjoint_union;
    case "pp" test_pp;
    case "side index round trip" test_side_index_round_trip;
  ]

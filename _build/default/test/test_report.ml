open Helpers

let test_table_render () =
  let t = Cst_report.Table.create ~title:"demo" ~columns:[ "w"; "rounds" ] in
  Cst_report.Table.add_int_row t [ 1; 1 ];
  Cst_report.Table.add_int_row t [ 32; 32 ];
  let txt = Cst_report.Table.render t in
  check_true "title" (String.length txt > 0 && txt.[0] = '=');
  check_true "has header rule"
    (String.split_on_char '\n' txt |> List.exists (fun l ->
         String.length l > 0 && String.for_all (( = ) '-') l));
  check_int "row count" 2 (Cst_report.Table.row_count t)

let test_table_arity () =
  let t = Cst_report.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  check_raises_invalid "wrong arity" (fun () ->
      Cst_report.Table.add_row t [ "only one" ])

let test_table_alignment () =
  let t = Cst_report.Table.create ~title:"t" ~columns:[ "col" ] in
  Cst_report.Table.add_row t [ "wide-cell-content" ];
  let lines = String.split_on_char '\n' (Cst_report.Table.render t) in
  let header = List.nth lines 1 and rule = List.nth lines 2 in
  check_int "rule covers widest" (String.length rule)
    (max (String.length header) (String.length rule))

let test_cell_float () =
  check_true "integral" (Cst_report.Table.cell_float 3.0 = "3");
  check_true "small" (Cst_report.Table.cell_float 0.1234 = "0.1234");
  check_true "mid" (Cst_report.Table.cell_float 12.345 = "12.35");
  check_true "big" (Cst_report.Table.cell_float 123.456 = "123.5")

let test_csv () =
  let txt =
    Cst_report.Csv.to_string ~header:[ "a"; "b" ]
      [ [ "1"; "x,y" ]; [ "2"; "say \"hi\"" ] ]
  in
  check_true "quoted comma" (String.length txt > 0);
  let lines = String.split_on_char '\n' txt in
  check_true "header" (List.nth lines 0 = "a,b");
  check_true "escaped field" (List.nth lines 1 = "1,\"x,y\"");
  check_true "escaped quote" (List.nth lines 2 = "2,\"say \"\"hi\"\"\"")

let test_csv_file () =
  let path = Filename.temp_file "csttest" ".csv" in
  Cst_report.Csv.write_file ~path ~header:[ "h" ] [ [ "v" ] ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check_true "written" (line = "h")

let test_ascii_plot () =
  let txt =
    Cst_report.Ascii_plot.render ~title:"p" ~x_label:"x" ~y_label:"y"
      [
        { label = "flat"; points = [ (1.0, 2.0); (10.0, 2.0) ] };
        { label = "rising"; points = [ (1.0, 1.0); (10.0, 10.0) ] };
      ]
  in
  check_true "has first glyph" (String.contains txt '*');
  check_true "has second glyph" (String.contains txt 'o');
  check_true "has legend" (String.length txt > 100)

let test_ascii_plot_empty () =
  let txt =
    Cst_report.Ascii_plot.render ~title:"e" ~x_label:"x" ~y_label:"y" []
  in
  check_true "graceful" (String.length txt > 0)

let test_ascii_plot_single_point () =
  let txt =
    Cst_report.Ascii_plot.render ~title:"s" ~x_label:"x" ~y_label:"y"
      [ { label = "dot"; points = [ (5.0, 5.0) ] } ]
  in
  check_true "renders" (String.contains txt '*')

let suite =
  [
    case "table render" test_table_render;
    case "table arity" test_table_arity;
    case "table alignment" test_table_alignment;
    case "cell_float" test_cell_float;
    case "csv" test_csv;
    case "csv file" test_csv_file;
    case "ascii plot" test_ascii_plot;
    case "ascii plot empty" test_ascii_plot_empty;
    case "ascii plot single point" test_ascii_plot_single_point;
  ]

open Helpers

let test_well_nested_single_wave () =
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let w = Padr.Waves.schedule_exn s in
  check_int "one wave" 1 (Padr.Waves.num_waves w);
  check_int "same rounds as direct CSA" 2 w.rounds;
  check_true "deliveries" (Padr.Waves.deliveries w = Cst_comm.Comm_set.matching s)

let test_butterfly_waves () =
  let s = Cst_workloads.Gen_arbitrary.butterfly ~n:32 ~stage:3 in
  let w = Padr.Waves.schedule_exn s in
  check_int "2^stage waves" 8 (Padr.Waves.num_waves w);
  check_true "deliveries" (Padr.Waves.deliveries w = Cst_comm.Comm_set.matching s)

let test_mixed_orientations () =
  let s = set ~n:8 [ (0, 2); (1, 3); (7, 5); (6, 4) ] in
  let w = Padr.Waves.schedule_exn s in
  check_int "two waves per orientation" 4 (Padr.Waves.num_waves w);
  check_true "deliveries" (Padr.Waves.deliveries w = Cst_comm.Comm_set.matching s)

let test_empty () =
  let w = Padr.Waves.schedule_exn (set ~n:8 []) in
  check_int "no waves" 0 (Padr.Waves.num_waves w);
  check_int "no rounds" 0 w.rounds;
  check_int "no power" 0 w.power.total_connects

let test_carry_over_saves () =
  (* The same layer pattern repeated: on the shared network, later waves
     reuse earlier configurations where the paths coincide. *)
  let s = Cst_workloads.Gen_arbitrary.butterfly ~n:64 ~stage:2 in
  let w = Padr.Waves.schedule_exn s in
  let independent =
    List.fold_left
      (fun acc layer ->
        acc + (Padr.schedule_exn layer).power.total_writes)
      0
      (Cst_comm.Wn_cover.layers s)
  in
  check_true "shared net never worse" (w.power.total_writes <= independent)

let test_pp () =
  let w = Padr.Waves.schedule_exn (set ~n:8 [ (0, 2); (1, 3) ]) in
  let txt = Format.asprintf "%a" Padr.Waves.pp w in
  check_true "mentions waves" (String.length txt > 20)

let prop_waves_route_anything =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"waves route arbitrary valid sets"
       QCheck.(pair (int_bound 100000) (int_range 2 7))
       (fun (seed, exp) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create seed in
         let s =
           Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:(n / 3)
         in
         let w = Padr.Waves.schedule_exn s in
         Padr.Waves.deliveries w = Cst_comm.Comm_set.matching s))

let prop_waves_power_bounded_per_wave =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"per-switch connects bounded by waves * constant"
       QCheck.(pair (int_bound 100000) (int_range 3 6))
       (fun (seed, exp) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create seed in
         let s = Cst_workloads.Gen_arbitrary.bit_reversal_sample rng ~n in
         let w = Padr.Waves.schedule_exn s in
         w.power.max_connects_per_switch
         <= max 1 (Padr.Waves.num_waves w) * Padr.Verify.default_power_bound))

let suite =
  [
    case "well-nested single wave" test_well_nested_single_wave;
    case "butterfly waves" test_butterfly_waves;
    case "mixed orientations" test_mixed_orientations;
    case "empty" test_empty;
    case "carry-over saves" test_carry_over_saves;
    case "pp" test_pp;
    prop_waves_route_anything;
    prop_waves_power_bounded_per_wave;
  ]

open Helpers

let c = comm

let test_make_valid () =
  let x = c (2, 5) in
  check_int "src" 2 x.src;
  check_int "dst" 5 x.dst

let test_make_invalid () =
  check_raises_invalid "equal endpoints" (fun () -> c (3, 3));
  check_raises_invalid "negative src" (fun () -> c (-1, 3));
  check_raises_invalid "negative dst" (fun () -> c (1, -3))

let test_orientation () =
  check_true "right" (Cst_comm.Comm.is_right_oriented (c (1, 4)));
  check_true "not left" (not (Cst_comm.Comm.is_left_oriented (c (1, 4))));
  check_true "left" (Cst_comm.Comm.is_left_oriented (c (4, 1)));
  check_true "not right" (not (Cst_comm.Comm.is_right_oriented (c (4, 1))))

let test_lo_hi_span () =
  let x = c (7, 2) in
  check_int "lo" 2 (Cst_comm.Comm.lo x);
  check_int "hi" 7 (Cst_comm.Comm.hi x);
  check_int "span" 5 (Cst_comm.Comm.span x)

let test_compare_order () =
  check_true "by src" (Cst_comm.Comm.compare (c (1, 9)) (c (2, 3)) < 0);
  check_true "then dst" (Cst_comm.Comm.compare (c (1, 3)) (c (1, 9)) < 0);
  check_int "equal" 0 (Cst_comm.Comm.compare (c (1, 3)) (c (1, 3)))

let test_nests_in () =
  check_true "inner in outer" (Cst_comm.Comm.nests_in (c (2, 3)) (c (1, 4)));
  check_true "not reversed" (not (Cst_comm.Comm.nests_in (c (1, 4)) (c (2, 3))));
  check_true "not disjoint" (not (Cst_comm.Comm.nests_in (c (5, 6)) (c (1, 4))));
  check_true "orientation-blind"
    (Cst_comm.Comm.nests_in (c (3, 2)) (c (4, 1)))

let test_crosses () =
  check_true "crossing" (Cst_comm.Comm.crosses (c (0, 2)) (c (1, 3)));
  check_true "symmetric" (Cst_comm.Comm.crosses (c (1, 3)) (c (0, 2)));
  check_true "nested do not cross" (not (Cst_comm.Comm.crosses (c (0, 3)) (c (1, 2))));
  check_true "disjoint do not cross" (not (Cst_comm.Comm.crosses (c (0, 1)) (c (2, 3))))

let test_disjoint () =
  check_true "disjoint" (Cst_comm.Comm.disjoint (c (0, 1)) (c (2, 3)));
  check_true "not nested" (not (Cst_comm.Comm.disjoint (c (0, 3)) (c (1, 2))));
  check_true "not crossing" (not (Cst_comm.Comm.disjoint (c (0, 2)) (c (1, 3))))

let test_trichotomy () =
  (* Any two endpoint-disjoint communications are exactly one of
     nested / crossing / disjoint. *)
  let pairs =
    [ (c (0, 3), c (1, 2)); (c (0, 2), c (1, 3)); (c (0, 1), c (2, 3)) ]
  in
  List.iter
    (fun (a, b) ->
      let nested =
        Cst_comm.Comm.nests_in a b || Cst_comm.Comm.nests_in b a
      in
      let states =
        [ nested; Cst_comm.Comm.crosses a b; Cst_comm.Comm.disjoint a b ]
      in
      check_int "exactly one relation" 1
        (List.length (List.filter Fun.id states)))
    pairs

let test_pp () =
  check_true "pp format" (Cst_comm.Comm.to_string (c (3, 8)) = "3->8")

let suite =
  [
    case "make valid" test_make_valid;
    case "make invalid" test_make_invalid;
    case "orientation" test_orientation;
    case "lo/hi/span" test_lo_hi_span;
    case "compare order" test_compare_order;
    case "nests_in" test_nests_in;
    case "crosses" test_crosses;
    case "disjoint" test_disjoint;
    case "relation trichotomy" test_trichotomy;
    case "pp" test_pp;
  ]

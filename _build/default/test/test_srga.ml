open Helpers
open Cst_srga

let test_grid_create () =
  let g = Grid.create ~rows:4 ~cols:8 in
  check_int "rows" 4 (Grid.rows g);
  check_int "cols" 8 (Grid.cols g);
  check_int "pes" 32 (Grid.pe_count g);
  check_int "trees" 12 (Grid.tree_count g);
  check_int "switches" (4 * 7 + 8 * 3) (Grid.switch_count g)

let test_grid_invalid () =
  check_raises_invalid "npot rows" (fun () -> Grid.create ~rows:3 ~cols:8);
  check_raises_invalid "tiny" (fun () -> Grid.create ~rows:1 ~cols:8)

let test_grid_indexing () =
  let g = Grid.create ~rows:4 ~cols:8 in
  check_int "index" 19 (Grid.index g ~row:2 ~col:3);
  check_true "coords" (Grid.coords g 19 = (2, 3));
  for id = 0 to Grid.pe_count g - 1 do
    let r, c = Grid.coords g id in
    check_int "round trip" id (Grid.index g ~row:r ~col:c)
  done;
  check_raises_invalid "bad row" (fun () -> Grid.index g ~row:4 ~col:0)

let test_topologies () =
  let g = Grid.create ~rows:4 ~cols:8 in
  check_int "row topo leaves" 8 (Cst.Topology.leaves (Grid.row_topology g));
  check_int "col topo leaves" 4 (Cst.Topology.leaves (Grid.col_topology g))

let test_row_schedule () =
  let g = Grid.create ~rows:4 ~cols:16 in
  let rng = Cst_util.Prng.create 5 in
  let sets =
    List.init 4 (fun i ->
        (i, Cst_workloads.Gen_wn.uniform rng ~n:16 ~density:0.8))
  in
  match Row_sched.schedule g ~axis:Grid.Row ~sets with
  | Error _ -> Alcotest.fail "should schedule"
  | Ok agg ->
      check_int "four trees" 4 (List.length agg.schedules);
      check_true "rounds is the max"
        (agg.rounds
        = List.fold_left
            (fun m (_, s) -> max m (Padr.Schedule.num_rounds s))
            0 agg.schedules);
      check_true "power adds up"
        (agg.power_units
        = List.fold_left
            (fun a (_, (s : Padr.Schedule.t)) -> a + s.power.total_connects)
            0 agg.schedules);
      List.iter
        (fun (_, s) -> check_verified s)
        agg.schedules

let test_col_schedule () =
  let g = Grid.create ~rows:8 ~cols:4 in
  let sets = [ (0, Cst_workloads.Gen_wn.pairs ~n:8) ] in
  match Row_sched.schedule g ~axis:Grid.Col ~sets with
  | Ok agg -> check_int "one round" 1 agg.rounds
  | Error _ -> Alcotest.fail "should schedule"

let test_row_schedule_error_reports_tree () =
  let g = Grid.create ~rows:4 ~cols:8 in
  let bad = set ~n:8 [ (0, 2); (1, 3) ] in
  match Row_sched.schedule g ~axis:Grid.Row ~sets:[ (2, bad) ] with
  | Error (2, Padr.Csa.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "expected error on tree 2"

let test_row_schedule_bad_index () =
  let g = Grid.create ~rows:4 ~cols:8 in
  check_raises_invalid "row out of range" (fun () ->
      ignore
        (Row_sched.schedule g ~axis:Grid.Row
           ~sets:[ (4, Cst_workloads.Gen_wn.pairs ~n:8) ]))

let test_shift_phase () =
  let g = Grid.create ~rows:4 ~cols:16 in
  let s = Row_sched.shift_phase g ~by:4 ~phase:1 in
  check_true "well-nested" (Cst_comm.Well_nested.is_well_nested s);
  check_int "width 1" 1 (Cst_comm.Width.width ~leaves:16 s);
  check_true "expected pairs"
    (Cst_comm.Comm_set.matching s = [ (1, 5); (9, 13) ]);
  check_raises_invalid "phase bound" (fun () ->
      Row_sched.shift_phase g ~by:4 ~phase:4)

let test_broadcast_from_zero () =
  let r = Broadcast.run ~n:16 ~origin:0 in
  check_int "log stages" 4 r.stages;
  check_int "everyone covered" 16 (List.length r.covered);
  check_true "covered is all PEs" (r.covered = List.init 16 Fun.id)

let test_broadcast_from_middle () =
  let r = Broadcast.run ~n:32 ~origin:13 in
  check_int "stages" 5 r.stages;
  check_int "covered" 32 (List.length r.covered);
  check_true "power positive" (r.power_units > 0)

let test_broadcast_all_origins () =
  for origin = 0 to 15 do
    let r = Broadcast.run ~n:16 ~origin in
    check_int
      (Printf.sprintf "origin %d covers all" origin)
      16
      (List.length (List.sort_uniq compare r.covered))
  done

let test_broadcast_plan_stages_width_one () =
  List.iter
    (fun stage ->
      check_int "width 1 per stage" 1 (Cst_comm.Width.width_auto stage))
    (Broadcast.plan ~n:32 ~origin:5)

let test_broadcast_invalid () =
  check_raises_invalid "npot" (fun () -> Broadcast.plan ~n:12 ~origin:0);
  check_raises_invalid "bad origin" (fun () -> Broadcast.plan ~n:8 ~origin:8)

let suite =
  [
    case "grid create" test_grid_create;
    case "grid invalid" test_grid_invalid;
    case "grid indexing" test_grid_indexing;
    case "topologies" test_topologies;
    case "row schedule" test_row_schedule;
    case "col schedule" test_col_schedule;
    case "row schedule error reports tree" test_row_schedule_error_reports_tree;
    case "row schedule bad index" test_row_schedule_bad_index;
    case "shift phase" test_shift_phase;
    case "broadcast from zero" test_broadcast_from_zero;
    case "broadcast from middle" test_broadcast_from_middle;
    case "broadcast all origins" test_broadcast_all_origins;
    case "broadcast stage widths" test_broadcast_plan_stages_width_one;
    case "broadcast invalid" test_broadcast_invalid;
  ]

test/test_comm.ml: Cst_comm Fun Helpers List

test/test_compat.ml: Array Cst Cst_comm Cst_util Helpers List

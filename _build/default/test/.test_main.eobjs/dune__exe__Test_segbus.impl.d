test/test_segbus.ml: Alcotest Cst_comm Cst_util Cst_workloads Format Helpers List Padr Segbus String

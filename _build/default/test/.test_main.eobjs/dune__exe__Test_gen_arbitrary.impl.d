test/test_gen_arbitrary.ml: Array Cst_comm Cst_util Cst_workloads Helpers List

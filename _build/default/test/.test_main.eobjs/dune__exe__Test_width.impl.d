test/test_width.ml: Array Cst_comm Cst_util Helpers

test/test_power.ml: Array Cst Cst_baselines Cst_comm Cst_util Cst_workloads Float Helpers List Padr Printf

test/test_workloads.ml: Cst_comm Cst_util Cst_workloads Helpers List Padr Printf String

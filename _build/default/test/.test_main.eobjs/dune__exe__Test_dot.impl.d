test/test_dot.ml: Array Cst Filename Helpers String Sys

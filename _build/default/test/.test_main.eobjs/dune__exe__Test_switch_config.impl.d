test/test_switch_config.ml: Cst Format Helpers List Side Switch_config

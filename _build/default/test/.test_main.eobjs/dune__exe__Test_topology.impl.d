test/test_topology.ml: Cst Helpers List QCheck QCheck_alcotest

test/test_waves.ml: Cst_comm Cst_util Cst_workloads Format Helpers List Padr QCheck QCheck_alcotest String

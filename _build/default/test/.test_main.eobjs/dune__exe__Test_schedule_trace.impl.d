test/test_schedule_trace.ml: Array Cst Format Helpers List Padr String

test/test_report_extras.ml: Alcotest Cst_comm Cst_report Cst_util Cst_workloads Float Helpers List Padr String

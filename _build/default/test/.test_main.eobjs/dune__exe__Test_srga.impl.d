test/test_srga.ml: Alcotest Broadcast Cst Cst_comm Cst_srga Cst_util Cst_workloads Fun Grid Helpers List Padr Printf Row_sched

test/test_phase1.ml: Array Cst Cst_comm Cst_util Format Helpers Padr Printf

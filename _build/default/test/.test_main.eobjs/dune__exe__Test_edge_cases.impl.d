test/test_edge_cases.ml: Alcotest Cst Cst_algos Cst_comm Cst_srga Cst_util Cst_workloads Helpers List Padr

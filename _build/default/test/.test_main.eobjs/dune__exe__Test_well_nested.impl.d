test/test_well_nested.ml: Alcotest Cst_comm Helpers List

test/test_wn_cover.ml: Array Cst_comm Cst_util Cst_workloads Helpers List Printf QCheck QCheck_alcotest

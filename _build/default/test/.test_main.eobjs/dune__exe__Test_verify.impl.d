test/test_verify.ml: Array Cst Cst_baselines Format Helpers List Padr String

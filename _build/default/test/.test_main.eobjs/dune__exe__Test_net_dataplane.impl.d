test/test_net_dataplane.ml: Cst Data_plane Helpers List Net Power_meter Side Switch_config

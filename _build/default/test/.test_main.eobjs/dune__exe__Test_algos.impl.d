test/test_algos.ml: Array Cst_algos Cst_comm Cst_util Cst_workloads Helpers List Printf QCheck QCheck_alcotest

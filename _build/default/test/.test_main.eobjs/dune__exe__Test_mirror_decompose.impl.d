test/test_mirror_decompose.ml: Array Cst_comm Helpers List

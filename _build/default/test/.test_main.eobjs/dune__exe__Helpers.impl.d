test/helpers.ml: Alcotest Cst Cst_comm Cst_util Cst_workloads List Padr QCheck QCheck_alcotest String

test/test_prng.ml: Array Cst_util Helpers

test/test_invariants.ml: Cst Cst_comm Cst_util Cst_workloads Format Helpers List Padr String

test/test_csa.ml: Alcotest Array Cst Cst_comm Cst_workloads Format Helpers List Padr

test/test_sim.ml: Alcotest Cst_baselines Cst_sim Cst_util Cst_workloads Helpers List Printf Runner Traffic

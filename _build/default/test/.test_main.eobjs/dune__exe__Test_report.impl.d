test/test_report.ml: Cst_report Filename Helpers List String Sys

test/test_round.ml: Cst Cst_comm Helpers Padr

test/test_sort_matvec.ml: Array Cst_algos Cst_srga Cst_util Helpers Printf QCheck QCheck_alcotest

test/test_engine.ml: Alcotest Array Helpers List Padr

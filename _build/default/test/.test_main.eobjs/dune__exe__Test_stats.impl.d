test/test_stats.ml: Array Cst_util Float Helpers

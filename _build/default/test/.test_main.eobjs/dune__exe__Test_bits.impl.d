test/test_bits.ml: Cst_util Helpers List QCheck QCheck_alcotest

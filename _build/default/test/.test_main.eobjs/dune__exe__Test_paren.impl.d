test/test_paren.ml: Alcotest Cst_comm Helpers Result

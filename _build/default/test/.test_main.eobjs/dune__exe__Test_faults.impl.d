test/test_faults.ml: Cst Cst_comm Format Helpers List Padr String

test/test_baselines.ml: Array Cst Cst_baselines Cst_comm Cst_util Cst_workloads Helpers List Padr Printf String

test/test_csa_prop.ml: Array Cst Cst_comm Cst_util Helpers List Padr

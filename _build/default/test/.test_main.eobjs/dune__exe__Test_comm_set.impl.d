test/test_comm_set.ml: Alcotest Array Cst_comm Helpers Result

test/test_left.ml: Alcotest Array Cst Cst_comm Cst_util Cst_workloads Helpers List Padr Printf String

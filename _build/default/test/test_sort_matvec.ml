open Helpers

let test_sort_small () =
  let sorted, stats = Cst_algos.Sort.run [| 4; 2; 7; 1 |] in
  check_true "sorted" (sorted = [| 1; 2; 4; 7 |]);
  check_int "2n supersteps" 8 stats.supersteps

let test_sort_already_sorted () =
  let a = Array.init 16 (fun i -> i) in
  let sorted, _ = Cst_algos.Sort.run a in
  check_true "unchanged" (sorted = a)

let test_sort_reverse () =
  let a = Array.init 32 (fun i -> 31 - i) in
  let sorted, _ = Cst_algos.Sort.run a in
  check_true "reversed worst case" (sorted = Array.init 32 (fun i -> i))

let test_sort_duplicates () =
  let sorted, _ = Cst_algos.Sort.run [| 3; 1; 3; 1; 2; 2; 0; 3 |] in
  check_true "stable multiset" (sorted = [| 0; 1; 1; 2; 2; 3; 3; 3 |])

let test_sort_invalid () =
  check_raises_invalid "npot" (fun () -> Cst_algos.Sort.run (Array.make 6 0));
  check_raises_invalid "singleton" (fun () -> Cst_algos.Sort.run [| 1 |])

let test_sort_power_constant () =
  (* Only two alternating configurations are ever needed: per-switch
     connects stay constant although the sort takes 2n supersteps. *)
  let rng = Cst_util.Prng.create 55 in
  let a = Array.init 64 (fun _ -> Cst_util.Prng.int rng 1000) in
  let sorted, stats = Cst_algos.Sort.run a in
  check_true "sorted" (Cst_algos.Sort.is_sorted sorted);
  check_true
    (Printf.sprintf "constant per-switch connects (%d)"
       stats.power.max_connects_per_switch)
    (stats.power.max_connects_per_switch <= 8)

let prop_sort_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"sort equals Array.sort"
       QCheck.(pair (int_range 1 5) (int_bound 100000))
       (fun (exp, seed) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create seed in
         let a = Array.init n (fun _ -> Cst_util.Prng.int_in rng (-100) 100) in
         let expect = Array.copy a in
         Array.sort compare expect;
         fst (Cst_algos.Sort.run a) = expect))

let test_bitonic_small () =
  let sorted, stats = Cst_algos.Sort.bitonic [| 4; 2; 7; 1 |] in
  check_true "sorted" (sorted = [| 1; 2; 4; 7 |]);
  (* log2(4)*(log2(4)+1)/2 = 3 compare stages, two supersteps each *)
  check_int "supersteps" 6 stats.supersteps

let test_bitonic_reverse () =
  let a = Array.init 64 (fun i -> 63 - i) in
  let sorted, stats = Cst_algos.Sort.bitonic a in
  check_true "sorted" (sorted = Array.init 64 (fun i -> i));
  (* stride-j stages are crossing sets: more waves than supersteps *)
  check_true "crossing patterns cost extra waves"
    (stats.waves > stats.supersteps)

let prop_bitonic_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"bitonic sort equals Array.sort"
       QCheck.(pair (int_range 1 5) (int_bound 100000))
       (fun (exp, seed) ->
         let n = 1 lsl exp in
         let rng = Cst_util.Prng.create (seed + 7 * exp) in
         let a = Array.init n (fun _ -> Cst_util.Prng.int_in rng (-99) 99) in
         let expect = Array.copy a in
         Array.sort compare expect;
         fst (Cst_algos.Sort.bitonic a) = expect))

let test_matvec_small () =
  let grid = Cst_srga.Grid.create ~rows:2 ~cols:4 in
  let a = [| [| 1; 2; 3; 4 |]; [| 5; 6; 7; 8 |] |] in
  let x = [| 1; 0; 2; 1 |] in
  let y, stats = Cst_srga.Matvec.run grid ~a ~x in
  check_true "product" (y = Cst_srga.Matvec.reference ~a ~x);
  check_true "product values" (y = [| 11; 27 |]);
  check_true "rounds counted" (stats.rounds > 0)

let test_matvec_identity () =
  let grid = Cst_srga.Grid.create ~rows:4 ~cols:4 in
  let a = Array.init 4 (fun r -> Array.init 4 (fun c -> if r = c then 1 else 0)) in
  let x = [| 9; 8; 7; 6 |] in
  let y, _ = Cst_srga.Matvec.run grid ~a ~x in
  check_true "identity" (y = x)

let test_matvec_random () =
  let rng = Cst_util.Prng.create 31 in
  let grid = Cst_srga.Grid.create ~rows:8 ~cols:16 in
  for _ = 1 to 5 do
    let a =
      Array.init 8 (fun _ ->
          Array.init 16 (fun _ -> Cst_util.Prng.int_in rng (-9) 9))
    in
    let x = Array.init 16 (fun _ -> Cst_util.Prng.int_in rng (-9) 9) in
    let y, _ = Cst_srga.Matvec.run grid ~a ~x in
    check_true "matches reference" (y = Cst_srga.Matvec.reference ~a ~x)
  done

let test_matvec_shape_errors () =
  let grid = Cst_srga.Grid.create ~rows:2 ~cols:4 in
  check_raises_invalid "matrix shape" (fun () ->
      Cst_srga.Matvec.run grid ~a:[| [| 1; 2 |] |] ~x:[| 1; 2; 3; 4 |]);
  check_raises_invalid "vector length" (fun () ->
      Cst_srga.Matvec.run grid
        ~a:[| [| 1; 2; 3; 4 |]; [| 1; 2; 3; 4 |] |]
        ~x:[| 1 |])

let suite =
  [
    case "sort small" test_sort_small;
    case "sort already sorted" test_sort_already_sorted;
    case "sort reverse" test_sort_reverse;
    case "sort duplicates" test_sort_duplicates;
    case "sort invalid" test_sort_invalid;
    case "sort power constant" test_sort_power_constant;
    prop_sort_random;
    case "bitonic small" test_bitonic_small;
    case "bitonic reverse" test_bitonic_reverse;
    prop_bitonic_random;
    case "matvec small" test_matvec_small;
    case "matvec identity" test_matvec_identity;
    case "matvec random" test_matvec_random;
    case "matvec shape errors" test_matvec_shape_errors;
  ]

open Helpers

let t8 = topo 8

let test_none () =
  check_int "no faults" 0 (Cst.Faults.count Cst.Faults.none);
  check_true "everything routable"
    (Cst.Faults.routable t8 Cst.Faults.none (comm (0, 7)))

let test_fail_blocks_path () =
  (* (0,7) climbs through node 2's up link. *)
  let f = Cst.Faults.fail Cst.Faults.none ~node:2 ~dir:Cst.Compat.Up in
  check_true "blocked" (not (Cst.Faults.routable t8 f (comm (0, 7))));
  check_true "reverse unaffected" (Cst.Faults.routable t8 f (comm (7, 0)));
  check_true "local traffic unaffected" (Cst.Faults.routable t8 f (comm (0, 3)))

let test_direction_matters () =
  let f = Cst.Faults.fail Cst.Faults.none ~node:3 ~dir:Cst.Compat.Down in
  check_true "down blocked" (not (Cst.Faults.routable t8 f (comm (0, 7))));
  check_true "up through 3 fine" (Cst.Faults.routable t8 f (comm (4, 2)))

let test_partition () =
  let f = Cst.Faults.fail Cst.Faults.none ~node:2 ~dir:Cst.Compat.Up in
  let s = set ~n:8 [ (0, 7); (1, 2); (4, 5) ] in
  let ok, stranded = Cst.Faults.partition t8 f s in
  check_int "two routable" 2 (Cst_comm.Comm_set.size ok);
  check_int "one stranded" 1 (List.length stranded);
  check_true "the long haul is stranded"
    (match stranded with [ c ] -> Cst_comm.Comm.equal c (comm (0, 7)) | _ -> false)

let test_partition_schedulable () =
  (* The routable part still schedules and verifies. *)
  let f = Cst.Faults.fail Cst.Faults.none ~node:2 ~dir:Cst.Compat.Up in
  let s = set ~n:8 [ (0, 7); (1, 2); (4, 5) ] in
  let ok, _ = Cst.Faults.partition t8 f s in
  check_verified (Padr.schedule_exn ok)

let test_is_down_and_pp () =
  let f =
    Cst.Faults.fail
      (Cst.Faults.fail Cst.Faults.none ~node:2 ~dir:Cst.Compat.Up)
      ~node:5 ~dir:Cst.Compat.Down
  in
  check_true "down" (Cst.Faults.is_down f ~node:2 ~dir:Cst.Compat.Up);
  check_true "not down" (not (Cst.Faults.is_down f ~node:2 ~dir:Cst.Compat.Down));
  check_int "count" 2 (Cst.Faults.count f);
  check_true "pp" (String.length (Format.asprintf "%a" Cst.Faults.pp f) > 5)

let test_total_failure () =
  (* Every leaf's up link down: nothing routes. *)
  let f = ref Cst.Faults.none in
  for node = 8 to 15 do
    f := Cst.Faults.fail !f ~node ~dir:Cst.Compat.Up
  done;
  let s = set ~n:8 [ (0, 7); (1, 2); (4, 5) ] in
  let ok, stranded = Cst.Faults.partition t8 !f s in
  check_int "nothing routable" 0 (Cst_comm.Comm_set.size ok);
  check_int "all stranded" 3 (List.length stranded)

let suite =
  [
    case "none" test_none;
    case "fail blocks path" test_fail_blocks_path;
    case "direction matters" test_direction_matters;
    case "partition" test_partition;
    case "partition schedulable" test_partition_schedulable;
    case "is_down and pp" test_is_down_and_pp;
    case "total failure" test_total_failure;
  ]

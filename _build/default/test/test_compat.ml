open Helpers

let t8 = topo 8

let test_footprint () =
  let fp = Cst.Compat.link_footprint t8 (comm (0, 7)) in
  check_int "six links" 6 (List.length fp);
  check_true "uses leaf up" (List.mem (8, Cst.Compat.Up) fp);
  check_true "uses spine up" (List.mem (2, Cst.Compat.Up) fp);
  check_true "uses down to 3" (List.mem (3, Cst.Compat.Down) fp);
  check_true "uses leaf down" (List.mem (15, Cst.Compat.Down) fp)

let test_footprint_neighbors () =
  let fp = Cst.Compat.link_footprint t8 (comm (0, 1)) in
  check_true "two links" (List.length fp = 2);
  check_true "up then down"
    (List.mem (8, Cst.Compat.Up) fp && List.mem (9, Cst.Compat.Down) fp)

let test_footprint_left_oriented () =
  let fp = Cst.Compat.link_footprint t8 (comm (1, 0)) in
  check_true "reverse direction"
    (List.mem (9, Cst.Compat.Up) fp && List.mem (8, Cst.Compat.Down) fp)

let test_conflict_nested_at_root () =
  (* (0,3) and (1,2) on 4 leaves share the up link into the root. *)
  let t4 = topo 4 in
  check_true "conflict" (Cst.Compat.conflict t4 (comm (0, 3)) (comm (1, 2)))

let test_no_conflict_disjoint () =
  check_true "disjoint compatible"
    (not (Cst.Compat.conflict t8 (comm (0, 1)) (comm (2, 3))))

let test_no_conflict_nested_but_separate () =
  (* (0,7) and (2,3): nested intervals, disjoint link sets. *)
  check_true "no shared link"
    (not (Cst.Compat.conflict t8 (comm (0, 7)) (comm (2, 3))))

let test_opposite_directions_ok () =
  (* (0,3) right and (2,1)? both right-oriented variants that share an
     edge in opposite directions: (0,2) uses down into [2,3]; (3,5)? keep
     simple: a right and a left communication over the same span. *)
  check_true "opposite directions compatible"
    (not (Cst.Compat.conflict t8 (comm (0, 2)) (comm (3, 1))))

let test_is_compatible () =
  check_true "round is compatible"
    (Cst.Compat.is_compatible t8 [ comm (0, 7); comm (2, 3) ]);
  check_true "conflicting round"
    (not (Cst.Compat.is_compatible t8 [ comm (0, 7); comm (1, 6) ]))

let test_max_congestion () =
  check_int "onion congestion" 4
    (Cst.Compat.max_congestion t8
       [ comm (0, 7); comm (1, 6); comm (2, 5); comm (3, 4) ]);
  check_int "empty" 0 (Cst.Compat.max_congestion t8 [])

let prop_congestion_matches_width =
  prop "max_congestion agrees with Width" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      Cst.Compat.max_congestion t (Array.to_list (Cst_comm.Comm_set.comms s))
      = Cst_comm.Width.width ~leaves s)

let prop_footprint_alternation =
  prop "footprints climb then descend" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      Array.for_all
        (fun c ->
          let fp = Cst.Compat.link_footprint t c in
          (* length = hops from both leaves to the LCA *)
          List.length fp >= 2
          && List.exists (fun (_, d) -> d = Cst.Compat.Up) fp
          && List.exists (fun (_, d) -> d = Cst.Compat.Down) fp)
        (Cst_comm.Comm_set.comms s)
      || Cst_comm.Comm_set.size s = 0)

let suite =
  [
    case "footprint of a long path" test_footprint;
    case "footprint of neighbors" test_footprint_neighbors;
    case "footprint left-oriented" test_footprint_left_oriented;
    case "conflict: nested at root" test_conflict_nested_at_root;
    case "no conflict: disjoint" test_no_conflict_disjoint;
    case "no conflict: nested but separate" test_no_conflict_nested_but_separate;
    case "opposite directions ok" test_opposite_directions_ok;
    case "is_compatible" test_is_compatible;
    case "max congestion" test_max_congestion;
    prop_congestion_matches_width;
    prop_footprint_alternation;
  ]

open Helpers

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_topology_export () =
  let txt = Cst.Dot.of_topology (topo 8) in
  check_true "digraph" (contains ~sub:"digraph cst" txt);
  check_true "root node" (contains ~sub:"n1 [shape=circle" txt);
  check_true "a PE" (contains ~sub:"pe7 [shape=box" txt);
  check_true "a tree link" (contains ~sub:"n1 -> n2" txt);
  check_true "leaf link" (contains ~sub:"n4 -> pe0" txt);
  check_true "closed" (String.length txt > 2 && contains ~sub:"}" txt)

let test_net_export_paths () =
  let s = schedule ~n:8 [ (0, 7) ] in
  let net = Cst.Net.create (topo 8) in
  Array.iter
    (fun (node, cfg) -> Cst.Net.reconfigure net ~node cfg)
    s.rounds.(0).configs;
  let txt = Cst.Dot.of_net net in
  check_true "xlabel for a live connection" (contains ~sub:"xlabel=\"L>" txt);
  check_true "path from source" (contains ~sub:"pe0 -> n4" txt);
  check_true "path to destination" (contains ~sub:"-> pe7" txt);
  check_true "colored" (contains ~sub:"color=red" txt)

let test_net_export_idle () =
  let txt = Cst.Dot.of_net (Cst.Net.create (topo 8)) in
  check_true "no realized path" (not (contains ~sub:"penwidth=2" txt))

let test_write_file () =
  let path = Filename.temp_file "cstdot" ".dot" in
  Cst.Dot.write_file ~path (Cst.Dot.of_topology (topo 4));
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  check_true "written" (contains ~sub:"digraph" first)

let suite =
  [
    case "topology export" test_topology_export;
    case "net export paths" test_net_export_paths;
    case "net export idle" test_net_export_idle;
    case "write file" test_write_file;
  ]

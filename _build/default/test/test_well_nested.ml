open Helpers

let test_accepts_well_nested () =
  check_true "nested" (Cst_comm.Well_nested.is_well_nested (set ~n:8 [ (0, 7); (1, 2); (3, 4) ]));
  check_true "empty" (Cst_comm.Well_nested.is_well_nested (set ~n:4 []));
  check_true "single" (Cst_comm.Well_nested.is_well_nested (set ~n:4 [ (1, 2) ]))

let test_rejects_crossing () =
  match Cst_comm.Well_nested.check (set ~n:8 [ (0, 2); (1, 3) ]) with
  | Error (Cst_comm.Well_nested.Crossing (a, b)) ->
      check_true "witness pair"
        (Cst_comm.Comm.crosses a b)
  | _ -> Alcotest.fail "expected a crossing violation"

let test_rejects_left_oriented () =
  match Cst_comm.Well_nested.check (set ~n:8 [ (0, 7); (5, 3) ]) with
  | Error (Cst_comm.Well_nested.Not_right_oriented c) ->
      check_int "witness src" 5 c.src
  | _ -> Alcotest.fail "expected a not-right-oriented violation"

let test_forest_structure () =
  let s = set ~n:10 [ (0, 9); (1, 4); (2, 3); (5, 8); (6, 7) ] in
  match Cst_comm.Well_nested.check s with
  | Error _ -> Alcotest.fail "should be well-nested"
  | Ok f ->
      (* comm indices are sorted by source: 0:(0,9) 1:(1,4) 2:(2,3)
         3:(5,8) 4:(6,7) *)
      check_true "roots" (Cst_comm.Nest_forest.roots f = [ 0 ]);
      check_true "children of 0" (Cst_comm.Nest_forest.children f 0 = [ 1; 3 ]);
      check_true "children of 1" (Cst_comm.Nest_forest.children f 1 = [ 2 ]);
      check_true "parent of 4" (Cst_comm.Nest_forest.parent f 4 = Some 3);
      check_true "parent of root" (Cst_comm.Nest_forest.parent f 0 = None);
      check_int "depth of 2" 3 (Cst_comm.Nest_forest.depth f 2);
      check_int "max depth" 3 (Cst_comm.Nest_forest.max_depth f)

let test_forest_flat () =
  let s = set ~n:8 [ (0, 1); (2, 3); (4, 5) ] in
  match Cst_comm.Well_nested.check s with
  | Error _ -> Alcotest.fail "should be well-nested"
  | Ok f ->
      check_true "all roots" (Cst_comm.Nest_forest.roots f = [ 0; 1; 2 ]);
      check_int "max depth" 1 (Cst_comm.Nest_forest.max_depth f)

let test_forest_dfs () =
  let s = set ~n:10 [ (0, 9); (1, 4); (2, 3); (5, 8); (6, 7) ] in
  match Cst_comm.Well_nested.check s with
  | Error _ -> Alcotest.fail "well-nested"
  | Ok f ->
      let order = ref [] in
      Cst_comm.Nest_forest.iter_dfs f (fun i -> order := i :: !order);
      check_true "preorder" (List.rev !order = [ 0; 1; 2; 3; 4 ])

let test_forest_empty () =
  match Cst_comm.Well_nested.check (set ~n:4 []) with
  | Ok f ->
      check_int "size" 0 (Cst_comm.Nest_forest.size f);
      check_int "depth" 0 (Cst_comm.Nest_forest.max_depth f)
  | Error _ -> Alcotest.fail "empty set is well-nested"

let test_crossing_pairs () =
  let s = set ~n:8 [ (0, 2); (1, 3); (4, 6) ] in
  let pairs = Cst_comm.Well_nested.crossing_pairs s in
  check_int "one crossing" 1 (List.length pairs)

let test_nest_forest_rejects_crossing () =
  check_raises_invalid "crossing" (fun () ->
      Cst_comm.Nest_forest.build (set ~n:8 [ (0, 2); (1, 3) ]))

let prop_generated_sets_pass =
  prop "generated sets are well-nested" (fun params ->
      Cst_comm.Well_nested.is_well_nested (set_of_params params))

let prop_depth_bounds_width =
  prop "width <= max nesting depth" (fun params ->
      let s = set_of_params params in
      match Cst_comm.Well_nested.check s with
      | Error _ -> false
      | Ok f ->
          Cst_comm.Width.width_auto s <= max 1 (Cst_comm.Nest_forest.max_depth f)
          || Cst_comm.Comm_set.size s = 0)

let suite =
  [
    case "accepts well-nested" test_accepts_well_nested;
    case "rejects crossing" test_rejects_crossing;
    case "rejects left-oriented" test_rejects_left_oriented;
    case "forest structure" test_forest_structure;
    case "forest flat" test_forest_flat;
    case "forest dfs" test_forest_dfs;
    case "forest empty" test_forest_empty;
    case "crossing pairs" test_crossing_pairs;
    case "nest forest rejects crossing" test_nest_forest_rejects_crossing;
    prop_generated_sets_pass;
    prop_depth_bounds_width;
  ]

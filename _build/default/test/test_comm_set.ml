open Helpers

let test_create_valid () =
  let s = set ~n:8 [ (0, 3); (4, 5) ] in
  check_int "n" 8 (Cst_comm.Comm_set.n s);
  check_int "size" 2 (Cst_comm.Comm_set.size s)

let test_create_sorted () =
  let s = set ~n:8 [ (4, 5); (0, 3) ] in
  let cs = Cst_comm.Comm_set.comms s in
  check_int "first src" 0 cs.(0).src;
  check_int "second src" 4 cs.(1).src

let test_out_of_range () =
  match Cst_comm.Comm_set.create ~n:4 [ comm (0, 7) ] with
  | Error (Cst_comm.Comm_set.Out_of_range _) -> ()
  | _ -> Alcotest.fail "expected Out_of_range"

let test_shared_endpoint () =
  match Cst_comm.Comm_set.create ~n:8 [ comm (0, 3); comm (3, 5) ] with
  | Error (Cst_comm.Comm_set.Shared_endpoint 3) -> ()
  | _ -> Alcotest.fail "expected Shared_endpoint 3"

let test_shared_source () =
  match Cst_comm.Comm_set.create ~n:8 [ comm (0, 3); comm (0, 5) ] with
  | Error (Cst_comm.Comm_set.Shared_endpoint 0) -> ()
  | _ -> Alcotest.fail "expected Shared_endpoint 0"

let test_roles () =
  let s = set ~n:6 [ (1, 4) ] in
  (match Cst_comm.Comm_set.role_of s 1 with
  | Cst_comm.Comm_set.Source 0 -> ()
  | _ -> Alcotest.fail "PE 1 should be source of comm 0");
  (match Cst_comm.Comm_set.role_of s 4 with
  | Cst_comm.Comm_set.Dest 0 -> ()
  | _ -> Alcotest.fail "PE 4 should be dest of comm 0");
  match Cst_comm.Comm_set.role_of s 0 with
  | Cst_comm.Comm_set.Idle -> ()
  | _ -> Alcotest.fail "PE 0 should be idle"

let test_matching () =
  let s = set ~n:8 [ (4, 5); (0, 3) ] in
  check_true "sorted matching"
    (Cst_comm.Comm_set.matching s = [ (0, 3); (4, 5) ])

let test_mem () =
  let s = set ~n:8 [ (0, 3) ] in
  check_true "member" (Cst_comm.Comm_set.mem s (comm (0, 3)));
  check_true "not member" (not (Cst_comm.Comm_set.mem s (comm (0, 4))))

let test_orientation_tests () =
  check_true "right" (Cst_comm.Comm_set.is_right_oriented (set ~n:8 [ (0, 1); (2, 7) ]));
  check_true "left" (Cst_comm.Comm_set.is_left_oriented (set ~n:8 [ (1, 0); (7, 2) ]));
  let mixed = set ~n:8 [ (0, 1); (7, 2) ] in
  check_true "mixed is neither"
    ((not (Cst_comm.Comm_set.is_right_oriented mixed))
    && not (Cst_comm.Comm_set.is_left_oriented mixed))

let test_empty_set () =
  let s = Cst_comm.Comm_set.empty ~n:4 in
  check_int "size" 0 (Cst_comm.Comm_set.size s);
  check_true "empty is both orientations"
    (Cst_comm.Comm_set.is_right_oriented s
    && Cst_comm.Comm_set.is_left_oriented s)

let test_union () =
  let a = set ~n:8 [ (0, 1) ] and b = set ~n:8 [ (2, 3) ] in
  (match Cst_comm.Comm_set.union a b with
  | Ok u -> check_int "union size" 2 (Cst_comm.Comm_set.size u)
  | Error _ -> Alcotest.fail "union should succeed");
  let clash = set ~n:8 [ (1, 4) ] in
  match Cst_comm.Comm_set.union a clash with
  | Error (Cst_comm.Comm_set.Shared_endpoint 1) -> ()
  | _ -> Alcotest.fail "expected clash on PE 1"

let test_filter () =
  let s = set ~n:8 [ (0, 1); (2, 7) ] in
  let f = Cst_comm.Comm_set.filter s (fun c -> Cst_comm.Comm.span c > 1) in
  check_int "filtered size" 1 (Cst_comm.Comm_set.size f);
  check_int "kept n" 8 (Cst_comm.Comm_set.n f)

let test_string_round_trip () =
  let s = set ~n:16 [ (0, 15); (3, 4); (7, 10) ] in
  match Cst_comm.Comm_set.of_string (Cst_comm.Comm_set.to_string s) with
  | Ok s' -> check_true "round trip" (Cst_comm.Comm_set.equal s s')
  | Error e -> Alcotest.fail e

let test_of_string_comments () =
  match Cst_comm.Comm_set.of_string "# comment\nn 8\n\n0 3 # inline\n4 5\n" with
  | Ok s -> check_int "parsed" 2 (Cst_comm.Comm_set.size s)
  | Error e -> Alcotest.fail e

let test_of_string_errors () =
  check_true "missing header"
    (Result.is_error (Cst_comm.Comm_set.of_string "0 3\n"));
  check_true "bad line"
    (Result.is_error (Cst_comm.Comm_set.of_string "n 8\nfoo bar\n"));
  check_true "self loop"
    (Result.is_error (Cst_comm.Comm_set.of_string "n 8\n3 3\n"));
  check_true "out of range"
    (Result.is_error (Cst_comm.Comm_set.of_string "n 4\n0 9\n"))

let suite =
  [
    case "create valid" test_create_valid;
    case "create sorts" test_create_sorted;
    case "out of range" test_out_of_range;
    case "shared endpoint" test_shared_endpoint;
    case "shared source" test_shared_source;
    case "roles" test_roles;
    case "matching" test_matching;
    case "mem" test_mem;
    case "orientation" test_orientation_tests;
    case "empty set" test_empty_set;
    case "union" test_union;
    case "filter" test_filter;
    case "string round trip" test_string_round_trip;
    case "of_string comments" test_of_string_comments;
    case "of_string errors" test_of_string_errors;
  ]

open Helpers

let left_set ~n pairs = set ~n pairs

let test_simple_left () =
  let s = left_set ~n:8 [ (7, 0); (2, 1); (4, 3) ] in
  let sched = Padr.Left.run_exn (topo 8) s in
  check_true "deliveries"
    (Padr.Schedule.all_deliveries sched = Cst_comm.Comm_set.matching s);
  check_int "width rounds" (Cst_comm.Width.width ~leaves:8 s)
    (Padr.Schedule.num_rounds sched)

let test_rejects_right_oriented () =
  match Padr.Left.run (topo 8) (left_set ~n:8 [ (0, 7) ]) with
  | Error (Padr.Csa.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_rejects_crossing () =
  match Padr.Left.run (topo 8) (left_set ~n:8 [ (2, 0); (3, 1) ]) with
  | Error (Padr.Csa.Not_well_nested (Cst_comm.Well_nested.Crossing _)) -> ()
  | _ -> Alcotest.fail "expected crossing rejection"

let test_left_onion () =
  (* the mirrored full onion: outermost (n-1, 0) scheduled first *)
  let n = 16 in
  let s =
    left_set ~n (List.init (n / 2) (fun i -> (n - 1 - i, i)))
  in
  let sched = Padr.Left.run_exn (topo n) s in
  check_int "n/2 rounds" (n / 2) (Padr.Schedule.num_rounds sched);
  check_true "outermost first"
    (sched.rounds.(0).deliveries = [ (n - 1, 0) ])

let mirror_of_schedule (s : Padr.Schedule.t) =
  (* reflect a right-oriented schedule's deliveries into left coords *)
  let n = Cst_comm.Comm_set.n s.set in
  List.map
    (fun (a, b) -> (Cst_comm.Mirror.pe ~n a, Cst_comm.Mirror.pe ~n b))
    (Padr.Schedule.all_deliveries s)
  |> List.sort compare

let test_equivalent_to_mirroring () =
  let rng = Cst_util.Prng.create 21 in
  for _ = 1 to 25 do
    let n = 1 lsl (2 + Cst_util.Prng.int rng 6) in
    let right = Cst_workloads.Gen_wn.uniform rng ~n ~density:0.7 in
    let left = Cst_comm.Mirror.set right in
    let t = topo n in
    let via_native = Padr.Left.run_exn t left in
    let via_mirror = Padr.Csa.run_exn t right in
    check_int "same rounds"
      (Padr.Schedule.num_rounds via_mirror)
      (Padr.Schedule.num_rounds via_native);
    check_true "reflected deliveries"
      (Padr.Schedule.all_deliveries via_native
      = mirror_of_schedule via_mirror);
    check_int "same total power" via_mirror.power.total_connects
      via_native.power.total_connects;
    check_int "same max per switch" via_mirror.power.max_connects_per_switch
      via_native.power.max_connects_per_switch;
    (* per-switch ledgers agree through the reflection *)
    let reflected =
      (Padr.Schedule.mirror_power t via_mirror.power).per_switch_connects
    in
    check_true "per-switch ledger reflects"
      (reflected = via_native.power.per_switch_connects)
  done

let test_per_round_reflection () =
  let right = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let left = Cst_comm.Mirror.set right in
  let nat = Padr.Left.run_exn (topo 8) left in
  let mir = Padr.Csa.run_exn (topo 8) right in
  Array.iteri
    (fun i (r : Padr.Schedule.round) ->
      let expected =
        List.map
          (fun (a, b) -> (Cst_comm.Mirror.pe ~n:8 a, Cst_comm.Mirror.pe ~n:8 b))
          mir.rounds.(i).deliveries
        |> List.sort compare
      in
      check_true
        (Printf.sprintf "round %d reflects" (i + 1))
        (List.sort compare r.deliveries = expected))
    nat.rounds

let test_shared_net () =
  let t = topo 8 in
  let s = left_set ~n:8 [ (7, 6); (3, 0) ] in
  let net = Cst.Net.create t in
  let first = Padr.Left.run_exn ~net t s in
  let second = Padr.Left.run_exn ~net t s in
  check_true "first pays" (first.power.total_connects > 0);
  check_int "rerun free" 0 second.power.total_connects

let test_verifies () =
  let s = left_set ~n:16 [ (15, 0); (6, 1); (3, 2); (13, 8) ] in
  let sched = Padr.Left.run_exn (topo 16) s in
  (* the generic verifier accepts left-oriented schedules too *)
  let report =
    Padr.Verify.schedule (topo 16) s sched
  in
  check_true ("verifier: " ^ String.concat ";" report.issues) report.ok

let suite =
  [
    case "simple left" test_simple_left;
    case "rejects right-oriented" test_rejects_right_oriented;
    case "rejects crossing" test_rejects_crossing;
    case "left onion" test_left_onion;
    case "equivalent to mirroring" test_equivalent_to_mirroring;
    case "per-round reflection" test_per_round_reflection;
    case "shared net" test_shared_net;
    case "verifies" test_verifies;
  ]

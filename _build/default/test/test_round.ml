open Helpers

let mk ~m ~sl ~dl ~sr ~dr = Padr.Csa_state.make ~m ~sl ~dl ~sr ~dr

let driver cfg side = Cst.Switch_config.driver cfg side

let test_null_with_matched () =
  let st = mk ~m:2 ~sl:1 ~dl:0 ~sr:0 ~dr:3 in
  let d = Padr.Round.configure st Padr.Downmsg.null in
  check_true "matched scheduled" d.scheduled_matched;
  check_true "l_i -> r_o" (driver d.config Cst.Side.R = Some Cst.Side.L);
  check_int "m decremented" 1 st.m;
  check_true "source request at sl" (d.to_left = Padr.Downmsg.s 1);
  check_true "dest request at dr" (d.to_right = Padr.Downmsg.d 3)

let test_null_without_matched () =
  let st = mk ~m:0 ~sl:2 ~dl:1 ~sr:0 ~dr:0 in
  let d = Padr.Round.configure st Padr.Downmsg.null in
  check_true "nothing scheduled" (not d.scheduled_matched);
  check_true "no connections" (Cst.Switch_config.is_empty d.config);
  check_true "children idle"
    (d.to_left = Padr.Downmsg.null && d.to_right = Padr.Downmsg.null);
  check_true "state untouched"
    (Padr.Csa_state.equal st (mk ~m:0 ~sl:2 ~dl:1 ~sr:0 ~dr:0))

let test_sreq_routes_left () =
  let st = mk ~m:1 ~sl:2 ~dl:0 ~sr:1 ~dr:0 in
  let d = Padr.Round.configure st (Padr.Downmsg.s 1) in
  check_true "l_i -> p_o" (driver d.config Cst.Side.P = Some Cst.Side.L);
  check_int "sl decremented" 1 st.sl;
  check_true "forwarded left" (d.to_left = Padr.Downmsg.s 1);
  check_true "right idle" (d.to_right = Padr.Downmsg.null);
  (* l_i is taken: the matched pair must wait. *)
  check_true "matched blocked" (not d.scheduled_matched);
  check_int "m intact" 1 st.m

let test_sreq_routes_right_and_matched_fires () =
  let st = mk ~m:1 ~sl:2 ~dl:0 ~sr:3 ~dr:1 in
  let d = Padr.Round.configure st (Padr.Downmsg.s 2) in
  check_true "r_i -> p_o" (driver d.config Cst.Side.P = Some Cst.Side.R);
  check_int "sr decremented" 2 st.sr;
  check_true "matched fires" d.scheduled_matched;
  check_true "l_i -> r_o too" (driver d.config Cst.Side.R = Some Cst.Side.L);
  (* right child gets the pass-through source (index 2 - sl = 0) and the
     matched destination (index dr = 1). *)
  check_true "right gets [s,d]" (d.to_right = Padr.Downmsg.sd 0 1);
  check_true "left gets matched source" (d.to_left = Padr.Downmsg.s 2)

let test_dreq_routes_right () =
  let st = mk ~m:0 ~sl:0 ~dl:1 ~sr:0 ~dr:2 in
  let d = Padr.Round.configure st (Padr.Downmsg.d 0) in
  check_true "p_i -> r_o" (driver d.config Cst.Side.R = Some Cst.Side.P);
  check_int "dr decremented" 1 st.dr;
  check_true "forwarded right" (d.to_right = Padr.Downmsg.d 0);
  check_true "left idle" (d.to_left = Padr.Downmsg.null)

let test_dreq_routes_left () =
  let st = mk ~m:0 ~sl:0 ~dl:2 ~sr:0 ~dr:1 in
  let d = Padr.Round.configure st (Padr.Downmsg.d 2) in
  check_true "p_i -> l_o" (driver d.config Cst.Side.L = Some Cst.Side.P);
  check_int "dl decremented" 1 st.dl;
  check_true "index shifted" (d.to_left = Padr.Downmsg.d 1)

let test_dreq_right_blocks_matched () =
  let st = mk ~m:1 ~sl:0 ~dl:0 ~sr:0 ~dr:1 in
  let d = Padr.Round.configure st (Padr.Downmsg.d 0) in
  check_true "matched blocked by r_o" (not d.scheduled_matched);
  check_int "m intact" 1 st.m

let test_dreq_left_allows_matched () =
  let st = mk ~m:1 ~sl:0 ~dl:1 ~sr:0 ~dr:0 in
  let d = Padr.Round.configure st (Padr.Downmsg.d 0) in
  check_true "matched fires" d.scheduled_matched;
  check_true "p_i -> l_o" (driver d.config Cst.Side.L = Some Cst.Side.P);
  check_true "l_i -> r_o" (driver d.config Cst.Side.R = Some Cst.Side.L);
  check_true "left gets [s,d]" (d.to_left = Padr.Downmsg.sd 0 0)

let test_sd_full_load () =
  (* Pass-through source to the right, pass-through dest to the left, own
     matched pair: all three outputs in use. *)
  let st = mk ~m:1 ~sl:0 ~dl:1 ~sr:1 ~dr:0 in
  let d = Padr.Round.configure st (Padr.Downmsg.sd 0 0) in
  check_true "matched fires" d.scheduled_matched;
  check_int "three connections" 3
    (Cst.Switch_config.connection_count d.config);
  check_true "left [s,d]" (d.to_left = Padr.Downmsg.sd 0 0);
  check_true "right [s,d]" (d.to_right = Padr.Downmsg.sd 0 0)

let test_sweep_marks_leaves () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let p1 = Padr.Phase1.run t s in
  let out = Padr.Round.sweep t p1.states in
  check_int "one comm scheduled" 1 out.matched_count;
  check_true "round 1 is the outermost" (out.sources = [ 0 ] && out.dests = [ 7 ]);
  let out2 = Padr.Round.sweep t p1.states in
  check_int "round 2 schedules the rest" 2 out2.matched_count;
  check_true "round 2 leaves" (out2.sources = [ 1; 3 ] && out2.dests = [ 2; 4 ]);
  let out3 = Padr.Round.sweep t p1.states in
  check_int "round 3 empty" 0 out3.matched_count

let test_sweep_drains_state () =
  let t = topo 16 in
  let s = set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13) ] in
  let p1 = Padr.Phase1.run t s in
  let total = ref 0 in
  for _ = 1 to Cst_comm.Width.width ~leaves:16 s do
    total := !total + (Padr.Round.sweep t p1.states).matched_count
  done;
  check_int "all scheduled" 5 !total;
  for node = 1 to 15 do
    check_true "drained" (Padr.Csa_state.is_drained (Padr.Phase1.state p1 node))
  done

let test_downmsg_shapes () =
  check_true "null" (Padr.Downmsg.shape Padr.Downmsg.null = "[null,null]");
  check_true "s" (Padr.Downmsg.shape (Padr.Downmsg.s 0) = "[s,null]");
  check_true "d" (Padr.Downmsg.shape (Padr.Downmsg.d 1) = "[d,null]");
  check_true "sd" (Padr.Downmsg.shape (Padr.Downmsg.sd 0 1) = "[s,d]");
  check_int "constant words" 4 (Padr.Downmsg.words Padr.Downmsg.null)

let suite =
  [
    case "[null,null] with matched" test_null_with_matched;
    case "[null,null] without matched" test_null_without_matched;
    case "[s] routes left" test_sreq_routes_left;
    case "[s] routes right, matched fires" test_sreq_routes_right_and_matched_fires;
    case "[d] routes right" test_dreq_routes_right;
    case "[d] routes left" test_dreq_routes_left;
    case "[d] right blocks matched" test_dreq_right_blocks_matched;
    case "[d] left allows matched" test_dreq_left_allows_matched;
    case "[s,d] full load" test_sd_full_load;
    case "sweep marks leaves" test_sweep_marks_leaves;
    case "sweep drains state" test_sweep_drains_state;
    case "downmsg shapes" test_downmsg_shapes;
  ]

open Helpers

let test_mirror_pe () =
  check_int "first" 7 (Cst_comm.Mirror.pe ~n:8 0);
  check_int "last" 0 (Cst_comm.Mirror.pe ~n:8 7);
  check_int "middle" 4 (Cst_comm.Mirror.pe ~n:8 3);
  check_raises_invalid "out of range" (fun () -> Cst_comm.Mirror.pe ~n:8 8)

let test_mirror_comm () =
  let m = Cst_comm.Mirror.comm ~n:8 (comm (1, 6)) in
  check_int "src" 6 m.src;
  check_int "dst" 1 m.dst;
  check_true "flips orientation" (Cst_comm.Comm.is_left_oriented m)

let test_mirror_set_involution () =
  let s = set ~n:16 [ (0, 15); (3, 4); (7, 10) ] in
  check_true "involution"
    (Cst_comm.Comm_set.equal s (Cst_comm.Mirror.set (Cst_comm.Mirror.set s)))

let test_mirror_preserves_well_nesting () =
  let s = set ~n:16 [ (0, 15); (1, 6); (2, 3) ] in
  let m = Cst_comm.Mirror.set s in
  check_true "left-oriented now" (Cst_comm.Comm_set.is_left_oriented m);
  (* mirroring back the orientations: flip each comm to check nesting *)
  let flipped =
    Cst_comm.Comm_set.create_exn ~n:16
      (Array.to_list (Cst_comm.Comm_set.comms m)
      |> List.map (fun (c : Cst_comm.Comm.t) ->
             Cst_comm.Comm.make ~src:c.dst ~dst:c.src))
  in
  check_true "still well-nested" (Cst_comm.Well_nested.is_well_nested flipped)

let test_mirror_preserves_width () =
  let s = set ~n:16 [ (0, 15); (1, 6); (2, 3); (8, 13) ] in
  check_int "width invariant"
    (Cst_comm.Width.width ~leaves:16 s)
    (Cst_comm.Width.width ~leaves:16 (Cst_comm.Mirror.set s))

let test_split () =
  let s = set ~n:8 [ (0, 3); (7, 4); (1, 2) ] in
  let right, left = Cst_comm.Decompose.split s in
  check_int "right part" 2 (Cst_comm.Comm_set.size right);
  check_int "left part" 1 (Cst_comm.Comm_set.size left);
  check_true "right oriented" (Cst_comm.Comm_set.is_right_oriented right);
  check_true "left oriented" (Cst_comm.Comm_set.is_left_oriented left)

let test_split_empty_parts () =
  let s = set ~n:8 [ (0, 3) ] in
  let right, left = Cst_comm.Decompose.split s in
  check_int "all right" 1 (Cst_comm.Comm_set.size right);
  check_int "no left" 0 (Cst_comm.Comm_set.size left)

let test_is_oriented () =
  check_true "right set" (Cst_comm.Decompose.is_oriented (set ~n:8 [ (0, 3) ]));
  check_true "left set" (Cst_comm.Decompose.is_oriented (set ~n:8 [ (3, 0) ]));
  check_true "mixed is not"
    (not (Cst_comm.Decompose.is_oriented (set ~n:8 [ (0, 3); (7, 4) ])));
  check_true "empty is oriented"
    (Cst_comm.Decompose.is_oriented (set ~n:8 []))

let prop_split_partition =
  prop "split partitions and mirror round-trips" (fun params ->
      let s = set_of_params params in
      let right, left = Cst_comm.Decompose.split s in
      Cst_comm.Comm_set.size right + Cst_comm.Comm_set.size left
      = Cst_comm.Comm_set.size s
      && Cst_comm.Comm_set.equal (Cst_comm.Mirror.set (Cst_comm.Mirror.set s)) s)

let suite =
  [
    case "mirror pe" test_mirror_pe;
    case "mirror comm" test_mirror_comm;
    case "mirror set involution" test_mirror_set_involution;
    case "mirror preserves well-nesting" test_mirror_preserves_well_nesting;
    case "mirror preserves width" test_mirror_preserves_width;
    case "split" test_split;
    case "split empty parts" test_split_empty_parts;
    case "is_oriented" test_is_oriented;
    prop_split_partition;
  ]

(** Post-hoc analysis of schedules: occupancy and link utilization.

    Complements the power ledger with the traffic-engineering view: how
    busy the rounds are and how often each directed link carries data —
    the quantities a NoC designer reads off a schedule. *)

type link_use = { node : int; dir : Cst.Compat.dir; rounds_used : int }

val link_utilization : ?topo:Cst.Topology.t -> Padr.Schedule.t -> link_use list
(** Every directed link used at least once, by descending use.  A link's
    use count never exceeds the round count; links at width-saturated
    positions reach it exactly.  Paths are walked through [topo]'s
    parent arithmetic — any fanout, any shape; omitted, the schedule's
    tree is assumed to be the classic binary one on [sched.leaves]. *)

val max_link_use : ?topo:Cst.Topology.t -> Padr.Schedule.t -> int
(** Highest entry of {!link_utilization}; equals the set's width for CSA
    schedules on unit-capacity links (each round drains every saturated
    link once), and up to [cap] times the round count on a capacity-[cap]
    fat-tree link. *)

type occupancy = {
  rounds : int;
  comms : int;
  mean_per_round : float;
  max_per_round : int;
  min_per_round : int;
}

val occupancy : Padr.Schedule.t -> occupancy

val per_round_table :
  ?log:Cst.Exec_log.t -> ?from:int -> Padr.Schedule.t -> Table.t
(** Columns: round, communications, live switch connections at the end
    of that round.  Read from the schedule's configuration snapshots
    when present; for schedules built with [keep_configs:false] the
    snapshots are absent and the counts are replayed from [log]
    (starting at cursor [from]) instead.  With neither snapshot nor
    log, the column reads 0. *)

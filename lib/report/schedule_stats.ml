type link_use = { node : int; dir : Cst.Compat.dir; rounds_used : int }

let link_utilization ?topo (sched : Padr.Schedule.t) =
  let topo =
    match topo with
    | Some t -> t
    | None -> Cst.Topology.create ~leaves:sched.leaves
  in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (r : Padr.Schedule.round) ->
      List.iter
        (fun (src, dst) ->
          List.iter
            (fun link ->
              let cur = Option.value ~default:0 (Hashtbl.find_opt tbl link) in
              Hashtbl.replace tbl link (cur + 1))
            (Cst.Compat.link_footprint topo
               (Cst_comm.Comm.make ~src ~dst)))
        r.deliveries)
    sched.rounds;
  Hashtbl.fold
    (fun (node, dir) rounds_used acc -> { node; dir; rounds_used } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int.compare b.rounds_used a.rounds_used with
         | 0 -> compare (a.node, a.dir) (b.node, b.dir)
         | c -> c)

let max_link_use ?topo sched =
  match link_utilization ?topo sched with [] -> 0 | u :: _ -> u.rounds_used

type occupancy = {
  rounds : int;
  comms : int;
  mean_per_round : float;
  max_per_round : int;
  min_per_round : int;
}

let occupancy (sched : Padr.Schedule.t) =
  let per_round = Padr.Schedule.deliveries_per_round sched in
  let rounds = Array.length per_round in
  let comms = Array.fold_left ( + ) 0 per_round in
  if rounds = 0 then
    { rounds = 0; comms = 0; mean_per_round = 0.0; max_per_round = 0; min_per_round = 0 }
  else
    {
      rounds;
      comms;
      mean_per_round = float_of_int comms /. float_of_int rounds;
      max_per_round = Array.fold_left max 0 per_round;
      min_per_round = Array.fold_left min max_int per_round;
    }

let per_round_table ?log ?from (sched : Padr.Schedule.t) =
  let table =
    Table.create ~title:"per-round detail"
      ~columns:[ "round"; "comms"; "live connections" ]
  in
  (* Rounds scheduled with [keep_configs:false] carry no snapshot; the
     execution log replays them exactly when provided. *)
  let live_from_log =
    match log with
    | None -> fun _ -> None
    | Some log ->
        let tbl = Hashtbl.create 16 in
        Cst.Exec_log.fold_rounds ?from log ~init:() ~f:(fun () rv ->
            let live =
              List.fold_left
                (fun acc (_, cfg) ->
                  acc + Cst.Switch_config.connection_count cfg)
                0 rv.Cst.Exec_log.live
            in
            Hashtbl.replace tbl rv.Cst.Exec_log.index live);
        fun index -> Hashtbl.find_opt tbl index
  in
  Array.iter
    (fun (r : Padr.Schedule.round) ->
      let live =
        if Array.length r.configs > 0 then
          Array.fold_left
            (fun acc (_, cfg) -> acc + Cst.Switch_config.connection_count cfg)
            0 r.configs
        else Option.value ~default:0 (live_from_log r.index)
      in
      Table.add_int_row table [ r.index; List.length r.deliveries; live ])
    sched.rounds;
  table

type error =
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }

let pp_error fmt = function
  | Too_large { n; leaves } ->
      Format.fprintf fmt "set over %d PEs does not fit a %d-leaf CST" n leaves
  | Not_well_nested v ->
      Format.fprintf fmt "set is not schedulable by the CSA: %a"
        Cst_comm.Well_nested.pp_violation v
  | Stalled { round; remaining } ->
      Format.fprintf fmt
        "scheduler stalled in round %d with %d communications pending \
         (internal invariant broken)"
        round remaining

exception Stall of { round : int; remaining : int }
(* Internal signal raised from inside a scheduling loop and converted to
   [Error (Stalled _)] at the run boundary. *)

let snapshot_configs net topo =
  let acc = ref [] in
  for node = Cst.Topology.leaves topo - 1 downto 1 do
    let cfg = Cst.Net.config net node in
    if not (Cst.Switch_config.is_empty cfg) then acc := (node, cfg) :: !acc
  done;
  Array.of_list !acc

let run ?trace ?(keep_configs = true) ?(eager_clear = false) ?net topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Not_well_nested v)
    | Ok _forest ->
        let width = Cst_comm.Width.width ~leaves set in
        let phase1 = Phase1.run topo set in
        Cst.Trace.emit trace
          (Cst.Trace.Phase1_done { levels = Cst.Topology.levels topo });
        let net =
          match net with
          | Some net ->
              if Cst.Topology.leaves (Cst.Net.topology net) <> leaves then
                invalid_arg "Csa.run: net topology mismatch";
              net
          | None -> Cst.Net.create topo
        in
        let meter_baseline = Cst.Power_meter.copy (Cst.Net.meter net) in
        let remaining = ref (Phase1.total_matched phase1) in
        let rounds = ref [] in
        let index = ref 0 in
        try
        while !remaining > 0 do
          incr index;
          Cst.Trace.emit trace (Cst.Trace.Round_start !index);
          let out = Round.sweep topo phase1.states in
          if out.matched_count = 0 then
            raise (Stall { round = !index; remaining = !remaining });
          for node = 1 to leaves - 1 do
            let prev = Cst.Net.config net node in
            (if eager_clear then Cst.Net.reconfigure net ~node out.wants.(node)
             else Cst.Net.reconfigure_lazy net ~node ~want:out.wants.(node));
            let now = Cst.Net.config net node in
            if not (Cst.Switch_config.equal prev now) then
              Cst.Trace.emit trace
                (Cst.Trace.Reconfigured
                   { round = !index; node; config = now })
          done;
          List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) out.sources;
          let deliveries = Cst.Data_plane.transfer net ~sources:out.sources in
          List.iter
            (fun (src, dst) ->
              Cst.Trace.emit trace
                (Cst.Trace.Delivered { round = !index; src; dst }))
            deliveries;
          (* Every scheduled communication produces exactly one active
             source and one delivery. *)
          assert (List.length out.sources = out.matched_count);
          assert (List.length deliveries = out.matched_count);
          remaining := !remaining - out.matched_count;
          let configs =
            if keep_configs then snapshot_configs net topo else [||]
          in
          rounds :=
            {
              Schedule.index = !index;
              sources = out.sources;
              dests = out.dests;
              deliveries;
              configs;
            }
            :: !rounds
        done;
        Cst.Trace.emit trace (Cst.Trace.Finished { rounds = !index });
        let levels = Cst.Topology.levels topo in
        Ok
          {
            Schedule.leaves;
            set;
            width;
            rounds = Array.of_list (List.rev !rounds);
            power =
              Schedule.power_of_meter
                (Cst.Power_meter.diff_since (Cst.Net.meter net)
                   ~baseline:meter_baseline);
            cycles = levels + (!index * (levels + 1));
          }
        with Stall { round; remaining } -> Error (Stalled { round; remaining })

let run_exn ?trace ?keep_configs ?eager_clear ?net topo set =
  match run ?trace ?keep_configs ?eager_clear ?net topo set with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

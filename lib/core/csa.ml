type error = Sched_error.t =
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }

let pp_error = Sched_error.pp

exception Stall of { round : int; remaining : int }
(* Internal signal raised from inside a scheduling loop and converted to
   [Error (Stalled _)] at the run boundary. *)

let run ?keep_configs ?(eager_clear = false) ?net ?log topo set =
  if not (Cst.Topology.is_binary topo) then begin
    (* The 3-sided switch protocol below is meaningless off the binary
       shape; the capacity engine is the spec there. *)
    if net <> None then invalid_arg "Csa.run: ?net requires a binary topology";
    match Cap_engine.run ?keep_configs ?log topo set with
    | Ok (sched, _stats) -> Ok sched
    | Error e -> Error e
  end
  else
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Not_well_nested v)
    | Ok _forest ->
        let phase1 = Phase1.run topo set in
        let net =
          match net with
          | Some net ->
              if log <> None then
                invalid_arg "Csa.run: ?log and ?net are exclusive";
              if Cst.Topology.leaves (Cst.Net.topology net) <> leaves then
                invalid_arg "Csa.run: net topology mismatch";
              net
          | None -> Cst.Net.create ?log topo
        in
        let log = Cst.Net.log net in
        (* The cursor makes the derived views cover this run only, even
           on a shared long-lived net. *)
        let from = Cst.Exec_log.length log in
        Cst.Exec_log.phase_done log ~levels:(Cst.Topology.levels topo);
        let remaining = ref (Phase1.total_matched phase1) in
        let index = ref 0 in
        try
        while !remaining > 0 do
          incr index;
          Cst.Exec_log.round_begin log ~index:!index;
          let out = Round.sweep topo phase1.states in
          if out.matched_count = 0 then
            raise (Stall { round = !index; remaining = !remaining });
          for node = 1 to leaves - 1 do
            if eager_clear then Cst.Net.reconfigure net ~node out.wants.(node)
            else Cst.Net.reconfigure_lazy net ~node ~want:out.wants.(node)
          done;
          List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) out.sources;
          let deliveries = Cst.Data_plane.transfer net ~sources:out.sources in
          List.iter
            (fun (src, dst) -> Cst.Exec_log.deliver log ~src ~dst)
            deliveries;
          (* Every scheduled communication produces exactly one active
             source and one delivery. *)
          assert (List.length out.sources = out.matched_count);
          assert (List.length deliveries = out.matched_count);
          remaining := !remaining - out.matched_count
        done;
        Cst.Exec_log.run_end log ~rounds:!index;
        let levels = Cst.Topology.levels topo in
        Ok
          (Schedule.of_log ~from ?keep_configs ~set ~topo
             ~cycles:(levels + (!index * (levels + 1)))
             log)
        with Stall { round; remaining } -> Error (Stalled { round; remaining })

let run_exn ?keep_configs ?eager_clear ?net ?log topo set =
  match run ?keep_configs ?eager_clear ?net ?log topo set with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

type producer = Spec | Engine

type t = {
  producer : producer;
  leaves : int;
  base : int;
  canon : Cst.Canon.t;
  rounds : int;
  cycles : int;
  control_messages : int;
  log : Cst.Exec_log.t;
}

(* The cycle and control-message formulas are the producers' own
   synchronous-cost models (Theorem 5): every functional scheduler pays
   [levels] cycles of Phase 1 plus [levels + 1] per round; the
   message-passing engine pays one extra cycle per sweep and a leading
   broadcast, and exchanges one message over every tree link per sweep
   — [(rounds + 1)] sweeps over [2*(leaves-1)] directed links.  They
   are only consulted when a plan is replayed onto a different tree
   size; at the compiled size the frozen values are returned as-is. *)

let model_cycles producer ~levels ~rounds =
  match producer with
  | Spec -> levels + (rounds * (levels + 1))
  | Engine -> 1 + levels + (rounds * (levels + 2))

let model_control_messages producer ~leaves ~rounds =
  match producer with
  | Spec -> 0
  | Engine -> 2 * (leaves - 1) * (rounds + 1)

let of_log ~producer ~topo ~set ~rounds ~cycles ?(control_messages = 0) log =
  let placed = Cst.Canon.place set in
  {
    producer;
    leaves = Cst.Topology.leaves topo;
    base = placed.base;
    canon = placed.canon;
    rounds;
    cycles;
    control_messages;
    log = Cst.Exec_log.sub log ~from:0;
  }

let compile ?(producer = Engine) topo set =
  let log = Cst.Exec_log.create () in
  match producer with
  | Engine -> (
      match Engine.run ~keep_configs:false ~log topo set with
      | Ok (s, stats) ->
          Ok
            (of_log ~producer ~topo ~set ~rounds:(Schedule.num_rounds s)
               ~cycles:s.cycles ~control_messages:stats.control_messages log)
      | Error e -> Error e)
  | Spec -> (
      match Csa.run ~keep_configs:false ~log topo set with
      | Ok s ->
          Ok
            (of_log ~producer ~topo ~set ~rounds:(Schedule.num_rounds s)
               ~cycles:s.cycles log)
      | Error e -> Error e)

type replayed = {
  schedule : Schedule.t;
  log : Cst.Exec_log.t;
  cycles : int;
  control_messages : int;
}

let replay ?(keep_configs = true) t topo set =
  let leaves = Cst.Topology.leaves topo in
  let placed = Cst.Canon.place set in
  if not (Cst.Canon.equal placed.canon t.canon) then
    invalid_arg "Padr.Plan.replay: set does not match the plan's signature";
  if Cst_comm.Comm_set.n set > leaves then
    invalid_arg "Padr.Plan.replay: set does not fit the topology";
  if not (Cst.Canon.compatible t.canon ~leaves ~base:placed.base) then
    invalid_arg "Padr.Plan.replay: placement incompatible with the topology";
  let log =
    if leaves = t.leaves && placed.base = t.base then t.log
    else
      Cst.Exec_log.rebase t.log ~src_leaves:t.leaves ~src_base:t.base
        ~dst_leaves:leaves ~dst_base:placed.base
        ~align:(Cst.Canon.align t.canon)
  in
  let cycles =
    if leaves = t.leaves then t.cycles
    else
      model_cycles t.producer
        ~levels:(Cst.Topology.levels topo)
        ~rounds:t.rounds
  in
  let control_messages =
    if leaves = t.leaves then t.control_messages
    else model_control_messages t.producer ~leaves ~rounds:t.rounds
  in
  {
    schedule = Schedule.of_log ~keep_configs ~set ~topo ~cycles log;
    log;
    cycles;
    control_messages;
  }

let bytes (t : t) =
  Cst.Exec_log.bytes_used t.log + (16 * Cst.Canon.size t.canon) + 128

let pp fmt (t : t) =
  Format.fprintf fmt
    "plan %s leaves=%d base=%d rounds=%d cycles=%d msgs=%d events=%d (%a)"
    (match t.producer with Spec -> "spec" | Engine -> "engine")
    t.leaves t.base t.rounds t.cycles t.control_messages
    (Cst.Exec_log.length t.log)
    Cst.Canon.pp t.canon

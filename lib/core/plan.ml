type producer = Spec | Engine

type t = {
  producer : producer;
  shape : Cst.Shape.t;
  leaves : int;
  base : int;
  canon : Cst.Canon.t;
  rounds : int;
  cycles : int;
  control_messages : int;
  log : Cst.Exec_log.t;
}

(* The cycle and control-message formulas are the producers' own
   synchronous-cost models (Theorem 5): every functional scheduler pays
   [levels] cycles of Phase 1 plus [levels + 1] per round; the
   message-passing engine pays one extra cycle per sweep and a leading
   broadcast, and exchanges one message over every tree link per sweep
   — [(rounds + 1)] sweeps over [2*(leaves-1)] directed links.  They
   are only consulted when a plan is replayed onto a different tree
   size; at the compiled size the frozen values are returned as-is. *)

let model_cycles producer ~levels ~rounds =
  match producer with
  | Spec -> levels + (rounds * (levels + 1))
  | Engine -> 1 + levels + (rounds * (levels + 2))

let model_control_messages producer ~leaves ~rounds =
  match producer with
  | Spec -> 0
  | Engine -> 2 * (leaves - 1) * (rounds + 1)

let of_log ~producer ~topo ~set ~rounds ~cycles ?(control_messages = 0) log =
  let placed = Cst.Canon.place set in
  {
    producer;
    shape = Cst.Topology.shape topo;
    leaves = Cst.Topology.leaves topo;
    base = placed.base;
    canon = placed.canon;
    rounds;
    cycles;
    control_messages;
    log = Cst.Exec_log.sub log ~from:0;
  }

let compile ?(producer = Engine) topo set =
  let log = Cst.Exec_log.create () in
  match producer with
  | Engine -> (
      match Engine.run ~keep_configs:false ~log topo set with
      | Ok (s, stats) ->
          Ok
            (of_log ~producer ~topo ~set ~rounds:(Schedule.num_rounds s)
               ~cycles:s.cycles ~control_messages:stats.control_messages log)
      | Error e -> Error e)
  | Spec -> (
      match Csa.run ~keep_configs:false ~log topo set with
      | Ok s ->
          Ok
            (of_log ~producer ~topo ~set ~rounds:(Schedule.num_rounds s)
               ~cycles:s.cycles log)
      | Error e -> Error e)

type replayed = {
  schedule : Schedule.t;
  log : Cst.Exec_log.t;
  cycles : int;
  control_messages : int;
}

let replay ?(keep_configs = true) t topo set =
  let leaves = Cst.Topology.leaves topo in
  let placed = Cst.Canon.place set in
  if not (Cst.Canon.equal placed.canon t.canon) then
    invalid_arg "Padr.Plan.replay: set does not match the plan's signature";
  if Cst_comm.Comm_set.n set > leaves then
    invalid_arg "Padr.Plan.replay: set does not fit the topology";
  if not (Cst.Shape.is_binary t.shape) then begin
    (* Translation is not a congruence off the binary shape (subtrees at
       one depth need not be isomorphic, and capacities are positional),
       so a non-binary plan replays only at its compiled shape and
       placement. *)
    if not (Cst.Shape.equal (Cst.Topology.shape topo) t.shape) then
      invalid_arg "Padr.Plan.replay: topology shape differs from the plan's";
    if placed.base <> t.base then
      invalid_arg
        "Padr.Plan.replay: non-binary plans replay only at their compiled \
         placement"
  end
  else if not (Cst.Topology.is_binary topo) then
    invalid_arg "Padr.Plan.replay: binary plan on a non-binary topology"
  else if not (Cst.Canon.compatible t.canon ~leaves ~base:placed.base) then
    invalid_arg "Padr.Plan.replay: placement incompatible with the topology";
  let log =
    if leaves = t.leaves && placed.base = t.base then t.log
    else
      Cst.Exec_log.rebase t.log ~src_leaves:t.leaves ~src_base:t.base
        ~dst_leaves:leaves ~dst_base:placed.base
        ~align:(Cst.Canon.align t.canon)
  in
  let cycles =
    if leaves = t.leaves then t.cycles
    else
      model_cycles t.producer
        ~levels:(Cst.Topology.levels topo)
        ~rounds:t.rounds
  in
  let control_messages =
    if leaves = t.leaves then t.control_messages
    else model_control_messages t.producer ~leaves ~rounds:t.rounds
  in
  {
    schedule = Schedule.of_log ~keep_configs ~set ~topo ~cycles log;
    log;
    cycles;
    control_messages;
  }

let bytes (t : t) =
  Cst.Exec_log.bytes_used t.log + (16 * Cst.Canon.size t.canon) + 128

let pp fmt (t : t) =
  Format.fprintf fmt
    "plan %s leaves=%d base=%d rounds=%d cycles=%d msgs=%d events=%d (%a)"
    (match t.producer with Spec -> "spec" | Engine -> "engine")
    t.leaves t.base t.rounds t.cycles t.control_messages
    (Cst.Exec_log.length t.log)
    Cst.Canon.pp t.canon

(* Binary codec: 80-byte plan header + (version 2 only) a shape block +
   canon offsets + the embedded event-log section.  The meta digest
   covers the header (minus its own slot), the shape block and the
   offsets; the log section carries its own arena digest and, in its
   canon-hash slot, the hash of this plan's canon — decode rebuilds the
   canon from the offsets and requires the two hashes to agree, so
   metadata and events cannot be spliced from different plans.  Encode
   picks the version from the shape: binary plans emit the historical
   version-1 bytes (no shape block, version-1 log section), so every
   classic plan file is byte-identical; non-binary plans emit version 2
   with the level table serialized as [levels][sizes...][caps...] u32s
   and the shape fingerprint echoed in the log section's header.
   Multi-byte fields are read with a wrap-mod-2^63 [get64], so crafted
   top bytes surface as negative values; every count is range-checked
   after the digests pass. *)
module Codec = struct
  type error =
    | Truncated of { expected : int; got : int }
    | Bad_magic
    | Unsupported_version of { found : int; expected : int }
    | Digest_mismatch
    | Canon_mismatch
    | Bad_field of string
    | Log of Cst.Exec_log.Codec.error

  let pp_error fmt = function
    | Truncated { expected; got } ->
        Format.fprintf fmt "truncated: need %d bytes, have %d" expected got
    | Bad_magic -> Format.fprintf fmt "bad magic (not a CST plan)"
    | Unsupported_version { found; expected } ->
        Format.fprintf fmt "unsupported version %d (expected %d)" found
          expected
    | Digest_mismatch -> Format.fprintf fmt "plan metadata digest mismatch"
    | Canon_mismatch ->
        Format.fprintf fmt "canon hash disagrees with the stored offsets"
    | Bad_field f -> Format.fprintf fmt "invalid field: %s" f
    | Log e ->
        Format.fprintf fmt "log section: %a" Cst.Exec_log.Codec.pp_error e

  let version = 2
  let magic = "CSTPLAN1"
  let header_bytes = 80
  let fnv_prime = 0x100000001b3

  let shape_block_len shape =
    if Cst.Shape.is_binary shape then 0
    else 4 * (1 + (2 * (Cst.Shape.levels shape + 1)))

  let put32 b pos v =
    for i = 0 to 3 do
      Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let get32 b pos =
    Char.code (Bytes.get b pos)
    lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
    lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
    lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

  let put64 b pos v =
    for i = 0 to 7 do
      Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let get64 b pos =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
    done;
    !v

  (* [extra_len] = shape block + offsets: everything between the header
     and the log section, contiguous from [header_bytes]. *)
  let meta_digest b ~extra_len =
    let h = ref 0x3bf29ce484222325 in
    let mix c = h := ((!h lxor c) * fnv_prime) land max_int in
    for i = 0 to 71 do
      mix (Char.code (Bytes.get b i))
    done;
    for i = header_bytes to header_bytes + extra_len - 1 do
      mix (Char.code (Bytes.get b i))
    done;
    !h

  let encoded_bytes (t : t) =
    header_bytes + shape_block_len t.shape
    + (8 * Cst.Canon.size t.canon)
    + Cst.Exec_log.Codec.encoded_bytes
        ~shape_fp:(Cst.Shape.fingerprint t.shape)
        t.log

  let encode (t : t) =
    let n = Cst.Canon.size t.canon in
    let binary = Cst.Shape.is_binary t.shape in
    let shape_len = shape_block_len t.shape in
    let b = Bytes.create (encoded_bytes t) in
    Bytes.blit_string magic 0 b 0 8;
    put32 b 8 (if binary then 1 else version);
    Bytes.set b 12
      (Char.chr (match t.producer with Spec -> 0 | Engine -> 1));
    Bytes.set b 13 '\000';
    Bytes.set b 14 '\000';
    Bytes.set b 15 '\000';
    put64 b 16 t.leaves;
    put64 b 24 t.base;
    put64 b 32 t.rounds;
    put64 b 40 t.cycles;
    put64 b 48 t.control_messages;
    put64 b 56 (Cst.Canon.align t.canon);
    put64 b 64 n;
    if not binary then begin
      let levels = Cst.Shape.levels t.shape in
      let sizes = Cst.Shape.sizes t.shape and caps = Cst.Shape.caps t.shape in
      put32 b header_bytes levels;
      for d = 0 to levels do
        put32 b (header_bytes + 4 + (4 * d)) sizes.(d);
        put32 b (header_bytes + 4 + (4 * (levels + 1)) + (4 * d)) caps.(d)
      done
    end;
    let offs_pos = header_bytes + shape_len in
    Array.iteri
      (fun i (s, d) ->
        put32 b (offs_pos + (8 * i)) s;
        put32 b (offs_pos + (8 * i) + 4) d)
      (Cst.Canon.offsets t.canon);
    put64 b 72 (meta_digest b ~extra_len:(shape_len + (8 * n)));
    ignore
      (Cst.Exec_log.Codec.encode_into
         ~canon_hash:(Cst.Canon.hash t.canon)
         ~shape_fp:(Cst.Shape.fingerprint t.shape)
         t.log b
         ~pos:(offs_pos + (8 * n)));
    b

  (* Reads and validates the version-2 shape block at [header_bytes];
     returns its byte length and the reconstructed shape. *)
  let decode_shape_block b ~len =
    if len < header_bytes + 4 then
      Error (Truncated { expected = header_bytes + 4; got = len })
    else
      let levels = get32 b header_bytes in
      if levels < 1 || levels > 60 then Error (Bad_field "shape levels")
      else
        let shape_len = 4 * (1 + (2 * (levels + 1))) in
        if len < header_bytes + shape_len then
          Error (Truncated { expected = header_bytes + shape_len; got = len })
        else
          let size_at d = get32 b (header_bytes + 4 + (4 * d)) in
          let cap_at d =
            get32 b (header_bytes + 4 + (4 * (levels + 1)) + (4 * d))
          in
          if size_at 0 <> 1 || cap_at 0 <> 0 then Error (Bad_field "shape root")
          else
            (* [create] takes the table leaf-to-root without the root. *)
            let level_sizes = Array.init levels (fun i -> size_at (levels - i))
            and capacities = Array.init levels (fun i -> cap_at (levels - i)) in
            match Cst.Shape.create ~level_sizes ~capacities with
            | Error _ -> Error (Bad_field "shape table")
            | Ok shape ->
                if Cst.Shape.is_binary shape then
                  (* Binary plans are canonically version 1. *)
                  Error (Bad_field "binary shape in a version-2 plan")
                else Ok (shape_len, shape)

  let decode b =
    let len = Bytes.length b in
    if len < header_bytes then
      Error (Truncated { expected = header_bytes; got = len })
    else if not (String.equal (Bytes.sub_string b 0 8) magic) then
      Error Bad_magic
    else
      let v = get32 b 8 in
      if v <> 1 && v <> version then
        Error (Unsupported_version { found = v; expected = version })
      else
        let shape_part =
          if v = 1 then Ok (0, None)
          else
            match decode_shape_block b ~len with
            | Ok (shape_len, shape) -> Ok (shape_len, Some shape)
            | Error e -> Error e
        in
        match shape_part with
        | Error e -> Error e
        | Ok (shape_len, shape) -> (
            let offs_pos = header_bytes + shape_len in
            let n = get64 b 64 in
            if n < 0 || n > (len - offs_pos) / 8 then
              Error
                (Truncated
                   {
                     expected =
                       (if n < 0 || n > (max_int - offs_pos) / 8 then max_int
                        else offs_pos + (8 * n));
                     got = len;
                   })
            else if
              get64 b 72 <> meta_digest b ~extra_len:(shape_len + (8 * n))
            then Error Digest_mismatch
            else
              let producer =
                match Char.code (Bytes.get b 12) with
                | 0 -> Ok Spec
                | 1 -> Ok Engine
                | _ -> Error (Bad_field "producer")
              in
              match producer with
              | Error e -> Error e
              | Ok producer -> (
                  let leaves = get64 b 16
                  and base = get64 b 24
                  and rounds = get64 b 32
                  and cycles = get64 b 40
                  and control_messages = get64 b 48
                  and align = get64 b 56 in
                  let offs =
                    Array.init n (fun i ->
                        ( get32 b (offs_pos + (8 * i)),
                          get32 b (offs_pos + (8 * i) + 4) ))
                  in
                  match Cst.Canon.of_offsets ~align offs with
                  | exception Invalid_argument _ ->
                      Error (Bad_field "canon offsets")
                  | canon -> (
                      let log_pos = offs_pos + (8 * n) in
                      match Cst.Exec_log.Codec.decode ~pos:log_pos b with
                      | Error e -> Error (Log e)
                      | Ok (log, next) ->
                          if next <> len then Error (Bad_field "trailing bytes")
                          else if
                            Cst.Exec_log.Codec.canon_hash ~pos:log_pos b
                            <> Ok (Cst.Canon.hash canon)
                          then Error Canon_mismatch
                          else if
                            rounds < 0 || cycles < 0 || control_messages < 0
                          then Error (Bad_field "negative count")
                          else
                            let placement_ok shape_opt =
                              match shape_opt with
                              | None ->
                                  leaves >= 1
                                  && leaves land (leaves - 1) = 0
                                  && Cst.Canon.compatible canon ~leaves ~base
                              | Some shape ->
                                  leaves = Cst.Shape.leaves shape
                                  && base >= 0
                                  && base mod align = 0
                                  && base + align <= leaves
                            in
                            if not (placement_ok shape) then
                              Error (Bad_field "placement")
                            else
                              let shape =
                                match shape with
                                | Some s -> s
                                | None -> Cst.Shape.binary ~leaves
                              in
                              if
                                Cst.Exec_log.Codec.shape_fp ~pos:log_pos b
                                <> Ok (Cst.Shape.fingerprint shape)
                              then Error (Bad_field "shape fingerprint")
                              else
                                Ok
                                  {
                                    producer;
                                    shape;
                                    leaves;
                                    base;
                                    canon;
                                    rounds;
                                    cycles;
                                    control_messages;
                                    log;
                                  })))

  let write_file ~path t =
    let b = encode t in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_bytes oc b;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path

  let read_file ~path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        match really_input ic b 0 len with
        | () -> decode b
        | exception End_of_file ->
            Error (Truncated { expected = len; got = 0 }))
end

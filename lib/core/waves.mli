(** Scheduling arbitrary communication sets as a sequence of CSA waves.

    Extends the paper beyond well-nested inputs (its conclusion's "other
    communication patterns"): the set is split by orientation (§2.1), each
    part is covered by well-nested layers ({!Cst_comm.Wn_cover}), and each
    layer is one CSA run.  All right-oriented waves share one live network
    and all (mirrored) left-oriented waves another, so the PADR carry-over
    keeps saving configuration writes {e across} waves, not just across
    rounds. *)

type t = {
  set : Cst_comm.Comm_set.t;
  right_waves : Schedule.t list;
      (** CSA schedules of the right-oriented layers, in execution order *)
  left_waves : Schedule.t list;
      (** CSA schedules of the mirrored left-oriented layers; their PE and
          switch coordinates are mirrored (deliveries are reported in
          original coordinates by {!deliveries}) *)
  rounds : int;  (** total data-transfer rounds over all waves *)
  cycles : int;
  power : Schedule.power;
      (** combined over both networks, left part re-expressed in original
          switch coordinates *)
}

val schedule :
  ?leaves:int ->
  ?log:Cst.Exec_log.t ->
  Cst_comm.Comm_set.t ->
  (t, Csa.error) result
(** Fails only if a layer is internally invalid — impossible for valid
    sets, so in practice always [Ok]. *)

val schedule_exn : ?leaves:int -> ?log:Cst.Exec_log.t -> Cst_comm.Comm_set.t -> t

val deliveries : t -> (int * int) list
(** All (src, dst) pairs in original coordinates, sorted; equals the
    set's matching (tested). *)

val num_waves : t -> int

val pp : Format.formatter -> t -> unit

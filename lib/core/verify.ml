type report = {
  ok : bool;
  issues : string list;
  rounds : int;
  width : int;
  deliveries : int;
  max_connects_per_switch : int;
}

let default_power_bound = 9

(* Capacity-aware compatibility: a round fits iff no directed link
   carries more circuits than its capacity.  On binary (unit-capacity)
   topologies this is exactly [Cst.Compat.is_compatible]. *)
let round_fits topo comms =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun link ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt tbl link) in
          Hashtbl.replace tbl link (cur + 1))
        (Cst.Compat.link_footprint topo c))
    comms;
  Hashtbl.fold
    (fun (v, _) n ok -> ok && n <= Cst.Topology.uplink_cap topo v)
    tbl true

let width_of topo set =
  if Cst.Topology.is_binary topo then
    Cst_comm.Width.width ~leaves:(Cst.Topology.leaves topo) set
  else
    Cst_comm.Width.width_on
      ~parent:(Cst.Topology.parent_table topo)
      ~first_leaf:(Cst.Topology.first_leaf topo)
      ~cap:(Cst.Topology.cap_table topo)
      set

let replay_round topo (round : Schedule.round) =
  let net = Cst.Net.create topo in
  Array.iter
    (fun (node, cfg) -> Cst.Net.reconfigure net ~node cfg)
    round.configs;
  List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) round.sources;
  Cst.Data_plane.transfer net ~sources:round.sources

let schedule ?(power_bound = default_power_bound)
    ?(check_rounds_optimal = true) topo set (sched : Schedule.t) =
  let issues = ref [] in
  let problem fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let expected = Cst_comm.Comm_set.matching set in
  let got = Schedule.all_deliveries sched in
  if got <> expected then
    problem "deliveries differ from the set's matching (%d vs %d pairs)"
      (List.length got) (List.length expected);
  Array.iter
    (fun (r : Schedule.round) ->
      let comms =
        List.map
          (fun (s, d) -> Cst_comm.Comm.make ~src:s ~dst:d)
          r.deliveries
      in
      if not (round_fits topo comms) then
        problem "round %d is not a compatible set" r.index;
      if List.length r.sources <> List.length r.deliveries then
        problem "round %d: %d sources but %d deliveries" r.index
          (List.length r.sources)
          (List.length r.deliveries);
      if List.length r.dests <> List.length r.deliveries then
        problem "round %d: %d dests but %d deliveries" r.index
          (List.length r.dests)
          (List.length r.deliveries);
      if Array.length r.configs > 0 then begin
        let replayed = List.sort compare (replay_round topo r) in
        if replayed <> List.sort compare r.deliveries then
          problem "round %d: replaying stored configurations diverges"
            r.index
      end)
    sched.rounds;
  let width = width_of topo set in
  if check_rounds_optimal && Schedule.num_rounds sched <> width then
    problem "rounds (%d) differ from width (%d)"
      (Schedule.num_rounds sched)
      width;
  if Schedule.num_rounds sched < width then
    problem "schedule beats the width lower bound — verifier or width bug";
  if sched.power.max_connects_per_switch > power_bound then
    problem "switch exceeded the constant power bound: %d > %d"
      sched.power.max_connects_per_switch power_bound;
  {
    ok = !issues = [];
    issues = List.rev !issues;
    rounds = Schedule.num_rounds sched;
    width;
    deliveries = List.length got;
    max_connects_per_switch = sched.power.max_connects_per_switch;
  }

let pp_report fmt r =
  if r.ok then
    Format.fprintf fmt
      "OK: %d deliveries in %d rounds (width %d), max %d connects/switch"
      r.deliveries r.rounds r.width r.max_connects_per_switch
  else begin
    Format.fprintf fmt "@[<v>FAILED:%d issue(s)@," (List.length r.issues);
    List.iter (fun i -> Format.fprintf fmt "  - %s@," i) r.issues;
    Format.pp_close_box fmt ()
  end

type round = {
  index : int;
  sources : int list;
  dests : int list;
  deliveries : (int * int) list;
  configs : (int * Cst.Switch_config.t) array;
}

type power = {
  total_connects : int;
  total_disconnects : int;
  total_writes : int;
  max_connects_per_switch : int;
  max_writes_per_switch : int;
  max_events_per_switch : int;
  per_switch_connects : int array;
  per_switch_writes : int array;
  per_switch_disconnects : int array;
}

type t = {
  leaves : int;
  set : Cst_comm.Comm_set.t;
  width : int;
  rounds : round array;
  power : power;
  cycles : int;
}

let num_rounds t = Array.length t.rounds

let all_deliveries t =
  Array.to_list t.rounds
  |> List.concat_map (fun r -> r.deliveries)
  |> List.sort compare

let deliveries_per_round t =
  Array.map (fun r -> List.length r.deliveries) t.rounds

let power_of_meter meter =
  {
    total_connects = Cst.Power_meter.total_connects meter;
    total_disconnects = Cst.Power_meter.total_disconnects meter;
    total_writes = Cst.Power_meter.total_writes meter;
    max_connects_per_switch = Cst.Power_meter.max_connects_per_switch meter;
    max_writes_per_switch = Cst.Power_meter.max_writes_per_switch meter;
    max_events_per_switch = Cst.Power_meter.max_events_per_switch meter;
    per_switch_connects = Cst.Power_meter.per_switch_connects meter;
    per_switch_writes = Cst.Power_meter.per_switch_writes meter;
    per_switch_disconnects = Cst.Power_meter.per_switch_disconnects meter;
  }

let zero_power ~num_nodes =
  {
    total_connects = 0;
    total_disconnects = 0;
    total_writes = 0;
    max_connects_per_switch = 0;
    max_writes_per_switch = 0;
    max_events_per_switch = 0;
    per_switch_connects = Array.make (num_nodes + 1) 0;
    per_switch_writes = Array.make (num_nodes + 1) 0;
    per_switch_disconnects = Array.make (num_nodes + 1) 0;
  }

let add_arrays a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0)
      + if i < Array.length b then b.(i) else 0)

let max_of = Array.fold_left max 0

let combine_power a b =
  (* A switch busy in both parts accumulates: the per-part maxima cannot
     simply be maxed, they are recomputed from the summed arrays. *)
  let connects = add_arrays a.per_switch_connects b.per_switch_connects in
  let writes = add_arrays a.per_switch_writes b.per_switch_writes in
  let disconnects =
    add_arrays a.per_switch_disconnects b.per_switch_disconnects
  in
  let events = add_arrays connects disconnects in
  {
    total_connects = a.total_connects + b.total_connects;
    total_disconnects = a.total_disconnects + b.total_disconnects;
    total_writes = a.total_writes + b.total_writes;
    max_connects_per_switch = max_of connects;
    max_writes_per_switch = max_of writes;
    max_events_per_switch = max_of events;
    per_switch_connects = connects;
    per_switch_writes = writes;
    per_switch_disconnects = disconnects;
  }

let mirror_power topo p =
  let remap a =
    Array.mapi
      (fun i v ->
        if i >= 1 && i <= Cst.Topology.num_nodes topo then
          a.(Cst.Topology.mirror_node topo i)
        else v)
      a
  in
  {
    p with
    per_switch_connects = remap p.per_switch_connects;
    per_switch_writes = remap p.per_switch_writes;
    per_switch_disconnects = remap p.per_switch_disconnects;
  }

(* The schedule as a pure derivation of the execution log.  Sources are
   the delivery sources in emission order (every producer sweeps PEs in
   ascending order, so this matches the legacy eager fields); dests are
   sorted.  Config snapshots come from the log replay: the live (merged)
   configuration of every non-empty switch at the end of each round,
   ascending by node — identical to the old per-round net scans. *)
let of_log ?from ?upto ?(keep_configs = true) ~set ~topo ~cycles log =
  let leaves = Cst.Topology.leaves topo in
  let num_nodes = Cst.Topology.num_nodes topo in
  let rounds =
    Cst.Exec_log.fold_rounds ?from ?upto ~snapshots:keep_configs log ~init:[]
      ~f:(fun acc (rv : Cst.Exec_log.round_view) ->
        {
          index = rv.index;
          sources = List.map fst rv.deliveries;
          dests = List.sort compare (List.map snd rv.deliveries);
          deliveries = rv.deliveries;
          configs = (if keep_configs then Array.of_list rv.live else [||]);
        }
        :: acc)
    |> List.rev |> Array.of_list
  in
  let width =
    if Cst.Topology.is_binary topo then Cst_comm.Width.width ~leaves set
    else
      Cst_comm.Width.width_on
        ~parent:(Cst.Topology.parent_table topo)
        ~first_leaf:(Cst.Topology.first_leaf topo)
        ~cap:(Cst.Topology.cap_table topo) set
  in
  {
    leaves;
    set;
    width;
    rounds;
    power = power_of_meter (Cst.Power_meter.of_log ?from ?upto ~num_nodes log);
    cycles;
  }

let pp_round fmt r =
  Format.fprintf fmt "round %d:" r.index;
  List.iter (fun (s, d) -> Format.fprintf fmt " %d->%d" s d) r.deliveries

let pp fmt t =
  Format.fprintf fmt
    "@[<v>schedule over %d PEs: %d communications, width %d, %d rounds, %d \
     cycles@,power: %d units (%d disconnects), max %d connects/switch@,"
    t.leaves
    (Cst_comm.Comm_set.size t.set)
    t.width (num_rounds t) t.cycles t.power.total_connects
    t.power.total_disconnects t.power.max_connects_per_switch;
  Array.iter (fun r -> Format.fprintf fmt "%a@," pp_round r) t.rounds;
  Format.pp_close_box fmt ()

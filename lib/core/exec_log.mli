(** Alias of {!Cst.Exec_log}, the canonical execution log every
    scheduler in this library emits.  See that module for the event
    grammar, cursors and digest semantics. *)

include
  module type of Cst.Exec_log
    with type t = Cst.Exec_log.t
     and type event = Cst.Exec_log.event
     and type round_view = Cst.Exec_log.round_view

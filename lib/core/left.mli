(** Native CSA for left-oriented well-nested sets.

    The paper handles right-oriented sets and notes that "dealing with
    right oriented sets can be adjusted easily to left oriented sets"
    (§2.1).  This module is that adjustment, written out: every rule of
    Phase 1 and of the round procedure with the roles of the two children
    exchanged — matching pairs are [min(S_R, D_L)] and take the
    [r_i -> l_o] connection, sources pass up from the right child with
    priority, destinations go down to the left, and Definition 2's indices
    count sources from the {e right} and destinations from the {e left}.

    [run] produces schedules isomorphic under reflection to running the
    right-oriented CSA on the mirrored set — the test suite checks round
    counts, deliveries and per-switch power agree through
    {!Cst.Topology.mirror_node}; all of the paper's theorems transfer. *)

val run :
  ?keep_configs:bool ->
  ?net:Cst.Net.t ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t, Csa.error) result
(** Schedules a left-oriented well-nested set (every member has
    [dst < src]).  Errors mirror {!Csa.run}'s. *)

val run_exn :
  ?keep_configs:bool ->
  ?net:Cst.Net.t ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t

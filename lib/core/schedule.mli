(** The result of scheduling a communication set on a CST. *)

type round = {
  index : int;  (** 1-based round number *)
  sources : int list;  (** PEs that wrote this round *)
  dests : int list;
  deliveries : (int * int) list;  (** realized (src, dst) transfers *)
  configs : (int * Cst.Switch_config.t) array;
      (** live (merged) configuration of every switch whose configuration
          is non-empty after this round's reconfiguration; empty array when
          the run did not keep configurations *)
}

type power = {
  total_connects : int;
      (** physical driver transitions — charitable accounting *)
  total_disconnects : int;
  total_writes : int;
      (** configuration-register installations — the paper's power units:
          per-round schedulers pay one per demanded connection per round,
          the CSA only pays for actual changes *)
  max_connects_per_switch : int;  (** the Theorem 8 quantity *)
  max_writes_per_switch : int;
      (** O(1) under CSA, O(w) under per-round scheduling *)
  max_events_per_switch : int;
  per_switch_connects : int array;  (** indexed by node id *)
  per_switch_writes : int array;
  per_switch_disconnects : int array;
}

type t = {
  leaves : int;
  set : Cst_comm.Comm_set.t;
  width : int;  (** link congestion of the input set *)
  rounds : round array;
  power : power;
  cycles : int;
      (** synchronous clock cycles: one per tree level for Phase 1, one
          per level plus a transfer cycle per round *)
}

val of_log :
  ?from:int ->
  ?upto:int ->
  ?keep_configs:bool ->
  set:Cst_comm.Comm_set.t ->
  topo:Cst.Topology.t ->
  cycles:int ->
  Cst.Exec_log.t ->
  t
(** Derive a schedule from a log range: rounds, deliveries and config
    snapshots from {!Cst.Exec_log.fold_rounds}, power from
    {!Cst.Power_meter.of_log}.  [cycles] stays caller-supplied because
    the synchronous-cycle formula is a property of the producer (the
    message-passing engine pays an extra broadcast sweep).  This is the
    only constructor the producers use. *)

val num_rounds : t -> int

val all_deliveries : t -> (int * int) list
(** Concatenated over rounds, sorted by source. *)

val deliveries_per_round : t -> int array

val power_of_meter : Cst.Power_meter.t -> power
(** Snapshot a live meter into the immutable summary. *)

val zero_power : num_nodes:int -> power
(** Neutral element of {!combine_power}. *)

val combine_power : power -> power -> power
(** Componentwise combination for multi-part schedules (waves, mixed
    orientations, traffic phases): totals add, per-switch maxima take the
    max of the two parts' maxima, per-switch arrays add pointwise (arrays
    of different lengths are padded). *)

val mirror_power : Cst.Topology.t -> power -> power
(** Re-expresses per-switch arrays of a schedule computed on the mirrored
    tree in original node coordinates ({!Cst.Topology.mirror_node});
    totals and maxima are reflection-invariant. *)

val pp_round : Format.formatter -> round -> unit
val pp : Format.formatter -> t -> unit

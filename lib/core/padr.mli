(** High-level facade over the PADR scheduler.

    Most users need only this module:

    {[
      let set = Cst_comm.Comm_set.create_exn ~n:8
          [ Cst_comm.Comm.make ~src:0 ~dst:7; Cst_comm.Comm.make ~src:2 ~dst:3 ]
      in
      match Padr.schedule set with
      | Ok sched -> Format.printf "%a" Padr.Schedule.pp sched
      | Error e -> Format.eprintf "%a" Padr.pp_error e
    ]}

    Right-oriented well-nested sets are scheduled directly; mixed sets are
    decomposed into the right-oriented part and the (mirrored)
    left-oriented part, each scheduled separately (paper §2.1). *)

module Exec_log = Exec_log
module Schedule = Schedule
module Verify = Verify

module Csa : module type of Csa
(** The scheduler itself, for callers needing an explicit topology or the
    eager-clearing ablation mode. *)

module Engine : module type of Engine
(** Message-passing execution with cycle and message statistics. *)

module Cap_engine : module type of Cap_engine
(** Capacity-aware greedy circuit allocator — the scheduler behind every
    non-binary ({!Cst.Shape}) topology. *)

module Par_engine : module type of Par_engine
(** Segment-parallel engine: independent top-level blocks scheduled
    concurrently, logs rebased and merged — byte-identical to
    {!Engine.run}. *)

module Phase1 : module type of Phase1
module Round : module type of Round
module Downmsg : module type of Downmsg
module Csa_state : module type of Csa_state

module Waves : module type of Waves
(** Arbitrary (crossing, mixed-orientation) sets as sequences of CSA
    waves — the extension the paper's conclusion proposes. *)

module Plan : module type of Plan
(** Compile-once / replay-many routing plans: a frozen execution log
    keyed by the set's structural signature ({!Cst.Canon}), replayable
    onto any congruent placement without re-scheduling. *)

module Left : module type of Left
(** Native scheduler for left-oriented sets (§2.1's mirror-symmetric
    rules, written out). *)

module Invariants : module type of Invariants
(** White-box auditing: the mutated registers always equal a from-scratch
    Phase 1 on the pending remainder. *)

type error = Csa.error

val pp_error : Format.formatter -> error -> unit

val topology_for : Cst_comm.Comm_set.t -> Cst.Topology.t
(** Smallest power-of-two CST accommodating the set. *)

val schedule :
  ?shape:Cst.Shape.t ->
  ?leaves:int ->
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t, error) result
(** Schedules a right-oriented well-nested set on a CST with [leaves]
    leaves (default: smallest adequate), or on an arbitrary [?shape]
    (exclusive with [?leaves]; non-binary shapes run on the capacity
    engine).  The run is appended to [?log] (or a private log); derive a
    narration with [Cst.Trace.of_log]. *)

val schedule_exn :
  ?shape:Cst.Shape.t ->
  ?leaves:int ->
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t

val verify : Schedule.t -> Verify.report
(** Full verification of a schedule produced by {!schedule}. *)

type mixed = {
  right : Schedule.t option;  (** schedule of the right-oriented members *)
  left : Schedule.t option;
      (** schedule of the mirrored left-oriented members; its deliveries
          are reported in original coordinates by {!mixed_deliveries} *)
  rounds : int;  (** total rounds of the two-part schedule *)
  power_units : int;  (** total connects over both parts *)
}

val schedule_mixed :
  ?leaves:int -> Cst_comm.Comm_set.t -> (mixed, error) result
(** Decomposes an arbitrarily-oriented set whose two oriented parts are
    each well-nested, and schedules the parts one after the other. *)

val mixed_deliveries : mixed -> (int * int) list
(** All (src, dst) pairs of both parts, in original PE coordinates,
    sorted by source. *)

(* Re-export: the canonical execution log lives in [Cst.Exec_log]
   (the [Net] appends into it, and [cst] cannot depend on [padr]); this
   alias exposes it as [Padr.Exec_log] next to the schedulers that
   produce it. *)
include Cst.Exec_log

(* Capacity-aware scheduler for generalized (k-ary / fat-tree)
   topologies.

   The binary CSA machinery (Phase1 / Round / Net) is hard-wired to
   3-sided switches and heap arithmetic; rather than generalize its
   message protocol, non-binary topologies are scheduled by an explicit
   greedy circuit allocator: every round, scan the undelivered
   communications in source order and admit each one whose whole
   leaf-to-leaf path still has a free lane on every directed link.  A
   link of capacity [c] carries [c] simultaneous circuits, so a
   well-nested set of capacity-weighted width [w] (see
   [Cst_comm.Width.width_on]) completes in [w] rounds on the traces the
   bench gates: the bottleneck link admits exactly [c] of its [d]
   crossing circuits per round.

   The log it emits follows the standard single-run grammar
   [Phase_done (Round_begin Config* Deliver* )* Run_end], with switch
   reconfiguration expressed purely as [Write_config {node; count}]
   events ([count] = circuit segments newly installed at that switch
   this round, under lazy carry-over): the packed [Connect]/[Disconnect]
   events encode 3-sided ports and cannot describe a fanout-k crossbar.
   Digests, power meters, schedules and the segment merge all treat
   [Write_config] as a first-class config event, so every derived view
   works unchanged. *)

type stats = {
  cycles : int;
  control_messages : int;
  max_message_words : int;
  state_words_per_switch : int;
}

(* A circuit segment at a switch: (in port, out port), ports numbered
   children first (0 .. fanout-1) then the parent port.  Packed for the
   per-node multiset lists. *)
let seg ~in_port ~out_port = (in_port lsl 16) lor out_port

(* Multiset difference size: |cur \ prev| over two sorted int lists. *)
let rec new_segments cur prev =
  match (cur, prev) with
  | [], _ -> 0
  | c, [] -> List.length c
  | c :: cs, p :: ps ->
      if c = p then new_segments cs ps
      else if c < p then 1 + new_segments cs (p :: ps)
      else new_segments (c :: cs) ps

let simulate ~log topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Sched_error.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Sched_error.Not_well_nested v)
    | Ok _ ->
        let levels = Cst.Topology.levels topo in
        let num_nodes = Cst.Topology.num_nodes topo in
        let first_leaf = Cst.Topology.first_leaf topo in
        let parent = Cst.Topology.parent_table topo in
        let cap = Cst.Topology.cap_table topo in
        let from = Cst.Exec_log.length log in
        Cst.Exec_log.phase_done log ~levels;
        let comms = Cst_comm.Comm_set.comms set in
        let m = Array.length comms in
        let delivered = Array.make m false in
        let remaining = ref m in
        let up_res = Array.make (num_nodes + 1) 0 in
        let down_res = Array.make (num_nodes + 1) 0 in
        (* Sorted per-switch segment multisets; [prev] persists across
           rounds (lazy carry-over: an identical segment re-routed next
           round costs no write). *)
        let prev = Array.make (num_nodes + 1) [] in
        let cur = Array.make (num_nodes + 1) [] in
        let touched = ref [] in
        let add_seg v s =
          if cur.(v) = [] then touched := v :: !touched;
          cur.(v) <- s :: cur.(v)
        in
        (* Walk the path of comm [c], charging residuals and recording
           segments.  Returns false (and commits nothing) if any link on
           the path has no free lane this round. *)
        let try_admit (c : Cst_comm.Comm.t) =
          let a = ref (first_leaf + c.src) and b = ref (first_leaf + c.dst) in
          let ok = ref true in
          while !a <> !b do
            if !a > !b then begin
              if up_res.(!a) < 1 then ok := false;
              a := parent.(!a)
            end
            else begin
              if down_res.(!b) < 1 then ok := false;
              b := parent.(!b)
            end
          done;
          if !ok then begin
            let lca = !a in
            (* Second pass commits: residuals and switch segments. *)
            let x = ref (first_leaf + c.src) in
            let src_in = ref (-1) in
            while !x <> lca do
              up_res.(!x) <- up_res.(!x) - 1;
              let p = parent.(!x) in
              let idx = Cst.Topology.child_index topo !x in
              if p = lca then src_in := idx
              else add_seg p (seg ~in_port:idx ~out_port:(Cst.Topology.fanout_of topo p));
              x := p
            done;
            let y = ref (first_leaf + c.dst) in
            let dst_out = ref (-1) in
            while !y <> lca do
              down_res.(!y) <- down_res.(!y) - 1;
              let p = parent.(!y) in
              let idx = Cst.Topology.child_index topo !y in
              if p = lca then dst_out := idx
              else add_seg p (seg ~in_port:(Cst.Topology.fanout_of topo p) ~out_port:idx);
              y := p
            done;
            add_seg lca (seg ~in_port:!src_in ~out_port:!dst_out)
          end;
          !ok
        in
        let index = ref 0 in
        while !remaining > 0 do
          incr index;
          Cst.Exec_log.round_begin log ~index:!index;
          Array.blit cap 0 up_res 0 (num_nodes + 1);
          Array.blit cap 0 down_res 0 (num_nodes + 1);
          let admitted = ref [] in
          for j = 0 to m - 1 do
            if not delivered.(j) && try_admit comms.(j) then begin
              delivered.(j) <- true;
              decr remaining;
              admitted := j :: !admitted
            end
          done;
          (* The scan always admits at least the first undelivered
             communication (all residuals are full), so the loop makes
             progress every round. *)
          assert (!admitted <> []);
          let nodes = List.sort_uniq compare !touched in
          List.iter
            (fun v ->
              let segs = List.sort compare cur.(v) in
              let count = new_segments segs prev.(v) in
              if count > 0 then Cst.Exec_log.write_config log ~node:v ~count;
              prev.(v) <- segs;
              cur.(v) <- [])
            nodes;
          touched := [];
          List.iter
            (fun j ->
              let c = comms.(j) in
              Cst.Exec_log.deliver log ~src:c.Cst_comm.Comm.src ~dst:c.dst)
            (List.rev !admitted)
        done;
        Cst.Exec_log.run_end log ~rounds:!index;
        let rounds = !index in
        Ok
          ( from,
            {
              (* Modeled hardware cost: one up sweep to collect demand,
                 then per round one config sweep down the levels, one
                 grant sweep back and one data cycle. *)
              cycles = 1 + levels + (rounds * (levels + 2));
              (* One demand word up and one grant word down per tree
                 link per round, plus the initial collection. *)
              control_messages = 2 * (num_nodes - 1) * (rounds + 1);
              max_message_words = 2;
              state_words_per_switch = 5;
            } )

let run ?(keep_configs = true) ?log topo set =
  let log = match log with Some l -> l | None -> Cst.Exec_log.create () in
  match simulate ~log topo set with
  | Error e -> Error e
  | Ok (from, stats) ->
      let sched =
        Schedule.of_log ~from ~keep_configs ~set ~topo ~cycles:stats.cycles
          log
      in
      Ok (sched, stats)

let run_log ~log topo set =
  match simulate ~log topo set with
  | Error e -> Error e
  | Ok (_, stats) -> Ok stats

let run_exn ?keep_configs ?log topo set =
  match run ?keep_configs ?log topo set with
  | Ok r -> r
  | Error e -> invalid_arg (Format.asprintf "%a" Sched_error.pp e)

(* Register interpretation for the left-oriented algorithm (mirror of
   Step 1.3): m = min(S_R, D_L) matched pairs (source right, destination
   left); sr = S_R - m right sources passing above; sl = S_L (left
   sources always pass above); dl = D_L - m unmatched left destinations;
   dr = D_R (right destinations always come from above).  Source request
   indices count from the right, destination indices from the left. *)

let validate set =
  match
    Array.find_opt Cst_comm.Comm.is_right_oriented
      (Cst_comm.Comm_set.comms set)
  with
  | Some c -> Error (Csa.Not_well_nested (Cst_comm.Well_nested.Not_right_oriented c))
  | None -> (
      (* Interval structure (hence crossing) is orientation-blind: check
         well-nestedness on the flipped set. *)
      let flipped =
        Cst_comm.Comm_set.create_exn ~n:(Cst_comm.Comm_set.n set)
          (Array.to_list (Cst_comm.Comm_set.comms set)
          |> List.map (fun (c : Cst_comm.Comm.t) ->
                 Cst_comm.Comm.make ~src:c.dst ~dst:c.src))
      in
      match Cst_comm.Well_nested.check flipped with
      | Ok _ -> Ok ()
      | Error (Cst_comm.Well_nested.Crossing (a, b)) ->
          Error
            (Csa.Not_well_nested
               (Cst_comm.Well_nested.Crossing
                  ( Cst_comm.Comm.make ~src:a.dst ~dst:a.src,
                    Cst_comm.Comm.make ~src:b.dst ~dst:b.src )))
      | Error v -> Error (Csa.Not_well_nested v))

let phase1 topo set =
  let leaves = Cst.Topology.leaves topo in
  let num = 2 * leaves in
  let s_up = Array.make num 0 and d_up = Array.make num 0 in
  let states = Array.init leaves (fun _ -> Csa_state.zero ()) in
  let roles = Cst_comm.Comm_set.roles set in
  for pe = 0 to leaves - 1 do
    let node = Cst.Topology.node_of_pe topo pe in
    if pe < Array.length roles then
      match roles.(pe) with
      | Cst_comm.Comm_set.Source _ -> s_up.(node) <- 1
      | Cst_comm.Comm_set.Dest _ -> d_up.(node) <- 1
      | Cst_comm.Comm_set.Idle -> ()
  done;
  Cst.Topology.iter_internal_bottom_up topo (fun u ->
      let y = Cst.Topology.left topo u and z = Cst.Topology.right topo u in
      let s_l = s_up.(y) and d_l = d_up.(y) in
      let s_r = s_up.(z) and d_r = d_up.(z) in
      let m = min s_r d_l in
      states.(u) <-
        Csa_state.make ~m ~sl:s_l ~dl:(d_l - m) ~sr:(s_r - m) ~dr:d_r;
      s_up.(u) <- s_l + (s_r - m);
      d_up.(u) <- d_l - m + d_r);
  assert (s_up.(Cst.Topology.root) = 0 && d_up.(Cst.Topology.root) = 0);
  states

let configure (st : Csa_state.t) (msg : Downmsg.t) =
  let cfg = ref Cst.Switch_config.empty in
  let connect ~output ~input =
    cfg := Cst.Switch_config.set !cfg ~output ~input
  in
  let ri_used = ref false and lo_used = ref false in
  let left_s = ref None and left_d = ref None in
  let right_s = ref None and right_d = ref None in
  (match msg.Downmsg.sreq with
  | None -> ()
  | Some x ->
      if x < st.sr then begin
        connect ~output:Cst.Side.P ~input:Cst.Side.R;
        ri_used := true;
        st.sr <- st.sr - 1;
        right_s := Some x
      end
      else begin
        assert (x - st.sr < st.sl);
        connect ~output:Cst.Side.P ~input:Cst.Side.L;
        st.sl <- st.sl - 1;
        left_s := Some (x - st.sr)
      end);
  (match msg.Downmsg.dreq with
  | None -> ()
  | Some x ->
      if x < st.dl then begin
        connect ~output:Cst.Side.L ~input:Cst.Side.P;
        lo_used := true;
        st.dl <- st.dl - 1;
        left_d := Some x
      end
      else begin
        assert (x - st.dl < st.dr);
        connect ~output:Cst.Side.R ~input:Cst.Side.P;
        st.dr <- st.dr - 1;
        right_d := Some (x - st.dl)
      end);
  let scheduled_matched =
    if st.m > 0 && (not !ri_used) && not !lo_used then begin
      connect ~output:Cst.Side.L ~input:Cst.Side.R;
      st.m <- st.m - 1;
      right_s := Some st.sr;
      left_d := Some st.dl;
      true
    end
    else false
  in
  {
    Round.config = !cfg;
    to_left = { Downmsg.sreq = !left_s; dreq = !left_d };
    to_right = { Downmsg.sreq = !right_s; dreq = !right_d };
    scheduled_matched;
  }

let sweep topo states =
  let leaves = Cst.Topology.leaves topo in
  let wants = Array.make leaves Cst.Switch_config.empty in
  let sources = ref [] and dests = ref [] in
  let matched = ref 0 in
  let rec go node (msg : Downmsg.t) =
    if Cst.Topology.is_leaf topo node then begin
      let pe = Cst.Topology.pe_of_node topo node in
      (match msg.sreq with
      | Some 0 -> sources := pe :: !sources
      | None -> ()
      | Some _ -> assert false);
      (match msg.dreq with
      | Some 0 -> dests := pe :: !dests
      | None -> ()
      | Some _ -> assert false)
    end
    else begin
      let d = configure states.(node) msg in
      wants.(node) <- d.Round.config;
      if d.scheduled_matched then incr matched;
      go (Cst.Topology.left topo node) d.to_left;
      go (Cst.Topology.right topo node) d.to_right
    end
  in
  go Cst.Topology.root Downmsg.null;
  {
    Round.wants;
    sources = List.rev !sources;
    dests = List.rev !dests;
    matched_count = !matched;
  }

let run ?keep_configs ?net ?log topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Csa.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match validate set with
    | Error e -> Error e
    | Ok () ->
        let states = phase1 topo set in
        let net =
          match net with
          | Some net ->
              if log <> None then
                invalid_arg "Left.run: ?log and ?net are exclusive";
              if Cst.Topology.leaves (Cst.Net.topology net) <> leaves then
                invalid_arg "Left.run: net topology mismatch";
              net
          | None -> Cst.Net.create ?log topo
        in
        let log = Cst.Net.log net in
        let from = Cst.Exec_log.length log in
        Cst.Exec_log.phase_done log ~levels:(Cst.Topology.levels topo);
        let remaining =
          ref
            (Array.fold_left (fun acc (s : Csa_state.t) -> acc + s.m) 0 states)
        in
        let index = ref 0 in
        try
        while !remaining > 0 do
          incr index;
          Cst.Exec_log.round_begin log ~index:!index;
          let out = sweep topo states in
          if out.matched_count = 0 then
            raise (Csa.Stall { round = !index; remaining = !remaining });
          for node = 1 to leaves - 1 do
            Cst.Net.reconfigure_lazy net ~node ~want:out.wants.(node)
          done;
          List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) out.sources;
          let deliveries = Cst.Data_plane.transfer net ~sources:out.sources in
          List.iter
            (fun (src, dst) -> Cst.Exec_log.deliver log ~src ~dst)
            deliveries;
          assert (List.length deliveries = out.matched_count);
          remaining := !remaining - out.matched_count
        done;
        Cst.Exec_log.run_end log ~rounds:!index;
        let levels = Cst.Topology.levels topo in
        Ok
          (Schedule.of_log ~from ?keep_configs ~set ~topo
             ~cycles:(levels + (!index * (levels + 1)))
             log)
        with Csa.Stall { round; remaining } ->
          Error (Csa.Stalled { round; remaining })

let run_exn ?keep_configs ?net ?log topo set =
  match run ?keep_configs ?net ?log topo set with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "%a" Csa.pp_error e)

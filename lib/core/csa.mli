(** The Configuration and Scheduling Algorithm (paper §3).

    Runs Phase 1 once, then Phase 2 rounds until every communication has
    been performed.  Switch reconfiguration is {e lazy} (PADR): a switch's
    live configuration is only touched where the round's decisions require
    it, which is what yields O(1) configuration changes per switch
    (Theorem 8).  Setting [eager_clear] reconfigures each switch to exactly
    the round's connections, clearing everything else — the behaviour the
    ablation experiment contrasts against. *)

type error = Sched_error.t =
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }
      (** A scheduling round matched nothing while communications remained.
          Impossible for well-nested input (Theorem 4 guarantees progress);
          reported as data so harnesses like [bin/fuzz.ml] can detect a
          broken internal invariant structurally instead of catching
          [Failure _]. *)
(** Re-export of {!Sched_error.t}, the error type shared with
    {!Cap_engine}. *)

val pp_error : Format.formatter -> error -> unit

exception Stall of { round : int; remaining : int }
(** Internal: raised by scheduling loops on a no-progress round and mapped
    to [Error (Stalled _)] at each [run] boundary. *)

val run :
  ?keep_configs:bool ->
  ?eager_clear:bool ->
  ?net:Cst.Net.t ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t, error) result
(** [run topo set] schedules a right-oriented well-nested [set].
    The run is emitted into an execution log (the net's own, or [?log]
    when a fresh net is created — exclusive with [?net]) and the
    returned schedule is derived from it ({!Schedule.of_log}); build a
    narration with [Cst.Trace.of_log] if wanted.
    On a non-binary topology the run is delegated to {!Cap_engine} (the
    3-sided message protocol does not generalize); [?net] is then
    rejected and [eager_clear] ignored.
    [keep_configs] (default true) stores per-round configuration snapshots
    in the schedule for verification; disable for timing benchmarks.
    [net] runs the schedule on an existing network whose switch
    configurations persist from earlier runs — the PADR carry-over across
    consecutive communication phases; the reported power is this run's
    share only.  The net's topology must equal [topo]. *)

val run_exn :
  ?keep_configs:bool ->
  ?eager_clear:bool ->
  ?net:Cst.Net.t ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t

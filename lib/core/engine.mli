(** Message-passing execution of the CSA.

    The functional scheduler ({!Csa}) is the specification; this engine
    executes the same algorithm as the paper's hardware would: nodes
    communicate only through explicit mailboxes, one tree level per clock
    cycle, and every switch decision is taken by {!Round.configure} from
    the switch's own registers and its single incoming message.  The
    engine therefore demonstrates the locality claim and measures the
    quantities of Theorem 5: cycles, message count and message size.

    Two implementations are exposed.  {!run} is the sparse-frontier engine:
    Phase 1 walks precomputed level buckets and each Phase-2 down sweep
    follows an explicit frontier of nodes that hold a message or still own
    an unscheduled match, so a round costs O(active paths * depth) of
    simulator time instead of O(n log n).  {!run_dense} is the original
    full-tree level scan, kept as the reference: both produce identical
    schedules and stats (asserted by test/test_engine_equiv.ml) — the
    modeled hardware cost (cycles, control messages) is the same, only the
    simulation cost differs.

    Tests assert that the engine's schedule is identical, round for round,
    to {!Csa.run}'s.

    On a non-binary topology every entry point delegates to
    {!Cap_engine} — the 3-sided message protocol is binary-only — so
    sparse, dense and spec runs remain log-identical on every shape. *)

type stats = Cap_engine.stats = {
  cycles : int;  (** total clock cycles, Phase 1 included *)
  control_messages : int;  (** messages exchanged over tree links *)
  max_message_words : int;  (** largest message, in words — a constant *)
  state_words_per_switch : int;  (** switch storage, in words — 5 *)
}

val run :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t * stats, Csa.error) result
(** Sparse-frontier engine.  [Error (Stalled _)] signals a no-progress
    round — impossible for well-nested input.  The run appends to
    [?log] (or a private log) and the schedule is derived from it. *)

val run_exn :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t * stats

val run_log :
  log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (stats, Csa.error) result
(** [run] without the schedule: simulates into [log] and returns only
    the hardware statistics.  For callers that consume the log directly
    — the segment-parallel engine runs one of these per block and
    derives a single schedule from the merged log, so per-block
    schedule construction would be pure waste. *)

val run_dense :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t * stats, Csa.error) result
(** Reference implementation: scans all [2n-1] nodes at every level of
    every sweep.  Kept for the equivalence suite and as the benchmark
    baseline; produces exactly {!run}'s output. *)

val run_dense_exn :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t * stats

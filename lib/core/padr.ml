module Exec_log = Exec_log
module Schedule = Schedule
module Verify = Verify
module Csa = Csa
module Engine = Engine
module Cap_engine = Cap_engine
module Par_engine = Par_engine
module Phase1 = Phase1
module Round = Round
module Downmsg = Downmsg
module Csa_state = Csa_state
module Waves = Waves
module Plan = Plan
module Left = Left
module Invariants = Invariants

type error = Csa.error

let pp_error = Csa.pp_error

let topology_for set =
  Cst.Topology.create
    ~leaves:(Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n set)))

let topo_of ?shape ?leaves set =
  match (shape, leaves) with
  | Some _, Some _ -> invalid_arg "Padr: ?shape and ?leaves are exclusive"
  | Some shape, None -> Cst.Topology.of_shape shape
  | None, Some leaves -> Cst.Topology.create ~leaves
  | None, None -> topology_for set

let schedule ?shape ?leaves ?keep_configs ?log set =
  Csa.run ?keep_configs ?log (topo_of ?shape ?leaves set) set

let schedule_exn ?shape ?leaves ?keep_configs ?log set =
  Csa.run_exn ?keep_configs ?log (topo_of ?shape ?leaves set) set

let verify (sched : Schedule.t) =
  Verify.schedule (Cst.Topology.create ~leaves:sched.leaves) sched.set sched

type mixed = {
  right : Schedule.t option;
  left : Schedule.t option;
  rounds : int;
  power_units : int;
}

let schedule_mixed ?leaves set =
  let right_part, left_part = Cst_comm.Decompose.split set in
  let run part =
    if Cst_comm.Comm_set.size part = 0 then Ok None
    else Result.map Option.some (schedule ?leaves part)
  in
  match run right_part with
  | Error e -> Error e
  | Ok right -> (
      match run (Cst_comm.Mirror.set left_part) with
      | Error e -> Error e
      | Ok left ->
          let rounds_of = function
            | None -> 0
            | Some s -> Schedule.num_rounds s
          in
          let power_of = function
            | None -> 0
            | Some (s : Schedule.t) -> s.power.total_connects
          in
          Ok
            {
              right;
              left;
              rounds = rounds_of right + rounds_of left;
              power_units = power_of right + power_of left;
            })

let mixed_deliveries m =
  let right =
    match m.right with None -> [] | Some s -> Schedule.all_deliveries s
  in
  let left =
    match m.left with
    | None -> []
    | Some s ->
        (* Undo the reflection with the same n used to mirror the part. *)
        let n = Cst_comm.Comm_set.n s.set in
        List.map
          (fun (src, dst) ->
            (Cst_comm.Mirror.pe ~n src, Cst_comm.Mirror.pe ~n dst))
          (Schedule.all_deliveries s)
  in
  List.sort compare (right @ left)

(** Capacity-aware scheduler for generalized topologies.

    The CSA's 3-sided switch protocol ({!Phase1}/{!Round}/[Cst.Net]) is
    intrinsically binary; on k-ary and capacity-weighted fat-tree shapes
    scheduling is done by this explicit greedy circuit allocator
    instead: every round it scans the undelivered communications in
    source order and admits each one whose leaf-to-leaf path has a free
    lane on every directed link (a capacity-[c] link carries [c]
    simultaneous circuits).  On the bench's nested traces a set of
    capacity-weighted width [w] ({!Cst_comm.Width.width_on}) completes
    in exactly [w] rounds — Theorem 5 divided by the oversubscription
    ratio.

    Emitted logs follow the standard single-run grammar with switch
    reconfiguration expressed as [Write_config {node; count}] events
    ([count] = newly installed circuit segments under lazy carry-over;
    the packed [Connect]/[Disconnect] words cannot describe a fanout-k
    crossbar).  All log derivations — digest, power meter, schedule,
    segment merge — treat [Write_config] as a config event, so they
    work unchanged.  Binary callers never come here: {!Csa.run} and
    {!Engine} dispatch on [Cst.Topology.is_binary]. *)

type stats = {
  cycles : int;  (** modeled clock cycles, demand collection included *)
  control_messages : int;  (** modeled per-link demand/grant words *)
  max_message_words : int;
  state_words_per_switch : int;
}

val run :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t * stats, Sched_error.t) result
(** Schedule a well-nested set on any shape.  Appends the run to
    [?log] (or a private log) and derives the schedule from it.  Config
    snapshots in the schedule are empty (crossbar state is not
    representable as [Switch_config.t]); deliveries, rounds, width and
    power are all populated. *)

val run_exn :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t * stats

val run_log :
  log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (stats, Sched_error.t) result
(** [run] without the schedule, for callers that consume the log
    directly (the segment-parallel engine merges per-block logs). *)

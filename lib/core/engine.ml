type stats = Cap_engine.stats = {
  cycles : int;
  control_messages : int;
  max_message_words : int;
  state_words_per_switch : int;
}

(* A small growable int buffer: the per-round source/dest/dirty lists are
   appended to thousands of times per run, so they are reused across rounds
   and only ever grow. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create cap = { a = Array.make (max cap 1) 0; len = 0 }
  let clear b = b.len <- 0
  let get b i = b.a.(i)

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let to_list b = List.init b.len (fun i -> b.a.(i))
end

(* Per-run workspace, allocated once and reused by every round.  All
   node-indexed arrays are sized exactly ([num_nodes] or [leaves - 1]
   slots, indexed [node - 1]) and cleared through dirty lists, never by
   whole-array fills. *)
type workspace = {
  up_s : int array;  (* Phase-1 mailboxes, (s, d) split into two *)
  up_d : int array;  (* unboxed int arrays; length num_nodes. *)
  states : Csa_state.t array;  (* switch registers; length leaves - 1 *)
  pending : int array;
      (* pending.(v-1) = unscheduled matches left in v's subtree; the
         frontier prunes any child subtree with no message and no pending
         match, which bounds a round at O(active paths * depth). *)
  wants : Cst.Switch_config.t array;  (* length leaves - 1 *)
  dirty : Ibuf.t;  (* switches whose want was set this round *)
  stack_node : int array;  (* DFS frontier stack; length levels + 2 *)
  stack_msg : Downmsg.t array;
  srcs : Ibuf.t;
  dsts : Ibuf.t;
}

let make_workspace topo =
  let leaves = Cst.Topology.leaves topo in
  let num = (2 * leaves) - 1 in
  let cap = Cst.Topology.levels topo + 2 in
  {
    up_s = Array.make num 0;
    up_d = Array.make num 0;
    states = Array.init (leaves - 1) (fun _ -> Csa_state.zero ());
    pending = Array.make (leaves - 1) 0;
    wants = Array.make (leaves - 1) Cst.Switch_config.empty;
    dirty = Ibuf.create 64;
    stack_node = Array.make cap 0;
    stack_msg = Array.make cap Downmsg.null;
    srcs = Ibuf.create 64;
    dsts = Ibuf.create 64;
  }

(* The sparse engine executes the same message-passing algorithm as
   {!run_dense} but only ever visits nodes that can act: Phase 1 walks the
   precomputed level buckets (every node speaks exactly once), and each
   Phase-2 down sweep follows an explicit frontier of nodes that hold a
   message or still contain unscheduled matches.  Quiescent switches
   neither execute [Round.configure] (their decision is provably the null
   decision) nor get reconfigured.  Cycle and control-message counts are
   accounted in closed form for the skipped switches — the simulated
   hardware still clocks every level and still exchanges the null
   messages; the simulator just does not spend wall-clock on them. *)
let simulate ?log topo set =
  assert (Cst.Topology.is_binary topo);
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Csa.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Csa.Not_well_nested v)
    | Ok _ ->
        let levels = Cst.Topology.levels topo in
        let net = Cst.Net.create ?log topo in
        let log = Cst.Net.log net in
        let from = Cst.Exec_log.length log in
        let ws = make_workspace topo in
        let cycles = ref 0 and messages = ref 0 in
        let max_words = ref 0 in
        let send words =
          incr messages;
          max_words := max !max_words words
        in

        (* Phase 1: leaves post (s, d) pairs, then one level per cycle,
           walking the level buckets — O(n) total instead of a full-tree
           scan per level. *)
        let roles = Cst_comm.Comm_set.roles set in
        for pe = 0 to leaves - 1 do
          let node = leaves + pe in
          let s, d =
            if pe < Array.length roles then
              match roles.(pe) with
              | Cst_comm.Comm_set.Source _ -> (1, 0)
              | Cst_comm.Comm_set.Dest _ -> (0, 1)
              | Cst_comm.Comm_set.Idle -> (0, 0)
            else (0, 0)
          in
          ws.up_s.(node - 1) <- s;
          ws.up_d.(node - 1) <- d;
          send Phase1.up_words_per_message
        done;
        incr cycles;
        for lvl = 1 to levels do
          let bucket = Cst.Topology.nodes_at_level topo lvl in
          Array.iter
            (fun node ->
              let y = Cst.Topology.left_u node
              and z = Cst.Topology.right_u node in
              let s_l = ws.up_s.(y - 1) and d_l = ws.up_d.(y - 1) in
              let s_r = ws.up_s.(z - 1) and d_r = ws.up_d.(z - 1) in
              let m = min s_l d_r in
              ws.states.(node - 1) <-
                Csa_state.make ~m ~sl:(s_l - m) ~dl:d_l ~sr:s_r ~dr:(d_r - m);
              if node <> Cst.Topology.root then begin
                ws.up_s.(node - 1) <- s_l - m + s_r;
                ws.up_d.(node - 1) <- d_l + (d_r - m);
                send Phase1.up_words_per_message
              end)
            bucket;
          incr cycles
        done;
        Cst.Exec_log.phase_done log ~levels;

        (* Subtree pending-match counters drive the frontier pruning. *)
        for v = leaves - 1 downto 1 do
          let below =
            if 2 * v < leaves then ws.pending.(2 * v - 1) + ws.pending.(2 * v)
            else 0
          in
          ws.pending.(v - 1) <- ws.states.(v - 1).m + below
        done;

        let remaining = ref ws.pending.(Cst.Topology.root - 1) in
        let index = ref 0 in
        (* Per round, the modeled hardware exchanges one down message per
           tree link (2*(leaves-1) messages of [Downmsg.words] words) and
           clocks levels+1 sweep cycles plus one data cycle, whether or not
           a switch has anything to do; charged in closed form. *)
        let round_messages = 2 * (leaves - 1) in
        let round_message_words = Downmsg.words Downmsg.null in
        try
          while !remaining > 0 do
            incr index;
            Cst.Exec_log.round_begin log ~index:!index;
            for i = 0 to ws.dirty.len - 1 do
              ws.wants.(Ibuf.get ws.dirty i - 1) <- Cst.Switch_config.empty
            done;
            Ibuf.clear ws.dirty;
            Ibuf.clear ws.srcs;
            Ibuf.clear ws.dsts;
            let matched = ref 0 in
            (* Down sweep over the active frontier only.  Pushing the right
               child first makes the explicit stack visit leaves in
               increasing PE order, like the dense level scan. *)
            let sp = ref 0 in
            let push node msg =
              ws.stack_node.(!sp) <- node;
              ws.stack_msg.(!sp) <- msg;
              incr sp
            in
            push Cst.Topology.root Downmsg.null;
            while !sp > 0 do
              decr sp;
              let node = ws.stack_node.(!sp) in
              let msg = ws.stack_msg.(!sp) in
              if node >= leaves then begin
                let pe = node - leaves in
                (match msg.Downmsg.sreq with
                | Some 0 -> Ibuf.push ws.srcs pe
                | None -> ()
                | Some _ -> assert false);
                match msg.Downmsg.dreq with
                | Some 0 -> Ibuf.push ws.dsts pe
                | None -> ()
                | Some _ -> assert false
              end
              else begin
                let d = Round.configure ws.states.(node - 1) msg in
                if not (Cst.Switch_config.is_empty d.config) then begin
                  ws.wants.(node - 1) <- d.config;
                  Ibuf.push ws.dirty node
                end;
                if d.scheduled_matched then begin
                  incr matched;
                  let v = ref node in
                  while !v >= 1 do
                    ws.pending.(!v - 1) <- ws.pending.(!v - 1) - 1;
                    v := !v lsr 1
                  done
                end;
                let live child (m : Downmsg.t) =
                  m.sreq <> None || m.dreq <> None
                  || (child < leaves && ws.pending.(child - 1) > 0)
                in
                let l = Cst.Topology.left_u node
                and r = Cst.Topology.right_u node in
                if live r d.to_right then push r d.to_right;
                if live l d.to_left then push l d.to_left
              end
            done;
            if !matched = 0 then
              raise (Csa.Stall { round = !index; remaining = !remaining });
            messages := !messages + round_messages;
            max_words := max !max_words round_message_words;
            cycles := !cycles + levels + 1;
            (* Only switches whose want changed are reconfigured; for every
               other switch [reconfigure_lazy] with an empty want is a
               provable no-op (lazy merge keeps the old configuration and
               charges nothing). *)
            for i = 0 to ws.dirty.len - 1 do
              let node = Ibuf.get ws.dirty i in
              Cst.Net.reconfigure_lazy net ~node ~want:ws.wants.(node - 1)
            done;
            let sources = Ibuf.to_list ws.srcs in
            List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) sources;
            let deliveries = Cst.Data_plane.transfer net ~sources in
            List.iter
              (fun (src, dst) -> Cst.Exec_log.deliver log ~src ~dst)
              deliveries;
            incr cycles;
            (* the data transfer cycle *)
            remaining := !remaining - !matched
          done;
          Cst.Exec_log.run_end log ~rounds:!index;
          Ok
            ( log,
              from,
              {
                cycles = !cycles;
                control_messages = !messages;
                max_message_words = !max_words;
                state_words_per_switch = Csa_state.words ws.states.(0);
              } )
        with Csa.Stall { round; remaining } ->
          Error (Csa.Stalled { round; remaining })

let run ?(keep_configs = true) ?log topo set =
  if not (Cst.Topology.is_binary topo) then
    Cap_engine.run ~keep_configs ?log topo set
  else
    match simulate ?log topo set with
    | Error e -> Error e
    | Ok (log, from, stats) ->
        let sched =
          Schedule.of_log ~from ~keep_configs ~set ~topo ~cycles:stats.cycles
            log
        in
        Ok (sched, stats)

let run_log ~log topo set =
  if not (Cst.Topology.is_binary topo) then Cap_engine.run_log ~log topo set
  else
    match simulate ~log topo set with
    | Error e -> Error e
    | Ok (_, _, stats) -> Ok stats

let run_exn ?keep_configs ?log topo set =
  match run ?keep_configs ?log topo set with
  | Ok r -> r
  | Error e -> invalid_arg (Format.asprintf "%a" Csa.pp_error e)

(* The original dense engine: scans every node at every level of every
   sweep.  Kept verbatim as the reference implementation — the
   equivalence suite (test/test_engine_equiv.ml) asserts that {!run}
   produces byte-identical schedules and stats, and the benchmark
   baseline times both. *)
let run_dense ?(keep_configs = true) ?log topo set =
  if not (Cst.Topology.is_binary topo) then
    Cap_engine.run ~keep_configs ?log topo set
  else
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Csa.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Csa.Not_well_nested v)
    | Ok _ ->
        let cycles = ref 0 and messages = ref 0 in
        let max_words = ref 0 in
        let send words = incr messages; max_words := max !max_words words in

        (* Phase 1: each node posts its (s, d) word pair to its parent;
           a switch fires once both children's mailboxes are full.  One
           level per cycle. *)
        let up_box = Array.make (2 * leaves) None in
        let roles = Cst_comm.Comm_set.roles set in
        for pe = 0 to leaves - 1 do
          let node = Cst.Topology.node_of_pe topo pe in
          let msg =
            if pe < Array.length roles then
              match roles.(pe) with
              | Cst_comm.Comm_set.Source _ -> (1, 0)
              | Cst_comm.Comm_set.Dest _ -> (0, 1)
              | Cst_comm.Comm_set.Idle -> (0, 0)
            else (0, 0)
          in
          up_box.(node) <- Some msg;
          send Phase1.up_words_per_message
        done;
        incr cycles;
        let states = Array.init leaves (fun _ -> Csa_state.zero ()) in
        let levels = Cst.Topology.levels topo in
        for lvl = 1 to levels do
          (* Internal nodes at this level consume their children's boxes. *)
          for node = 1 to leaves - 1 do
            if Cst.Topology.level topo node = lvl then begin
              let y = Cst.Topology.left topo node
              and z = Cst.Topology.right topo node in
              match (up_box.(y), up_box.(z)) with
              | Some (s_l, d_l), Some (s_r, d_r) ->
                  let m = min s_l d_r in
                  states.(node) <-
                    Csa_state.make ~m ~sl:(s_l - m) ~dl:d_l ~sr:s_r
                      ~dr:(d_r - m);
                  if node <> Cst.Topology.root then begin
                    up_box.(node) <- Some (s_l - m + s_r, d_l + (d_r - m));
                    send Phase1.up_words_per_message
                  end
              | _ -> assert false
            end
          done;
          incr cycles
        done;

        let net = Cst.Net.create ?log topo in
        let log = Cst.Net.log net in
        let from = Cst.Exec_log.length log in
        Cst.Exec_log.phase_done log ~levels;
        let remaining =
          ref
            (Array.fold_left
               (fun acc (s : Csa_state.t) -> acc + s.m)
               0 states)
        in
        let index = ref 0 in
        let down_box = Array.make (2 * leaves) None in
        try
          while !remaining > 0 do
            incr index;
            Cst.Exec_log.round_begin log ~index:!index;
            Array.fill down_box 0 (Array.length down_box) None;
            down_box.(Cst.Topology.root) <- Some Downmsg.null;
            let sources = ref [] and dests = ref [] in
            let matched = ref 0 in
            let wants = Array.make leaves Cst.Switch_config.empty in
            (* Down pass: one level per cycle, root first. *)
            for lvl = levels downto 0 do
              for node = 1 to (2 * leaves) - 1 do
                if Cst.Topology.level topo node = lvl then
                  match down_box.(node) with
                  | None -> ()
                  | Some (msg : Downmsg.t) ->
                      if Cst.Topology.is_leaf topo node then begin
                        let pe = Cst.Topology.pe_of_node topo node in
                        (match msg.sreq with
                        | Some 0 -> sources := pe :: !sources
                        | None -> ()
                        | Some _ -> assert false);
                        match msg.dreq with
                        | Some 0 -> dests := pe :: !dests
                        | None -> ()
                        | Some _ -> assert false
                      end
                      else begin
                        let d = Round.configure states.(node) msg in
                        wants.(node) <- d.config;
                        if d.scheduled_matched then incr matched;
                        down_box.(Cst.Topology.left topo node) <-
                          Some d.to_left;
                        down_box.(Cst.Topology.right topo node) <-
                          Some d.to_right;
                        send (Downmsg.words d.to_left);
                        send (Downmsg.words d.to_right)
                      end
              done;
              incr cycles
            done;
            if !matched = 0 then
              raise (Csa.Stall { round = !index; remaining = !remaining });
            for node = 1 to leaves - 1 do
              Cst.Net.reconfigure_lazy net ~node ~want:wants.(node)
            done;
            let sources = List.rev !sources in
            List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) sources;
            let deliveries = Cst.Data_plane.transfer net ~sources in
            List.iter
              (fun (src, dst) -> Cst.Exec_log.deliver log ~src ~dst)
              deliveries;
            incr cycles;
            (* the data transfer cycle *)
            remaining := !remaining - !matched
          done;
          Cst.Exec_log.run_end log ~rounds:!index;
          let sched =
            Schedule.of_log ~from ~keep_configs ~set ~topo ~cycles:!cycles log
          in
          Ok
            ( sched,
              {
                cycles = !cycles;
                control_messages = !messages;
                max_message_words = !max_words;
                state_words_per_switch = Csa_state.words states.(1);
              } )
        with Csa.Stall { round; remaining } ->
          Error (Csa.Stalled { round; remaining })

let run_dense_exn ?keep_configs ?log topo set =
  match run_dense ?keep_configs ?log topo set with
  | Ok r -> r
  | Error e -> invalid_arg (Format.asprintf "%a" Csa.pp_error e)

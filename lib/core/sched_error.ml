(* Scheduling error, shared by every engine.  A leaf module so that both
   [Csa] (the spec scheduler) and [Cap_engine] (the generalized-topology
   scheduler) can name the same type without depending on each other;
   [Csa.error] re-exports the constructors, so callers keep writing
   [Csa.Too_large]. *)

type t =
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }

let pp fmt = function
  | Too_large { n; leaves } ->
      Format.fprintf fmt "set over %d PEs does not fit a %d-leaf CST" n leaves
  | Not_well_nested v ->
      Format.fprintf fmt "set is not schedulable by the CSA: %a"
        Cst_comm.Well_nested.pp_violation v
  | Stalled { round; remaining } ->
      Format.fprintf fmt
        "scheduler stalled in round %d with %d communications pending \
         (internal invariant broken)"
        round remaining

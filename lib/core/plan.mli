(** Compile-once / replay-many routing plans.

    A plan freezes one scheduler run — its canonical execution log plus
    the derived round/cycle metadata — into an immutable artifact keyed
    by the set's structural signature ({!Cst.Canon}).  Replaying a plan
    reconstructs the full {!Schedule.t} for any set congruent to the
    compiled one (same signature, any compatible placement and tree
    size) without re-running the scheduler: the log is relocated with
    {!Cst.Exec_log.rebase} in O(events) and the schedule derived from
    it, byte-identical (same {!Cst.Exec_log.digest}) to a fresh run on
    the target set. *)

type producer = Spec | Engine
(** Which cycle model the compiled run obeys: the functional scheduler
    family ([cycles = levels + rounds*(levels+1)], control-message
    free) or the message-passing engine
    ([cycles = 1 + levels + rounds*(levels+2)],
    [2*(leaves-1)*(rounds+1)] control messages). *)

type t = private {
  producer : producer;
  shape : Cst.Shape.t;  (** topology shape the plan was compiled on *)
  leaves : int;  (** tree size the plan was compiled at *)
  base : int;  (** leaf offset of the compiled set's aligned block *)
  canon : Cst.Canon.t;  (** structural signature of the compiled set *)
  rounds : int;
  cycles : int;  (** at the compiled [leaves] *)
  control_messages : int;  (** at the compiled [leaves]; 0 under [Spec] *)
  log : Cst.Exec_log.t;
      (** private frozen copy of the run's events — never mutated *)
}

val of_log :
  producer:producer ->
  topo:Cst.Topology.t ->
  set:Cst_comm.Comm_set.t ->
  rounds:int ->
  cycles:int ->
  ?control_messages:int ->
  Cst.Exec_log.t ->
  t
(** Freezes an already-performed run whose events are exactly the
    contents of the given log (the service's cache-miss path: the run
    it just executed becomes the plan, with no second scheduling).  The
    log is copied into a private arena. *)

val compile :
  ?producer:producer ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (t, Csa.error) result
(** Schedules the set ([producer] defaults to [Engine], wrapping
    {!Engine.run}; [Spec] wraps {!Csa.run}) and freezes the run. *)

type replayed = {
  schedule : Schedule.t;
  log : Cst.Exec_log.t;
      (** the relocated event log — digest-identical to a fresh run on
          the target set; aliases the plan's arena when the placement
          is unchanged, so treat it as read-only *)
  cycles : int;
  control_messages : int;  (** re-modeled for the target tree size *)
}

val replay :
  ?keep_configs:bool -> t -> Cst.Topology.t -> Cst_comm.Comm_set.t -> replayed
(** Reconstructs the schedule of [set] on [topo] from the plan.  [set]
    must carry the plan's signature (checked; [Invalid_argument]
    otherwise) and fit the topology.  O(events + size·log leaves) — no
    scheduling.

    Binary plans relocate freely: any compatible placement on any
    binary tree size, via {!Cst.Exec_log.rebase}.  Non-binary plans
    replay only on a topology of the {e identical} shape with the set
    at the {e identical} placement — translation is not a congruence
    once subtrees at one depth stop being isomorphic and capacities are
    positional — and raise [Invalid_argument] otherwise. *)

val bytes : t -> int
(** Approximate heap footprint (event arena + signature + boxing);
    the plan cache's budget unit. *)

val pp : Format.formatter -> t -> unit

(** {1 Binary codec}

    Self-contained little-endian serialization of a plan — the record
    the persistent plan store writes to disk.  Layout: an 80-byte plan
    header, a shape block (version 2 only), the canon offsets, then the
    embedded event-log section ({!Cst.Exec_log.Codec}) whose header
    carries the canon hash:

    {v
    offset  size  field
         0     8  magic "CSTPLAN1"
         8     4  format version (u32 LE): 1 or 2
        12     1  producer (0 = Spec, 1 = Engine)
        13     3  reserved, zero
        16     8  leaves            (u64 LE)
        24     8  base              (u64 LE)
        32     8  rounds            (u64 LE)
        40     8  cycles            (u64 LE)
        48     8  control messages  (u64 LE)
        56     8  canon align       (u64 LE)
        64     8  canon offset count n (u64 LE)
        72     8  meta digest       (u64 LE, FNV-1a over bytes 0-71,
                                     the shape block and the offsets)
      [ 80  4+8(L+1)  shape block — version 2 only: levels L (u32),
                                     then L+1 sizes and L+1 caps (u32),
                                     both root-first ]
      then    8n  offsets: n × (u32 LE src, u32 LE dst)
      then     -  Exec_log.Codec section (canon hash + shape
                  fingerprint in its header)
    v}

    {!Codec.encode} picks the version from the plan's shape: binary
    shapes emit the historical version-1 bytes (no shape block,
    version-1 log section), so every pre-existing plan file — and every
    new binary plan — is byte-identical to the classic format.
    Non-binary plans emit version 2.  {!Codec.decode} accepts both;
    version-1 input reads back with [shape = Cst.Shape.binary].

    Decode re-derives everything it can and believes nothing it
    cannot: the meta digest guards the header, shape block and offsets,
    the embedded log section's own digest guards the arena, the canon
    is rebuilt through {!Cst.Canon.of_offsets} (which re-validates
    canonicality and recomputes the hash), the rebuilt hash must equal
    the one stored in the log header — so a plan whose offsets and log
    were spliced from different plans is rejected as
    {!Codec.error.Canon_mismatch}, not returned as a plausible
    frankenplan — and the shape block is revalidated through
    {!Cst.Shape.create} with its fingerprint checked against the log
    section's. *)
module Codec : sig
  type error =
    | Truncated of { expected : int; got : int }
    | Bad_magic
    | Unsupported_version of { found : int; expected : int }
    | Digest_mismatch  (** plan header/offsets fail the meta digest *)
    | Canon_mismatch
        (** the log section's stored canon hash differs from the hash
            of the canon rebuilt from the offsets *)
    | Bad_field of string
        (** a digest-valid field is semantically impossible (producer
            byte, non-canonical offsets, leaves not a power of two,
            incompatible placement, negative count) *)
    | Log of Cst.Exec_log.Codec.error  (** embedded log section failed *)

  val pp_error : Format.formatter -> error -> unit

  val version : int
  val encoded_bytes : t -> int
  val encode : t -> bytes

  val decode : bytes -> (t, error) result
  (** Rejects trailing garbage after the log section as
      [Bad_field "trailing bytes"]. *)

  val write_file : path:string -> t -> unit
  (** Atomic publish: writes [path ^ ".tmp"] then renames over [path],
      so a concurrent reader sees either the old file or the new one,
      never a torn write.  Raises [Sys_error] on I/O failure. *)

  val read_file : path:string -> (t, error) result
  (** Raises [Sys_error] if the file cannot be opened or read; content
      problems come back as typed errors. *)
end

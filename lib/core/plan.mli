(** Compile-once / replay-many routing plans.

    A plan freezes one scheduler run — its canonical execution log plus
    the derived round/cycle metadata — into an immutable artifact keyed
    by the set's structural signature ({!Cst.Canon}).  Replaying a plan
    reconstructs the full {!Schedule.t} for any set congruent to the
    compiled one (same signature, any compatible placement and tree
    size) without re-running the scheduler: the log is relocated with
    {!Cst.Exec_log.rebase} in O(events) and the schedule derived from
    it, byte-identical (same {!Cst.Exec_log.digest}) to a fresh run on
    the target set. *)

type producer = Spec | Engine
(** Which cycle model the compiled run obeys: the functional scheduler
    family ([cycles = levels + rounds*(levels+1)], control-message
    free) or the message-passing engine
    ([cycles = 1 + levels + rounds*(levels+2)],
    [2*(leaves-1)*(rounds+1)] control messages). *)

type t = private {
  producer : producer;
  leaves : int;  (** tree size the plan was compiled at *)
  base : int;  (** leaf offset of the compiled set's aligned block *)
  canon : Cst.Canon.t;  (** structural signature of the compiled set *)
  rounds : int;
  cycles : int;  (** at the compiled [leaves] *)
  control_messages : int;  (** at the compiled [leaves]; 0 under [Spec] *)
  log : Cst.Exec_log.t;
      (** private frozen copy of the run's events — never mutated *)
}

val of_log :
  producer:producer ->
  topo:Cst.Topology.t ->
  set:Cst_comm.Comm_set.t ->
  rounds:int ->
  cycles:int ->
  ?control_messages:int ->
  Cst.Exec_log.t ->
  t
(** Freezes an already-performed run whose events are exactly the
    contents of the given log (the service's cache-miss path: the run
    it just executed becomes the plan, with no second scheduling).  The
    log is copied into a private arena. *)

val compile :
  ?producer:producer ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (t, Csa.error) result
(** Schedules the set ([producer] defaults to [Engine], wrapping
    {!Engine.run}; [Spec] wraps {!Csa.run}) and freezes the run. *)

type replayed = {
  schedule : Schedule.t;
  log : Cst.Exec_log.t;
      (** the relocated event log — digest-identical to a fresh run on
          the target set; aliases the plan's arena when the placement
          is unchanged, so treat it as read-only *)
  cycles : int;
  control_messages : int;  (** re-modeled for the target tree size *)
}

val replay :
  ?keep_configs:bool -> t -> Cst.Topology.t -> Cst_comm.Comm_set.t -> replayed
(** Reconstructs the schedule of [set] on [topo] from the plan.  [set]
    must carry the plan's signature (checked; [Invalid_argument]
    otherwise) and fit the topology.  O(events + size·log leaves) — no
    scheduling. *)

val bytes : t -> int
(** Approximate heap footprint (event arena + signature + boxing);
    the plan cache's budget unit. *)

val pp : Format.formatter -> t -> unit

(** Segment-parallel execution of the message-passing engine.

    A right-oriented well-nested set factors into independent top-level
    blocks ({!Cst_comm.Decompose.blocks}): each block's communications
    use only links of the subtree rooted at its aligned interval's node,
    and Phase 1 reports zero endpoint counts above every block root — so
    running {!Engine.run} on each block's own [align]-leaf tree is
    event-for-event the block's share of the sequential full-tree run.
    This module runs the blocks (concurrently on [domains > 1]), rebases
    each per-block log to its true leaf offset
    ({!Cst.Exec_log.rebase}) and merges them round-by-round
    ({!Cst.Exec_log.merge}) into a single log that is byte-identical —
    same {!Cst.Exec_log.digest}, same {!Schedule.of_log}, same
    {!Cst.Power_meter.of_log}, same
    {!Cst.Exec_log.driver_alternations} — to the sequential engine's, so
    Theorems 4/5/8 remain facts about the merged log.

    Latency becomes O(largest block) on real cores; on a single core the
    path costs only the decomposition and the merge on top of the
    sequential engine (benchmarked and gated, see EXPERIMENTS.md).

    On a non-binary topology blocks align to the shape's real subtree
    spans ([Decompose.blocks ~spans]), each block runs through
    {!Cap_engine} in absolute coordinates on the shared topology (rebase
    is a binary-subtree congruence), and the merged log is
    digest-identical to the whole-set capacity run: per-round greedy
    admission decomposes exactly over link-disjoint blocks. *)

val decompose :
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Cst_comm.Decompose.block list, Csa.error) result
(** Validate the set against the topology and the engine's input
    contract (size, right-orientation, well-nestedness — the same
    [Csa.error]s {!Engine.run} reports) and partition it into its
    independent top-level blocks. *)

val run_block :
  ?small:Cst.Topology.t ->
  Cst.Topology.t ->
  Cst_comm.Decompose.block ->
  (Cst.Exec_log.t, Csa.error) result
(** Run the sparse engine on one block — the localized set on an
    [align]-leaf tree — and rebase the resulting single-run log into
    [topo]'s coordinates at the block's leaf offset.  [?small] supplies
    the [align]-leaf topology when the caller already has one (it is
    created otherwise); {!run} shares one per distinct align size. *)

val merge_blocks :
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Cst.Exec_log.t list ->
  Schedule.t * Engine.stats
(** Merge already-rebased per-block logs (ascending block order, e.g.
    from {!run_block} or a plan-cache replay) into [?log] (or a fresh
    log), derive the schedule of the whole [set] from the merged range,
    and rebuild the engine's closed-form hardware stats for [topo]:
    [cycles = 1 + levels + rounds*(levels+2)] and
    [2*(leaves-1)*(rounds+1)] control messages, where [rounds] is the
    maximum block round count — the modeled hardware still clocks every
    level and exchanges a message on every link each round, regardless
    of how the scheduling work was computed. *)

val run :
  ?domains:int ->
  ?keep_configs:bool ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  (Schedule.t * Engine.stats, Csa.error) result
(** [decompose] + per-block {!run_block} + {!merge_blocks}.  [domains]
    (default 1) caps the worker domains spawned for the block runs; with
    [domains:1] (or a single block) everything runs on the calling
    domain.  The outcome — schedule, log digest, stats — is identical
    for every domain count and identical to {!Engine.run}'s.  On error,
    the first failing block (in block order) wins; the error carries
    block-local coordinates. *)

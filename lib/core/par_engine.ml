(* Segment-parallel engine: per-block sparse-engine runs, rebased and
   merged round-by-round.  See the interface for the independence
   argument; the digest/schedule identity with the sequential engine is
   property-tested in test/test_par_engine.ml. *)

(* Ascending subtree-span ladder of a shape (1, ..., leaves), the block
   alignment grid for non-binary topologies. *)
let span_ladder topo =
  let shape = Cst.Topology.shape topo in
  let levels = Cst.Shape.levels shape in
  let leaves = Cst.Shape.leaves shape in
  Array.init (levels + 1) (fun i ->
      leaves / Cst.Shape.size_at shape ~depth:(levels - i))

let decompose topo set =
  let leaves = Cst.Topology.leaves topo in
  if Cst_comm.Comm_set.n set > leaves then
    Error (Csa.Too_large { n = Cst_comm.Comm_set.n set; leaves })
  else
    match Cst_comm.Well_nested.check set with
    | Error v -> Error (Csa.Not_well_nested v)
    | Ok _ ->
        let spans =
          if Cst.Topology.is_binary topo then None else Some (span_ladder topo)
        in
        Ok (Cst_comm.Decompose.blocks ~check:false ?spans set)

let run_block ?small topo (b : Cst_comm.Decompose.block) =
  if not (Cst.Topology.is_binary topo) then begin
    (* Non-binary blocks run in absolute coordinates on the shared full
       topology — rebase's subtree congruence is a binary property, and
       the capacity engine is cheap on the block's own links only. *)
    let log = Cst.Exec_log.create () in
    match Cap_engine.run_log ~log topo b.set with
    | Error e -> Error e
    | Ok _stats -> Ok log
  end
  else
    let small =
      match small with
      | Some t -> t
      | None -> Cst.Topology.create ~leaves:b.align
    in
    let local = Cst_comm.Decompose.localize b in
    let log = Cst.Exec_log.create () in
    match Engine.run_log ~log small local with
    | Error e -> Error e
    | Ok _stats ->
        (* The log is private to this call: rebase it in place. *)
        Ok
          (Cst.Exec_log.rebase ~in_place:true log ~src_leaves:b.align
             ~src_base:0 ~dst_leaves:(Cst.Topology.leaves topo)
             ~dst_base:b.base ~align:b.align)

let merge_blocks ?(keep_configs = true) ?log topo set block_logs =
  let levels = Cst.Topology.levels topo in
  let leaves = Cst.Topology.leaves topo in
  let out = match log with Some l -> l | None -> Cst.Exec_log.create () in
  let from = Cst.Exec_log.length out in
  let merged = Cst.Exec_log.merge ~into:out ~levels block_logs in
  let rounds =
    match Cst.Exec_log.event merged (Cst.Exec_log.length merged - 1) with
    | Cst.Exec_log.Run_end { rounds } -> rounds
    | _ -> assert false
  in
  let sched =
    Schedule.of_log ~from ~keep_configs ~set ~topo
      ~cycles:(1 + levels + (rounds * (levels + 2)))
      merged
  in
  let stats =
    if Cst.Topology.is_binary topo then
      {
        Engine.cycles = 1 + levels + (rounds * (levels + 2));
        control_messages = 2 * (leaves - 1) * (rounds + 1);
        max_message_words =
          (if rounds > 0 then
             max Phase1.up_words_per_message (Downmsg.words Downmsg.null)
           else Phase1.up_words_per_message);
        state_words_per_switch = Csa_state.words (Csa_state.zero ());
      }
    else
      (* Match [Cap_engine]'s closed-form model so segmented and
         whole-set runs report identical stats. *)
      {
        Engine.cycles = 1 + levels + (rounds * (levels + 2));
        control_messages =
          2 * (Cst.Topology.num_nodes topo - 1) * (rounds + 1);
        max_message_words = 2;
        state_words_per_switch = 5;
      }
  in
  (sched, stats)

let run ?(domains = 1) ?keep_configs ?log topo set =
  match decompose topo set with
  | Error e -> Error e
  | Ok blocks -> (
      let arr = Array.of_list blocks in
      let nblocks = Array.length arr in
      (* Blocks share at most log2(leaves) distinct align sizes; build
         each small topology once.  Topologies are immutable after
         [create], so sharing them across domains is safe. *)
      let small_topos =
        if not (Cst.Topology.is_binary topo) then []
        else
          Array.fold_left
            (fun acc (b : Cst_comm.Decompose.block) ->
              if List.mem_assoc b.align acc then acc
              else (b.align, Cst.Topology.create ~leaves:b.align) :: acc)
            [] arr
      in
      let run_one (b : Cst_comm.Decompose.block) =
        match List.assoc_opt b.align small_topos with
        | Some small -> run_block ~small topo b
        | None -> run_block topo b
      in
      let results = Array.make nblocks None in
      let body () =
        if domains <= 1 || nblocks <= 1 then
          Array.iteri (fun i b -> results.(i) <- Some (run_one b)) arr
        else begin
          (* Work-stealing over an atomic cursor; [Domain.join] orders
             the helpers' writes to [results] before the reads below. *)
          let cursor = Atomic.make 0 in
          let worker () =
            let continue = ref true in
            while !continue do
              let i = Atomic.fetch_and_add cursor 1 in
              if i >= nblocks then continue := false
              else results.(i) <- Some (run_one arr.(i))
            done
          in
          let helpers =
            Array.init
              (min domains nblocks - 1)
              (fun _ -> Domain.spawn worker)
          in
          worker ();
          Array.iter Domain.join helpers
        end
      in
      body ();
      let rec collect i acc =
        if i = nblocks then Ok (List.rev acc)
        else
          match results.(i) with
          | Some (Ok l) -> collect (i + 1) (l :: acc)
          | Some (Error e) -> Error e
          | None -> assert false
      in
      match collect 0 [] with
      | Error e -> Error e
      | Ok logs -> Ok (merge_blocks ?keep_configs ?log topo set logs))

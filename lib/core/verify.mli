(** End-to-end schedule verification.

    Checks everything the paper claims of a CSA schedule, from physical
    reproduction of the data movement up to the power bound:
    {ol
    {- {e delivery correctness} (Theorem 4): the union of per-round
       deliveries equals the set's source-to-destination matching;}
    {- {e compatibility}: no directed link carries more circuits in one
       round than its capacity (1 everywhere on the classic binary tree);}
    {- {e round optimality} (Theorem 5): the number of rounds equals the
       set's capacity-weighted width;}
    {- {e replay}: when configuration snapshots were kept, re-installing
       them on a fresh network reproduces each round's deliveries through
       the physical data plane;}
    {- {e power} (Theorem 8): the maximum number of connects at any single
       switch does not exceed [power_bound] (a constant independent of the
       width; default {!default_power_bound}).}} *)

type report = {
  ok : bool;
  issues : string list;  (** empty iff [ok] *)
  rounds : int;
  width : int;
  deliveries : int;
  max_connects_per_switch : int;
}

val default_power_bound : int
(** Constant bound on per-switch connects asserted for CSA schedules.
    Each of the three output ports changes driver O(1) times (Lemmas 6-7);
    empirically the maximum observed is 5 — we assert 9 to leave slack
    while still failing loudly on any width-dependent growth. *)

val schedule :
  ?power_bound:int ->
  ?check_rounds_optimal:bool ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Schedule.t ->
  report
(** [check_rounds_optimal] defaults to true (CSA); baseline schedules set
    it to false since only the CSA guarantees exactly-width rounds. *)

val pp_report : Format.formatter -> report -> unit

type t = {
  set : Cst_comm.Comm_set.t;
  right_waves : Schedule.t list;
  left_waves : Schedule.t list;
  rounds : int;
  cycles : int;
  power : Schedule.power;
}

let run_part ?log topo layers =
  let net = Cst.Net.create ?log topo in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | layer :: rest -> (
        match Csa.run ~net topo layer with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e)
  in
  go [] layers

let schedule ?leaves ?log set =
  let n = Cst_comm.Comm_set.n set in
  let leaves =
    match leaves with
    | Some l -> l
    | None -> Cst_util.Bits.ceil_pow2 (max 2 n)
  in
  let topo = Cst.Topology.create ~leaves in
  let right_part, left_part = Cst_comm.Decompose.split set in
  let right_layers = Cst_comm.Wn_cover.layers right_part in
  let left_layers =
    Cst_comm.Wn_cover.layers (Cst_comm.Mirror.set left_part)
  in
  match run_part ?log topo right_layers with
  | Error e -> Error e
  | Ok right_waves -> (
      match run_part ?log topo left_layers with
      | Error e -> Error e
      | Ok left_waves ->
          let sum f =
            List.fold_left (fun acc s -> acc + f s) 0
              (right_waves @ left_waves)
          in
          let power =
            List.fold_left
              (fun acc (s : Schedule.t) ->
                Schedule.combine_power acc s.power)
              (Schedule.zero_power ~num_nodes:(Cst.Topology.num_nodes topo))
              right_waves
          in
          let power =
            List.fold_left
              (fun acc (s : Schedule.t) ->
                Schedule.combine_power acc
                  (Schedule.mirror_power topo s.power))
              power left_waves
          in
          Ok
            {
              set;
              right_waves;
              left_waves;
              rounds = sum Schedule.num_rounds;
              cycles = sum (fun (s : Schedule.t) -> s.cycles);
              power;
            })

let schedule_exn ?leaves ?log set =
  match schedule ?leaves ?log set with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Waves: %a" Csa.pp_error e)

let deliveries t =
  let right =
    List.concat_map Schedule.all_deliveries t.right_waves
  in
  let n = Cst_comm.Comm_set.n t.set in
  let left =
    List.concat_map
      (fun s ->
        List.map
          (fun (src, dst) ->
            (Cst_comm.Mirror.pe ~n src, Cst_comm.Mirror.pe ~n dst))
          (Schedule.all_deliveries s))
      t.left_waves
  in
  List.sort compare (right @ left)

let num_waves t = List.length t.right_waves + List.length t.left_waves

let pp fmt t =
  Format.fprintf fmt
    "waves: %d communications in %d wave(s), %d rounds, %d cycles, %d power \
     units (%d writes), max %d connects/switch"
    (Cst_comm.Comm_set.size t.set)
    (num_waves t) t.rounds t.cycles t.power.total_connects
    t.power.total_writes t.power.max_connects_per_switch

let split set =
  let right = Comm_set.filter set Comm.is_right_oriented in
  let left = Comm_set.filter set Comm.is_left_oriented in
  (right, left)

let is_oriented set =
  Comm_set.is_right_oriented set || Comm_set.is_left_oriented set

type block = { base : int; align : int; set : Comm_set.t }

(* Smallest aligned power-of-two interval containing [lo, hi] — the leaf
   interval of lca(lo, hi) in any complete binary tree the endpoints fit
   (the same computation as [Cst.Canon.place]). *)
let aligned_interval ~lo ~hi =
  let align = ref 1 in
  while lo / !align <> hi / !align do
    align := 2 * !align
  done;
  (lo / !align * !align, !align)

(* Same, over an explicit ascending ladder of admissible subtree spans
   (each dividing the next, so the intervals stay laminar).  The default
   ladder is 1, 2, 4, ... as above. *)
let aligned_interval_in ~spans ~lo ~hi =
  let rec go i =
    let s = spans.(i) in
    if lo / s = hi / s then ((lo / s) * s, s) else go (i + 1)
  in
  go 0

(* A group under construction: a run of top-level nesting roots whose
   aligned intervals have been merged.  [start] is the index of its
   first communication in the source-sorted array; members are the
   contiguous slice up to the next group's [start]. *)
type group = {
  mutable lo : int;
  mutable hi : int;
  mutable g_base : int;
  mutable g_align : int;
  start : int;
}

let intersects g ~base ~align =
  g.g_base < base + align && base < g.g_base + g.g_align

let blocks ?(check = true) ?spans set =
  if check then begin
    if not (Comm_set.is_right_oriented set) then
      invalid_arg "Decompose.blocks: set is not right-oriented";
    match Well_nested.check set with
    | Ok _ -> ()
    | Error v ->
        invalid_arg
          (Format.asprintf "Decompose.blocks: %a" Well_nested.pp_violation v)
  end;
  let aligned_interval =
    match spans with
    | None -> fun ~lo ~hi -> aligned_interval ~lo ~hi
    | Some spans ->
        if Array.length spans = 0 || spans.(0) <> 1 then
          invalid_arg "Decompose.blocks: spans must start at 1";
        Array.iteri
          (fun i s ->
            if i > 0 && (s <= spans.(i - 1) || s mod spans.(i - 1) <> 0) then
              invalid_arg
                "Decompose.blocks: spans must be increasing and each divide \
                 the next")
          spans;
        fun ~lo ~hi -> aligned_interval_in ~spans ~lo ~hi
  in
  let comms = Comm_set.comms set in
  let n = Comm_set.n set in
  (* Stack of groups, innermost-rightmost on top.  Aligned power-of-two
     intervals form a laminar family, so when a new root's interval
     meets the top group's interval one contains the other and they
     merge; the merged interval can in turn swallow groups deeper in
     the stack (a wide root arriving after several narrow ones), hence
     the cascade in [normalize]. *)
  let groups = ref [] in
  let recompute g =
    let base, align = aligned_interval ~lo:g.lo ~hi:g.hi in
    g.g_base <- base;
    g.g_align <- align
  in
  let rec normalize () =
    match !groups with
    | g1 :: g2 :: rest when intersects g2 ~base:g1.g_base ~align:g1.g_align ->
        g2.hi <- max g2.hi g1.hi;
        recompute g2;
        groups := g2 :: rest;
        normalize ()
    | _ -> ()
  in
  Array.iteri
    (fun i (c : Comm.t) ->
      match !groups with
      | top :: _ when c.src < top.hi ->
          (* Nested inside the current group (well-nestedness puts
             [c.dst] below the group's last root destination). *)
          ()
      | _ ->
          let base, align = aligned_interval ~lo:c.src ~hi:c.dst in
          (match !groups with
          | top :: _ when intersects top ~base ~align ->
              top.hi <- c.dst;
              recompute top
          | _ ->
              groups :=
                { lo = c.src; hi = c.dst; g_base = base; g_align = align;
                  start = i }
                :: !groups);
          normalize ())
    comms;
  let ordered = List.rev !groups in
  let rec build = function
    | [] -> []
    | g :: rest ->
        let stop = match rest with g' :: _ -> g'.start | [] -> Array.length comms in
        (* The slice of a sorted, validated set is itself sorted with
           distinct endpoints — adopt it without re-validating. *)
        let members = Array.sub comms g.start (stop - g.start) in
        { base = g.g_base; align = g.g_align;
          set = Comm_set.unsafe_of_sorted ~n members }
        :: build rest
  in
  build ordered

let localize b =
  (* Translation preserves source order and endpoint-disjointness, and
     every endpoint lands in [0, align) by the block invariant. *)
  let members =
    Array.map
      (fun (c : Comm.t) -> Comm.make ~src:(c.src - b.base) ~dst:(c.dst - b.base))
      (Comm_set.comms b.set)
  in
  Comm_set.unsafe_of_sorted ~n:b.align members

(** Orientation and block decomposition.

    "Any set can be decomposed into two sets each of them is oriented"
    (paper §2.1).  A mixed-orientation set splits into its right-oriented
    members and its left-oriented members; each part is scheduled
    separately (the left part after mirroring).

    A right-oriented well-nested set further factors at top level into
    balanced-parenthesis blocks.  {!blocks} groups those top-level
    nesting roots into maximal runs confined to disjoint aligned leaf
    intervals — each run's communications occupy only links of the
    subtree rooted at its interval's node, so the runs can be scheduled
    independently (on separate domains) and their execution logs merged
    round-by-round without any link ever being claimed twice. *)

val split : Comm_set.t -> Comm_set.t * Comm_set.t
(** [(right, left)] partition.  Both parts share the original [n]. *)

val is_oriented : Comm_set.t -> bool
(** All members share one orientation (or the set is empty). *)

type block = {
  base : int;  (** First leaf of the block's aligned interval. *)
  align : int;
      (** Width of the interval: a power of two by default, a subtree
          span from the supplied ladder when [?spans] is given. *)
  set : Comm_set.t;
      (** The block's members in the {e original} coordinates, over the
          original [n] PEs.  Every endpoint lies in
          [[base, base + align)]. *)
}

val blocks : ?check:bool -> ?spans:int array -> Comm_set.t -> block list
(** Partition a right-oriented well-nested set into its maximal
    independent top-level blocks, ordered by [base].

    Each top-level nesting root [(s, d)] is confined to the smallest
    aligned power-of-two leaf interval containing [[s, d]] — the leaf
    interval of the LCA of [s] and [d] in any complete binary tree with
    at least [n] leaves (alignment does not depend on the tree size, so
    the same blocks are valid for every topology the set fits).  Roots
    whose intervals coincide or nest are merged into one block; the
    resulting intervals are pairwise disjoint, hence the blocks share no
    tree link.  The union of the blocks' sets is the input set, and the
    concatenation of their communications (in block order) preserves the
    input's source order.

    Raises [Invalid_argument] if the set is not right-oriented or not
    well-nested.  [~check:false] skips that validation for callers that
    have already run {!Well_nested.check} on this exact set (the
    decomposition itself assumes the laminar structure it certifies).

    [?spans] replaces the power-of-two ladder with the tree's actual
    ascending subtree span sizes (leaf-to-root, starting at 1, each
    dividing the next, the last at least the whole leaf range — e.g.
    [1; 16; 256] for a 256-leaf two-layer fat tree).  Blocks then align
    to real subtrees of that shape, which is what makes them
    link-disjoint on non-binary topologies. *)

val localize : block -> Comm_set.t
(** The block's members translated to block-local coordinates: a set
    over [align] PEs with every endpoint shifted down by [base].
    Scheduling [localize b] on an [align]-leaf tree is the standalone
    run whose log, rebased by [base], reproduces the block's share of
    the full-tree run (see [Cst.Exec_log.rebase]). *)

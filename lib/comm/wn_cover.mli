(** Covering an arbitrary oriented set by well-nested layers.

    The CSA schedules well-nested sets only; an arbitrary right-oriented
    set (e.g. a shift, a butterfly stage, a random permutation) contains
    {e crossing} pairs.  Since crossings — not nesting — are the only
    obstruction, any right-oriented set partitions into layers that are
    each well-nested, and the CST performs the set as a sequence of CSA
    waves (the "other communication patterns" extension the paper's
    conclusion proposes).

    Layers are built first-fit over communications ordered outermost-first
    (by source ascending, destination descending): each communication
    joins the first layer it crosses nothing in.  A lower bound on the
    achievable number of layers is the largest pairwise-crossing family
    ({!clique_lower_bound}); well-nested inputs always yield one layer. *)

val layers : Comm_set.t -> Comm_set.t list
(** Requires a right-oriented set (raises [Invalid_argument] otherwise).
    Every layer is well-nested over the same [n]; layers partition the
    set; the empty set yields no layers. *)

val num_layers : Comm_set.t -> int

val capacity_rounds : cap:int -> Comm_set.t -> int
(** Rounds to perform the set on a tree whose links all have capacity
    [cap]: each well-nested layer of width [w] runs in [ceil (w / cap)]
    rounds (Theorem 5 generalized to fat links), summed over the
    first-fit cover.  [cap = 1] is the plain sum of layer widths. *)

val clique_lower_bound : Comm_set.t -> int
(** Size of a largest family of pairwise-crossing communications: every
    cover needs at least this many layers.  0 for the empty set. *)

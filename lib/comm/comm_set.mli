(** Sets of communications over [n] PEs.

    A valid communication set uses each PE as at most one endpoint — every PE
    is a source of at most one communication, a destination of at most one,
    and never both (paper §3, Step 1.1: a PE reports [1,0], [0,1] or
    [0,0]).  Sets are stored sorted by source for canonical comparison. *)

type t

type role = Source of int | Dest of int | Idle
(** Role of a PE; the payload is the index of its communication in
    {!comms}. *)

type error =
  | Out_of_range of Comm.t
  | Shared_endpoint of int  (** PE used by two communications *)

val create : n:int -> Comm.t list -> (t, error) result
(** Validates endpoints against [n] PEs and endpoint-disjointness. *)

val create_exn : n:int -> Comm.t list -> t
(** Like {!create} but raises [Invalid_argument] with a diagnostic. *)

val unsafe_of_sorted : n:int -> Comm.t array -> t
(** Adopts [comms] without copying, sorting or validating.  The caller
    must guarantee what {!create} checks: the array is sorted by source
    and every PE in [[0, n)] is an endpoint of at most one member.
    Intended for slicing or translating an already validated set
    (e.g. {!Decompose.blocks}), where re-validation on a hot path would
    repeat work the invariants already paid for. *)

val empty : n:int -> t

val n : t -> int
(** Number of PEs. *)

val size : t -> int
(** Number of communications. *)

val comms : t -> Comm.t array
(** Communications sorted by source.  Do not mutate. *)

val mem : t -> Comm.t -> bool
val roles : t -> role array
(** Array of length [n]: role of each PE. *)

val role_of : t -> int -> role

val is_right_oriented : t -> bool
(** Every member has [src < dst]. *)

val is_left_oriented : t -> bool

val matching : t -> (int * int) list
(** The ground-truth pairing [(src, dst)] of every communication, sorted by
    source.  Used by the schedule verifier as the expected delivery map. *)

val union : t -> t -> (t, error) result
(** Union of two sets over the same [n]; fails on endpoint clashes. *)

val filter : t -> (Comm.t -> bool) -> t
val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit

val to_string : t -> string
(** One ["src dst"] pair per line, preceded by a ["n <n>"] header. *)

val of_string : string -> (t, string) result
(** Parses the {!to_string} format; blank lines and [#] comments ignored. *)

val equal : t -> t -> bool

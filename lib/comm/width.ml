type crossings = {
  leaves : int;
  up : int array;
  down : int array;
}

let check_leaves ~leaves set =
  if not (Cst_util.Bits.is_power_of_two leaves) then
    invalid_arg "Width: leaves must be a power of two";
  if Comm_set.n set > leaves then
    invalid_arg "Width: set has more PEs than leaves"

let crossings ~leaves set =
  check_leaves ~leaves set;
  let up = Array.make (2 * leaves) 0 in
  let down = Array.make (2 * leaves) 0 in
  Array.iter
    (fun (c : Comm.t) ->
      let a = ref (leaves + c.src) and b = ref (leaves + c.dst) in
      (* Walk both endpoints to their LCA, charging the up links on the
         source side and the down links on the destination side. *)
      while !a <> !b do
        if !a > !b then begin
          up.(!a) <- up.(!a) + 1;
          a := !a / 2
        end
        else begin
          down.(!b) <- down.(!b) + 1;
          b := !b / 2
        end
      done)
    (Comm_set.comms set);
  { leaves; up; down }

let width ~leaves set =
  let { up; down; _ } = crossings ~leaves set in
  let m = ref 0 in
  Array.iter (fun x -> if x > !m then m := x) up;
  Array.iter (fun x -> if x > !m then m := x) down;
  !m

(* Generalized congestion over an explicit parent table (any tree whose
   ids increase parent-to-child and whose leaves are the contiguous tail
   [first_leaf ..]).  The id-comparison LCA walk of [crossings] carries
   over verbatim: an ancestor always has a smaller id, so climbing the
   larger endpoint converges to the LCA. *)
let crossings_on ~parent ~first_leaf set =
  let num_nodes = Array.length parent - 1 in
  let leaves = num_nodes + 1 - first_leaf in
  if Comm_set.n set > leaves then
    invalid_arg "Width: set has more PEs than leaves";
  let up = Array.make (num_nodes + 1) 0 in
  let down = Array.make (num_nodes + 1) 0 in
  Array.iter
    (fun (c : Comm.t) ->
      let a = ref (first_leaf + c.src) and b = ref (first_leaf + c.dst) in
      while !a <> !b do
        if !a > !b then begin
          up.(!a) <- up.(!a) + 1;
          a := parent.(!a)
        end
        else begin
          down.(!b) <- down.(!b) + 1;
          b := parent.(!b)
        end
      done)
    (Comm_set.comms set);
  { leaves; up; down }

let width_on ~parent ~first_leaf ~cap set =
  let { up; down; _ } = crossings_on ~parent ~first_leaf set in
  let m = ref 0 in
  for v = 2 to Array.length up - 1 do
    let c = cap.(v) in
    if c > 0 then begin
      let wu = (up.(v) + c - 1) / c and wd = (down.(v) + c - 1) / c in
      if wu > !m then m := wu;
      if wd > !m then m := wd
    end
  done;
  !m

let width_auto set =
  width ~leaves:(Cst_util.Bits.ceil_pow2 (max 2 (Comm_set.n set))) set

let check_against_naive ~leaves set =
  let fast = crossings ~leaves set in
  let ok = ref true in
  (* Node v covers the leaf interval [lo, hi). *)
  let rec interval v =
    if v >= leaves then (v - leaves, v - leaves + 1)
    else
      let lo, _ = interval (2 * v) and _, hi = interval ((2 * v) + 1) in
      (lo, hi)
  in
  for v = 2 to (2 * leaves) - 1 do
    let lo, hi = interval v in
    let inside p = p >= lo && p < hi in
    let u = ref 0 and d = ref 0 in
    Array.iter
      (fun (c : Comm.t) ->
        if inside c.src && not (inside c.dst) then incr u;
        if inside c.dst && not (inside c.src) then incr d)
      (Comm_set.comms set);
    if !u <> fast.up.(v) || !d <> fast.down.(v) then ok := false
  done;
  !ok

type klass =
  | Matched
  | Source_up
  | Dest_down
  | Internal
  | External

let classify ~lo ~mid ~hi (c : Comm.t) =
  if not (Comm.is_right_oriented c) then
    invalid_arg "Width.classify: communication must be right-oriented";
  let inside p = p >= lo && p < hi in
  match (inside c.src, inside c.dst) with
  | false, false -> External
  | true, false -> Source_up
  | false, true -> Dest_down
  | true, true ->
      if c.src < mid && c.dst >= mid then Matched else Internal

(** Exact width (directed-link congestion) of a communication set.

    The CST embeds the PEs as leaves of a complete binary tree.  For every
    tree node [v] other than the root there is a full-duplex link between
    [v] and its parent; a communication uses the {e up} direction of that
    link when its source lies in the subtree of [v] and its destination
    does not, and the {e down} direction symmetrically.  The {e width} of a
    set is the maximum number of communications sharing one directed link
    (paper §1); the schedule of a width-[w] set needs at least [w] rounds.

    Nodes are heap-indexed: root is 1, node [v] has children [2v] and
    [2v+1], leaf [p] is node [leaves + p].  [leaves] must be a power of
    two at least [Comm_set.n set]. *)

type crossings = {
  leaves : int;  (** number of leaf slots (power of two) *)
  up : int array;  (** [up.(v)]: communications using link v->parent upward *)
  down : int array;  (** [down.(v)]: communications using parent->v downward *)
}

val crossings : leaves:int -> Comm_set.t -> crossings
(** Per-link congestion in O(M log leaves). *)

val width : leaves:int -> Comm_set.t -> int
(** Maximum entry of {!crossings}; 0 for the empty set. *)

val width_auto : Comm_set.t -> int
(** {!width} with [leaves] = smallest adequate power of two. *)

val crossings_on : parent:int array -> first_leaf:int -> Comm_set.t -> crossings
(** Per-link congestion on an arbitrary tree given as a parent table:
    [parent.(v)] is the parent of node [v] (slots 0, 1 unused, ids
    increase parent-to-child as in BFS numbering) and the leaves are the
    contiguous tail [first_leaf .. Array.length parent - 1], leaf [p] at
    [first_leaf + p].  With the binary heap parent table this equals
    {!crossings}.  The returned [up]/[down] arrays are indexed by node
    id. *)

val width_on :
  parent:int array -> first_leaf:int -> cap:int array -> Comm_set.t -> int
(** Capacity-weighted width: [max] over non-root nodes [v] of
    [ceil (up v / cap.(v))] and [ceil (down v / cap.(v))], where
    [cap.(v)] is the capacity of the [v]-to-parent link.  A capacity-[c]
    link admits [c] simultaneous circuits per round, so a width-[w] set
    needs [w] rounds (Theorem 5 generalized: the bound divides by the
    oversubscription ratio).  All-ones [cap] recovers {!width}. *)

val check_against_naive : leaves:int -> Comm_set.t -> bool
(** Recomputes congestion by interval containment per node (O(M·leaves))
    and compares with {!crossings}; used by tests. *)

type klass =
  | Matched  (** source in left child subtree, destination in right *)
  | Source_up  (** source inside, destination outside: uses the up link *)
  | Dest_down  (** destination inside, source outside: uses the down link *)
  | Internal  (** both endpoints strictly inside one child subtree *)
  | External  (** does not touch this subtree *)

val classify : lo:int -> mid:int -> hi:int -> Comm.t -> klass
(** Classification of a right-oriented communication relative to a node
    covering leaves [\[lo, hi)] split at [mid] (paper Figure 4(a)).  The
    paper's five types are [Matched], sources passing up from either child,
    and destinations coming down to either child; [Internal]/[External]
    communications do not involve the node. *)

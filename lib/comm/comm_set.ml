type role = Source of int | Dest of int | Idle

type t = { n : int; comms : Comm.t array; roles : role array }

type error =
  | Out_of_range of Comm.t
  | Shared_endpoint of int

let pp_error fmt = function
  | Out_of_range c ->
      Format.fprintf fmt "communication %a out of range" Comm.pp c
  | Shared_endpoint p ->
      Format.fprintf fmt "PE %d is an endpoint of two communications" p

let build ~n comms =
  let comms = Array.of_list comms in
  Array.sort Comm.compare comms;
  let roles = Array.make n Idle in
  let err = ref None in
  Array.iteri
    (fun i (c : Comm.t) ->
      if !err = None then
        if c.src >= n || c.dst >= n then err := Some (Out_of_range c)
        else begin
          (match roles.(c.src) with
          | Idle -> roles.(c.src) <- Source i
          | Source _ | Dest _ -> err := Some (Shared_endpoint c.src));
          match roles.(c.dst) with
          | Idle -> roles.(c.dst) <- Dest i
          | Source _ | Dest _ -> err := Some (Shared_endpoint c.dst)
        end)
    comms;
  match !err with Some e -> Error e | None -> Ok { n; comms; roles }

let create ~n comms =
  if n < 1 then invalid_arg "Comm_set.create: n must be positive";
  build ~n comms

let create_exn ~n comms =
  match create ~n comms with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Comm_set: %a" pp_error e)

let unsafe_of_sorted ~n comms =
  let roles = Array.make n Idle in
  Array.iteri
    (fun i (c : Comm.t) ->
      roles.(c.src) <- Source i;
      roles.(c.dst) <- Dest i)
    comms;
  { n; comms; roles }

let empty ~n = create_exn ~n []

let n t = t.n
let size t = Array.length t.comms
let comms t = t.comms
let mem t c = Array.exists (Comm.equal c) t.comms
let roles t = t.roles
let role_of t p = t.roles.(p)

let is_right_oriented t = Array.for_all Comm.is_right_oriented t.comms
let is_left_oriented t = Array.for_all Comm.is_left_oriented t.comms

let matching t =
  Array.to_list t.comms |> List.map (fun (c : Comm.t) -> (c.src, c.dst))

let union a b =
  if a.n <> b.n then invalid_arg "Comm_set.union: different n";
  build ~n:a.n (Array.to_list a.comms @ Array.to_list b.comms)

let filter t f = create_exn ~n:t.n (List.filter f (Array.to_list t.comms))

let pp fmt t =
  Format.fprintf fmt "{n=%d; " t.n;
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ", ";
      Comm.pp fmt c)
    t.comms;
  Format.fprintf fmt "}"

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "n %d\n" t.n);
  Array.iter
    (fun (c : Comm.t) -> Buffer.add_string b (Printf.sprintf "%d %d\n" c.src c.dst))
    t.comms;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  let clean l =
    match String.index_opt l '#' with
    | Some i -> String.trim (String.sub l 0 i)
    | None -> String.trim l
  in
  let rec go lines n acc =
    match lines with
    | [] -> (
        match n with
        | None -> Error "missing 'n <count>' header"
        | Some n -> (
            match create ~n (List.rev acc) with
            | Ok t -> Ok t
            | Error e -> Error (Format.asprintf "%a" pp_error e)))
    | l :: rest -> (
        let l = clean l in
        if l = "" then go rest n acc
        else
          match String.split_on_char ' ' l |> List.filter (( <> ) "") with
          | [ "n"; v ] -> (
              match int_of_string_opt v with
              | Some v when v > 0 -> go rest (Some v) acc
              | _ -> Error (Printf.sprintf "bad PE count: %s" l))
          | [ a; b ] -> (
              match (int_of_string_opt a, int_of_string_opt b) with
              | Some s, Some d when s >= 0 && d >= 0 && s <> d ->
                  go rest n (Comm.make ~src:s ~dst:d :: acc)
              | _ -> Error (Printf.sprintf "bad communication line: %s" l))
          | _ -> Error (Printf.sprintf "unparseable line: %s" l))
  in
  go lines None []

let equal a b =
  a.n = b.n
  && Array.length a.comms = Array.length b.comms
  && Array.for_all2 Comm.equal a.comms b.comms

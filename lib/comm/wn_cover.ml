let check_right set =
  if not (Comm_set.is_right_oriented set) then
    invalid_arg "Wn_cover: set must be right-oriented"

let layers set =
  check_right set;
  let order =
    List.sort
      (fun (a : Comm.t) (b : Comm.t) ->
        match Int.compare a.src b.src with
        | 0 -> Int.compare b.dst a.dst
        | c -> c)
      (Array.to_list (Comm_set.comms set))
  in
  let layers = ref [] in
  (* layers are kept as reversed member lists *)
  List.iter
    (fun c ->
      let rec place = function
        | [] -> [ [ c ] ]
        | layer :: rest ->
            if List.exists (Comm.crosses c) layer then layer :: place rest
            else (c :: layer) :: rest
      in
      layers := place !layers)
    order;
  List.map
    (fun members -> Comm_set.create_exn ~n:(Comm_set.n set) members)
    !layers

let num_layers set = List.length (layers set)

let capacity_rounds ~cap set =
  if cap < 1 then invalid_arg "Wn_cover.capacity_rounds: cap must be >= 1";
  List.fold_left
    (fun acc layer -> acc + ((Width.width_auto layer + cap - 1) / cap))
    0 (layers set)

let clique_lower_bound set =
  check_right set;
  let comms = Array.to_list (Comm_set.comms set) in
  if comms = [] then 0
  else begin
    (* For each boundary t, the communications straddling t conflict
       pairwise exactly when both their sources and destinations are
       co-monotone: the largest pairwise-crossing family straddling t is
       the longest increasing subsequence of destinations, with sources
       sorted ascending.  Maximise over boundaries. *)
    let boundaries =
      List.sort_uniq compare
        (List.concat_map (fun (c : Comm.t) -> [ c.src + 1; c.dst ]) comms)
    in
    let lis xs =
      (* O(k log k) patience sorting on a strictly increasing sequence *)
      let tails = ref [] in
      List.iter
        (fun x ->
          let rec insert = function
            | [] -> [ x ]
            | t :: rest when t >= x -> x :: rest
            | t :: rest -> t :: insert rest
          in
          tails := insert !tails)
        xs;
      List.length !tails
    in
    List.fold_left
      (fun best t ->
        let straddling =
          List.filter (fun (c : Comm.t) -> c.src < t && t <= c.dst) comms
          |> List.sort (fun (a : Comm.t) b -> Int.compare a.src b.src)
          |> List.map (fun (c : Comm.t) -> c.dst)
        in
        max best (lis straddling))
      1 boundaries
  end

(** Per-switch power accounting (paper §2.3), derived from the
    execution log.

    The paper charges one power unit every time a switch sets a
    connection between an input and an output.  Two flavours are
    tracked:

    {ul
    {- {e connects/disconnects} — physical driver transitions: an output
       acquires a (different) driver, or loses it.  This is the charitable
       accounting under which any scheduler gets credit for a connection
       that happens to persist between rounds.}
    {- {e writes} — configuration-register installations.  A switch that
       cannot prove its configuration carries over must install every
       connection its current round demands; this is what ID-per-round
       scheduling pays (O(w) per switch, paper §1) and what the CSA avoids
       by construction (Lemmas 6-7: contiguous request blocks make
       carry-over a local decision).}}

    Theorem 8 states that under the CSA both counts stay O(1) per switch
    regardless of the set's width.

    A meter is a {e pure derivation} of an {!Exec_log}: {!of_log} is
    the only place in the codebase where power units are charged —
    producers never keep their own counters.  A run on a shared net
    meters just its own events by passing the log cursor recorded at
    the start of the run as [~from]. *)

type t

val of_log : ?from:int -> ?upto:int -> num_nodes:int -> Exec_log.t -> t
(** Charge every [Connect] / [Disconnect] / [Write_config] event in the
    range to its switch.  [num_nodes] sizes the ledger: switches live
    at nodes [1 .. num_nodes]. *)

val connects : t -> node:int -> int
val disconnects : t -> node:int -> int
val writes : t -> node:int -> int

val total_connects : t -> int
(** Total physical power units (paper model, charitable accounting). *)

val total_disconnects : t -> int
val total_writes : t -> int

val max_connects_per_switch : t -> int
(** The quantity Theorem 8 bounds by a constant. *)

val max_writes_per_switch : t -> int
(** O(1) under CSA, O(w) under per-round scheduling. *)

val max_events_per_switch : t -> int
(** Connects plus disconnects, maximised over switches. *)

val per_switch_connects : t -> int array
(** Copy indexed by node id (index 0 unused). *)

val per_switch_writes : t -> int array
val per_switch_disconnects : t -> int array
val pp : Format.formatter -> t -> unit

(** Level-table description of a tree topology.

    A shape fixes, for every depth [d] (0 = root, [levels] = leaves),
    the number of nodes at that depth and the capacity of each node's
    uplink.  {!Topology} derives all parent/child/interval arithmetic
    from the table; the classic complete binary tree is the shape with
    all fanouts 2 and all capacities 1 and keeps its heap numbering
    bit-for-bit. *)

type t

(** Why a level table was rejected. *)
type error =
  | Too_few_leaves of int
  | Root_not_single of int
  | Increasing_level_size of { depth : int; size : int; child_size : int }
      (** Level sizes must strictly decrease leaf-to-root. *)
  | Fractional_fanout of { depth : int; size : int; child_size : int }
      (** Each level size must divide its child level size. *)
  | Bad_capacity of { depth : int; cap : int }
  | Capacity_arity of { expected : int; got : int }
      (** One capacity per uplink tier. *)

val pp_error : Format.formatter -> error -> unit

val binary : leaves:int -> t
(** The complete binary tree on [leaves] leaves (power of two [>= 2];
    raises [Invalid_argument] otherwise, matching
    {!Topology.create}). *)

val kary : k:int -> leaves:int -> t
(** Complete [k]-ary tree, unit capacities.  [leaves] must be a power
    of [k]; raises [Invalid_argument] otherwise.  [kary ~k:2] is
    {!binary}. *)

val create :
  level_sizes:int array -> capacities:int array -> (t, error) result
(** General constructor.  [level_sizes] lists node counts leaf-to-root
    {e excluding} the implied single root (e.g. [[|256; 16|]] is a
    two-layer fat tree: 256 leaves under 16 switches under one root);
    [capacities.(i)] is the uplink capacity of every node in tier
    [i]. *)

val fat_tree :
  level_sizes:int array -> capacities:int array -> (t, error) result
(** Alias of {!create}, the conventional name for capacity-weighted
    two-layer tables. *)

val levels : t -> int
val leaves : t -> int
val num_nodes : t -> int

val size_at : t -> depth:int -> int
(** Nodes at [depth] (0 = root). *)

val fanout_at : t -> depth:int -> int
(** Children per node at [depth], for [depth < levels]. *)

val cap_at : t -> depth:int -> int
(** Capacity of the uplink of a depth-[depth] node, [depth >= 1]. *)

val sizes : t -> int array
(** Copy of the per-depth node counts, root first. *)

val caps : t -> int array
(** Copy of the per-depth uplink capacities, root first
    ([caps.(0) = 0]: the root has no uplink). *)

val is_binary : t -> bool
(** Structurally the complete binary tree with unit capacities — such
    shapes take every legacy binary fast path, whatever constructor
    built them. *)

val fingerprint : t -> int
(** Stable non-negative hash of the level table.  Pinned to [0] for
    binary shapes so canon hashes, digests and codec headers are
    unchanged on the classic topology. *)

val equal : t -> t -> bool

val of_string : string -> (t, string) result
(** Parse ["bin:N"], ["kary:K:N"] or ["fat:L0,L1[,...][:c0,c1,...]"]
    (level sizes leaf-to-root, root implied; capacities default 1). *)

val to_string : t -> string
(** Inverse of {!of_string} up to normalization ([kary ~k:2] prints as
    [bin:N]). *)

val pp : Format.formatter -> t -> unit

(** Graphviz export of the CST and of live configurations.

    [dot -Tsvg] renders the output; PEs appear as boxes on one rank,
    switches as circles, tree links as undirected edges, and the currently
    configured connections as coloured directed edges routed through the
    switches they traverse. *)

val of_topology : Topology.t -> string
(** The bare tree, whatever its shape: one edge per child at each
    node's real fanout.  Binary trees keep the classic ["L"]/["R"] tail
    labels; wider nodes label children by index, and a capacity-[c]
    uplink renders as ["j:xc"]. *)

val of_net : Net.t -> string
(** The tree plus every live switch connection (as edge labels on the
    links it drives) and, for each PE whose signal currently reaches a
    destination, a coloured source-to-destination path. *)

val write_file : path:string -> string -> unit

let header = "digraph cst {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n"

let base_tree buf topo =
  Buffer.add_string buf "  // switches\n";
  Seq.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle, label=\"%d\"];\n" v v))
    (Topology.internal_nodes topo);
  Buffer.add_string buf "  // PEs\n";
  for pe = 0 to Topology.leaves topo - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  pe%d [shape=box, label=\"PE %d\"];\n" pe pe)
  done;
  Buffer.add_string buf "  { rank=same;";
  for pe = 0 to Topology.leaves topo - 1 do
    Buffer.add_string buf (Printf.sprintf " pe%d;" pe)
  done;
  Buffer.add_string buf " }\n  // tree links\n";
  (* One edge per child, whatever the node's fanout.  Binary keeps the
     historical "L"/"R" tail labels byte-for-byte; wider nodes label
     children by index, and a capacity-[c] uplink (fat trees) shows as
     ["j:xc"]. *)
  Seq.iter
    (fun v ->
      let fanout = Topology.fanout_of topo v in
      for j = 0 to fanout - 1 do
        let c = Topology.child topo v j in
        let name =
          if fanout = 2 then if j = 0 then "L" else "R" else string_of_int j
        in
        let name =
          let cap = Topology.uplink_cap topo c in
          if cap > 1 then Printf.sprintf "%s:x%d" name cap else name
        in
        if Topology.is_leaf topo c then
          Buffer.add_string buf
            (Printf.sprintf
               "  n%d -> pe%d [dir=none, color=gray, taillabel=\"%s\"];\n" v
               (Topology.pe_of_node topo c)
               name)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "  n%d -> n%d [dir=none, color=gray, taillabel=\"%s\"];\n" v c
               name)
      done)
    (Topology.internal_nodes topo)

let of_topology topo =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  base_tree buf topo;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let colors = [| "red"; "blue"; "darkgreen"; "orange"; "purple"; "brown" |]

let of_net net =
  let topo = Net.topology net in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf header;
  base_tree buf topo;
  Buffer.add_string buf "  // live connections\n";
  Seq.iter
    (fun v ->
      List.iter
        (fun (o, i) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  n%d [xlabel=\"%s>%s\"];\n" v (Side.to_string i)
               (Side.to_string o)))
        (Switch_config.connections (Net.config net v)))
    (Topology.internal_nodes topo);
  Buffer.add_string buf "  // realized paths\n";
  let color_idx = ref 0 in
  for src = 0 to Topology.leaves topo - 1 do
    let hops, dst = Data_plane.trace_from net ~src in
    match dst with
    | None -> ()
    | Some dst ->
        let color = colors.(!color_idx mod Array.length colors) in
        incr color_idx;
        let names =
          (Printf.sprintf "pe%d" src
          :: List.map
               (fun (h : Data_plane.hop) -> Printf.sprintf "n%d" h.node)
               hops)
          @ [ Printf.sprintf "pe%d" dst ]
        in
        let rec edges = function
          | a :: (b :: _ as rest) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  %s -> %s [color=%s, penwidth=2, constraint=false];\n" a
                   b color);
              edges rest
          | _ -> ()
        in
        edges names
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

type t = {
  shape : Shape.t;
  leaves : int;
  levels : int;
  binary : bool;
  offsets : int array;
      (* offsets.(d) = id of the first node at depth d (BFS numbering:
         1 + nodes above depth d).  On the binary shape this is 2^d, so
         ids coincide with the classic heap numbering. *)
  spans : int array;  (* spans.(d) = leaves covered by one depth-d node *)
  fanouts : int array;  (* fanouts.(d) = children per node at depth d *)
  caps : int array;  (* caps.(d) = uplink capacity of a depth-d node *)
  num_nodes : int;
  depth : int array;
      (* depth.(v) for v in [1 .. num_nodes]; slot 0 unused.  Leaves sit
         at depth [levels], the root at depth 0. *)
  nodes_at_level : int array array;
      (* nodes_at_level.(lvl) = every node of level [lvl] in increasing id
         order; level levels = root, level 0 = leaves. *)
}

let of_shape shape =
  let levels = Shape.levels shape in
  let leaves = Shape.leaves shape in
  let sizes = Shape.sizes shape in
  let offsets = Array.make (levels + 2) 1 in
  for d = 0 to levels do
    offsets.(d + 1) <- offsets.(d) + sizes.(d)
  done;
  let num_nodes = offsets.(levels + 1) - 1 in
  let spans = Array.map (fun s -> leaves / s) sizes in
  let fanouts = Array.init levels (fun d -> sizes.(d + 1) / sizes.(d)) in
  let depth = Array.make (num_nodes + 1) 0 in
  for d = 0 to levels do
    for v = offsets.(d) to offsets.(d + 1) - 1 do
      depth.(v) <- d
    done
  done;
  let nodes_at_level =
    Array.init (levels + 1) (fun lvl ->
        let d = levels - lvl in
        Array.init sizes.(d) (fun i -> offsets.(d) + i))
  in
  {
    shape;
    leaves;
    levels;
    binary = Shape.is_binary shape;
    offsets;
    spans;
    fanouts;
    caps = Shape.caps shape;
    num_nodes;
    depth;
    nodes_at_level;
  }

let create ~leaves = of_shape (Shape.binary ~leaves)
let shape t = t.shape
let is_binary t = t.binary
let leaves t = t.leaves
let levels t = t.levels
let num_nodes t = t.num_nodes
let root = 1

let check_node t v =
  if v < 1 || v > t.num_nodes then
    invalid_arg (Printf.sprintf "Topology: bad node %d" v)

let first_leaf t = t.offsets.(t.levels)

let is_leaf t v =
  check_node t v;
  v >= t.offsets.(t.levels)

let is_internal t v = not (is_leaf t v)

let node_of_pe t p =
  if p < 0 || p >= t.leaves then invalid_arg "Topology.node_of_pe";
  t.offsets.(t.levels) + p

let pe_of_node t v =
  if not (is_leaf t v) then invalid_arg "Topology.pe_of_node: internal node";
  v - t.offsets.(t.levels)

let parent t v =
  check_node t v;
  if v = root then invalid_arg "Topology.parent: root"
  else
    let d = t.depth.(v) in
    t.offsets.(d - 1) + ((v - t.offsets.(d)) / t.fanouts.(d - 1))

let fanout_of t v =
  if is_leaf t v then 0 else t.fanouts.(t.depth.(v))

let child t v j =
  if is_leaf t v then invalid_arg "Topology.child: leaf";
  let d = t.depth.(v) in
  let f = t.fanouts.(d) in
  if j < 0 || j >= f then invalid_arg "Topology.child: bad child index";
  t.offsets.(d + 1) + ((v - t.offsets.(d)) * f) + j

let left t v =
  if is_leaf t v then invalid_arg "Topology.left: leaf"
  else
    let d = t.depth.(v) in
    t.offsets.(d + 1) + ((v - t.offsets.(d)) * t.fanouts.(d))

let right t v =
  if is_leaf t v then invalid_arg "Topology.right: leaf"
  else
    let d = t.depth.(v) in
    t.offsets.(d + 1) + ((v - t.offsets.(d)) * t.fanouts.(d)) + 1

(* Unchecked binary-only accessors: callers guarantee a binary topology
   (where BFS ids are heap ids) and 1 <= v <= 2*leaves-1, with
   internality where children are taken. *)
let left_u v = v lsl 1
let right_u v = (v lsl 1) lor 1
let parent_u v = v lsr 1
let depth_u t v = Array.unsafe_get t.depth v
let level_u t v = t.levels - Array.unsafe_get t.depth v
let nodes_at_level t lvl = t.nodes_at_level.(lvl)

let child_index t v =
  check_node t v;
  if v = root then invalid_arg "Topology.child_index: root"
  else
    let d = t.depth.(v) in
    (v - t.offsets.(d)) mod t.fanouts.(d - 1)

let child_side t v =
  check_node t v;
  if v = root then invalid_arg "Topology.child_side: root"
  else
    let d = t.depth.(v) in
    let f = t.fanouts.(d - 1) in
    if f <> 2 then invalid_arg "Topology.child_side: parent fanout is not 2"
    else if (v - t.offsets.(d)) mod 2 = 0 then Side.L
    else Side.R

let level t v =
  check_node t v;
  level_u t v

let up t v =
  let d = t.depth.(v) in
  t.offsets.(d - 1) + ((v - t.offsets.(d)) / t.fanouts.(d - 1))

let lca t a b =
  check_node t a;
  check_node t b;
  (* Equalize depths via the depth table, then climb in lock-step. *)
  let a = ref a and b = ref b in
  let da = ref t.depth.(!a) and db = ref t.depth.(!b) in
  while !da > !db do
    a := up t !a;
    decr da
  done;
  while !db > !da do
    b := up t !b;
    decr db
  done;
  while !a <> !b do
    a := up t !a;
    b := up t !b
  done;
  !a

let interval t v =
  check_node t v;
  (* The subtree of v spans a contiguous block of leaves whose size is
     determined by v's depth. *)
  let d = t.depth.(v) in
  let size = t.spans.(d) in
  let lo = (v - t.offsets.(d)) * size in
  (lo, lo + size)

let mid t v =
  if is_leaf t v then invalid_arg "Topology.mid: leaf";
  (* First leaf not covered by v's first child: the boundary between
     child 0 and child 1 (the left/right split point on fanout 2). *)
  let d = t.depth.(v) in
  let lo = (v - t.offsets.(d)) * t.spans.(d) in
  lo + t.spans.(d + 1)

let mirror_node t v =
  check_node t v;
  (* Reflection reverses the node order within each depth. *)
  let d = t.depth.(v) in
  (2 * t.offsets.(d)) + (t.spans.(0) / t.spans.(d)) - 1 - v

let uplink_cap t v =
  check_node t v;
  if v = root then invalid_arg "Topology.uplink_cap: root"
  else t.caps.(t.depth.(v))

let parent_table t =
  let pt = Array.make (t.num_nodes + 1) 0 in
  for v = 2 to t.num_nodes do
    pt.(v) <- up t v
  done;
  pt

let cap_table t =
  let ct = Array.make (t.num_nodes + 1) 0 in
  for v = 2 to t.num_nodes do
    ct.(v) <- t.caps.(t.depth.(v))
  done;
  ct

let path_to_root t v =
  check_node t v;
  let rec go v acc =
    if v = root then List.rev (v :: acc) else go (up t v) (v :: acc)
  in
  go v []

let internal_nodes t = Seq.init (t.offsets.(t.levels) - 1) (fun i -> i + 1)

let iter_internal_bottom_up t f =
  (* BFS numbering: children always have larger ids than their parent,
     so a descending sweep visits every node after all its children. *)
  for v = t.offsets.(t.levels) - 1 downto 1 do
    f v
  done

let pp fmt t =
  if t.binary then
    Format.fprintf fmt "CST(leaves=%d, levels=%d, switches=%d)" t.leaves
      t.levels (t.leaves - 1)
  else
    Format.fprintf fmt "CST(leaves=%d, levels=%d, switches=%d, shape=%s)"
      t.leaves t.levels
      (t.offsets.(t.levels) - 1)
      (Shape.to_string t.shape)

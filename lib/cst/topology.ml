type t = {
  leaves : int;
  levels : int;
  depth : int array;
      (* depth.(v) = ilog2 v for v in [1 .. 2*leaves-1]; slot 0 unused.
         Leaves sit at depth [levels], the root at depth 0. *)
  nodes_at_level : int array array;
      (* nodes_at_level.(lvl) = every node of level [lvl] in increasing id
         order; level levels = root, level 0 = leaves. *)
}

let create ~leaves =
  if leaves < 2 || not (Cst_util.Bits.is_power_of_two leaves) then
    invalid_arg "Topology.create: leaves must be a power of two >= 2";
  let levels = Cst_util.Bits.ilog2 leaves in
  let depth = Array.make (2 * leaves) 0 in
  for v = 2 to (2 * leaves) - 1 do
    depth.(v) <- depth.(v / 2) + 1
  done;
  let nodes_at_level =
    Array.init (levels + 1) (fun lvl ->
        let d = levels - lvl in
        let first = 1 lsl d in
        Array.init first (fun i -> first + i))
  in
  { leaves; levels; depth; nodes_at_level }

let leaves t = t.leaves
let levels t = t.levels
let num_nodes t = (2 * t.leaves) - 1
let root = 1

let check_node t v =
  if v < 1 || v > 2 * t.leaves - 1 then
    invalid_arg (Printf.sprintf "Topology: bad node %d" v)

let is_leaf t v =
  check_node t v;
  v >= t.leaves

let is_internal t v = not (is_leaf t v)

let node_of_pe t p =
  if p < 0 || p >= t.leaves then invalid_arg "Topology.node_of_pe";
  t.leaves + p

let pe_of_node t v =
  if not (is_leaf t v) then invalid_arg "Topology.pe_of_node: internal node";
  v - t.leaves

let parent t v =
  check_node t v;
  if v = root then invalid_arg "Topology.parent: root" else v / 2

let left t v =
  if is_leaf t v then invalid_arg "Topology.left: leaf" else 2 * v

let right t v =
  if is_leaf t v then invalid_arg "Topology.right: leaf" else (2 * v) + 1

(* Unchecked hot-path accessors: callers guarantee 1 <= v <= 2*leaves-1
   (and internality where children are taken). *)
let left_u v = v lsl 1
let right_u v = (v lsl 1) lor 1
let parent_u v = v lsr 1
let depth_u t v = Array.unsafe_get t.depth v
let level_u t v = t.levels - Array.unsafe_get t.depth v
let nodes_at_level t lvl = t.nodes_at_level.(lvl)

let child_side t v =
  check_node t v;
  if v = root then invalid_arg "Topology.child_side: root"
  else if v land 1 = 0 then Side.L
  else Side.R

let level t v =
  check_node t v;
  level_u t v

let lca t a b =
  check_node t a;
  check_node t b;
  (* Equalize depths via the depth table, then climb in lock-step. *)
  let a = ref a and b = ref b in
  let da = ref t.depth.(!a) and db = ref t.depth.(!b) in
  while !da > !db do
    a := !a lsr 1;
    decr da
  done;
  while !db > !da do
    b := !b lsr 1;
    decr db
  done;
  while !a <> !b do
    a := !a lsr 1;
    b := !b lsr 1
  done;
  !a

let interval t v =
  check_node t v;
  (* The subtree of v spans a contiguous block of leaves whose size is
     determined by v's depth. *)
  let d = t.depth.(v) in
  let size = t.leaves lsr d in
  let lo = (v - (1 lsl d)) * size in
  (lo, lo + size)

let mid t v =
  if is_leaf t v then invalid_arg "Topology.mid: leaf";
  let d = t.depth.(v) in
  let size = t.leaves lsr d in
  let lo = (v - (1 lsl d)) * size in
  lo + (size / 2)

let mirror_node t v =
  check_node t v;
  (* Nodes at depth d occupy ids [2^d .. 2^{d+1}-1]; reflection reverses
     the order within the level. *)
  let d = t.depth.(v) in
  (3 * (1 lsl d)) - 1 - v

let path_to_root t v =
  check_node t v;
  let rec go v acc = if v = root then List.rev (v :: acc) else go (v / 2) (v :: acc) in
  go v []

let internal_nodes t = Seq.init (t.leaves - 1) (fun i -> i + 1)

let iter_internal_bottom_up t f =
  for v = t.leaves - 1 downto 1 do
    f v
  done

let pp fmt t =
  Format.fprintf fmt "CST(leaves=%d, levels=%d, switches=%d)" t.leaves
    t.levels (t.leaves - 1)

(* Level-table description of a tree topology.  Depth-indexed arrays:
   depth 0 is the root (one node), depth [levels] the leaves.  The table
   fixes the node count of every depth and the capacity of every uplink
   tier; all of [Topology]'s arithmetic is derived from it.  The
   complete binary tree is the shape whose fanouts are all 2 and whose
   capacities are all 1 — [is_binary] is that structural test, and the
   binary shape's fingerprint is pinned to 0 so every hash that mixes a
   fingerprint is unchanged on the classic topology. *)

type t = {
  sizes : int array;  (* sizes.(d) = nodes at depth d; sizes.(0) = 1 *)
  caps : int array;
      (* caps.(d) = capacity of the link from a depth-d node to its
         parent, d in [1 .. levels]; caps.(0) = 0 (the root has no
         uplink) *)
  binary : bool;
  fingerprint : int;
}

type error =
  | Too_few_leaves of int
  | Root_not_single of int
  | Increasing_level_size of { depth : int; size : int; child_size : int }
  | Fractional_fanout of { depth : int; size : int; child_size : int }
  | Bad_capacity of { depth : int; cap : int }
  | Capacity_arity of { expected : int; got : int }

let pp_error fmt = function
  | Too_few_leaves n ->
      Format.fprintf fmt "shape needs at least 2 leaves, got %d" n
  | Root_not_single n ->
      Format.fprintf fmt "shape root level must hold exactly 1 node, got %d" n
  | Increasing_level_size { depth; size; child_size } ->
      Format.fprintf fmt
        "level sizes must strictly decrease leaf-to-root: depth %d has %d \
         nodes but its child level has %d"
        depth size child_size
  | Fractional_fanout { depth; size; child_size } ->
      Format.fprintf fmt
        "fanout at depth %d is not an integer: %d nodes over %d parents"
        depth child_size size
  | Bad_capacity { depth; cap } ->
      Format.fprintf fmt "link capacity at depth %d must be positive, got %d"
        depth cap
  | Capacity_arity { expected; got } ->
      Format.fprintf fmt "expected %d link capacities (one per tier), got %d"
        expected got

let fnv_prime = 0x100000001b3

let fingerprint_of ~sizes ~caps ~binary =
  if binary then 0
  else begin
    let h = ref 0x3bf29ce484222325 in
    let mix v = h := ((!h lxor v) * fnv_prime) land max_int in
    mix (Array.length sizes);
    Array.iter mix sizes;
    Array.iter mix caps;
    (* 0 is reserved for the binary shape *)
    if !h = 0 then 1 else !h
  end

(* [sizes] root-to-leaf (sizes.(0) = 1), [caps] per uplink tier with
   caps.(0) ignored.  The single validating constructor; every public
   constructor funnels through it. *)
let make ~sizes ~caps =
  let levels = Array.length sizes - 1 in
  if levels < 1 || sizes.(levels) < 2 then
    Error (Too_few_leaves (if levels < 0 then 0 else sizes.(max 0 levels)))
  else if sizes.(0) <> 1 then Error (Root_not_single sizes.(0))
  else if Array.length caps <> Array.length sizes then
    Error
      (Capacity_arity { expected = levels; got = Array.length caps - 1 })
  else begin
    let err = ref None in
    for d = levels downto 1 do
      if !err = None then begin
        let size = sizes.(d - 1) and child_size = sizes.(d) in
        if size >= child_size then
          err :=
            Some (Increasing_level_size { depth = d - 1; size; child_size })
        else if child_size mod size <> 0 then
          err := Some (Fractional_fanout { depth = d - 1; size; child_size })
        else if caps.(d) < 1 then
          err := Some (Bad_capacity { depth = d; cap = caps.(d) })
      end
    done;
    match !err with
    | Some e -> Error e
    | None ->
        let binary =
          Array.for_all (fun c -> c = 1) (Array.sub caps 1 levels)
          && (let ok = ref true in
              for d = 1 to levels do
                if sizes.(d) <> 2 * sizes.(d - 1) then ok := false
              done;
              !ok)
        in
        let sizes = Array.copy sizes and caps = Array.copy caps in
        caps.(0) <- 0;
        Ok { sizes; caps; binary; fingerprint = fingerprint_of ~sizes ~caps ~binary }
  end

let create ~level_sizes ~capacities =
  (* [level_sizes] leaf-to-root without the implied single root;
     [capacities] one per uplink tier, leaf-to-root. *)
  let k = Array.length level_sizes in
  if k = 0 then Error (Too_few_leaves 0)
  else if Array.length capacities <> k then
    Error (Capacity_arity { expected = k; got = Array.length capacities })
  else begin
    let sizes = Array.make (k + 1) 1 in
    let caps = Array.make (k + 1) 0 in
    for i = 0 to k - 1 do
      sizes.(k - i) <- level_sizes.(i);
      caps.(k - i) <- capacities.(i)
    done;
    make ~sizes ~caps
  end

let fat_tree ~level_sizes ~capacities = create ~level_sizes ~capacities

let binary ~leaves =
  if leaves < 2 || not (Cst_util.Bits.is_power_of_two leaves) then
    invalid_arg "Shape.binary: leaves must be a power of two >= 2";
  let levels = Cst_util.Bits.ilog2 leaves in
  let sizes = Array.init (levels + 1) (fun d -> 1 lsl d) in
  let caps = Array.make (levels + 1) 1 in
  caps.(0) <- 0;
  {
    sizes;
    caps;
    binary = true;
    fingerprint = 0;
  }

let kary ~k ~leaves =
  if k < 2 then invalid_arg "Shape.kary: k must be >= 2";
  if leaves < k then invalid_arg "Shape.kary: leaves must be >= k";
  let levels = ref 0 and n = ref 1 in
  while !n < leaves do
    n := !n * k;
    incr levels
  done;
  if !n <> leaves then
    invalid_arg "Shape.kary: leaves must be a power of k";
  let sizes = Array.make (!levels + 1) 1 in
  for d = 1 to !levels do
    sizes.(d) <- sizes.(d - 1) * k
  done;
  let caps = Array.make (!levels + 1) 1 in
  caps.(0) <- 0;
  match make ~sizes ~caps with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Shape.kary: %a" pp_error e)

let levels t = Array.length t.sizes - 1
let leaves t = t.sizes.(levels t)
let size_at t ~depth = t.sizes.(depth)
let cap_at t ~depth = t.caps.(depth)
let fanout_at t ~depth = t.sizes.(depth + 1) / t.sizes.(depth)
let is_binary t = t.binary
let fingerprint t = t.fingerprint
let sizes t = Array.copy t.sizes
let caps t = Array.copy t.caps
let num_nodes t = Array.fold_left ( + ) 0 t.sizes

let equal a b = a.sizes = b.sizes && a.caps = b.caps

(* The CLI grammar: bin:N | kary:K:N | fat:L0,L1[,...][:c0,c1,...] with
   level sizes leaf-to-root (the root is implied) and one capacity per
   uplink tier (default 1). *)

let to_string t =
  let lv = levels t in
  if t.binary then Printf.sprintf "bin:%d" (leaves t)
  else begin
    let k = fanout_at t ~depth:0 in
    let uniform_kary =
      Array.for_all (fun c -> c <= 1) t.caps
      && (let ok = ref true in
          for d = 0 to lv - 1 do
            if fanout_at t ~depth:d <> k then ok := false
          done;
          !ok)
    in
    if uniform_kary then Printf.sprintf "kary:%d:%d" k (leaves t)
    else
      let join f lo hi =
        String.concat ","
          (List.map f (List.init (hi - lo + 1) (fun i -> lo + i)))
      in
      Printf.sprintf "fat:%s:%s"
        (join (fun d -> string_of_int t.sizes.(lv - d)) 0 (lv - 1))
        (join (fun d -> string_of_int t.caps.(lv - d)) 0 (lv - 1))
  end

let of_string s =
  let int_of what v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "shape: %s %S is not an integer" what v)
  in
  let ints what v =
    List.fold_right
      (fun part acc ->
        match acc with
        | Error _ as e -> e
        | Ok tl -> (
            match int_of what part with
            | Ok i -> Ok (i :: tl)
            | Error e -> Error e))
      (String.split_on_char ',' v)
      (Ok [])
  in
  match String.split_on_char ':' s with
  | [ "bin"; n ] -> (
      match int_of "leaf count" n with
      | Error e -> Error e
      | Ok n -> (
          match binary ~leaves:n with
          | t -> Ok t
          | exception Invalid_argument m -> Error m))
  | [ "kary"; k; n ] -> (
      match (int_of "arity" k, int_of "leaf count" n) with
      | Error e, _ | _, Error e -> Error e
      | Ok k, Ok n -> (
          match kary ~k ~leaves:n with
          | t -> Ok t
          | exception Invalid_argument m -> Error m))
  | ([ "fat"; ls ] | [ "fat"; ls; _ ]) as parts -> (
      let caps_part = match parts with [ _; _; cs ] -> Some cs | _ -> None in
      match ints "level size" ls with
      | Error e -> Error e
      | Ok sizes -> (
          let level_sizes = Array.of_list sizes in
          let caps =
            match caps_part with
            | None -> Ok (Array.make (Array.length level_sizes) 1)
            | Some cs -> Result.map Array.of_list (ints "capacity" cs)
          in
          match caps with
          | Error e -> Error e
          | Ok capacities -> (
              match fat_tree ~level_sizes ~capacities with
              | Ok t -> Ok t
              | Error e ->
                  Error (Format.asprintf "shape %S: %a" s pp_error e))))
  | _ ->
      Error
        (Printf.sprintf
           "shape %S: expected bin:N, kary:K:N or fat:L0,L1[,...][:c0,c1,...]"
           s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Configuration of one 3-sided switch.

    A configuration assigns to each data output at most one driving data
    input, subject to the switch's structural constraints:
    {ul
    {- an input never drives the output of its own side (no U-turns — this
       is what bounds path length by [O(log N)], paper §2);}
    {- connections are one-to-one: an input drives at most one output.}}

    Values are immutable; the live network ({!Net}) swaps whole
    configurations and charges power for the difference ({!diff}). *)

type t

val empty : t
(** No connections. *)

val set : t -> output:Side.t -> input:Side.t -> t
(** Adds a connection.  Raises [Invalid_argument] on a same-side
    connection, if [output] is already driven, or if [input] already
    drives another output. *)

val driver : t -> Side.t -> Side.t option
(** [driver t output] is the input connected to [output], if any. *)

val with_driver : t -> output:Side.t -> input:Side.t option -> t
(** Unchecked driver update, for replaying logged transitions
    ({!Exec_log}): overwrites [output]'s driver (or clears it on
    [None]) without the structural checks of {!set} — the log records
    transitions that a checked configuration already performed. *)

val output_of : t -> Side.t -> Side.t option
(** [output_of t input] is the output driven by [input], if any. *)

val connections : t -> (Side.t * Side.t) list
(** [(output, input)] pairs, in side order. *)

val connection_count : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool

val merge_lazy : prev:t -> want:t -> t
(** Power-aware carry-over (the PADR discipline): start from [want] and
    re-add every [prev] connection that neither conflicts with a wanted
    output nor steals an input used by [want].  A switch therefore only
    touches the connections the current round actually requires. *)

type delta = { connects : int; disconnects : int }

val diff : old_config:t -> new_config:t -> delta
(** Per-output transition counts between two configurations.  An output
    whose driver changes from one input to another counts as one connect
    (the paper charges one power unit per connection set) and no
    disconnect; input-to-none is a disconnect; none-to-input a connect. *)

val pp : Format.formatter -> t -> unit
(** E.g. ["{L->P, P->R}"] meaning input L drives output P, etc.;
    ["{}"] when empty. *)

(** Human-readable narration of a schedule run, derived from the
    execution log.

    Formerly schedulers emitted trace events inline; now the trace is a
    pure view: run any scheduler (they all log), then build the
    narration with {!of_log}.  A [Reconfigured] line is produced for
    every switch that physically changed in a round, carrying the
    configuration in force after the change. *)

type event =
  | Phase1_done of { levels : int }
  | Round_start of int
  | Reconfigured of { round : int; node : int; config : Switch_config.t }
  | Delivered of { round : int; src : int; dst : int }
  | Finished of { rounds : int }

type t

val of_log : ?from:int -> ?upto:int -> Exec_log.t -> t
(** Narrate the events in the range.  Config state is replayed from the
    log's beginning regardless of [from], so a trace of a later run on
    a shared net shows the true configurations. *)

val events : t -> event list
(** In narration order. *)

val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

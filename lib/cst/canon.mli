(** Canonical structural signature of a communication set.

    Two sets are {e structurally congruent} when one is the translation
    of the other by a multiple of their common alignment — they occupy
    congruent aligned leaf blocks of (possibly different) trees, with
    identical endpoint offsets inside the block.  Congruent sets
    schedule identically up to a relabeling of switches and PEs: no
    event of a run ever leaves the minimal aligned subtree enclosing
    the set (ancestors of the block root see zero endpoint counts in
    Phase 1 and are never demanded by any round), and every scheduling
    decision inside the block depends only on block-relative structure.
    {!Cst.Exec_log.rebase} exploits this to relocate a compiled log in
    O(events); the plan cache exploits it to key compiled plans.

    The signature of a set is the pair (alignment, offsets): the side
    of the minimal aligned block containing every endpoint, and the
    endpoint pairs relative to that block's first leaf, in canonical
    (source-sorted) order.  It is independent of the tree size the set
    is scheduled on. *)

type t
(** A signature: alignment + block-relative endpoint offsets +
    precomputed FNV-1a hash. *)

type placed = { canon : t; base : int }
(** A set's signature together with where the set sits: [base] is the
    first leaf of its aligned block (a multiple of the alignment). *)

val place : Cst_comm.Comm_set.t -> placed
(** Computes the signature and placement of a set.  O(size).  The empty
    set places as alignment 1, base 0, no offsets. *)

val equal : t -> t -> bool
(** Full structural equality (alignment and the complete offsets array,
    not just the hash) — collision-proof, as cache keys require. *)

val hash : t -> int
(** FNV-1a over alignment and offsets, truncated to native int. *)

val hash_with : shape_fp:int -> t -> int
(** {!hash} mixed with a topology's {!Shape.fingerprint}: plans for the
    same set on different shapes must never collide in a store or
    cache.  Fingerprint 0 (every binary shape) returns {!hash}
    unchanged, keeping historical filenames and keys stable. *)

val align : t -> int
(** Side of the minimal aligned block: a power of two [>= 1]. *)

val size : t -> int
(** Number of communications in the signature. *)

val offsets : t -> (int * int) array
(** Fresh copy of the block-relative [(src, dst)] offset pairs, in
    canonical source-sorted order — the serializable half of the
    signature (the other half is {!align}). *)

val of_offsets : align:int -> (int * int) array -> t
(** Rebuilds a signature from serialized parts, recomputing the hash.
    Accepts exactly the image of {!place}: [align] a power of two,
    offsets sorted by source with every endpoint in [[0, align)] and
    [src <> dst], the empty array only with alignment 1, and a
    non-empty set straddling the block midpoint (else a half-size
    block would contain it and [align] would not be minimal).  Raises
    [Invalid_argument] otherwise — a decoded plan whose canon section
    fails this check is corrupt, not merely foreign. *)

val compatible : t -> leaves:int -> base:int -> bool
(** Whether a plan with this signature can be placed at leaf offset
    [base] of a [leaves]-leaf tree: [leaves] a power of two no smaller
    than the alignment, [base] a non-negative multiple of the alignment
    with [base + align <= leaves]. *)

val pp : Format.formatter -> t -> unit

(* Drivers indexed by output side: drivers.(Side.index output). *)
type t = { drivers : Side.t option array }

let empty = { drivers = [| None; None; None |] }

let driver t output = t.drivers.(Side.index output)

let output_of t input =
  let rec go = function
    | [] -> None
    | o :: rest ->
        if driver t o = Some input then Some o else go rest
  in
  go Side.all

let set t ~output ~input =
  if Side.equal output input then
    invalid_arg "Switch_config.set: same-side connection";
  (match driver t output with
  | Some _ ->
      invalid_arg
        (Format.asprintf "Switch_config.set: output %a already driven"
           Side.pp output)
  | None -> ());
  (match output_of t input with
  | Some _ ->
      invalid_arg
        (Format.asprintf "Switch_config.set: input %a already used" Side.pp
           input)
  | None -> ());
  let drivers = Array.copy t.drivers in
  drivers.(Side.index output) <- Some input;
  { drivers }

let with_driver t ~output ~input =
  let drivers = Array.copy t.drivers in
  drivers.(Side.index output) <- input;
  { drivers }

let connections t =
  List.filter_map
    (fun o -> match driver t o with Some i -> Some (o, i) | None -> None)
    Side.all

let connection_count t = List.length (connections t)
let is_empty t = connection_count t = 0

let equal a b =
  List.for_all (fun o -> driver a o = driver b o) Side.all

let merge_lazy ~prev ~want =
  let used_input i = output_of want i <> None in
  List.fold_left
    (fun acc o ->
      match (driver want o, driver prev o) with
      | Some _, _ -> acc (* already present in [want] *)
      | None, None -> acc
      | None, Some i -> if used_input i then acc else set acc ~output:o ~input:i)
    want Side.all

type delta = { connects : int; disconnects : int }

let diff ~old_config ~new_config =
  List.fold_left
    (fun d o ->
      match (driver old_config o, driver new_config o) with
      | None, None -> d
      | None, Some _ -> { d with connects = d.connects + 1 }
      | Some _, None -> { d with disconnects = d.disconnects + 1 }
      | Some a, Some b ->
          if Side.equal a b then d else { d with connects = d.connects + 1 })
    { connects = 0; disconnects = 0 }
    Side.all

let pp fmt t =
  let cs = connections t in
  if cs = [] then Format.pp_print_string fmt "{}"
  else begin
    Format.pp_print_string fmt "{";
    List.iteri
      (fun k (o, i) ->
        if k > 0 then Format.pp_print_string fmt ", ";
        Format.fprintf fmt "%a->%a" Side.pp i Side.pp o)
      cs;
    Format.pp_print_string fmt "}"
  end

(* Canonical execution log: every scheduler run is a flat sequence of
   typed events, appended by [Net] (config transitions) and by the
   producers themselves (rounds, deliveries, run boundaries).  One event
   is one 63-bit word in a growable int arena:

     bits 0-2   tag
     bits 3-22  field a   (node / src / levels)
     bits 23-42 field b   (port index / dst / write count)
     bits 43-62 field c   (port index)

   [Round_begin] and [Run_end] use a 40-bit payload spanning a and b so
   round counts are not capped at 2^20. *)

type event =
  | Phase_done of { levels : int }
  | Round_begin of { index : int }
  | Connect of { node : int; out_port : Side.t; in_port : Side.t }
  | Disconnect of { node : int; out_port : Side.t; in_port : Side.t }
  | Write_config of { node : int; count : int }
  | Deliver of { src : int; dst : int }
  | Run_end of { rounds : int }

let tag_phase_done = 0
let tag_round_begin = 1
let tag_connect = 2
let tag_disconnect = 3
let tag_write_config = 4
let tag_deliver = 5
let tag_run_end = 6
let field_mask = (1 lsl 20) - 1
let wide_mask = (1 lsl 40) - 1

type t = { mutable buf : int array; mutable len : int }

let create ?(capacity = 256) () =
  { buf = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len
let bytes_used t = 8 * t.len
let clear t = t.len <- 0

let grow t =
  let buf = Array.make (2 * Array.length t.buf) 0 in
  Array.blit t.buf 0 buf 0 t.len;
  t.buf <- buf

let reserve t extra =
  let want = t.len + extra in
  if want > Array.length t.buf then begin
    let cap = ref (Array.length t.buf) in
    while !cap < want do
      cap := 2 * !cap
    done;
    let buf = Array.make !cap 0 in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end

let[@inline] push t w =
  if t.len = Array.length t.buf then grow t;
  t.buf.(t.len) <- w;
  t.len <- t.len + 1

let check_field what v =
  if v < 0 || v > field_mask then
    invalid_arg (Printf.sprintf "Exec_log: %s %d out of range" what v)

let check_wide what v =
  if v < 0 || v > wide_mask then
    invalid_arg (Printf.sprintf "Exec_log: %s %d out of range" what v)

let[@inline] pack3 tag a b c = tag lor (a lsl 3) lor (b lsl 23) lor (c lsl 43)
let[@inline] pack_wide tag v = tag lor (v lsl 3)

let phase_done t ~levels =
  check_field "levels" levels;
  push t (pack3 tag_phase_done levels 0 0)

let round_begin t ~index =
  check_wide "round index" index;
  push t (pack_wide tag_round_begin index)

let connect t ~node ~out_port ~in_port =
  check_field "node" node;
  push t (pack3 tag_connect node (Side.index out_port) (Side.index in_port))

let disconnect t ~node ~out_port ~in_port =
  check_field "node" node;
  push t (pack3 tag_disconnect node (Side.index out_port) (Side.index in_port))

let write_config t ~node ~count =
  check_field "node" node;
  check_field "write count" count;
  push t (pack3 tag_write_config node count 0)

let deliver t ~src ~dst =
  check_field "src" src;
  check_field "dst" dst;
  push t (pack3 tag_deliver src dst 0)

let run_end t ~rounds =
  check_wide "rounds" rounds;
  push t (pack_wide tag_run_end rounds)

let append t = function
  | Phase_done { levels } -> phase_done t ~levels
  | Round_begin { index } -> round_begin t ~index
  | Connect { node; out_port; in_port } -> connect t ~node ~out_port ~in_port
  | Disconnect { node; out_port; in_port } ->
      disconnect t ~node ~out_port ~in_port
  | Write_config { node; count } -> write_config t ~node ~count
  | Deliver { src; dst } -> deliver t ~src ~dst
  | Run_end { rounds } -> run_end t ~rounds

let decode w =
  let a = (w lsr 3) land field_mask in
  let b = (w lsr 23) land field_mask in
  let c = (w lsr 43) land field_mask in
  match w land 7 with
  | 0 -> Phase_done { levels = a }
  | 1 -> Round_begin { index = (w lsr 3) land wide_mask }
  | 2 ->
      Connect
        { node = a; out_port = Side.of_index b; in_port = Side.of_index c }
  | 3 ->
      Disconnect
        { node = a; out_port = Side.of_index b; in_port = Side.of_index c }
  | 4 -> Write_config { node = a; count = b }
  | 5 -> Deliver { src = a; dst = b }
  | 6 -> Run_end { rounds = (w lsr 3) land wide_mask }
  | _ -> invalid_arg "Exec_log.decode: corrupt word"

let clamp ?(from = 0) ?upto t =
  let upto = match upto with Some u -> min u t.len | None -> t.len in
  (max 0 from, upto)

let event t i =
  if i < 0 || i >= t.len then invalid_arg "Exec_log.event: index out of range";
  decode t.buf.(i)

let iter ?from ?upto t f =
  let from, upto = clamp ?from ?upto t in
  for i = from to upto - 1 do
    f (decode t.buf.(i))
  done

let fold ?from ?upto t ~init ~f =
  let from, upto = clamp ?from ?upto t in
  let acc = ref init in
  for i = from to upto - 1 do
    acc := f !acc (decode t.buf.(i))
  done;
  !acc

let sub t ~from =
  let from, upto = clamp ~from t in
  let len = upto - from in
  let buf = Array.make (max 1 len) 0 in
  Array.blit t.buf from buf 0 len;
  { buf; len }

(* Structural digest: FNV-1a-style multiply-xor over the packed words,
   truncated to OCaml's 63-bit native int.  Config events (connect /
   disconnect / write-config) between two non-config events are hashed
   in sorted order: a round's configuration delta is a *set* of switch
   transitions, and producers are free to discover switches in any order
   (the spec scheduler scans nodes in ascending id, the sparse engine in
   DFS preorder).  Round structure and delivery order hash as emitted. *)
let fnv_prime = 0x100000001b3

let digest ?from ?upto t =
  let from, upto = clamp ?from ?upto t in
  let h = ref 0x3bf29ce484222325 in
  let mix w = h := ((!h lxor w) * fnv_prime) land max_int in
  let pending = ref [] in
  let flush () =
    match !pending with
    | [] -> ()
    | ws ->
        List.iter mix (List.sort compare ws);
        pending := []
  in
  for i = from to upto - 1 do
    let w = t.buf.(i) in
    let tag = w land 7 in
    if tag = tag_connect || tag = tag_disconnect || tag = tag_write_config then
      pending := w :: !pending
    else begin
      flush ();
      mix w
    end
  done;
  flush ();
  Printf.sprintf "%016x" !h

(* Round-structured replay.  Configuration state is replayed from the
   log's beginning even when [from] is positive, so that runs on a
   shared long-lived net (whose carried-over connections predate [from])
   still snapshot the exact live state. *)

type round_view = {
  index : int;
  changed : (int * Switch_config.t) list;
  live : (int * Switch_config.t) list;
  deliveries : (int * int) list;
}

(* The replay keeps the whole driver state of a switch in one byte — 2
   bits per output port holding [0] (undriven) or [1 + Side.index
   driver] — so the per-event work is a byte load and store with no
   allocation; [Switch_config.t] values are only materialized at round
   boundaries, for the switches a view actually lists. *)

let config_of_byte b =
  if b = 0 then Switch_config.empty
  else
    List.fold_left
      (fun cfg out ->
        match (b lsr (2 * Side.index out)) land 3 with
        | 0 -> cfg
        | d ->
            Switch_config.with_driver cfg ~output:out
              ~input:(Some (Side.of_index (d - 1))))
      Switch_config.empty Side.all

let config_table = Array.init 64 config_of_byte

let fold_rounds ?(from = 0) ?upto ?(snapshots = true) t ~init ~f =
  let from, upto = clamp ~from ?upto t in
  (* Per-node replay state, one byte each: bits 0-5 driver state, bit 6
     "on this round's changed list", bit 7 "on the live list".  There
     are only 64 possible driver states, so materialized
     [Switch_config.t] values come from one shared precomputed table —
     snapshots allocate nothing but their list cells.  [live_list] is
     compacted lazily at each snapshot, so a round's snapshot costs
     O(live + died-this-round), not O(every switch ever driven) — the
     per-round baselines clear the whole tree between rounds, which
     would otherwise make every replayed round scan the full history. *)
  let state = ref (Bytes.make 1024 '\000') in
  let live_list = ref [] in
  let changed = ref [] in
  let get node =
    if node < Bytes.length !state then Char.code (Bytes.get !state node) else 0
  in
  let put node b =
    if node >= Bytes.length !state then begin
      let grown =
        Bytes.make (max (2 * Bytes.length !state) (node + 1)) '\000'
      in
      Bytes.blit !state 0 grown 0 (Bytes.length !state);
      state := grown
    end;
    Bytes.set !state node (Char.chr b)
  in
  let set_driver node out d =
    let shift = 2 * out in
    let b = get node in
    let nb = (b land lnot (3 lsl shift)) lor (d lsl shift) in
    let nb =
      if nb land 63 <> 0 && nb land 128 = 0 then begin
        live_list := node :: !live_list;
        nb lor 128
      end
      else nb
    in
    put node nb
  in
  let mark_changed node =
    let b = get node in
    if b land 64 = 0 then begin
      changed := node :: !changed;
      put node (b lor 64)
    end
  in
  let config_at node = config_table.(get node land 63) in
  for i = 0 to from - 1 do
    let w = t.buf.(i) in
    let tag = w land 7 in
    if tag = tag_connect then
      set_driver
        ((w lsr 3) land field_mask)
        ((w lsr 23) land field_mask)
        (1 + ((w lsr 43) land field_mask))
    else if tag = tag_disconnect then
      set_driver ((w lsr 3) land field_mask) ((w lsr 23) land field_mask) 0
  done;
  let acc = ref init in
  let cur_index = ref (-1) in
  let dels = ref [] in
  let flush () =
    if !cur_index >= 0 then begin
      let changed_list =
        List.sort compare !changed
        |> List.map (fun node ->
               put node (get node land lnot 64);
               (node, config_at node))
      in
      let snapshot =
        if not snapshots then []
        else begin
          let kept =
            List.filter
              (fun node ->
                if get node land 63 = 0 then begin
                  put node (get node land lnot 128);
                  false
                end
                else true)
              !live_list
          in
          live_list := kept;
          List.sort compare kept
          |> List.map (fun node -> (node, config_at node))
        end
      in
      acc :=
        f !acc
          {
            index = !cur_index;
            changed = changed_list;
            live = snapshot;
            deliveries = List.rev !dels;
          };
      changed := [];
      dels := [];
      cur_index := -1
    end
  in
  for i = from to upto - 1 do
    let w = t.buf.(i) in
    match w land 7 with
    | 0 (* phase_done *) | 6 (* run_end *) -> flush ()
    | 1 (* round_begin *) ->
        flush ();
        cur_index := (w lsr 3) land wide_mask
    | 2 (* connect *) ->
        let node = (w lsr 3) land field_mask in
        set_driver node
          ((w lsr 23) land field_mask)
          (1 + ((w lsr 43) land field_mask));
        mark_changed node
    | 3 (* disconnect *) ->
        let node = (w lsr 3) land field_mask in
        set_driver node ((w lsr 23) land field_mask) 0;
        mark_changed node
    | 4 (* write_config *) -> mark_changed ((w lsr 3) land field_mask)
    | 5 (* deliver *) ->
        dels := (((w lsr 3) land field_mask), (w lsr 23) land field_mask)
                :: !dels
    | _ -> invalid_arg "Exec_log.fold_rounds: corrupt word"
  done;
  flush ();
  !acc

(* Relocating a compiled plan.  For a run whose set lives entirely in
   the aligned leaf block [base, base + align) of a [leaves]-leaf tree,
   every Connect / Disconnect / Write_config targets a node of the
   subtree rooted at the block's node, and every Deliver joins two PEs
   of the block: Phase 1 reports zero endpoint counts above the block
   root (so no ancestor is ever matched or configured), and a round's
   paths stay below the LCA of the round's endpoints, which the block
   root dominates.  Relocating such a run to a congruent block of a
   (possibly different) tree is therefore a pure relabeling:

     - the block root moves from r_s = src_leaves/align + src_base/align
       to r_t = dst_leaves/align + dst_base/align (heap numbering: the
       node whose leaf interval is the block);
     - a descendant v at depth j below r_s maps to v + (r_t - r_s)*2^j
       (its j low-order child-direction bits are preserved);
     - PEs shift by dst_base - src_base;
     - [Phase_done] carries the target tree's level count; round
       boundaries and [Run_end] are position-free.

   The relabeling is performed on the packed words directly — one pass,
   O(events), no event values materialized. *)

let rebase ?(in_place = false) t ~src_leaves ~src_base ~dst_leaves ~dst_base
    ~align =
  let check_pow2 what v =
    if v < 1 || v land (v - 1) <> 0 then
      invalid_arg (Printf.sprintf "Exec_log.rebase: %s %d not a power of two" what v)
  in
  check_pow2 "align" align;
  check_pow2 "src_leaves" src_leaves;
  check_pow2 "dst_leaves" dst_leaves;
  let check_base what base leaves =
    if base < 0 || base mod align <> 0 || base + align > leaves then
      invalid_arg
        (Printf.sprintf
           "Exec_log.rebase: %s %d not an aligned block of %d leaves" what
           base leaves)
  in
  check_base "src_base" src_base src_leaves;
  check_base "dst_base" dst_base dst_leaves;
  let ilog2 n =
    let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
    go n 0
  in
  let src_root = (src_leaves / align) + (src_base / align) in
  let dst_root = (dst_leaves / align) + (dst_base / align) in
  let src_root_depth = ilog2 src_root in
  let dst_levels = ilog2 dst_leaves in
  let map_node node =
    let j = ilog2 node - src_root_depth in
    if j < 0 || node lsr j <> src_root then
      invalid_arg
        (Printf.sprintf
           "Exec_log.rebase: node %d outside the block subtree of %d" node
           src_root);
    let node' = node + ((dst_root - src_root) lsl j) in
    check_field "node" node';
    node'
  in
  let pe_delta = dst_base - src_base in
  let map_pe pe =
    if pe < src_base || pe >= src_base + align then
      invalid_arg
        (Printf.sprintf "Exec_log.rebase: PE %d outside block [%d, %d)" pe
           src_base (src_base + align));
    pe + pe_delta
  in
  let out = if in_place then t else create ~capacity:(max 1 t.len) () in
  for i = 0 to t.len - 1 do
    let w = t.buf.(i) in
    out.buf.(i) <-
      (match w land 7 with
      | 0 (* phase_done *) -> pack3 tag_phase_done dst_levels 0 0
      | 1 (* round_begin *) | 6 (* run_end *) -> w
      | 2 (* connect *) | 3 (* disconnect *) | 4 (* write_config *) ->
          let node' = map_node ((w lsr 3) land field_mask) in
          w land lnot (field_mask lsl 3) lor (node' lsl 3)
      | 5 (* deliver *) ->
          pack3 tag_deliver
            (map_pe ((w lsr 3) land field_mask))
            (map_pe ((w lsr 23) land field_mask))
            0
      | _ -> invalid_arg "Exec_log.rebase: corrupt word")
  done;
  out.len <- t.len;
  out

(* Merging per-block runs.  Each input is segmented once — for every
   round, the word ranges holding its config events and its deliveries
   — then the output is assembled by blitting packed words: one
   phase-done, and per output round the inputs' config ranges followed
   by the inputs' delivery ranges, in input order.  No event value is
   ever materialized. *)

type run_segments = {
  seg_src : t;
  seg_rounds : (int * int * int) array;  (* cfg_lo, cfg_hi, del_hi *)
}

let segment_run ~levels t =
  let fail msg = invalid_arg ("Exec_log.merge: " ^ msg) in
  if t.len = 0 then fail "empty log";
  if t.buf.(0) land 7 <> tag_phase_done then
    fail "log does not start with phase-done";
  if (t.buf.(0) lsr 3) land field_mask <> levels then
    fail
      (Printf.sprintf "phase-done levels %d, expected %d (rebase first?)"
         ((t.buf.(0) lsr 3) land field_mask)
         levels);
  let i = ref 1 in
  let segs = ref [] in
  let count = ref 0 in
  while !i < t.len && t.buf.(!i) land 7 = tag_round_begin do
    incr count;
    if (t.buf.(!i) lsr 3) land wide_mask <> !count then
      fail "round indices not consecutive from 1";
    incr i;
    let cfg_lo = !i in
    while
      !i < t.len
      && (let tag = t.buf.(!i) land 7 in
          tag = tag_connect || tag = tag_disconnect || tag = tag_write_config)
    do
      incr i
    done;
    let cfg_hi = !i in
    while !i < t.len && t.buf.(!i) land 7 = tag_deliver do
      incr i
    done;
    segs := (cfg_lo, cfg_hi, !i) :: !segs
  done;
  if !i >= t.len || t.buf.(!i) land 7 <> tag_run_end then
    fail "not a single-run log (missing run-end)";
  if (t.buf.(!i) lsr 3) land wide_mask <> !count then
    fail "run-end round count disagrees with the rounds present";
  if !i + 1 <> t.len then fail "events after run-end";
  { seg_src = t; seg_rounds = Array.of_list (List.rev !segs) }

let merge ?into ~levels logs =
  check_field "levels" levels;
  let runs = List.map (segment_run ~levels) logs in
  (* The output length is known up front (every input word lands exactly
     once, plus the shared phase-done / round / run-end skeleton): size
     the arena once so the blits below never trigger a growth copy. *)
  let total = List.fold_left (fun acc r -> acc + r.seg_src.len) 2 runs in
  let out =
    match into with
    | Some t ->
        reserve t total;
        t
    | None -> create ~capacity:total ()
  in
  phase_done out ~levels;
  let max_rounds =
    List.fold_left (fun acc r -> max acc (Array.length r.seg_rounds)) 0 runs
  in
  let blit r lo hi =
    let k = hi - lo in
    if k > 0 then begin
      reserve out k;
      Array.blit r.seg_src.buf lo out.buf out.len k;
      out.len <- out.len + k
    end
  in
  for round = 1 to max_rounds do
    round_begin out ~index:round;
    List.iter
      (fun r ->
        if round <= Array.length r.seg_rounds then begin
          let cfg_lo, cfg_hi, _ = r.seg_rounds.(round - 1) in
          blit r cfg_lo cfg_hi
        end)
      runs;
    List.iter
      (fun r ->
        if round <= Array.length r.seg_rounds then begin
          let _, cfg_hi, del_hi = r.seg_rounds.(round - 1) in
          blit r cfg_hi del_hi
        end)
      runs
  done;
  run_end out ~rounds:max_rounds;
  out

let driver_alternations ?from ?upto t ~node =
  let from, upto = clamp ?from ?upto t in
  (* Lemma 6/7 count: alternations of an output port's *driver
     sequence* — a [Connect] whose driver differs from the port's last
     established driver.  The first connect establishes the sequence
     (no alternation); a [Disconnect] releases the port but does not
     alternate it, and reconnecting the same driver afterwards is not
     an alternation either. *)
  let counts = [| 0; 0; 0 |] in
  let last = [| -1; -1; -1 |] in
  for i = from to upto - 1 do
    let w = t.buf.(i) in
    if w land 7 = tag_connect && (w lsr 3) land field_mask = node then begin
      let o = (w lsr 23) land field_mask in
      let d = (w lsr 43) land field_mask in
      if last.(o) >= 0 && last.(o) <> d then counts.(o) <- counts.(o) + 1;
      last.(o) <- d
    end
  done;
  max counts.(0) (max counts.(1) counts.(2))

let pp_event fmt = function
  | Phase_done { levels } ->
      Format.fprintf fmt "phase-done levels=%d" levels
  | Round_begin { index } -> Format.fprintf fmt "round-begin %d" index
  | Connect { node; out_port; in_port } ->
      Format.fprintf fmt "connect node=%d %a->%a" node Side.pp in_port Side.pp
        out_port
  | Disconnect { node; out_port; in_port } ->
      Format.fprintf fmt "disconnect node=%d %a-/->%a" node Side.pp in_port
        Side.pp out_port
  | Write_config { node; count } ->
      Format.fprintf fmt "write-config node=%d count=%d" node count
  | Deliver { src; dst } -> Format.fprintf fmt "deliver %d->%d" src dst
  | Run_end { rounds } -> Format.fprintf fmt "run-end rounds=%d" rounds

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  for i = 0 to t.len - 1 do
    Format.fprintf fmt "%6d %a@," i pp_event (decode t.buf.(i))
  done;
  Format.pp_close_box fmt ()

(* Binary codec: 40-byte little-endian header + the raw word arena.
   The arena digest is FNV-1a over the packed words as stored (not the
   structural [digest] above, which canonicalizes config order) — it is
   an integrity check on the bytes, so encode computes it during the
   same pass that writes the words and decode during the same pass that
   reads them.  Words are non-negative OCaml ints, so byte 7 of an
   honest word never has either of its top two bits set; [get64]
   silently drops bit 63 (ints wrap mod 2^63) and a bit-62 flip slides
   through the digest (an odd prime times 2^62 is 2^62 mod 2^63, and
   the final [land max_int] clears that bit again), which is why the
   word scan checks the stored top byte explicitly rather than the
   reassembled value. *)
module Codec = struct
  type error =
    | Truncated of { expected : int; got : int }
    | Bad_magic
    | Unsupported_version of { found : int; expected : int }
    | Digest_mismatch
    | Bad_word of { index : int }

  let pp_error fmt = function
    | Truncated { expected; got } ->
        Format.fprintf fmt "truncated: need %d bytes, have %d" expected got
    | Bad_magic -> Format.fprintf fmt "bad magic (not a CST log)"
    | Unsupported_version { found; expected } ->
        Format.fprintf fmt "unsupported version %d (expected %d)" found
          expected
    | Digest_mismatch -> Format.fprintf fmt "arena digest mismatch"
    | Bad_word { index } ->
        Format.fprintf fmt "invalid event word at index %d" index

  let version = 2
  let header_bytes = 40
  let header_bytes_v2 = 48
  let magic = "CSTELOG1"

  (* Version selection is driven by the shape fingerprint: binary-shape
     logs (fingerprint 0) keep the historical 40-byte v1 layout — every
     file ever written for the classic topology stays byte-identical —
     and only non-binary logs pay the 48-byte v2 header that records
     their fingerprint at offset 40. *)
  let header_bytes_for ~shape_fp =
    if shape_fp = 0 then header_bytes else header_bytes_v2

  let encoded_bytes ?(shape_fp = 0) t =
    header_bytes_for ~shape_fp + (8 * t.len)

  let put32 b pos v =
    for i = 0 to 3 do
      Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let get32 b pos =
    Char.code (Bytes.get b pos)
    lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
    lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
    lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

  let[@inline] put64 b pos v =
    for i = 0 to 7 do
      Bytes.unsafe_set b (pos + i)
        (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
    done

  let[@inline] get64 b pos =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get b (pos + i))
    done;
    !v

  let encode_into ?(canon_hash = 0) ?(shape_fp = 0) t b ~pos =
    let need = encoded_bytes ~shape_fp t in
    if pos < 0 || pos + need > Bytes.length b then
      invalid_arg "Exec_log.Codec.encode_into: buffer too small";
    Bytes.blit_string magic 0 b pos 8;
    put32 b (pos + 8) (if shape_fp = 0 then 1 else version);
    put32 b (pos + 12) 0;
    put64 b (pos + 16) canon_hash;
    put64 b (pos + 24) t.len;
    if shape_fp <> 0 then put64 b (pos + 40) shape_fp;
    let base = pos + header_bytes_for ~shape_fp in
    let h = ref 0x3bf29ce484222325 in
    for i = 0 to t.len - 1 do
      let w = t.buf.(i) in
      h := ((!h lxor w) * fnv_prime) land max_int;
      put64 b (base + (8 * i)) w
    done;
    put64 b (pos + 32) !h;
    pos + need

  let encode ?canon_hash ?shape_fp t =
    let b = Bytes.create (encoded_bytes ?shape_fp t) in
    ignore (encode_into ?canon_hash ?shape_fp t b ~pos:0);
    b

  (* Checks magic + version and returns the header size of the version
     found (v1: 40, v2: 48). *)
  let check_header b pos =
    if pos < 0 || Bytes.length b - pos < header_bytes then
      Error
        (Truncated
           { expected = header_bytes; got = max 0 (Bytes.length b - pos) })
    else if not (String.equal (Bytes.sub_string b pos 8) magic) then
      Error Bad_magic
    else if get32 b (pos + 12) <> 0 then
      (* The reserved pad word is always written as zero; anything else
         is a corrupted preamble (it is the one header slot no digest
         covers). *)
      Error Bad_magic
    else
      let v = get32 b (pos + 8) in
      if v <> 1 && v <> version then
        Error (Unsupported_version { found = v; expected = version })
      else
        let hdr = if v = 1 then header_bytes else header_bytes_v2 in
        if Bytes.length b - pos < hdr then
          Error (Truncated { expected = hdr; got = Bytes.length b - pos })
        else Ok hdr

  let decode ?(pos = 0) b =
    match check_header b pos with
    | Error e -> Error e
    | Ok hdr ->
        let count = get64 b (pos + 24) in
        let avail = Bytes.length b - pos - hdr in
        if count < 0 || count > avail / 8 then
          Error
            (Truncated
               {
                 expected =
                   (if count < 0 || count > (max_int - hdr) / 8 then max_int
                    else hdr + (8 * count));
                 got = hdr + avail;
               })
        else begin
          let stored = get64 b (pos + 32) in
          let t = create ~capacity:(max 1 count) () in
          let base = pos + hdr in
          let h = ref 0x3bf29ce484222325 in
          let bad = ref (-1) in
          for i = 0 to count - 1 do
            let off = base + (8 * i) in
            let w = get64 b off in
            h := ((!h lxor w) * fnv_prime) land max_int;
            if
              !bad < 0
              && (w land 7 > 6
                 || Char.code (Bytes.unsafe_get b (off + 7)) land 0xc0 <> 0)
            then bad := i;
            t.buf.(i) <- w
          done;
          if !h <> stored then Error Digest_mismatch
          else if !bad >= 0 then Error (Bad_word { index = !bad })
          else begin
            t.len <- count;
            Ok (t, base + (8 * count))
          end
        end

  let canon_hash ?(pos = 0) b =
    match check_header b pos with
    | Error e -> Error e
    | Ok _hdr -> Ok (get64 b (pos + 16))

  let shape_fp ?(pos = 0) b =
    match check_header b pos with
    | Error e -> Error e
    | Ok hdr -> Ok (if hdr = header_bytes then 0 else get64 b (pos + 40))
end

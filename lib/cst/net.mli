(** A live CST instance: topology, per-switch configurations, PE data
    registers and an execution log.

    Schedulers drive a [Net] round by round: they compute a desired
    configuration per switch, install it with {!reconfigure} (which
    logs exactly the transitions made as {!Exec_log} events), then move
    data with {!Data_plane}.  The net owns no counters — power is
    derived from the log with {!Power_meter.of_log}. *)

type t

val create : ?log:Exec_log.t -> Topology.t -> t
(** A fresh net with all switches disconnected.  Pass [?log] to make
    the net append into an existing log (e.g. one log shared by the
    two nets of a mixed-orientation run); otherwise a private log is
    created. *)

val topology : t -> Topology.t

val log : t -> Exec_log.t
(** The log this net appends to.  [Exec_log.length (log t)] before a
    run is the cursor to pass as [~from] when deriving that run's
    power, schedule or digest. *)

val config : t -> int -> Switch_config.t
(** Current configuration of the switch at an internal node. *)

val reconfigure : t -> node:int -> Switch_config.t -> unit
(** Per-round reconfiguration: replaces the switch's configuration,
    logging one event per physical transition ({!Switch_config.diff}
    semantics) and one [Write_config] covering a register {e write} per
    demanded connection — the switch installs its whole round
    configuration because nothing tells it the old one is still
    valid. *)

val reconfigure_lazy : t -> node:int -> want:Switch_config.t -> unit
(** PADR-style update: installs
    [Switch_config.merge_lazy ~prev:(config t node) ~want].  Connections
    not contradicted by [want] persist; only actually-changed outputs
    are logged (both as transitions and as writes). *)

val clear_all : t -> unit
(** Disconnects every switch (logged). *)

val pe_write : t -> pe:int -> int -> unit
(** Loads a PE's output register. *)

val pe_out : t -> pe:int -> int
(** Current value of a PE's output register (0 until written). *)

val pe_read : t -> pe:int -> int option
(** Last value delivered to the PE's input register, if any. *)

val pe_deliver : t -> pe:int -> int -> unit
(** Used by the data plane to latch a delivered value. *)

val reset_registers : t -> unit
val pp : Format.formatter -> t -> unit

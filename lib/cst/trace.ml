type event =
  | Phase1_done of { levels : int }
  | Round_start of int
  | Reconfigured of { round : int; node : int; config : Switch_config.t }
  | Delivered of { round : int; src : int; dst : int }
  | Finished of { rounds : int }

type t = { events : event list; length : int }

(* The trace is a pure view: replay the log, narrating one
   [Reconfigured] per switch that physically changed in a round (with
   the configuration in force afterwards) and one [Delivered] per
   delivery.  [Write_config] events carry no transition, so they do not
   produce narration — exactly the behaviour of the old inline
   tracing, which only spoke up when a diff was non-empty. *)
let of_log ?(from = 0) ?upto log =
  let upto =
    match upto with
    | Some u -> min u (Exec_log.length log)
    | None -> Exec_log.length log
  in
  let from = max 0 from in
  let live = Hashtbl.create 32 in
  let cfg node =
    Option.value ~default:Switch_config.empty (Hashtbl.find_opt live node)
  in
  let set_driver node out inp =
    let next = Switch_config.with_driver (cfg node) ~output:out ~input:inp in
    if Switch_config.is_empty next then Hashtbl.remove live node
    else Hashtbl.replace live node next
  in
  (* Config state replays from the log's beginning so carry-over on a
     shared net is narrated correctly. *)
  Exec_log.iter ~upto:from log (fun e ->
      match e with
      | Exec_log.Connect { node; out_port; in_port } ->
          set_driver node out_port (Some in_port)
      | Exec_log.Disconnect { node; out_port; in_port = _ } ->
          set_driver node out_port None
      | _ -> ());
  let acc = ref [] in
  let count = ref 0 in
  let emit e =
    acc := e :: !acc;
    incr count
  in
  let round = ref 0 in
  let touched = ref [] in
  let flush_reconfigs () =
    List.iter
      (fun node ->
        emit (Reconfigured { round = !round; node; config = cfg node }))
      (List.sort_uniq compare !touched);
    touched := []
  in
  Exec_log.iter ~from ~upto log (fun e ->
      match e with
      | Exec_log.Phase_done { levels } -> emit (Phase1_done { levels })
      | Exec_log.Round_begin { index } ->
          flush_reconfigs ();
          round := index;
          emit (Round_start index)
      | Exec_log.Connect { node; out_port; in_port } ->
          set_driver node out_port (Some in_port);
          touched := node :: !touched
      | Exec_log.Disconnect { node; out_port; in_port = _ } ->
          set_driver node out_port None;
          touched := node :: !touched
      | Exec_log.Write_config _ -> ()
      | Exec_log.Deliver { src; dst } ->
          flush_reconfigs ();
          emit (Delivered { round = !round; src; dst })
      | Exec_log.Run_end { rounds } ->
          flush_reconfigs ();
          emit (Finished { rounds }));
  flush_reconfigs ();
  { events = List.rev !acc; length = !count }

let events t = t.events
let length t = t.length

let pp_event fmt = function
  | Phase1_done { levels } ->
      Format.fprintf fmt "phase 1 complete (%d switch levels)" levels
  | Round_start r -> Format.fprintf fmt "round %d begins" r
  | Reconfigured { round; node; config } ->
      Format.fprintf fmt "round %d: switch %d set to %a" round node
        Switch_config.pp config
  | Delivered { round; src; dst } ->
      Format.fprintf fmt "round %d: PE %d -> PE %d" round src dst
  | Finished { rounds } -> Format.fprintf fmt "finished in %d rounds" rounds

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  List.iter (fun e -> Format.fprintf fmt "%a@," pp_event e) (events t);
  Format.pp_close_box fmt ()

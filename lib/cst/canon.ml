(* The alignment of a set spanning leaves [lo .. hi] is the smallest
   power of two A with lo/A = hi/A — the side of the smallest aligned
   block containing every endpoint, which is also the leaf span of the
   minimal subtree enclosing the set in any tree of >= A leaves.  The
   block's first leaf (lo/A)*A is the placement base; subtracting it
   from every endpoint yields a translation-invariant signature. *)

type t = { align : int; offsets : (int * int) array; hash : int }
type placed = { canon : t; base : int }

let fnv_prime = 0x100000001b3

let hash_of ~align offsets =
  let h = ref 0x3bf29ce484222325 in
  let mix v = h := (!h lxor v) * fnv_prime land max_int in
  mix align;
  Array.iter
    (fun (s, d) ->
      mix s;
      mix d)
    offsets;
  !h

let place set =
  let comms = Cst_comm.Comm_set.comms set in
  if Array.length comms = 0 then
    { canon = { align = 1; offsets = [||]; hash = hash_of ~align:1 [||] };
      base = 0 }
  else begin
    let lo = ref max_int and hi = ref 0 in
    Array.iter
      (fun c ->
        let l = Cst_comm.Comm.lo c and h = Cst_comm.Comm.hi c in
        if l < !lo then lo := l;
        if h > !hi then hi := h)
      comms;
    let align = ref 1 in
    while !lo / !align <> !hi / !align do
      align := 2 * !align
    done;
    let base = !lo / !align * !align in
    (* [comms] is sorted by source; subtracting a constant preserves
       the order, so the offsets array is canonical as built. *)
    let offsets =
      Array.map
        (fun (c : Cst_comm.Comm.t) -> (c.src - base, c.dst - base))
        comms
    in
    let align = !align in
    { canon = { align; offsets; hash = hash_of ~align offsets }; base }
  end

let equal a b =
  a.hash = b.hash && a.align = b.align && a.offsets = b.offsets

let hash t = t.hash

let hash_with ~shape_fp t =
  (* Binary shapes (fingerprint 0) keep the plain hash, so every
     existing plan-store filename and cache key is unchanged. *)
  if shape_fp = 0 then t.hash
  else (t.hash lxor shape_fp) * fnv_prime land max_int

let align t = t.align
let size t = Array.length t.offsets
let offsets t = Array.copy t.offsets

let of_offsets ~align offsets =
  if align < 1 || align land (align - 1) <> 0 then
    invalid_arg "Canon.of_offsets: align not a power of two";
  let sorted = ref true in
  Array.iteri
    (fun i (s, d) ->
      if s < 0 || s >= align || d < 0 || d >= align || s = d then
        invalid_arg "Canon.of_offsets: offset outside [0, align) or src = dst";
      if i > 0 && fst offsets.(i - 1) > s then sorted := false)
    offsets;
  if not !sorted then
    invalid_arg "Canon.of_offsets: offsets not sorted by source";
  (* Only place-image values are canonical: the empty set pins align to
     1, and a non-empty set must straddle the block midpoint (otherwise
     a half-size block would contain it and [align] is not minimal). *)
  if Array.length offsets = 0 then begin
    if align <> 1 then invalid_arg "Canon.of_offsets: empty set needs align 1"
  end
  else begin
    let lo = ref max_int and hi = ref 0 in
    Array.iter
      (fun (s, d) ->
        lo := min !lo (min s d);
        hi := max !hi (max s d))
      offsets;
    if not (!lo < align / 2 && !hi >= align / 2) then
      invalid_arg "Canon.of_offsets: align not minimal for these offsets"
  end;
  let offsets = Array.copy offsets in
  { align; offsets; hash = hash_of ~align offsets }

let compatible t ~leaves ~base =
  leaves >= t.align
  && leaves land (leaves - 1) = 0
  && base >= 0
  && base mod t.align = 0
  && base + t.align <= leaves

let pp fmt t =
  Format.fprintf fmt "align=%d comms=%d hash=%016x" t.align
    (Array.length t.offsets) t.hash

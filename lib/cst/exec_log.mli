(** Canonical execution log.

    Every scheduler run appends its behaviour — switch transitions,
    register writes, round boundaries and deliveries — as a flat
    sequence of typed events.  The log is the single source of truth:
    {!Schedule.of_log} (rounds, deliveries, config snapshots),
    {!Power_meter.of_log} (the entire power ledger), {!Trace.of_log}
    (pretty-printed narration) and the service digest are all pure
    derivations of it.

    {b Storage.} One event packs into one 63-bit native int in a
    growable arena: appends are an array store plus a bounds check, and
    a log of [n] events occupies [8n] bytes.  Positions ([length]) act
    as cursors: a producer records [length log] before a run and
    derives its views with [~from], so several runs — or several phases
    on a shared long-lived net — can share one log.

    {b Event grammar} (per run):
    [Phase_done? (Round_begin (Connect|Disconnect|Write_config)* Deliver* )* Run_end]

    Config-state replay always starts from the log's beginning, so
    snapshots taken for a suffix run still see connections carried over
    from earlier runs on the same net. *)

type event =
  | Phase_done of { levels : int }
      (** Phase 1 of the CSA (leader election / matching) completed. *)
  | Round_begin of { index : int }  (** 1-based round index. *)
  | Connect of { node : int; out_port : Side.t; in_port : Side.t }
      (** Output [out_port] of switch [node] acquired driver [in_port].
          A driver {e change} is a single [Connect] (paper §2.3). *)
  | Disconnect of { node : int; out_port : Side.t; in_port : Side.t }
      (** Output [out_port] lost its driver [in_port]. *)
  | Write_config of { node : int; count : int }
      (** [count] configuration-register installations at [node] —
          what eager per-round scheduling pays O(w) for. *)
  | Deliver of { src : int; dst : int }  (** PE-to-PE data delivery. *)
  | Run_end of { rounds : int }

type t

val create : ?capacity:int -> unit -> t
(** Empty log; the arena grows by doubling from [capacity] (default
    256 events). *)

val length : t -> int
(** Number of events appended so far — also the cursor for [?from]. *)

val bytes_used : t -> int
(** [8 * length t]: live arena bytes holding events. *)

val clear : t -> unit

(** {1 Appending} *)

val phase_done : t -> levels:int -> unit
val round_begin : t -> index:int -> unit
val connect : t -> node:int -> out_port:Side.t -> in_port:Side.t -> unit
val disconnect : t -> node:int -> out_port:Side.t -> in_port:Side.t -> unit
val write_config : t -> node:int -> count:int -> unit
val deliver : t -> src:int -> dst:int -> unit
val run_end : t -> rounds:int -> unit

val append : t -> event -> unit
(** Generic append; the named functions above avoid the allocation. *)

(** {1 Reading} *)

val event : t -> int -> event
(** Decode the event at a position.  Raises [Invalid_argument] outside
    [0 .. length - 1]. *)

val iter : ?from:int -> ?upto:int -> t -> (event -> unit) -> unit
val fold : ?from:int -> ?upto:int -> t -> init:'a -> f:('a -> event -> 'a) -> 'a

val sub : t -> from:int -> t
(** Fresh log holding the events at positions [from ..]. *)

val rebase :
  ?in_place:bool ->
  t ->
  src_leaves:int ->
  src_base:int ->
  dst_leaves:int ->
  dst_base:int ->
  align:int ->
  t
(** Relocates a compiled run in O(events) without re-scheduling.  The
    log must come from scheduling a set confined to the aligned leaf
    block [[src_base, src_base + align)] of a [src_leaves]-leaf tree
    (such a run never touches a switch outside the block's subtree nor
    a PE outside the block); the result is the event-for-event
    relabeling of the run onto the congruent block
    [[dst_base, dst_base + align)] of a [dst_leaves]-leaf tree: switch
    ids are remapped through the subtree isomorphism
    [v -> v + (dst_root - src_root) * 2^depth_below_root], PEs shift by
    [dst_base - src_base], and [Phase_done] is rewritten to the target
    tree's level count.  Replaying the result is byte-identical (same
    {!digest}) to scheduling the translated set from scratch.
    Raises [Invalid_argument] if the geometry is inconsistent (sizes
    not powers of two, bases not aligned multiples inside their trees)
    or if any event falls outside the declared block.

    [~in_place:true] rewrites [t]'s own arena and returns [t] instead
    of allocating a copy — for logs the caller owns exclusively (the
    segment-parallel engine rebases each private per-block log exactly
    once).  If the geometry check raises partway through, an in-place
    log is left partially rewritten. *)

val merge : ?into:t -> levels:int -> t list -> t
(** Interleaves complete single-run logs round-by-round into one log
    equivalent to a sequential run of their union.  Each input must
    follow the single-run grammar
    [Phase_done (Round_begin Config* Deliver* )* Run_end] with
    consecutive round indices from 1 and a [Phase_done] level count
    equal to [levels] — i.e. the inputs have already been {!rebase}d
    into one common tree.  The result (appended to [into] when given,
    else fresh) carries one [Phase_done {levels}], then for every round
    [r] up to the maximum round count one [Round_begin] followed by
    each input's round-[r] config events and then each input's round-[r]
    deliveries (input order both times), then one [Run_end].

    When the inputs are the per-block runs of a well-nested set's
    {e independent} top-level blocks, listed in ascending block order,
    the merged log is byte-identical (same {!digest}, same
    {!fold_rounds} views, same {!driver_alternations}) to the log of
    the sequential sparse engine on the whole set: block subtrees are
    link-disjoint, Phase 1 reports zero counts above every block root,
    and the sequential engine emits each round's deliveries in
    ascending source order — exactly the block concatenation.

    Raises [Invalid_argument] on a log that is not a complete
    single-run or whose level count differs from [levels]. *)

(** {1 Round-structured replay} *)

type round_view = {
  index : int;  (** as logged by [Round_begin] *)
  changed : (int * Switch_config.t) list;
      (** switches reconfigured this round, ascending node id, with the
          configuration in force after the round's transitions *)
  live : (int * Switch_config.t) list;
      (** all non-empty configurations at the end of the round,
          ascending node id; [[]] when [snapshots:false] *)
  deliveries : (int * int) list;  (** in emission order *)
}

val fold_rounds :
  ?from:int ->
  ?upto:int ->
  ?snapshots:bool ->
  t ->
  init:'a ->
  f:('a -> round_view -> 'a) ->
  'a
(** Replays the log and folds one {!round_view} per round.  Config
    state is replayed from position 0 regardless of [from] (carry-over
    on shared nets), but only rounds beginning at or after [from] are
    folded.  [snapshots:false] skips the [live] computation. *)

(** {1 Analyses} *)

val digest : ?from:int -> ?upto:int -> t -> string
(** Structural digest (16 hex chars, FNV-1a-style).  Canonical across
    producers: config events between two non-config events are hashed
    as a sorted set, because a round's configuration delta has no
    meaningful order — the spec scheduler emits it in ascending node id
    while the sparse engine emits it in DFS preorder.  Round structure
    and delivery order are hashed as emitted. *)

val driver_alternations : ?from:int -> ?upto:int -> t -> node:int -> int
(** Theorem 8 quantity (Lemmas 6/7): how often the busiest output port
    of switch [node] changes to a {e different} established driver over
    the range.  The first connect of a port is not an alternation, nor
    is a disconnect or a reconnect of the same driver — the count is
    the number of value changes in the port's driver sequence.  Under
    the CSA this is at most 2 on width-controlled families and a small
    width-independent constant on arbitrary sets; under eager
    ID-per-round scheduling it grows linearly with the set width. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** One numbered line per event. *)

(** {1 Binary codec}

    Versioned little-endian serialization of a log, the unit of the
    persistent plan store.  The layout is a fixed header followed by
    the raw event arena, one 8-byte word per event:

    {v
    offset  size  field
         0     8  magic "CSTELOG1"
         8     4  format version (u32 LE): 1 or 2
        12     4  reserved, zero
        16     8  canon hash     (u64 LE, caller-supplied tag; 0 if unused)
        24     8  event count    (u64 LE)
        32     8  arena digest   (u64 LE, FNV-1a over the packed words)
      [ 40     8  shape fingerprint (u64 LE) — version 2 only ]
     40/48 8<i>n</i>  the packed words, little-endian
    v}

    Version 1 (40-byte header) is the historical binary-topology format;
    version 2 appends the topology's {!Shape.fingerprint}.  {!Codec.encode}
    picks the version from the fingerprint it is given: fingerprint 0 —
    every binary shape — emits version 1, so classic files remain
    byte-identical; non-binary logs emit version 2.  {!Codec.decode}
    accepts both, and version-1 input reads back with fingerprint 0.

    Encode and decode are O(events) straight word blits with no
    per-event allocation.  Decode trusts nothing: it verifies the
    magic, the version, the declared length against the available
    bytes, the stored FNV-1a digest against the words actually read,
    and finally each word's tag — any failure is a typed
    {!Codec.error}, never an exception or a corrupt in-memory log. *)
module Codec : sig
  type error =
    | Truncated of { expected : int; got : int }
        (** fewer bytes than the header (or its declared count) demands *)
    | Bad_magic
        (** wrong magic string, or a corrupted reserved preamble slot *)
    | Unsupported_version of { found : int; expected : int }
    | Digest_mismatch
        (** the arena does not hash to the header's stored digest — a
            flipped or lost byte in the event words *)
    | Bad_word of { index : int }
        (** a word with an invalid tag or sign bit that nevertheless
            digests correctly — a crafted, not corrupted, payload *)

  val pp_error : Format.formatter -> error -> unit

  val version : int
  (** Newest format version (2); {!encode} still emits version 1 for
      fingerprint-0 logs. *)

  val header_bytes : int
  (** Version-1 header size: 40. *)

  val header_bytes_v2 : int
  (** Version-2 header size: 48. *)

  val encoded_bytes : ?shape_fp:int -> t -> int
  (** Header size for the version [shape_fp] (default 0) selects, plus
      [8 * length t]. *)

  val encode : ?canon_hash:int -> ?shape_fp:int -> t -> bytes
  (** Fresh buffer holding header + arena.  [canon_hash] (default 0)
      is stored verbatim in the header — the plan codec uses it to bind
      a log to its structural signature.  [shape_fp] (default 0) is the
      topology's {!Shape.fingerprint}; a non-zero value selects the
      version-2 header. *)

  val encode_into : ?canon_hash:int -> ?shape_fp:int -> t -> bytes -> pos:int -> int
  (** Writes the encoding at [pos] and returns the position one past
      it.  Raises [Invalid_argument] if the buffer is too small. *)

  val decode : ?pos:int -> bytes -> (t * int, error) result
  (** Decodes an encoding starting at [pos] (default 0); returns the
      fresh log and the position one past the bytes consumed.
      Trailing bytes after the declared arena are left unread. *)

  val canon_hash : ?pos:int -> bytes -> (int, error) result
  (** Reads the header's canon-hash field without decoding the arena
      (magic, version and header length still checked). *)

  val shape_fp : ?pos:int -> bytes -> (int, error) result
  (** Reads the header's shape fingerprint without decoding the arena;
      0 for version-1 input. *)
end

type t = {
  topo : Topology.t;
  configs : Switch_config.t array; (* indexed by internal node id *)
  log : Exec_log.t;
  out_regs : int array; (* PE output registers *)
  in_regs : int option array; (* PE input registers *)
}

let create ?log topo =
  let leaves = Topology.leaves topo in
  let log = match log with Some l -> l | None -> Exec_log.create () in
  {
    topo;
    configs = Array.make leaves Switch_config.empty;
    log;
    out_regs = Array.make leaves 0;
    in_regs = Array.make leaves None;
  }

let topology t = t.topo
let log t = t.log

let check_internal t node =
  if not (Topology.is_internal t.topo node) then
    invalid_arg (Printf.sprintf "Net: node %d is not a switch" node)

let config t node =
  check_internal t node;
  t.configs.(node)

(* Log one event per output whose driver actually changes.  A driver
   change from one input to another is a single [Connect] and no
   [Disconnect] — the same convention as [Switch_config.diff]. *)
let emit_transitions t ~node ~old_config ~new_config =
  List.iter
    (fun o ->
      match
        (Switch_config.driver old_config o, Switch_config.driver new_config o)
      with
      | None, None -> ()
      | Some a, Some b when Side.equal a b -> ()
      | _, Some b -> Exec_log.connect t.log ~node ~out_port:o ~in_port:b
      | Some a, None -> Exec_log.disconnect t.log ~node ~out_port:o ~in_port:a)
    Side.all

let reconfigure t ~node cfg =
  check_internal t node;
  emit_transitions t ~node ~old_config:t.configs.(node) ~new_config:cfg;
  (* A per-round reconfiguration installs every connection it demands:
     the switch has no way to know its register still holds the value. *)
  let writes = Switch_config.connection_count cfg in
  if writes > 0 then Exec_log.write_config t.log ~node ~count:writes;
  t.configs.(node) <- cfg

let reconfigure_lazy t ~node ~want =
  check_internal t node;
  let next = Switch_config.merge_lazy ~prev:t.configs.(node) ~want in
  let delta =
    Switch_config.diff ~old_config:t.configs.(node) ~new_config:next
  in
  emit_transitions t ~node ~old_config:t.configs.(node) ~new_config:next;
  (* The PADR switch only touches outputs whose driver actually changes. *)
  if delta.connects > 0 then
    Exec_log.write_config t.log ~node ~count:delta.connects;
  t.configs.(node) <- next

let clear_all t =
  for node = 1 to Topology.leaves t.topo - 1 do
    reconfigure t ~node Switch_config.empty
  done

let check_pe t pe =
  if pe < 0 || pe >= Topology.leaves t.topo then
    invalid_arg (Printf.sprintf "Net: bad PE %d" pe)

let pe_write t ~pe v =
  check_pe t pe;
  t.out_regs.(pe) <- v

let pe_out t ~pe =
  check_pe t pe;
  t.out_regs.(pe)

let pe_read t ~pe =
  check_pe t pe;
  t.in_regs.(pe)

let pe_deliver t ~pe v =
  check_pe t pe;
  t.in_regs.(pe) <- Some v

let reset_registers t =
  Array.fill t.out_regs 0 (Array.length t.out_regs) 0;
  Array.fill t.in_regs 0 (Array.length t.in_regs) None

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@," Topology.pp t.topo;
  for node = 1 to Topology.leaves t.topo - 1 do
    if not (Switch_config.is_empty t.configs.(node)) then
      Format.fprintf fmt "switch %d: %a@," node Switch_config.pp
        t.configs.(node)
  done;
  Format.fprintf fmt "%a@]" Power_meter.pp
    (Power_meter.of_log ~num_nodes:(Topology.num_nodes t.topo) t.log)

(** Tree topology of the CST, driven by a {!Shape} level table.

    Nodes are numbered breadth-first: the root is node 1, each depth
    occupies a contiguous id range, and children appear in order under
    their parent.  On the default binary shape this is exactly the
    classic heap numbering — node [v] has children [2v] (left) and
    [2v+1] (right), leaf [p] (PE number [p], [0 <= p < leaves]) is node
    [leaves + p] — so binary topologies are bit-for-bit identical to
    the historical hard-wired implementation.  Internal nodes are
    [1 .. first_leaf - 1]; they carry the switches.  Every non-root
    node has one link to its parent whose capacity the shape fixes. *)

type t

val create : leaves:int -> t
(** Complete binary tree; [leaves] must be a power of two, at least 2. *)

val of_shape : Shape.t -> t
(** Topology over an arbitrary validated level table. *)

val shape : t -> Shape.t

val is_binary : t -> bool
(** True iff the shape is the unit-capacity complete binary tree — the
    guard for every [_u] fast path and the binary engines. *)

val leaves : t -> int

val levels : t -> int
(** Number of switch levels; a leaf-to-leaf path traverses at most
    [2*levels - 1] switches. *)

val num_nodes : t -> int
(** Nodes are numbered [1 .. num_nodes]; [2*leaves - 1] on binary. *)

val root : int
(** Node 1. *)

val first_leaf : t -> int
(** Id of leaf 0 ([= leaves t] on binary). *)

val is_leaf : t -> int -> bool
val is_internal : t -> int -> bool
val node_of_pe : t -> int -> int
val pe_of_node : t -> int -> int

val parent : t -> int -> int
(** Requires a non-root node. *)

val fanout_of : t -> int -> int
(** Children of an internal node (0 for a leaf). *)

val child : t -> int -> int -> int
(** [child t v j] is the [j]-th child of internal node [v],
    [0 <= j < fanout_of t v]. *)

val left : t -> int -> int
(** [child t v 0]; requires an internal node. *)

val right : t -> int -> int
(** [child t v 1]; requires an internal node (every shape has fanout
    [>= 2]). *)

val child_index : t -> int -> int
(** Position of a non-root node among its parent's children. *)

val child_side : t -> int -> Side.t
(** Which child of its parent a non-root node is ([L] or [R]).  Only
    meaningful when the parent's fanout is 2; raises otherwise. *)

val level : t -> int -> int
(** Leaves are level 0; the root is level [levels]. *)

val uplink_cap : t -> int -> int
(** Capacity of the link from a non-root node to its parent (1
    everywhere on binary). *)

(** {2 Hot-path accessors}

    The [_u] accessors skip node validation (and, for
    [level_u]/[depth_u], read a precomputed depth table).  They are
    meant for the engines' inner loops; callers must guarantee
    [1 <= v <= num_nodes t] (and internality where children are taken).
    [left_u]/[right_u]/[parent_u] additionally assume a {e binary}
    topology — they are plain heap arithmetic and are wrong on any
    other shape; guard call sites with {!is_binary}. *)

val left_u : int -> int
(** [2*v], unchecked, binary only. *)

val right_u : int -> int
(** [2*v + 1], unchecked, binary only. *)

val parent_u : int -> int
(** [v/2], unchecked, binary only. *)

val depth_u : t -> int -> int
(** Depth of node [v] (table lookup): root 0, leaves [levels]. *)

val level_u : t -> int -> int
(** [levels t - depth_u t v], unchecked table lookup. *)

val nodes_at_level : t -> int -> int array
(** All nodes of a level in increasing id order; level [levels t] is
    [[|root|]], level 0 the leaves.  The returned array is the topology's
    own bucket — callers must not mutate it. *)

val lca : t -> int -> int -> int

val interval : t -> int -> int * int
(** Leaf interval [\[lo, hi)] covered by a node; a leaf covers
    [\[p, p+1)]. *)

val mid : t -> int -> int
(** First leaf past an internal node's first child's subtree: the
    left/right split point on fanout 2. *)

val mirror_node : t -> int -> int
(** The node covering the left-right reflected interval: if [v] covers
    [\[lo, hi)], [mirror_node t v] covers [\[leaves-hi, leaves-lo)].  An
    involution fixing the root; maps first children to last children.
    Used to report per-switch power of a mirrored (left-oriented) schedule
    in original coordinates. *)

val parent_table : t -> int array
(** Fresh array [pt] with [pt.(v) = parent t v] for every non-root node
    ([pt.(0)], [pt.(1)] are 0).  Plain-array bridge for modules below
    [cst] in the dependency order (e.g. [Cst_comm.Width]). *)

val cap_table : t -> int array
(** Fresh array [ct] with [ct.(v) = uplink_cap t v] for every non-root
    node ([ct.(0)], [ct.(1)] are 0). *)

val path_to_root : t -> int -> int list
(** Node followed by its ancestors up to the root. *)

val internal_nodes : t -> int Seq.t
(** All internal nodes, in increasing (breadth-first) order. *)

val iter_internal_bottom_up : t -> (int -> unit) -> unit
(** Visits every internal node after all of its children — the order of
    the paper's Phase 1 control flow. *)

val pp : Format.formatter -> t -> unit

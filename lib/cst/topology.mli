(** Complete-binary-tree topology of the CST.

    Heap indexing: the root is node 1; node [v] has children [2v] (left)
    and [2v+1] (right); leaf [p] (PE number [p], [0 <= p < leaves]) is node
    [leaves + p].  Internal nodes are [1 .. leaves-1]; they carry the
    3-sided switches.  Every non-root node has one full-duplex link to its
    parent. *)

type t

val create : leaves:int -> t
(** [leaves] must be a power of two, at least 2. *)

val leaves : t -> int
val levels : t -> int
(** [ilog2 leaves]: number of switch levels; a leaf-to-leaf path traverses
    at most [2*levels - 1] switches. *)

val num_nodes : t -> int
(** [2*leaves - 1] (nodes are numbered [1 .. num_nodes]). *)

val root : int
(** Node 1. *)

val is_leaf : t -> int -> bool
val is_internal : t -> int -> bool
val node_of_pe : t -> int -> int
val pe_of_node : t -> int -> int
val parent : t -> int -> int
(** Requires a non-root node. *)

val left : t -> int -> int
val right : t -> int -> int
(** Require an internal node. *)

val child_side : t -> int -> Side.t
(** Which child of its parent a non-root node is ([L] or [R]). *)

val level : t -> int -> int
(** Leaves are level 0; the root is level [levels]. *)

(** {2 Hot-path accessors}

    The [_u] accessors skip node validation (and, for [level_u]/[depth_u],
    read a precomputed depth table instead of re-deriving [ilog2]).  They
    are meant for the engines' inner loops; callers must guarantee
    [1 <= v <= num_nodes t] (and internality where children are taken) or
    the result is meaningless. *)

val left_u : int -> int
(** [2*v], unchecked. *)

val right_u : int -> int
(** [2*v + 1], unchecked. *)

val parent_u : int -> int
(** [v/2], unchecked. *)

val depth_u : t -> int -> int
(** Depth of node [v] ([ilog2 v], table lookup): root 0, leaves [levels]. *)

val level_u : t -> int -> int
(** [levels t - depth_u t v], unchecked table lookup. *)

val nodes_at_level : t -> int -> int array
(** All nodes of a level in increasing id order; level [levels t] is
    [[|root|]], level 0 the leaves.  The returned array is the topology's
    own bucket — callers must not mutate it. *)

val lca : t -> int -> int -> int
val interval : t -> int -> int * int
(** Leaf interval [\[lo, hi)] covered by a node; a leaf covers
    [\[p, p+1)]. *)

val mid : t -> int -> int
(** Split point of an internal node's interval: first leaf of its right
    child's subtree. *)

val mirror_node : t -> int -> int
(** The node covering the left-right reflected interval: if [v] covers
    [\[lo, hi)], [mirror_node t v] covers [\[leaves-hi, leaves-lo)].  An
    involution fixing the root; maps left children to right children.
    Used to report per-switch power of a mirrored (left-oriented) schedule
    in original coordinates. *)

val path_to_root : t -> int -> int list
(** Node followed by its ancestors up to the root. *)

val internal_nodes : t -> int Seq.t
(** All internal nodes, in increasing (breadth-first) order. *)

val iter_internal_bottom_up : t -> (int -> unit) -> unit
(** Visits every internal node after both of its children — the order of
    the paper's Phase 1 control flow. *)

val pp : Format.formatter -> t -> unit

(* The ledger is a pure derivation of the execution log: [of_log] is
   the only place in the codebase where power units are charged. *)

type t = {
  connects : int array;
  disconnects : int array;
  writes : int array;
}

let of_log ?from ?upto ~num_nodes log =
  let t =
    {
      connects = Array.make (num_nodes + 1) 0;
      disconnects = Array.make (num_nodes + 1) 0;
      writes = Array.make (num_nodes + 1) 0;
    }
  in
  Exec_log.iter ?from ?upto log (fun e ->
      match e with
      | Exec_log.Connect { node; _ } ->
          t.connects.(node) <- t.connects.(node) + 1
      | Exec_log.Disconnect { node; _ } ->
          t.disconnects.(node) <- t.disconnects.(node) + 1
      | Exec_log.Write_config { node; count } ->
          t.writes.(node) <- t.writes.(node) + count
      | Exec_log.Phase_done _ | Exec_log.Round_begin _ | Exec_log.Deliver _
      | Exec_log.Run_end _ ->
          ());
  t

let connects t ~node = t.connects.(node)
let disconnects t ~node = t.disconnects.(node)
let writes t ~node = t.writes.(node)

let sum a = Array.fold_left ( + ) 0 a
let total_connects t = sum t.connects
let total_disconnects t = sum t.disconnects
let total_writes t = sum t.writes

let max_of a = Array.fold_left max 0 a
let max_connects_per_switch t = max_of t.connects
let max_writes_per_switch t = max_of t.writes

let max_events_per_switch t =
  let m = ref 0 in
  Array.iteri (fun i c -> m := max !m (c + t.disconnects.(i))) t.connects;
  !m

let per_switch_connects t = Array.copy t.connects
let per_switch_writes t = Array.copy t.writes
let per_switch_disconnects t = Array.copy t.disconnects

let pp fmt t =
  Format.fprintf fmt
    "power: %d connects (%d disconnects, %d writes), max per switch %d \
     connects / %d writes"
    (total_connects t) (total_disconnects t) (total_writes t)
    (max_connects_per_switch t) (max_writes_per_switch t)

type phase_result = {
  label : string;
  comms : int;
  width : int;
  waves : int;
  rounds : int;
  cycles : int;
  connects : int;
  writes : int;
}

type result = {
  scheduler : string;
  phases : phase_result list;
  rounds : int;
  cycles : int;
  power : Padr.Schedule.power;
}

let finish ~scheduler ~power phases =
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 phases in
  {
    scheduler;
    phases;
    rounds = sum (fun p -> p.rounds);
    cycles = sum (fun p -> p.cycles);
    power;
  }

let run_padr (trace : Traffic.t) =
  let topo = Cst.Topology.create ~leaves:trace.leaves in
  let net_right = Cst.Net.create topo in
  let net_left = Cst.Net.create topo in
  let phases =
    List.map
      (fun (p : Traffic.phase) ->
        let right, left = Cst_comm.Decompose.split p.set in
        (* Log cursors delimit this phase's share of the shared nets'
           histories. *)
        let from_r = Cst.Exec_log.length (Cst.Net.log net_right) in
        let from_l = Cst.Exec_log.length (Cst.Net.log net_left) in
        let run net layers =
          List.fold_left
            (fun (w, r, c) layer ->
              let s = Padr.Csa.run_exn ~keep_configs:false ~net topo layer in
              (w + 1, r + Padr.Schedule.num_rounds s, c + s.cycles))
            (0, 0, 0) layers
        in
        let w1, r1, c1 = run net_right (Cst_comm.Wn_cover.layers right) in
        let w2, r2, c2 =
          run net_left (Cst_comm.Wn_cover.layers (Cst_comm.Mirror.set left))
        in
        let delta net from =
          Cst.Power_meter.of_log ~from
            ~num_nodes:(Cst.Topology.num_nodes topo)
            (Cst.Net.log net)
        in
        let dr = delta net_right from_r
        and dl = delta net_left from_l in
        {
          label = p.label;
          comms = Cst_comm.Comm_set.size p.set;
          width = Cst_comm.Width.width ~leaves:trace.leaves p.set;
          waves = w1 + w2;
          rounds = r1 + r2;
          cycles = c1 + c2;
          connects =
            Cst.Power_meter.total_connects dr
            + Cst.Power_meter.total_connects dl;
          writes =
            Cst.Power_meter.total_writes dr + Cst.Power_meter.total_writes dl;
        })
      trace.phases
  in
  let whole net =
    Padr.Schedule.power_of_meter
      (Cst.Power_meter.of_log
         ~num_nodes:(Cst.Topology.num_nodes topo)
         (Cst.Net.log net))
  in
  let power =
    Padr.Schedule.combine_power (whole net_right)
      (Padr.Schedule.mirror_power topo (whole net_left))
  in
  finish ~scheduler:"padr" ~power phases

let run_baseline ?domains (algo : Cst_baselines.Registry.algo)
    (trace : Traffic.t) =
  (* Thin client of the batch service: one job per phase, sharded across
     the domain pool; outcomes come back ordered by phase index. *)
  let jobs =
    List.mapi
      (fun i (p : Traffic.phase) ->
        Cst_service.Service.job ~leaves:trace.leaves ~id:i ~algo:algo.name
          p.set)
      trace.phases
  in
  let outcomes = Cst_service.Service.run ?domains jobs in
  let topo = Cst.Topology.create ~leaves:trace.leaves in
  let power =
    ref (Padr.Schedule.zero_power ~num_nodes:(Cst.Topology.num_nodes topo))
  in
  let phases =
    List.map2
      (fun (p : Traffic.phase) (o : Cst_service.Service.outcome) ->
        match o.result with
        | Error e ->
            invalid_arg
              (Format.asprintf "Runner.run_baseline: phase %s: %a" p.label
                 Cst_service.Service.pp_error e)
        | Ok r ->
            power := Padr.Schedule.combine_power !power r.power;
            {
              label = p.label;
              comms = Cst_comm.Comm_set.size p.set;
              width = r.width;
              waves = r.waves;
              rounds = r.rounds;
              cycles = r.cycles;
              connects = r.power.total_connects;
              writes = r.power.total_writes;
            })
      trace.phases outcomes
  in
  finish ~scheduler:algo.name ~power:!power phases

let compare_all ?domains ?algos trace =
  let algos =
    match algos with
    | Some l -> l
    | None ->
        List.filter
          (fun (a : Cst_baselines.Registry.algo) -> a.name <> "csa")
          Cst_baselines.Registry.all
  in
  ("padr", run_padr trace)
  :: List.map
       (fun (a : Cst_baselines.Registry.algo) ->
         (a.name, run_baseline ?domains a trace))
       algos

let energy_ratio a b =
  float_of_int a.power.total_writes /. float_of_int (max 1 b.power.total_writes)

(** Traffic traces: sequences of communication phases over one CST.

    A {e phase} models one communication step of an application (one
    well-nested set, or any valid set for the wave-based runner).  Traces
    drive {!Runner} to study energy and latency over time, the NoC-style
    usage the paper's introduction cites. *)

type phase = { label : string; set : Cst_comm.Comm_set.t }
type t = { leaves : int; phases : phase list }

type error =
  | Leaves_not_power_of_two of int
  | Phase_overflow of { label : string; n : int; leaves : int }
      (** a phase's set spans more PEs than the trace's tree has leaves *)

val pp_error : Format.formatter -> error -> unit

val make : leaves:int -> phase list -> (t, error) result
(** Validates that [leaves] is a power of two and that every phase fits. *)

val make_exn : leaves:int -> phase list -> t
(** Like {!make} but raises [Invalid_argument] with a diagnostic. *)

val length : t -> int

val total_comms : t -> int

val random_well_nested :
  Cst_util.Prng.t ->
  leaves:int ->
  phases:int ->
  ?density_lo:float ->
  ?density_hi:float ->
  unit ->
  t
(** Independent uniform well-nested phases with densities drawn uniformly
    from [[density_lo, density_hi]] (defaults 0.2 and 1.0). *)

val from_suite :
  Cst_util.Prng.t -> leaves:int -> rounds:int -> t
(** Cycles [rounds] times through every named workload of
    {!Cst_workloads.Suite} — a heterogeneous stress trace. *)

val pp : Format.formatter -> t -> unit

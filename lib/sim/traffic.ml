type phase = { label : string; set : Cst_comm.Comm_set.t }
type t = { leaves : int; phases : phase list }

type error =
  | Leaves_not_power_of_two of int
  | Phase_overflow of { label : string; n : int; leaves : int }

let pp_error fmt = function
  | Leaves_not_power_of_two leaves ->
      Format.fprintf fmt "trace needs a power-of-two leaf count, got %d"
        leaves
  | Phase_overflow { label; n; leaves } ->
      Format.fprintf fmt "phase %S spans %d PEs, more than the %d leaves"
        label n leaves

let make ~leaves phases =
  if not (Cst_util.Bits.is_power_of_two leaves) then
    Error (Leaves_not_power_of_two leaves)
  else
    let rec check = function
      | [] -> Ok { leaves; phases }
      | p :: rest ->
          let n = Cst_comm.Comm_set.n p.set in
          if n > leaves then
            Error (Phase_overflow { label = p.label; n; leaves })
          else check rest
    in
    check phases

let make_exn ~leaves phases =
  match make ~leaves phases with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Traffic.make: %a" pp_error e)

let length t = List.length t.phases

let total_comms t =
  List.fold_left
    (fun acc p -> acc + Cst_comm.Comm_set.size p.set)
    0 t.phases

let random_well_nested rng ~leaves ~phases ?(density_lo = 0.2)
    ?(density_hi = 1.0) () =
  if density_lo < 0.0 || density_hi > 1.0 || density_lo > density_hi then
    invalid_arg "Traffic.random_well_nested: bad density range";
  make_exn ~leaves
    (List.init phases (fun i ->
         let density =
           density_lo +. Cst_util.Prng.float rng (density_hi -. density_lo)
         in
         {
           label = Printf.sprintf "phase-%d" (i + 1);
           set = Cst_workloads.Gen_wn.uniform rng ~n:leaves ~density;
         }))

let from_suite rng ~leaves ~rounds =
  make_exn ~leaves
    (List.concat
       (List.init rounds (fun r ->
            List.map
              (fun (g : Cst_workloads.Suite.gen) ->
                {
                  label = Printf.sprintf "%s#%d" g.name (r + 1);
                  set = g.make rng ~n:leaves;
                })
              Cst_workloads.Suite.all)))

let pp fmt t =
  Format.fprintf fmt "trace: %d phases, %d communications over %d PEs"
    (length t) (total_comms t) t.leaves

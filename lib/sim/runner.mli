(** Executing a traffic trace and accounting energy/latency over time.

    The PADR runner keeps one pair of live networks for the whole trace
    (right-oriented and mirrored-left), so switch configurations persist
    across phases exactly as the technique intends; arbitrary phases are
    covered by well-nested waves.  Baseline runners execute each phase
    with a registry scheduler on a cold network (per-round ID scheduling
    has no carry-over to exploit anyway). *)

type phase_result = {
  label : string;
  comms : int;
  width : int;
  waves : int;
  rounds : int;
  cycles : int;
  connects : int;  (** physical transitions in this phase *)
  writes : int;  (** register installations in this phase *)
}

type result = {
  scheduler : string;
  phases : phase_result list;
  rounds : int;
  cycles : int;
  power : Padr.Schedule.power;  (** whole-trace combined ledger *)
}

val run_padr : Traffic.t -> result
(** The CSA with cross-phase carry-over; accepts any valid phases.  Runs
    in-process: the live carried-over networks make phases inherently
    sequential, so there is nothing for a domain pool to shard. *)

val run_baseline :
  ?domains:int -> Cst_baselines.Registry.algo -> Traffic.t -> result
(** Cold per-phase execution as a {!Cst_service.Service} batch — one job
    per phase, sharded over [domains] workers (service default when
    omitted).  Phases the algorithm cannot handle (see the registry
    capability record) raise [Invalid_argument] with the service's typed
    error rendered. *)

val compare_all :
  ?domains:int ->
  ?algos:Cst_baselines.Registry.algo list ->
  Traffic.t ->
  (string * result) list
(** [run_padr] plus each baseline, in registry order.  The default
    baseline list excludes the CSA entry (it duplicates [run_padr] minus
    carry-over across phases). *)

val energy_ratio : result -> result -> float
(** [energy_ratio a b]: total writes of [a] over total writes of [b]. *)

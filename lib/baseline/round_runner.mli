(** Shared execution harness for round-partition schedulers.

    Every baseline in this library reduces to "partition the set into
    compatible per-round batches, then drive the network round by round".
    The runner turns such a partition into a {!Padr.Schedule.t}: it derives
    each round's switch configurations from the communications' tree paths,
    installs them (the network logs power events exactly as for the CSA),
    moves the data through the physical data plane, and derives the
    schedule from the execution log.

    Baselines reconfigure {e per round from scratch} — a switch's desired
    configuration is exactly what the round's batch needs.  Transitions are
    still charged via {!Cst.Switch_config.diff}, so a connection that
    happens to be identical in consecutive rounds costs nothing; the O(w)
    configuration changes of ID-based scheduling arise from the batches
    actually demanding different connections, not from naive accounting. *)

val config_for_batch :
  Cst.Topology.t -> Cst_comm.Comm.t list -> Cst.Switch_config.t array
(** Per-internal-node configurations realizing a compatible batch of
    right-oriented communications.  Raises [Invalid_argument] if the batch
    is not compatible (conflicting connection demands). *)

val run :
  name:string ->
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Cst_comm.Comm.t list list ->
  Padr.Schedule.t
(** [run ~name topo set batches] executes the batches in order, emitting
    the run into [?log] (or a private log) and deriving the returned
    schedule from it ({!Padr.Schedule.of_log}).  Checks that the batches
    partition [set]. *)

(** Greedy maximal-batch scheduling.

    Repeatedly sweeps the remaining communications left to right, packing
    each into the current round unless it conflicts with one already
    packed.  Round counts are at least the width and usually close to it;
    like every per-round scheduler it pays O(w) configuration changes at
    busy switches.  Serves as a second comparator showing that round
    optimality alone does not give power optimality. *)

val run :
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Padr.Schedule.t
(** Requires a right-oriented set. *)

val batches : Cst.Topology.t -> Cst_comm.Comm_set.t -> Cst_comm.Comm.t list list
(** The batch partition; exposed for tests. *)

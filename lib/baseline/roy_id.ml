let assign_ids topo set =
  let comms = Array.to_list (Cst_comm.Comm_set.comms set) in
  (* Innermost first: shorter spans cannot enclose longer ones. *)
  let order =
    List.sort
      (fun a b ->
        match Int.compare (Cst_comm.Comm.span a) (Cst_comm.Comm.span b) with
        | 0 -> Cst_comm.Comm.compare a b
        | c -> c)
      comms
  in
  let assigned = ref [] in
  List.iter
    (fun c ->
      let taken =
        List.filter_map
          (fun (c', id) ->
            if Cst.Compat.conflict topo c c' then Some id else None)
          !assigned
      in
      let rec mex i = if List.mem i taken then mex (i + 1) else i in
      assigned := (c, mex 0) :: !assigned)
    order;
  List.rev !assigned

let num_ids topo set =
  List.fold_left (fun acc (_, id) -> max acc (id + 1)) 0 (assign_ids topo set)

let run ?log topo set =
  let ids = assign_ids topo set in
  let max_id = List.fold_left (fun acc (_, id) -> max acc id) (-1) ids in
  let batches =
    List.init (max_id + 1) (fun r ->
        List.filter_map (fun (c, id) -> if id = r then Some c else None) ids)
  in
  Round_runner.run ~name:"roy-id" ?log topo set batches

(** Nesting-depth scheduling — the "obvious" ID assignment.

    Round [r] performs every communication at nesting depth [r].
    Same-depth members of a well-nested set never nest and never cross,
    hence are disjoint and compatible, so the partition is always valid.
    The round count is the {e maximum nesting depth}, which can exceed the
    width (e.g. [{(0,7),(2,3)}] has depth 2 but width 1): depth-ID
    scheduling is correct but not round-optimal, a useful contrast to the
    width-exact CSA (the distinction Section 4 of the paper relies on). *)

val run :
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Padr.Schedule.t
(** Requires a right-oriented {e well-nested} set (raises
    [Invalid_argument] otherwise — depth is undefined for crossing
    sets). *)

val rounds_needed : Cst_comm.Comm_set.t -> int
(** Max nesting depth; what [run] will use. *)

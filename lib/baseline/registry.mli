(** Name-indexed registry of every scheduler in the repository, for the
    CLI, the benchmark harness and the batch service.

    Each entry carries a {!capability} record describing what the
    scheduler can do, so dispatchers (the service, [cstool sweep],
    [bench/main.exe]) select algorithms by capability instead of by
    hard-coded name lists. *)

type support = [ `Well_nested | `Arbitrary ]
(** Input domain of {!algo.run} over right-oriented sets:
    [`Well_nested] requires a non-crossing set, [`Arbitrary] accepts any
    right-oriented set (crossing pairs allowed).  No registry scheduler
    accepts left-oriented members directly; the service covers those by
    orientation decomposition when {!capability.via_waves} is set. *)

type capability = {
  supports : support;
  via_waves : bool;
      (** the service may cover crossing or mixed-orientation sets with
          this algorithm's decisions by running one CSA wave per
          well-nested layer ({!Padr.Waves}); true only for the CSA *)
  engine_available : bool;
      (** a message-passing engine ({!Padr.Engine}) executes the same
          decisions; true only for the CSA *)
  round_optimal : bool;
      (** guarantees exactly-width rounds on well-nested input *)
  power_optimal : bool;  (** guarantees O(1) configuration changes *)
  shape_generic : bool;
      (** [run] dispatches through the shape-aware schedulers
          ({!Padr.Csa}/{!Padr.Engine}) and accepts any {!Cst.Shape} —
          the baselines hard-code left/right binary arithmetic and run
          only on binary topologies; true only for the CSA *)
}

type algo = {
  name : string;
  description : string;
  caps : capability;
  run :
    ?log:Cst.Exec_log.t ->
    Cst.Topology.t ->
    Cst_comm.Comm_set.t ->
    Padr.Schedule.t;
}

val csa : algo
val eager_csa : algo
val roy_id : algo
val depth : algo
val greedy : algo
val naive : algo

val all : algo list
(** In presentation order, CSA first. *)

val find : string -> algo option
val names : string list

val capable :
  ?supports:support -> ?engine:bool -> ?power_optimal:bool -> unit -> algo list
(** Capability-filtered view of {!all}, preserving order.  [supports]
    keeps algorithms accepting at least that domain ([`Arbitrary] asks
    for crossing-tolerant ones); [engine] filters on
    {!capability.engine_available}; [power_optimal] on the O(1)
    configuration guarantee.  No filter means no constraint. *)

(** One communication per round — the trivial correct scheduler.

    M rounds for M communications and per-switch reconfiguration on nearly
    every round it participates in; the floor every other algorithm should
    beat. *)

val run :
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Padr.Schedule.t

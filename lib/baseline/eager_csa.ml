let run ?log topo set = Padr.Csa.run_exn ~eager_clear:true ?log topo set

let config_for_batch topo batch =
  let leaves = Cst.Topology.leaves topo in
  let wants = Array.make leaves Cst.Switch_config.empty in
  let connect node ~output ~input =
    try wants.(node) <- Cst.Switch_config.set wants.(node) ~output ~input
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf
           "Round_runner.config_for_batch: conflicting demands at switch %d"
           node)
  in
  List.iter
    (fun (c : Cst_comm.Comm.t) ->
      if not (Cst_comm.Comm.is_right_oriented c) then
        invalid_arg "Round_runner.config_for_batch: left-oriented member";
      let s_leaf = Cst.Topology.node_of_pe topo c.src in
      let d_leaf = Cst.Topology.node_of_pe topo c.dst in
      let lca = Cst.Topology.lca topo s_leaf d_leaf in
      (* Upward legs: every switch strictly between the source leaf and the
         LCA forwards its child input to the parent output. *)
      let rec up node =
        let p = Cst.Topology.parent topo node in
        if p <> lca then begin
          connect p ~output:Cst.Side.P ~input:(Cst.Topology.child_side topo node);
          up p
        end
        else node
      in
      let rec down node =
        let p = Cst.Topology.parent topo node in
        if p <> lca then begin
          connect p
            ~output:(Cst.Topology.child_side topo node)
            ~input:Cst.Side.P;
          down p
        end
        else node
      in
      let s_child = up s_leaf and d_child = down d_leaf in
      (* At the LCA the source-side child input turns toward the
         destination-side child output. *)
      connect lca
        ~output:(Cst.Topology.child_side topo d_child)
        ~input:(Cst.Topology.child_side topo s_child))
    batch;
  wants

(* Per-run workspace for the batch loop: wants are computed only for the
   switches on the batch's tree paths (tracked in a dirty list stamped per
   batch), so a round costs O(paths * depth) instead of O(n) even though
   the per-round scheduler still installs its configuration eagerly. *)
type workspace = {
  wants : Cst.Switch_config.t array;  (* indexed by internal node id *)
  stamp : int array;  (* batch number that last touched the slot *)
  mutable dirty : int list;  (* this batch's touched switches *)
  mutable prev_dirty : int list;  (* last batch's, to clear eagerly *)
}

let run ~name:_ ?log topo set batches =
  let leaves = Cst.Topology.leaves topo in
  let scheduled =
    List.sort Cst_comm.Comm.compare (List.concat batches)
  in
  let members =
    List.sort Cst_comm.Comm.compare
      (Array.to_list (Cst_comm.Comm_set.comms set))
  in
  if not (List.equal Cst_comm.Comm.equal scheduled members) then
    invalid_arg "Round_runner.run: batches do not partition the set";
  let net = Cst.Net.create ?log topo in
  let log = Cst.Net.log net in
  let from = Cst.Exec_log.length log in
  let ws =
    {
      wants = Array.make leaves Cst.Switch_config.empty;
      stamp = Array.make leaves 0;
      dirty = [];
      prev_dirty = [];
    }
  in
  List.iteri
    (fun i batch ->
        let batch_no = i + 1 in
        Cst.Exec_log.round_begin log ~index:batch_no;
        let touch node =
          if ws.stamp.(node) <> batch_no then begin
            ws.stamp.(node) <- batch_no;
            ws.wants.(node) <- Cst.Switch_config.empty;
            ws.dirty <- node :: ws.dirty
          end
        in
        let connect node ~output ~input =
          touch node;
          try
            ws.wants.(node) <-
              Cst.Switch_config.set ws.wants.(node) ~output ~input
          with Invalid_argument _ ->
            invalid_arg
              (Printf.sprintf
                 "Round_runner.run: conflicting demands at switch %d" node)
        in
        ws.dirty <- [];
        List.iter
          (fun (c : Cst_comm.Comm.t) ->
            if not (Cst_comm.Comm.is_right_oriented c) then
              invalid_arg "Round_runner.run: left-oriented member";
            let s_leaf = Cst.Topology.node_of_pe topo c.src in
            let d_leaf = Cst.Topology.node_of_pe topo c.dst in
            let lca = Cst.Topology.lca topo s_leaf d_leaf in
            let rec up node =
              let p = Cst.Topology.parent_u node in
              if p <> lca then begin
                connect p ~output:Cst.Side.P
                  ~input:(Cst.Topology.child_side topo node);
                up p
              end
              else node
            in
            let rec down node =
              let p = Cst.Topology.parent_u node in
              if p <> lca then begin
                connect p
                  ~output:(Cst.Topology.child_side topo node)
                  ~input:Cst.Side.P;
                down p
              end
              else node
            in
            let s_child = up s_leaf and d_child = down d_leaf in
            connect lca
              ~output:(Cst.Topology.child_side topo d_child)
              ~input:(Cst.Topology.child_side topo s_child))
          batch;
        (* Eager per-round installation, but only where it can matter:
           switches demanded this round, plus last round's switches not
           demanded again (reconfiguring them to empty is what charges
           their disconnects — exactly what the full scan used to do;
           everywhere else empty -> empty is a no-op). *)
        List.iter
          (fun node -> Cst.Net.reconfigure net ~node ws.wants.(node))
          ws.dirty;
        List.iter
          (fun node ->
            if ws.stamp.(node) <> batch_no then
              Cst.Net.reconfigure net ~node Cst.Switch_config.empty)
          ws.prev_dirty;
        ws.prev_dirty <- ws.dirty;
        let sources =
          List.sort compare (List.map (fun (c : Cst_comm.Comm.t) -> c.src) batch)
        in
        List.iter (fun pe -> Cst.Net.pe_write net ~pe pe) sources;
        let deliveries = Cst.Data_plane.transfer net ~sources in
        List.iter
          (fun (src, dst) -> Cst.Exec_log.deliver log ~src ~dst)
          deliveries;
        assert (List.length deliveries = List.length batch))
    batches;
  let levels = Cst.Topology.levels topo in
  let num_rounds = List.length batches in
  Cst.Exec_log.run_end log ~rounds:num_rounds;
  Padr.Schedule.of_log ~from ~set ~topo
    ~cycles:(levels + (num_rounds * (levels + 1)))
    log

(** Ablation: the CSA's round decisions with eager reconfiguration.

    Identical round structure and deliveries to {!Padr}, but each switch is
    reconfigured every round to exactly the connections that round needs —
    connections no longer demanded are torn down immediately instead of
    persisting (no PADR carry-over).  Contrasting its power ledger against
    the lazy CSA isolates how much of the power saving comes from the
    carry-over discipline versus from the outermost-first selection. *)

val run :
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Padr.Schedule.t
(** Raises [Invalid_argument] on invalid input (see {!Padr.schedule}). *)

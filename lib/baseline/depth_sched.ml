let forest set =
  match Cst_comm.Well_nested.check set with
  | Ok f -> f
  | Error v ->
      invalid_arg
        (Format.asprintf "Depth_sched: %a" Cst_comm.Well_nested.pp_violation v)

let rounds_needed set = Cst_comm.Nest_forest.max_depth (forest set)

let run ?log topo set =
  let f = forest set in
  let comms = Cst_comm.Comm_set.comms set in
  let depth_count = Cst_comm.Nest_forest.max_depth f in
  let batches = Array.make (max 1 depth_count) [] in
  Array.iteri
    (fun i c ->
      let d = Cst_comm.Nest_forest.depth f i - 1 in
      batches.(d) <- c :: batches.(d))
    comms;
  let batches =
    Array.to_list batches |> List.map List.rev
    |> List.filter (fun b -> b <> [])
  in
  Round_runner.run ~name:"depth" ?log topo set batches

let run ?log topo set =
  let batches =
    List.map (fun c -> [ c ]) (Array.to_list (Cst_comm.Comm_set.comms set))
  in
  Round_runner.run ~name:"naive" ?log topo set batches

type support = [ `Well_nested | `Arbitrary ]

type capability = {
  supports : support;
  via_waves : bool;
  engine_available : bool;
  round_optimal : bool;
  power_optimal : bool;
  shape_generic : bool;
}

type algo = {
  name : string;
  description : string;
  caps : capability;
  run :
    ?log:Cst.Exec_log.t ->
    Cst.Topology.t ->
    Cst_comm.Comm_set.t ->
    Padr.Schedule.t;
}

let well_nested_only =
  {
    supports = `Well_nested;
    via_waves = false;
    engine_available = false;
    round_optimal = false;
    power_optimal = false;
    shape_generic = false;
  }

let csa =
  {
    name = "csa";
    description = "the paper's power-aware CSA (lazy reconfiguration)";
    caps =
      {
        supports = `Well_nested;
        via_waves = true;
        engine_available = true;
        round_optimal = true;
        power_optimal = true;
        shape_generic = true;
      };
    run = (fun ?log topo set -> Padr.Csa.run_exn ?log topo set);
  }

let eager_csa =
  {
    name = "eager-csa";
    description = "CSA round decisions with eager per-round reconfiguration";
    caps = { well_nested_only with round_optimal = true };
    run = Eager_csa.run;
  }

let roy_id =
  {
    name = "roy-id";
    description = "ID-based rounds (Roy-Vaidyanathan-Trahan style)";
    caps = well_nested_only;
    run = Roy_id.run;
  }

let depth =
  {
    name = "depth";
    description = "one round per nesting depth (correct, not round-optimal)";
    caps = well_nested_only;
    run = Depth_sched.run;
  }

let greedy =
  {
    name = "greedy";
    description = "greedy maximal compatible batches";
    caps = { well_nested_only with supports = `Arbitrary };
    run = Greedy.run;
  }

let naive =
  {
    name = "naive";
    description = "one communication per round";
    caps = { well_nested_only with supports = `Arbitrary };
    run = Naive.run;
  }

let all = [ csa; eager_csa; roy_id; depth; greedy; naive ]
let find name = List.find_opt (fun a -> a.name = name) all
let names = List.map (fun a -> a.name) all

let capable ?supports ?engine ?power_optimal () =
  List.filter
    (fun a ->
      (match supports with
      | None -> true
      | Some `Well_nested -> true
      | Some `Arbitrary -> a.caps.supports = `Arbitrary)
      && (match engine with
         | None -> true
         | Some e -> a.caps.engine_available = e)
      && match power_optimal with
         | None -> true
         | Some p -> a.caps.power_optimal = p)
    all

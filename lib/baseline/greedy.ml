let batches topo set =
  let rec rounds remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let batch, rest =
          List.fold_left
            (fun (batch, rest) c ->
              if List.exists (Cst.Compat.conflict topo c) batch then
                (batch, c :: rest)
              else (c :: batch, rest))
            ([], []) remaining
        in
        rounds (List.rev rest) (List.rev batch :: acc)
  in
  rounds (Array.to_list (Cst_comm.Comm_set.comms set)) []

let run ?log topo set =
  Round_runner.run ~name:"greedy" ?log topo set (batches topo set)

(** ID-based scheduling in the style of Roy, Vaidyanathan and Trahan,
    "Routing Multiple Width Communications on the Circuit Switched Tree"
    (IJFCS 17(2), 2006) — the comparator of the paper's Theorem 8
    discussion.

    Each communication receives an integer ID such that equal IDs never
    conflict; round [r] then performs every communication with ID [r].
    IDs are assigned greedily, innermost communication first, as the
    smallest ID not used by any conflicting already-processed
    communication; for well-nested sets this yields Θ(w) rounds (w = set
    width).  Because consecutive rounds serve unrelated batches, a busy
    switch is reconfigured on almost every round: O(w) configuration
    changes — the behaviour the CSA improves to O(1). *)

val assign_ids : Cst.Topology.t -> Cst_comm.Comm_set.t -> (Cst_comm.Comm.t * int) list
(** Greedy conflict colouring; IDs start at 0.  Exposed for tests. *)

val num_ids : Cst.Topology.t -> Cst_comm.Comm_set.t -> int

val run :
  ?log:Cst.Exec_log.t ->
  Cst.Topology.t ->
  Cst_comm.Comm_set.t ->
  Padr.Schedule.t
(** Requires a right-oriented set (well-nestedness is not required; any
    conflict structure can be coloured). *)

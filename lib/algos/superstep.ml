type 'a step = {
  label : string;
  pattern : 'a array -> Cst_comm.Comm_set.t;
  absorb : 'a array -> (int * int) list -> 'a array;
}

type 'a program = { name : string; steps : 'a step list }

type stats = {
  supersteps : int;
  waves : int;
  rounds : int;
  cycles : int;
  power : Padr.Schedule.power;
}

let run ?leaves program ~init =
  let n = Array.length init in
  if n < 1 then invalid_arg "Superstep.run: no PEs";
  let leaves =
    match leaves with
    | Some l -> l
    | None -> Cst_util.Bits.ceil_pow2 (max 2 n)
  in
  let topo = Cst.Topology.create ~leaves in
  (* One persistent network per orientation: configurations carry over
     between supersteps exactly as between rounds. *)
  let net_right = Cst.Net.create topo in
  let net_left = Cst.Net.create topo in
  let waves = ref 0 and rounds = ref 0 and cycles = ref 0 in
  let run_layers net layers =
    List.concat_map
      (fun layer ->
        let sched = Padr.Csa.run_exn ~net topo layer in
        incr waves;
        rounds := !rounds + Padr.Schedule.num_rounds sched;
        cycles := !cycles + sched.cycles;
        Padr.Schedule.all_deliveries sched)
      layers
  in
  let states = ref init in
  List.iter
    (fun step ->
      let set = step.pattern !states in
      if Cst_comm.Comm_set.n set <> n then
        invalid_arg
          (Printf.sprintf "Superstep.run: step %S uses %d PEs, program has %d"
             step.label (Cst_comm.Comm_set.n set) n);
      let right, left = Cst_comm.Decompose.split set in
      let right_deliveries =
        run_layers net_right (Cst_comm.Wn_cover.layers right)
      in
      let left_deliveries =
        run_layers net_left
          (Cst_comm.Wn_cover.layers (Cst_comm.Mirror.set left))
        |> List.map (fun (src, dst) ->
               (Cst_comm.Mirror.pe ~n src, Cst_comm.Mirror.pe ~n dst))
      in
      let deliveries = List.sort compare (right_deliveries @ left_deliveries) in
      if deliveries <> Cst_comm.Comm_set.matching set then
        invalid_arg
          (Printf.sprintf "Superstep.run: step %S deliveries diverge"
             step.label);
      states := step.absorb !states deliveries)
    program.steps;
  let whole net =
    Padr.Schedule.power_of_meter
      (Cst.Power_meter.of_log
         ~num_nodes:(Cst.Topology.num_nodes topo)
         (Cst.Net.log net))
  in
  let power =
    Padr.Schedule.combine_power (whole net_right)
      (Padr.Schedule.mirror_power topo (whole net_left))
  in
  ( !states,
    {
      supersteps = List.length program.steps;
      waves = !waves;
      rounds = !rounds;
      cycles = !cycles;
      power;
    } )

type value = Int of int | Float of float | Bool of bool | String of string
type section = { name : string; fields : (string * value) list }
type t = section list

let section name fields = { name; fields }

let throughput ~jobs ~failed ~domains ~elapsed_s =
  let rate = if elapsed_s > 0.0 then float_of_int jobs /. elapsed_s else 0.0 in
  section "service"
    [
      ("jobs", Int jobs);
      ("failed", Int failed);
      ("domains", Int domains);
      ("elapsed_s", Float elapsed_s);
      ("jobs_per_sec", Float rate);
    ]

(* %.17g round-trips any float but is noisy; try shorter forms first,
   like the stdlib's float printers do. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then float_to_string f
      else Printf.sprintf "\"%s\"" (float_to_string f)
  | Bool b -> string_of_bool b
  | String s -> Printf.sprintf "\"%s\"" (escape s)

let fields_to_json fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %s" (escape k)
                             (value_to_json v)))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (escape s.name) (fields_to_json s.fields)))
    t;
  Buffer.add_char b '}';
  Buffer.contents b

let pp_value fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.pp_print_string fmt (float_to_string f)
  | Bool b -> Format.pp_print_bool fmt b
  | String s -> Format.pp_print_string fmt s

let pp_section fmt s =
  Format.fprintf fmt "@[<h>%s:" s.name;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) s.fields;
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_section fmt t

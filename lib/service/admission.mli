(** Admission policies: when does the streaming scheduler commit the
    open epoch?

    An {e epoch} is the batch of queued jobs the scheduler dispatches
    together after one switch reconfiguration ({!Stream}).  Committing
    early minimizes sojourn; holding the epoch open coalesces more jobs
    behind a single reconfiguration.  The δ model of "Costly Circuits,
    Submodular Schedules" (PAPERS.md) prices each reconfiguration at a
    fixed cost δ, which makes the tradeoff quantitative: the classic
    ski-rental argument says to wait exactly until the waiting already
    paid equals the reconfiguration cost a merge would save, then
    commit.

    [decide] is a pure function of the policy, the clock and a
    {!queue_view}, so the decision boundary is unit-testable without a
    pool (test/test_stream.ml). *)

type t =
  | Immediate  (** commit as soon as the epoch is non-empty: every job
                   gets its own epoch; minimal sojourn, maximal
                   reconfiguration power *)
  | Quantum of float
      (** commit once the epoch has been open for this many seconds:
          fixed-cadence batching regardless of queue contents *)
  | Delta_threshold of { delta : float; max_width : int option }
      (** δ-aware ski rental: commit once the accumulated waiting of the
          queued jobs (Σ over queued jobs of now − arrival, in
          job-seconds) reaches [delta] — the epoch's reconfiguration
          cost expressed in waiting units — or, when [max_width] is set,
          as soon as the merged width exceeds it (Theorem 5: rounds =
          width, so a width cap bounds the epoch's service time). *)

type queue_view = {
  jobs : int;  (** queued jobs in the open epoch *)
  opened : float;  (** arrival time of the epoch's oldest job *)
  accumulated_wait : float;
      (** Σ over queued jobs of (now − arrival), in job-seconds *)
  width : int;  (** merged width of the queued sets *)
}
(** What a policy may look at.  All times come from the scheduler's
    clock ({!Stream.create}'s [clock]), so policies are deterministic
    under a manual clock. *)

type decision = Commit | Wait

val decide : t -> now:float -> queue_view -> decision
(** [Wait] whenever [view.jobs = 0]; otherwise the policy's rule above.
    Boundary semantics: [Quantum q] commits when [now -. opened >= q],
    [Delta_threshold] when [accumulated_wait >= delta] (at-threshold
    commits) or [width > max_width] (at-cap waits). *)

val name : t -> string
(** ["immediate"], ["quantum"] or ["delta"] — the bench/CLI family
    name. *)

val to_string : t -> string
(** Round-trips with {!of_string}: ["immediate"], ["quantum:S"],
    ["delta:D"] or ["delta:D:W"]. *)

val of_string : string -> (t, string) result
(** Parses ["immediate"], ["quantum:SECONDS"], ["delta:DELTA"] and
    ["delta:DELTA:MAX_WIDTH"]; [Error] explains the grammar. *)

val pp : Format.formatter -> t -> unit

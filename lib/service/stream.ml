type timing = {
  arrival : float;
  committed : float;
  completed : float;
  epoch : int;
}

(* Per-job bookkeeping between submit and completion.  [i_committed] and
   [i_epoch] are stamped when the job's epoch commits. *)
type info = {
  i_arrival : float;
  mutable i_committed : float;
  mutable i_epoch : int;
}

type pending = { p_job : Service.job; p_subidx : int }

(* The open epoch.  Congestion arrays are node-indexed over the epoch's
   tree (heap-indexed [2 * e_leaves] words on the classic binary shape,
   [num_nodes + 1] on a non-binary one), so all members must target the
   same tree; the merged width is the running maximum of the
   capacity-ceiled elementwise sums — exactly the width of the union
   set on that topology. *)
type epoch_state = {
  e_leaves : int;
  e_shape : Cst.Shape.t option;  (* non-binary topology override *)
  e_caps : int array option;  (* per-node uplink capacities, same case *)
  e_up : int array;
  e_down : int array;
  mutable e_width : int;
  mutable e_members : pending list;  (* reversed *)
  mutable e_jobs : int;
  mutable e_opened : float;
  mutable e_sum_arrivals : float;
  mutable e_intervals : (int * int) list;  (* (base, align) block intervals *)
  mutable e_disjoint : bool;
}

type t = {
  svc : Service.t;
  policy : Admission.t;
  recon_delta : float;
  clock : unit -> float;
  m : Mutex.t;
  done_one : Condition.t;
  mutable epoch : epoch_state option;
  (* job id -> submission indices awaiting completion, FIFO: the pool's
     outcomes carry only the caller-chosen id, which need not be unique *)
  awaiting : (int, int Queue.t) Hashtbl.t;
  info : (int, info) Hashtbl.t;  (* submission index -> envelope *)
  finished : (int, Service.outcome * timing) Hashtbl.t;
  mutable sojourns : float list;  (* seconds, all completed jobs *)
  mutable submitted : int;
  mutable completed : int;
  mutable epochs : int;
  mutable coalesced_jobs : int;
  mutable max_epoch_jobs : int;
  mutable max_epoch_width : int;
  mutable disjoint_epochs : int;
  mutable crossing_jobs : int;
  mutable max_wave_layers : int;
  mutable job_connects : int;
  mutable job_writes : int;
  mutable stopped : bool;
}

(* --- completion (runs on worker domains) --------------------------- *)

let record_completion t (o : Service.outcome) =
  let now = t.clock () in
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.awaiting o.job_id with
  | Some q when not (Queue.is_empty q) ->
      let subidx = Queue.pop q in
      let info = Hashtbl.find t.info subidx in
      Hashtbl.remove t.info subidx;
      Hashtbl.replace t.finished subidx
        ( o,
          {
            arrival = info.i_arrival;
            committed = info.i_committed;
            completed = now;
            epoch = info.i_epoch;
          } );
      t.sojourns <- (now -. info.i_arrival) :: t.sojourns;
      (match o.result with
      | Ok r ->
          let p : Padr.Schedule.power = r.power in
          t.job_connects <- t.job_connects + p.total_connects;
          t.job_writes <- t.job_writes + p.total_writes
      | Error _ -> ())
  | _ -> () (* outcome for a job this stream never admitted *));
  t.completed <- t.completed + 1;
  Condition.broadcast t.done_one;
  Mutex.unlock t.m

let create ?domains ?queue_capacity ?cache ?cache_bytes ?store
    ?(policy = Admission.Immediate) ?(recon_delta = 16.0) ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  (* The pool's [on_outcome] closes over the stream being built. *)
  let cell = ref None in
  let svc =
    Service.create ?domains ?queue_capacity ?cache ?cache_bytes ?store
      ~on_outcome:(fun o ->
        match !cell with Some t -> record_completion t o | None -> ())
      ()
  in
  let t =
    {
      svc;
      policy;
      recon_delta;
      clock;
      m = Mutex.create ();
      done_one = Condition.create ();
      epoch = None;
      awaiting = Hashtbl.create 64;
      info = Hashtbl.create 64;
      finished = Hashtbl.create 64;
      sojourns = [];
      submitted = 0;
      completed = 0;
      epochs = 0;
      coalesced_jobs = 0;
      max_epoch_jobs = 0;
      max_epoch_width = 0;
      disjoint_epochs = 0;
      crossing_jobs = 0;
      max_wave_layers = 0;
      job_connects = 0;
      job_writes = 0;
      stopped = false;
    }
  in
  cell := Some t;
  t

(* --- epoch width / structure math ---------------------------------- *)

(* A job's non-binary topology override, normalized: binary shapes are
   indistinguishable from a plain [leaves] override everywhere in the
   stack, so they take the classic path. *)
let nonbinary_shape (job : Service.job) =
  match job.Service.shape with
  | Some s when not (Cst.Shape.is_binary s) -> Some s
  | _ -> None

(* A job participates in the congestion arrays only when it would run at
   all: a set too large for its tree (or a non-power-of-two override)
   errors out in the pool, so it contributes no width.  [topo] is the
   job's non-binary topology when it has one. *)
let crossings_of ?topo job =
  let set = job.Service.set in
  match topo with
  | Some topo ->
      if Cst_comm.Comm_set.n set <= Cst.Topology.leaves topo then
        Some
          (Cst_comm.Width.crossings_on
             ~parent:(Cst.Topology.parent_table topo)
             ~first_leaf:(Cst.Topology.first_leaf topo)
             set)
      else None
  | None ->
      let leaves = Service.job_leaves job in
      if
        Cst_util.Bits.is_power_of_two leaves
        && Cst_comm.Comm_set.n set <= leaves
      then Some (Cst_comm.Width.crossings ~leaves set)
      else None

(* Per-link uplink capacity: 1 everywhere on the classic shape; slots
   holding 0 in a capacity table (the root and the pseudo-nodes) carry
   no schedulable link and are skipped. *)
let cap_of (e : epoch_state) v =
  match e.e_caps with None -> 1 | Some caps -> caps.(v)

let width_if (e : epoch_state) (cr : Cst_comm.Width.crossings option) =
  match cr with
  | None -> e.e_width
  | Some cr ->
      let m = ref e.e_width in
      let bump merged v c =
        if c > 0 then begin
          let k = cap_of e v in
          if k > 0 then begin
            let w = (merged + c + k - 1) / k in
            if w > !m then m := w
          end
        end
      in
      Array.iteri (fun v c -> bump e.e_up.(v) v c) cr.up;
      Array.iteri (fun v c -> bump e.e_down.(v) v c) cr.down;
      !m

(* Aligned top-level block intervals of a right-oriented well-nested
   set; [None] when the set has no single well-nested plan. *)
let intervals_of set =
  if
    Cst_comm.Comm_set.is_right_oriented set
    && Result.is_ok (Cst_comm.Well_nested.check set)
  then
    Some
      (List.map
         (fun (b : Cst_comm.Decompose.block) -> (b.base, b.align))
         (Cst_comm.Decompose.blocks ~check:false set))
  else None

let overlaps (b1, a1) (b2, a2) = b1 < b2 + a2 && b2 < b1 + a1

let wave_layers set =
  let right, left = Cst_comm.Decompose.split set in
  Cst_comm.Wn_cover.num_layers right
  + Cst_comm.Wn_cover.num_layers (Cst_comm.Mirror.set left)

(* --- commit --------------------------------------------------------- *)

(* Closes the open epoch under the stream lock and returns the member
   jobs in arrival order.  The caller must dispatch them to the pool
   AFTER releasing the lock: [Service.submit] blocks on backpressure,
   and the workers that relieve it need the lock to record
   completions. *)
let commit_locked t now =
  match t.epoch with
  | None -> []
  | Some e ->
      let members = List.rev e.e_members in
      let eid = t.epochs in
      t.epochs <- t.epochs + 1;
      if e.e_jobs >= 2 then begin
        t.coalesced_jobs <- t.coalesced_jobs + e.e_jobs;
        if e.e_disjoint then t.disjoint_epochs <- t.disjoint_epochs + 1
      end;
      if e.e_jobs > t.max_epoch_jobs then t.max_epoch_jobs <- e.e_jobs;
      if e.e_width > t.max_epoch_width then t.max_epoch_width <- e.e_width;
      List.iter
        (fun p ->
          let info = Hashtbl.find t.info p.p_subidx in
          info.i_committed <- now;
          info.i_epoch <- eid)
        members;
      t.epoch <- None;
      List.map (fun p -> p.p_job) members

let dispatch t jobs = List.iter (Service.submit t.svc) jobs

let view (e : epoch_state) ~now : Admission.queue_view =
  {
    jobs = e.e_jobs;
    opened = e.e_opened;
    accumulated_wait = (float_of_int e.e_jobs *. now) -. e.e_sum_arrivals;
    width = e.e_width;
  }

let evaluate_locked t now =
  match t.epoch with
  | None -> []
  | Some e -> (
      match Admission.decide t.policy ~now (view e ~now) with
      | Admission.Commit -> commit_locked t now
      | Admission.Wait -> [])

(* --- driver interface ----------------------------------------------- *)

let submit t (job : Service.job) =
  Mutex.lock t.m;
  if t.stopped then begin
    Mutex.unlock t.m;
    invalid_arg "Stream: submit after shutdown"
  end;
  let now = t.clock () in
  let leaves = Service.job_leaves job in
  let shape = nonbinary_shape job in
  let topo_nb = Option.map Cst.Topology.of_shape shape in
  let cr = crossings_of ?topo:topo_nb job in
  let to_dispatch = ref [] in
  let commit () = to_dispatch := commit_locked t now :: !to_dispatch in
  (* Epoch boundaries the structure forces, before the policy speaks:
     a different tree size or topology shape cannot share congestion
     arrays, and a width-capped policy flushes rather than let the
     merge exceed the cap. *)
  (match t.epoch with
  | Some e
    when e.e_leaves <> leaves
         || not (Option.equal Cst.Shape.equal e.e_shape shape) ->
      commit ()
  | _ -> ());
  (match (t.policy, t.epoch) with
  | Admission.Delta_threshold { max_width = Some w; _ }, Some e
    when e.e_jobs > 0 && width_if e cr > w ->
      commit ()
  | _ -> ());
  let e =
    match t.epoch with
    | Some e -> e
    | None ->
        let nodes =
          match shape with
          | Some s -> Cst.Shape.num_nodes s + 1
          | None -> 2 * leaves
        in
        let e =
          {
            e_leaves = leaves;
            e_shape = shape;
            e_caps = Option.map Cst.Topology.cap_table topo_nb;
            e_up = Array.make nodes 0;
            e_down = Array.make nodes 0;
            e_width = 0;
            e_members = [];
            e_jobs = 0;
            e_opened = now;
            e_sum_arrivals = 0.0;
            e_intervals = [];
            e_disjoint = true;
          }
        in
        t.epoch <- Some e;
        e
  in
  let subidx = t.submitted in
  t.submitted <- subidx + 1;
  Hashtbl.replace t.info subidx
    { i_arrival = now; i_committed = now; i_epoch = -1 };
  let q =
    match Hashtbl.find_opt t.awaiting job.id with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.awaiting job.id q;
        q
  in
  Queue.push subidx q;
  e.e_members <- { p_job = job; p_subidx = subidx } :: e.e_members;
  e.e_jobs <- e.e_jobs + 1;
  e.e_sum_arrivals <- e.e_sum_arrivals +. now;
  (match cr with
  | Some cr ->
      Array.iteri (fun v c -> e.e_up.(v) <- e.e_up.(v) + c) cr.up;
      Array.iteri (fun v c -> e.e_down.(v) <- e.e_down.(v) + c) cr.down;
      let m = ref e.e_width in
      let bump v total =
        if total > 0 then begin
          let k = cap_of e v in
          if k > 0 then begin
            let w = (total + k - 1) / k in
            if w > !m then m := w
          end
        end
      in
      Array.iteri bump e.e_up;
      Array.iteri bump e.e_down;
      e.e_width <- !m
  | None -> ());
  (match intervals_of job.set with
  | Some ivs ->
      if List.exists (fun i -> List.exists (overlaps i) e.e_intervals) ivs
      then e.e_disjoint <- false
      else e.e_intervals <- ivs @ e.e_intervals
  | None ->
      e.e_disjoint <- false;
      t.crossing_jobs <- t.crossing_jobs + 1;
      let layers = wave_layers job.set in
      if layers > t.max_wave_layers then t.max_wave_layers <- layers);
  to_dispatch := evaluate_locked t now :: !to_dispatch;
  let jobs = List.concat (List.rev !to_dispatch) in
  Mutex.unlock t.m;
  dispatch t jobs

let tick t =
  Mutex.lock t.m;
  let jobs = if t.stopped then [] else evaluate_locked t (t.clock ()) in
  Mutex.unlock t.m;
  dispatch t jobs

let flush t =
  Mutex.lock t.m;
  let jobs = if t.stopped then [] else commit_locked t (t.clock ()) in
  Mutex.unlock t.m;
  dispatch t jobs

let drain t =
  flush t;
  Mutex.lock t.m;
  while t.completed < t.submitted do
    Condition.wait t.done_one t.m
  done;
  let collected =
    Hashtbl.fold (fun idx v acc -> (idx, v) :: acc) t.finished []
  in
  Hashtbl.reset t.finished;
  Mutex.unlock t.m;
  List.sort
    (fun (i1, ((o1 : Service.outcome), _)) (i2, ((o2 : Service.outcome), _)) ->
      match Int.compare o1.job_id o2.job_id with
      | 0 -> Int.compare i1 i2
      | c -> c)
    collected
  |> List.map snd

let shutdown t =
  flush t;
  Mutex.lock t.m;
  t.stopped <- true;
  Mutex.unlock t.m;
  Service.shutdown t.svc

(* --- stats ----------------------------------------------------------- *)

type stats = {
  submitted : int;
  completed : int;
  epochs : int;
  coalesced_jobs : int;
  max_epoch_jobs : int;
  max_epoch_width : int;
  disjoint_epochs : int;
  crossing_jobs : int;
  max_wave_layers : int;
  recon_delta : float;
  recon_power : float;
  job_connects : int;
  job_writes : int;
  sojourn_p50 : float;
  sojourn_p99 : float;
}

let stats t =
  Mutex.lock t.m;
  let sojourns = Array.of_list t.sojourns in
  let pct p =
    if Array.length sojourns = 0 then 0.0
    else Cst_util.Stats.percentile sojourns p
  in
  let s =
    {
      submitted = t.submitted;
      completed = t.completed;
      epochs = t.epochs;
      coalesced_jobs = t.coalesced_jobs;
      max_epoch_jobs = t.max_epoch_jobs;
      max_epoch_width = t.max_epoch_width;
      disjoint_epochs = t.disjoint_epochs;
      crossing_jobs = t.crossing_jobs;
      max_wave_layers = t.max_wave_layers;
      recon_delta = t.recon_delta;
      recon_power = t.recon_delta *. float_of_int t.epochs;
      job_connects = t.job_connects;
      job_writes = t.job_writes;
      sojourn_p50 = pct 50.0;
      sojourn_p99 = pct 99.0;
    }
  in
  Mutex.unlock t.m;
  s

let total_power s =
  float_of_int (s.job_connects + s.job_writes) +. s.recon_power

let sections t =
  let s = stats t in
  Stats.section "stream"
    [
      ("submitted", Stats.Int s.submitted);
      ("completed", Stats.Int s.completed);
      ("epochs", Stats.Int s.epochs);
      ("coalesced_jobs", Stats.Int s.coalesced_jobs);
      ("max_epoch_jobs", Stats.Int s.max_epoch_jobs);
      ("max_epoch_width", Stats.Int s.max_epoch_width);
      ("disjoint_epochs", Stats.Int s.disjoint_epochs);
      ("crossing_jobs", Stats.Int s.crossing_jobs);
      ("max_wave_layers", Stats.Int s.max_wave_layers);
      ("recon_delta", Stats.Float s.recon_delta);
      ("recon_power", Stats.Float s.recon_power);
      ("job_connects", Stats.Int s.job_connects);
      ("job_writes", Stats.Int s.job_writes);
      ("total_power", Stats.Float (total_power s));
      ("sojourn_p50_ms", Stats.Float (1000.0 *. s.sojourn_p50));
      ("sojourn_p99_ms", Stats.Float (1000.0 *. s.sojourn_p99));
    ]
  ::
  (match Service.cache_stats t.svc with
  | Some cs -> Plan_cache.sections cs
  | None -> [])

let cache_stats t = Service.cache_stats t.svc
let domains t = Service.domains t.svc

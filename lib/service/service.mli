(** Multicore batch-scheduling service.

    Every entry point of the repository used to schedule one communication
    set at a time on one core, each behind a slightly different API and
    error convention.  This module is the single front door: a {!job}
    names a set, a registry algorithm and an execution engine; the service
    shards submitted jobs across a pool of OCaml 5 domains (a hand-rolled
    [Domain] + [Mutex]/[Condition] work queue, no dependencies) and
    returns id-ordered {!outcome}s carrying a schedule digest, the round
    and cycle counts and the full power ledger.

    {2 Determinism}

    Scheduling a job is a pure function of the job alone — no scheduler in
    the repository consults global mutable state — so the outcome list is
    a function of the submitted jobs only, never of the domain count or of
    completion order: [run ~domains:1 jobs] and [run ~domains:8 jobs] are
    byte-identical under {!outcome_to_string} (property-tested).

    {2 Dispatch}

    The service dispatches through {!Cst_baselines.Registry} capability
    records instead of ad-hoc name matches:
    - a right-oriented well-nested set runs the algorithm directly;
    - a crossing set runs directly when the algorithm [supports
      `Arbitrary], is covered by CSA waves when [via_waves] is set, and is
      otherwise rejected with the typed well-nestedness violation;
    - a mixed-orientation set requires [via_waves] ({!Padr.Waves}
      decomposes by orientation);
    - [Message_passing] requires [engine_available] ({!Padr.Engine}).

    {2 Plan cache}

    Well-nested runs are memoized in a pool-wide byte-bounded LRU
    ({!Plan_cache}) keyed by the set's structural signature
    ({!Cst.Canon}), the algorithm and the tree size.  A job congruent to
    an earlier one — same shape, possibly translated along the leaves —
    replays the frozen plan ({!Padr.Plan.replay}) instead of
    re-scheduling; replay is byte-identical to a fresh run (same log
    digest, same power totals, same rounds), so cached outcomes are
    indistinguishable from uncached ones under {!outcome_to_string}.
    The [cache] field of {!job_result} tells which path served the job;
    it is deliberately excluded from the canonical serialization because
    hit/miss patterns race across domain counts.  Disable with
    [~cache:false] on {!create}/{!run}.

    Passing [~store] (a {!Plan_store} directory handle) attaches a
    persistent disk tier below the memory cache: evictions spill to
    disk, misses fault from it, and {!shutdown} flushes the resident
    working set — a pool reopened against the same directory replays
    where a fresh one recompiles (the cold-start experiment in
    EXPERIMENTS.md).  Correctness is unchanged: every fault-in is
    digest-verified by the codec, and a corrupt or missing file is just
    a miss.

    {2 Fault isolation}

    A failing job — unknown algorithm, capability mismatch, scheduler
    error, even an exception escaping a scheduler — produces an [Error]
    outcome on its own job id.  Workers never die and the queue is never
    poisoned. *)

type engine = Spec | Message_passing | Segmented
(** [Spec]: the functional scheduler ([Registry.algo.run]).
    [Message_passing]: the mailbox-level engine ({!Padr.Engine}), which
    additionally reports control-message statistics.
    [Segmented]: the segment-parallel engine path
    ({!Padr.Par_engine}) — the set's independent top-level blocks are
    scheduled separately (each consulting the plan cache under its own
    signature) and their logs merged; outcomes are byte-identical to
    [Message_passing]'s, with [blocks]/[block_hits] reporting the
    decomposition. *)

type job = {
  id : int;  (** caller-chosen; outcomes are ordered by it *)
  set : Cst_comm.Comm_set.t;
  algo : string;  (** registry name, e.g. ["csa"] *)
  engine : engine;
  leaves : int option;
      (** CST size override; default: smallest adequate power of two *)
}

val job : ?engine:engine -> ?leaves:int -> id:int -> algo:string ->
  Cst_comm.Comm_set.t -> job
(** Convenience constructor; [engine] defaults to [Spec]. *)

type error =
  | Unknown_algo of string
  | Unsupported of { algo : string; what : string }
      (** capability mismatch, e.g. a message-passing request for an
          algorithm without an engine, or left-oriented members for one
          that cannot be wave-covered *)
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }
  | Crashed of string
      (** an exception escaped a scheduler; the pool survives and the
          exception text is attached to the offending job's id *)

val error_of_csa : Padr.error -> error
(** Embeds the scheduler's error type ({!Padr.Csa.error}). *)

val pp_error : Format.formatter -> error -> unit

type detail =
  | Sched of Padr.Schedule.t  (** single well-nested schedule *)
  | Waves of Padr.Waves.t  (** wave cover of a crossing or mixed set *)

type cache_status =
  | Hit  (** served by replaying a cached plan *)
  | Miss  (** scheduled fresh; the plan was frozen into the cache *)
  | Bypass
      (** cache disabled, or the path is not cacheable (waves, crossing
          sets, errors) *)

type job_result = {
  algo : string;
  digest : string;
      (** structural digest of the execution log
          ({!Cst.Exec_log.digest}) — equal digests mean the hardware did
          the same thing, event for event *)
  width : int;
  waves : int;  (** 1 for a direct schedule *)
  rounds : int;
  cycles : int;
  control_messages : int;  (** engine jobs only; 0 under [Spec] *)
  power : Padr.Schedule.power;  (** full ledger, per-switch arrays included *)
  cache : cache_status;
      (** which path served this job; excluded from
          {!outcome_to_string} (hit/miss patterns race across domain
          counts).  For [Segmented] jobs: [Hit] when every block
          replayed from the cache, [Miss] otherwise. *)
  blocks : int;
      (** [Segmented] jobs: number of independent top-level blocks the
          set decomposed into; 0 on every other path *)
  block_hits : int;
      (** [Segmented] jobs: how many of those blocks were served by
          replaying a cached plan; excluded from {!outcome_to_string}
          like [cache] *)
  detail : detail;
}

type outcome = { job_id : int; result : (job_result, error) result }

val run_job :
  ?cache:Plan_cache.t * int -> job -> (job_result, error) result
(** The per-job function every worker runs; exposed for direct
    (in-process, single-core) clients and for tests.  [cache] is the
    shared plan cache paired with the calling worker's counter index;
    omitted, every job bypasses the cache. *)

val outcome_to_string : outcome -> string
(** Canonical one-line serialization (digest, counts, power totals) used
    for byte-identical determinism comparison; excludes [detail]. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Batch API} *)

val run :
  ?domains:int ->
  ?queue_capacity:int ->
  ?cache:bool ->
  ?cache_bytes:int ->
  ?store:Plan_store.t ->
  job list ->
  outcome list
(** Runs the batch on [domains] worker domains (default
    [Domain.recommended_domain_count ()], min 1) and returns one outcome
    per job, sorted by job id (ties by submission order).  Blocks until
    every job completes.  [queue_capacity] bounds the submission channel
    (default 64): submission applies backpressure instead of queueing
    unboundedly.  [cache] (default [true]) enables the pool-wide plan
    cache, bounded by [cache_bytes] of frozen events (default 32 MiB);
    [store] attaches its persistent disk tier (flushed before
    returning) and is ignored with [~cache:false]. *)

(** {2 Streaming API}

    [create] spawns the pool; {!submit} enqueues (blocking when the
    bounded channel is full); {!drain} waits for everything submitted
    since the last drain and returns those outcomes id-ordered;
    {!shutdown} closes the queue and joins the domains.  One submitter
    and one drainer at a time; workers are internal. *)

type t

val create :
  ?domains:int -> ?queue_capacity:int -> ?cache:bool -> ?cache_bytes:int ->
  ?store:Plan_store.t -> unit -> t

val domains : t -> int

val cache_stats : t -> Plan_cache.stats option
(** Aggregate and per-domain hit/miss/eviction counters of the pool's
    plan cache, including the disk tier's counters when a store is
    attached; [None] when the pool was created with [~cache:false].
    Safe to call while jobs are in flight. *)

val submit : t -> job -> unit
(** Blocks while the submission channel is full (backpressure).  Raises
    [Invalid_argument] after {!shutdown}. *)

val drain : t -> outcome list
(** Waits for all jobs submitted since the last [drain], returns their
    outcomes sorted by job id (ties by submission order).  The service
    remains usable afterwards. *)

val shutdown : t -> unit
(** Closes the submission channel, lets workers finish queued jobs and
    joins them.  Idempotent. *)

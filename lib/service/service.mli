(** Multicore batch-scheduling service.

    Every entry point of the repository used to schedule one communication
    set at a time on one core, each behind a slightly different API and
    error convention.  This module is the single front door: a {!job}
    names a set, a registry algorithm and an execution engine; the service
    shards submitted jobs across a pool of OCaml 5 domains (a hand-rolled
    [Domain] + [Mutex]/[Condition] work queue, no dependencies) and
    returns id-ordered {!outcome}s carrying a schedule digest, the round
    and cycle counts and the full power ledger.

    {2 Determinism}

    Scheduling a job is a pure function of the job alone — no scheduler in
    the repository consults global mutable state — so the outcome list is
    a function of the submitted jobs only, never of the domain count or of
    completion order: [run ~domains:1 jobs] and [run ~domains:8 jobs] are
    byte-identical under {!outcome_to_string} (property-tested).

    {2 Dispatch}

    The service dispatches through {!Cst_baselines.Registry} capability
    records instead of ad-hoc name matches:
    - a right-oriented well-nested set runs the algorithm directly;
    - a crossing set runs directly when the algorithm [supports
      `Arbitrary], is covered by CSA waves when [via_waves] is set, and is
      otherwise rejected with the typed well-nestedness violation;
    - a mixed-orientation set requires [via_waves] ({!Padr.Waves}
      decomposes by orientation);
    - [Message_passing] requires [engine_available] ({!Padr.Engine}).

    {2 Plan cache}

    Well-nested runs are memoized in a pool-wide byte-bounded LRU
    ({!Plan_cache}) keyed by the set's structural signature
    ({!Cst.Canon}), the algorithm and the tree size.  A job congruent to
    an earlier one — same shape, possibly translated along the leaves —
    replays the frozen plan ({!Padr.Plan.replay}) instead of
    re-scheduling; replay is byte-identical to a fresh run (same log
    digest, same power totals, same rounds), so cached outcomes are
    indistinguishable from uncached ones under {!outcome_to_string}.
    The [cache] field of {!job_result} tells which path served the job;
    it is deliberately excluded from the canonical serialization because
    hit/miss patterns race across domain counts.  Disable with
    [~cache:false] on {!create}/{!run}.

    Passing [~store] (a {!Plan_store} directory handle) attaches a
    persistent disk tier below the memory cache: evictions spill to
    disk, misses fault from it, and {!shutdown} flushes the resident
    working set — a pool reopened against the same directory replays
    where a fresh one recompiles (the cold-start experiment in
    EXPERIMENTS.md).  Correctness is unchanged: every fault-in is
    digest-verified by the codec, and a corrupt or missing file is just
    a miss.

    {2 Fault isolation}

    A failing job — unknown algorithm, capability mismatch, scheduler
    error, even an exception escaping a scheduler — produces an [Error]
    outcome on its own job id.  Workers never die and the queue is never
    poisoned. *)

type engine = Spec | Message_passing | Segmented
(** [Spec]: the functional scheduler ([Registry.algo.run]).
    [Message_passing]: the mailbox-level engine ({!Padr.Engine}), which
    additionally reports control-message statistics.
    [Segmented]: the segment-parallel engine path
    ({!Padr.Par_engine}) — the set's independent top-level blocks are
    scheduled separately (each consulting the plan cache under its own
    signature) and their logs merged; outcomes are byte-identical to
    [Message_passing]'s, with [blocks]/[block_hits] reporting the
    decomposition. *)

type job = {
  id : int;  (** caller-chosen; outcomes are ordered by it *)
  set : Cst_comm.Comm_set.t;
  algo : string;  (** registry name, e.g. ["csa"] *)
  engine : engine;
  leaves : int option;
      (** CST size override; default: smallest adequate power of two *)
  shape : Cst.Shape.t option;
      (** topology override: the job runs on
          [Cst.Topology.of_shape shape].  Non-binary shapes dispatch
          only through {!Cst_baselines.Registry.capability.shape_generic}
          algorithms (the CSA) — every other algorithm answers
          [Unsupported] — and crossing or mixed sets are not wave-covered
          on them. *)
}

val job : ?engine:engine -> ?leaves:int -> ?shape:Cst.Shape.t -> id:int ->
  algo:string -> Cst_comm.Comm_set.t -> job
(** Convenience constructor; [engine] defaults to [Spec].  [leaves] and
    [shape] are exclusive ([Invalid_argument] when both are given). *)

val job_leaves : job -> int
(** The CST size the job will run on: the shape's leaf count when
    [shape] is given, else [leaves] when given, otherwise the smallest
    adequate power of two (min 2). *)

type error =
  | Unknown_algo of string
  | Unsupported of { algo : string; what : string }
      (** capability mismatch, e.g. a message-passing request for an
          algorithm without an engine, or left-oriented members for one
          that cannot be wave-covered *)
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }
  | Crashed of string
      (** an exception escaped a scheduler; the pool survives and the
          exception text is attached to the offending job's id *)

val error_of_csa : Padr.error -> error
(** Embeds the scheduler's error type ({!Padr.Csa.error}). *)

val pp_error : Format.formatter -> error -> unit

type detail =
  | Sched of Padr.Schedule.t  (** single well-nested schedule *)
  | Waves of Padr.Waves.t  (** wave cover of a crossing or mixed set *)

type cache_status =
  | Hit  (** served by replaying a cached plan *)
  | Miss  (** scheduled fresh; the plan was frozen into the cache *)
  | Bypass
      (** cache disabled, or the path is not cacheable (waves, crossing
          sets, errors) *)

type job_result = {
  algo : string;
  digest : string;
      (** structural digest of the execution log
          ({!Cst.Exec_log.digest}) — equal digests mean the hardware did
          the same thing, event for event *)
  width : int;
  waves : int;  (** 1 for a direct schedule *)
  rounds : int;
  cycles : int;
  control_messages : int;  (** engine jobs only; 0 under [Spec] *)
  power : Padr.Schedule.power;  (** full ledger, per-switch arrays included *)
  cache : cache_status;
      (** which path served this job; excluded from
          {!outcome_to_string} (hit/miss patterns race across domain
          counts).  For [Segmented] jobs: [Hit] when every block
          replayed from the cache, [Miss] otherwise. *)
  blocks : int;
      (** [Segmented] jobs: number of independent top-level blocks the
          set decomposed into; 0 on every other path *)
  block_hits : int;
      (** [Segmented] jobs: how many of those blocks were served by
          replaying a cached plan; excluded from {!outcome_to_string}
          like [cache] *)
  detail : detail;
}

type outcome = { job_id : int; result : (job_result, error) result }

val run_job :
  ?cache:Plan_cache.t * int -> job -> (job_result, error) result
(** The per-job function every worker runs; exposed for direct
    (in-process, single-core) clients and for tests.  [cache] is the
    shared plan cache paired with the calling worker's counter index;
    omitted, every job bypasses the cache. *)

val outcome_to_string : outcome -> string
(** Canonical one-line serialization (digest, counts, power totals) used
    for byte-identical determinism comparison; excludes [detail]. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 The service}

    The streaming interface is the primary one: {!create} spawns the
    pool, {!submit} enqueues jobs as they arrive (blocking when the
    bounded channel is full — backpressure), and completed outcomes are
    consumed either {e pulled} — {!next_outcome} / {!events} deliver in
    submission order, or {!drain} as an id-ordered barrier — or {e
    pushed}, through the [~on_outcome] callback.  {!shutdown} closes the
    queue and joins the domains.  The closed-batch {!run} below is a
    thin wrapper (create / submit all / drain / shutdown) kept as the
    convenient one-call form; {!run_job} is the shared per-job dispatch
    both it and the workers go through.  One submitter and one consumer
    at a time; workers are internal.

    {!Stream} builds epoch coalescing and admission policies on top of
    this interface; [cstool serve] exposes it as a line protocol. *)

type t

val create :
  ?domains:int -> ?queue_capacity:int -> ?cache:bool -> ?cache_bytes:int ->
  ?store:Plan_store.t -> ?on_outcome:(outcome -> unit) -> unit -> t
(** Spawns the pool: [domains] worker domains (default
    [Domain.recommended_domain_count ()], min 1), a submission channel
    bounded by [queue_capacity] (default 64), the pool-wide plan cache
    unless [~cache:false] ([cache_bytes] bounds it, default 32 MiB),
    [store] its persistent disk tier.

    [on_outcome] switches the pool to push delivery: each completed
    outcome is handed to the callback {e on the worker domain that ran
    the job}, outside every pool lock, before the completion counter
    moves — a {!drain} barrier therefore also orders every callback
    before its return.  Completion order is nondeterministic; the
    callback must synchronize its own state and must not block on the
    pool.  With [on_outcome] set, outcomes are delivered {e only}
    through it: {!drain} still waits for quiescence but returns [[]],
    and {!next_outcome} raises [Invalid_argument]. *)

val domains : t -> int

val cache_stats : t -> Plan_cache.stats option
(** Aggregate and per-domain hit/miss/eviction counters of the pool's
    plan cache, including the disk tier's counters when a store is
    attached; [None] when the pool was created with [~cache:false].
    Safe to call while jobs are in flight.  Render with
    {!Plan_cache.sections} / {!Plan_cache.pp_stats}. *)

val submit : t -> job -> unit
(** Blocks while the submission channel is full (backpressure).  Raises
    [Invalid_argument] after {!shutdown}. *)

val next_outcome : t -> outcome option
(** Pulls the next outcome in {e submission} order, blocking until that
    job completes (or, when everything submitted has been delivered,
    until another {!submit} or {!shutdown}); [None] once the pool is
    shut down and every outcome has been delivered.  Submission order
    makes consecutive calls deterministic for any domain count.  Raises
    [Invalid_argument] on a pool created with [~on_outcome]. *)

val events : t -> outcome Seq.t
(** The pull interface as a sequence: [events t] is the stream of
    outcomes in submission order, ending (once the pool is shut down)
    after the last submitted job.  Each element is consumed from the
    pool as the sequence is forced — the sequence is ephemeral, and
    interleaving it with {!next_outcome} or {!drain} shares the same
    cursor. *)

val drain : t -> outcome list
(** Barrier: waits for all jobs submitted so far, returns the outcomes
    not yet delivered through {!next_outcome}, sorted by job id (ties by
    submission order).  The service remains usable afterwards.  Returns
    [[]] on a pool created with [~on_outcome] (delivery already
    happened). *)

val shutdown : t -> unit
(** Closes the submission channel, lets workers finish queued jobs and
    joins them.  Idempotent. *)

(** {2 Closed batches} *)

val run :
  ?domains:int ->
  ?queue_capacity:int ->
  ?cache:bool ->
  ?cache_bytes:int ->
  ?store:Plan_store.t ->
  job list ->
  outcome list
(** The one-call batch wrapper over the streaming path: [create], submit
    every job, [drain], [shutdown] (pool torn down even on raise).
    Returns one outcome per job, sorted by job id (ties by submission
    order); parameters as on {!create}. *)

(** On-disk tier of the plan cache.

    A store is a flat directory of {!Padr.Plan.Codec} files, one plan
    per file, named by the cache key ([canon hash, algorithm, engine,
    tree size]).  {!Plan_cache} spills LRU evictions here and faults
    misses back in, so a service restarted against the same directory
    replays its working set instead of recompiling it — the cold-start
    experiment in EXPERIMENTS.md measures the difference.

    {b Durability.} Writes are atomic publishes ([.tmp] + rename): a
    reader — another process included — sees the old file or the new
    one, never a torn write.  Reads trust nothing: every fault-in
    re-decodes the file, whose digests, canon hash and field ranges are
    verified by the codec; a file that fails any check is {e
    quarantined} (renamed to [*.corrupt], counted) and reported as a
    miss, never an exception — a corrupt store degrades to recompiles,
    it cannot crash the service.

    {b Keys and collisions.} Filenames carry only the canon hash —
    mixed with the topology's {!Cst.Shape.fingerprint} via
    {!Cst.Canon.hash_with}, which leaves binary-shape filenames exactly
    as they always were; full structural equality (canon {e and} shape)
    is re-checked against the decoded plan, so a hash collision is a
    plain miss, not a wrong plan.

    {b Budget.} Like the in-memory tier the store is byte-bounded LRU
    (default 256 MiB of encoded plans).  Recency is kept in memory and
    mirrored to file mtimes (best effort), so a reopened store resumes
    its LRU order from the filesystem.

    All operations take the store's single [Mutex]; the I/O under it is
    one file read or write.  Lock order is cache before store —
    {!Plan_cache} calls into this module, never the reverse. *)

type t

val open_dir : ?max_bytes:int -> string -> t
(** Opens (creating directories as needed) a store rooted at the given
    directory and indexes the [*.plan] files already present, oldest
    mtime first; if they exceed [max_bytes] (default 256 MiB) the
    oldest are evicted immediately.  Raises [Unix.Unix_error] if the
    directory cannot be created. *)

val dir : t -> string

val find :
  t ->
  algo:string ->
  engine:bool ->
  shape:Cst.Shape.t ->
  base:int ->
  canon:Cst.Canon.t ->
  Padr.Plan.t option
(** Faults the plan for a cache key in from disk: decode, verify (codec
    digests, full {!Cst.Canon.equal} and {!Cst.Shape.equal},
    producer consistency, and — non-binary shapes only, since their
    plans replay solely at their compiled placement — [base]
    equality), bump recency.  [None] on absence, hash collision, or
    quarantined corruption. *)

val store : t -> algo:string -> engine:bool -> Padr.Plan.t -> unit
(** Atomically writes the plan under its key (leaves and canon come
    from the plan itself), then evicts LRU files beyond the byte
    budget.  A plan alone exceeding the whole budget is not admitted;
    I/O failure (disk full, permissions) makes the store a no-op — the
    disk tier is an accelerator, never a correctness dependency. *)

type stats = {
  hits : int;  (** fault-ins that returned a verified plan *)
  misses : int;  (** absences, collisions and corruptions *)
  stores : int;  (** successful writes (spills and imports) *)
  evictions : int;  (** files removed by the byte budget *)
  corrupt : int;  (** files quarantined on decode failure *)
  entries : int;  (** resident plan files *)
  bytes : int;  (** resident encoded bytes *)
  max_bytes : int;
}

val stats : t -> stats

val sections : stats -> Stats.t
(** The counters as one ["plan_store"] {!Stats.section} (adds a derived
    [hit_pct] field) — the single source {!pp_stats}, [cstool], the
    serve [STATS] reply and the bench print from. *)

val pp_stats : Format.formatter -> stats -> unit
(** [Stats.pp] of {!sections}. *)

type t =
  | Immediate
  | Quantum of float
  | Delta_threshold of { delta : float; max_width : int option }

type queue_view = {
  jobs : int;
  opened : float;
  accumulated_wait : float;
  width : int;
}

type decision = Commit | Wait

let decide policy ~now view =
  if view.jobs <= 0 then Wait
  else
    match policy with
    | Immediate -> Commit
    | Quantum q -> if now -. view.opened >= q then Commit else Wait
    | Delta_threshold { delta; max_width } ->
        if view.accumulated_wait >= delta then Commit
        else (
          match max_width with
          | Some w when view.width > w -> Commit
          | _ -> Wait)

let name = function
  | Immediate -> "immediate"
  | Quantum _ -> "quantum"
  | Delta_threshold _ -> "delta"

let to_string = function
  | Immediate -> "immediate"
  | Quantum q -> Printf.sprintf "quantum:%g" q
  | Delta_threshold { delta; max_width = None } ->
      Printf.sprintf "delta:%g" delta
  | Delta_threshold { delta; max_width = Some w } ->
      Printf.sprintf "delta:%g:%d" delta w

let grammar = "immediate | quantum:SECONDS | delta:DELTA[:MAX_WIDTH]"

let float_arg what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f && f >= 0.0 -> Ok f
  | _ -> Error (Printf.sprintf "%s must be a non-negative number, got %S" what s)

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "immediate" ] -> Ok Immediate
  | [ "quantum"; q ] ->
      Result.map (fun q -> Quantum q) (float_arg "quantum" q)
  | [ "delta"; d ] ->
      Result.map
        (fun delta -> Delta_threshold { delta; max_width = None })
        (float_arg "delta" d)
  | [ "delta"; d; w ] ->
      Result.bind (float_arg "delta" d) (fun delta ->
          match int_of_string_opt w with
          | Some w when w >= 1 ->
              Ok (Delta_threshold { delta; max_width = Some w })
          | _ ->
              Error
                (Printf.sprintf "delta max width must be a positive integer, \
                                 got %S" w))
  | _ -> Error (Printf.sprintf "unknown policy %S (grammar: %s)" s grammar)

let pp fmt t = Format.pp_print_string fmt (to_string t)

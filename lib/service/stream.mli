(** Online streaming scheduler: epoch coalescing over the domain pool.

    {!Service} executes jobs; this module decides {e when}.  Jobs arrive
    over time ({!submit}); instead of dispatching each one immediately,
    the scheduler keeps an {e open epoch} — the queue of jobs that will
    be committed to the circuit together — and asks its
    {!Admission.t} policy on every submission and every {!tick} whether
    to commit now or keep waiting for more arrivals to share the next
    switch reconfiguration.

    {2 Epoch and width math}

    While the epoch is open the scheduler maintains the merged
    link-congestion width of its members incrementally: each admitted
    set's per-link crossing counts ({!Cst_comm.Width.crossings}) are
    added into the epoch's congestion arrays, so the merged width (the
    array maximum — exactly the width of the union set) is available in
    O(1) to the policy's [max_width] cap.  Theorem 5 (rounds = width)
    turns that cap into a bound on the epoch's service time.  Top-level
    block intervals ({!Cst_comm.Decompose.blocks}) of well-nested
    members are tracked too: an epoch whose members occupy pairwise
    disjoint aligned intervals coalesces for free — merged width = max,
    not sum ([disjoint_epochs] in {!stats}).  Members that are not
    well-nested are admitted as well (the pool wave-covers them); their
    {!Cst_comm.Wn_cover} layer count is recorded ([max_wave_layers]).
    Jobs for a different tree size than the open epoch force a commit
    first — congestion arrays of different topologies do not align.

    {2 Power model}

    Per-job power (connects + register writes) is read from the
    outcomes and is identical however jobs are batched.  What admission
    changes is reconfiguration: following the δ model ("Costly Circuits,
    Submodular Schedules", PAPERS.md), every committed epoch is charged
    a flat [recon_delta] power units.  [Immediate] pays it once per job;
    a coalescing policy pays it once per epoch — [stats] separates
    [job_connects]/[job_writes] from [recon_power] so the bench can gate
    the δ-aware policy's saving.

    {2 Determinism}

    Committing an epoch submits its member jobs, in arrival order, to
    the inner {!Service} pool — the jobs themselves are not rewritten,
    merged or split, so each outcome (digest included) is byte-identical
    to the same job in a closed batch, under every policy and domain
    count (property-tested in test/test_stream.ml).  Policies only move
    {e when} a job dispatches and how many epochs (hence how much
    reconfiguration power) the trace costs.

    One driver thread submits/ticks/drains; completion timestamps are
    recorded on worker domains via the pool's [on_outcome] hook. *)

type t

val create :
  ?domains:int ->
  ?queue_capacity:int ->
  ?cache:bool ->
  ?cache_bytes:int ->
  ?store:Plan_store.t ->
  ?policy:Admission.t ->
  ?recon_delta:float ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** Spawns the inner pool ({!Service.create} — first five parameters are
    passed through).  [policy] defaults to {!Admission.Immediate};
    [recon_delta] (default 16.0) is the power charged per committed
    epoch; [clock] (default [Unix.gettimeofday]) is read for arrival,
    commit and completion stamps and fed to the policy — inject a
    manual clock for deterministic tests.  The clock is read from
    worker domains too, so it must be thread-safe. *)

val submit : t -> Service.job -> unit
(** Stamps the job's arrival, admits it into the open epoch (committing
    the previous epoch first when the tree size differs or the policy's
    width cap would be exceeded) and re-evaluates the policy.  Blocks
    only while a commit is flushing into a full pool queue. *)

val tick : t -> unit
(** Re-evaluates the policy at the current clock — how time-based
    policies ([Quantum], [Delta_threshold]) commit between arrivals.
    Call from the driver loop; cheap when the epoch stays open. *)

val flush : t -> unit
(** Commits the open epoch unconditionally (no-op when empty). *)

type timing = {
  arrival : float;  (** clock at {!submit} *)
  committed : float;  (** clock when the job's epoch committed *)
  completed : float;  (** clock when the worker finished it *)
  epoch : int;  (** 0-based index of the committing epoch *)
}
(** Timing envelope around a {!Service.outcome}; sojourn is
    [completed -. arrival]. *)

val drain : t -> (Service.outcome * timing) list
(** {!flush}, waits until every submitted job has completed, and returns
    the completed jobs' records sorted like {!Service.drain} (job id,
    ties by submission order), clearing them.  The stream remains
    usable. *)

val shutdown : t -> unit
(** {!flush}, then shuts the inner pool down (queued jobs still
    complete).  Idempotent. *)

type stats = {
  submitted : int;
  completed : int;
  epochs : int;  (** committed so far *)
  coalesced_jobs : int;  (** jobs that shared their epoch (≥2-job epochs) *)
  max_epoch_jobs : int;
  max_epoch_width : int;  (** largest merged width any epoch reached *)
  disjoint_epochs : int;
      (** multi-job epochs whose well-nested members' top-level block
          intervals were pairwise disjoint *)
  crossing_jobs : int;  (** members admitted without a single well-nested
                            plan (wave-covered by the pool) *)
  max_wave_layers : int;
      (** largest {!Cst_comm.Wn_cover} layer count among those *)
  recon_delta : float;
  recon_power : float;  (** [recon_delta *. float epochs] *)
  job_connects : int;  (** Σ over completed jobs (successful outcomes) *)
  job_writes : int;
  sojourn_p50 : float;  (** seconds, over all completed jobs *)
  sojourn_p99 : float;
}

val stats : t -> stats
val total_power : stats -> float
(** [job_connects + job_writes + recon_power] — the quantity the δ-aware
    policy minimizes. *)

val sections : t -> Stats.t
(** One ["stream"] section (counters above plus [total_power]), then the
    inner pool's plan-cache/store sections when enabled — the serve
    [STATS] reply. *)

val cache_stats : t -> Plan_cache.stats option
val domains : t -> int

(** Byte-bounded LRU cache of compiled routing plans.

    The batch service keys each cacheable run by its structural
    signature ({!Cst.Canon}), the algorithm name, the execution engine
    and the tree size; a hit replays the frozen plan
    ({!Padr.Plan.replay}) instead of re-running the scheduler.  The
    cache is one shared [Mutex]-guarded structure per service pool —
    scheduling itself happens outside the lock, which only protects the
    table, the recency stamps and the byte budget — with per-domain
    hit/miss/eviction counters so a multi-domain pool's accounting has
    no contended hot word beyond the table lock itself.

    Eviction is least-recently-used by total frozen-event bytes
    ({!Padr.Plan.bytes}): inserting beyond the budget evicts the oldest
    stamps until the total fits.  A plan alone exceeding the whole
    budget is not admitted.  The victim scan is linear in the number of
    resident plans, which the byte bound keeps small. *)

type key = {
  algo : string;  (** registry name *)
  engine : bool;  (** message-passing engine vs functional scheduler *)
  leaves : int;  (** tree size jobs of this key run on *)
  canon : Cst.Canon.t;  (** full structural signature (collision-proof) *)
}

type t

val create : ?max_bytes:int -> domains:int -> unit -> t
(** [max_bytes] defaults to 32 MiB of frozen plan arenas.  [domains]
    sizes the per-domain counter arrays; worker indices passed to
    {!find}/{!add} must be in [0, domains). *)

val find : t -> worker:int -> key -> Padr.Plan.t option
(** Looks the key up, refreshing its recency stamp and counting a hit
    or miss against [worker]'s slot. *)

val add : t -> worker:int -> key -> Padr.Plan.t -> unit
(** Inserts a freshly compiled plan, evicting LRU entries beyond the
    byte budget (counted against [worker]).  If the key is already
    resident — two workers compiled the same structure concurrently —
    the resident plan is kept and the duplicate dropped. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** resident plans *)
  bytes : int;  (** resident frozen bytes *)
  max_bytes : int;
  per_domain : (int * int * int) array;  (** (hits, misses, evictions) *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Byte-bounded LRU cache of compiled routing plans.

    The batch service keys each cacheable run by its structural
    signature ({!Cst.Canon}), the algorithm name, the execution engine
    and the tree size; a hit replays the frozen plan
    ({!Padr.Plan.replay}) instead of re-running the scheduler.  The
    cache is one shared [Mutex]-guarded structure per service pool —
    scheduling itself happens outside the lock, which only protects the
    table, the recency stamps and the byte budget — with per-domain
    hit/miss/eviction counters so a multi-domain pool's accounting has
    no contended hot word beyond the table lock itself.

    Eviction is least-recently-used by total frozen-event bytes
    ({!Padr.Plan.bytes}): inserting beyond the budget evicts the oldest
    stamps until the total fits.  A plan alone exceeding the whole
    budget is not admitted.  The victim scan is linear in the number of
    resident plans, which the byte bound keeps small.

    {2 Disk tier}

    Opened with a {!Plan_store}, the cache becomes the memory tier of a
    two-level hierarchy: evictions {e spill} (a plan not yet on disk is
    written to the store before being dropped), misses {e fault} (a
    store hit is decoded, re-admitted to memory and served — the caller
    cannot tell which tier answered), and {!flush} persists the
    still-dirty residents, which the service calls on shutdown so a
    restart against the same directory warm-starts.  Each plan is
    written at most once; plans faulted from disk are already durable
    and evict without rewriting. *)

type key = {
  algo : string;  (** registry name *)
  engine : bool;  (** message-passing engine vs functional scheduler *)
  shape : Cst.Shape.t;  (** topology shape jobs of this key run on *)
  base : int;
      (** placement pin: [0] for binary shapes (whose plans replay at
          any compatible placement); the set's aligned-block base for
          non-binary shapes, whose plans replay only where compiled *)
  canon : Cst.Canon.t;  (** full structural signature (collision-proof) *)
}

type t

val create : ?max_bytes:int -> ?store:Plan_store.t -> domains:int -> unit -> t
(** [max_bytes] defaults to 32 MiB of frozen plan arenas.  [store]
    attaches the disk tier (omitted: memory only).  [domains] sizes the
    per-domain counter arrays; worker indices passed to {!find}/{!add}
    must be in [0, domains). *)

val find : t -> worker:int -> key -> Padr.Plan.t option
(** Looks the key up, refreshing its recency stamp and counting a
    memory hit or miss against [worker]'s slot.  On a memory miss with
    a disk tier attached, faults the key from the store (the store
    keeps its own hit/miss counters): a disk hit is admitted to memory
    and returned, so [Some] means "served from the hierarchy". *)

val add : t -> worker:int -> key -> Padr.Plan.t -> unit
(** Inserts a freshly compiled plan, evicting LRU entries beyond the
    byte budget (counted against [worker]; evicted dirty plans spill to
    the store when one is attached).  If the key is already resident —
    two workers compiled the same structure concurrently — the resident
    plan is kept and the duplicate dropped. *)

val flush : t -> unit
(** Writes every resident plan the store does not yet hold.  No-op
    without a disk tier. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** resident plans *)
  bytes : int;  (** resident frozen bytes *)
  max_bytes : int;
  per_domain : (int * int * int) array;  (** (hits, misses, evictions) *)
  store : Plan_store.stats option;
      (** the disk tier's counters; [None] without one *)
}

val stats : t -> stats

val sections : stats -> Stats.t
(** The memory tier as one ["plan_cache"] {!Stats.section} (with a
    derived [hit_pct]), followed by the disk tier's section when a store
    is attached ({!Plan_store.sections}).  Per-domain counters are not
    included — render those from [per_domain] directly. *)

val pp_stats : Format.formatter -> stats -> unit
(** [Stats.pp] of {!sections}: one line for the memory tier, plus one
    for the disk tier when attached. *)

type engine = Spec | Message_passing | Segmented

type job = {
  id : int;
  set : Cst_comm.Comm_set.t;
  algo : string;
  engine : engine;
  leaves : int option;
  shape : Cst.Shape.t option;
}

let job ?(engine = Spec) ?leaves ?shape ~id ~algo set =
  if Option.is_some leaves && Option.is_some shape then
    invalid_arg "Service.job: ?leaves and ?shape are exclusive";
  { id; set; algo; engine; leaves; shape }

type error =
  | Unknown_algo of string
  | Unsupported of { algo : string; what : string }
  | Too_large of { n : int; leaves : int }
  | Not_well_nested of Cst_comm.Well_nested.violation
  | Stalled of { round : int; remaining : int }
  | Crashed of string

let error_of_csa : Padr.error -> error = function
  | Padr.Csa.Too_large { n; leaves } -> Too_large { n; leaves }
  | Padr.Csa.Not_well_nested v -> Not_well_nested v
  | Padr.Csa.Stalled { round; remaining } -> Stalled { round; remaining }

let pp_error fmt = function
  | Unknown_algo name -> Format.fprintf fmt "unknown algorithm %S" name
  | Unsupported { algo; what } ->
      Format.fprintf fmt "algorithm %s does not support %s" algo what
  | Too_large { n; leaves } ->
      Format.fprintf fmt "set over %d PEs does not fit a %d-leaf CST" n leaves
  | Not_well_nested v ->
      Format.fprintf fmt "set is not schedulable: %a"
        Cst_comm.Well_nested.pp_violation v
  | Stalled { round; remaining } ->
      Format.fprintf fmt "scheduler stalled in round %d with %d pending"
        round remaining
  | Crashed msg -> Format.fprintf fmt "scheduler crashed: %s" msg

type detail = Sched of Padr.Schedule.t | Waves of Padr.Waves.t
type cache_status = Hit | Miss | Bypass

type job_result = {
  algo : string;
  digest : string;
  width : int;
  waves : int;
  rounds : int;
  cycles : int;
  control_messages : int;
  power : Padr.Schedule.power;
  cache : cache_status;
  blocks : int;
  block_hits : int;
  detail : detail;
}

type outcome = { job_id : int; result : (job_result, error) result }

(* --- per-job execution --------------------------------------------- *)

(* Each job runs against a private execution log and its digest is the
   log's structural digest ({!Cst.Exec_log.digest}): the canonical
   record of what the hardware did — rounds, switch transitions,
   register writes, deliveries.  The digest is a pure function of the
   job, so outcomes are byte-identical for any domain count, and the
   spec scheduler and the message-passing engine (which emit the same
   events, merely discovering switches in different orders) digest
   equal. *)

let leaves_for job =
  match job.shape with
  | Some s -> Cst.Shape.leaves s
  | None -> (
      match job.leaves with
      | Some l -> l
      | None -> Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n job.set)))

let job_leaves = leaves_for

let result_of_schedule ~algo ~digest ~cache ?(control_messages = 0)
    ?(blocks = 0) ?(block_hits = 0) (s : Padr.Schedule.t) =
  let detail = Sched s in
  {
    algo;
    digest;
    width = s.width;
    waves = 1;
    rounds = Padr.Schedule.num_rounds s;
    cycles = s.cycles;
    control_messages;
    power = s.power;
    cache;
    blocks;
    block_hits;
    detail;
  }

let result_of_waves ~algo ~leaves ~digest (w : Padr.Waves.t) =
  let detail = Waves w in
  {
    algo;
    digest;
    width = Cst_comm.Width.width ~leaves w.set;
    waves = Padr.Waves.num_waves w;
    rounds = w.rounds;
    cycles = w.cycles;
    control_messages = 0;
    power = w.power;
    cache = Bypass;
    blocks = 0;
    block_hits = 0;
    detail;
  }

type classification =
  | Right_well_nested
  | Right_crossing of Cst_comm.Well_nested.violation
  | Mixed_orientation

let classify set =
  if Cst_comm.Comm_set.is_right_oriented set then
    match Cst_comm.Well_nested.check set with
    | Ok _ -> Right_well_nested
    | Error v -> Right_crossing v
  else Mixed_orientation

(* Cacheable paths consult the plan cache before scheduling: on a hit
   the frozen plan is replayed ({!Padr.Plan.replay}) instead of running
   the scheduler, on a miss the run just performed is frozen into the
   cache.  Only successful well-nested runs are cached — wave covers
   (multi-wave logs have no single rebase block) and errors bypass the
   cache entirely.  Congruence of the cache key guarantees byte-equal
   outcomes: equal signatures mean the sets are aligned translates, so
   the replayed digest, power totals and round counts equal a fresh
   run's (property-tested in test/test_plan.ml and test_service.ml). *)

let dispatch ?cache (job : job) =
  match Cst_baselines.Registry.find job.algo with
  | None -> Error (Unknown_algo job.algo)
  | Some a -> (
      let leaves = leaves_for job in
      let n = Cst_comm.Comm_set.n job.set in
      if n > leaves then Error (Too_large { n; leaves })
      else
        let topo =
          match job.shape with
          | Some s -> Cst.Topology.of_shape s
          | None -> Cst.Topology.create ~leaves
        in
        let binary = Cst.Topology.is_binary topo in
        if (not binary) && not a.caps.shape_generic then
          Error (Unsupported { algo = a.name; what = "non-binary topologies" })
        else
        let shape = Cst.Topology.shape topo in
        let with_cache ~engine ~producer ~hit ~fresh =
          match cache with
          | None -> fresh ~cache_status:Bypass ~freeze:None
          | Some (pc, worker) -> (
              let placed = Cst.Canon.place job.set in
              let key : Plan_cache.key =
                { algo = a.name; engine; shape;
                  base = (if binary then 0 else placed.base);
                  canon = placed.canon }
              in
              match Plan_cache.find pc ~worker key with
              | Some plan -> hit (Padr.Plan.replay plan topo job.set)
              | None ->
                  let freeze ~rounds ~cycles ~control_messages log =
                    Plan_cache.add pc ~worker key
                      (Padr.Plan.of_log ~producer ~topo ~set:job.set ~rounds
                         ~cycles ~control_messages log)
                  in
                  fresh ~cache_status:Miss ~freeze:(Some freeze))
        in
        let direct ~cache_status ~freeze =
          let log = Cst.Exec_log.create () in
          let s = a.run ~log topo job.set in
          Option.iter
            (fun freeze ->
              freeze
                ~rounds:(Padr.Schedule.num_rounds s)
                ~cycles:s.cycles ~control_messages:0 log)
            freeze;
          Ok
            (result_of_schedule ~algo:a.name ~cache:cache_status
               ~digest:(Cst.Exec_log.digest log) s)
        in
        let direct_cached () =
          with_cache ~engine:false ~producer:Padr.Plan.Spec ~fresh:direct
            ~hit:(fun (r : Padr.Plan.replayed) ->
              Ok
                (result_of_schedule ~algo:a.name ~cache:Hit
                   ~digest:(Cst.Exec_log.digest r.log) r.schedule))
        in
        let waves () =
          if not binary then
            (* The wave cover schedules layer-by-layer through the
               binary spec scheduler; no non-binary counterpart yet. *)
            Error
              (Unsupported
                 { algo = a.name; what = "wave covers on a non-binary topology" })
          else
          let log = Cst.Exec_log.create () in
          match Padr.Waves.schedule ~leaves ~log job.set with
          | Ok w ->
              Ok
                (result_of_waves ~algo:a.name ~leaves
                   ~digest:(Cst.Exec_log.digest log) w)
          | Error e -> Error (error_of_csa e)
        in
        let engine_fresh ~cache_status ~freeze =
          let log = Cst.Exec_log.create () in
          match Padr.Engine.run ~log topo job.set with
          | Ok (s, stats) ->
              Option.iter
                (fun freeze ->
                  freeze
                    ~rounds:(Padr.Schedule.num_rounds s)
                    ~cycles:s.cycles
                    ~control_messages:stats.control_messages log)
                freeze;
              Ok
                (result_of_schedule ~algo:a.name ~cache:cache_status
                   ~digest:(Cst.Exec_log.digest log)
                   ~control_messages:stats.control_messages s)
          | Error e -> Error (error_of_csa e)
        in
        match job.engine with
        | Message_passing ->
            if not a.caps.engine_available then
              Error
                (Unsupported { algo = a.name; what = "the message-passing engine" })
            else if classify job.set = Right_well_nested then
              with_cache ~engine:true ~producer:Padr.Plan.Engine
                ~fresh:engine_fresh
                ~hit:(fun (r : Padr.Plan.replayed) ->
                  Ok
                    (result_of_schedule ~algo:a.name ~cache:Hit
                       ~digest:(Cst.Exec_log.digest r.log)
                       ~control_messages:r.control_messages r.schedule))
            else engine_fresh ~cache_status:Bypass ~freeze:None
        | Segmented ->
            (* Segment-parallel engine path: decompose into independent
               top-level blocks, serve each block from the plan cache
               when its signature is resident (a cached block replays
               while its siblings schedule fresh), merge the per-block
               logs and derive the whole-set schedule.  The digest and
               every outcome field are identical to [Message_passing]'s
               — only [blocks]/[block_hits] reveal the path taken.
               Per-block plans are keyed exactly like whole-set engine
               plans (same canon, full-tree [leaves]), so a whole-set
               plan can serve a single-block job and vice versa. *)
            if not a.caps.engine_available then
              Error
                (Unsupported { algo = a.name; what = "the message-passing engine" })
            else if classify job.set <> Right_well_nested then
              (* No block structure to exploit; identical error/bypass
                 behaviour to the sequential engine path. *)
              engine_fresh ~cache_status:Bypass ~freeze:None
            else (
              match Padr.Par_engine.decompose topo job.set with
              | Error e -> Error (error_of_csa e)
              | Ok bs -> (
                  let hits = ref 0 in
                  let levels = Cst.Topology.levels topo in
                  let block_log (b : Cst_comm.Decompose.block) =
                    match cache with
                    | None -> Padr.Par_engine.run_block topo b
                    | Some (pc, worker) -> (
                        let placed = Cst.Canon.place b.set in
                        let key : Plan_cache.key =
                          { algo = a.name; engine = true; shape;
                            base = (if binary then 0 else placed.base);
                            canon = placed.canon }
                        in
                        match Plan_cache.find pc ~worker key with
                        | Some plan ->
                            incr hits;
                            Ok
                              (Padr.Plan.replay ~keep_configs:false plan topo
                                 b.set)
                                .log
                        | None -> (
                            match Padr.Par_engine.run_block topo b with
                            | Error e -> Error e
                            | Ok blog ->
                                (* The rebased block log is exactly what a
                                   standalone engine run of [b.set] on the
                                   full tree would emit; freeze it with the
                                   engine's closed-form metadata. *)
                                let rounds =
                                  match
                                    Cst.Exec_log.event blog
                                      (Cst.Exec_log.length blog - 1)
                                  with
                                  | Cst.Exec_log.Run_end { rounds } -> rounds
                                  | _ -> assert false
                                in
                                let control_messages =
                                  if binary then 2 * (leaves - 1) * (rounds + 1)
                                  else
                                    (* [Cap_engine]'s closed form *)
                                    2
                                    * (Cst.Topology.num_nodes topo - 1)
                                    * (rounds + 1)
                                in
                                Plan_cache.add pc ~worker key
                                  (Padr.Plan.of_log ~producer:Padr.Plan.Engine
                                     ~topo ~set:b.set ~rounds
                                     ~cycles:
                                       (1 + levels + (rounds * (levels + 2)))
                                     ~control_messages blog);
                                Ok blog))
                  in
                  let rec collect acc = function
                    | [] -> Ok (List.rev acc)
                    | b :: rest -> (
                        match block_log b with
                        | Error e -> Error e
                        | Ok l -> collect (l :: acc) rest)
                  in
                  match collect [] bs with
                  | Error e -> Error (error_of_csa e)
                  | Ok logs ->
                      let log = Cst.Exec_log.create () in
                      let s, stats =
                        Padr.Par_engine.merge_blocks ~log topo job.set logs
                      in
                      let nblocks = List.length bs in
                      let cache_status =
                        match cache with
                        | None -> Bypass
                        | Some _ ->
                            if nblocks > 0 && !hits = nblocks then Hit
                            else Miss
                      in
                      Ok
                        (result_of_schedule ~algo:a.name ~cache:cache_status
                           ~digest:(Cst.Exec_log.digest log)
                           ~control_messages:stats.control_messages
                           ~blocks:nblocks ~block_hits:!hits s)))
        | Spec -> (
            match classify job.set with
            | Right_well_nested -> direct_cached ()
            | Right_crossing v ->
                if a.caps.supports = `Arbitrary then
                  direct ~cache_status:Bypass ~freeze:None
                else if a.caps.via_waves then waves ()
                else Error (Not_well_nested v)
            | Mixed_orientation ->
                if a.caps.via_waves then waves ()
                else
                  Error
                    (Unsupported
                       { algo = a.name; what = "left-oriented members" })))

let run_job ?cache job =
  (* The catch-all is the pool's fault isolation: whatever escapes a
     scheduler becomes a typed outcome on this job's id. *)
  match dispatch ?cache job with
  | result -> result
  | exception e -> Error (Crashed (Printexc.to_string e))

(* --- canonical serialization --------------------------------------- *)

let outcome_to_string o =
  match o.result with
  | Ok r ->
      Printf.sprintf
        "job %d: ok algo=%s digest=%s width=%d waves=%d rounds=%d cycles=%d \
         msgs=%d connects=%d disconnects=%d writes=%d maxc/sw=%d maxw/sw=%d"
        o.job_id r.algo r.digest r.width r.waves r.rounds r.cycles
        r.control_messages r.power.total_connects r.power.total_disconnects
        r.power.total_writes r.power.max_connects_per_switch
        r.power.max_writes_per_switch
  | Error e ->
      Format.asprintf "job %d: error %a" o.job_id pp_error e

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_to_string o)

(* --- bounded channel ----------------------------------------------- *)

module Chan = struct
  type 'a t = {
    q : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
    m : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
  }

  let create capacity =
    {
      q = Queue.create ();
      capacity = max 1 capacity;
      closed = false;
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
    }

  let send t x =
    Mutex.lock t.m;
    while Queue.length t.q >= t.capacity && not t.closed do
      Condition.wait t.not_full t.m
    done;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Service: submit after shutdown"
    end;
    Queue.push x t.q;
    Condition.signal t.not_empty;
    Mutex.unlock t.m

  (* [None] only after [close] once the queue has drained. *)
  let recv t =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.not_empty t.m
    done;
    let x = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Condition.signal t.not_full;
    Mutex.unlock t.m;
    x

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.m
end

(* --- the domain pool ----------------------------------------------- *)

type t = {
  chan : (int * job) Chan.t;  (* submission index paired with the job *)
  m : Mutex.t;  (* guards everything below *)
  completed_one : Condition.t;
  results : (int, outcome) Hashtbl.t;  (* submission index -> outcome *)
  submitted : int ref;
  completed : int ref;
  delivered : int ref;  (* next submission index [next_outcome] hands out *)
  stopped : bool ref;
  workers : unit Domain.t array;
  domain_count : int;
  cache : Plan_cache.t option;
  on_outcome : (outcome -> unit) option;
}

let create ?domains ?(queue_capacity = 64) ?(cache = true) ?cache_bytes ?store
    ?on_outcome () =
  let domain_count =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let chan = Chan.create queue_capacity in
  let m = Mutex.create () in
  let completed_one = Condition.create () in
  let results = Hashtbl.create 64 in
  let completed = ref 0 in
  let pc =
    if cache then
      Some
        (Plan_cache.create ?max_bytes:cache_bytes ?store ~domains:domain_count
           ())
    else None
  in
  let rec worker i () =
    match Chan.recv chan with
    | None -> ()
    | Some (idx, job) ->
        let result =
          run_job ?cache:(Option.map (fun c -> (c, i)) pc) job
        in
        let o = { job_id = job.id; result } in
        (* The callback runs on the worker domain, outside the pool
           mutex, before the completion counter moves — so a [drain]
           barrier also orders every callback before its return.  A
           raising callback must not kill the worker. *)
        (match on_outcome with
        | Some f -> ( try f o with _ -> ())
        | None -> ());
        Mutex.lock m;
        if Option.is_none on_outcome then Hashtbl.replace results idx o;
        incr completed;
        Condition.broadcast completed_one;
        Mutex.unlock m;
        worker i ()
  in
  {
    chan;
    m;
    completed_one;
    results;
    submitted = ref 0;
    completed;
    delivered = ref 0;
    stopped = ref false;
    workers = Array.init domain_count (fun i -> Domain.spawn (worker i));
    domain_count;
    cache = pc;
    on_outcome;
  }

let domains t = t.domain_count
let cache_stats t = Option.map Plan_cache.stats t.cache

let submit t job =
  Mutex.lock t.m;
  if !(t.stopped) then begin
    Mutex.unlock t.m;
    invalid_arg "Service: submit after shutdown"
  end;
  let idx = !(t.submitted) in
  t.submitted := idx + 1;
  Mutex.unlock t.m;
  (* Blocks here when the bounded channel is full: backpressure. *)
  Chan.send t.chan (idx, job)

let drain t =
  Mutex.lock t.m;
  while !(t.completed) < !(t.submitted) do
    Condition.wait t.completed_one t.m
  done;
  let collected =
    Hashtbl.fold (fun idx o acc -> (idx, o) :: acc) t.results []
  in
  Hashtbl.reset t.results;
  (* A later [next_outcome] must not wait for indices this drain already
     returned (or that went out through [on_outcome]). *)
  t.delivered := !(t.submitted);
  Mutex.unlock t.m;
  (* Deterministic order regardless of completion interleaving: job id,
     ties broken by submission index. *)
  List.sort
    (fun (i1, o1) (i2, o2) ->
      match Int.compare o1.job_id o2.job_id with
      | 0 -> Int.compare i1 i2
      | c -> c)
    collected
  |> List.map snd

let next_outcome t =
  if Option.is_some t.on_outcome then
    invalid_arg "Service: next_outcome on a pool with ~on_outcome";
  Mutex.lock t.m;
  let rec loop () =
    let d = !(t.delivered) in
    match Hashtbl.find_opt t.results d with
    | Some o ->
        Hashtbl.remove t.results d;
        t.delivered := d + 1;
        Some o
    | None ->
        if d >= !(t.submitted) && !(t.stopped) then None
        else begin
          Condition.wait t.completed_one t.m;
          loop ()
        end
  in
  let r = loop () in
  Mutex.unlock t.m;
  r

let events t = Seq.of_dispenser (fun () -> next_outcome t)

let shutdown t =
  Mutex.lock t.m;
  let already = !(t.stopped) in
  t.stopped := true;
  (* Wake a [next_outcome] caller blocked waiting for more submissions:
     with [stopped] set it can now answer [None]. *)
  Condition.broadcast t.completed_one;
  Mutex.unlock t.m;
  if not already then begin
    Chan.close t.chan;
    Array.iter Domain.join t.workers;
    (* workers are gone: persist the still-dirty working set so a
       restart against the same store directory warm-starts *)
    Option.iter Plan_cache.flush t.cache
  end

let run ?domains ?queue_capacity ?cache ?cache_bytes ?store jobs =
  let t = create ?domains ?queue_capacity ?cache ?cache_bytes ?store () in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      List.iter (submit t) jobs;
      drain t)

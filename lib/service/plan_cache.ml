type key = {
  algo : string;
  engine : bool;
  shape : Cst.Shape.t;
  base : int;
  canon : Cst.Canon.t;
}

module Key = struct
  type t = key

  let equal a b =
    a.engine = b.engine && a.base = b.base
    && String.equal a.algo b.algo
    && Cst.Shape.equal a.shape b.shape
    && Cst.Canon.equal a.canon b.canon

  let hash k =
    Hashtbl.hash
      ( k.algo,
        k.engine,
        k.base,
        Cst.Canon.hash_with ~shape_fp:(Cst.Shape.fingerprint k.shape) k.canon
      )
end

module H = Hashtbl.Make (Key)

(* [on_disk] tracks whether the store already holds this plan's bytes:
   set for entries faulted in from disk and cleared for fresh compiles,
   so spills (eviction) and [flush] write each plan at most once. *)
type entry = {
  plan : Padr.Plan.t;
  size : int;
  mutable stamp : int;
  mutable on_disk : bool;
}

type t = {
  m : Mutex.t;
  table : entry H.t;
  store : Plan_store.t option;
  max_bytes : int;
  mutable bytes : int;
  mutable clock : int;
  hits : int array;
  misses : int array;
  evictions : int array;
}

let create ?(max_bytes = 32 * 1024 * 1024) ?store ~domains () =
  if domains < 1 then invalid_arg "Plan_cache.create: domains < 1";
  {
    m = Mutex.create ();
    table = H.create 64;
    store;
    max_bytes = max 0 max_bytes;
    bytes = 0;
    clock = 0;
    hits = Array.make domains 0;
    misses = Array.make domains 0;
    evictions = Array.make domains 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Spill-then-drop: an evicted plan not yet on disk is written to the
   store first, so eviction demotes to the disk tier instead of
   discarding.  Lock order is cache -> store (never the reverse). *)
let evict_lru t ~worker =
  let victim =
    H.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, e) ->
      (match t.store with
      | Some st when not e.on_disk ->
          Plan_store.store st ~algo:k.algo ~engine:k.engine e.plan
      | _ -> ());
      H.remove t.table k;
      t.bytes <- t.bytes - e.size;
      t.evictions.(worker) <- t.evictions.(worker) + 1

let admit_locked t ~worker key plan ~on_disk =
  let size = Padr.Plan.bytes plan in
  if (not (H.mem t.table key)) && size <= t.max_bytes then begin
    H.replace t.table key { plan; size; stamp = t.clock; on_disk };
    t.clock <- t.clock + 1;
    t.bytes <- t.bytes + size;
    (* The fresh entry holds the newest stamp, so it is scanned past
       until everything older is gone — and the admission guard means
       the loop always terminates with the entry resident. *)
    while t.bytes > t.max_bytes do
      evict_lru t ~worker
    done
  end

let find t ~worker key =
  locked t (fun () ->
      match H.find_opt t.table key with
      | Some e ->
          e.stamp <- t.clock;
          t.clock <- t.clock + 1;
          t.hits.(worker) <- t.hits.(worker) + 1;
          Some e.plan
      | None -> (
          t.misses.(worker) <- t.misses.(worker) + 1;
          (* fault the miss from the disk tier; a disk hit is admitted
             to memory (already durable, so [on_disk]) and served *)
          match t.store with
          | None -> None
          | Some st -> (
              match
                Plan_store.find st ~algo:key.algo ~engine:key.engine
                  ~shape:key.shape ~base:key.base ~canon:key.canon
              with
              | None -> None
              | Some plan ->
                  admit_locked t ~worker key plan ~on_disk:true;
                  Some plan)))

let add t ~worker key plan =
  locked t (fun () -> admit_locked t ~worker key plan ~on_disk:false)

let flush t =
  locked t (fun () ->
      match t.store with
      | None -> ()
      | Some st ->
          H.iter
            (fun k e ->
              if not e.on_disk then begin
                Plan_store.store st ~algo:k.algo ~engine:k.engine e.plan;
                e.on_disk <- true
              end)
            t.table)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  max_bytes : int;
  per_domain : (int * int * int) array;
  store : Plan_store.stats option;
}

let stats t =
  locked t (fun () ->
      let sum = Array.fold_left ( + ) 0 in
      {
        hits = sum t.hits;
        misses = sum t.misses;
        evictions = sum t.evictions;
        entries = H.length t.table;
        bytes = t.bytes;
        max_bytes = t.max_bytes;
        per_domain =
          Array.init (Array.length t.hits) (fun i ->
              (t.hits.(i), t.misses.(i), t.evictions.(i)));
        store = Option.map Plan_store.stats t.store;
      })

let sections s =
  let total = s.hits + s.misses in
  let hit_pct =
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.hits /. float_of_int total
  in
  Stats.section "plan_cache"
    [
      ("hits", Stats.Int s.hits);
      ("lookups", Stats.Int total);
      ("hit_pct", Stats.Float hit_pct);
      ("evictions", Stats.Int s.evictions);
      ("entries", Stats.Int s.entries);
      ("bytes", Stats.Int s.bytes);
      ("max_bytes", Stats.Int s.max_bytes);
    ]
  ::
  (match s.store with None -> [] | Some st -> Plan_store.sections st)

let pp_stats fmt s = Stats.pp fmt (sections s)

(* On-disk LRU tier: a directory of Plan.Codec files named by cache
   key.  Recency lives in an in-memory stamp table seeded from mtimes
   at open and mirrored back to mtimes (best effort) on hits, so LRU
   order survives a reopen.  Every decode failure quarantines the file
   and reports a miss — corruption degrades to recompilation. *)

type entry = { mutable stamp : int; size : int }

type t = {
  dir : string;
  m : Mutex.t;
  table : (string, entry) Hashtbl.t; (* filename -> entry *)
  max_bytes : int;
  mutable bytes : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Registry algorithm names are short identifiers, but the filename
   grammar should not depend on that. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

(* [hash] is [Canon.hash_with ~shape_fp]: 0-fingerprint (binary) shapes
   produce the exact historical filenames, non-binary shapes get their
   fingerprint mixed in so the same set on different topologies never
   shares a file. *)
let filename ~algo ~engine ~leaves ~hash =
  Printf.sprintf "h%016x-%s-%c-l%d.plan" hash (sanitize algo)
    (if engine then 'e' else 's')
    leaves

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let evict_locked t =
  let victim =
    Hashtbl.fold
      (fun f e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (f, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (f, e) ->
      Hashtbl.remove t.table f;
      t.bytes <- t.bytes - e.size;
      t.evictions <- t.evictions + 1;
      (try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())

let open_dir ?(max_bytes = 256 * 1024 * 1024) dir =
  mkdir_p dir;
  let t =
    {
      dir;
      m = Mutex.create ();
      table = Hashtbl.create 64;
      max_bytes = max 0 max_bytes;
      bytes = 0;
      clock = 0;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
      corrupt = 0;
    }
  in
  let names = Sys.readdir dir in
  Array.sort compare names;
  Array.to_list names
  |> List.filter_map (fun f ->
         if not (Filename.check_suffix f ".plan") then None
         else
           match Unix.stat (Filename.concat dir f) with
           | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
               Some (f, st_size, st_mtime)
           | _ | (exception Unix.Unix_error _) -> None)
  |> List.sort (fun (f1, _, m1) (f2, _, m2) ->
         match compare (m1 : float) m2 with
         | 0 -> compare f1 f2
         | c -> c)
  |> List.iter (fun (f, size, _) ->
         Hashtbl.replace t.table f { stamp = t.clock; size };
         t.clock <- t.clock + 1;
         t.bytes <- t.bytes + size);
  while t.bytes > t.max_bytes && Hashtbl.length t.table > 0 do
    evict_locked t
  done;
  t

let dir t = t.dir

let quarantine_locked t f e =
  Hashtbl.remove t.table f;
  t.bytes <- t.bytes - e.size;
  t.corrupt <- t.corrupt + 1;
  let path = Filename.concat t.dir f in
  try Sys.rename path (path ^ ".corrupt")
  with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ())

let find t ~algo ~engine ~shape ~base ~canon =
  let leaves = Cst.Shape.leaves shape in
  let shape_fp = Cst.Shape.fingerprint shape in
  let f =
    filename ~algo ~engine ~leaves ~hash:(Cst.Canon.hash_with ~shape_fp canon)
  in
  locked t (fun () ->
      match Hashtbl.find_opt t.table f with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some e -> (
          let path = Filename.concat t.dir f in
          match Padr.Plan.Codec.read_file ~path with
          | exception Sys_error _ ->
              (* vanished underneath us: drop the index entry *)
              Hashtbl.remove t.table f;
              t.bytes <- t.bytes - e.size;
              t.misses <- t.misses + 1;
              None
          | Error _ ->
              quarantine_locked t f e;
              t.misses <- t.misses + 1;
              None
          | Ok plan ->
              if
                Cst.Canon.equal plan.canon canon
                && Cst.Shape.equal plan.shape shape
                && (shape_fp = 0 || plan.base = base)
                && (plan.producer = Padr.Plan.Engine) = engine
              then begin
                e.stamp <- t.clock;
                t.clock <- t.clock + 1;
                (* mirror recency to the filesystem; 0.0 = "now" *)
                (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
                t.hits <- t.hits + 1;
                Some plan
              end
              else begin
                (* hash collision (or a foreign file under our name):
                   a plain miss, never a wrong plan *)
                t.misses <- t.misses + 1;
                None
              end))

let store t ~algo ~engine (plan : Padr.Plan.t) =
  let size = Padr.Plan.Codec.encoded_bytes plan in
  if size <= t.max_bytes then
    let f =
      filename ~algo ~engine ~leaves:plan.leaves
        ~hash:
          (Cst.Canon.hash_with
             ~shape_fp:(Cst.Shape.fingerprint plan.shape)
             plan.canon)
    in
    locked t (fun () ->
        let path = Filename.concat t.dir f in
        match Padr.Plan.Codec.write_file ~path plan with
        | exception Sys_error _ -> () (* best effort: disk tier only *)
        | () ->
            (match Hashtbl.find_opt t.table f with
            | Some old -> t.bytes <- t.bytes - old.size
            | None -> ());
            Hashtbl.replace t.table f { stamp = t.clock; size };
            t.clock <- t.clock + 1;
            t.bytes <- t.bytes + size;
            t.stores <- t.stores + 1;
            (* the fresh entry holds the newest stamp, so the loop
               terminates with it resident *)
            while t.bytes > t.max_bytes do
              evict_locked t
            done)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  entries : int;
  bytes : int;
  max_bytes : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        corrupt = t.corrupt;
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
        max_bytes = t.max_bytes;
      })

let sections s =
  let total = s.hits + s.misses in
  let hit_pct =
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.hits /. float_of_int total
  in
  [
    Stats.section "plan_store"
      [
        ("hits", Stats.Int s.hits);
        ("lookups", Stats.Int total);
        ("hit_pct", Stats.Float hit_pct);
        ("stores", Stats.Int s.stores);
        ("evictions", Stats.Int s.evictions);
        ("corrupt", Stats.Int s.corrupt);
        ("entries", Stats.Int s.entries);
        ("bytes", Stats.Int s.bytes);
        ("max_bytes", Stats.Int s.max_bytes);
      ];
  ]

let pp_stats fmt s = Stats.pp fmt (sections s)

(** One renderer for every service-side counter record.

    {!Plan_cache}, {!Plan_store}, the domain pool and the streaming
    scheduler each keep their own typed stats record; before this module
    each also kept its own formatter, and the CLI, the serve protocol and
    the bench harness re-rolled the JSON by hand.  Now every owner
    converts its record to neutral {!section}s ([Plan_cache.sections],
    [Plan_store.sections], [Stream.sections], {!throughput}) and the
    three consumers — [cstool --cache-stats], the serve [STATS] reply and
    [bench/main.ml] — print through {!pp} / {!to_json} / {!fields_to_json}
    from this single source. *)

type value = Int of int | Float of float | Bool of bool | String of string

type section = {
  name : string;  (** e.g. ["plan_cache"], ["stream"] *)
  fields : (string * value) list;  (** insertion order is print order *)
}

type t = section list

val section : string -> (string * value) list -> section

val throughput :
  jobs:int -> failed:int -> domains:int -> elapsed_s:float -> section
(** The service-throughput section shared by [cstool batch] and the
    bench: jobs, failures, domain count, wall seconds and jobs/sec. *)

val fields_to_json : (string * value) list -> string
(** One flat JSON object on one line: [{"k": v, ...}].  Floats render
    with enough digits to round-trip; strings are quoted and escaped. *)

val to_json : t -> string
(** One JSON object keyed by section name, each section a flat object
    ({!fields_to_json}), all on one line — the serve [STATS] reply. *)

val pp : Format.formatter -> t -> unit
(** Human-readable: one [name: k=v k=v ...] line per section. *)

val pp_value : Format.formatter -> value -> unit

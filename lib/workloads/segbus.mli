(** A segmentable bus and its compilation onto the CST.

    The segmentable bus is the fundamental reconfigurable architecture the
    paper's introduction cites: [n] PEs on a linear bus with a segment
    switch between each adjacent pair.  Opening switches cuts the bus into
    independent segments; within a segment, one writer per step drives the
    bus and one reader latches it.

    The communication requirement of one bus step is a set of one
    (writer, reader) pair per segment — disjoint intervals, hence a
    well-nested set of width 1 per orientation.  Compiling bus steps to
    CST schedules and comparing deliveries against the direct bus
    semantics is an end-to-end check of the paper's subsumption claim. *)

type t

val create : n:int -> t
(** All segment switches closed: one segment spanning the bus. *)

val n : t -> int

val cut : t -> int -> unit
(** Opens the switch between PE [i] and PE [i+1] ([0 <= i < n-1]). *)

val join : t -> int -> unit
val is_cut : t -> int -> bool

val segments : t -> (int * int) list
(** Inclusive [(lo, hi)] ranges, left to right. *)

val segment_of : t -> int -> int * int

type write = { writer : int; reader : int }

type error =
  | Cross_segment of write  (** writer and reader in different segments *)
  | Bus_contention of int  (** two writers in the segment of this PE *)
  | Self_write of write
  | Scheduler of Padr.error
      (** the CST scheduler rejected the compiled set — structurally
          impossible for sets built by {!to_comm_set}, but propagated as
          data rather than as a stringified exception *)

val pp_error : Format.formatter -> error -> unit

val run_bus : t -> write list -> ((int * int) list, error) result
(** Direct bus semantics: each writer drives its segment, its reader
    latches.  Returns (writer, reader) deliveries sorted by writer. *)

val to_comm_set : t -> write list -> (Cst_comm.Comm_set.t, error) result
(** The CST communication set of one bus step. *)

val run_on_cst : t -> write list -> (Padr.mixed, error) result
(** Compiles and schedules the step on a CST via {!Padr.schedule_mixed}.
    Deliveries ({!Padr.mixed_deliveries}) equal {!run_bus}'s. *)

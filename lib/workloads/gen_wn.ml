let comm src dst = Cst_comm.Comm.make ~src ~dst

let uniform rng ~n ~density =
  if n < 2 then invalid_arg "Gen_wn.uniform: n < 2";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Gen_wn.uniform: density out of [0,1]";
  let m = int_of_float (density *. float_of_int n /. 2.0) in
  let m = min m (n / 2) in
  if m = 0 then Cst_comm.Comm_set.empty ~n
  else begin
    (* Shuffle m opens and m closes, then rotate to the point after the
       prefix-sum minimum: the rotation is balanced (cycle lemma). *)
    let word = Array.init (2 * m) (fun i -> if i < m then 1 else -1) in
    Cst_util.Prng.shuffle rng word;
    let best_pos = ref 0 and best = ref 0 and acc = ref 0 in
    Array.iteri
      (fun i step ->
        acc := !acc + step;
        if !acc < !best then begin
          best := !acc;
          best_pos := i + 1
        end)
      word;
    let rotated = Array.init (2 * m) (fun i -> word.((i + !best_pos) mod (2 * m))) in
    (* Choose which PE positions carry tokens. *)
    let slots = Array.init n (fun i -> i) in
    Cst_util.Prng.shuffle rng slots;
    let chosen = Array.sub slots 0 (2 * m) in
    Array.sort compare chosen;
    let toks = Array.make n Cst_comm.Paren.Blank in
    Array.iteri
      (fun k pos ->
        toks.(pos) <-
          (if rotated.(k) = 1 then Cst_comm.Paren.Open else Cst_comm.Paren.Close))
      chosen;
    match Cst_comm.Paren.match_pairs toks with
    | Error e -> failwith ("Gen_wn.uniform: internal: " ^ e)
    | Ok pairs ->
        Cst_comm.Comm_set.create_exn ~n
          (List.map (fun (s, d) -> comm s d) pairs)
  end

let onion ~n ~width =
  if width < 1 || 2 * width > n then invalid_arg "Gen_wn.onion";
  let c = n / 2 in
  Cst_comm.Comm_set.create_exn ~n
    (List.init width (fun i -> comm (c - width + i) (c + width - 1 - i)))

let pairs ~n =
  if n < 2 then invalid_arg "Gen_wn.pairs";
  Cst_comm.Comm_set.create_exn ~n
    (List.init (n / 2) (fun i -> comm (2 * i) ((2 * i) + 1)))

let with_width rng ~n ~width =
  if width < 1 || 2 * width > n then invalid_arg "Gen_wn.with_width";
  if not (Cst_util.Bits.is_power_of_two n) then
    invalid_arg "Gen_wn.with_width: n must be a power of two";
  let c = n / 2 in
  let core =
    List.init width (fun i -> comm (c - width + i) (c + width - 1 - i))
  in
  (* Filler lives in tree-aligned blocks [c-2^{k+1}, c-2^k) and mirrored
     right-hand blocks, with 2^k >= width: such a block shares no directed
     link with the onion core, so filler of local width <= width keeps the
     total width exactly [width]. *)
  let k0 = Cst_util.Bits.ilog2 (Cst_util.Bits.ceil_pow2 width) in
  let fill_block lo size =
    if size < 2 then []
    else begin
      let depth = 1 + Cst_util.Prng.int rng (min width (size / 2)) in
      let off =
        if size > 2 * depth then
          Cst_util.Prng.int rng (size - (2 * depth) + 1)
        else 0
      in
      List.init depth (fun i ->
          comm (lo + off + i) (lo + off + (2 * depth) - 1 - i))
    end
  in
  let filler = ref [] in
  let k = ref k0 in
  while c - (1 lsl (!k + 1)) >= 0 do
    let size = 1 lsl !k in
    filler := fill_block (c - (2 * size)) size @ !filler;
    filler := fill_block (c + size) size @ !filler;
    incr k
  done;
  let set = Cst_comm.Comm_set.create_exn ~n (core @ !filler) in
  assert (Cst_comm.Width.width ~leaves:n set = width);
  set

let translate ~by set =
  let n = Cst_comm.Comm_set.n set in
  let shifted =
    Array.fold_right
      (fun (c : Cst_comm.Comm.t) acc ->
        let src = c.src + by and dst = c.dst + by in
        if src < 0 || src >= n || dst < 0 || dst >= n then
          invalid_arg
            (Printf.sprintf
               "Gen_wn.translate: %d->%d shifted by %d leaves [0, %d)" c.src
               c.dst by n);
        comm src dst :: acc)
      (Cst_comm.Comm_set.comms set)
      []
  in
  Cst_comm.Comm_set.create_exn ~n shifted

let tile ~copies set =
  if copies < 1 then invalid_arg "Gen_wn.tile: copies < 1";
  let n = Cst_comm.Comm_set.n set in
  let comms = Array.to_list (Cst_comm.Comm_set.comms set) in
  Cst_comm.Comm_set.create_exn ~n:(n * copies)
    (List.concat
       (List.init copies (fun k ->
            List.map
              (fun (c : Cst_comm.Comm.t) ->
                comm (c.src + (k * n)) (c.dst + (k * n)))
              comms)))

let nested_blocks rng ~n ~blocks ~depth =
  if blocks < 1 || depth < 1 then invalid_arg "Gen_wn.nested_blocks";
  let block_size = n / blocks in
  (* Each onion is centred on a boundary aligned to the next power of two
     above [depth], so the aligned subtree just left of the centre carries
     exactly [depth] crossings and the set's width equals [depth]. *)
  let align = Cst_util.Bits.ceil_pow2 depth in
  if block_size < 2 * align || block_size mod align <> 0 then
    invalid_arg "Gen_wn.nested_blocks: blocks too small for the depth";
  let comms =
    List.concat
      (List.init blocks (fun b ->
           let lo = b * block_size in
           let q =
             Cst_util.Prng.int_in rng 1 ((block_size / align) - 1)
           in
           let centre = lo + (q * align) in
           List.init depth (fun i ->
               comm (centre - depth + i) (centre + depth - 1 - i))))
  in
  Cst_comm.Comm_set.create_exn ~n comms

(** Open-loop arrival processes for the streaming scheduler.

    An arrival trace is a nondecreasing array of offsets in seconds from
    the trace start; the bench replays one against {!Cst_service.Stream}
    in wall time ("open loop": arrival times do not react to service
    times).  Both generators draw from {!Cst_util.Prng}, so a seed fully
    determines the trace. *)

type t = { times : float array }
(** [times.(0) = 0.]; nondecreasing. *)

val jobs : t -> int

val span : t -> float
(** Last arrival offset (0 for an empty trace). *)

val poisson : Cst_util.Prng.t -> rate:float -> jobs:int -> t
(** Memoryless arrivals: i.i.d. exponential inter-arrival gaps with mean
    [1. /. rate] seconds ([rate] arrivals per second, > 0). *)

val bursty :
  Cst_util.Prng.t ->
  burst:int ->
  gap:float ->
  ?within:float ->
  jobs:int ->
  unit ->
  t
(** ON-OFF arrivals: bursts of [burst/2 .. 3*burst/2] jobs (uniform,
    min 1) spaced [within] seconds apart (default 0: back-to-back),
    separated by OFF gaps drawn exponential with mean [gap] seconds.
    The shape that rewards coalescing: a δ-aware policy merges each
    burst into one epoch where [immediate] pays one reconfiguration per
    job. *)

val pp : Format.formatter -> t -> unit

(** Random well-nested communication-set generators.

    All generators are deterministic functions of the supplied PRNG and
    always produce valid right-oriented well-nested sets (property-checked
    in the test suite). *)

val uniform :
  Cst_util.Prng.t -> n:int -> density:float -> Cst_comm.Comm_set.t
(** Balanced random set: about [density * n / 2] communications
    ([0 <= density <= 1]).  A random balanced parenthesis word (cycle
    lemma on a shuffled open/close sequence) is interleaved with blanks at
    random PE positions. *)

val onion : n:int -> width:int -> Cst_comm.Comm_set.t
(** [width] nested communications straddling the centre of the PE range:
    [(c-width+i, c+width-1-i)].  Width exactly [width]; the adversarial
    pattern for per-round schedulers.  Requires [2*width <= n]. *)

val pairs : n:int -> Cst_comm.Comm_set.t
(** Adjacent pairs [(0,1), (2,3), ...] — width 1, the friendly extreme. *)

val with_width :
  Cst_util.Prng.t -> n:int -> width:int -> Cst_comm.Comm_set.t
(** A set whose width is exactly [width] (an onion core crossing the
    centre plus random filler whose congestion cannot exceed the core's;
    re-checked, with the filler thinned on the rare overshoot).  Requires
    [2*width <= n]. *)

val translate : by:int -> Cst_comm.Comm_set.t -> Cst_comm.Comm_set.t
(** Shifts every endpoint by [by] (possibly negative) over the same [n]
    PEs.  Raises [Invalid_argument] if any endpoint leaves [0, n).
    Always preserves well-nestedness; preserves the width whenever [by]
    is a multiple of the set's canonical alignment
    ({!Cst.Canon.align}), i.e. when the translation moves the set to a
    congruent tree-aligned block — the shifted-repeat traces the plan
    cache amortizes over. *)

val tile : copies:int -> Cst_comm.Comm_set.t -> Cst_comm.Comm_set.t
(** Lays [copies] disjoint copies of the set side by side over
    [copies * n] PEs, copy [k] shifted by [k * n].  Copies occupy
    disjoint leaf intervals, so no two share a directed tree link:
    well-nestedness and width are always preserved. *)

val nested_blocks :
  Cst_util.Prng.t -> n:int -> blocks:int -> depth:int -> Cst_comm.Comm_set.t
(** [blocks] disjoint onions of the given depth spread evenly over the PE
    range (clipped to what fits).  Width equals [depth] when it fits. *)

type gen = {
  name : string;
  description : string;
  make : Cst_util.Prng.t -> n:int -> Cst_comm.Comm_set.t;
}

let all =
  [
    {
      name = "uniform";
      description = "uniform random well-nested set, ~50% PEs busy";
      make = (fun rng ~n -> Gen_wn.uniform rng ~n ~density:0.5);
    };
    {
      name = "dense";
      description = "uniform random well-nested set, all PEs busy";
      make = (fun rng ~n -> Gen_wn.uniform rng ~n ~density:1.0);
    };
    {
      name = "sparse";
      description = "uniform random well-nested set, ~10% PEs busy";
      make = (fun rng ~n -> Gen_wn.uniform rng ~n ~density:0.1);
    };
    {
      name = "pairs";
      description = "adjacent pairs: width 1";
      make = (fun _ ~n -> Gen_wn.pairs ~n);
    };
    {
      name = "onion";
      description = "centre onion of width n/4";
      make = (fun _ ~n -> Gen_wn.onion ~n ~width:(max 1 (n / 4)));
    };
    {
      name = "full-onion";
      description = "maximum-width onion (width n/2)";
      make = (fun _ ~n -> Patterns.full_onion_exn ~n);
    };
    {
      name = "comb";
      description = "8 disjoint nests side by side";
      make =
        (fun _ ~n -> Patterns.comb_exn ~n ~teeth:(min 8 (max 1 (n / 2))));
    };
    {
      name = "staircase";
      description = "one boundary-hopping pair per tree level";
      make = (fun _ ~n -> Patterns.staircase_exn ~n);
    };
    {
      name = "flip-flop";
      description = "adversarial alternating nest";
      make = (fun _ ~n -> Adversarial.flip_flop ~n);
    };
    {
      name = "deep-staircase";
      description = "nested layers turning at every tree level";
      make = (fun _ ~n -> Adversarial.deep_staircase ~n);
    };
    {
      name = "segbus";
      description = "segmentable-bus neighbour writes";
      make = (fun _ ~n -> Patterns.segment_neighbors_exn ~n);
    };
    {
      name = "blocks";
      description = "4 random nested blocks of depth 4";
      make =
        (fun rng ~n ->
          let blocks = 4 and depth = min 4 (max 1 (n / 8)) in
          Gen_wn.nested_blocks rng ~n ~blocks ~depth);
    };
  ]

let find name = List.find_opt (fun g -> g.name = name) all
let names = List.map (fun g -> g.name) all

let comm src dst = Cst_comm.Comm.make ~src ~dst

let set ~n pairs = Cst_comm.Comm_set.create_exn ~n (List.map (fun (s, d) -> comm s d) pairs)

type error = { pattern : string; n : int; reason : string }

let pp_error fmt { pattern; n; reason } =
  Format.fprintf fmt "Patterns.%s rejects n = %d: %s" pattern n reason

let reject pattern n reason = Error { pattern; n; reason }

let exn_of_result pattern = function
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "Patterns.%s: %a" pattern pp_error e)

let fig2 () =
  set ~n:16
    [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13); (9, 10); (11, 12) ]

let fig3b () =
  (* Subtree T(u) covers PEs 0..7; s7,s6 pass above u while s4,s3 match
     d4,d3 at u.  c4 = (2,5) is the outermost communication matched at u;
     its source has the two pass-up sources to its left (x_s = 2) and its
     destination is the rightmost (x_d = 0), as in Definition 2. *)
  set ~n:16 [ (0, 14); (1, 13); (2, 5); (3, 4); (8, 11); (9, 10) ]

let interleaved_pairs ~n =
  if n < 4 then reject "interleaved_pairs" n "needs at least 4 PEs"
  else
    let rec go i acc =
      if i + 1 >= n then List.rev acc else go (i + 4) ((i, i + 1) :: acc)
    in
    Ok (set ~n (go 0 []))

let interleaved_pairs_exn ~n =
  exn_of_result "interleaved_pairs" (interleaved_pairs ~n)

let comb ~n ~teeth =
  if teeth < 1 || n / teeth < 2 then
    reject "comb" n
      (Printf.sprintf "needs at least 2 PEs per tooth (%d teeth)" teeth)
  else
    let tooth = n / teeth in
    let depth = tooth / 2 in
    Ok
      (set ~n
         (List.concat
            (List.init teeth (fun t ->
                 let lo = t * tooth in
                 List.init depth (fun i ->
                     (lo + i, lo + (2 * depth) - 1 - i))))))

let comb_exn ~n ~teeth = exn_of_result "comb" (comb ~n ~teeth)

let staircase ~n =
  if n < 4 || not (Cst_util.Bits.is_power_of_two n) then
    reject "staircase" n "needs a power-of-two n >= 4"
  else
    (* Communication k spans from PE 1 lsl k - ... build hops crossing ever
       higher switches: (2^k - 1, 2^k) for k = 1 .. log n - 1. *)
    let levels = Cst_util.Bits.ilog2 n in
    Ok
      (set ~n
         (List.init (levels - 1) (fun k ->
              ((1 lsl (k + 1)) - 1, 1 lsl (k + 1)))))

let staircase_exn ~n = exn_of_result "staircase" (staircase ~n)

let full_onion ~n =
  if n < 2 then reject "full_onion" n "needs at least 2 PEs"
  else Ok (set ~n (List.init (n / 2) (fun i -> (i, n - 1 - i))))

let full_onion_exn ~n = exn_of_result "full_onion" (full_onion ~n)

let segment_neighbors ~n =
  if n < 2 then reject "segment_neighbors" n "needs at least 2 PEs"
  else Ok (set ~n (List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1))))

let segment_neighbors_exn ~n =
  exn_of_result "segment_neighbors" (segment_neighbors ~n)

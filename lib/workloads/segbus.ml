type t = { n : int; cuts : bool array }

let create ~n =
  if n < 2 then invalid_arg "Segbus.create: n < 2";
  { n; cuts = Array.make (n - 1) false }

let n t = t.n

let check_switch t i =
  if i < 0 || i >= t.n - 1 then invalid_arg "Segbus: bad switch index"

let cut t i =
  check_switch t i;
  t.cuts.(i) <- true

let join t i =
  check_switch t i;
  t.cuts.(i) <- false

let is_cut t i =
  check_switch t i;
  t.cuts.(i)

let segments t =
  let acc = ref [] and lo = ref 0 in
  for i = 0 to t.n - 2 do
    if t.cuts.(i) then begin
      acc := (!lo, i) :: !acc;
      lo := i + 1
    end
  done;
  List.rev ((!lo, t.n - 1) :: !acc)

let segment_of t pe =
  if pe < 0 || pe >= t.n then invalid_arg "Segbus.segment_of";
  List.find (fun (lo, hi) -> pe >= lo && pe <= hi) (segments t)

type write = { writer : int; reader : int }

type error =
  | Cross_segment of write
  | Bus_contention of int
  | Self_write of write
  | Scheduler of Padr.error

let pp_error fmt = function
  | Cross_segment w ->
      Format.fprintf fmt
        "write %d->%d spans two bus segments" w.writer w.reader
  | Bus_contention pe ->
      Format.fprintf fmt "two writers drive the segment of PE %d" pe
  | Self_write w -> Format.fprintf fmt "PE %d writes to itself" w.writer
  | Scheduler e ->
      Format.fprintf fmt "CST scheduling failed: %a" Padr.pp_error e

let validate t writes =
  let rec go seen = function
    | [] -> Ok ()
    | w :: rest ->
        if w.writer = w.reader then Error (Self_write w)
        else
          let seg_w = segment_of t w.writer in
          let seg_r = segment_of t w.reader in
          if seg_w <> seg_r then Error (Cross_segment w)
          else if List.mem seg_w seen then Error (Bus_contention w.writer)
          else go (seg_w :: seen) rest
  in
  go [] writes

let run_bus t writes =
  match validate t writes with
  | Error e -> Error e
  | Ok () ->
      Ok
        (List.sort compare
           (List.map (fun w -> (w.writer, w.reader)) writes))

let to_comm_set t writes =
  match validate t writes with
  | Error e -> Error e
  | Ok () ->
      Ok
        (Cst_comm.Comm_set.create_exn ~n:t.n
           (List.map
              (fun w -> Cst_comm.Comm.make ~src:w.writer ~dst:w.reader)
              writes))

let run_on_cst t writes =
  match to_comm_set t writes with
  | Error e -> Error e
  | Ok set -> (
      match Padr.schedule_mixed set with
      | Ok mixed -> Ok mixed
      | Error e ->
          (* Disjoint segments always produce schedulable parts, so this
             is unreachable for sets built by [to_comm_set]; if it ever
             fires, the caller gets the scheduler's structured error
             rather than a stringified [Invalid_argument]. *)
          Error (Scheduler e))

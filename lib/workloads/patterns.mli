(** Fixed, named communication patterns, including the paper's figures.

    Parameterized constructors validate their PE-count arguments and
    return a typed {!error} instead of raising, so a malformed request
    arriving through an external surface (CLI, batch service client)
    stays data; the [*_exn] variants keep the raising behaviour for
    callers with known-good arguments (the workload {!Suite}, tests). *)

type error = { pattern : string; n : int; reason : string }
(** [pattern] rejects [n] PEs: [reason]. *)

val pp_error : Format.formatter -> error -> unit

val fig2 : unit -> Cst_comm.Comm_set.t
(** The shape of the paper's Figure 2: a right-oriented well-nested set
    with an enclosing communication, nested siblings and an idle gap, over
    16 PEs. *)

val fig3b : unit -> Cst_comm.Comm_set.t
(** The configuration of Figure 3(b) used by Definitions 1-2: sources
    [s7 < s6 < s4 < s3] and destinations [d4 < d3] inside one subtree, the
    outer communications leaving it.  Realized over 16 PEs with the outer
    destinations to the right. *)

val interleaved_pairs : n:int -> (Cst_comm.Comm_set.t, error) result
(** [(0,1) (2,3) ...] alternated with gaps — width 1.  Needs [n >= 4]. *)

val interleaved_pairs_exn : n:int -> Cst_comm.Comm_set.t

val comb : n:int -> teeth:int -> (Cst_comm.Comm_set.t, error) result
(** [teeth] disjoint same-depth nests side by side; width equals the
    depth of one tooth ([n / (2 * teeth)]). *)

val comb_exn : n:int -> teeth:int -> Cst_comm.Comm_set.t

val staircase : n:int -> (Cst_comm.Comm_set.t, error) result
(** Nested set whose i-th layer hops one subtree boundary more than the
    previous one: exercises pass-through routing at every level.  Needs a
    power-of-two [n >= 4]. *)

val staircase_exn : n:int -> Cst_comm.Comm_set.t

val full_onion : n:int -> (Cst_comm.Comm_set.t, error) result
(** Maximum-width onion: [(i, n-1-i)] for all [i < n/2]; width [n/2]. *)

val full_onion_exn : n:int -> Cst_comm.Comm_set.t

val segment_neighbors : n:int -> (Cst_comm.Comm_set.t, error) result
(** [(i, i+1)] for even [i] — the segmentable-bus neighbour pattern the
    paper's introduction cites as subsumed by well-nested sets. *)

val segment_neighbors_exn : n:int -> Cst_comm.Comm_set.t

type t = { times : float array }

let jobs t = Array.length t.times
let span t = if jobs t = 0 then 0.0 else t.times.(jobs t - 1)

(* Inverse-CDF exponential draw; [Prng.float rng 1.0] is in [0, 1), so
   the argument of [log] stays in (0, 1]. *)
let exp_draw rng ~mean = -.mean *. log (1.0 -. Cst_util.Prng.float rng 1.0)

let poisson rng ~rate ~jobs =
  if rate <= 0.0 then invalid_arg "Arrivals.poisson: rate must be positive";
  if jobs < 0 then invalid_arg "Arrivals.poisson: negative job count";
  let mean = 1.0 /. rate in
  let t = ref 0.0 in
  {
    times =
      Array.init jobs (fun i ->
          if i > 0 then t := !t +. exp_draw rng ~mean;
          !t);
  }

let bursty rng ~burst ~gap ?(within = 0.0) ~jobs () =
  if burst < 1 then invalid_arg "Arrivals.bursty: burst must be >= 1";
  if gap < 0.0 || within < 0.0 then
    invalid_arg "Arrivals.bursty: negative time";
  if jobs < 0 then invalid_arg "Arrivals.bursty: negative job count";
  let times = Array.make (max jobs 0) 0.0 in
  let t = ref 0.0 and i = ref 0 in
  while !i < jobs do
    let size =
      max 1 (Cst_util.Prng.int_in rng (burst - (burst / 2)) (3 * burst / 2))
    in
    let size = min size (jobs - !i) in
    for k = 0 to size - 1 do
      if k > 0 then t := !t +. within;
      times.(!i) <- !t;
      incr i
    done;
    if !i < jobs then t := !t +. exp_draw rng ~mean:gap
  done;
  { times }

let pp fmt t =
  Format.fprintf fmt "@[<h>%d arrival(s) over %.6fs@]" (jobs t) (span t)

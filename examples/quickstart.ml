(* Quickstart: build a communication set, schedule it with the power-aware
   CSA, inspect the rounds, the established paths and the power ledger.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A right-oriented well-nested set over 16 PEs, in two equivalent
     notations: explicit pairs or a parenthesis string (paper Figure 2). *)
  let set =
    match Cst_comm.Paren.of_string "((.)(.))(()).(.)" with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf "communication set: %a@." Cst_comm.Comm_set.pp set;
  Format.printf "as parentheses:    %s@." (Cst_comm.Paren.to_string set);
  Format.printf "width:             %d@.@." (Cst_comm.Width.width_auto set);
  Format.printf "%s@." (Cst_report.Arc_diagram.render_set set);

  (* Schedule it.  [Padr.schedule] picks the smallest adequate CST.
     Passing a log captures the canonical execution record — every
     derived view (trace, power, digest) reads from it. *)
  let log = Cst.Exec_log.create () in
  let sched =
    match Padr.schedule ~log set with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Padr.pp_error e)
  in
  Format.printf "%a@." Padr.Schedule.pp sched;

  (* Every claim of the paper is checkable on the result. *)
  let report = Padr.verify sched in
  Format.printf "verification: %a@.@." Padr.Verify.pp_report report;

  (* Who goes when, as arc diagrams. *)
  Format.printf "--- rounds ---@.%s@."
    (Cst_report.Arc_diagram.render_rounds
       ~n:(Cst_comm.Comm_set.n set)
       (Array.to_list sched.rounds
       |> List.map (fun (r : Padr.Schedule.round) -> (r.index, r.deliveries))));

  (* The trace narrates the execution log, round by round. *)
  Format.printf "--- event trace ---@.%a@." Cst.Trace.pp (Cst.Trace.of_log log);
  Format.printf "log: %d events, digest %s@.@." (Cst.Exec_log.length log)
    (Cst.Exec_log.digest log);

  (* Physical paths of round 1, straight from the data plane. *)
  let topo = Cst.Topology.create ~leaves:sched.leaves in
  let net = Cst.Net.create topo in
  Array.iter
    (fun (node, cfg) -> Cst.Net.reconfigure net ~node cfg)
    sched.rounds.(0).configs;
  Format.printf "--- round 1 paths ---@.";
  List.iter
    (fun src ->
      let hops, dst = Cst.Data_plane.trace_from net ~src in
      Format.printf "PE %d" src;
      List.iter
        (fun (h : Cst.Data_plane.hop) ->
          Format.printf " -> sw%d(%a>%a)" h.node Cst.Side.pp h.input
            Cst.Side.pp h.output)
        hops;
      match dst with
      | Some d -> Format.printf " -> PE %d@." d
      | None -> Format.printf " -> (dead end)@.")
    sched.rounds.(0).sources

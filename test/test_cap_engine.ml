open Helpers

(* The capacity-aware allocator on generalized shapes: the rounds =
   ceil(width/c) bound on controlled traces, digest identity between
   the sequential spec run and the segment-parallel engine across
   shapes and domain counts, exact binary reproduction on capacity-1
   ladders, and the shape-fingerprint codec header. *)

let fat level_sizes capacities =
  Result.get_ok (Cst.Shape.fat_tree ~level_sizes ~capacities)

let width_on topo set =
  Cst_comm.Width.width_on
    ~parent:(Cst.Topology.parent_table topo)
    ~first_leaf:(Cst.Topology.first_leaf topo)
    ~cap:(Cst.Topology.cap_table topo)
    set

let onion = Cst_workloads.Gen_wn.onion

let capacity_cases =
  [
    case "fat tree cuts rounds by the uplink capacity" (fun () ->
        (* 8 centre-straddling pairs: width 8 on the binary tree, and a
           capacity-c leaf tier admits c of them per round. *)
        let set = onion ~n:64 ~width:8 in
        List.iter
          (fun (c, expect) ->
            let topo =
              Cst.Topology.of_shape (fat [| 64; 8 |] [| c; c |])
            in
            let sched, _ = Padr.Cap_engine.run_exn topo set in
            check_int
              (Printf.sprintf "width at cap %d" c)
              expect (width_on topo set);
            check_int
              (Printf.sprintf "rounds at cap %d" c)
              expect
              (Padr.Schedule.num_rounds sched))
          [ (1, 8); (2, 4); (4, 2); (8, 1) ]);
    case "deliveries equal the matching on every shape" (fun () ->
        let set = onion ~n:27 ~width:5 in
        List.iter
          (fun shape ->
            let topo = Cst.Topology.of_shape shape in
            let sched, _ = Padr.Cap_engine.run_exn topo set in
            check_true "all delivered"
              (Padr.Schedule.all_deliveries sched
              = Cst_comm.Comm_set.matching set))
          [ Cst.Shape.kary ~k:3 ~leaves:27; fat [| 27; 3 |] [| 2; 1 |] ]);
    case "verifier accepts capacity schedules" (fun () ->
        let set = onion ~n:64 ~width:6 in
        let topo = Cst.Topology.of_shape (fat [| 64; 16 |] [| 3; 3 |]) in
        let sched, _ = Padr.Cap_engine.run_exn topo set in
        let report =
          Padr.Verify.schedule ~check_rounds_optimal:false topo set sched
        in
        check_true
          ("verifies: " ^ String.concat "; " report.issues)
          report.ok);
    case "capacity-1 ladder reproduces the binary engine exactly"
      (fun () ->
        let n = 32 in
        let rng = Cst_util.Prng.create 42 in
        let set = Cst_workloads.Gen_wn.uniform rng ~n ~density:0.7 in
        let ladder = fat [| 32; 16; 8; 4; 2 |] [| 1; 1; 1; 1; 1 |] in
        check_true "ladder is binary" (Cst.Shape.is_binary ladder);
        let dig topo =
          let log = Cst.Exec_log.create () in
          ignore (Padr.Csa.run_exn ~log topo set);
          Cst.Exec_log.digest log
        in
        Alcotest.(check string)
          "digests equal"
          (dig (Cst.Topology.create ~leaves:n))
          (dig (Cst.Topology.of_shape ladder)));
  ]

let engine_vs_par =
  [
    case "par engine is digest-identical across shapes and domains"
      (fun () ->
        List.iter
          (fun shape ->
            let topo = Cst.Topology.of_shape shape in
            let n = Cst.Shape.leaves shape in
            let rng =
              Cst_util.Prng.create (17 + Cst.Shape.fingerprint shape)
            in
            let set =
              Cst_workloads.Gen_wn.uniform rng ~n ~density:0.6
            in
            let ref_log = Cst.Exec_log.create () in
            ignore (Padr.Csa.run_exn ~log:ref_log topo set);
            let ref_digest = Cst.Exec_log.digest ref_log in
            List.iter
              (fun domains ->
                let log = Cst.Exec_log.create () in
                match Padr.Par_engine.run ~domains ~log topo set with
                | Error e ->
                    Alcotest.failf "%s at %d domains: %s"
                      (Cst.Shape.to_string shape)
                      domains
                      (Format.asprintf "%a" Padr.Csa.pp_error e)
                | Ok _ ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s at %d domains"
                         (Cst.Shape.to_string shape)
                         domains)
                      ref_digest
                      (Cst.Exec_log.digest log))
              [ 1; 2; 4 ])
          [
            Cst.Shape.binary ~leaves:64;
            Cst.Shape.kary ~k:4 ~leaves:64;
            fat [| 64; 8 |] [| 2; 2 |];
            fat [| 48; 6 |] [| 2; 3 |];
          ]);
  ]

let codec_cases =
  [
    case "shape fingerprint rides the log codec header" (fun () ->
        let shape = fat [| 64; 8 |] [| 2; 2 |] in
        let topo = Cst.Topology.of_shape shape in
        let set = onion ~n:64 ~width:4 in
        let log = Cst.Exec_log.create () in
        ignore (Padr.Csa.run_exn ~log topo set);
        let fp = Cst.Shape.fingerprint shape in
        let b = Cst.Exec_log.Codec.encode ~shape_fp:fp log in
        (match Cst.Exec_log.Codec.shape_fp b with
        | Ok got -> check_int "fingerprint read back" fp got
        | Error e ->
            Alcotest.failf "shape_fp: %a" Cst.Exec_log.Codec.pp_error e);
        match Cst.Exec_log.Codec.decode b with
        | Ok (decoded, _) ->
            Alcotest.(check string)
              "decoded digest"
              (Cst.Exec_log.digest log)
              (Cst.Exec_log.digest decoded)
        | Error e ->
            Alcotest.failf "decode: %a" Cst.Exec_log.Codec.pp_error e);
    case "binary logs keep the historical v1 layout" (fun () ->
        let topo = Cst.Topology.create ~leaves:16 in
        let set = onion ~n:16 ~width:3 in
        let log = Cst.Exec_log.create () in
        ignore (Padr.Csa.run_exn ~log topo set);
        let b = Cst.Exec_log.Codec.encode ~shape_fp:0 log in
        check_int "v1 size"
          (Cst.Exec_log.Codec.header_bytes + (8 * Cst.Exec_log.length log))
          (Bytes.length b);
        check_true "fingerprint reads as 0"
          (Cst.Exec_log.Codec.shape_fp b = Ok 0));
  ]

let suite = capacity_cases @ engine_vs_par @ codec_cases

(* Binary codecs: the event-log and plan serializations round-trip
   losslessly, decoded plans replay digest-identical to fresh runs, and
   every corruption mode surfaces as a typed error. *)

open Helpers

module LC = Cst.Exec_log.Codec
module PC = Padr.Plan.Codec

let sample_log n pairs =
  let log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log (topo n) (set ~n pairs));
  log

let roundtrip_empty () =
  let log = Cst.Exec_log.create () in
  let b = LC.encode log in
  check_int "empty encoding is just the header" LC.header_bytes
    (Bytes.length b);
  match LC.decode b with
  | Error e -> Alcotest.failf "empty round trip: %a" LC.pp_error e
  | Ok (d, consumed) ->
      check_int "consumed everything" (Bytes.length b) consumed;
      check_int "no events" 0 (Cst.Exec_log.length d)

let roundtrip_log () =
  let log = sample_log 8 [ (0, 3); (1, 2); (4, 7) ] in
  let b = LC.encode ~canon_hash:0x1234 log in
  check_int "encoded_bytes matches" (LC.encoded_bytes log) (Bytes.length b);
  (match LC.canon_hash b with
  | Ok h -> check_int "canon hash preserved" 0x1234 h
  | Error e -> Alcotest.failf "canon_hash: %a" LC.pp_error e);
  match LC.decode b with
  | Error e -> Alcotest.failf "round trip: %a" LC.pp_error e
  | Ok (d, _) ->
      check_int "length preserved" (Cst.Exec_log.length log)
        (Cst.Exec_log.length d);
      check_true "digest preserved"
        (Cst.Exec_log.digest d = Cst.Exec_log.digest log)

let log_errors () =
  let log = sample_log 8 [ (0, 3); (1, 2) ] in
  let b = LC.encode log in
  (* truncation: too short for the header, and too short for the arena *)
  (match LC.decode (Bytes.sub b 0 7) with
  | Error (LC.Truncated _) -> ()
  | _ -> Alcotest.fail "7-byte buffer must be Truncated");
  (match LC.decode (Bytes.sub b 0 (Bytes.length b - 3)) with
  | Error (LC.Truncated _) -> ()
  | _ -> Alcotest.fail "clipped arena must be Truncated");
  (* magic *)
  let m = Bytes.copy b in
  Bytes.set m 0 'X';
  (match LC.decode m with
  | Error LC.Bad_magic -> ()
  | _ -> Alcotest.fail "wrong magic must be Bad_magic");
  (* version *)
  let v = Bytes.copy b in
  Bytes.set v 8 '\099';
  (match LC.decode v with
  | Error (LC.Unsupported_version { found = 99; expected }) ->
      check_int "expected version" LC.version expected
  | _ -> Alcotest.fail "version 99 must be Unsupported_version");
  (* arena flip: low bit of a word changes the digest *)
  let c = Bytes.copy b in
  let pos = LC.header_bytes in
  Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor 1));
  (match LC.decode c with
  | Error LC.Digest_mismatch -> ()
  | _ -> Alcotest.fail "flipped arena bit must be Digest_mismatch");
  (* a stored word with the top byte's high bit set cannot be an OCaml
     int that [encode] produced: Bad_word, never silent wraparound *)
  let w = Bytes.copy b in
  let top = LC.header_bytes + 7 in
  Bytes.set w top (Char.chr (Char.code (Bytes.get w top) lor 0x80));
  (match LC.decode w with
  | Error (LC.Bad_word { index = 0 }) -> ()
  | Error LC.Digest_mismatch ->
      Alcotest.fail "top-bit corruption must be Bad_word, not digest"
  | _ -> Alcotest.fail "top-bit corruption must be Bad_word")

let canon_offsets () =
  let placed = Cst.Canon.place (set ~n:8 [ (1, 6); (2, 5) ]) in
  let align = Cst.Canon.align placed.canon in
  let offs = Cst.Canon.offsets placed.canon in
  check_true "round trip equals"
    (Cst.Canon.equal placed.canon (Cst.Canon.of_offsets ~align offs));
  check_raises_invalid "non-power-of-two align" (fun () ->
      Cst.Canon.of_offsets ~align:6 offs);
  check_raises_invalid "endpoint out of range" (fun () ->
      Cst.Canon.of_offsets ~align:2 offs);
  check_raises_invalid "src = dst" (fun () ->
      Cst.Canon.of_offsets ~align:2 [| (1, 1) |]);
  check_raises_invalid "unsorted sources" (fun () ->
      Cst.Canon.of_offsets ~align:8 [| (4, 5); (1, 2) |]);
  check_raises_invalid "non-minimal align" (fun () ->
      (* fits entirely in the left half: a 4-block would contain it *)
      Cst.Canon.of_offsets ~align:8 [| (0, 1); (2, 3) |]);
  check_raises_invalid "non-empty offsets need their align" (fun () ->
      Cst.Canon.of_offsets ~align:1 [| (0, 1) |])

let plan_roundtrip () =
  let n = 16 in
  let s = set ~n [ (0, 7); (1, 6); (8, 15) ] in
  let plan =
    Result.get_ok (Padr.Plan.compile ~producer:Padr.Plan.Engine (topo n) s)
  in
  let b = PC.encode plan in
  check_int "encoded_bytes matches" (PC.encoded_bytes plan) (Bytes.length b);
  match PC.decode b with
  | Error e -> Alcotest.failf "plan round trip: %a" PC.pp_error e
  | Ok d ->
      check_true "producer" (d.producer = plan.producer);
      check_int "leaves" plan.leaves d.leaves;
      check_int "rounds" plan.rounds d.rounds;
      check_int "cycles" plan.cycles d.cycles;
      check_int "control messages" plan.control_messages d.control_messages;
      check_true "canon" (Cst.Canon.equal plan.canon d.canon);
      check_true "log digest"
        (Cst.Exec_log.digest d.log = Cst.Exec_log.digest plan.log)

let plan_errors () =
  let n = 16 in
  let s = set ~n [ (0, 7); (1, 6); (8, 15) ] in
  let plan =
    Result.get_ok (Padr.Plan.compile ~producer:Padr.Plan.Engine (topo n) s)
  in
  let b = PC.encode plan in
  (match PC.decode (Bytes.sub b 0 40) with
  | Error (PC.Truncated _) -> ()
  | _ -> Alcotest.fail "clipped plan header must be Truncated");
  let m = Bytes.copy b in
  Bytes.set m 3 '?';
  (match PC.decode m with
  | Error PC.Bad_magic -> ()
  | _ -> Alcotest.fail "wrong plan magic must be Bad_magic");
  let v = Bytes.copy b in
  Bytes.set v 8 '\042';
  (match PC.decode v with
  | Error (PC.Unsupported_version { found = 42; _ }) -> ()
  | _ -> Alcotest.fail "plan version 42 must be Unsupported_version");
  (* flip a header byte below the meta digest: Digest_mismatch *)
  let h = Bytes.copy b in
  Bytes.set h 16 (Char.chr (Char.code (Bytes.get h 16) lxor 1));
  (match PC.decode h with
  | Error PC.Digest_mismatch -> ()
  | _ -> Alcotest.fail "flipped header byte must be Digest_mismatch");
  (* splice: a valid log section whose canon hash names another set
     must be Canon_mismatch, not a quietly mislabeled plan *)
  let other =
    Result.get_ok
      (Padr.Plan.compile ~producer:Padr.Plan.Engine (topo n)
         (set ~n [ (2, 13) ]))
  in
  let ob = PC.encode other in
  let n_off = Cst.Canon.size plan.canon in
  let log_pos = 80 + (8 * n_off) in
  let spliced =
    Bytes.cat (Bytes.sub b 0 log_pos)
      (Bytes.sub ob (80 + (8 * Cst.Canon.size other.canon))
         (Bytes.length ob - 80 - (8 * Cst.Canon.size other.canon)))
  in
  match PC.decode spliced with
  | Error (PC.Canon_mismatch | PC.Truncated _ | PC.Bad_field _) -> ()
  | Ok _ -> Alcotest.fail "spliced log section must not decode"
  | Error e -> Alcotest.failf "splice: unexpected error %a" PC.pp_error e

let prop_replay_fresh =
  prop "decoded plan replays digest-identical to a fresh run" ~count:200
    (fun ((_, n_exp, _) as params) ->
      let s = set_of_params params in
      let n = 1 lsl n_exp in
      let t = topo n in
      let fresh = Cst.Exec_log.create () in
      ignore (Padr.Engine.run_exn ~log:fresh t s);
      match Padr.Plan.compile ~producer:Padr.Plan.Engine t s with
      | Error _ -> false
      | Ok plan -> (
          match PC.decode (PC.encode plan) with
          | Error _ -> false
          | Ok d ->
              let r = Padr.Plan.replay ~keep_configs:false d t s in
              Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh))

let prop_log_roundtrip =
  prop "event-log codec round trip preserves digest and length" ~count:200
    (fun ((_, n_exp, _) as params) ->
      let s = set_of_params params in
      let n = 1 lsl n_exp in
      let log = Cst.Exec_log.create () in
      ignore (Padr.Engine.run_exn ~log (topo n) s);
      match LC.decode (LC.encode log) with
      | Error _ -> false
      | Ok (d, _) ->
          Cst.Exec_log.digest d = Cst.Exec_log.digest log
          && Cst.Exec_log.length d = Cst.Exec_log.length log)

let suite =
  [
    case "empty log round trip" roundtrip_empty;
    case "log round trip" roundtrip_log;
    case "log corruption is typed" log_errors;
    case "canon offsets round trip and validation" canon_offsets;
    case "plan round trip" plan_roundtrip;
    case "plan corruption is typed" plan_errors;
    prop_replay_fresh;
    prop_log_roundtrip;
  ]

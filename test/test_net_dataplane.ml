open Helpers
open Cst

(* Manually configure the path 0 -> 7 on an 8-leaf CST and check that the
   data plane follows it hop by hop. *)
let meter net =
  Power_meter.of_log ~num_nodes:(Topology.num_nodes (Net.topology net))
    (Net.log net)

let configure_0_to_7 net =
  let cfg ~output ~input = Switch_config.set Switch_config.empty ~output ~input in
  Net.reconfigure net ~node:4 (cfg ~output:Side.P ~input:Side.L);
  Net.reconfigure net ~node:2 (cfg ~output:Side.P ~input:Side.L);
  Net.reconfigure net ~node:1 (cfg ~output:Side.R ~input:Side.L);
  Net.reconfigure net ~node:3 (cfg ~output:Side.R ~input:Side.P);
  Net.reconfigure net ~node:7 (cfg ~output:Side.R ~input:Side.P)

let test_route_full_path () =
  let net = Net.create (topo 8) in
  configure_0_to_7 net;
  check_true "0 routes to 7" (Data_plane.route net ~src:0 = Some 7)

let test_trace_hops () =
  let net = Net.create (topo 8) in
  configure_0_to_7 net;
  let hops, dst = Data_plane.trace_from net ~src:0 in
  check_true "delivered" (dst = Some 7);
  check_int "five switches" 5 (List.length hops);
  let nodes = List.map (fun (h : Data_plane.hop) -> h.node) hops in
  check_true "path order" (nodes = [ 4; 2; 1; 3; 7 ])

let test_route_dead_end () =
  let net = Net.create (topo 8) in
  check_true "unconfigured dead end" (Data_plane.route net ~src:0 = None)

let test_route_partial_dead_end () =
  let net = Net.create (topo 8) in
  Net.reconfigure net ~node:4
    (Switch_config.set Switch_config.empty ~output:Side.P ~input:Side.L);
  check_true "stops at node 2" (Data_plane.route net ~src:0 = None)

let test_route_to_root_parent_is_dead () =
  let net = Net.create (topo 8) in
  Net.reconfigure net ~node:4
    (Switch_config.set Switch_config.empty ~output:Side.P ~input:Side.L);
  Net.reconfigure net ~node:2
    (Switch_config.set Switch_config.empty ~output:Side.P ~input:Side.L);
  Net.reconfigure net ~node:1
    (Switch_config.set Switch_config.empty ~output:Side.P ~input:Side.L);
  (* the root's parent output leads nowhere *)
  check_true "root p_o is a dead end" (Data_plane.route net ~src:0 = None)

let test_neighbor_route () =
  let net = Net.create (topo 8) in
  Net.reconfigure net ~node:4
    (Switch_config.set Switch_config.empty ~output:Side.R ~input:Side.L);
  check_true "0 to 1" (Data_plane.route net ~src:0 = Some 1)

let test_transfer_moves_data () =
  let net = Net.create (topo 8) in
  configure_0_to_7 net;
  Net.pe_write net ~pe:0 4242;
  let deliveries = Data_plane.transfer net ~sources:[ 0 ] in
  check_true "delivery list" (deliveries = [ (0, 7) ]);
  check_true "register latched" (Net.pe_read net ~pe:7 = Some 4242);
  check_true "other registers empty" (Net.pe_read net ~pe:3 = None)

let test_transfer_silent_source () =
  let net = Net.create (topo 8) in
  check_true "no route, no delivery"
    (Data_plane.transfer net ~sources:[ 0 ] = [])

let test_power_charged () =
  let net = Net.create (topo 8) in
  configure_0_to_7 net;
  check_int "five connects" 5 (Power_meter.total_connects (meter net));
  check_int "five writes" 5 (Power_meter.total_writes (meter net));
  (* identical reconfiguration costs no transition but pays writes *)
  configure_0_to_7 net;
  check_int "still five connects" 5 (Power_meter.total_connects (meter net));
  check_int "writes doubled" 10 (Power_meter.total_writes (meter net))

let test_lazy_reconfigure_writes () =
  let net = Net.create (topo 8) in
  let want = Switch_config.set Switch_config.empty ~output:Side.P ~input:Side.L in
  Net.reconfigure_lazy net ~node:4 ~want;
  Net.reconfigure_lazy net ~node:4 ~want;
  check_int "one write only" 1 (Power_meter.total_writes (meter net));
  Net.reconfigure_lazy net ~node:4 ~want:Switch_config.empty;
  check_true "connection persists"
    (Switch_config.driver (Net.config net 4) Side.P = Some Side.L);
  check_int "still one write" 1 (Power_meter.total_writes (meter net))

let test_clear_all () =
  let net = Net.create (topo 8) in
  configure_0_to_7 net;
  Net.clear_all net;
  for node = 1 to 7 do
    check_true "cleared" (Switch_config.is_empty (Net.config net node))
  done;
  check_int "disconnects charged" 5
    (Power_meter.total_disconnects (meter net))

let test_register_reset () =
  let net = Net.create (topo 8) in
  Net.pe_write net ~pe:3 7;
  Net.pe_deliver net ~pe:2 9;
  Net.reset_registers net;
  check_int "out cleared" 0 (Net.pe_out net ~pe:3);
  check_true "in cleared" (Net.pe_read net ~pe:2 = None)

let test_bad_indices () =
  let net = Net.create (topo 8) in
  check_raises_invalid "leaf is not a switch" (fun () -> Net.config net 8);
  check_raises_invalid "bad pe" (fun () -> Net.pe_write net ~pe:8 0)

let suite =
  [
    case "route full path" test_route_full_path;
    case "trace hops" test_trace_hops;
    case "route dead end" test_route_dead_end;
    case "route partial dead end" test_route_partial_dead_end;
    case "root parent is dead" test_route_to_root_parent_is_dead;
    case "neighbor route" test_neighbor_route;
    case "transfer moves data" test_transfer_moves_data;
    case "transfer silent source" test_transfer_silent_source;
    case "power charged" test_power_charged;
    case "lazy reconfigure writes" test_lazy_reconfigure_writes;
    case "clear all" test_clear_all;
    case "register reset" test_register_reset;
    case "bad indices" test_bad_indices;
  ]

open Helpers

(* The execution log as single source of truth: packing round-trips,
   derived views agree with the schedules every producer returns, the
   digest canonicalizes producer-specific event orders, and the
   Theorem 8 quantities (Lemmas 6/7) are checkable straight off the
   log. *)

(* --- encoding ------------------------------------------------------- *)

let sample_events =
  Cst.Exec_log.
    [
      Phase_done { levels = 10 };
      Round_begin { index = 1 };
      Connect { node = 513; out_port = Cst.Side.P; in_port = Cst.Side.L };
      Disconnect { node = 513; out_port = Cst.Side.P; in_port = Cst.Side.L };
      Write_config { node = 7; count = 3 };
      Deliver { src = 0; dst = 1_000_000 };
      Round_begin { index = 1_000_000_000 };
      Run_end { rounds = 1_000_000_000 };
    ]

let test_roundtrip () =
  let log = Cst.Exec_log.create ~capacity:1 () in
  List.iter (Cst.Exec_log.append log) sample_events;
  check_int "length" (List.length sample_events) (Cst.Exec_log.length log);
  check_int "bytes" (8 * List.length sample_events)
    (Cst.Exec_log.bytes_used log);
  List.iteri
    (fun i ev ->
      check_true
        (Printf.sprintf "event %d round-trips" i)
        (Cst.Exec_log.event log i = ev))
    sample_events

let test_field_range_checked () =
  let log = Cst.Exec_log.create () in
  check_raises_invalid "node too large" (fun () ->
      Cst.Exec_log.write_config log ~node:(1 lsl 20) ~count:0);
  check_raises_invalid "negative src" (fun () ->
      Cst.Exec_log.deliver log ~src:(-1) ~dst:0)

let test_sub_and_cursors () =
  let log = Cst.Exec_log.create () in
  List.iter (Cst.Exec_log.append log) sample_events;
  let cursor = 3 in
  let tail = Cst.Exec_log.sub log ~from:cursor in
  check_int "sub length"
    (List.length sample_events - cursor)
    (Cst.Exec_log.length tail);
  check_true "sub contents"
    (Cst.Exec_log.event tail 0 = Cst.Exec_log.event log cursor);
  check_true "digest of suffix = digest of sub"
    (Cst.Exec_log.digest ~from:cursor log = Cst.Exec_log.digest tail)

(* --- derived views agree with every producer ------------------------ *)

(* Independent re-derivation of the power totals: a plain fold over the
   events, sharing no code with [Power_meter.of_log]. *)
let naive_power log =
  Cst.Exec_log.fold log ~init:(0, 0, 0) ~f:(fun (c, d, w) ev ->
      match ev with
      | Cst.Exec_log.Connect _ -> (c + 1, d, w)
      | Cst.Exec_log.Disconnect _ -> (c, d + 1, w)
      | Cst.Exec_log.Write_config { count; _ } -> (c, d, w + count)
      | _ -> (c, d, w))

let rounds_of_log log =
  List.rev
    (Cst.Exec_log.fold_rounds log ~init:[] ~f:(fun acc rv -> rv :: acc))

let agrees name (sched : Padr.Schedule.t) log =
  let c, d, w = naive_power log in
  if sched.power.total_connects <> c then
    QCheck.Test.fail_reportf "%s: connects %d <> log %d" name
      sched.power.total_connects c;
  if sched.power.total_disconnects <> d then
    QCheck.Test.fail_reportf "%s: disconnects %d <> log %d" name
      sched.power.total_disconnects d;
  if sched.power.total_writes <> w then
    QCheck.Test.fail_reportf "%s: writes %d <> log %d" name
      sched.power.total_writes w;
  let views = rounds_of_log log in
  if Array.length sched.rounds <> List.length views then
    QCheck.Test.fail_reportf "%s: %d rounds <> log %d" name
      (Array.length sched.rounds) (List.length views);
  List.iteri
    (fun i (rv : Cst.Exec_log.round_view) ->
      let r = sched.rounds.(i) in
      if r.index <> rv.index then
        QCheck.Test.fail_reportf "%s: round %d index mismatch" name i;
      if r.deliveries <> rv.deliveries then
        QCheck.Test.fail_reportf "%s: round %d deliveries mismatch" name i;
      if r.configs <> Array.of_list rv.live then
        QCheck.Test.fail_reportf "%s: round %d configs mismatch" name i)
    views;
  true

let prop_views_equal_schedule params =
  let set = set_of_params params in
  let topo = Padr.topology_for set in
  let ran =
    List.map
      (fun (a : Cst_baselines.Registry.algo) ->
        let log = Cst.Exec_log.create () in
        let sched = a.run ~log topo set in
        agrees a.name sched log)
      (Cst_baselines.Registry.capable ~supports:`Well_nested ())
  in
  let engine_log = Cst.Exec_log.create () in
  let engine_sched, _ = Padr.Engine.run_exn ~log:engine_log topo set in
  let dense_log = Cst.Exec_log.create () in
  let dense_sched, _ = Padr.Engine.run_dense_exn ~log:dense_log topo set in
  List.for_all Fun.id ran
  && agrees "engine" engine_sched engine_log
  && agrees "engine-dense" dense_sched dense_log

(* --- digest canonicalization ---------------------------------------- *)

let prop_digest_spec_equals_engine params =
  let set = set_of_params params in
  let topo = Padr.topology_for set in
  let spec = Cst.Exec_log.create () in
  ignore (Padr.Csa.run_exn ~log:spec topo set);
  let eng = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log:eng topo set);
  (* The engine discovers switches in DFS preorder, the spec scheduler
     in ascending node id: the canonical digest must not see the
     difference. *)
  Cst.Exec_log.digest spec = Cst.Exec_log.digest eng

let test_digest_distinguishes_runs () =
  let log_of pairs =
    let log = Cst.Exec_log.create () in
    ignore (Padr.Csa.run_exn ~log (topo 8) (set ~n:8 pairs));
    log
  in
  let a = log_of [ (0, 7); (1, 2) ] and b = log_of [ (0, 7); (2, 3) ] in
  check_true "different runs, different digests"
    (Cst.Exec_log.digest a <> Cst.Exec_log.digest b);
  check_true "digest is deterministic"
    (Cst.Exec_log.digest a = Cst.Exec_log.digest (log_of [ (0, 7); (1, 2) ]))

(* --- Theorem 8 checker (Lemmas 6/7) --------------------------------- *)

let max_alternations log leaves =
  let worst = ref 0 in
  for node = 0 to leaves - 1 do
    worst := max !worst (Cst.Exec_log.driver_alternations log ~node)
  done;
  !worst

(* On arbitrary random sets the implemented CSA can exceed the
   idealized Lemma 6/7 constant of 2 (its round order on a chain is
   driven by the per-switch index matching, not strictly
   outermost-first), but the count stays a small width-independent
   constant — the same envelope [Verify.default_power_bound] already
   documents for per-switch connects (observed max: 5 alternations over
   ~3000 runs up to 16384 PEs). *)
let prop_csa_alternations_bounded params =
  let set = set_of_params params in
  let topo = Padr.topology_for set in
  let log = Cst.Exec_log.create () in
  ignore (Padr.Csa.run_exn ~log topo set);
  let worst = max_alternations log (Cst.Topology.leaves topo) in
  if worst > Padr.Verify.default_power_bound then
    QCheck.Test.fail_reportf
      "CSA alternated a driver %d times (envelope is %d)" worst
      Padr.Verify.default_power_bound;
  true

(* The Lemma 6/7 constant itself, on width-controlled families: as the
   width grows 2 -> 256 the CSA's worst port alternates at most twice. *)
let test_csa_alternations_flat_in_width () =
  let n = 1024 in
  let topo = Cst.Topology.create ~leaves:n in
  List.iter
    (fun w ->
      let rng = Cst_util.Prng.create (100 + w) in
      let s = Cst_workloads.Gen_wn.with_width rng ~n ~width:w in
      let log = Cst.Exec_log.create () in
      ignore (Padr.Csa.run_exn ~log topo s);
      let worst = max_alternations log n in
      check_true
        (Printf.sprintf "<= 2 alternations at width %d (got %d)" w worst)
        (worst <= 2))
    [ 2; 4; 8; 16; 32; 64; 128; 256 ]

(* Adversarial family for the Roy-style comparator: a chain of [w]
   nested communications, where a private blocker stack under each
   chain member forces its greedy ID, so consecutive rounds draw their
   source from alternating halves of the source region.  The switch
   over that region re-acquires a different driver nearly every round:
   width - 1 alternations, against the CSA's constant 2.  (The set is
   right-oriented but crossing — exactly the inputs ID colouring
   accepts and the CSA's well-nested analysis excludes.) *)
let roy_adversary ~w =
  let bs =
    let rec up k = if k >= (2 * w) + 2 then k else up (2 * k) in
    up 2
  in
  let n = 2 * w * bs in
  let round_of i = if i <= w / 2 then (2 * i) - 1 else 2 * (i - (w / 2)) in
  let comms = ref [] in
  for i = 1 to w do
    let a = ((w - i) * bs) + (bs / 2) - 1 in
    comms := (a, n - 1 - w + i) :: !comms;
    for j = 1 to round_of i - 1 do
      comms := (a - j, a + j) :: !comms
    done
  done;
  (n, set ~n !comms)

let test_roy_alternations_grow_with_width () =
  let alt_at w =
    let n, s = roy_adversary ~w in
    let topo = Cst.Topology.create ~leaves:n in
    let log = Cst.Exec_log.create () in
    let sched = Cst_baselines.Roy_id.run ~log topo s in
    check_int
      (Printf.sprintf "width %d realized" w)
      w sched.width;
    max_alternations log n
  in
  List.iter
    (fun w ->
      check_int
        (Printf.sprintf "roy-id alternates width-1 times at w=%d" w)
        (w - 1) (alt_at w))
    [ 4; 8; 16 ]

let suite =
  [
    case "events round-trip the packing" test_roundtrip;
    case "field ranges checked" test_field_range_checked;
    case "sub and cursor digests" test_sub_and_cursors;
    prop "derived views equal schedule (all producers)" ~count:200
      prop_views_equal_schedule;
    prop "digest canonical across spec/engine" ~count:60
      prop_digest_spec_equals_engine;
    case "digest distinguishes runs" test_digest_distinguishes_runs;
    prop "CSA driver alternations O(1) on random sets" ~count:150
      prop_csa_alternations_bounded;
    case "CSA alternations <= 2 across widths (Lemma 6/7)"
      test_csa_alternations_flat_in_width;
    case "roy-id alternations grow with width"
      test_roy_alternations_grow_with_width;
  ]

open Helpers

let t8 = topo 8

let test_create_invalid () =
  check_raises_invalid "not power of two" (fun () -> Cst.Topology.create ~leaves:6);
  check_raises_invalid "too small" (fun () -> Cst.Topology.create ~leaves:1);
  check_raises_invalid "negative" (fun () -> Cst.Topology.create ~leaves:(-4))

let test_counts () =
  check_int "leaves" 8 (Cst.Topology.leaves t8);
  check_int "levels" 3 (Cst.Topology.levels t8);
  check_int "nodes" 15 (Cst.Topology.num_nodes t8)

let test_leaf_mapping () =
  for pe = 0 to 7 do
    let node = Cst.Topology.node_of_pe t8 pe in
    check_true "is leaf" (Cst.Topology.is_leaf t8 node);
    check_int "round trip" pe (Cst.Topology.pe_of_node t8 node)
  done;
  check_raises_invalid "bad pe" (fun () -> Cst.Topology.node_of_pe t8 8);
  check_raises_invalid "internal not pe" (fun () -> Cst.Topology.pe_of_node t8 3)

let test_parent_children () =
  check_int "left of root" 2 (Cst.Topology.left t8 1);
  check_int "right of root" 3 (Cst.Topology.right t8 1);
  check_int "parent" 1 (Cst.Topology.parent t8 2);
  check_int "parent of leaf" 4 (Cst.Topology.parent t8 8);
  check_raises_invalid "parent of root" (fun () -> Cst.Topology.parent t8 1);
  check_raises_invalid "children of leaf" (fun () -> Cst.Topology.left t8 9)

let test_child_side () =
  check_true "even is left" (Cst.Topology.child_side t8 2 = Cst.Side.L);
  check_true "odd is right" (Cst.Topology.child_side t8 3 = Cst.Side.R);
  check_true "leaf side" (Cst.Topology.child_side t8 9 = Cst.Side.R);
  check_raises_invalid "root has no side" (fun () -> Cst.Topology.child_side t8 1)

let test_levels () =
  check_int "root level" 3 (Cst.Topology.level t8 1);
  check_int "leaf level" 0 (Cst.Topology.level t8 8);
  check_int "mid level" 1 (Cst.Topology.level t8 7)

let test_lca () =
  check_int "siblings" 4 (Cst.Topology.lca t8 8 9);
  check_int "across root" 1 (Cst.Topology.lca t8 8 15);
  check_int "self" 10 (Cst.Topology.lca t8 10 10);
  check_int "ancestor" 2 (Cst.Topology.lca t8 2 11)

let test_interval () =
  check_true "root" (Cst.Topology.interval t8 1 = (0, 8));
  check_true "node 5" (Cst.Topology.interval t8 5 = (2, 4));
  check_true "leaf 13" (Cst.Topology.interval t8 13 = (5, 6))

let test_mid () =
  check_int "root mid" 4 (Cst.Topology.mid t8 1);
  check_int "node 5 mid" 3 (Cst.Topology.mid t8 5);
  check_raises_invalid "leaf mid" (fun () -> Cst.Topology.mid t8 8)

let test_path_to_root () =
  check_true "from leaf" (Cst.Topology.path_to_root t8 11 = [ 11; 5; 2; 1 ]);
  check_true "from root" (Cst.Topology.path_to_root t8 1 = [ 1 ])

let test_internal_iteration () =
  let seq = List.of_seq (Cst.Topology.internal_nodes t8) in
  check_true "breadth-first ids" (seq = [ 1; 2; 3; 4; 5; 6; 7 ]);
  let seen = ref [] in
  Cst.Topology.iter_internal_bottom_up t8 (fun v -> seen := v :: !seen);
  (* every parent must appear after both children in bottom-up order *)
  List.iteri
    (fun i v ->
      if v >= 2 then
        let parent_pos =
          match List.find_index (fun x -> x = v / 2) (List.rev !seen) with
          | Some p -> p
          | None -> -1
        in
        check_true "parent after child" (parent_pos > i))
    (List.rev !seen)

let test_mirror_node () =
  check_int "root fixed" 1 (Cst.Topology.mirror_node t8 1);
  check_int "left child to right" 3 (Cst.Topology.mirror_node t8 2);
  check_int "right child to left" 2 (Cst.Topology.mirror_node t8 3);
  check_int "leaf 0 to leaf 7" 15 (Cst.Topology.mirror_node t8 8);
  (* involution over all nodes *)
  for v = 1 to 15 do
    check_int "involution" v
      (Cst.Topology.mirror_node t8 (Cst.Topology.mirror_node t8 v))
  done

let test_mirror_node_interval () =
  for v = 1 to 15 do
    let lo, hi = Cst.Topology.interval t8 v in
    let lo', hi' = Cst.Topology.interval t8 (Cst.Topology.mirror_node t8 v) in
    check_int "reflected lo" (8 - hi) lo';
    check_int "reflected hi" (8 - lo) hi'
  done

(* Brute-force pinning of the depth-table-backed operations, for every
   node of every tree size in {2, 4, ..., 256}.  The references use only
   first-principles definitions (child recursion, linear search), never
   the formulas under test. *)

let sizes = [ 2; 4; 8; 16; 32; 64; 128; 256 ]

let brute_interval t v =
  let rec go v =
    if Cst.Topology.is_leaf t v then
      let p = Cst.Topology.pe_of_node t v in
      (p, p + 1)
    else
      let llo, _ = go (Cst.Topology.left t v) in
      let _, rhi = go (Cst.Topology.right t v) in
      (llo, rhi)
  in
  go v

let brute_level t v =
  (* distance to a leaf by walking left children *)
  let rec go v acc =
    if Cst.Topology.is_leaf t v then acc
    else go (Cst.Topology.left t v) (acc + 1)
  in
  go v 0

let test_interval_bruteforce () =
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      for v = 1 to Cst.Topology.num_nodes t do
        check_true
          (Printf.sprintf "interval leaves=%d v=%d" leaves v)
          (Cst.Topology.interval t v = brute_interval t v)
      done)
    sizes

let test_mid_bruteforce () =
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      for v = 1 to leaves - 1 do
        (* definition: first leaf of the right child's subtree *)
        let expect = fst (brute_interval t (Cst.Topology.right t v)) in
        check_int
          (Printf.sprintf "mid leaves=%d v=%d" leaves v)
          expect (Cst.Topology.mid t v)
      done)
    sizes

let test_mirror_bruteforce () =
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      for v = 1 to Cst.Topology.num_nodes t do
        (* definition: the same-level node covering the reflected interval,
           found by linear search *)
        let lo, hi = brute_interval t v in
        let target = (leaves - hi, leaves - lo) in
        let found = ref 0 in
        for u = 1 to Cst.Topology.num_nodes t do
          if
            brute_level t u = brute_level t v
            && brute_interval t u = target
          then found := u
        done;
        check_int
          (Printf.sprintf "mirror leaves=%d v=%d" leaves v)
          !found
          (Cst.Topology.mirror_node t v)
      done)
    sizes

let test_lca_bruteforce () =
  let brute_lca t a b =
    (* deepest node whose interval contains both leaves' intervals *)
    let pa = Cst.Topology.path_to_root t a
    and pb = Cst.Topology.path_to_root t b in
    let common = List.filter (fun v -> List.mem v pb) pa in
    List.hd common
  in
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      let n = Cst.Topology.num_nodes t in
      (* all pairs on small trees, a deterministic stride sample above *)
      let step = if n <= 63 then 1 else 13 in
      let a = ref 1 in
      while !a <= n do
        let b = ref 1 in
        while !b <= n do
          check_int
            (Printf.sprintf "lca leaves=%d (%d,%d)" leaves !a !b)
            (brute_lca t !a !b)
            (Cst.Topology.lca t !a !b);
          b := !b + step
        done;
        a := !a + step
      done)
    sizes

let test_level_table () =
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      for v = 1 to Cst.Topology.num_nodes t do
        check_int
          (Printf.sprintf "level leaves=%d v=%d" leaves v)
          (brute_level t v) (Cst.Topology.level t v);
        check_int "level_u agrees" (Cst.Topology.level t v)
          (Cst.Topology.level_u t v);
        check_int "depth_u complements level"
          (Cst.Topology.levels t - Cst.Topology.level t v)
          (Cst.Topology.depth_u t v)
      done)
    sizes

let test_unchecked_children () =
  let t = Cst.Topology.create ~leaves:64 in
  for v = 1 to 63 do
    check_int "left_u" (Cst.Topology.left t v) (Cst.Topology.left_u v);
    check_int "right_u" (Cst.Topology.right t v) (Cst.Topology.right_u v)
  done;
  for v = 2 to Cst.Topology.num_nodes t do
    check_int "parent_u" (Cst.Topology.parent t v) (Cst.Topology.parent_u v)
  done

let test_level_buckets () =
  List.iter
    (fun leaves ->
      let t = Cst.Topology.create ~leaves in
      let seen = Array.make (Cst.Topology.num_nodes t + 1) false in
      for lvl = 0 to Cst.Topology.levels t do
        let bucket = Cst.Topology.nodes_at_level t lvl in
        Array.iteri
          (fun i v ->
            check_int
              (Printf.sprintf "bucket level leaves=%d v=%d" leaves v)
              lvl (Cst.Topology.level t v);
            check_true "bucket is fresh" (not seen.(v));
            seen.(v) <- true;
            if i > 0 then
              check_true "bucket increasing" (bucket.(i - 1) < v))
          bucket
      done;
      (* every node appears in exactly one bucket *)
      for v = 1 to Cst.Topology.num_nodes t do
        check_true "bucket covers" seen.(v)
      done)
    sizes

let prop_lca_interval =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"lca interval contains both leaves"
       QCheck.(pair (int_bound 63) (int_bound 63))
       (fun (a, b) ->
         let t = topo 64 in
         let na = Cst.Topology.node_of_pe t a
         and nb = Cst.Topology.node_of_pe t b in
         let l = Cst.Topology.lca t na nb in
         let lo, hi = Cst.Topology.interval t l in
         a >= lo && a < hi && b >= lo && b < hi))

let prop_interval_parent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"child intervals partition the parent"
       QCheck.(int_range 1 31)
       (fun v ->
         let t = topo 32 in
         if Cst.Topology.is_leaf t v then true
         else
           let lo, hi = Cst.Topology.interval t v in
           let llo, lhi = Cst.Topology.interval t (Cst.Topology.left t v) in
           let rlo, rhi = Cst.Topology.interval t (Cst.Topology.right t v) in
           llo = lo && lhi = rlo && rhi = hi
           && rlo = Cst.Topology.mid t v))

let suite =
  [
    case "create invalid" test_create_invalid;
    case "counts" test_counts;
    case "leaf mapping" test_leaf_mapping;
    case "parent/children" test_parent_children;
    case "child side" test_child_side;
    case "levels" test_levels;
    case "lca" test_lca;
    case "interval" test_interval;
    case "mid" test_mid;
    case "path to root" test_path_to_root;
    case "internal iteration order" test_internal_iteration;
    case "mirror node" test_mirror_node;
    case "mirror node intervals" test_mirror_node_interval;
    case "interval vs brute force" test_interval_bruteforce;
    case "mid vs brute force" test_mid_bruteforce;
    case "mirror vs brute force" test_mirror_bruteforce;
    case "lca vs brute force" test_lca_bruteforce;
    case "level table" test_level_table;
    case "unchecked accessors" test_unchecked_children;
    case "level buckets" test_level_buckets;
    prop_lca_interval;
    prop_interval_parent;
  ]

open Helpers
module Service = Cst_service.Service
module Stream = Cst_service.Stream
module Admission = Cst_service.Admission
module Stats = Cst_service.Stats
module Arrivals = Cst_workloads.Arrivals

(* A manual clock: the stream reads it on submit/tick/commit and from
   worker domains on completion, so tests control every timestamp the
   admission policy sees. *)
let manual_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun t -> now := t)

(* --- admission decision boundary ------------------------------------ *)

let view ?(jobs = 1) ?(opened = 0.0) ?(wait = 0.0) ?(width = 1) () :
    Admission.queue_view =
  { jobs; opened; accumulated_wait = wait; width }

let check_decision msg (expected : bool) actual = check_bool msg expected actual

let test_immediate_policy () =
  check_decision "empty epoch never commits" true
    (Admission.decide Admission.Immediate ~now:5.0 (view ~jobs:0 ()) = Wait);
  check_decision "one job commits" true
    (Admission.decide Admission.Immediate ~now:0.0 (view ()) = Commit)

let test_quantum_boundary () =
  let p = Admission.Quantum 1.0 in
  check_decision "just below the quantum waits" true
    (Admission.decide p ~now:0.999 (view ~opened:0.0 ()) = Wait);
  check_decision "at the quantum commits" true
    (Admission.decide p ~now:1.0 (view ~opened:0.0 ()) = Commit);
  check_decision "past the quantum commits" true
    (Admission.decide p ~now:7.5 (view ~opened:6.0 ()) = Commit);
  check_decision "empty epoch waits regardless" true
    (Admission.decide p ~now:9.0 (view ~jobs:0 ~opened:0.0 ()) = Wait)

let test_delta_boundary () =
  let p = Admission.Delta_threshold { delta = 2.0; max_width = None } in
  check_decision "accumulated wait below delta waits" true
    (Admission.decide p ~now:1.0 (view ~jobs:2 ~wait:1.999 ()) = Wait);
  check_decision "accumulated wait at delta commits" true
    (Admission.decide p ~now:1.0 (view ~jobs:2 ~wait:2.0 ()) = Commit);
  check_decision "accumulated wait above delta commits" true
    (Admission.decide p ~now:1.0 (view ~jobs:4 ~wait:3.5 ()) = Commit);
  let capped = Admission.Delta_threshold { delta = 1e9; max_width = Some 5 } in
  check_decision "width at the cap waits" true
    (Admission.decide capped ~now:1.0 (view ~width:5 ()) = Wait);
  check_decision "width above the cap commits" true
    (Admission.decide capped ~now:1.0 (view ~width:6 ()) = Commit)

let test_policy_strings () =
  let roundtrip s =
    match Admission.of_string s with
    | Ok p -> check_bool ("round-trips " ^ s) true (Admission.to_string p = s)
    | Error e -> Alcotest.failf "of_string %S: %s" s e
  in
  List.iter roundtrip [ "immediate"; "quantum:0.5"; "delta:16"; "delta:2:8" ];
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true
        (Result.is_error (Admission.of_string s)))
    [ ""; "never"; "quantum"; "quantum:x"; "delta:-1"; "delta:1:0"; "delta:1:2:3" ]

(* --- the tentpole property ------------------------------------------ *)

(* Streaming must not change what the hardware does: for any arrival
   trace, any admission policy and any domain count, the drained
   outcomes (digest, rounds, power — the whole canonical line) equal the
   closed-batch run of the same jobs. *)

let algo_names = [ "csa"; "csa"; "roy-id"; "depth"; "not-an-algo" ]

let random_stream_job rng i =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 4) in
  let set =
    match Cst_util.Prng.int rng 4 with
    | 0 ->
        let density = 0.1 +. Cst_util.Prng.float rng 0.9 in
        Cst_workloads.Gen_wn.uniform rng ~n ~density
    | 1 ->
        Cst_workloads.Gen_arbitrary.random_pairs rng ~n ~pairs:(max 1 (n / 4))
    | _ -> Cst_workloads.Gen_wn.pairs ~n
  in
  let algo =
    List.nth algo_names (Cst_util.Prng.int rng (List.length algo_names))
  in
  let engine =
    match Cst_util.Prng.int rng 6 with
    | 0 -> Service.Message_passing
    | 1 -> Service.Segmented
    | _ -> Service.Spec
  in
  Service.job ~engine ~id:i ~algo set

let policies =
  [
    Admission.Immediate;
    Admission.Quantum 0.3;
    Admission.Delta_threshold { delta = 0.5; max_width = None };
    Admission.Delta_threshold { delta = 1e9; max_width = Some 4 };
  ]

let test_stream_equals_batch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"stream outcomes = closed batch, any policy and domain count"
       QCheck.(
         triple (int_bound 1_000_000)
           (int_range 0 (List.length policies - 1))
           (int_range 0 2))
       (fun (seed, policy_idx, domain_idx) ->
         let domains = [| 1; 2; 4 |].(domain_idx) in
         let policy = List.nth policies policy_idx in
         let rng = Cst_util.Prng.create seed in
         let jobs = List.init 12 (random_stream_job rng) in
         let trace = Arrivals.poisson rng ~rate:10.0 ~jobs:12 in
         let clock, set_time = manual_clock () in
         let st = Stream.create ~domains ~policy ~clock () in
         List.iteri
           (fun i job ->
             set_time trace.times.(i);
             Stream.submit st job;
             (* ticking between arrivals is how time-based policies
                commit; interleave some to exercise that path *)
             if i mod 3 = 2 then begin
               set_time (trace.times.(i) +. 0.05);
               Stream.tick st
             end)
           jobs;
         let streamed = Stream.drain st in
         Stream.shutdown st;
         let batch = Service.run ~domains:1 jobs in
         List.map
           (fun ((o : Service.outcome), _) -> Service.outcome_to_string o)
           streamed
         = List.map Service.outcome_to_string batch))

(* --- epoch mechanics (manual clock, deterministic) ------------------- *)

let wn_job ~id ~n pairs = Service.job ~id ~algo:"csa" (set ~n pairs)

let test_immediate_epochs () =
  let clock, set_time = manual_clock () in
  let st = Stream.create ~domains:1 ~clock () in
  for i = 0 to 4 do
    set_time (float_of_int i);
    Stream.submit st (wn_job ~id:i ~n:8 [ (0, 3); (1, 2) ])
  done;
  let outs = Stream.drain st in
  let s = Stream.stats st in
  Stream.shutdown st;
  check_int "one outcome per job" 5 (List.length outs);
  check_int "immediate: one epoch per job" 5 s.epochs;
  check_int "nothing coalesced" 0 s.coalesced_jobs;
  check_bool "recon power = delta * epochs" true
    (s.recon_power = s.recon_delta *. 5.0);
  List.iteri
    (fun i ((_ : Service.outcome), (tm : Stream.timing)) ->
      check_int "distinct epoch ids" i tm.epoch;
      check_bool "committed at arrival" true (tm.committed = tm.arrival))
    outs

let test_quantum_coalesces () =
  let clock, set_time = manual_clock () in
  let st = Stream.create ~domains:1 ~policy:(Admission.Quantum 1.0) ~clock () in
  set_time 0.0;
  Stream.submit st (wn_job ~id:0 ~n:8 [ (0, 1) ]);
  set_time 0.2;
  Stream.submit st (wn_job ~id:1 ~n:8 [ (2, 3) ]);
  set_time 0.9;
  Stream.tick st;
  check_int "quantum not elapsed: no epoch yet" 0 (Stream.stats st).epochs;
  set_time 1.0;
  Stream.tick st;
  let s = Stream.stats st in
  check_int "quantum elapsed: one epoch" 1 s.epochs;
  check_int "both jobs coalesced" 2 s.coalesced_jobs;
  let outs = Stream.drain st in
  Stream.shutdown st;
  List.iter
    (fun ((_ : Service.outcome), (tm : Stream.timing)) ->
      check_int "shared epoch" 0 tm.epoch;
      check_bool "committed at the tick" true (tm.committed = 1.0))
    outs

let test_delta_ski_rental () =
  let policy = Admission.Delta_threshold { delta = 1.0; max_width = None } in
  let clock, set_time = manual_clock () in
  let st = Stream.create ~domains:1 ~policy ~clock () in
  set_time 0.0;
  Stream.submit st (wn_job ~id:0 ~n:8 [ (0, 1) ]);
  set_time 0.2;
  Stream.submit st (wn_job ~id:1 ~n:8 [ (2, 3) ]);
  (* accumulated wait at t: (t - 0) + (t - 0.2); reaches 1.0 at t=0.6 *)
  set_time 0.55;
  Stream.tick st;
  check_int "wait below delta: open" 0 (Stream.stats st).epochs;
  set_time 0.6;
  Stream.tick st;
  check_int "wait reached delta: committed" 1 (Stream.stats st).epochs;
  ignore (Stream.drain st);
  Stream.shutdown st

let test_width_cap_flushes () =
  (* Each set has width 2; merging two would reach 4 > cap 2, so the
     second submit flushes the first epoch instead of exceeding it. *)
  let policy = Admission.Delta_threshold { delta = 1e9; max_width = Some 2 } in
  let clock, set_time = manual_clock () in
  let st = Stream.create ~domains:1 ~policy ~clock () in
  set_time 0.0;
  Stream.submit st (wn_job ~id:0 ~n:4 [ (0, 3); (1, 2) ]);
  check_int "first job fits under the cap" 0 (Stream.stats st).epochs;
  Stream.submit st (wn_job ~id:1 ~n:4 [ (0, 3); (1, 2) ]);
  check_int "second would exceed the cap: flushed" 1 (Stream.stats st).epochs;
  ignore (Stream.drain st);
  let s = Stream.stats st in
  Stream.shutdown st;
  check_int "two singleton epochs" 2 s.epochs;
  check_bool "merged width never exceeded the cap" true (s.max_epoch_width <= 2)

let test_disjoint_blocks_coalesce () =
  (* Members confined to disjoint aligned subtrees: merged width = max,
     and the epoch is counted disjoint. *)
  let clock, set_time = manual_clock () in
  let st =
    Stream.create ~domains:1 ~policy:(Admission.Quantum 10.0) ~clock ()
  in
  set_time 0.0;
  Stream.submit st (wn_job ~id:0 ~n:8 [ (0, 3); (1, 2) ]);
  Stream.submit st (wn_job ~id:1 ~n:8 [ (4, 7); (5, 6) ]);
  Stream.flush st;
  let outs = Stream.drain st in
  let s = Stream.stats st in
  Stream.shutdown st;
  check_int "one epoch" 1 s.epochs;
  check_int "both coalesced" 2 s.coalesced_jobs;
  check_int "disjoint epoch detected" 1 s.disjoint_epochs;
  check_int "merged width is the max, not the sum" 2 s.max_epoch_width;
  check_int "both outcomes delivered" 2 (List.length outs)

let test_leaves_boundary_commits () =
  (* A job for a different tree size cannot share the epoch's congestion
     arrays: it forces a commit even under a policy that never would. *)
  let clock, set_time = manual_clock () in
  let st =
    Stream.create ~domains:1 ~policy:(Admission.Quantum 1e9) ~clock ()
  in
  set_time 0.0;
  Stream.submit st (wn_job ~id:0 ~n:4 [ (0, 1) ]);
  Stream.submit st (wn_job ~id:1 ~n:16 [ (0, 1) ]);
  check_int "size change committed the first epoch" 1 (Stream.stats st).epochs;
  ignore (Stream.drain st);
  check_int "drain flushed the second" 2 (Stream.stats st).epochs;
  Stream.shutdown st

let test_crossing_jobs_counted () =
  let clock, _set_time = manual_clock () in
  let st = Stream.create ~domains:1 ~clock () in
  let crossing = set ~n:8 [ (0, 4); (2, 6) ] in
  Stream.submit st (Service.job ~id:0 ~algo:"csa" crossing);
  ignore (Stream.drain st);
  let s = Stream.stats st in
  Stream.shutdown st;
  check_int "crossing member counted" 1 s.crossing_jobs;
  check_int "wave layers recorded" 2 s.max_wave_layers

let test_shutdown_flushes () =
  let clock, _ = manual_clock () in
  let st =
    Stream.create ~domains:1 ~policy:(Admission.Quantum 1e9) ~clock ()
  in
  Stream.submit st (wn_job ~id:0 ~n:8 [ (0, 1) ]);
  Stream.shutdown st;
  let s = Stream.stats st in
  check_int "shutdown committed the open epoch" 1 s.epochs;
  check_int "and the job completed" 1 s.completed;
  check_raises_invalid "submit after shutdown" (fun () ->
      Stream.submit st (wn_job ~id:1 ~n:8 [ (0, 1) ]))

(* --- redesigned Service delivery API -------------------------------- *)

let test_next_outcome_order () =
  let t = Service.create ~domains:2 () in
  (* Submission order 2, 0, 1: next_outcome must deliver in submission
     order, not id order and not completion order. *)
  List.iter
    (fun id -> Service.submit t (wn_job ~id ~n:8 [ (0, 1) ]))
    [ 2; 0; 1 ];
  let ids =
    List.init 3 (fun _ ->
        match Service.next_outcome t with
        | Some o -> o.job_id
        | None -> -1)
  in
  check_bool "submission order" true (ids = [ 2; 0; 1 ]);
  Service.submit t (wn_job ~id:9 ~n:8 [ (0, 1) ]);
  Service.shutdown t;
  (match Service.next_outcome t with
  | Some o -> check_int "delivers after shutdown too" 9 o.job_id
  | None -> Alcotest.fail "expected the last outcome");
  check_bool "then the stream ends" true (Service.next_outcome t = None)

let test_events_seq () =
  let t = Service.create ~domains:2 () in
  for id = 0 to 4 do
    Service.submit t (wn_job ~id ~n:8 [ (0, 1) ])
  done;
  Service.shutdown t;
  let ids =
    Service.events t |> Seq.map (fun (o : Service.outcome) -> o.job_id)
    |> List.of_seq
  in
  check_bool "events = all outcomes in submission order" true
    (ids = [ 0; 1; 2; 3; 4 ])

let test_drain_after_next_outcome () =
  let t = Service.create ~domains:1 () in
  for id = 0 to 3 do
    Service.submit t (wn_job ~id ~n:8 [ (0, 1) ])
  done;
  ignore (Service.next_outcome t);
  let rest = Service.drain t in
  check_int "drain returns what next_outcome has not delivered" 3
    (List.length rest);
  Service.shutdown t;
  check_bool "nothing left" true (Service.next_outcome t = None)

let test_on_outcome_push () =
  let m = Mutex.create () in
  let seen = ref [] in
  let t =
    Service.create ~domains:2
      ~on_outcome:(fun o ->
        Mutex.lock m;
        seen := o.job_id :: !seen;
        Mutex.unlock m)
      ()
  in
  for id = 0 to 9 do
    Service.submit t (wn_job ~id ~n:8 [ (0, 1) ])
  done;
  let drained = Service.drain t in
  check_int "push delivery: drain returns nothing" 0 (List.length drained);
  check_bool "every outcome went through the callback" true
    (List.sort compare !seen = List.init 10 Fun.id);
  check_raises_invalid "next_outcome is the pull interface" (fun () ->
      Service.next_outcome t);
  Service.shutdown t

(* --- arrival generators ---------------------------------------------- *)

let nondecreasing (a : Arrivals.t) =
  let ok = ref true in
  Array.iteri
    (fun i t -> if i > 0 && t < a.times.(i - 1) then ok := false)
    a.times;
  !ok

let test_poisson_trace () =
  let rng = Cst_util.Prng.create 7 in
  let a = Arrivals.poisson rng ~rate:100.0 ~jobs:200 in
  check_int "job count" 200 (Arrivals.jobs a);
  check_bool "starts at zero" true (a.times.(0) = 0.0);
  check_bool "nondecreasing" true (nondecreasing a);
  check_bool "mean gap near 1/rate" true
    (let span = Arrivals.span a in
     span > 0.5 && span < 6.0);
  let b = Arrivals.poisson (Cst_util.Prng.create 7) ~rate:100.0 ~jobs:200 in
  check_bool "seed determines the trace" true (a.times = b.times)

let test_bursty_trace () =
  let rng = Cst_util.Prng.create 11 in
  let a = Arrivals.bursty rng ~burst:8 ~gap:0.01 ~jobs:100 () in
  check_int "job count" 100 (Arrivals.jobs a);
  check_bool "nondecreasing" true (nondecreasing a);
  (* back-to-back bursts: many zero gaps, but OFF periods exist *)
  let zero_gaps = ref 0 and off_gaps = ref 0 in
  Array.iteri
    (fun i t ->
      if i > 0 then
        if t = a.times.(i - 1) then incr zero_gaps
        else if t -. a.times.(i - 1) > 1e-4 then incr off_gaps)
    a.times;
  check_bool "bursts are back-to-back" true (!zero_gaps > 50);
  check_bool "OFF gaps separate bursts" true (!off_gaps >= 5);
  check_raises_invalid "burst must be positive" (fun () ->
      Arrivals.bursty rng ~burst:0 ~gap:0.01 ~jobs:10 ())

(* --- the consolidated stats renderer --------------------------------- *)

let test_stats_renderer () =
  let s =
    [
      Stats.section "alpha"
        [
          ("count", Stats.Int 3);
          ("rate", Stats.Float 1.5);
          ("ok", Stats.Bool true);
          ("name", Stats.String "a \"b\"");
        ];
      Stats.section "beta" [ ("x", Stats.Int 0) ];
    ]
  in
  let json = Stats.to_json s in
  check_bool "sections keyed by name" true
    (json
    = "{\"alpha\": {\"count\": 3, \"rate\": 1.5, \"ok\": true, \"name\": \
       \"a \\\"b\\\"\"}, \"beta\": {\"x\": 0}}");
  let txt = Format.asprintf "%a" Stats.pp s in
  check_bool "pp renders one line per section" true
    (txt = "alpha: count=3 rate=1.5 ok=true name=a \"b\"\nbeta: x=0");
  check_bool "throughput section carries jobs/sec" true
    (let sec = Stats.throughput ~jobs:10 ~failed:1 ~domains:2 ~elapsed_s:2.0 in
     List.assoc "jobs_per_sec" sec.fields = Stats.Float 5.0)

let test_stream_sections () =
  let clock, _ = manual_clock () in
  let st = Stream.create ~domains:1 ~clock () in
  Stream.submit st (wn_job ~id:0 ~n:8 [ (0, 1) ]);
  ignore (Stream.drain st);
  let json = Stats.to_json (Stream.sections st) in
  Stream.shutdown st;
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle ->
      check_bool ("STATS json mentions " ^ needle) true (contains json needle))
    [ "\"stream\""; "\"epochs\""; "\"total_power\""; "\"plan_cache\"" ]

let suite =
  [
    case "admission: immediate" test_immediate_policy;
    case "admission: quantum boundary" test_quantum_boundary;
    case "admission: delta boundary" test_delta_boundary;
    case "admission: policy strings" test_policy_strings;
    test_stream_equals_batch;
    case "stream: immediate = one epoch per job" test_immediate_epochs;
    case "stream: quantum coalesces" test_quantum_coalesces;
    case "stream: delta ski rental" test_delta_ski_rental;
    case "stream: width cap flushes" test_width_cap_flushes;
    case "stream: disjoint blocks coalesce" test_disjoint_blocks_coalesce;
    case "stream: tree-size boundary commits" test_leaves_boundary_commits;
    case "stream: crossing jobs counted" test_crossing_jobs_counted;
    case "stream: shutdown flushes" test_shutdown_flushes;
    case "service: next_outcome order" test_next_outcome_order;
    case "service: events sequence" test_events_seq;
    case "service: drain after next_outcome" test_drain_after_next_outcome;
    case "service: on_outcome push" test_on_outcome_push;
    case "arrivals: poisson" test_poisson_trace;
    case "arrivals: bursty" test_bursty_trace;
    case "stats: renderer" test_stats_renderer;
    case "stats: stream sections" test_stream_sections;
  ]

(* Schedule-equivalence guard: the sparse-frontier engine (Engine.run)
   must be observationally identical to the dense reference sweep
   (Engine.run_dense) — same rounds, sources, dests, deliveries, configs,
   power, cycles and engine stats — across a broad randomized sweep of
   sizes, densities and widths. *)

open Helpers

let check_power msg (a : Padr.Schedule.power) (b : Padr.Schedule.power) =
  check_int (msg ^ ": total connects") a.total_connects b.total_connects;
  check_int (msg ^ ": total disconnects") a.total_disconnects
    b.total_disconnects;
  check_int (msg ^ ": total writes") a.total_writes b.total_writes;
  check_int (msg ^ ": max connects/switch") a.max_connects_per_switch
    b.max_connects_per_switch;
  check_int (msg ^ ": max writes/switch") a.max_writes_per_switch
    b.max_writes_per_switch;
  check_int (msg ^ ": max events/switch") a.max_events_per_switch
    b.max_events_per_switch;
  check_true (msg ^ ": per-switch connects")
    (a.per_switch_connects = b.per_switch_connects);
  check_true (msg ^ ": per-switch writes")
    (a.per_switch_writes = b.per_switch_writes);
  check_true (msg ^ ": per-switch disconnects")
    (a.per_switch_disconnects = b.per_switch_disconnects)

let check_round msg (a : Padr.Schedule.round) (b : Padr.Schedule.round) =
  check_int (msg ^ ": index") a.index b.index;
  check_true (msg ^ ": sources") (a.sources = b.sources);
  check_true (msg ^ ": dests") (a.dests = b.dests);
  check_true (msg ^ ": deliveries") (a.deliveries = b.deliveries);
  check_int (msg ^ ": config count") (Array.length a.configs)
    (Array.length b.configs);
  Array.iteri
    (fun i (node_a, cfg_a) ->
      let node_b, cfg_b = b.configs.(i) in
      check_int (msg ^ ": config node") node_a node_b;
      check_true (msg ^ ": config value") (Cst.Switch_config.equal cfg_a cfg_b))
    a.configs

let check_equiv msg topo set =
  let dense, dstats = Padr.Engine.run_dense_exn topo set in
  let sparse, sstats = Padr.Engine.run_exn topo set in
  check_int (msg ^ ": rounds") (Padr.Schedule.num_rounds dense)
    (Padr.Schedule.num_rounds sparse);
  check_int (msg ^ ": width") dense.width sparse.width;
  check_int (msg ^ ": cycles") dense.cycles sparse.cycles;
  Array.iteri
    (fun i r -> check_round (Printf.sprintf "%s round %d" msg i) r
        sparse.rounds.(i))
    dense.rounds;
  check_power msg dense.power sparse.power;
  check_int (msg ^ ": stat cycles") dstats.cycles sstats.cycles;
  check_int (msg ^ ": stat messages") dstats.control_messages
    sstats.control_messages;
  check_int (msg ^ ": stat max words") dstats.max_message_words
    sstats.max_message_words;
  check_int (msg ^ ": stat state words") dstats.state_words_per_switch
    sstats.state_words_per_switch

(* ~200 random well-nested sets: sizes 4..512, all densities. *)
let test_random_sweep () =
  let cases = ref 0 in
  let rng = Cst_util.Prng.create 0xE9 in
  while !cases < 200 do
    incr cases;
    let n = 1 lsl (2 + Cst_util.Prng.int rng 8) in
    let density = 0.05 +. Cst_util.Prng.float rng 0.95 in
    let set = Cst_workloads.Gen_wn.uniform rng ~n ~density in
    check_equiv
      (Printf.sprintf "case %d (n=%d)" !cases n)
      (topo n) set
  done

(* Width-targeted sets hit the frontier pruning hardest: few active paths
   in a large tree. *)
let test_width_targeted () =
  let rng = Cst_util.Prng.create 0xF1 in
  List.iter
    (fun (n, w) ->
      let set = Cst_workloads.Gen_wn.with_width rng ~n ~width:w in
      check_equiv (Printf.sprintf "width %d on %d PEs" w n) (topo n) set)
    [ (64, 1); (64, 8); (256, 2); (256, 16); (1024, 4); (1024, 32) ]

let test_degenerate () =
  check_equiv "empty" (topo 8) (set ~n:8 []);
  check_equiv "single long" (topo 8) (set ~n:8 [ (0, 7) ]);
  check_equiv "single short" (topo 8) (set ~n:8 [ (3, 4) ]);
  check_equiv "full onion" (topo 16)
    (set ~n:16 [ (0, 15); (1, 14); (2, 13); (3, 12); (4, 11); (5, 10) ]);
  check_equiv "nested mix" (topo 16)
    (set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13) ]);
  (* a set smaller than the tree it runs on *)
  check_equiv "oversized tree" (topo 64) (set ~n:8 [ (1, 2); (4, 7) ])

(* Engine.run and Engine.run_dense also keep matching the functional
   spec's no-config view when snapshots are disabled. *)
let test_keep_configs_false () =
  let t = topo 32 in
  let rng = Cst_util.Prng.create 99 in
  let s = Cst_workloads.Gen_wn.uniform rng ~n:32 ~density:0.8 in
  let dense, _ = Padr.Engine.run_dense_exn ~keep_configs:false t s in
  let sparse, _ = Padr.Engine.run_exn ~keep_configs:false t s in
  Array.iteri
    (fun i (r : Padr.Schedule.round) ->
      check_int "no dense configs" 0 (Array.length r.configs);
      check_int "no sparse configs" 0
        (Array.length sparse.rounds.(i).configs);
      check_true "deliveries" (r.deliveries = sparse.rounds.(i).deliveries))
    dense.rounds

(* Satellite of the Stalled error work: generator-produced well-nested
   sets can never stall either engine (Theorem 4 progress guarantee). *)
let prop_never_stalls =
  prop "well-nested sets never stall the engines" ~count:150 (fun params ->
      let s = set_of_params params in
      let t = Padr.topology_for s in
      let ok = function
        | Ok _ -> true
        | Error (Padr.Csa.Stalled _) -> false
        | Error _ -> false
      in
      ok (Padr.Engine.run t s) && ok (Padr.Engine.run_dense t s)
      && ok (Padr.Csa.run t s))

(* tiny substring helper, no extra deps *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_stalled_formatting () =
  let msg =
    Format.asprintf "%a" Padr.Csa.pp_error
      (Padr.Csa.Stalled { round = 3; remaining = 7 })
  in
  check_true "mentions round" (contains msg "round 3" && contains msg "7")

let suite =
  [
    case "random sweep (200 sets)" test_random_sweep;
    case "width-targeted" test_width_targeted;
    case "degenerate shapes" test_degenerate;
    case "keep_configs:false" test_keep_configs_false;
    prop_never_stalls;
    case "Stalled formats" test_stalled_formatting;
  ]

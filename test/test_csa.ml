open Helpers

let test_hand_trace_rounds () =
  let s = schedule ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  check_int "two rounds" 2 (Padr.Schedule.num_rounds s);
  check_true "round 1" (s.rounds.(0).deliveries = [ (0, 7) ]);
  check_true "round 2" (List.sort compare s.rounds.(1).deliveries = [ (1, 2); (3, 4) ]);
  check_verified s

let test_independent_matched_same_round () =
  (* (0,7) at the root and (2,3) at a low switch are link-disjoint: the
     CSA schedules both in round 1 even though they are nested. *)
  let s = schedule ~n:8 [ (0, 7); (2, 3) ] in
  check_int "one round" 1 (Padr.Schedule.num_rounds s);
  check_verified s

let test_full_onion () =
  let s = Padr.schedule_exn (Cst_workloads.Patterns.full_onion_exn ~n:16) in
  check_int "width n/2 rounds" 8 (Padr.Schedule.num_rounds s);
  check_true "outermost first"
    (s.rounds.(0).deliveries = [ (0, 15) ]);
  check_true "innermost last"
    (s.rounds.(7).deliveries = [ (7, 8) ]);
  check_verified s

let test_fig2 () =
  let s = Padr.schedule_exn (Cst_workloads.Patterns.fig2 ()) in
  check_int "width 3" 3 s.width;
  check_int "three rounds" 3 (Padr.Schedule.num_rounds s);
  check_verified s

let test_fig3b () =
  let s = Padr.schedule_exn (Cst_workloads.Patterns.fig3b ()) in
  check_verified s

let test_empty_set () =
  let s = schedule ~n:8 [] in
  check_int "no rounds" 0 (Padr.Schedule.num_rounds s);
  check_int "no power" 0 s.power.total_connects;
  check_verified s

let test_single_comm () =
  let s = schedule ~n:8 [ (2, 5) ] in
  check_int "one round" 1 (Padr.Schedule.num_rounds s);
  check_true "delivered" (Padr.Schedule.all_deliveries s = [ (2, 5) ]);
  check_verified s

let test_neighbours () =
  let s = schedule ~n:8 [ (0, 1); (2, 3); (4, 5); (6, 7) ] in
  check_int "one round" 1 (Padr.Schedule.num_rounds s);
  check_int "all at once" 4 (List.length s.rounds.(0).deliveries);
  check_verified s

let test_rejects_crossing () =
  match Padr.schedule (set ~n:8 [ (0, 2); (1, 3) ]) with
  | Error (Padr.Csa.Not_well_nested (Cst_comm.Well_nested.Crossing _)) -> ()
  | _ -> Alcotest.fail "expected Not_well_nested/Crossing"

let test_rejects_left_oriented () =
  match Padr.schedule (set ~n:8 [ (3, 1) ]) with
  | Error (Padr.Csa.Not_well_nested (Cst_comm.Well_nested.Not_right_oriented _)) -> ()
  | _ -> Alcotest.fail "expected Not_right_oriented"

let test_rejects_oversized () =
  match Padr.Csa.run (topo 4) (set ~n:8 [ (0, 7) ]) with
  | Error (Padr.Csa.Too_large { n = 8; leaves = 4 }) -> ()
  | _ -> Alcotest.fail "expected Too_large"

let test_explicit_leaves () =
  let s = Padr.schedule_exn ~leaves:32 (set ~n:8 [ (0, 7) ]) in
  check_int "leaves honored" 32 s.leaves;
  check_verified s

let test_eager_same_rounds () =
  let st = set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13) ] in
  let lazy_s = Padr.Csa.run_exn (topo 16) st in
  let eager_s = Padr.Csa.run_exn ~eager_clear:true (topo 16) st in
  check_int "same rounds" (Padr.Schedule.num_rounds lazy_s)
    (Padr.Schedule.num_rounds eager_s);
  check_true "same deliveries"
    (Padr.Schedule.all_deliveries lazy_s = Padr.Schedule.all_deliveries eager_s);
  check_true "eager pays at least as many disconnects"
    (eager_s.power.total_disconnects >= lazy_s.power.total_disconnects)

let test_trace_events () =
  let log = Cst.Exec_log.create () in
  let st = set ~n:8 [ (0, 7); (1, 2) ] in
  let _ = Padr.Csa.run_exn ~log (topo 8) st in
  let events = Cst.Trace.events (Cst.Trace.of_log log) in
  check_true "phase1 first"
    (match events with Cst.Trace.Phase1_done _ :: _ -> true | _ -> false);
  check_true "finished last"
    (match List.rev events with
    | Cst.Trace.Finished { rounds = 2 } :: _ -> true
    | _ -> false);
  check_true "has deliveries"
    (List.exists
       (function Cst.Trace.Delivered { src = 0; dst = 7; _ } -> true | _ -> false)
       events)

let test_cycles_formula () =
  let st = set ~n:16 [ (0, 15); (1, 14) ] in
  let s = Padr.Csa.run_exn (topo 16) st in
  (* levels + rounds * (levels + 1) with levels = 4, rounds = 2 *)
  check_int "cycles" (4 + (2 * 5)) s.cycles

let test_keep_configs_off () =
  let st = set ~n:8 [ (0, 7) ] in
  let s = Padr.Csa.run_exn ~keep_configs:false (topo 8) st in
  check_int "no snapshots" 0 (Array.length s.rounds.(0).configs);
  (* verification still passes minus the replay check *)
  check_verified s

let test_schedule_mixed () =
  let st = set ~n:8 [ (0, 3); (7, 4) ] in
  match Padr.schedule_mixed st with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Padr.pp_error e)
  | Ok m ->
      check_int "two single-round parts" 2 m.rounds;
      check_true "deliveries in original coordinates"
        (Padr.mixed_deliveries m = [ (0, 3); (7, 4) ])

let test_schedule_mixed_pure_right () =
  let st = set ~n:8 [ (0, 3) ] in
  match Padr.schedule_mixed st with
  | Ok m ->
      check_true "no left part" (m.left = None);
      check_int "rounds" 1 m.rounds
  | Error _ -> Alcotest.fail "should schedule"

let test_schedule_mixed_rejects_crossing_part () =
  let st = set ~n:8 [ (0, 2); (1, 3) ] in
  match Padr.schedule_mixed st with
  | Error (Padr.Csa.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "crossing right part must be rejected"

let suite =
  [
    case "hand trace rounds" test_hand_trace_rounds;
    case "independent matched same round" test_independent_matched_same_round;
    case "full onion" test_full_onion;
    case "figure 2" test_fig2;
    case "figure 3b" test_fig3b;
    case "empty set" test_empty_set;
    case "single comm" test_single_comm;
    case "neighbours" test_neighbours;
    case "rejects crossing" test_rejects_crossing;
    case "rejects left-oriented" test_rejects_left_oriented;
    case "rejects oversized" test_rejects_oversized;
    case "explicit leaves" test_explicit_leaves;
    case "eager same rounds" test_eager_same_rounds;
    case "trace events" test_trace_events;
    case "cycles formula" test_cycles_formula;
    case "keep_configs off" test_keep_configs_off;
    case "schedule_mixed" test_schedule_mixed;
    case "schedule_mixed pure right" test_schedule_mixed_pure_right;
    case "schedule_mixed rejects crossing" test_schedule_mixed_rejects_crossing_part;
  ]

open Helpers

(* Plan compilation and replay (Padr.Plan / Cst.Canon /
   Exec_log.rebase): a replayed plan must be byte-identical to a fresh
   run — same structural digest, same power units, same round and cycle
   counts — at the compiled placement, under aligned translation, and
   across tree sizes. *)

let events log = Cst.Exec_log.fold log ~init:[] ~f:(fun acc e -> e :: acc)

let power_eq msg (a : Padr.Schedule.power) (b : Padr.Schedule.power) =
  check_int (msg ^ ": connects") a.total_connects b.total_connects;
  check_int (msg ^ ": disconnects") a.total_disconnects b.total_disconnects;
  check_int (msg ^ ": writes") a.total_writes b.total_writes;
  check_int (msg ^ ": max connects/switch") a.max_connects_per_switch
    b.max_connects_per_switch;
  check_int (msg ^ ": max writes/switch") a.max_writes_per_switch
    b.max_writes_per_switch

(* --- Canon ---------------------------------------------------------- *)

let test_canon_translation_invariant () =
  let s = set ~n:32 [ (4, 7); (5, 6) ] in
  let p = Cst.Canon.place s in
  check_int "align" 4 (Cst.Canon.align p.canon);
  check_int "base" 4 p.base;
  (* Aligned translation: same signature, shifted base. *)
  let t = Cst_workloads.Gen_wn.translate ~by:8 s in
  let pt = Cst.Canon.place t in
  check_true "aligned translate keeps the signature"
    (Cst.Canon.equal p.canon pt.canon);
  check_int "translated base" 12 pt.base;
  (* Misaligned translation changes the position inside the block —
     a different signature (and genuinely different routing). *)
  let m = Cst_workloads.Gen_wn.translate ~by:2 s in
  let pm = Cst.Canon.place m in
  check_true "misaligned translate changes the signature"
    (not (Cst.Canon.equal p.canon pm.canon))

let test_canon_leaves_independent () =
  let comms = [ (9, 14); (10, 13) ] in
  let a = Cst.Canon.place (set ~n:16 comms) in
  let b = Cst.Canon.place (set ~n:256 comms) in
  check_true "signature ignores the tree size"
    (Cst.Canon.equal a.canon b.canon);
  check_int "same base" a.base b.base

let test_canon_empty () =
  let p = Cst.Canon.place (Cst_comm.Comm_set.empty ~n:8) in
  check_int "empty align" 1 (Cst.Canon.align p.canon);
  check_int "empty base" 0 p.base;
  check_int "empty size" 0 (Cst.Canon.size p.canon)

let test_canon_compatible () =
  let p = Cst.Canon.place (set ~n:32 [ (4, 7); (5, 6) ]) in
  check_true "fits at 4/32" (Cst.Canon.compatible p.canon ~leaves:32 ~base:4);
  check_true "fits at 0/8" (Cst.Canon.compatible p.canon ~leaves:8 ~base:0);
  check_true "rejects misaligned base"
    (not (Cst.Canon.compatible p.canon ~leaves:32 ~base:2));
  check_true "rejects overflow"
    (not (Cst.Canon.compatible p.canon ~leaves:4 ~base:4));
  check_true "rejects non-pow2 leaves"
    (not (Cst.Canon.compatible p.canon ~leaves:12 ~base:4))

(* --- replay == fresh run at the compiled placement ------------------- *)

let replay_equals_fresh producer params =
  let s = set_of_params params in
  let topo = Padr.topology_for s in
  let fresh_log = Cst.Exec_log.create () in
  let fresh =
    match producer with
    | Padr.Plan.Spec -> Padr.Csa.run_exn ~log:fresh_log topo s
    | Padr.Plan.Engine -> fst (Padr.Engine.run_exn ~log:fresh_log topo s)
  in
  let plan = Result.get_ok (Padr.Plan.compile ~producer topo s) in
  let r = Padr.Plan.replay plan topo s in
  check_true "digest" (Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log);
  power_eq "power" fresh.power r.schedule.power;
  check_int "rounds" (Padr.Schedule.num_rounds fresh)
    (Padr.Schedule.num_rounds r.schedule);
  check_int "cycles" fresh.cycles r.schedule.cycles;
  check_int "width" fresh.width r.schedule.width;
  check_true "deliveries"
    (Padr.Schedule.all_deliveries fresh
    = Padr.Schedule.all_deliveries r.schedule);
  true

(* --- replay under aligned translation and across tree sizes ---------- *)

(* A random set confined to the first [m] leaves of an [n]-leaf tree,
   so there is room to translate it block-by-block. *)
let embedded_set ~seed ~m ~n =
  let rng = Cst_util.Prng.create seed in
  let small = Cst_workloads.Gen_wn.uniform rng ~n:m ~density:1.0 in
  Cst_comm.Comm_set.create_exn ~n
    (Array.to_list (Cst_comm.Comm_set.comms small))

let translated_replay_roundtrip producer ~seed ~m ~n =
  let s = embedded_set ~seed ~m ~n in
  if Cst_comm.Comm_set.size s = 0 then ()
  else begin
    let topo = Cst.Topology.create ~leaves:n in
    let plan = Result.get_ok (Padr.Plan.compile ~producer topo s) in
    let placed = Cst.Canon.place s in
    let align = Cst.Canon.align placed.canon in
    let max_k = (n - placed.base - align) / align in
    List.iter
      (fun k ->
        if k >= 1 && k <= max_k then begin
          let t = Cst_workloads.Gen_wn.translate ~by:(k * align) s in
          let fresh_log = Cst.Exec_log.create () in
          let fresh =
            match producer with
            | Padr.Plan.Spec -> Padr.Csa.run_exn ~log:fresh_log topo t
            | Padr.Plan.Engine ->
                fst (Padr.Engine.run_exn ~log:fresh_log topo t)
          in
          let r = Padr.Plan.replay plan topo t in
          check_true
            (Printf.sprintf "translated digest (seed %d, +%d)" seed
               (k * align))
            (Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log);
          power_eq "translated power" fresh.power r.schedule.power;
          check_int "translated rounds"
            (Padr.Schedule.num_rounds fresh)
            (Padr.Schedule.num_rounds r.schedule);
          check_int "translated cycles" fresh.cycles r.schedule.cycles;
          check_true "translated deliveries"
            (Padr.Schedule.all_deliveries fresh
            = Padr.Schedule.all_deliveries r.schedule)
        end)
      [ 1; 2; max_k ]
  end

let test_translated_replay_spec () =
  for seed = 1 to 25 do
    translated_replay_roundtrip Padr.Plan.Spec ~seed ~m:16 ~n:128;
    translated_replay_roundtrip Padr.Plan.Spec ~seed:(seed + 100) ~m:32 ~n:128
  done

let test_translated_replay_engine () =
  for seed = 1 to 25 do
    translated_replay_roundtrip Padr.Plan.Engine ~seed ~m:16 ~n:128;
    translated_replay_roundtrip Padr.Plan.Engine ~seed:(seed + 100) ~m:32
      ~n:128
  done

let cross_size_replay producer ~seed =
  (* Compile on a 64-leaf tree, replay onto 512 leaves (same and shifted
     placement): cycles and control messages come from the producer's
     model for the bigger tree, the digest from the rebased log. *)
  let s64 = embedded_set ~seed ~m:32 ~n:64 in
  if Cst_comm.Comm_set.size s64 = 0 then ()
  else begin
    let topo64 = Cst.Topology.create ~leaves:64 in
    let topo512 = Cst.Topology.create ~leaves:512 in
    let plan = Result.get_ok (Padr.Plan.compile ~producer topo64 s64) in
    let placed = Cst.Canon.place s64 in
    let align = Cst.Canon.align placed.canon in
    List.iter
      (fun k ->
        let by = k * align in
        if placed.base + by + align <= 512 then begin
          let t =
            Cst_comm.Comm_set.create_exn ~n:512
              (List.map
                 (fun (c : Cst_comm.Comm.t) ->
                   Cst_comm.Comm.make ~src:(c.src + by) ~dst:(c.dst + by))
                 (Array.to_list (Cst_comm.Comm_set.comms s64)))
          in
          let fresh_log = Cst.Exec_log.create () in
          let fresh, fresh_msgs =
            match producer with
            | Padr.Plan.Spec ->
                (Padr.Csa.run_exn ~log:fresh_log topo512 t, 0)
            | Padr.Plan.Engine ->
                let s, stats = Padr.Engine.run_exn ~log:fresh_log topo512 t in
                (s, stats.control_messages)
          in
          let r = Padr.Plan.replay plan topo512 t in
          check_true
            (Printf.sprintf "cross-size digest (seed %d, +%d)" seed by)
            (Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log);
          check_int "cross-size cycles" fresh.cycles r.schedule.cycles;
          check_int "cross-size control messages" fresh_msgs
            r.control_messages;
          power_eq "cross-size power" fresh.power r.schedule.power
        end)
      [ 0; 1; 7 ]
  end

let test_cross_size_spec () =
  for seed = 1 to 15 do
    cross_size_replay Padr.Plan.Spec ~seed
  done

let test_cross_size_engine () =
  for seed = 1 to 15 do
    cross_size_replay Padr.Plan.Engine ~seed
  done

(* Every registry algorithm is cacheable by the service: its frozen run
   must replay digest-identically onto an aligned translate. *)
let test_registry_algos_replay_translated () =
  List.iter
    (fun (a : Cst_baselines.Registry.algo) ->
      for seed = 1 to 8 do
        let s = embedded_set ~seed ~m:16 ~n:64 in
        if Cst_comm.Comm_set.size s > 0 then begin
          let topo = Cst.Topology.create ~leaves:64 in
          let log = Cst.Exec_log.create () in
          let sched = a.run ~log topo s in
          let plan =
            Padr.Plan.of_log ~producer:Spec ~topo ~set:s
              ~rounds:(Padr.Schedule.num_rounds sched)
              ~cycles:sched.cycles log
          in
          let placed = Cst.Canon.place s in
          let align = Cst.Canon.align placed.canon in
          let max_k = (64 - placed.base - align) / align in
          if max_k >= 1 then begin
            let t = Cst_workloads.Gen_wn.translate ~by:(max_k * align) s in
            let fresh_log = Cst.Exec_log.create () in
            ignore (a.run ~log:fresh_log topo t);
            let r = Padr.Plan.replay plan topo t in
            check_true
              (Printf.sprintf "%s replay digest (seed %d)" a.name seed)
              (Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log)
          end
        end
      done)
    Cst_baselines.Registry.all

(* --- rebase round-trip ----------------------------------------------- *)

let test_rebase_roundtrip () =
  for seed = 1 to 20 do
    let s = embedded_set ~seed ~m:16 ~n:64 in
    if Cst_comm.Comm_set.size s > 0 then begin
      let topo = Cst.Topology.create ~leaves:64 in
      let log = Cst.Exec_log.create () in
      ignore (Padr.Engine.run_exn ~log topo s);
      let placed = Cst.Canon.place s in
      let align = Cst.Canon.align placed.canon in
      let max_k = (64 - placed.base - align) / align in
      if max_k >= 1 then begin
        let by = max_k * align in
        let there =
          Cst.Exec_log.rebase log ~src_leaves:64 ~src_base:placed.base
            ~dst_leaves:64 ~dst_base:(placed.base + by) ~align
        in
        let back =
          Cst.Exec_log.rebase there ~src_leaves:64
            ~src_base:(placed.base + by) ~dst_leaves:64 ~dst_base:placed.base
            ~align
        in
        check_int "round-trip length" (Cst.Exec_log.length log)
          (Cst.Exec_log.length back);
        check_true "round-trip events" (events log = events back);
        check_true "round-trip digest"
          (Cst.Exec_log.digest log = Cst.Exec_log.digest back)
      end
    end
  done

(* Translate [s] into an [n]-leaf tree, shifting every PE by [by]. *)
let embed ~n ~by s =
  Cst_comm.Comm_set.create_exn ~n
    (List.map
       (fun (c : Cst_comm.Comm.t) ->
         Cst_comm.Comm.make ~src:(c.src + by) ~dst:(c.dst + by))
       (Array.to_list (Cst_comm.Comm_set.comms s)))

(* Rebase across tree sizes with non-zero offsets: a run frozen on a
   16-leaf tree, rebased into a bigger tree at a shifted aligned base,
   is byte-identical to running the translated set there directly — and
   the big-tree log rebases back down to the original, event for
   event. *)
let test_rebase_cross_size_offsets () =
  for seed = 1 to 15 do
    let rng = Cst_util.Prng.create (400 + seed) in
    let s16 = Cst_workloads.Gen_wn.uniform rng ~n:16 ~density:1.0 in
    if Cst_comm.Comm_set.size s16 > 0 then begin
      let topo16 = Cst.Topology.create ~leaves:16 in
      let log16 = Cst.Exec_log.create () in
      ignore (Padr.Engine.run_exn ~log:log16 topo16 s16);
      List.iter
        (fun (dst_leaves, dst_base) ->
          let topo = Cst.Topology.create ~leaves:dst_leaves in
          let t = embed ~n:dst_leaves ~by:dst_base s16 in
          let fresh_log = Cst.Exec_log.create () in
          ignore (Padr.Engine.run_exn ~log:fresh_log topo t);
          let rebased =
            Cst.Exec_log.rebase log16 ~src_leaves:16 ~src_base:0 ~dst_leaves
              ~dst_base ~align:16
          in
          check_true
            (Printf.sprintf "digest at %d+%d (seed %d)" dst_leaves dst_base
               seed)
            (Cst.Exec_log.digest rebased = Cst.Exec_log.digest fresh_log);
          let back =
            Cst.Exec_log.rebase fresh_log ~src_leaves:dst_leaves
              ~src_base:dst_base ~dst_leaves:16 ~dst_base:0 ~align:16
          in
          check_true
            (Printf.sprintf "round-trip to the small tree (seed %d)" seed)
            (events back = events log16))
        [ (64, 16); (64, 48); (256, 240); (1024, 512) ]
    end
  done

(* A plan compiled on a small tree replays at a shifted base on a much
   bigger one: Plan.replay rebases the frozen log across both the size
   and the offset in one step. *)
let test_small_plan_replays_on_big_tree () =
  let s = set ~n:16 [ (0, 15); (1, 2); (4, 11) ] in
  let topo16 = Cst.Topology.create ~leaves:16 in
  let plan =
    Result.get_ok (Padr.Plan.compile ~producer:Engine topo16 s)
  in
  let topo256 = Cst.Topology.create ~leaves:256 in
  List.iter
    (fun by ->
      let t = embed ~n:256 ~by s in
      let fresh_log = Cst.Exec_log.create () in
      let fresh, stats = Padr.Engine.run_exn ~log:fresh_log topo256 t in
      let r = Padr.Plan.replay plan topo256 t in
      check_true
        (Printf.sprintf "digest at 256+%d" by)
        (Cst.Exec_log.digest r.log = Cst.Exec_log.digest fresh_log);
      check_int "cycles from the big-tree model" fresh.cycles
        r.schedule.cycles;
      check_int "control messages from the big-tree model"
        stats.control_messages r.control_messages;
      power_eq "power" fresh.power r.schedule.power)
    [ 16; 96; 240 ]

(* The unaligned-offset counterexample: shifting by anything that is
   not a multiple of the block alignment moves the set relative to the
   switches above it, so neither rebase nor replay may accept it. *)
let test_unaligned_offset_counterexample () =
  let s = set ~n:16 [ (0, 15); (1, 2) ] in
  let topo16 = Cst.Topology.create ~leaves:16 in
  let log = Cst.Exec_log.create () in
  ignore (Padr.Engine.run_exn ~log topo16 s);
  check_raises_invalid "rebase to an unaligned base" (fun () ->
      Cst.Exec_log.rebase log ~src_leaves:16 ~src_base:0 ~dst_leaves:256
        ~dst_base:40 ~align:16);
  let plan = Result.get_ok (Padr.Plan.compile ~producer:Engine topo16 s) in
  let topo256 = Cst.Topology.create ~leaves:256 in
  check_raises_invalid "replay at an unaligned base" (fun () ->
      Padr.Plan.replay plan topo256 (embed ~n:256 ~by:40 s))

let test_rebase_rejects_bad_geometry () =
  let log = Cst.Exec_log.create () in
  Cst.Exec_log.connect log ~node:3 ~out_port:Cst.Side.P ~in_port:Cst.Side.L;
  check_raises_invalid "misaligned base" (fun () ->
      Cst.Exec_log.rebase log ~src_leaves:8 ~src_base:1 ~dst_leaves:8
        ~dst_base:0 ~align:2);
  check_raises_invalid "non-pow2 leaves" (fun () ->
      Cst.Exec_log.rebase log ~src_leaves:6 ~src_base:0 ~dst_leaves:8
        ~dst_base:0 ~align:2);
  (* node 3 is outside the subtree of block [4, 6) of an 8-leaf tree
     (root 4/2 + 8/2 = 6). *)
  check_raises_invalid "event outside the block" (fun () ->
      Cst.Exec_log.rebase log ~src_leaves:8 ~src_base:4 ~dst_leaves:8
        ~dst_base:0 ~align:2)

let test_replay_rejects_mismatch () =
  let s = set ~n:16 [ (1, 2) ] in
  let topo = Cst.Topology.create ~leaves:16 in
  let plan = Result.get_ok (Padr.Plan.compile topo s) in
  check_raises_invalid "different structure" (fun () ->
      Padr.Plan.replay plan topo (set ~n:16 [ (1, 4) ]));
  check_raises_invalid "misaligned translate" (fun () ->
      Padr.Plan.replay plan topo (set ~n:16 [ (2, 3) ]))

let suite =
  [
    case "canon: aligned translation invariant" test_canon_translation_invariant;
    case "canon: independent of tree size" test_canon_leaves_independent;
    case "canon: empty set" test_canon_empty;
    case "canon: compatibility checks" test_canon_compatible;
    prop "replay == fresh run (spec)" ~count:100 (replay_equals_fresh Spec);
    prop "replay == fresh run (engine)" ~count:100 (replay_equals_fresh Engine);
    case "translated replay == fresh (spec)" test_translated_replay_spec;
    case "translated replay == fresh (engine)" test_translated_replay_engine;
    case "cross-size replay (spec)" test_cross_size_spec;
    case "cross-size replay (engine)" test_cross_size_engine;
    case "registry algorithms replay translated"
      test_registry_algos_replay_translated;
    case "rebase round-trip is identity" test_rebase_roundtrip;
    case "rebase across tree sizes with offsets" test_rebase_cross_size_offsets;
    case "small plan replays on a big tree" test_small_plan_replays_on_big_tree;
    case "unaligned offset is rejected" test_unaligned_offset_counterexample;
    case "rebase rejects bad geometry" test_rebase_rejects_bad_geometry;
    case "replay rejects signature mismatch" test_replay_rejects_mismatch;
  ]

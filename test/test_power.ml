open Helpers

(* Empirical form of the paper's headline contrast (Theorem 8 and the
   discussion of Roy et al.): per-switch configuration cost as the width
   grows.  CSA must stay flat; ID scheduling must grow linearly. *)

let sweep algo_run widths =
  List.map
    (fun w ->
      let n = 256 in
      let t = topo n in
      let s = Cst_workloads.Gen_wn.onion ~n ~width:w in
      let sched : Padr.Schedule.t = algo_run t s in
      (float_of_int w, float_of_int sched.power.max_writes_per_switch))
    widths

let widths = [ 2; 4; 8; 16; 32; 64; 128 ]

let test_csa_flat_in_width () =
  let pts = Array.of_list (sweep (fun t s -> Padr.Csa.run_exn t s) widths) in
  let fit = Cst_util.Stats.linear_fit pts in
  check_true
    (Printf.sprintf "slope ~ 0 (got %.4f)" fit.slope)
    (Float.abs fit.slope < 0.01)

let test_roy_linear_in_width () =
  let pts = Array.of_list (sweep Cst_baselines.Roy_id.run widths) in
  let fit = Cst_util.Stats.linear_fit pts in
  check_true
    (Printf.sprintf "slope ~ 1 (got %.4f)" fit.slope)
    (fit.slope > 0.9 && fit.slope < 1.1);
  check_true "good fit" (fit.r2 > 0.99)

let test_csa_constant_across_n () =
  (* Theorem 8's constant must not secretly grow with the tree size. *)
  let maxima =
    List.map
      (fun n ->
        let rng = Cst_util.Prng.create 2024 in
        let worst = ref 0 in
        for _ = 1 to 10 do
          let s = Cst_workloads.Gen_wn.uniform rng ~n ~density:1.0 in
          let sched = Padr.schedule_exn s in
          worst := max !worst sched.power.max_connects_per_switch
        done;
        !worst)
      [ 32; 128; 512; 2048 ]
  in
  List.iter
    (fun m ->
      check_true
        (Printf.sprintf "within bound (%d)" m)
        (m <= Padr.Verify.default_power_bound))
    maxima

let test_meter_of_log () =
  (* The meter is a pure fold of the log's charge events. *)
  let log = Cst.Exec_log.create () in
  Cst.Exec_log.connect log ~node:2 ~out_port:Cst.Side.P ~in_port:Cst.Side.L;
  Cst.Exec_log.disconnect log ~node:2 ~out_port:Cst.Side.P ~in_port:Cst.Side.L;
  Cst.Exec_log.connect log ~node:2 ~out_port:Cst.Side.P ~in_port:Cst.Side.R;
  Cst.Exec_log.connect log ~node:2 ~out_port:Cst.Side.R ~in_port:Cst.Side.P;
  Cst.Exec_log.write_config log ~node:3 ~count:5;
  let m = Cst.Power_meter.of_log ~num_nodes:4 log in
  check_int "connects" 3 (Cst.Power_meter.connects m ~node:2);
  check_int "disconnects" 1 (Cst.Power_meter.disconnects m ~node:2);
  check_int "writes" 5 (Cst.Power_meter.writes m ~node:3);
  check_int "total" 3 (Cst.Power_meter.total_connects m);
  check_int "max connects" 3 (Cst.Power_meter.max_connects_per_switch m);
  check_int "max writes" 5 (Cst.Power_meter.max_writes_per_switch m);
  check_int "max events" 4 (Cst.Power_meter.max_events_per_switch m)

let test_meter_cursors () =
  (* Cursors replace the old copy/diff_since machinery: a run records
     [length log] before it starts and derives its share with [~from];
     [~upto] recovers the frozen prefix. *)
  let log = Cst.Exec_log.create () in
  Cst.Exec_log.connect log ~node:1 ~out_port:Cst.Side.P ~in_port:Cst.Side.L;
  Cst.Exec_log.connect log ~node:1 ~out_port:Cst.Side.R ~in_port:Cst.Side.P;
  let cursor = Cst.Exec_log.length log in
  Cst.Exec_log.connect log ~node:1 ~out_port:Cst.Side.L ~in_port:Cst.Side.P;
  Cst.Exec_log.connect log ~node:1 ~out_port:Cst.Side.P ~in_port:Cst.Side.R;
  Cst.Exec_log.connect log ~node:1 ~out_port:Cst.Side.R ~in_port:Cst.Side.L;
  Cst.Exec_log.disconnect log ~node:1 ~out_port:Cst.Side.R ~in_port:Cst.Side.L;
  Cst.Exec_log.write_config log ~node:2 ~count:4;
  let d = Cst.Power_meter.of_log ~from:cursor ~num_nodes:3 log in
  check_int "delta connects" 3 (Cst.Power_meter.connects d ~node:1);
  check_int "delta disconnects" 1 (Cst.Power_meter.disconnects d ~node:1);
  check_int "delta writes" 4 (Cst.Power_meter.writes d ~node:2);
  let baseline = Cst.Power_meter.of_log ~upto:cursor ~num_nodes:3 log in
  check_int "prefix frozen" 2 (Cst.Power_meter.connects baseline ~node:1)

let test_shared_net_rerun_is_free () =
  (* Running the same width-1 set twice on one warm network: the second
     run finds every configuration already in place — zero power (pure
     PADR).  Width 1 so that the single round's configuration is exactly
     what the warm network still holds. *)
  let t = topo 16 in
  let s = set ~n:16 [ (0, 7); (8, 11); (13, 15) ] in
  let net = Cst.Net.create t in
  let first = Padr.Csa.run_exn ~net t s in
  let second = Padr.Csa.run_exn ~net t s in
  check_true "first run pays" (first.power.total_connects > 0);
  check_int "second run free" 0 second.power.total_connects;
  check_int "second run no writes" 0 second.power.total_writes;
  check_true "second run still delivers"
    (Padr.Schedule.all_deliveries second = Cst_comm.Comm_set.matching s)

let test_shared_net_topology_mismatch () =
  let net = Cst.Net.create (topo 8) in
  check_raises_invalid "mismatch" (fun () ->
      Padr.Csa.run_exn ~net (topo 16) (set ~n:16 [ (0, 1) ]))

let test_disconnect_tracking () =
  (* A full onion forces the root's l_i->r_o to persist across every
     round: zero disconnects at the root. *)
  let s = Padr.schedule_exn (Cst_workloads.Patterns.full_onion_exn ~n:32) in
  check_true "few disconnects"
    (s.power.total_disconnects <= s.power.total_connects)

let test_power_floor_met_on_single_comm () =
  let t = topo 16 in
  let st = set ~n:16 [ (0, 15) ] in
  let sched = Padr.Csa.run_exn t st in
  (* A single communication: power = path length exactly. *)
  check_int "exact floor" (Cst_baselines.Bounds.min_total_connects t st)
    sched.power.total_connects

let suite =
  [
    case "CSA flat in width" test_csa_flat_in_width;
    case "Roy linear in width" test_roy_linear_in_width;
    case "CSA constant across n" test_csa_constant_across_n;
    case "meter of_log" test_meter_of_log;
    case "meter cursors" test_meter_cursors;
    case "shared net rerun is free" test_shared_net_rerun_is_free;
    case "shared net topology mismatch" test_shared_net_topology_mismatch;
    case "disconnect tracking" test_disconnect_tracking;
    case "single-comm power floor" test_power_floor_met_on_single_comm;
  ]

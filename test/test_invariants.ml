open Helpers

let test_hand_example () =
  let r = Padr.Invariants.audit (topo 8) (set ~n:8 [ (0, 7); (1, 2); (3, 4) ]) in
  check_true "registers track the oracle" r.ok;
  check_int "rounds" 2 r.rounds_checked;
  check_true "no divergence" (r.first_divergence = None)

let test_full_onion () =
  let r =
    Padr.Invariants.audit (topo 32) (Cst_workloads.Patterns.full_onion_exn ~n:32)
  in
  check_true "onion invariant" r.ok;
  check_int "n/2 rounds" 16 r.rounds_checked

let test_empty () =
  let r = Padr.Invariants.audit (topo 8) (set ~n:8 []) in
  check_true "trivially ok" r.ok;
  check_int "no rounds" 0 r.rounds_checked

let test_suite_workloads () =
  let rng = Cst_util.Prng.create 33 in
  List.iter
    (fun (g : Cst_workloads.Suite.gen) ->
      let s = g.make rng ~n:64 in
      let r = Padr.Invariants.audit (topo 64) s in
      check_true (g.name ^ " invariant") r.ok)
    Cst_workloads.Suite.all

let prop_random =
  prop ~count:60 "registers equal the from-scratch oracle every round"
    (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      (Padr.Invariants.audit (Cst.Topology.create ~leaves) s).ok)

let test_pp () =
  let r = Padr.Invariants.audit (topo 8) (set ~n:8 [ (0, 1) ]) in
  check_true "pp" (String.length (Format.asprintf "%a" Padr.Invariants.pp_report r) > 10)

let suite =
  [
    case "hand example" test_hand_example;
    case "full onion" test_full_onion;
    case "empty" test_empty;
    case "suite workloads" test_suite_workloads;
    prop_random;
    case "pp" test_pp;
  ]

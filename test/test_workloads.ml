open Helpers

let wn s = Cst_comm.Well_nested.is_well_nested s

let test_uniform_valid () =
  let rng = Cst_util.Prng.create 5 in
  for _ = 1 to 50 do
    let s = Cst_workloads.Gen_wn.uniform rng ~n:64 ~density:0.7 in
    check_true "well-nested" (wn s)
  done

let test_uniform_density () =
  let rng = Cst_util.Prng.create 5 in
  let s = Cst_workloads.Gen_wn.uniform rng ~n:1000 ~density:1.0 in
  check_int "full density" 500 (Cst_comm.Comm_set.size s);
  let s0 = Cst_workloads.Gen_wn.uniform rng ~n:1000 ~density:0.0 in
  check_int "zero density" 0 (Cst_comm.Comm_set.size s0)

let test_uniform_determinism () =
  let a = Cst_workloads.Gen_wn.uniform (Cst_util.Prng.create 9) ~n:64 ~density:0.5 in
  let b = Cst_workloads.Gen_wn.uniform (Cst_util.Prng.create 9) ~n:64 ~density:0.5 in
  check_true "same seed, same set" (Cst_comm.Comm_set.equal a b)

let test_uniform_invalid () =
  let rng = Cst_util.Prng.create 1 in
  check_raises_invalid "bad density" (fun () ->
      Cst_workloads.Gen_wn.uniform rng ~n:8 ~density:1.5);
  check_raises_invalid "bad n" (fun () ->
      Cst_workloads.Gen_wn.uniform rng ~n:1 ~density:0.5)

let test_onion () =
  let s = Cst_workloads.Gen_wn.onion ~n:16 ~width:5 in
  check_int "size" 5 (Cst_comm.Comm_set.size s);
  check_int "width exact" 5 (Cst_comm.Width.width ~leaves:16 s);
  check_true "well-nested" (wn s);
  check_raises_invalid "too wide" (fun () ->
      Cst_workloads.Gen_wn.onion ~n:8 ~width:5)

let test_pairs () =
  let s = Cst_workloads.Gen_wn.pairs ~n:16 in
  check_int "size" 8 (Cst_comm.Comm_set.size s);
  check_int "width 1" 1 (Cst_comm.Width.width ~leaves:16 s)

let test_with_width_exact () =
  let rng = Cst_util.Prng.create 11 in
  List.iter
    (fun w ->
      let s = Cst_workloads.Gen_wn.with_width rng ~n:256 ~width:w in
      check_int (Printf.sprintf "width %d" w) w
        (Cst_comm.Width.width ~leaves:256 s);
      check_true "well-nested" (wn s);
      check_true "has filler beyond the core"
        (Cst_comm.Comm_set.size s >= w))
    [ 1; 2; 3; 5; 8; 16; 33; 64; 128 ]

let test_with_width_invalid () =
  let rng = Cst_util.Prng.create 1 in
  check_raises_invalid "npot n" (fun () ->
      Cst_workloads.Gen_wn.with_width rng ~n:100 ~width:4)

let test_nested_blocks () =
  let rng = Cst_util.Prng.create 2 in
  let s = Cst_workloads.Gen_wn.nested_blocks rng ~n:64 ~blocks:4 ~depth:4 in
  check_int "size" 16 (Cst_comm.Comm_set.size s);
  check_int "width = depth" 4 (Cst_comm.Width.width ~leaves:64 s);
  check_true "well-nested" (wn s)

let test_patterns_valid () =
  List.iter
    (fun (name, s) ->
      check_true (name ^ " well-nested") (wn s))
    [
      ("fig2", Cst_workloads.Patterns.fig2 ());
      ("fig3b", Cst_workloads.Patterns.fig3b ());
      ("interleaved", Cst_workloads.Patterns.interleaved_pairs_exn ~n:16);
      ("comb", Cst_workloads.Patterns.comb_exn ~n:32 ~teeth:4);
      ("staircase", Cst_workloads.Patterns.staircase_exn ~n:32);
      ("full-onion", Cst_workloads.Patterns.full_onion_exn ~n:32);
      ("segment", Cst_workloads.Patterns.segment_neighbors_exn ~n:32);
      ("flip-flop", Cst_workloads.Adversarial.flip_flop ~n:32);
      ("deep-staircase", Cst_workloads.Adversarial.deep_staircase ~n:32);
    ]

let test_comb_width () =
  let s = Cst_workloads.Patterns.comb_exn ~n:32 ~teeth:4 in
  check_int "width is tooth depth" 4 (Cst_comm.Width.width ~leaves:32 s)

let test_patterns_typed_rejection () =
  (match Cst_workloads.Patterns.staircase ~n:12 with
  | Ok _ -> Alcotest.fail "staircase accepted npot n"
  | Error e ->
      check_true "names the pattern" (e.pattern = "staircase");
      check_int "carries n" 12 e.n);
  (match Cst_workloads.Patterns.interleaved_pairs ~n:2 with
  | Ok _ -> Alcotest.fail "interleaved_pairs accepted n = 2"
  | Error e -> check_true "names the pattern" (e.pattern = "interleaved_pairs"));
  check_raises_invalid "exn variant still raises" (fun () ->
      Cst_workloads.Patterns.full_onion_exn ~n:1)

let test_fig3b_semantics () =
  (* Figure 3(b): at the switch covering PEs 0..7, two pairs are matched
     and two sources pass above. *)
  let t = topo 16 in
  let p1 = Padr.Phase1.run t (Cst_workloads.Patterns.fig3b ()) in
  let st = Padr.Phase1.state p1 2 in
  check_int "m at u" 2 st.m;
  check_int "pass-up sources" 2 (st.sl + st.sr)

let test_suite_registry () =
  check_true "has uniform" (Cst_workloads.Suite.find "uniform" <> None);
  check_true "unknown" (Cst_workloads.Suite.find "nope" = None);
  let rng = Cst_util.Prng.create 77 in
  List.iter
    (fun (g : Cst_workloads.Suite.gen) ->
      let s = g.make rng ~n:32 in
      check_true (g.name ^ " generates a valid well-nested set") (wn s);
      check_true (g.name ^ " fits n") (Cst_comm.Comm_set.n s = 32))
    Cst_workloads.Suite.all

let test_all_suite_workloads_schedulable () =
  let rng = Cst_util.Prng.create 78 in
  List.iter
    (fun (g : Cst_workloads.Suite.gen) ->
      let s = g.make rng ~n:64 in
      let sched = Padr.schedule_exn s in
      let r = Padr.verify sched in
      check_true (g.name ^ " schedules: " ^ String.concat ";" r.issues) r.ok)
    Cst_workloads.Suite.all

(* --- translate / tile combinators ----------------------------------- *)

let embed ~n s =
  Cst_comm.Comm_set.create_exn ~n
    (Array.to_list (Cst_comm.Comm_set.comms s))

let test_translate_well_nested =
  prop "translate preserves well-nestedness" ~count:100 (fun params ->
      let s = set_of_params params in
      let n = Cst_comm.Comm_set.n s in
      let s2 = embed ~n:(2 * n) s in
      List.for_all
        (fun by ->
          let t = Cst_workloads.Gen_wn.translate ~by s2 in
          wn t && Cst_comm.Comm_set.size t = Cst_comm.Comm_set.size s2)
        [ 0; 1; n - 1; n ])

let test_translate_aligned_width =
  prop "aligned translate preserves width" ~count:100 (fun params ->
      let s = set_of_params params in
      let n = Cst_comm.Comm_set.n s in
      let align = Cst.Canon.align (Cst.Canon.place s).canon in
      let s2 = embed ~n:(4 * n) s in
      let w = Cst_comm.Width.width ~leaves:(4 * n) s2 in
      List.for_all
        (fun k ->
          let t = Cst_workloads.Gen_wn.translate ~by:(k * align) s2 in
          wn t && Cst_comm.Width.width ~leaves:(4 * n) t = w)
        [ 1; 2; 3 ])

(* An unaligned shift may change the width even though well-nestedness
   survives: {(1,4),(2,3)} has width 1 on 8 leaves (the two paths share
   no link), but shifted by 1 both pairs cross the root link. *)
let test_translate_unaligned_width () =
  let s = set ~n:8 [ (1, 4); (2, 3) ] in
  check_int "width 1 at the original placement" 1
    (Cst_comm.Width.width ~leaves:8 s);
  let t = Cst_workloads.Gen_wn.translate ~by:1 s in
  check_true "still well-nested" (wn t);
  check_int "but the width grows" 2 (Cst_comm.Width.width ~leaves:8 t)

let test_translate_invalid () =
  let s = set ~n:8 [ (1, 6) ] in
  check_raises_invalid "shift off the right edge" (fun () ->
      Cst_workloads.Gen_wn.translate ~by:2 s);
  check_raises_invalid "shift off the left edge" (fun () ->
      Cst_workloads.Gen_wn.translate ~by:(-2) s)

let test_tile =
  prop "tile preserves well-nestedness and width" ~count:60 (fun params ->
      let s = set_of_params params in
      let n = Cst_comm.Comm_set.n s in
      let w = Cst_comm.Width.width ~leaves:n s in
      List.for_all
        (fun copies ->
          let t = Cst_workloads.Gen_wn.tile ~copies s in
          Cst_comm.Comm_set.n t = n * copies
          && Cst_comm.Comm_set.size t = copies * Cst_comm.Comm_set.size s
          && wn t
          && Cst_comm.Width.width ~leaves:(Cst_util.Bits.ceil_pow2 (n * copies)) t
             = (if Cst_comm.Comm_set.size s = 0 then 0 else w))
        [ 1; 2; 4 ])

let test_tile_schedulable () =
  let rng = Cst_util.Prng.create 31 in
  let s = Cst_workloads.Gen_wn.uniform rng ~n:16 ~density:0.8 in
  let t = Cst_workloads.Gen_wn.tile ~copies:4 s in
  check_verified ~msg:"tiled set schedules" (Padr.schedule_exn t);
  check_raises_invalid "copies must be positive" (fun () ->
      Cst_workloads.Gen_wn.tile ~copies:0 s)

let suite =
  [
    case "uniform valid" test_uniform_valid;
    case "uniform density" test_uniform_density;
    case "uniform determinism" test_uniform_determinism;
    case "uniform invalid" test_uniform_invalid;
    case "onion" test_onion;
    case "pairs" test_pairs;
    case "with_width exact" test_with_width_exact;
    case "with_width invalid" test_with_width_invalid;
    case "nested blocks" test_nested_blocks;
    case "patterns valid" test_patterns_valid;
    case "comb width" test_comb_width;
    case "patterns typed rejection" test_patterns_typed_rejection;
    case "fig3b semantics" test_fig3b_semantics;
    case "suite registry" test_suite_registry;
    case "all suite workloads schedulable" test_all_suite_workloads_schedulable;
    test_translate_well_nested;
    test_translate_aligned_width;
    case "unaligned translate can widen" test_translate_unaligned_width;
    case "translate rejects out-of-range shifts" test_translate_invalid;
    test_tile;
    case "tiled sets schedule" test_tile_schedulable;
  ]

open Helpers

let lines s = String.split_on_char '\n' s

let test_axis () =
  let a = Cst_report.Arc_diagram.axis ~n:12 in
  match lines a with
  | [ tens; units; "" ] ->
      check_int "tens width" 12 (String.length tens);
      check_true "units cycle" (units = "012345678901");
      check_true "tens mark" (tens.[0] = '0' && tens.[10] = '1')
  | _ -> Alcotest.fail "axis must be two lines"

let test_render_set_simple () =
  let s = set ~n:8 [ (1, 4) ] in
  let txt = Cst_report.Arc_diagram.render_set s in
  match lines txt with
  | row :: _ ->
      check_true "span drawn" (row = " +-->   ")
  | [] -> Alcotest.fail "no output"

let test_render_set_nested_stacks () =
  let s = set ~n:8 [ (0, 7); (1, 2) ] in
  let txt = Cst_report.Arc_diagram.render_set s in
  let rows = lines txt in
  (* two body rows + two axis rows + trailing newline *)
  check_int "stacked rows" 5 (List.length rows);
  check_true "outer on first row" (List.nth rows 0 = "+------>");
  check_true "inner on second row" (List.nth rows 1 = " +>     ")

let test_render_set_left_oriented () =
  let s = set ~n:8 [ (5, 2) ] in
  let txt = Cst_report.Arc_diagram.render_set s in
  check_true "left arrow" (List.nth (lines txt) 0 = "  <--+  ")

let test_render_disjoint_share_row () =
  let s = set ~n:8 [ (0, 1); (3, 4); (6, 7) ] in
  let txt = Cst_report.Arc_diagram.render_set s in
  check_true "one row" (List.nth (lines txt) 0 = "+> +> +>")

let test_render_rounds () =
  let txt =
    Cst_report.Arc_diagram.render_rounds ~n:8
      [ (1, [ (0, 7) ]); (2, [ (1, 2); (4, 3) ]) ]
  in
  check_true "round headers"
    (List.exists (fun l -> l = "round 1:") (lines txt)
    && List.exists (fun l -> l = "round 2:") (lines txt))

let test_link_utilization () =
  let sched = schedule ~n:8 [ (0, 7); (1, 6); (2, 5); (3, 4) ] in
  let max_use = Cst_report.Schedule_stats.max_link_use sched in
  check_int "saturated link used every round" 4 max_use;
  let util = Cst_report.Schedule_stats.link_utilization sched in
  check_true "descending order"
    (let rec desc = function
       | (a : Cst_report.Schedule_stats.link_use)
         :: (b : Cst_report.Schedule_stats.link_use) :: rest ->
           a.rounds_used >= b.rounds_used && desc (b :: rest)
       | _ -> true
     in
     desc util);
  List.iter
    (fun (u : Cst_report.Schedule_stats.link_use) ->
      check_true "use within rounds" (u.rounds_used <= 4))
    util

let test_occupancy () =
  let sched = schedule ~n:8 [ (0, 7); (1, 2); (3, 4) ] in
  let o = Cst_report.Schedule_stats.occupancy sched in
  check_int "rounds" 2 o.rounds;
  check_int "comms" 3 o.comms;
  check_int "max" 2 o.max_per_round;
  check_int "min" 1 o.min_per_round;
  check_true "mean" (Float.abs (o.mean_per_round -. 1.5) < 1e-9)

let test_occupancy_empty () =
  let sched = schedule ~n:8 [] in
  let o = Cst_report.Schedule_stats.occupancy sched in
  check_int "rounds" 0 o.rounds;
  check_true "mean zero" (o.mean_per_round = 0.0)

let test_per_round_table () =
  let sched = schedule ~n:8 [ (0, 7); (1, 2) ] in
  let t = Cst_report.Schedule_stats.per_round_table sched in
  check_int "a row per round" 2 (Cst_report.Table.row_count t)

let test_per_round_table_no_snapshots () =
  (* keep_configs:false leaves no snapshots in the schedule; the
     live-connections column must be replayed from the execution log
     and match the snapshot-backed table exactly. *)
  let st = set ~n:8 [ (0, 7); (1, 2) ] in
  let log = Cst.Exec_log.create () in
  let bare = Padr.Csa.run_exn ~keep_configs:false ~log (topo 8) st in
  check_int "no snapshots" 0 (Array.length bare.rounds.(0).configs);
  let full = Padr.Csa.run_exn (topo 8) st in
  let expected = Cst_report.Schedule_stats.per_round_table full in
  let derived = Cst_report.Schedule_stats.per_round_table ~log bare in
  check_true "log fills the live-connections column"
    (Cst_report.Table.render derived = Cst_report.Table.render expected)

let test_max_link_use_equals_width_prop () =
  let rng = Cst_util.Prng.create 404 in
  for _ = 1 to 20 do
    let s = Cst_workloads.Gen_wn.uniform rng ~n:64 ~density:0.8 in
    if Cst_comm.Comm_set.size s > 0 then begin
      let sched = Padr.schedule_exn s in
      check_int "max link use = width" sched.width
        (Cst_report.Schedule_stats.max_link_use sched)
    end
  done

let suite =
  [
    case "axis" test_axis;
    case "render simple" test_render_set_simple;
    case "render nested stacks" test_render_set_nested_stacks;
    case "render left-oriented" test_render_set_left_oriented;
    case "render disjoint share a row" test_render_disjoint_share_row;
    case "render rounds" test_render_rounds;
    case "link utilization" test_link_utilization;
    case "occupancy" test_occupancy;
    case "occupancy empty" test_occupancy_empty;
    case "per-round table" test_per_round_table;
    case "per-round table without snapshots" test_per_round_table_no_snapshots;
    case "max link use = width" test_max_link_use_equals_width_prop;
  ]

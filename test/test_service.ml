open Helpers
module Service = Cst_service.Service

(* A random mixed batch: well-nested, crossing and mixed-orientation sets
   across every registry algorithm and both engines, including jobs that
   must fail (unknown algorithms, capability mismatches, oversized
   leaves overrides that crash Topology.create). *)

let algo_names = "not-an-algo" :: Cst_baselines.Registry.names

let random_job rng i =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 5) in
  let set =
    match Cst_util.Prng.int rng 3 with
    | 0 ->
        let density = 0.1 +. Cst_util.Prng.float rng 0.9 in
        Cst_workloads.Gen_wn.uniform rng ~n ~density
    | 1 ->
        Cst_workloads.Gen_arbitrary.random_pairs rng ~n
          ~pairs:(max 1 (n / 4))
    | _ -> Cst_workloads.Gen_wn.pairs ~n
  in
  let algo =
    List.nth algo_names (Cst_util.Prng.int rng (List.length algo_names))
  in
  let engine =
    match Cst_util.Prng.int rng 6 with
    | 0 -> Service.Message_passing
    | 1 -> Service.Segmented
    | _ -> Service.Spec
  in
  let leaves =
    (* Roughly one job in eight carries an invalid override: either too
       small (Too_large) or not a power of two (Topology.create raises,
       exercising the Crashed path). *)
    match Cst_util.Prng.int rng 8 with
    | 0 -> Some 2
    | 1 -> Some 100
    | _ -> None
  in
  Service.job ~engine ?leaves ~id:i ~algo set

let random_batch seed count =
  let rng = Cst_util.Prng.create seed in
  List.init count (random_job rng)

(* Tentpole property: the outcome list is a function of the jobs only,
   never of the domain count. *)
let test_parallel_equals_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"domains 1 = domains N, byte for byte"
       QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
       (fun (seed, domains) ->
         let jobs = random_batch seed 10 in
         let seq = List.map Service.outcome_to_string
             (Service.run ~domains:1 jobs)
         and par = List.map Service.outcome_to_string
             (Service.run ~domains jobs)
         in
         seq = par))

let test_ids_and_order () =
  let jobs = random_batch 42 30 in
  let outcomes = Service.run ~domains:4 jobs in
  check_int "one outcome per job" 30 (List.length outcomes);
  let ids = List.map (fun (o : Service.outcome) -> o.job_id) outcomes in
  check_true "sorted by job id" (List.sort compare ids = ids);
  check_true "every id present"
    (List.sort compare ids = List.init 30 Fun.id)

let test_errors_on_right_id () =
  let ok_job = Service.job ~id:0 ~algo:"csa" (set ~n:8 [ (0, 7); (1, 2) ]) in
  let bad_algo = Service.job ~id:1 ~algo:"nope" (set ~n:8 [ (1, 2) ]) in
  let too_large = Service.job ~leaves:2 ~id:2 ~algo:"csa" (set ~n:8 [ (1, 7) ]) in
  let crasher = Service.job ~leaves:100 ~id:3 ~algo:"csa" (set ~n:8 [ (1, 2) ]) in
  match Service.run ~domains:2 [ crasher; bad_algo; too_large; ok_job ] with
  | [ o0; o1; o2; o3 ] ->
      check_true "job 0 ok" (Result.is_ok o0.result);
      (match o1.result with
      | Error (Service.Unknown_algo "nope") -> ()
      | _ -> Alcotest.fail "job 1 should be Unknown_algo");
      (match o2.result with
      | Error (Service.Too_large { n = 8; leaves = 2 }) -> ()
      | _ -> Alcotest.fail "job 2 should be Too_large");
      (match o3.result with
      | Error (Service.Crashed _) -> ()
      | _ -> Alcotest.fail "job 3 should be Crashed")
  | os -> Alcotest.fail (Printf.sprintf "expected 4 outcomes, got %d" (List.length os))

(* A crashing job must not poison the pool: workers survive and keep
   processing later submissions through the streaming API. *)
let test_crash_does_not_poison_pool () =
  let t = Service.create ~domains:2 ~queue_capacity:4 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      for i = 0 to 9 do
        Service.submit t
          (Service.job ~leaves:100 ~id:i ~algo:"csa" (set ~n:8 [ (1, 2) ]))
      done;
      let first = Service.drain t in
      check_int "all crashers answered" 10 (List.length first);
      List.iter
        (fun (o : Service.outcome) ->
          match o.result with
          | Error (Service.Crashed _) -> ()
          | _ -> Alcotest.fail "expected Crashed")
        first;
      Service.submit t (Service.job ~id:99 ~algo:"csa" (set ~n:8 [ (0, 7) ]));
      match Service.drain t with
      | [ o ] ->
          check_int "later job answered" 99 o.job_id;
          check_true "and succeeded" (Result.is_ok o.result)
      | os ->
          Alcotest.fail
            (Printf.sprintf "expected 1 outcome, got %d" (List.length os)))

(* Backpressure: a tiny channel still completes a large batch. *)
let test_backpressure_small_queue () =
  let jobs = random_batch 7 40 in
  let outcomes = Service.run ~domains:3 ~queue_capacity:2 jobs in
  check_int "all jobs complete through a capacity-2 channel" 40
    (List.length outcomes)

let test_submit_after_shutdown () =
  let t = Service.create ~domains:1 () in
  Service.shutdown t;
  Service.shutdown t;
  (* idempotent *)
  check_raises_invalid "submit after shutdown" (fun () ->
      Service.submit t (Service.job ~id:0 ~algo:"csa" (set ~n:4 [ (0, 1) ])))

(* The message-passing engine realizes the same schedule as the spec
   scheduler: equal digests on well-nested sets. *)
let test_engine_digest_equals_spec =
  prop "engine digest = spec digest (csa)" ~count:50 (fun params ->
      let s = set_of_params params in
      let spec = Service.run_job (Service.job ~id:0 ~algo:"csa" s) in
      let eng =
        Service.run_job
          (Service.job ~engine:Service.Message_passing ~id:0 ~algo:"csa" s)
      in
      match (spec, eng) with
      | Ok a, Ok b -> a.digest = b.digest
      | _ -> false)

(* The segment-parallel path is outcome-identical to the sequential
   engine — digest, rounds, cycles, messages, power — with or without
   the cache. *)
let test_segmented_equals_engine =
  prop "segmented outcome = engine outcome (csa)" ~count:50 (fun params ->
      let s = set_of_params params in
      let outcome engine cache =
        Service.outcome_to_string
          {
            job_id = 0;
            result =
              (let j = Service.job ~engine ~id:0 ~algo:"csa" s in
               if cache then
                 let pc = Cst_service.Plan_cache.create ~domains:1 () in
                 Service.run_job ~cache:(pc, 0) j
               else Service.run_job j);
          }
      in
      let eng = outcome Service.Message_passing false in
      eng = outcome Service.Segmented false
      && eng = outcome Service.Segmented true)

(* Capability dispatch: a crossing set is wave-covered for the csa,
   scheduled directly by crossing-tolerant baselines and rejected with
   the typed violation otherwise. *)
let test_capability_dispatch () =
  let crossing = set ~n:8 [ (0, 2); (1, 3) ] in
  (match Service.run_job (Service.job ~id:0 ~algo:"csa" crossing) with
  | Ok r -> check_true "csa wave-covers crossing sets" (r.waves >= 2)
  | Error _ -> Alcotest.fail "csa should cover a crossing set");
  (match Service.run_job (Service.job ~id:0 ~algo:"greedy" crossing) with
  | Ok r -> check_int "greedy schedules it directly" 1 r.waves
  | Error _ -> Alcotest.fail "greedy supports arbitrary sets");
  (match Service.run_job (Service.job ~id:0 ~algo:"roy-id" crossing) with
  | Error (Service.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "roy-id should reject a crossing set");
  let mixed = set ~n:8 [ (0, 1); (3, 2) ] in
  (match Service.run_job (Service.job ~id:0 ~algo:"naive" mixed) with
  | Error (Service.Unsupported _) -> ()
  | _ -> Alcotest.fail "naive should reject mixed orientation");
  match
    Service.run_job
      (Service.job ~engine:Service.Message_passing ~id:0 ~algo:"naive"
         (set ~n:4 [ (0, 1) ]))
  with
  | Error (Service.Unsupported _) -> ()
  | _ -> Alcotest.fail "naive has no message-passing engine"

(* --- the plan cache ------------------------------------------------- *)

module Plan_cache = Cst_service.Plan_cache

(* A 90%-repetitive trace: a few base shapes replayed under aligned
   translations, with a fresh unique shape every few jobs. *)
let translated_trace rng ~jobs ~engine =
  let bases =
    [|
      set ~n:8 [ (0, 7); (1, 2); (3, 6) ];
      set ~n:8 [ (1, 6); (2, 5) ];
      Cst_workloads.Gen_wn.uniform rng ~n:8 ~density:0.8;
    |]
  in
  List.init jobs (fun i ->
      let s =
        if i mod 10 = 9 then
          (* unique shape: never repeats, so it can only miss *)
          Cst_workloads.Gen_wn.uniform rng ~n:64 ~density:0.3
        else
          (* Aligned translate of a base shape: the structural signature
             is unchanged (any base spans at most 8 PEs, so its
             alignment divides 8), only the placement moves. *)
          let b = bases.(Cst_util.Prng.int rng (Array.length bases)) in
          let by = 8 * Cst_util.Prng.int rng 8 in
          Cst_workloads.Gen_wn.translate ~by
            (Cst_comm.Comm_set.create_exn ~n:64
               (Array.to_list (Cst_comm.Comm_set.comms b)))
      in
      Service.job ~engine ~leaves:64 ~id:i ~algo:"csa" s)

(* Cached and uncached runs must be byte-identical, for any domain
   count: the cache only changes how an outcome is produced. *)
let test_cached_equals_uncached =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"cached = uncached, byte for byte, any domain count"
       QCheck.(triple (int_bound 1_000_000) (int_range 1 4) (int_range 0 2))
       (fun (seed, domains, engine) ->
         let rng = Cst_util.Prng.create seed in
         let engine =
           match engine with
           | 0 -> Service.Spec
           | 1 -> Service.Message_passing
           | _ -> Service.Segmented
         in
         let jobs = translated_trace rng ~jobs:30 ~engine in
         let cached =
           List.map Service.outcome_to_string (Service.run ~domains jobs)
         and uncached =
           List.map Service.outcome_to_string
             (Service.run ~domains:1 ~cache:false jobs)
         in
         cached = uncached))

let test_cache_hit_rate () =
  let rng = Cst_util.Prng.create 11 in
  let jobs = translated_trace rng ~jobs:100 ~engine:Service.Spec in
  let t = Service.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      List.iter (Service.submit t) jobs;
      let outcomes = Service.drain t in
      check_int "all jobs answered" 100 (List.length outcomes);
      match Service.cache_stats t with
      | None -> Alcotest.fail "cache enabled by default"
      | Some s ->
          check_int "every cacheable job consulted the cache" 100
            (s.hits + s.misses);
          check_true
            (Printf.sprintf "repetitive trace mostly hits (%d/100)" s.hits)
            (s.hits >= 70);
          check_int "per-domain counters sum to the totals"
            (s.hits + s.misses)
            (Array.fold_left
               (fun acc (h, m, _) -> acc + h + m)
               0 s.per_domain);
          (* Hit or miss, outcomes match the uncached run. *)
          let uncached = Service.run ~domains:1 ~cache:false jobs in
          check_true "outcomes equal uncached"
            (List.map Service.outcome_to_string outcomes
            = List.map Service.outcome_to_string uncached))

let test_cache_disabled () =
  let t = Service.create ~domains:1 ~cache:false () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      Service.submit t (Service.job ~id:0 ~algo:"csa" (set ~n:8 [ (0, 7) ]));
      ignore (Service.drain t);
      check_true "no stats without a cache" (Service.cache_stats t = None))

(* Waves and crossing sets never touch the cache. *)
let test_uncacheable_paths_bypass () =
  let t = Service.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      let crossing = set ~n:8 [ (0, 2); (1, 3) ] in
      Service.submit t (Service.job ~id:0 ~algo:"csa" crossing);
      Service.submit t (Service.job ~id:1 ~algo:"greedy" crossing);
      (match Service.drain t with
      | [ o0; o1 ] ->
          let status (o : Service.outcome) =
            match o.result with
            | Ok r -> r.cache
            | Error _ -> Alcotest.fail "jobs should succeed"
          in
          check_true "wave cover bypasses" (status o0 = Service.Bypass);
          check_true "crossing direct run bypasses"
            (status o1 = Service.Bypass)
      | os ->
          Alcotest.fail
            (Printf.sprintf "expected 2 outcomes, got %d" (List.length os)));
      match Service.cache_stats t with
      | Some s -> check_int "no lookups recorded" 0 (s.hits + s.misses)
      | None -> Alcotest.fail "cache is on")

(* Segmented jobs consult the cache once per block: an identical
   resubmission replays every block (reported [Hit]), a set sharing only
   some block shapes replays those and schedules the rest ([Miss]). *)
let test_segmented_block_cache () =
  let t = Service.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      let a = set ~n:32 [ (0, 3); (1, 2); (8, 11); (16, 23); (17, 18) ] in
      (* shares the [(0,3);(1,2)] block shape with [a]; the width-2
         block is a shape the pool has never seen *)
      let b = set ~n:32 [ (0, 3); (1, 2); (24, 25) ] in
      let seg id s = Service.job ~engine:Service.Segmented ~id ~algo:"csa" s in
      List.iter (Service.submit t) [ seg 0 a; seg 1 a; seg 2 b ];
      match Service.drain t with
      | [ o0; o1; o2 ] ->
          let r i (o : Service.outcome) =
            match o.result with
            | Ok r -> r
            | Error _ -> Alcotest.fail (Printf.sprintf "job %d failed" i)
          in
          let r0 = r 0 o0 and r1 = r 1 o1 and r2 = r 2 o2 in
          check_int "three blocks" 3 r0.blocks;
          check_int "cold pool: no block hits" 0 r0.block_hits;
          check_true "cold pool: Miss" (r0.cache = Service.Miss);
          check_int "resubmission replays every block" r1.blocks r1.block_hits;
          check_true "all blocks hit: Hit" (r1.cache = Service.Hit);
          check_true "replayed outcome identical"
            (Service.outcome_to_string { job_id = 0; result = Ok r0 }
            = Service.outcome_to_string { job_id = 0; result = Ok r1 });
          check_int "two blocks" 2 r2.blocks;
          check_int "shared shape replays, fresh shape schedules" 1
            r2.block_hits;
          check_true "partial hits stay Miss" (r2.cache = Service.Miss)
      | os ->
          Alcotest.fail
            (Printf.sprintf "expected 3 outcomes, got %d" (List.length os)))

(* Block plans and whole-set engine plans share one key namespace (both
   are frozen at the full tree size): a whole-set engine run pre-warms
   the segmented path, and a single-block segmented run pre-warms the
   whole-set engine path. *)
let test_segmented_interop_with_engine_plans () =
  let t = Service.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      let s = set ~n:8 [ (0, 7); (1, 2) ] in
      (* (2,5) straddles the midline, so [u] is one block spanning the
         whole tree — its block plan IS a whole-set plan *)
      let u = set ~n:8 [ (2, 5); (3, 4) ] in
      List.iter (Service.submit t)
        [
          Service.job ~engine:Service.Message_passing ~id:0 ~algo:"csa" s;
          Service.job ~engine:Service.Segmented ~id:1 ~algo:"csa" s;
          Service.job ~engine:Service.Segmented ~id:2 ~algo:"csa" u;
          Service.job ~engine:Service.Message_passing ~id:3 ~algo:"csa" u;
        ];
      match Service.drain t with
      | [ o0; o1; o2; o3 ] ->
          let r i (o : Service.outcome) =
            match o.result with
            | Ok r -> r
            | Error _ -> Alcotest.fail (Printf.sprintf "job %d failed" i)
          in
          let r0 = r 0 o0 and r1 = r 1 o1 and r2 = r 2 o2 and r3 = r 3 o3 in
          check_int "blocks reported only on the segmented path" 0 r0.blocks;
          check_true "whole-set run schedules fresh" (r0.cache = Service.Miss);
          check_int "one block" 1 r1.blocks;
          check_int "served by the whole-set engine plan" 1 r1.block_hits;
          check_true "digest unchanged" (r0.digest = r1.digest);
          check_true "block plan pre-warms the whole-set engine path"
            (r2.cache = Service.Miss && r3.cache = Service.Hit);
          check_true "digest unchanged (reverse)" (r2.digest = r3.digest)
      | os ->
          Alcotest.fail
            (Printf.sprintf "expected 4 outcomes, got %d" (List.length os)))

(* Unit tests against the cache itself: LRU eviction honours the byte
   budget, and a duplicate insert keeps the resident entry. *)
let plan_for ~id =
  let s = set ~n:8 [ (id mod 4, 4 + (id mod 4)) ] in
  let topo = Cst.Topology.create ~leaves:8 in
  (s, Result.get_ok (Padr.Plan.compile topo s))

let key_of ~id s : Plan_cache.key =
  {
    algo = Printf.sprintf "a%d" id;
    engine = false;
    shape = Cst.Shape.binary ~leaves:8;
    base = 0;
    canon = (Cst.Canon.place s).canon;
  }

let test_plan_cache_lru () =
  let _, p0 = plan_for ~id:0 in
  let budget = (3 * Padr.Plan.bytes p0) + (Padr.Plan.bytes p0 / 2) in
  let pc = Plan_cache.create ~max_bytes:budget ~domains:1 () in
  let keys =
    Array.init 5 (fun id ->
        let s, p = plan_for ~id in
        let k = key_of ~id s in
        Plan_cache.add pc ~worker:0 k p;
        k)
  in
  let s = Plan_cache.stats pc in
  check_true "byte budget held" (s.bytes <= budget);
  check_int "two oldest evicted" 2 s.evictions;
  check_int "three resident" 3 s.entries;
  check_true "oldest entry gone"
    (Plan_cache.find pc ~worker:0 keys.(0) = None);
  check_true "newest entry resident"
    (Plan_cache.find pc ~worker:0 keys.(4) <> None);
  (* Touch an old survivor, insert one more: the untouched one goes. *)
  ignore (Plan_cache.find pc ~worker:0 keys.(2));
  let s5, p5 = plan_for ~id:5 in
  Plan_cache.add pc ~worker:0 (key_of ~id:5 s5) p5;
  check_true "recently used survives"
    (Plan_cache.find pc ~worker:0 keys.(2) <> None);
  check_true "least recently used evicted"
    (Plan_cache.find pc ~worker:0 keys.(3) = None)

let test_plan_cache_duplicate_add () =
  let pc = Plan_cache.create ~domains:2 () in
  let s, p = plan_for ~id:0 in
  let k = key_of ~id:0 s in
  Plan_cache.add pc ~worker:0 k p;
  let resident =
    match Plan_cache.find pc ~worker:0 k with
    | Some r -> r
    | None -> Alcotest.fail "inserted plan must be found"
  in
  (* A second worker racing the same compile drops its duplicate. *)
  let _, p' = plan_for ~id:0 in
  Plan_cache.add pc ~worker:1 k p';
  (match Plan_cache.find pc ~worker:1 k with
  | Some r -> check_true "first insert kept" (r == resident)
  | None -> Alcotest.fail "entry vanished");
  let s = Plan_cache.stats pc in
  check_int "one entry" 1 s.entries;
  check_int "no evictions" 0 s.evictions

let test_oversized_plan_not_admitted () =
  let pc = Plan_cache.create ~max_bytes:8 ~domains:1 () in
  let s, p = plan_for ~id:0 in
  let k = key_of ~id:0 s in
  Plan_cache.add pc ~worker:0 k p;
  let st = Plan_cache.stats pc in
  check_int "nothing resident" 0 st.entries;
  check_int "nothing counted as evicted" 0 st.evictions

let suite =
  [
    test_parallel_equals_sequential;
    case "ids and order" test_ids_and_order;
    case "errors on the right id" test_errors_on_right_id;
    case "crash does not poison the pool" test_crash_does_not_poison_pool;
    case "backpressure with a tiny queue" test_backpressure_small_queue;
    case "submit after shutdown" test_submit_after_shutdown;
    test_engine_digest_equals_spec;
    test_segmented_equals_engine;
    case "capability dispatch" test_capability_dispatch;
    test_cached_equals_uncached;
    case "segmented jobs cache per-block plans" test_segmented_block_cache;
    case "block plans interoperate with whole-set engine plans"
      test_segmented_interop_with_engine_plans;
    case "cache hit rate on a repetitive trace" test_cache_hit_rate;
    case "cache disabled" test_cache_disabled;
    case "uncacheable paths bypass" test_uncacheable_paths_bypass;
    case "plan cache LRU eviction" test_plan_cache_lru;
    case "plan cache duplicate insert" test_plan_cache_duplicate_add;
    case "oversized plan not admitted" test_oversized_plan_not_admitted;
  ]

open Helpers
module Service = Cst_service.Service

(* A random mixed batch: well-nested, crossing and mixed-orientation sets
   across every registry algorithm and both engines, including jobs that
   must fail (unknown algorithms, capability mismatches, oversized
   leaves overrides that crash Topology.create). *)

let algo_names = "not-an-algo" :: Cst_baselines.Registry.names

let random_job rng i =
  let n = 1 lsl (2 + Cst_util.Prng.int rng 5) in
  let set =
    match Cst_util.Prng.int rng 3 with
    | 0 ->
        let density = 0.1 +. Cst_util.Prng.float rng 0.9 in
        Cst_workloads.Gen_wn.uniform rng ~n ~density
    | 1 ->
        Cst_workloads.Gen_arbitrary.random_pairs rng ~n
          ~pairs:(max 1 (n / 4))
    | _ -> Cst_workloads.Gen_wn.pairs ~n
  in
  let algo =
    List.nth algo_names (Cst_util.Prng.int rng (List.length algo_names))
  in
  let engine =
    if Cst_util.Prng.int rng 4 = 0 then Service.Message_passing
    else Service.Spec
  in
  let leaves =
    (* Roughly one job in eight carries an invalid override: either too
       small (Too_large) or not a power of two (Topology.create raises,
       exercising the Crashed path). *)
    match Cst_util.Prng.int rng 8 with
    | 0 -> Some 2
    | 1 -> Some 100
    | _ -> None
  in
  Service.job ~engine ?leaves ~id:i ~algo set

let random_batch seed count =
  let rng = Cst_util.Prng.create seed in
  List.init count (random_job rng)

(* Tentpole property: the outcome list is a function of the jobs only,
   never of the domain count. *)
let test_parallel_equals_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"domains 1 = domains N, byte for byte"
       QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
       (fun (seed, domains) ->
         let jobs = random_batch seed 10 in
         let seq = List.map Service.outcome_to_string
             (Service.run ~domains:1 jobs)
         and par = List.map Service.outcome_to_string
             (Service.run ~domains jobs)
         in
         seq = par))

let test_ids_and_order () =
  let jobs = random_batch 42 30 in
  let outcomes = Service.run ~domains:4 jobs in
  check_int "one outcome per job" 30 (List.length outcomes);
  let ids = List.map (fun (o : Service.outcome) -> o.job_id) outcomes in
  check_true "sorted by job id" (List.sort compare ids = ids);
  check_true "every id present"
    (List.sort compare ids = List.init 30 Fun.id)

let test_errors_on_right_id () =
  let ok_job = Service.job ~id:0 ~algo:"csa" (set ~n:8 [ (0, 7); (1, 2) ]) in
  let bad_algo = Service.job ~id:1 ~algo:"nope" (set ~n:8 [ (1, 2) ]) in
  let too_large = Service.job ~leaves:2 ~id:2 ~algo:"csa" (set ~n:8 [ (1, 7) ]) in
  let crasher = Service.job ~leaves:100 ~id:3 ~algo:"csa" (set ~n:8 [ (1, 2) ]) in
  match Service.run ~domains:2 [ crasher; bad_algo; too_large; ok_job ] with
  | [ o0; o1; o2; o3 ] ->
      check_true "job 0 ok" (Result.is_ok o0.result);
      (match o1.result with
      | Error (Service.Unknown_algo "nope") -> ()
      | _ -> Alcotest.fail "job 1 should be Unknown_algo");
      (match o2.result with
      | Error (Service.Too_large { n = 8; leaves = 2 }) -> ()
      | _ -> Alcotest.fail "job 2 should be Too_large");
      (match o3.result with
      | Error (Service.Crashed _) -> ()
      | _ -> Alcotest.fail "job 3 should be Crashed")
  | os -> Alcotest.fail (Printf.sprintf "expected 4 outcomes, got %d" (List.length os))

(* A crashing job must not poison the pool: workers survive and keep
   processing later submissions through the streaming API. *)
let test_crash_does_not_poison_pool () =
  let t = Service.create ~domains:2 ~queue_capacity:4 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      for i = 0 to 9 do
        Service.submit t
          (Service.job ~leaves:100 ~id:i ~algo:"csa" (set ~n:8 [ (1, 2) ]))
      done;
      let first = Service.drain t in
      check_int "all crashers answered" 10 (List.length first);
      List.iter
        (fun (o : Service.outcome) ->
          match o.result with
          | Error (Service.Crashed _) -> ()
          | _ -> Alcotest.fail "expected Crashed")
        first;
      Service.submit t (Service.job ~id:99 ~algo:"csa" (set ~n:8 [ (0, 7) ]));
      match Service.drain t with
      | [ o ] ->
          check_int "later job answered" 99 o.job_id;
          check_true "and succeeded" (Result.is_ok o.result)
      | os ->
          Alcotest.fail
            (Printf.sprintf "expected 1 outcome, got %d" (List.length os)))

(* Backpressure: a tiny channel still completes a large batch. *)
let test_backpressure_small_queue () =
  let jobs = random_batch 7 40 in
  let outcomes = Service.run ~domains:3 ~queue_capacity:2 jobs in
  check_int "all jobs complete through a capacity-2 channel" 40
    (List.length outcomes)

let test_submit_after_shutdown () =
  let t = Service.create ~domains:1 () in
  Service.shutdown t;
  Service.shutdown t;
  (* idempotent *)
  check_raises_invalid "submit after shutdown" (fun () ->
      Service.submit t (Service.job ~id:0 ~algo:"csa" (set ~n:4 [ (0, 1) ])))

(* The message-passing engine realizes the same schedule as the spec
   scheduler: equal digests on well-nested sets. *)
let test_engine_digest_equals_spec =
  prop "engine digest = spec digest (csa)" ~count:50 (fun params ->
      let s = set_of_params params in
      let spec = Service.run_job (Service.job ~id:0 ~algo:"csa" s) in
      let eng =
        Service.run_job
          (Service.job ~engine:Service.Message_passing ~id:0 ~algo:"csa" s)
      in
      match (spec, eng) with
      | Ok a, Ok b -> a.digest = b.digest
      | _ -> false)

(* Capability dispatch: a crossing set is wave-covered for the csa,
   scheduled directly by crossing-tolerant baselines and rejected with
   the typed violation otherwise. *)
let test_capability_dispatch () =
  let crossing = set ~n:8 [ (0, 2); (1, 3) ] in
  (match Service.run_job (Service.job ~id:0 ~algo:"csa" crossing) with
  | Ok r -> check_true "csa wave-covers crossing sets" (r.waves >= 2)
  | Error _ -> Alcotest.fail "csa should cover a crossing set");
  (match Service.run_job (Service.job ~id:0 ~algo:"greedy" crossing) with
  | Ok r -> check_int "greedy schedules it directly" 1 r.waves
  | Error _ -> Alcotest.fail "greedy supports arbitrary sets");
  (match Service.run_job (Service.job ~id:0 ~algo:"roy-id" crossing) with
  | Error (Service.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "roy-id should reject a crossing set");
  let mixed = set ~n:8 [ (0, 1); (3, 2) ] in
  (match Service.run_job (Service.job ~id:0 ~algo:"naive" mixed) with
  | Error (Service.Unsupported _) -> ()
  | _ -> Alcotest.fail "naive should reject mixed orientation");
  match
    Service.run_job
      (Service.job ~engine:Service.Message_passing ~id:0 ~algo:"naive"
         (set ~n:4 [ (0, 1) ]))
  with
  | Error (Service.Unsupported _) -> ()
  | _ -> Alcotest.fail "naive has no message-passing engine"

let suite =
  [
    test_parallel_equals_sequential;
    case "ids and order" test_ids_and_order;
    case "errors on the right id" test_errors_on_right_id;
    case "crash does not poison the pool" test_crash_does_not_poison_pool;
    case "backpressure with a tiny queue" test_backpressure_small_queue;
    case "submit after shutdown" test_submit_after_shutdown;
    test_engine_digest_equals_spec;
    case "capability dispatch" test_capability_dispatch;
  ]

open Helpers

(* Level-table validation, the CLI grammar, and — via qcheck — the
   table-driven topology arithmetic checked against brute-force walks
   of the parent relation on random k-ary and fat-tree shapes. *)

let shape_err =
  Alcotest.testable Cst.Shape.pp_error (fun a b -> a = b)

let check_rejects name ~level_sizes ~capacities expected =
  case name (fun () ->
      match Cst.Shape.create ~level_sizes ~capacities with
      | Ok s ->
          Alcotest.failf "expected rejection, got %s" (Cst.Shape.to_string s)
      | Error e -> Alcotest.check shape_err name expected e)

let rejections =
  [
    check_rejects "empty table" ~level_sizes:[||] ~capacities:[||]
      (Cst.Shape.Too_few_leaves 0);
    check_rejects "one leaf" ~level_sizes:[| 1 |] ~capacities:[| 1 |]
      (Cst.Shape.Too_few_leaves 1);
    check_rejects "growing level" ~level_sizes:[| 4; 8 |]
      ~capacities:[| 1; 1 |]
      (Cst.Shape.Increasing_level_size { depth = 1; size = 8; child_size = 4 });
    check_rejects "equal levels" ~level_sizes:[| 4; 4 |]
      ~capacities:[| 1; 1 |]
      (Cst.Shape.Increasing_level_size { depth = 1; size = 4; child_size = 4 });
    check_rejects "fractional fanout" ~level_sizes:[| 9; 2 |]
      ~capacities:[| 1; 1 |]
      (Cst.Shape.Fractional_fanout { depth = 1; size = 2; child_size = 9 });
    check_rejects "zero capacity" ~level_sizes:[| 4; 2 |]
      ~capacities:[| 0; 1 |]
      (Cst.Shape.Bad_capacity { depth = 2; cap = 0 });
    check_rejects "negative capacity" ~level_sizes:[| 4; 2 |]
      ~capacities:[| 2; -1 |]
      (Cst.Shape.Bad_capacity { depth = 1; cap = -1 });
    check_rejects "capacity arity" ~level_sizes:[| 4; 2 |]
      ~capacities:[| 1 |]
      (Cst.Shape.Capacity_arity { expected = 2; got = 1 });
    case "pp_error covers every constructor" (fun () ->
        (* Cst.Shape.Root_not_single is unreachable through the public
           constructors (the root level is implied); the printer is
           still total. *)
        List.iter
          (fun (e : Cst.Shape.error) ->
            check_true "non-empty message"
              (Format.asprintf "%a" Cst.Shape.pp_error e <> ""))
          [
            Cst.Shape.Too_few_leaves 0;
            Cst.Shape.Root_not_single 3;
            Cst.Shape.Increasing_level_size { depth = 0; size = 4; child_size = 2 };
            Cst.Shape.Fractional_fanout { depth = 0; size = 2; child_size = 9 };
            Cst.Shape.Bad_capacity { depth = 1; cap = 0 };
            Cst.Shape.Capacity_arity { expected = 2; got = 1 };
          ]);
    case "binary rejects non-powers" (fun () ->
        check_raises_invalid "3 leaves" (fun () ->
            Cst.Shape.binary ~leaves:3);
        check_raises_invalid "1 leaf" (fun () -> Cst.Shape.binary ~leaves:1));
    case "kary rejects bad arity" (fun () ->
        check_raises_invalid "k=1" (fun () ->
            Cst.Shape.kary ~k:1 ~leaves:4);
        check_raises_invalid "leaves < k" (fun () ->
            Cst.Shape.kary ~k:4 ~leaves:2);
        check_raises_invalid "not a power of k" (fun () ->
            Cst.Shape.kary ~k:3 ~leaves:10));
  ]

let fat level_sizes capacities =
  Result.get_ok (Cst.Shape.fat_tree ~level_sizes ~capacities)

let grammar =
  [
    case "round-trips" (fun () ->
        List.iter
          (fun s ->
            match Cst.Shape.of_string s with
            | Error e -> Alcotest.failf "%s: %s" s e
            | Ok sh ->
                Alcotest.(check string) s s (Cst.Shape.to_string sh))
          [ "bin:64"; "kary:3:27"; "kary:4:256"; "fat:256,16:2,4" ]);
    case "normalization" (fun () ->
        (* kary of arity 2 is the binary tree; a unit-capacity fat table
           with uniform fanout is a kary — to_string canonicalizes. *)
        Alcotest.(check string)
          "kary 2" "bin:16"
          (Cst.Shape.to_string (Cst.Shape.kary ~k:2 ~leaves:16));
        Alcotest.(check string)
          "fat as kary" "kary:8:64"
          (Cst.Shape.to_string (fat [| 64; 8 |] [| 1; 1 |]));
        Alcotest.(check string)
          "halving ladder is binary" "bin:16"
          (Cst.Shape.to_string (fat [| 16; 8; 4; 2 |] [| 1; 1; 1; 1 |])));
    case "parse errors" (fun () ->
        List.iter
          (fun s ->
            match Cst.Shape.of_string s with
            | Error _ -> ()
            | Ok sh ->
                Alcotest.failf "%S parsed as %s" s (Cst.Shape.to_string sh))
          [ ""; "bogus"; "bin:x"; "bin:3"; "kary:3:10"; "fat:4,8"; "fat:8,2:0,1" ]);
    case "fingerprint pinned to 0 on binary" (fun () ->
        check_int "binary" 0
          (Cst.Shape.fingerprint (Cst.Shape.binary ~leaves:64));
        check_int "kary 2" 0
          (Cst.Shape.fingerprint (Cst.Shape.kary ~k:2 ~leaves:64));
        check_int "unit ladder" 0
          (Cst.Shape.fingerprint (fat [| 8; 4; 2 |] [| 1; 1; 1 |]));
        check_true "kary 4 nonzero"
          (Cst.Shape.fingerprint (Cst.Shape.kary ~k:4 ~leaves:64) <> 0);
        check_true "capacities distinguish"
          (Cst.Shape.fingerprint (fat [| 64; 8 |] [| 2; 2 |])
          <> Cst.Shape.fingerprint (fat [| 64; 8 |] [| 1; 1 |])));
    case "equal" (fun () ->
        check_true "same table"
          (Cst.Shape.equal
             (Cst.Shape.kary ~k:4 ~leaves:64)
             (fat [| 64; 16; 4 |] [| 1; 1; 1 |]));
        check_true "different caps differ"
          (not
             (Cst.Shape.equal
                (fat [| 64; 8 |] [| 2; 2 |])
                (fat [| 64; 8 |] [| 1; 1 |]))));
    case "accessors" (fun () ->
        let s = fat [| 64; 8 |] [| 2; 3 |] in
        check_int "levels" 2 (Cst.Shape.levels s);
        check_int "leaves" 64 (Cst.Shape.leaves s);
        check_int "nodes" (1 + 8 + 64) (Cst.Shape.num_nodes s);
        check_int "root fanout" 8 (Cst.Shape.fanout_at s ~depth:0);
        check_int "switch fanout" 8 (Cst.Shape.fanout_at s ~depth:1);
        check_int "leaf uplink cap" 2 (Cst.Shape.cap_at s ~depth:2);
        check_int "switch uplink cap" 3 (Cst.Shape.cap_at s ~depth:1));
  ]

(* Random small shapes for the walker properties.  Kept small so the
   O(nodes^2) brute-force comparisons stay cheap. *)
let gen_shape =
  QCheck.Gen.(
    let pow k d =
      let r = ref 1 in
      for _ = 1 to d do
        r := !r * k
      done;
      !r
    in
    oneof
      [
        (let* k = int_range 2 4 in
         let* d = int_range 2 (if k = 2 then 5 else 3) in
         return (Cst.Shape.kary ~k ~leaves:(pow k d)));
        (let* l1 = int_range 2 6 in
         let* f = int_range 2 5 in
         let* c0 = int_range 1 3 in
         let* c1 = int_range 1 3 in
         return
           (Result.get_ok
              (Cst.Shape.fat_tree ~level_sizes:[| l1 * f; l1 |]
                 ~capacities:[| c0; c1 |])));
        (let* l2 = int_range 2 3 in
         let* f1 = int_range 2 3 in
         let* f0 = int_range 2 4 in
         let* c = int_range 1 2 in
         return
           (Result.get_ok
              (Cst.Shape.fat_tree
                 ~level_sizes:[| l2 * f1 * f0; l2 * f1; l2 |]
                 ~capacities:[| c; 1; c |])));
      ])

let arbitrary_shape = QCheck.make ~print:Cst.Shape.to_string gen_shape

let shape_prop name ?(count = 60) f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arbitrary_shape f)

(* Brute-force reference walks over the parent relation only. *)
let brute_path topo v =
  let rec up v acc =
    if v = Cst.Topology.root then List.rev (v :: acc)
    else up (Cst.Topology.parent topo v) (v :: acc)
  in
  up v []

let brute_lca topo a b =
  let pa = brute_path topo a in
  List.find (fun v -> List.mem v pa) (brute_path topo b)

let brute_interval topo v =
  let leaves = Cst.Topology.leaves topo in
  let covered = ref [] in
  for p = leaves - 1 downto 0 do
    if List.mem v (brute_path topo (Cst.Topology.node_of_pe topo p)) then
      covered := p :: !covered
  done;
  match !covered with
  | [] -> Alcotest.fail "node covers no leaves"
  | lo :: _ as l -> (lo, List.nth l (List.length l - 1) + 1)

let all_nodes topo =
  List.init (Cst.Topology.num_nodes topo) (fun i -> i + Cst.Topology.root)

let props =
  [
    shape_prop "lca agrees with the path walk" (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        let nodes = all_nodes topo in
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> Cst.Topology.lca topo a b = brute_lca topo a b)
              nodes)
          nodes);
    shape_prop "interval agrees with leaf coverage" (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        List.for_all
          (fun v -> Cst.Topology.interval topo v = brute_interval topo v)
          (all_nodes topo));
    shape_prop "mid is the end of the first child's interval"
      (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        List.for_all
          (fun v ->
            Cst.Topology.is_leaf topo v
            || Cst.Topology.mid topo v
               = snd (brute_interval topo (Cst.Topology.child topo v 0)))
          (all_nodes topo));
    shape_prop "path_to_root is the parent walk" (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        List.for_all
          (fun v -> Cst.Topology.path_to_root topo v = brute_path topo v)
          (all_nodes topo));
    shape_prop "children partition the parent's interval" (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        List.for_all
          (fun v ->
            Cst.Topology.is_leaf topo v
            ||
            let lo, hi = Cst.Topology.interval topo v in
            let f = Cst.Topology.fanout_of topo v in
            let bounds =
              List.init f (fun i ->
                  Cst.Topology.interval topo (Cst.Topology.child topo v i))
            in
            List.for_all2
              (fun i (clo, chi) ->
                clo = lo + (i * (hi - lo) / f) && chi - clo = (hi - lo) / f)
              (List.init f Fun.id) bounds)
          (all_nodes topo));
    shape_prop "uplink_cap matches the shape table" (fun shape ->
        let topo = Cst.Topology.of_shape shape in
        List.for_all
          (fun v ->
            v = Cst.Topology.root
            || Cst.Topology.uplink_cap topo v
               = Cst.Shape.cap_at shape
                   ~depth:
                     (Cst.Topology.levels topo - Cst.Topology.level topo v))
          (all_nodes topo));
  ]

let suite = rejections @ grammar @ props
